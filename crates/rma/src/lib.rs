//! # rma — relational matrix algebra in a column store
//!
//! Facade crate of the RMA reproduction (Dolmatova, Augsten, Böhlen,
//! SIGMOD 2020): re-exports the storage, relational, linear-algebra, RMA,
//! SQL, and data-generation layers under one roof.
//!
//! ```
//! use rma::sql::Engine;
//!
//! let mut e = Engine::new();
//! e.execute("CREATE TABLE rating (u VARCHAR, balto DOUBLE, heat DOUBLE, net DOUBLE)").unwrap();
//! e.execute("INSERT INTO rating VALUES ('Ann', 2.0, 1.5, 0.5), \
//!            ('Tom', 0.0, 0.0, 1.5), ('Jan', 1.0, 4.0, 1.0)").unwrap();
//! // the paper's introduction query
//! let inv = e.query("SELECT * FROM INV(rating BY u)").unwrap();
//! assert_eq!(inv.len(), 3);
//! ```
//!
//! ## The lazy `Frame` API
//!
//! Relational and matrix operations form one closed algebra, and the
//! [`Frame`] builder exposes it as one composable logical plan. Nothing
//! executes until [`Frame::collect`]; the accumulated plan first runs
//! through the same optimizer as the SQL frontend — projection pushdown
//! into scans, selection pushdown where order schemas permit,
//! redundant-sort elimination across consecutive matrix operations, and
//! plan-level kernel choice:
//!
//! ```
//! use rma::{Expr, Frame, RelationBuilder, RmaContext};
//!
//! let rating = RelationBuilder::new()
//!     .column("u", vec!["Ann", "Tom", "Jan"])
//!     .column("balto", vec![2.0f64, 0.0, 1.0])
//!     .column("heat", vec![1.5f64, 0.0, 4.0])
//!     .column("net", vec![0.5f64, 1.5, 1.0])
//!     .build()
//!     .unwrap();
//!
//! let ctx = RmaContext::default();
//! // inv ∘ inv over the same order schema: the optimizer proves the
//! // second inversion's input is already sorted and skips its sort
//! let frame = Frame::scan(rating.clone()).inv(&["u"]).inv(&["u"]);
//! assert!(frame.explain(&ctx).contains("skip sort"));
//! let roundtrip = frame.collect(&ctx).unwrap();
//! assert_eq!(ctx.stats().sorts, 1);
//! assert_eq!(roundtrip.schema(), rating.schema());
//!
//! // relational operators chain in the same plan: filter, prune to a
//! // 2×2 application part, then decompose
//! let tall = Frame::scan(rating)
//!     .select(Expr::col("heat").gt(Expr::lit(1.0)))
//!     .project(&["u", "balto", "heat"])
//!     .qqr(&["u"])
//!     .collect(&ctx)
//!     .unwrap();
//! assert_eq!(tall.len(), 2);
//! ```

/// The relational matrix algebra (the paper's contribution).
pub use rma_core as core;
/// Synthetic dataset generators.
pub use rma_data as data;
/// Dense and column-at-a-time linear algebra kernels.
pub use rma_linalg as linalg;
/// Relational model and algebra.
pub use rma_relation as relation;
/// SQL frontend with the `OP(r BY U)` extension.
pub use rma_sql as sql;
/// BAT column store (storage kernel).
pub use rma_storage as storage;

// The most-used items at the top level.
pub use rma_core::{
    CatalogSnapshot, Frame, LogicalPlan, PartitionedTableProvider, PlanError, RmaContext, RmaError,
    RmaOp, RmaOptions, ServeError, Server, Session, TableProvider, VersionedCatalog,
};
pub use rma_relation::{Expr, Relation, RelationBuilder, Schema};
pub use rma_sql::Engine;
pub use rma_storage::{DataType, Value};
