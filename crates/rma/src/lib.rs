//! # rma — relational matrix algebra in a column store
//!
//! Facade crate of the RMA reproduction (Dolmatova, Augsten, Böhlen,
//! SIGMOD 2020): re-exports the storage, relational, linear-algebra, RMA,
//! SQL, and data-generation layers under one roof.
//!
//! ```
//! use rma::sql::Engine;
//!
//! let mut e = Engine::new();
//! e.execute("CREATE TABLE rating (u VARCHAR, balto DOUBLE, heat DOUBLE, net DOUBLE)").unwrap();
//! e.execute("INSERT INTO rating VALUES ('Ann', 2.0, 1.5, 0.5), \
//!            ('Tom', 0.0, 0.0, 1.5), ('Jan', 1.0, 4.0, 1.0)").unwrap();
//! // the paper's introduction query
//! let inv = e.query("SELECT * FROM INV(rating BY u)").unwrap();
//! assert_eq!(inv.len(), 3);
//! ```

/// BAT column store (storage kernel).
pub use rma_storage as storage;
/// Relational model and algebra.
pub use rma_relation as relation;
/// Dense and column-at-a-time linear algebra kernels.
pub use rma_linalg as linalg;
/// The relational matrix algebra (the paper's contribution).
pub use rma_core as core;
/// SQL frontend with the `OP(r BY U)` extension.
pub use rma_sql as sql;
/// Synthetic dataset generators.
pub use rma_data as data;

// The most-used items at the top level.
pub use rma_core::{RmaContext, RmaError, RmaOp, RmaOptions};
pub use rma_relation::{Expr, Relation, RelationBuilder, Schema};
pub use rma_sql::Engine;
pub use rma_storage::{DataType, Value};
