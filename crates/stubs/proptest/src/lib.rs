//! Offline shim for `proptest`: a miniature property-testing runner with
//! the API surface this workspace uses — range/tuple/`Just`/`vec`
//! strategies, `prop_map`/`prop_perturb`/`prop_oneof!`, and the
//! `proptest!` macro. Cases are generated from a deterministic per-test
//! seed; there is no shrinking, but failures report the case number so a
//! run is reproducible.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Runner configuration (only the case count is honoured).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// The RNG handed to strategies and `prop_perturb` closures.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    pub fn from_seed_u64(seed: u64) -> Self {
        TestRng(StdRng::seed_from_u64(seed))
    }

    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    /// A child RNG split off this one (used for `prop_perturb`).
    pub fn fork(&mut self) -> TestRng {
        TestRng(StdRng::seed_from_u64(self.0.next_u64()))
    }
}

/// A value generator. Unlike real proptest there is no shrink tree; a
/// strategy is just a deterministic function of the RNG stream.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    fn prop_perturb<U, F>(self, f: F) -> Perturb<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value, TestRng) -> U,
    {
        Perturb { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Object-safe view of [`Strategy`] for `prop_oneof!`/`boxed`.
trait DynStrategy {
    type Value;
    fn generate_dyn(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

pub struct BoxedStrategy<V>(Box<dyn DynStrategy<Value = V>>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate_dyn(rng)
    }
}

/// Strategy yielding one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct Perturb<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value, TestRng) -> U> Strategy for Perturb<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        let v = self.inner.generate(rng);
        let child = rng.fork();
        (self.f)(v, child)
    }
}

/// Uniform pick among boxed alternatives (`prop_oneof!` desugars to this).
pub struct Union<V>(pub Vec<BoxedStrategy<V>>);

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        assert!(!self.0.is_empty(), "prop_oneof! of zero strategies");
        let i = (rng.next_u64() % self.0.len() as u64) as usize;
        self.0[i].generate(rng)
    }
}

impl Strategy for std::ops::Range<i64> {
    type Value = i64;
    fn generate(&self, rng: &mut TestRng) -> i64 {
        rng.0.gen_range(self.clone())
    }
}

impl Strategy for std::ops::Range<u64> {
    type Value = u64;
    fn generate(&self, rng: &mut TestRng) -> u64 {
        rng.0.gen_range(self.clone())
    }
}

impl Strategy for std::ops::Range<usize> {
    type Value = usize;
    fn generate(&self, rng: &mut TestRng) -> usize {
        rng.0.gen_range(self.clone())
    }
}

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.0.gen_range(self.clone())
    }
}

macro_rules! tuple_strategy {
    ($($S:ident / $idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(S0 / 0);
tuple_strategy!(S0 / 0, S1 / 1);
tuple_strategy!(S0 / 0, S1 / 1, S2 / 2);
tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3);

/// Element count of a `collection::vec` strategy.
#[derive(Debug, Clone)]
pub struct SizeRange(std::ops::Range<usize>);

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange(n..n + 1)
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        SizeRange(r)
    }
}

pub mod collection {
    use super::{SizeRange, Strategy, TestRng};

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let range = self.size.0.clone();
            let n = if range.len() <= 1 {
                range.start
            } else {
                range.generate(rng)
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Run `cases` executions of a property, reporting the failing case number.
/// Used by the `proptest!` macro; not public API in real proptest, but
/// having it as a function keeps the macro small.
pub fn run_property<F: FnMut(&mut TestRng)>(test_name: &str, config: &ProptestConfig, mut body: F) {
    // FNV-1a of the test name gives a stable per-test seed
    let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        seed ^= b as u64;
        seed = seed.wrapping_mul(0x1000_0000_01b3);
    }
    for case in 0..config.cases {
        let mut rng = TestRng::from_seed_u64(seed.wrapping_add(case as u64));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut rng)));
        if let Err(payload) = result {
            eprintln!(
                "proptest shim: property `{test_name}` failed at case {case}/{} (seed {seed})",
                config.cases
            );
            std::panic::resume_unwind(payload);
        }
    }
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!($crate::ProptestConfig::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident ( $($arg:pat_param in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $cfg;
                $crate::run_property(stringify!($name), &config, |__rng| {
                    $(let $arg = $crate::Strategy::generate(&$strat, __rng);)*
                    $body
                });
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_and_vecs_generate_in_bounds() {
        let mut rng = TestRng::from_seed_u64(1);
        let s = crate::collection::vec((0i64..5, -1.0f64..1.0), 3..7);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((3..7).contains(&v.len()));
            for (i, f) in v {
                assert!((0..5).contains(&i));
                assert!((-1.0..1.0).contains(&f));
            }
        }
    }

    #[test]
    fn oneof_and_just_and_map() {
        let mut rng = TestRng::from_seed_u64(2);
        let s = prop_oneof![Just(0.0f64), 10.0f64..20.0].prop_map(|x| x * 2.0);
        let mut saw_zero = false;
        let mut saw_range = false;
        for _ in 0..200 {
            let x = s.generate(&mut rng);
            if x == 0.0 {
                saw_zero = true;
            } else {
                assert!((20.0..40.0).contains(&x));
                saw_range = true;
            }
        }
        assert!(saw_zero && saw_range);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_roundtrip(v in crate::collection::vec(0i64..100, 0..10)) {
            prop_assert!(v.len() < 10);
            prop_assert_eq!(v.len(), v.len());
        }
    }
}
