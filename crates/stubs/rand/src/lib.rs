//! Offline shim for the `rand` crate: a seeded xorshift64* generator behind
//! the subset of the rand 0.8 API this workspace uses. Deterministic and
//! fast; not cryptographic.

/// Seedable constructor, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling methods, mirroring `rand::Rng`.
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    /// Uniform `f64` in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        // 53 high-quality mantissa bits
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.next_f64() < p
    }
}

/// Types samplable uniformly over their standard distribution (`rng.gen()`).
pub trait Standard {
    fn sample<R: Rng>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: Rng>(rng: &mut R) -> f64 {
        rng.next_f64()
    }
}

impl Standard for u64 {
    fn sample<R: Rng>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: Rng>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Range forms accepted by `gen_range` (`a..b` and `a..=b`).
pub trait SampleRange {
    type Output;
    fn sample_from<R: Rng>(self, rng: &mut R) -> Self::Output;
}

impl<T: UniformRange> SampleRange for std::ops::Range<T> {
    type Output = T;
    fn sample_from<R: Rng>(self, rng: &mut R) -> T {
        T::sample_range(rng, self)
    }
}

impl<T: UniformRange + InclusiveEnd> SampleRange for std::ops::RangeInclusive<T> {
    type Output = T;
    fn sample_from<R: Rng>(self, rng: &mut R) -> T {
        let (start, end) = self.into_inner();
        T::sample_range(rng, start..end.next_up())
    }
}

/// Successor for turning an inclusive integer bound into an exclusive one.
pub trait InclusiveEnd: Sized {
    fn next_up(self) -> Self;
}

impl InclusiveEnd for i32 {
    fn next_up(self) -> i32 {
        self.checked_add(1).expect("inclusive range end overflow")
    }
}

impl InclusiveEnd for i64 {
    fn next_up(self) -> i64 {
        self.checked_add(1).expect("inclusive range end overflow")
    }
}

impl InclusiveEnd for usize {
    fn next_up(self) -> usize {
        self.checked_add(1).expect("inclusive range end overflow")
    }
}

impl InclusiveEnd for u64 {
    fn next_up(self) -> u64 {
        self.checked_add(1).expect("inclusive range end overflow")
    }
}

/// Types samplable uniformly from a half-open range (`rng.gen_range(a..b)`).
pub trait UniformRange: Sized {
    fn sample_range<R: Rng>(rng: &mut R, range: std::ops::Range<Self>) -> Self;
}

impl UniformRange for i32 {
    fn sample_range<R: Rng>(rng: &mut R, range: std::ops::Range<i32>) -> i32 {
        assert!(range.start < range.end, "empty range");
        let span = range.end.wrapping_sub(range.start) as u32 as u64;
        range.start.wrapping_add((rng.next_u64() % span) as i32)
    }
}

impl UniformRange for i64 {
    fn sample_range<R: Rng>(rng: &mut R, range: std::ops::Range<i64>) -> i64 {
        assert!(range.start < range.end, "empty range");
        let span = range.end.wrapping_sub(range.start) as u64;
        range.start.wrapping_add((rng.next_u64() % span) as i64)
    }
}

impl UniformRange for usize {
    fn sample_range<R: Rng>(rng: &mut R, range: std::ops::Range<usize>) -> usize {
        assert!(range.start < range.end, "empty range");
        let span = (range.end - range.start) as u64;
        range.start + (rng.next_u64() % span) as usize
    }
}

impl UniformRange for u64 {
    fn sample_range<R: Rng>(rng: &mut R, range: std::ops::Range<u64>) -> u64 {
        assert!(range.start < range.end, "empty range");
        range.start + rng.next_u64() % (range.end - range.start)
    }
}

impl UniformRange for f64 {
    fn sample_range<R: Rng>(rng: &mut R, range: std::ops::Range<f64>) -> f64 {
        assert!(range.start < range.end, "empty range");
        range.start + rng.next_f64() * (range.end - range.start)
    }
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// xorshift64* generator with the `StdRng` name.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 of the seed avoids weak low-entropy states
            let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            StdRng {
                state: (z ^ (z >> 31)) | 1,
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }
}

pub mod seq {
    use super::Rng;

    /// Slice shuffling/choosing, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        type Item;
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
        fn choose<'a, R: Rng>(&'a self, rng: &mut R) -> Option<&'a Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            // Fisher–Yates
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<'a, R: Rng>(&'a self, rng: &mut R) -> Option<&'a T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(rng.next_u64() % self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        for _ in 0..1000 {
            let x = a.gen_range(-5i64..7);
            assert!((-5..7).contains(&x));
            let f = a.gen_range(0.5f64..2.5);
            assert!((0.5..2.5).contains(&f));
            let u: f64 = a.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut v: Vec<i64> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }
}
