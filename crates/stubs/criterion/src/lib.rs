//! Offline shim for `criterion`: the API shape of Criterion 0.5
//! (`benchmark_group`, `bench_with_input`, `iter`, the group/main macros)
//! over a trivial harness that runs a few iterations and prints mean
//! wall-clock times. Good enough to keep the benches compiling and
//! runnable; numbers are indicative only.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Iterations per measurement (Criterion samples adaptively; the shim is
/// fixed and small so `cargo bench` stays quick).
const ITERATIONS: u32 = 3;

#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup { name: name.into() }
    }

    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_bench(name, f);
        self
    }
}

pub struct BenchmarkGroup {
    name: String,
}

impl BenchmarkGroup {
    /// Accepted and ignored (the shim's iteration count is fixed).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        run_bench(&format!("{}/{}", self.name, id.label), f);
        self
    }

    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.label);
        run_bench(&label, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

pub struct Bencher {
    total: Duration,
    iterations: u32,
}

impl Bencher {
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        // one warmup, then timed iterations
        black_box(f());
        let start = Instant::now();
        for _ in 0..ITERATIONS {
            black_box(f());
        }
        self.total += start.elapsed();
        self.iterations += ITERATIONS;
    }
}

fn run_bench(label: &str, mut f: impl FnMut(&mut Bencher)) {
    let mut b = Bencher {
        total: Duration::ZERO,
        iterations: 0,
    };
    f(&mut b);
    if b.iterations > 0 {
        let mean = b.total / b.iterations;
        println!(
            "bench {label}: {mean:?}/iter (shim, {} iters)",
            b.iterations
        );
    } else {
        println!("bench {label}: no measurement taken");
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_bencher_run_closures() {
        let mut c = Criterion::default();
        let mut ran = 0u32;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(10);
            g.bench_with_input(BenchmarkId::new("case", 1), &5u64, |b, &n| {
                b.iter(|| {
                    ran += 1;
                    n * 2
                })
            });
            g.finish();
        }
        assert!(ran >= ITERATIONS);
    }
}
