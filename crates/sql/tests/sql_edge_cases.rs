//! SQL dialect edge cases: quoting, nulls, nested derived tables, RMA
//! composition, and error propagation.

use rma_sql::{Engine, SqlError};
use rma_storage::Value;

fn engine() -> Engine {
    let mut e = Engine::new();
    e.execute_script(
        "CREATE TABLE t (k INT, name VARCHAR, x DOUBLE);
         INSERT INTO t VALUES (1, 'alpha', 1.5), (2, 'beta', -0.5),
                              (3, 'gamma''s', 2.25), (4, NULL, NULL);",
    )
    .unwrap();
    e
}

#[test]
fn escaped_quotes_and_null_literals() {
    let mut e = engine();
    let r = e.query("SELECT k FROM t WHERE name = 'gamma''s'").unwrap();
    assert_eq!(r.len(), 1);
    assert_eq!(r.cell(0, "k").unwrap(), Value::Int(3));
    let r = e.query("SELECT k FROM t WHERE name IS NULL").unwrap();
    assert_eq!(r.len(), 1);
    let r = e
        .query("SELECT k FROM t WHERE x IS NOT NULL ORDER BY k")
        .unwrap();
    assert_eq!(r.len(), 3);
}

#[test]
fn null_arithmetic_and_aggregates() {
    let mut e = engine();
    // x + 1 is NULL for the NULL row; comparisons with NULL are not true,
    // so only the three non-null rows qualify (all have x + 1 > 0)
    let r = e
        .query("SELECT k FROM t WHERE x + 1 > 0 ORDER BY k")
        .unwrap();
    assert_eq!(r.len(), 3);
    let r2 = e
        .query("SELECT COUNT(*) AS a, COUNT(x) AS b, AVG(x) AS m FROM t")
        .unwrap();
    assert_eq!(r2.cell(0, "a").unwrap(), Value::Int(4));
    assert_eq!(r2.cell(0, "b").unwrap(), Value::Int(3));
    let Value::Float(m) = r2.cell(0, "m").unwrap() else {
        panic!()
    };
    assert!((m - (1.5 - 0.5 + 2.25) / 3.0).abs() < 1e-12);
}

#[test]
fn scalar_functions_in_sql() {
    let mut e = engine();
    let r = e
        .query("SELECT k, SQRT(ABS(x)) AS s FROM t WHERE x IS NOT NULL ORDER BY k")
        .unwrap();
    let Value::Float(s) = r.cell(1, "s").unwrap() else {
        panic!()
    };
    assert!((s - 0.5f64.sqrt()).abs() < 1e-12);
}

#[test]
fn deeply_nested_derived_tables() {
    let mut e = engine();
    let r = e
        .query(
            "SELECT * FROM (SELECT * FROM (SELECT k, x FROM t WHERE x IS NOT NULL) a \
             WHERE x > 0) b ORDER BY k DESC LIMIT 1",
        )
        .unwrap();
    assert_eq!(r.cell(0, "k").unwrap(), Value::Int(3));
}

#[test]
fn rma_over_derived_over_rma() {
    let mut e = Engine::new();
    e.execute_script(
        "CREATE TABLE m (k VARCHAR, a DOUBLE, b DOUBLE);
         INSERT INTO m VALUES ('r1', 2.0, 1.0), ('r2', 1.0, 3.0);",
    )
    .unwrap();
    // inv ∘ (σ over inv) — closure in action
    let r = e
        .query("SELECT * FROM INV((SELECT * FROM INV(m BY k) WHERE k >= 'r1') q BY k)")
        .unwrap();
    // inverting twice returns the original matrix
    assert_eq!(r.len(), 2);
    let Value::Float(a) = r.cell(0, "a").unwrap() else {
        panic!()
    };
    assert!((a - 2.0).abs() < 1e-9);
}

#[test]
fn group_by_with_expression_post_projection() {
    let mut e = Engine::new();
    e.execute_script(
        "CREATE TABLE s (g VARCHAR, v DOUBLE);
         INSERT INTO s VALUES ('a', 1.0), ('a', 3.0), ('b', 10.0);",
    )
    .unwrap();
    let r = e
        .query("SELECT g, SUM(v) / COUNT(*) AS mean FROM s GROUP BY g ORDER BY g")
        .unwrap();
    assert_eq!(r.cell(0, "mean").unwrap(), Value::Float(2.0));
    assert_eq!(r.cell(1, "mean").unwrap(), Value::Float(10.0));
}

#[test]
fn distinct_and_implicit_cross_join() {
    let mut e = engine();
    e.execute("CREATE TABLE u (y INT)").unwrap();
    e.execute("INSERT INTO u VALUES (10), (10), (20)").unwrap();
    let r = e.query("SELECT DISTINCT y FROM u ORDER BY y").unwrap();
    assert_eq!(r.len(), 2);
    // FROM a, b is a cross join
    let r = e.query("SELECT k, y FROM t, u WHERE k = 1").unwrap();
    assert_eq!(r.len(), 3);
}

#[test]
fn errors_carry_context() {
    let mut e = engine();
    match e.query("SELECT * FROM INV(t BY k)") {
        Err(SqlError::Rma(err)) => {
            let msg = err.to_string();
            assert!(msg.contains("not numeric"), "unexpected message: {msg}");
        }
        other => panic!("expected RMA error, got {other:?}"),
    }
    match e.query("SELECT missing FROM t") {
        Err(SqlError::Relation(_)) => {}
        other => panic!("expected relation error, got {other:?}"),
    }
    // arity errors at parse time
    assert!(matches!(
        e.query("SELECT * FROM ADD(t BY k)"),
        Err(SqlError::Parse(_))
    ));
}

#[test]
fn table_aliases_resolve() {
    let mut e = engine();
    let r = e
        .query("SELECT tt.k FROM t AS tt WHERE tt.x > 0 ORDER BY tt.k")
        .unwrap();
    assert_eq!(r.len(), 2);
    let r = e.query("SELECT k FROM t bare_alias WHERE x > 2").unwrap();
    assert_eq!(r.len(), 1);
}

#[test]
fn empty_results_keep_schema() {
    let mut e = engine();
    let r = e.query("SELECT k, x FROM t WHERE k > 100").unwrap();
    assert_eq!(r.len(), 0);
    assert_eq!(r.schema().len(), 2);
    // aggregates over the empty set: COUNT = 0, AVG = NULL
    let r = e
        .query("SELECT COUNT(*) AS n, AVG(x) AS m FROM t WHERE k > 100")
        .unwrap();
    assert_eq!(r.cell(0, "n").unwrap(), Value::Int(0));
    assert_eq!(r.cell(0, "m").unwrap(), Value::Null);
}
