//! SQL tokenizer.

use crate::error::SqlError;
use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Bare identifier or keyword (uppercased comparison happens in the
    /// parser; the original spelling is preserved for identifiers).
    Ident(String),
    /// Single-quoted string literal.
    Str(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    LParen,
    RParen,
    Comma,
    Star,
    Plus,
    Minus,
    Slash,
    Percent,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    Dot,
    Semicolon,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Str(s) => write!(f, "'{s}'"),
            Token::Int(v) => write!(f, "{v}"),
            Token::Float(v) => write!(f, "{v}"),
            Token::LParen => f.write_str("("),
            Token::RParen => f.write_str(")"),
            Token::Comma => f.write_str(","),
            Token::Star => f.write_str("*"),
            Token::Plus => f.write_str("+"),
            Token::Minus => f.write_str("-"),
            Token::Slash => f.write_str("/"),
            Token::Percent => f.write_str("%"),
            Token::Eq => f.write_str("="),
            Token::NotEq => f.write_str("<>"),
            Token::Lt => f.write_str("<"),
            Token::LtEq => f.write_str("<="),
            Token::Gt => f.write_str(">"),
            Token::GtEq => f.write_str(">="),
            Token::Dot => f.write_str("."),
            Token::Semicolon => f.write_str(";"),
        }
    }
}

/// Tokenize a SQL string.
pub fn tokenize(input: &str) -> Result<Vec<Token>, SqlError> {
    let mut tokens = Vec::new();
    let bytes = input.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            ',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            '*' => {
                tokens.push(Token::Star);
                i += 1;
            }
            '+' => {
                tokens.push(Token::Plus);
                i += 1;
            }
            '-' => {
                // line comment `--`
                if bytes.get(i + 1) == Some(&b'-') {
                    while i < bytes.len() && bytes[i] != b'\n' {
                        i += 1;
                    }
                } else {
                    tokens.push(Token::Minus);
                    i += 1;
                }
            }
            '/' => {
                tokens.push(Token::Slash);
                i += 1;
            }
            '%' => {
                tokens.push(Token::Percent);
                i += 1;
            }
            '=' => {
                tokens.push(Token::Eq);
                i += 1;
            }
            '.' => {
                tokens.push(Token::Dot);
                i += 1;
            }
            ';' => {
                tokens.push(Token::Semicolon);
                i += 1;
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::LtEq);
                    i += 2;
                } else if bytes.get(i + 1) == Some(&b'>') {
                    tokens.push(Token::NotEq);
                    i += 2;
                } else {
                    tokens.push(Token::Lt);
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::GtEq);
                    i += 2;
                } else {
                    tokens.push(Token::Gt);
                    i += 1;
                }
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::NotEq);
                    i += 2;
                } else {
                    return Err(SqlError::Lex(format!("unexpected character `!` at {i}")));
                }
            }
            '\'' => {
                let mut s = String::new();
                i += 1;
                loop {
                    match bytes.get(i) {
                        None => return Err(SqlError::Lex("unterminated string".to_string())),
                        Some(b'\'') => {
                            // doubled quote escapes a quote
                            if bytes.get(i + 1) == Some(&b'\'') {
                                s.push('\'');
                                i += 2;
                            } else {
                                i += 1;
                                break;
                            }
                        }
                        Some(&b) => {
                            s.push(b as char);
                            i += 1;
                        }
                    }
                }
                tokens.push(Token::Str(s));
            }
            '"' => {
                // quoted identifier
                let mut s = String::new();
                i += 1;
                loop {
                    match bytes.get(i) {
                        None => return Err(SqlError::Lex("unterminated identifier".to_string())),
                        Some(b'"') => {
                            i += 1;
                            break;
                        }
                        Some(&b) => {
                            s.push(b as char);
                            i += 1;
                        }
                    }
                }
                tokens.push(Token::Ident(s));
            }
            '0'..='9' => {
                let start = i;
                let mut is_float = false;
                while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == b'.') {
                    if bytes[i] == b'.' {
                        // lookahead: `1.` followed by non-digit is Int + Dot
                        if !bytes.get(i + 1).is_some_and(u8::is_ascii_digit) {
                            break;
                        }
                        is_float = true;
                    }
                    i += 1;
                }
                // scientific notation
                if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
                    let mut j = i + 1;
                    if matches!(bytes.get(j), Some(b'+') | Some(b'-')) {
                        j += 1;
                    }
                    if bytes.get(j).is_some_and(u8::is_ascii_digit) {
                        is_float = true;
                        i = j;
                        while i < bytes.len() && bytes[i].is_ascii_digit() {
                            i += 1;
                        }
                    }
                }
                let text = &input[start..i];
                if is_float {
                    let v: f64 = text
                        .parse()
                        .map_err(|_| SqlError::Lex(format!("bad number `{text}`")))?;
                    tokens.push(Token::Float(v));
                } else {
                    let v: i64 = text
                        .parse()
                        .map_err(|_| SqlError::Lex(format!("bad number `{text}`")))?;
                    tokens.push(Token::Int(v));
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                tokens.push(Token::Ident(input[start..i].to_string()));
            }
            other => {
                return Err(SqlError::Lex(format!(
                    "unexpected character `{other}` at {i}"
                )))
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_select() {
        let t = tokenize("SELECT * FROM INV(rating BY User);").unwrap();
        assert_eq!(t[0], Token::Ident("SELECT".into()));
        assert_eq!(t[1], Token::Star);
        assert_eq!(t[3], Token::Ident("INV".into()));
        assert_eq!(t[4], Token::LParen);
        assert_eq!(t.last(), Some(&Token::Semicolon));
    }

    #[test]
    fn numbers() {
        let t = tokenize("1 2.5 1e3 2.5E-2 7.").unwrap();
        assert_eq!(t[0], Token::Int(1));
        assert_eq!(t[1], Token::Float(2.5));
        assert_eq!(t[2], Token::Float(1000.0));
        assert_eq!(t[3], Token::Float(0.025));
        assert_eq!(t[4], Token::Int(7));
        assert_eq!(t[5], Token::Dot);
    }

    #[test]
    fn strings_and_escapes() {
        let t = tokenize("'CA' 'Lee''s'").unwrap();
        assert_eq!(t[0], Token::Str("CA".into()));
        assert_eq!(t[1], Token::Str("Lee's".into()));
        assert!(tokenize("'oops").is_err());
    }

    #[test]
    fn operators() {
        let t = tokenize("a <= b <> c >= d != e < f > g").unwrap();
        assert!(t.contains(&Token::LtEq));
        assert_eq!(t.iter().filter(|x| **x == Token::NotEq).count(), 2);
        assert!(t.contains(&Token::GtEq));
    }

    #[test]
    fn comments_skipped() {
        let t = tokenize("SELECT 1 -- comment\n, 2").unwrap();
        assert_eq!(
            t,
            vec![
                Token::Ident("SELECT".into()),
                Token::Int(1),
                Token::Comma,
                Token::Int(2)
            ]
        );
    }

    #[test]
    fn quoted_identifiers() {
        let t = tokenize("\"weird name\"").unwrap();
        assert_eq!(t[0], Token::Ident("weird name".into()));
    }

    #[test]
    fn bad_chars_rejected() {
        assert!(tokenize("SELECT #").is_err());
        assert!(tokenize("a ! b").is_err());
    }
}
