//! Named-relation catalog, rebased onto the serving layer's versioned
//! store.
//!
//! The SQL layer's `Catalog` is now a *pinned view* of a shared
//! [`VersionedCatalog`]: reads resolve against the pin (an immutable
//! snapshot, so a running statement is never affected by concurrent
//! commits), writes go through the versioned store (every `CREATE`/`PUT`/
//! `DROP` is a generation bump, never in-place mutation) and re-pin. A
//! private engine owns its own store; engines attached to one
//! [`Server`](rma_core::Server) share the server's, which is how many SQL
//! sessions serve one database concurrently.

use crate::error::SqlError;
use rma_core::plan::{PartitionedTableProvider, TableProvider};
use rma_core::serve::{CatalogSnapshot, VersionedCatalog};
use rma_relation::Relation;
use std::sync::Arc;

/// A case-insensitive map from table names to relations: a pinned snapshot
/// of a (possibly shared) versioned table store.
#[derive(Debug)]
pub struct Catalog {
    shared: Arc<VersionedCatalog>,
    pin: CatalogSnapshot,
}

impl Default for Catalog {
    fn default() -> Self {
        Catalog::attached(Arc::new(VersionedCatalog::new()))
    }
}

impl Catalog {
    /// A catalog over a fresh private store.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// A catalog view onto an existing shared store, pinned at its current
    /// version.
    pub fn attached(shared: Arc<VersionedCatalog>) -> Self {
        let pin = shared.snapshot();
        Catalog { shared, pin }
    }

    /// The underlying versioned store (shared with every attached view).
    pub fn shared(&self) -> &Arc<VersionedCatalog> {
        &self.shared
    }

    /// Re-pin at the store's current version, making commits from other
    /// sessions visible. The engine calls this at each statement boundary —
    /// within a statement the pin (and thus the visible database state) is
    /// frozen.
    pub fn refresh(&mut self) {
        self.pin = self.shared.snapshot();
    }

    /// The current pin (cheap clone; keeps its tables alive independently).
    pub fn snapshot(&self) -> CatalogSnapshot {
        self.pin.clone()
    }

    /// Register a relation under a name (the relation is renamed to match,
    /// so (1,1)-shaped RMA results carry the right row origin). Errors if
    /// the name is taken — `put` replaces instead.
    pub fn register(&mut self, name: &str, relation: Relation) -> Result<(), SqlError> {
        self.shared.create(name, relation)?;
        self.refresh();
        Ok(())
    }

    /// Replace or insert a relation (a generation bump either way).
    pub fn put(&mut self, name: &str, relation: Relation) {
        self.shared.create_or_replace(name, relation);
        self.refresh();
    }

    /// Resolve a table against the pin.
    pub fn get(&self, name: &str) -> Option<&Relation> {
        self.pin.table(name)
    }

    /// Drop a table from the store, returning the pinned relation it held
    /// (readers pinned elsewhere keep their view — a drop is a catalog
    /// generation bump, not destruction of data).
    pub fn remove(&mut self, name: &str) -> Option<Relation> {
        let old = self.shared.snapshot().table_arc(name)?;
        self.shared
            .drop_table(name)
            .expect("table pinned above cannot vanish: drops are serialized through the store");
        self.refresh();
        Some((*old).clone())
    }

    pub fn contains(&self, name: &str) -> bool {
        self.pin.contains(name)
    }

    /// Iterate table names (sorted, for deterministic output).
    pub fn table_names(&self) -> Vec<&str> {
        self.pin.table_names()
    }
}

/// The catalog is the SQL layer's table source for shared logical plans.
/// Resolution goes through the pin: one statement, one snapshot.
impl TableProvider for Catalog {
    fn table(&self, name: &str) -> Option<&Relation> {
        self.get(name)
    }
}

/// Catalog tables are in-memory relations, so the default row-range
/// partitioner serves as the parallel scan source.
impl PartitionedTableProvider for Catalog {}

#[cfg(test)]
mod tests {
    use super::*;
    use rma_relation::RelationBuilder;

    fn rel() -> Relation {
        RelationBuilder::new()
            .column("a", vec![1i64])
            .build()
            .unwrap()
    }

    #[test]
    fn register_and_lookup_case_insensitive() {
        let mut c = Catalog::new();
        c.register("Trips", rel()).unwrap();
        assert!(c.get("trips").is_some());
        assert!(c.get("TRIPS").is_some());
        assert!(c.contains("tRiPs"));
        assert_eq!(c.get("trips").unwrap().name(), Some("Trips"));
    }

    #[test]
    fn duplicate_registration_rejected() {
        let mut c = Catalog::new();
        c.register("t", rel()).unwrap();
        assert!(matches!(
            c.register("T", rel()),
            Err(SqlError::TableExists(_))
        ));
        // put replaces silently
        c.put("t", rel());
        assert!(c.get("t").is_some());
    }

    #[test]
    fn remove_and_names() {
        let mut c = Catalog::new();
        c.register("b", rel()).unwrap();
        c.register("a", rel()).unwrap();
        assert_eq!(c.table_names(), vec!["a", "b"]);
        assert!(c.remove("B").is_some());
        assert!(c.get("b").is_none());
        assert!(c.remove("b").is_none());
    }

    #[test]
    fn attached_views_share_the_store_via_refresh() {
        let mut a = Catalog::new();
        let mut b = Catalog::attached(Arc::clone(a.shared()));
        a.register("t", rel()).unwrap();
        // b's pin predates the write; a refresh makes it visible
        assert!(!b.contains("t"));
        b.refresh();
        assert!(b.contains("t"));
        // the pin outlives a drop performed through the other view
        a.remove("t").unwrap();
        assert!(b.get("t").is_some(), "b's pin still holds the table");
        b.refresh();
        assert!(b.get("t").is_none());
    }
}
