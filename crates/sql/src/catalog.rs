//! Named-relation catalog.

use crate::error::SqlError;
use rma_core::plan::{PartitionedTableProvider, TableProvider};
use rma_relation::Relation;
use std::collections::HashMap;

/// A case-insensitive map from table names to relations.
#[derive(Debug, Default)]
pub struct Catalog {
    tables: HashMap<String, Relation>,
}

impl Catalog {
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Register a relation under a name (the relation is renamed to match,
    /// so (1,1)-shaped RMA results carry the right row origin).
    pub fn register(&mut self, name: &str, relation: Relation) -> Result<(), SqlError> {
        let key = name.to_ascii_lowercase();
        if self.tables.contains_key(&key) {
            return Err(SqlError::TableExists(name.to_string()));
        }
        self.tables.insert(key, relation.with_name(name));
        Ok(())
    }

    /// Replace or insert a relation.
    pub fn put(&mut self, name: &str, relation: Relation) {
        self.tables
            .insert(name.to_ascii_lowercase(), relation.with_name(name));
    }

    pub fn get(&self, name: &str) -> Option<&Relation> {
        self.tables.get(&name.to_ascii_lowercase())
    }

    pub fn remove(&mut self, name: &str) -> Option<Relation> {
        self.tables.remove(&name.to_ascii_lowercase())
    }

    pub fn contains(&self, name: &str) -> bool {
        self.tables.contains_key(&name.to_ascii_lowercase())
    }

    /// Iterate table names (sorted, for deterministic output).
    pub fn table_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.tables.keys().map(String::as_str).collect();
        names.sort_unstable();
        names
    }
}

/// The catalog is the SQL layer's table source for shared logical plans.
impl TableProvider for Catalog {
    fn table(&self, name: &str) -> Option<&Relation> {
        self.get(name)
    }
}

/// Catalog tables are in-memory relations, so the default row-range
/// partitioner serves as the parallel scan source.
impl PartitionedTableProvider for Catalog {}

#[cfg(test)]
mod tests {
    use super::*;
    use rma_relation::RelationBuilder;

    fn rel() -> Relation {
        RelationBuilder::new()
            .column("a", vec![1i64])
            .build()
            .unwrap()
    }

    #[test]
    fn register_and_lookup_case_insensitive() {
        let mut c = Catalog::new();
        c.register("Trips", rel()).unwrap();
        assert!(c.get("trips").is_some());
        assert!(c.get("TRIPS").is_some());
        assert!(c.contains("tRiPs"));
        assert_eq!(c.get("trips").unwrap().name(), Some("Trips"));
    }

    #[test]
    fn duplicate_registration_rejected() {
        let mut c = Catalog::new();
        c.register("t", rel()).unwrap();
        assert!(matches!(
            c.register("T", rel()),
            Err(SqlError::TableExists(_))
        ));
        // put replaces silently
        c.put("t", rel());
        assert!(c.get("t").is_some());
    }

    #[test]
    fn remove_and_names() {
        let mut c = Catalog::new();
        c.register("b", rel()).unwrap();
        c.register("a", rel()).unwrap();
        assert_eq!(c.table_names(), vec!["a", "b"]);
        assert!(c.remove("B").is_some());
        assert!(c.get("b").is_none());
    }
}
