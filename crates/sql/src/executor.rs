//! Plan execution against a catalog.

use crate::catalog::Catalog;
use crate::error::SqlError;
use crate::plan::Plan;
use rma_core::RmaContext;
use rma_relation::{self as rel, Relation};

/// Execute a logical plan.
pub fn execute(plan: &Plan, catalog: &Catalog, rma: &RmaContext) -> Result<Relation, SqlError> {
    match plan {
        Plan::Scan { table } => catalog
            .get(table)
            .cloned()
            .ok_or_else(|| SqlError::UnknownTable(table.clone())),
        Plan::Filter { input, predicate } => {
            let r = execute(input, catalog, rma)?;
            Ok(rel::select(&r, predicate)?)
        }
        Plan::Project { input, items } => {
            let r = execute(input, catalog, rma)?;
            let refs: Vec<(rel::Expr, &str)> = items
                .iter()
                .map(|(e, n)| (e.clone(), n.as_str()))
                .collect();
            Ok(rel::project_exprs(&r, &refs)?)
        }
        Plan::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            let r = execute(input, catalog, rma)?;
            let gb: Vec<&str> = group_by.iter().map(String::as_str).collect();
            Ok(rel::aggregate(&r, &gb, aggs)?)
        }
        Plan::NaturalJoin { left, right } => {
            let l = execute(left, catalog, rma)?;
            let r = execute(right, catalog, rma)?;
            Ok(rel::natural_join(&l, &r)?)
        }
        Plan::JoinOn { left, right, on } => {
            let l = execute(left, catalog, rma)?;
            let r = execute(right, catalog, rma)?;
            let pairs: Vec<(&str, &str)> = on
                .iter()
                .map(|(a, b)| (a.as_str(), b.as_str()))
                .collect();
            Ok(rel::join_on(&l, &r, &pairs)?)
        }
        Plan::Cross { left, right } => {
            let l = execute(left, catalog, rma)?;
            let r = execute(right, catalog, rma)?;
            Ok(rel::cross_product(&l, &r)?)
        }
        Plan::Rma { op, args } => {
            let first = execute(&args[0].0, catalog, rma)?;
            let first_order: Vec<&str> = args[0].1.iter().map(String::as_str).collect();
            if op.is_binary() {
                let second = execute(&args[1].0, catalog, rma)?;
                let second_order: Vec<&str> = args[1].1.iter().map(String::as_str).collect();
                Ok(rma.binary(*op, &first, &first_order, &second, &second_order)?)
            } else {
                Ok(rma.unary(*op, &first, &first_order)?)
            }
        }
        Plan::Distinct { input } => {
            let r = execute(input, catalog, rma)?;
            Ok(rel::distinct(&r)?)
        }
        Plan::OrderBy { input, keys } => {
            let r = execute(input, catalog, rma)?;
            let attrs: Vec<&str> = keys.iter().map(|(k, _)| k.as_str()).collect();
            let dirs: Vec<bool> = keys.iter().map(|(_, asc)| *asc).collect();
            Ok(rel::order_by(&r, &attrs, &dirs)?)
        }
        Plan::Limit { input, n } => {
            let r = execute(input, catalog, rma)?;
            Ok(rel::limit(&r, *n, 0))
        }
        Plan::AssertKey { input, attrs } => {
            let r = execute(input, catalog, rma)?;
            let refs: Vec<&str> = attrs.iter().map(String::as_str).collect();
            r.require_key(&refs)?;
            Ok(r)
        }
    }
}
