//! Plan execution: a thin adapter over the shared plan interpreter
//! (`rma_core::plan::execute`), mapping plan errors into SQL errors.

use crate::catalog::Catalog;
use crate::error::SqlError;
use crate::plan::Plan;
use rma_core::plan::{NodeActual, PlanError};
use rma_core::RmaContext;
use rma_relation::Relation;

fn lift(e: PlanError) -> SqlError {
    match e {
        PlanError::UnknownTable(t) => SqlError::UnknownTable(t),
        PlanError::Plan(m) => SqlError::Plan(m),
        PlanError::Relation(e) => SqlError::Relation(e),
        PlanError::Rma(e) => SqlError::Rma(e),
    }
}

/// Execute a logical plan against a catalog.
pub fn execute(plan: &Plan, catalog: &Catalog, rma: &RmaContext) -> Result<Relation, SqlError> {
    rma_core::plan::execute(plan, rma, catalog).map_err(lift)
}

/// Execute with per-node profiling (the `EXPLAIN ANALYZE` path): returns
/// the result plus one [`NodeActual`] per plan node in explain print
/// order.
pub fn execute_analyzed(
    plan: &Plan,
    catalog: &Catalog,
    rma: &RmaContext,
) -> Result<(Relation, Vec<NodeActual>), SqlError> {
    rma_core::plan::execute_analyzed(plan, rma, catalog).map_err(lift)
}
