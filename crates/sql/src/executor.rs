//! Plan execution: a thin adapter over the shared plan interpreter
//! (`rma_core::plan::execute`), mapping plan errors into SQL errors.

use crate::catalog::Catalog;
use crate::error::SqlError;
use crate::plan::Plan;
use rma_core::plan::PlanError;
use rma_core::RmaContext;
use rma_relation::Relation;

/// Execute a logical plan against a catalog.
pub fn execute(plan: &Plan, catalog: &Catalog, rma: &RmaContext) -> Result<Relation, SqlError> {
    rma_core::plan::execute(plan, rma, catalog).map_err(|e| match e {
        PlanError::UnknownTable(t) => SqlError::UnknownTable(t),
        PlanError::Plan(m) => SqlError::Plan(m),
        PlanError::Relation(e) => SqlError::Relation(e),
        PlanError::Rma(e) => SqlError::Rma(e),
    })
}
