//! AST → logical-plan translation.
//!
//! SQL lowers to the *same* logical plan ([`Plan`], a re-export of
//! `rma_core::plan::LogicalPlan`) the lazy `Frame` API builds, so both
//! frontends share one optimizer and one interpreter. This module only
//! translates syntax; all optimization lives in `rma_core::plan::optimize`.

use crate::ast::{ColRef, RmaArg, SelectItem, SelectStmt, SqlExpr, TableExpr};
use crate::error::SqlError;
use rma_relation::{AggSpec, Expr};

/// EXPLAIN-style plan rendering (shared with the `Frame` API).
pub use rma_core::plan::explain;
/// EXPLAIN rendering with per-node `rows≈`/`cost≈` estimates.
pub use rma_core::plan::explain_with_stats;
/// The shared logical plan type (re-exported under the historical name).
pub use rma_core::plan::LogicalPlan as Plan;

/// Translate a SELECT statement into a logical plan.
pub fn plan_select(stmt: &SelectStmt) -> Result<Plan, SqlError> {
    let mut plan = plan_table_expr(&stmt.from)?;

    if let Some(w) = &stmt.where_clause {
        if w.has_aggregate() {
            return Err(SqlError::Plan(
                "aggregates are not allowed in WHERE".to_string(),
            ));
        }
        plan = Plan::Select {
            input: Box::new(plan),
            predicate: lower_expr(w)?,
        };
    }

    let has_agg = stmt
        .items
        .iter()
        .any(|i| matches!(i, SelectItem::Expr { expr, .. } if expr.has_aggregate()));
    if has_agg || !stmt.group_by.is_empty() {
        plan = plan_aggregate(stmt, plan)?;
    } else {
        // plain projection, unless the select list is a lone `*`
        let wildcard_only = stmt.items.len() == 1 && matches!(stmt.items[0], SelectItem::Wildcard);
        if !wildcard_only {
            let mut items = Vec::new();
            for item in &stmt.items {
                match item {
                    SelectItem::Wildcard => {
                        return Err(SqlError::Plan(
                            "`*` cannot be mixed with other select items".to_string(),
                        ))
                    }
                    SelectItem::Expr { expr, alias } => {
                        let name = alias.clone().unwrap_or_else(|| default_name(expr));
                        items.push((lower_expr(expr)?, name));
                    }
                }
            }
            plan = Plan::Project {
                input: Box::new(plan),
                items,
            };
        }
    }

    if stmt.distinct {
        plan = Plan::Distinct {
            input: Box::new(plan),
        };
    }
    if !stmt.order_by.is_empty() {
        plan = Plan::OrderBy {
            input: Box::new(plan),
            keys: stmt.order_by.clone(),
        };
    }
    if let Some(n) = stmt.limit {
        plan = Plan::Limit {
            input: Box::new(plan),
            n,
        };
    }
    Ok(plan)
}

/// Aggregate planning: extract aggregate calls from the select list,
/// compute them in a ϑ node, and post-project the remaining expression
/// structure over the aggregate outputs.
fn plan_aggregate(stmt: &SelectStmt, input: Plan) -> Result<Plan, SqlError> {
    let mut aggs: Vec<AggSpec> = Vec::new();
    let mut post_items: Vec<(Expr, String)> = Vec::new();

    for item in &stmt.items {
        let SelectItem::Expr { expr, alias } = item else {
            return Err(SqlError::Plan(
                "`*` is not allowed with GROUP BY / aggregates".to_string(),
            ));
        };
        let name = alias.clone().unwrap_or_else(|| default_name(expr));
        let rewritten = extract_aggs(expr, &mut aggs)?;
        // a plain column must be a grouping column; a bare aggregate needs
        // no post-projection
        if let Expr::Col(c) = &rewritten {
            if !stmt.group_by.contains(c) && !aggs.iter().any(|a| a.output == *c) {
                return Err(SqlError::Plan(format!(
                    "column `{c}` must appear in GROUP BY or an aggregate"
                )));
            }
        }
        post_items.push((rewritten, name));
    }
    // name bare aggregates directly after their select alias where possible
    for (expr, name) in &mut post_items {
        if let Expr::Col(c) = expr {
            if let Some(spec) = aggs.iter_mut().find(|a| a.output == *c) {
                if !stmt.group_by.contains(name) {
                    spec.output = name.clone();
                    *expr = Expr::Col(name.clone());
                }
            }
        }
    }

    let agg_plan = Plan::Aggregate {
        input: Box::new(input),
        group_by: stmt.group_by.clone(),
        aggs,
    };
    // a final projection fixes both the requested item order and the
    // output names, whether or not expressions wrap the aggregates
    Ok(Plan::Project {
        input: Box::new(agg_plan),
        items: post_items,
    })
}

/// Replace aggregate calls by references to generated output columns,
/// collecting the specs.
fn extract_aggs(expr: &SqlExpr, aggs: &mut Vec<AggSpec>) -> Result<Expr, SqlError> {
    Ok(match expr {
        SqlExpr::Agg { func, arg } => {
            let input = arg.as_ref().map(|c| c.name.clone());
            let output = format!("__agg{}", aggs.len());
            aggs.push(AggSpec {
                func: *func,
                input,
                output: output.clone(),
            });
            Expr::Col(output)
        }
        SqlExpr::Col(c) => Expr::Col(c.name.clone()),
        SqlExpr::Lit(v) => Expr::Lit(v.clone()),
        SqlExpr::Bin(l, op, r) => Expr::Bin(
            Box::new(extract_aggs(l, aggs)?),
            *op,
            Box::new(extract_aggs(r, aggs)?),
        ),
        SqlExpr::Neg(e) => Expr::Neg(Box::new(extract_aggs(e, aggs)?)),
        SqlExpr::Not(e) => Expr::Not(Box::new(extract_aggs(e, aggs)?)),
        SqlExpr::IsNull(e) => Expr::IsNull(Box::new(extract_aggs(e, aggs)?)),
        SqlExpr::IsNotNull(e) => {
            Expr::Not(Box::new(Expr::IsNull(Box::new(extract_aggs(e, aggs)?))))
        }
        SqlExpr::Func(f, e) => Expr::Func(*f, Box::new(extract_aggs(e, aggs)?)),
    })
}

fn plan_table_expr(t: &TableExpr) -> Result<Plan, SqlError> {
    Ok(match t {
        TableExpr::Table { name, .. } => Plan::Scan {
            table: name.clone(),
            projection: None,
        },
        TableExpr::Subquery { query, .. } => plan_select(query)?,
        TableExpr::JoinOn { left, right, on } => Plan::JoinOn {
            left: Box::new(plan_table_expr(left)?),
            right: Box::new(plan_table_expr(right)?),
            on: on
                .iter()
                .map(|(l, r)| (l.name.clone(), r.name.clone()))
                .collect(),
        },
        TableExpr::NaturalJoin { left, right } => Plan::NaturalJoin {
            left: Box::new(plan_table_expr(left)?),
            right: Box::new(plan_table_expr(right)?),
        },
        TableExpr::CrossJoin { left, right } => Plan::Cross {
            left: Box::new(plan_table_expr(left)?),
            right: Box::new(plan_table_expr(right)?),
        },
        TableExpr::RmaCall { op, args, .. } => {
            let mut lowered = Vec::with_capacity(args.len());
            for RmaArg { table, order } in args {
                lowered.push((plan_table_expr(table)?, order.clone()));
            }
            Plan::rma(*op, lowered)
        }
    })
}

/// Lower an aggregate-free AST expression to an executable expression.
pub fn lower_expr(e: &SqlExpr) -> Result<Expr, SqlError> {
    Ok(match e {
        SqlExpr::Col(ColRef { name, .. }) => Expr::Col(name.clone()),
        SqlExpr::Lit(v) => Expr::Lit(v.clone()),
        SqlExpr::Bin(l, op, r) => {
            Expr::Bin(Box::new(lower_expr(l)?), *op, Box::new(lower_expr(r)?))
        }
        SqlExpr::Neg(x) => Expr::Neg(Box::new(lower_expr(x)?)),
        SqlExpr::Not(x) => Expr::Not(Box::new(lower_expr(x)?)),
        SqlExpr::IsNull(x) => Expr::IsNull(Box::new(lower_expr(x)?)),
        SqlExpr::IsNotNull(x) => Expr::Not(Box::new(Expr::IsNull(Box::new(lower_expr(x)?)))),
        SqlExpr::Func(f, x) => Expr::Func(*f, Box::new(lower_expr(x)?)),
        SqlExpr::Agg { .. } => {
            return Err(SqlError::Plan(
                "aggregate in a non-aggregating context".to_string(),
            ))
        }
    })
}

/// A display name for an unaliased select expression.
fn default_name(e: &SqlExpr) -> String {
    match e {
        SqlExpr::Col(c) => c.name.clone(),
        SqlExpr::Agg { func, arg } => {
            let f = format!("{func:?}").to_lowercase();
            match arg {
                Some(c) => format!("{f}_{}", c.name),
                None => "count".to_string(),
            }
        }
        _ => "expr".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Statement;
    use crate::parser::parse;

    fn plan_of(sql: &str) -> Plan {
        let Statement::Select(sel) = parse(sql).unwrap() else {
            panic!()
        };
        plan_select(&sel).unwrap()
    }

    #[test]
    fn simple_scan_filter() {
        let p = plan_of("SELECT * FROM t WHERE a > 1");
        assert!(matches!(p, Plan::Select { .. }));
        let e = explain(&p);
        assert!(e.contains("Select"));
        assert!(e.contains("Scan t"));
    }

    #[test]
    fn rma_plan() {
        let p = plan_of("SELECT * FROM MMU(a BY k, b BY j)");
        let Plan::Rma { op, args, .. } = p else {
            panic!()
        };
        assert_eq!(op, rma_core::RmaOp::Mmu);
        assert_eq!(args.len(), 2);
        assert_eq!(args[0].order, vec!["k".to_string()]);
        assert!(!args[0].sorted_input);
    }

    #[test]
    fn aggregate_with_post_projection() {
        let p = plan_of("SELECT u, SUM(x) / COUNT(*) AS m FROM t GROUP BY u");
        let Plan::Project { input, items } = p else {
            panic!()
        };
        assert_eq!(items[1].1, "m");
        assert!(matches!(*input, Plan::Aggregate { .. }));
    }

    #[test]
    fn bare_aggregates_named_by_alias() {
        let p = plan_of("SELECT COUNT(*) AS M FROM t");
        let Plan::Project { input, items } = p else {
            panic!()
        };
        assert_eq!(items[0].1, "M");
        let Plan::Aggregate { aggs, .. } = *input else {
            panic!()
        };
        assert_eq!(aggs[0].output, "M");
    }

    #[test]
    fn non_grouped_column_rejected() {
        let Statement::Select(sel) = parse("SELECT u, x FROM t GROUP BY u").unwrap() else {
            panic!()
        };
        assert!(plan_select(&sel).is_err());
    }

    #[test]
    fn aggregate_in_where_rejected() {
        let Statement::Select(sel) = parse("SELECT a FROM t WHERE COUNT(*) > 1").unwrap() else {
            panic!()
        };
        assert!(plan_select(&sel).is_err());
    }

    #[test]
    fn order_limit_distinct_wrap() {
        let p = plan_of("SELECT DISTINCT a FROM t ORDER BY a DESC LIMIT 5");
        let Plan::Limit { input, n } = p else {
            panic!()
        };
        assert_eq!(n, 5);
        let Plan::OrderBy { input, keys } = *input else {
            panic!()
        };
        assert_eq!(keys, vec![("a".to_string(), false)]);
        assert!(matches!(*input, Plan::Distinct { .. }));
    }
}
