//! SQL-side optimizer entry point.
//!
//! All optimization logic lives in the shared plan layer
//! (`rma_core::plan::optimize`): selection pushdown, projection pushdown,
//! the cross-algebra double-transpose rewrite, redundant-sort elimination,
//! and plan-level kernel choice run identically for SQL queries and lazy
//! `Frame` pipelines. This module only adapts the SQL engine's types.

use crate::catalog::Catalog;
use crate::plan::Plan;
use rma_core::RmaContext;

/// Optimize a plan against a catalog (whose schemas inform
/// column-dependent rewrites) and an execution context (whose sort policy
/// and kernel options steer the physical passes).
pub fn optimize(plan: Plan, catalog: &Catalog, ctx: &RmaContext) -> Plan {
    rma_core::plan::optimize(plan, ctx, catalog)
}

/// Output column names of a plan, if statically known.
pub fn output_columns(plan: &Plan, catalog: &Catalog) -> Option<Vec<String>> {
    rma_core::plan::output_columns(plan, catalog)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Statement;
    use crate::parser::parse;
    use crate::plan::{explain, plan_select};
    use rma_relation::RelationBuilder;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.register(
            "u",
            RelationBuilder::new()
                .column("user", vec!["a"])
                .column("state", vec!["CA"])
                .build()
                .unwrap(),
        )
        .unwrap();
        c.register(
            "r",
            RelationBuilder::new()
                .column("user2", vec!["a"])
                .column("score", vec![1.0f64])
                .build()
                .unwrap(),
        )
        .unwrap();
        c
    }

    fn optimized(sql: &str) -> String {
        let Statement::Select(sel) = parse(sql).unwrap() else {
            panic!()
        };
        let plan = plan_select(&sel).unwrap();
        explain(&optimize(plan, &catalog(), &RmaContext::default()))
    }

    #[test]
    fn filter_pushed_into_join_side() {
        let e =
            optimized("SELECT * FROM u JOIN r ON user = user2 WHERE state = 'CA' AND score > 0");
        // both conjuncts land below the join
        let join_pos = e.find("JoinOn").unwrap();
        let f1 = e.find("(state = CA)").unwrap();
        let f2 = e.find("(score > 0)").unwrap();
        assert!(f1 > join_pos && f2 > join_pos, "filters not pushed:\n{e}");
        assert!(!e.starts_with("Select"));
    }

    #[test]
    fn cross_predicate_stays_above() {
        let e = optimized("SELECT * FROM u CROSS JOIN r WHERE user = user2");
        assert!(e.starts_with("Select"), "join predicate must stay:\n{e}");
    }

    #[test]
    fn filter_pushes_through_identity_projection() {
        let e = optimized("SELECT state FROM (SELECT state FROM u) q WHERE state = 'CA'");
        let proj = e.find("Project").unwrap();
        let filt = e.find("Select").unwrap();
        assert!(filt > proj, "filter should sink below projection:\n{e}");
    }

    #[test]
    fn filter_not_pushed_through_row_coupling_rma() {
        let e = optimized("SELECT * FROM QQR(r BY user2) WHERE score > 0");
        let filt = e.find("Select").unwrap();
        let rma = e.find("Rma").unwrap();
        assert!(filt < rma, "filter must stay above QQR:\n{e}");
    }

    #[test]
    fn filter_on_order_schema_pushed_below_mmu() {
        let mut c = Catalog::new();
        c.register(
            "a",
            RelationBuilder::new()
                .column("k", vec![1i64, 2])
                .column("x", vec![1.0f64, 2.0])
                .build()
                .unwrap(),
        )
        .unwrap();
        c.register(
            "b",
            RelationBuilder::new()
                .column("j", vec![1i64, 2])
                .column("y", vec![3.0f64, 4.0])
                .build()
                .unwrap(),
        )
        .unwrap();
        let Statement::Select(sel) =
            parse("SELECT * FROM MMU(a BY k, b BY j) WHERE k > 1").unwrap()
        else {
            panic!()
        };
        let plan = plan_select(&sel).unwrap();
        let e = explain(&optimize(plan, &c, &RmaContext::default()));
        let rma = e.find("Rma MMU").unwrap();
        let filt = e.find("Select").unwrap();
        assert!(
            filt > rma,
            "order-schema filter should sink below mmu:\n{e}"
        );
        assert!(e.contains("AssertKey"), "key validation preserved:\n{e}");
    }

    #[test]
    fn projection_pushdown_prunes_scans() {
        let e = optimized("SELECT state FROM u WHERE state = 'CA'");
        assert!(
            e.contains("Scan u project=[state]"),
            "scan should prune unused columns:\n{e}"
        );
    }

    #[test]
    fn nested_filters_merged() {
        let plan = Plan::Select {
            predicate: rma_relation::Expr::col("a").gt(rma_relation::Expr::lit(1i64)),
            input: Box::new(Plan::Select {
                predicate: rma_relation::Expr::col("a").lt(rma_relation::Expr::lit(9i64)),
                input: Box::new(Plan::rma(
                    rma_core::RmaOp::Qqr,
                    vec![(
                        Plan::Scan {
                            table: "r".into(),
                            projection: None,
                        },
                        vec!["k".into()],
                    )],
                )),
            }),
        };
        let out = optimize(plan, &catalog(), &RmaContext::default());
        let e = explain(&out);
        assert_eq!(e.matches("Select").count(), 1);
        assert!(e.contains("AND"));
    }
}

#[cfg(test)]
mod cross_algebra_tests {
    use crate::engine::Engine;

    fn engine() -> Engine {
        let mut e = Engine::new();
        e.execute("CREATE TABLE r (T VARCHAR, H DOUBLE, W DOUBLE)")
            .unwrap();
        e.execute(
            "INSERT INTO r VALUES ('5am', 1.0, 3.0), ('8am', 8.0, 5.0), \
             ('7am', 6.0, 7.0), ('6am', 1.0, 4.0)",
        )
        .unwrap();
        e
    }

    const DOUBLE_TRA: &str = "SELECT * FROM TRA(TRA(r BY T) BY C)";

    #[test]
    fn double_transpose_is_eliminated() {
        let e = engine();
        let plan = e.explain(DOUBLE_TRA).unwrap();
        assert!(!plan.contains("Rma"), "transposes not eliminated:\n{plan}");
        assert!(plan.contains("AssertKey"));
        assert!(plan.contains("OrderBy"));
    }

    #[test]
    fn rewrite_preserves_results() {
        let mut with = engine();
        let mut without = engine();
        without.optimize = false;
        let a = with.query(DOUBLE_TRA).unwrap();
        let b = without.query(DOUBLE_TRA).unwrap();
        assert_eq!(a.schema(), b.schema());
        assert!(a.bag_equals(&b));
    }

    #[test]
    fn rewrite_preserves_key_validation() {
        let mut e = Engine::new();
        e.execute("CREATE TABLE d (k INT, x DOUBLE)").unwrap();
        e.execute("INSERT INTO d VALUES (1, 1.0), (1, 2.0)")
            .unwrap();
        // duplicate keys must still error after the rewrite
        let err = e.query("SELECT * FROM TRA(TRA(d BY k) BY C)");
        assert!(err.is_err());
    }

    #[test]
    fn rewrite_skipped_for_non_numeric_application() {
        let mut e = Engine::new();
        e.execute("CREATE TABLE m (k INT, s VARCHAR)").unwrap();
        e.execute("INSERT INTO m VALUES (1, 'a')").unwrap();
        let plan = e.explain("SELECT * FROM TRA(TRA(m BY k) BY C)").unwrap();
        // no rewrite: the original error (non-numeric application) surfaces
        assert!(plan.contains("Rma"));
        assert!(e.query("SELECT * FROM TRA(TRA(m BY k) BY C)").is_err());
    }

    #[test]
    fn single_transpose_untouched() {
        let e = engine();
        let plan = e.explain("SELECT * FROM TRA(r BY T)").unwrap();
        assert!(plan.contains("Rma TRA"));
    }

    #[test]
    fn rewrite_applies_under_other_operators() {
        let e = engine();
        let plan = e
            .explain("SELECT C, H FROM TRA(TRA(r BY T) BY C) WHERE H > 2")
            .unwrap();
        assert!(!plan.contains("Rma"), "nested rewrite failed:\n{plan}");
    }
}

#[cfg(test)]
mod cross_algebra_column_order {
    use crate::engine::Engine;

    #[test]
    fn rewrite_sorts_application_columns_like_the_column_cast() {
        // schema order (T, W, H) differs from sorted name order (H, W)
        let mut e = Engine::new();
        e.execute("CREATE TABLE r2 (T VARCHAR, W DOUBLE, H DOUBLE)")
            .unwrap();
        e.execute("INSERT INTO r2 VALUES ('a', 3.0, 1.0), ('b', 5.0, 8.0)")
            .unwrap();
        let q = "SELECT * FROM TRA(TRA(r2 BY T) BY C)";
        let optimized = e.query(q).unwrap();
        let mut plain = Engine::new();
        plain.optimize = false;
        plain
            .execute("CREATE TABLE r2 (T VARCHAR, W DOUBLE, H DOUBLE)")
            .unwrap();
        plain
            .execute("INSERT INTO r2 VALUES ('a', 3.0, 1.0), ('b', 5.0, 8.0)")
            .unwrap();
        let unoptimized = plain.query(q).unwrap();
        assert_eq!(optimized.schema(), unoptimized.schema());
        assert!(optimized.bag_equals(&unoptimized));
        let names: Vec<&str> = optimized.schema().names().collect();
        assert_eq!(names, vec!["C", "H", "W"]);
    }
}
