//! Logical plan optimizer: selection pushdown and filter merging.
//!
//! The paper's claim that RMA "leverages existing data structures and
//! optimizations" includes the relational optimizer continuing to work
//! around relational matrix operations. This optimizer demonstrates that:
//! σ is pushed below projections, into join inputs, and never through RMA
//! nodes (whose results depend on all input rows).

use crate::catalog::Catalog;
use crate::plan::Plan;
use rma_relation::{BinOp, Expr};

/// Optimize a plan against a catalog (schemas are needed to decide which
/// join side can absorb a predicate).
pub fn optimize(plan: Plan, catalog: &Catalog) -> Plan {
    let plan = eliminate_double_transpose(plan, catalog);
    let plan = push_filters(plan, catalog);
    merge_filters(plan)
}

/// Cross-algebra rewrite (the paper's concluding "new opportunities for
/// cross algebra optimizations"): `TRA(TRA(r BY u) BY C)` is the input
/// sorted by `u` with `u` renamed to `C` (Figure 10), so the two matrix
/// transposes — each a full element shuffle — are replaced by a sort and a
/// rename. The inner operation's order-schema validation is preserved with
/// an [`Plan::AssertKey`] node, and the application schema must be
/// statically known (otherwise the plan is left untouched).
fn eliminate_double_transpose(plan: Plan, catalog: &Catalog) -> Plan {
    use rma_core::RmaOp;
    // rewrite bottom-up
    let plan = map_children(plan, &mut |p| eliminate_double_transpose(p, catalog));
    let Plan::Rma { op: RmaOp::Tra, args } = plan else {
        return plan;
    };
    // args is a single (input, order) pair for tra
    let (outer_input, outer_order) = (&args[0].0, &args[0].1);
    if outer_order.as_slice() != ["C".to_string()] {
        return Plan::Rma { op: RmaOp::Tra, args };
    }
    let Plan::Rma { op: RmaOp::Tra, args: inner_args } = outer_input.as_ref() else {
        return Plan::Rma { op: RmaOp::Tra, args };
    };
    let (inner_input, inner_order) = (&inner_args[0].0, &inner_args[0].1);
    if inner_order.len() != 1 {
        return Plan::Rma { op: RmaOp::Tra, args };
    }
    let Some(cols) = output_columns(inner_input, catalog) else {
        return Plan::Rma { op: RmaOp::Tra, args };
    };
    let u = inner_order[0].clone();
    if !cols.contains(&u) {
        return Plan::Rma { op: RmaOp::Tra, args };
    }
    // the original would reject non-numeric application attributes; only
    // rewrite when the base schema proves they are numeric
    match pass_through_scan_schema(inner_input, catalog) {
        Some(schema)
            if schema
                .attributes()
                .iter()
                .filter(|a| a.name() != u)
                .all(|a| a.dtype().is_numeric()) => {}
        _ => return Plan::Rma { op: RmaOp::Tra, args },
    }
    // Project: u renamed to C; application columns in sorted name order —
    // the outer transpose names its columns via the column cast ▽ of the
    // inner C column, which is sorted
    let mut items: Vec<(Expr, String)> = vec![(Expr::Col(u.clone()), "C".to_string())];
    let mut app: Vec<&String> = cols.iter().filter(|c| **c != u).collect();
    app.sort();
    for c in app {
        items.push((Expr::Col(c.clone()), c.clone()));
    }
    Plan::Project {
        items,
        input: Box::new(Plan::OrderBy {
            keys: vec![(u.clone(), true)],
            input: Box::new(Plan::AssertKey {
                attrs: vec![u],
                input: inner_input.clone(),
            }),
        }),
    }
}

/// Follow pass-through nodes (filter/sort/limit/distinct/assert) down to a
/// base-table scan and return its schema; `None` when the subtree
/// recomputes columns (projection, aggregation, joins, RMA).
fn pass_through_scan_schema<'a>(
    plan: &Plan,
    catalog: &'a Catalog,
) -> Option<&'a rma_relation::Schema> {
    match plan {
        Plan::Scan { table } => catalog.get(table).map(|r| r.schema()),
        Plan::Filter { input, .. }
        | Plan::Distinct { input }
        | Plan::OrderBy { input, .. }
        | Plan::Limit { input, .. }
        | Plan::AssertKey { input, .. } => pass_through_scan_schema(input, catalog),
        _ => None,
    }
}

/// Apply `f` to every direct child plan.
fn map_children(plan: Plan, f: &mut impl FnMut(Plan) -> Plan) -> Plan {
    match plan {
        Plan::Filter { input, predicate } => Plan::Filter {
            input: Box::new(f(*input)),
            predicate,
        },
        Plan::Project { input, items } => Plan::Project {
            input: Box::new(f(*input)),
            items,
        },
        Plan::Aggregate {
            input,
            group_by,
            aggs,
        } => Plan::Aggregate {
            input: Box::new(f(*input)),
            group_by,
            aggs,
        },
        Plan::NaturalJoin { left, right } => Plan::NaturalJoin {
            left: Box::new(f(*left)),
            right: Box::new(f(*right)),
        },
        Plan::JoinOn { left, right, on } => Plan::JoinOn {
            left: Box::new(f(*left)),
            right: Box::new(f(*right)),
            on,
        },
        Plan::Cross { left, right } => Plan::Cross {
            left: Box::new(f(*left)),
            right: Box::new(f(*right)),
        },
        Plan::Rma { op, args } => Plan::Rma {
            op,
            args: args.into_iter().map(|(p, o)| (Box::new(f(*p)), o)).collect(),
        },
        Plan::Distinct { input } => Plan::Distinct {
            input: Box::new(f(*input)),
        },
        Plan::OrderBy { input, keys } => Plan::OrderBy {
            input: Box::new(f(*input)),
            keys,
        },
        Plan::Limit { input, n } => Plan::Limit {
            input: Box::new(f(*input)),
            n,
        },
        Plan::AssertKey { input, attrs } => Plan::AssertKey {
            input: Box::new(f(*input)),
            attrs,
        },
        leaf => leaf,
    }
}

/// Split a predicate into AND-conjuncts.
fn conjuncts(e: Expr) -> Vec<Expr> {
    match e {
        Expr::Bin(l, BinOp::And, r) => {
            let mut out = conjuncts(*l);
            out.extend(conjuncts(*r));
            out
        }
        other => vec![other],
    }
}

/// Recombine conjuncts with AND.
fn combine(mut es: Vec<Expr>) -> Option<Expr> {
    let first = es.pop()?;
    Some(es.into_iter().fold(first, |acc, e| acc.and(e)))
}

/// Output column names of a plan, if statically known.
pub fn output_columns(plan: &Plan, catalog: &Catalog) -> Option<Vec<String>> {
    match plan {
        Plan::Scan { table } => catalog
            .get(table)
            .map(|r| r.schema().names().map(str::to_string).collect()),
        Plan::Filter { input, .. }
        | Plan::Distinct { input }
        | Plan::OrderBy { input, .. }
        | Plan::Limit { input, .. }
        | Plan::AssertKey { input, .. } => output_columns(input, catalog),
        Plan::Project { items, .. } => Some(items.iter().map(|(_, n)| n.clone()).collect()),
        Plan::Aggregate {
            group_by, aggs, ..
        } => {
            let mut out = group_by.clone();
            out.extend(aggs.iter().map(|a| a.output.clone()));
            Some(out)
        }
        Plan::NaturalJoin { left, right } => {
            let l = output_columns(left, catalog)?;
            let r = output_columns(right, catalog)?;
            let mut out = l.clone();
            out.extend(r.into_iter().filter(|n| !l.contains(n)));
            Some(out)
        }
        Plan::JoinOn { left, right, .. } | Plan::Cross { left, right } => {
            let mut out = output_columns(left, catalog)?;
            out.extend(output_columns(right, catalog)?);
            Some(out)
        }
        // RMA output schemas depend on data values (column casts); treat as
        // opaque
        Plan::Rma { .. } => None,
    }
}

fn refs_subset(e: &Expr, cols: &[String]) -> bool {
    let mut refs = Vec::new();
    e.referenced_columns(&mut refs);
    refs.iter().all(|r| cols.contains(r))
}

fn push_filters(plan: Plan, catalog: &Catalog) -> Plan {
    match plan {
        Plan::Filter { input, predicate } => {
            let input = push_filters(*input, catalog);
            push_one_filter(predicate, input, catalog)
        }
        // recurse structurally
        Plan::Project { input, items } => Plan::Project {
            input: Box::new(push_filters(*input, catalog)),
            items,
        },
        Plan::Aggregate {
            input,
            group_by,
            aggs,
        } => Plan::Aggregate {
            input: Box::new(push_filters(*input, catalog)),
            group_by,
            aggs,
        },
        Plan::NaturalJoin { left, right } => Plan::NaturalJoin {
            left: Box::new(push_filters(*left, catalog)),
            right: Box::new(push_filters(*right, catalog)),
        },
        Plan::JoinOn { left, right, on } => Plan::JoinOn {
            left: Box::new(push_filters(*left, catalog)),
            right: Box::new(push_filters(*right, catalog)),
            on,
        },
        Plan::Cross { left, right } => Plan::Cross {
            left: Box::new(push_filters(*left, catalog)),
            right: Box::new(push_filters(*right, catalog)),
        },
        Plan::Rma { op, args } => Plan::Rma {
            op,
            args: args
                .into_iter()
                .map(|(p, o)| (Box::new(push_filters(*p, catalog)), o))
                .collect(),
        },
        Plan::Distinct { input } => Plan::Distinct {
            input: Box::new(push_filters(*input, catalog)),
        },
        Plan::OrderBy { input, keys } => Plan::OrderBy {
            input: Box::new(push_filters(*input, catalog)),
            keys,
        },
        Plan::Limit { input, n } => Plan::Limit {
            input: Box::new(push_filters(*input, catalog)),
            n,
        },
        Plan::AssertKey { input, attrs } => Plan::AssertKey {
            input: Box::new(push_filters(*input, catalog)),
            attrs,
        },
        leaf => leaf,
    }
}

/// Push one filter's conjuncts as deep as legal.
fn push_one_filter(predicate: Expr, input: Plan, catalog: &Catalog) -> Plan {
    match input {
        // σ over × / ⋈: conjuncts referencing one side only move there
        Plan::Cross { left, right } => {
            let (l, r, keep) = split_for_join(predicate, &left, &right, catalog);
            let left = wrap_filter(*left, l, catalog);
            let right = wrap_filter(*right, r, catalog);
            let joined = Plan::Cross {
                left: Box::new(left),
                right: Box::new(right),
            };
            match combine(keep) {
                Some(p) => Plan::Filter {
                    input: Box::new(joined),
                    predicate: p,
                },
                None => joined,
            }
        }
        Plan::JoinOn { left, right, on } => {
            let (l, r, keep) = split_for_join(predicate, &left, &right, catalog);
            let left = wrap_filter(*left, l, catalog);
            let right = wrap_filter(*right, r, catalog);
            let joined = Plan::JoinOn {
                left: Box::new(left),
                right: Box::new(right),
                on,
            };
            match combine(keep) {
                Some(p) => Plan::Filter {
                    input: Box::new(joined),
                    predicate: p,
                },
                None => joined,
            }
        }
        Plan::NaturalJoin { left, right } => {
            let (l, r, keep) = split_for_join(predicate, &left, &right, catalog);
            let left = wrap_filter(*left, l, catalog);
            let right = wrap_filter(*right, r, catalog);
            let joined = Plan::NaturalJoin {
                left: Box::new(left),
                right: Box::new(right),
            };
            match combine(keep) {
                Some(p) => Plan::Filter {
                    input: Box::new(joined),
                    predicate: p,
                },
                None => joined,
            }
        }
        // σ over π: push through when the projection passes the referenced
        // columns unchanged (identity items)
        Plan::Project { input: inner, items } => {
            let identity: Vec<String> = items
                .iter()
                .filter_map(|(e, n)| match e {
                    Expr::Col(c) if c == n => Some(n.clone()),
                    _ => None,
                })
                .collect();
            if refs_subset(&predicate, &identity) {
                let pushed = push_one_filter(predicate, *inner, catalog);
                Plan::Project {
                    input: Box::new(pushed),
                    items,
                }
            } else {
                Plan::Filter {
                    input: Box::new(Plan::Project { input: inner, items }),
                    predicate,
                }
            }
        }
        other => Plan::Filter {
            input: Box::new(other),
            predicate,
        },
    }
}

fn split_for_join(
    predicate: Expr,
    left: &Plan,
    right: &Plan,
    catalog: &Catalog,
) -> (Vec<Expr>, Vec<Expr>, Vec<Expr>) {
    let lcols = output_columns(left, catalog);
    let rcols = output_columns(right, catalog);
    let mut to_left = Vec::new();
    let mut to_right = Vec::new();
    let mut keep = Vec::new();
    for c in conjuncts(predicate) {
        if let Some(lc) = &lcols {
            if refs_subset(&c, lc) {
                to_left.push(c);
                continue;
            }
        }
        if let Some(rc) = &rcols {
            if refs_subset(&c, rc) {
                to_right.push(c);
                continue;
            }
        }
        keep.push(c);
    }
    (to_left, to_right, keep)
}

fn wrap_filter(plan: Plan, preds: Vec<Expr>, catalog: &Catalog) -> Plan {
    match combine(preds) {
        // keep pushing further down the side
        Some(p) => push_one_filter(p, plan, catalog),
        None => plan,
    }
}

/// Merge directly nested filters into one conjunction.
fn merge_filters(plan: Plan) -> Plan {
    match plan {
        Plan::Filter { input, predicate } => {
            let input = merge_filters(*input);
            if let Plan::Filter {
                input: inner,
                predicate: p2,
            } = input
            {
                Plan::Filter {
                    input: inner,
                    predicate: predicate.and(p2),
                }
            } else {
                Plan::Filter {
                    input: Box::new(input),
                    predicate,
                }
            }
        }
        Plan::Project { input, items } => Plan::Project {
            input: Box::new(merge_filters(*input)),
            items,
        },
        Plan::Aggregate {
            input,
            group_by,
            aggs,
        } => Plan::Aggregate {
            input: Box::new(merge_filters(*input)),
            group_by,
            aggs,
        },
        Plan::NaturalJoin { left, right } => Plan::NaturalJoin {
            left: Box::new(merge_filters(*left)),
            right: Box::new(merge_filters(*right)),
        },
        Plan::JoinOn { left, right, on } => Plan::JoinOn {
            left: Box::new(merge_filters(*left)),
            right: Box::new(merge_filters(*right)),
            on,
        },
        Plan::Cross { left, right } => Plan::Cross {
            left: Box::new(merge_filters(*left)),
            right: Box::new(merge_filters(*right)),
        },
        Plan::Rma { op, args } => Plan::Rma {
            op,
            args: args
                .into_iter()
                .map(|(p, o)| (Box::new(merge_filters(*p)), o))
                .collect(),
        },
        Plan::Distinct { input } => Plan::Distinct {
            input: Box::new(merge_filters(*input)),
        },
        Plan::OrderBy { input, keys } => Plan::OrderBy {
            input: Box::new(merge_filters(*input)),
            keys,
        },
        Plan::Limit { input, n } => Plan::Limit {
            input: Box::new(merge_filters(*input)),
            n,
        },
        Plan::AssertKey { input, attrs } => Plan::AssertKey {
            input: Box::new(merge_filters(*input)),
            attrs,
        },
        leaf => leaf,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Statement;
    use crate::parser::parse;
    use crate::plan::{explain, plan_select};
    use rma_relation::RelationBuilder;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.register(
            "u",
            RelationBuilder::new()
                .column("user", vec!["a"])
                .column("state", vec!["CA"])
                .build()
                .unwrap(),
        )
        .unwrap();
        c.register(
            "r",
            RelationBuilder::new()
                .column("user2", vec!["a"])
                .column("score", vec![1.0f64])
                .build()
                .unwrap(),
        )
        .unwrap();
        c
    }

    fn optimized(sql: &str) -> String {
        let Statement::Select(sel) = parse(sql).unwrap() else {
            panic!()
        };
        let plan = plan_select(&sel).unwrap();
        explain(&optimize(plan, &catalog()))
    }

    #[test]
    fn filter_pushed_into_join_side() {
        let e = optimized(
            "SELECT * FROM u JOIN r ON user = user2 WHERE state = 'CA' AND score > 0",
        );
        // both conjuncts land below the join
        let join_pos = e.find("JoinOn").unwrap();
        let f1 = e.find("(state = CA)").unwrap();
        let f2 = e.find("(score > 0)").unwrap();
        assert!(f1 > join_pos && f2 > join_pos, "filters not pushed:\n{e}");
        assert!(!e.starts_with("Filter"));
    }

    #[test]
    fn cross_predicate_stays_above() {
        let e = optimized("SELECT * FROM u CROSS JOIN r WHERE user = user2");
        assert!(e.starts_with("Filter"), "join predicate must stay:\n{e}");
    }

    #[test]
    fn filter_pushes_through_identity_projection() {
        let e = optimized("SELECT state FROM (SELECT state FROM u) q WHERE state = 'CA'");
        let proj = e.find("Project").unwrap();
        let filt = e.find("Filter").unwrap();
        assert!(filt > proj, "filter should sink below projection:\n{e}");
    }

    #[test]
    fn filter_not_pushed_through_rma() {
        let e = optimized("SELECT * FROM QQR(r BY user2) WHERE score > 0");
        let filt = e.find("Filter").unwrap();
        let rma = e.find("Rma").unwrap();
        assert!(filt < rma, "filter must stay above RMA:\n{e}");
    }

    #[test]
    fn nested_filters_merged() {
        let plan = Plan::Filter {
            predicate: rma_relation::Expr::col("a").gt(rma_relation::Expr::lit(1i64)),
            input: Box::new(Plan::Filter {
                predicate: rma_relation::Expr::col("a").lt(rma_relation::Expr::lit(9i64)),
                input: Box::new(Plan::Rma {
                    op: rma_core::RmaOp::Qqr,
                    args: vec![(Box::new(Plan::Scan { table: "r".into() }), vec!["k".into()])],
                }),
            }),
        };
        let out = merge_filters(plan);
        let e = explain(&out);
        assert_eq!(e.matches("Filter").count(), 1);
        assert!(e.contains("AND"));
    }
}

#[cfg(test)]
mod cross_algebra_tests {
    use crate::engine::Engine;

    fn engine() -> Engine {
        let mut e = Engine::new();
        e.execute("CREATE TABLE r (T VARCHAR, H DOUBLE, W DOUBLE)").unwrap();
        e.execute(
            "INSERT INTO r VALUES ('5am', 1.0, 3.0), ('8am', 8.0, 5.0), \
             ('7am', 6.0, 7.0), ('6am', 1.0, 4.0)",
        )
        .unwrap();
        e
    }

    const DOUBLE_TRA: &str = "SELECT * FROM TRA(TRA(r BY T) BY C)";

    #[test]
    fn double_transpose_is_eliminated() {
        let e = engine();
        let plan = e.explain(DOUBLE_TRA).unwrap();
        assert!(!plan.contains("Rma"), "transposes not eliminated:\n{plan}");
        assert!(plan.contains("AssertKey"));
        assert!(plan.contains("OrderBy"));
    }

    #[test]
    fn rewrite_preserves_results() {
        let mut with = engine();
        let mut without = engine();
        without.optimize = false;
        let a = with.query(DOUBLE_TRA).unwrap();
        let b = without.query(DOUBLE_TRA).unwrap();
        assert_eq!(a.schema(), b.schema());
        assert!(a.bag_equals(&b));
    }

    #[test]
    fn rewrite_preserves_key_validation() {
        let mut e = Engine::new();
        e.execute("CREATE TABLE d (k INT, x DOUBLE)").unwrap();
        e.execute("INSERT INTO d VALUES (1, 1.0), (1, 2.0)").unwrap();
        // duplicate keys must still error after the rewrite
        let err = e.query("SELECT * FROM TRA(TRA(d BY k) BY C)");
        assert!(err.is_err());
    }

    #[test]
    fn rewrite_skipped_for_non_numeric_application() {
        let mut e = Engine::new();
        e.execute("CREATE TABLE m (k INT, s VARCHAR)").unwrap();
        e.execute("INSERT INTO m VALUES (1, 'a')").unwrap();
        let plan = e.explain("SELECT * FROM TRA(TRA(m BY k) BY C)").unwrap();
        // no rewrite: the original error (non-numeric application) surfaces
        assert!(plan.contains("Rma"));
        assert!(e.query("SELECT * FROM TRA(TRA(m BY k) BY C)").is_err());
    }

    #[test]
    fn single_transpose_untouched() {
        let e = engine();
        let plan = e.explain("SELECT * FROM TRA(r BY T)").unwrap();
        assert!(plan.contains("Rma TRA"));
    }

    #[test]
    fn rewrite_applies_under_other_operators() {
        let e = engine();
        let plan = e
            .explain("SELECT C, H FROM TRA(TRA(r BY T) BY C) WHERE H > 2")
            .unwrap();
        assert!(!plan.contains("Rma"), "nested rewrite failed:\n{plan}");
    }
}

#[cfg(test)]
mod cross_algebra_column_order {
    use crate::engine::Engine;

    #[test]
    fn rewrite_sorts_application_columns_like_the_column_cast() {
        // schema order (T, W, H) differs from sorted name order (H, W)
        let mut e = Engine::new();
        e.execute("CREATE TABLE r2 (T VARCHAR, W DOUBLE, H DOUBLE)").unwrap();
        e.execute("INSERT INTO r2 VALUES ('a', 3.0, 1.0), ('b', 5.0, 8.0)").unwrap();
        let q = "SELECT * FROM TRA(TRA(r2 BY T) BY C)";
        let optimized = e.query(q).unwrap();
        let mut plain = Engine::new();
        plain.optimize = false;
        plain.execute("CREATE TABLE r2 (T VARCHAR, W DOUBLE, H DOUBLE)").unwrap();
        plain
            .execute("INSERT INTO r2 VALUES ('a', 3.0, 1.0), ('b', 5.0, 8.0)")
            .unwrap();
        let unoptimized = plain.query(q).unwrap();
        assert_eq!(optimized.schema(), unoptimized.schema());
        assert!(optimized.bag_equals(&unoptimized));
        let names: Vec<&str> = optimized.schema().names().collect();
        assert_eq!(names, vec!["C", "H", "W"]);
    }
}
