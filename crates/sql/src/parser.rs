//! Recursive-descent parser for the SQL dialect with the RMA extension.

use crate::ast::*;
use crate::error::SqlError;
use crate::lexer::{tokenize, Token};
use rma_core::RmaOp;
use rma_relation::{AggFunc, BinOp};
use rma_storage::{DataType, Value};

/// Parse a single SQL statement (trailing semicolon optional).
pub fn parse(sql: &str) -> Result<Statement, SqlError> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.statement()?;
    p.eat_semicolons();
    if !p.at_end() {
        return Err(SqlError::Parse(format!(
            "unexpected trailing input at `{}`",
            p.peek_display()
        )));
    }
    Ok(stmt)
}

/// Parse a script of `;`-separated statements.
pub fn parse_script(sql: &str) -> Result<Vec<Statement>, SqlError> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let mut out = Vec::new();
    p.eat_semicolons();
    while !p.at_end() {
        out.push(p.statement()?);
        p.eat_semicolons();
    }
    Ok(out)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn peek_display(&self) -> String {
        self.peek().map_or("<end>".to_string(), |t| t.to_string())
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    /// Consume the next token if it is the given keyword (case-insensitive).
    fn eat_kw(&mut self, kw: &str) -> bool {
        if let Some(Token::Ident(s)) = self.peek() {
            if s.eq_ignore_ascii_case(kw) {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), SqlError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(SqlError::Parse(format!(
                "expected `{kw}`, found `{}`",
                self.peek_display()
            )))
        }
    }

    fn peek_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    fn eat(&mut self, t: &Token) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Token) -> Result<(), SqlError> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(SqlError::Parse(format!(
                "expected `{t}`, found `{}`",
                self.peek_display()
            )))
        }
    }

    fn ident(&mut self) -> Result<String, SqlError> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            other => Err(SqlError::Parse(format!(
                "expected identifier, found `{}`",
                other.map_or("<end>".to_string(), |t| t.to_string())
            ))),
        }
    }

    fn eat_semicolons(&mut self) {
        while self.eat(&Token::Semicolon) {}
    }

    // ------------------------------------------------------------------

    fn statement(&mut self) -> Result<Statement, SqlError> {
        if self.peek_kw("SELECT") {
            Ok(Statement::Select(self.select()?))
        } else if self.eat_kw("EXPLAIN") {
            let analyze = self.eat_kw("ANALYZE");
            if !self.peek_kw("SELECT") {
                return Err(SqlError::Parse(format!(
                    "EXPLAIN{} requires a SELECT, found `{}`",
                    if analyze { " ANALYZE" } else { "" },
                    self.peek_display()
                )));
            }
            let sel = self.select()?;
            Ok(if analyze {
                Statement::ExplainAnalyze(sel)
            } else {
                Statement::Explain(sel)
            })
        } else if self.eat_kw("CREATE") {
            let or_replace = if self.eat_kw("OR") {
                self.expect_kw("REPLACE")?;
                true
            } else {
                false
            };
            self.expect_kw("TABLE")?;
            self.create_table(or_replace)
        } else if self.eat_kw("INSERT") {
            self.expect_kw("INTO")?;
            self.insert()
        } else if self.eat_kw("DROP") {
            self.expect_kw("TABLE")?;
            let if_exists = if self.eat_kw("IF") {
                self.expect_kw("EXISTS")?;
                true
            } else {
                false
            };
            let name = self.ident()?;
            Ok(Statement::DropTable { name, if_exists })
        } else {
            Err(SqlError::Parse(format!(
                "expected statement, found `{}`",
                self.peek_display()
            )))
        }
    }

    fn create_table(&mut self, or_replace: bool) -> Result<Statement, SqlError> {
        let name = self.ident()?;
        // CREATE TABLE name AS SELECT ... materialises a query result
        if self.eat_kw("AS") {
            if !self.peek_kw("SELECT") {
                return Err(SqlError::Parse(format!(
                    "CREATE TABLE ... AS requires a SELECT, found `{}`",
                    self.peek_display()
                )));
            }
            let query = self.select()?;
            return Ok(Statement::CreateTableAs {
                name,
                query,
                or_replace,
            });
        }
        self.expect(&Token::LParen)?;
        let mut columns = Vec::new();
        loop {
            let col = self.ident()?;
            let ty = self.ident()?;
            let dt = match ty.to_ascii_uppercase().as_str() {
                "INT" | "INTEGER" | "BIGINT" => DataType::Int,
                "DOUBLE" | "FLOAT" | "REAL" | "DECIMAL" | "NUMERIC" => DataType::Float,
                "VARCHAR" | "TEXT" | "STRING" | "CHAR" => DataType::Str,
                "BOOLEAN" | "BOOL" => DataType::Bool,
                "DATE" => DataType::Date,
                other => {
                    return Err(SqlError::Parse(format!("unknown type `{other}`")));
                }
            };
            // optional length parameter, e.g. VARCHAR(20)
            if self.eat(&Token::LParen) {
                self.next();
                self.expect(&Token::RParen)?;
            }
            columns.push((col, dt));
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        self.expect(&Token::RParen)?;
        Ok(Statement::CreateTable {
            name,
            columns,
            or_replace,
        })
    }

    fn insert(&mut self) -> Result<Statement, SqlError> {
        let table = self.ident()?;
        self.expect_kw("VALUES")?;
        let mut rows = Vec::new();
        loop {
            self.expect(&Token::LParen)?;
            let mut row = Vec::new();
            loop {
                row.push(self.literal()?);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
            self.expect(&Token::RParen)?;
            rows.push(row);
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        Ok(Statement::Insert { table, rows })
    }

    fn literal(&mut self) -> Result<Value, SqlError> {
        let neg = self.eat(&Token::Minus);
        let v = match self.next() {
            Some(Token::Int(v)) => Value::Int(if neg { -v } else { v }),
            Some(Token::Float(v)) => Value::Float(if neg { -v } else { v }),
            Some(Token::Str(s)) if !neg => Value::Str(s),
            Some(Token::Ident(s)) if !neg && s.eq_ignore_ascii_case("NULL") => Value::Null,
            Some(Token::Ident(s)) if !neg && s.eq_ignore_ascii_case("TRUE") => Value::Bool(true),
            Some(Token::Ident(s)) if !neg && s.eq_ignore_ascii_case("FALSE") => Value::Bool(false),
            other => {
                return Err(SqlError::Parse(format!(
                    "expected literal, found `{}`",
                    other.map_or("<end>".to_string(), |t| t.to_string())
                )))
            }
        };
        Ok(v)
    }

    fn select(&mut self) -> Result<SelectStmt, SqlError> {
        self.expect_kw("SELECT")?;
        let distinct = self.eat_kw("DISTINCT");
        let mut items = Vec::new();
        loop {
            if self.eat(&Token::Star) {
                items.push(SelectItem::Wildcard);
            } else {
                let expr = self.expr()?;
                let alias = if self.eat_kw("AS") {
                    Some(self.ident()?)
                } else {
                    None
                };
                items.push(SelectItem::Expr { expr, alias });
            }
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        self.expect_kw("FROM")?;
        let from = self.table_expr()?;
        let where_clause = if self.eat_kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_kw("GROUP") {
            self.expect_kw("BY")?;
            loop {
                group_by.push(self.column_name()?);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }
        let mut order_by = Vec::new();
        if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            loop {
                let col = self.column_name()?;
                let asc = if self.eat_kw("DESC") {
                    false
                } else {
                    self.eat_kw("ASC");
                    true
                };
                order_by.push((col, asc));
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }
        let limit = if self.eat_kw("LIMIT") {
            match self.next() {
                Some(Token::Int(n)) if n >= 0 => Some(n as usize),
                other => {
                    return Err(SqlError::Parse(format!(
                        "expected LIMIT count, found `{}`",
                        other.map_or("<end>".to_string(), |t| t.to_string())
                    )))
                }
            }
        } else {
            None
        };
        Ok(SelectStmt {
            distinct,
            items,
            from,
            where_clause,
            group_by,
            order_by,
            limit,
        })
    }

    /// A column name, possibly qualified; the qualifier is dropped (names
    /// must be unambiguous after joins in this dialect).
    fn column_name(&mut self) -> Result<String, SqlError> {
        let first = self.ident()?;
        if self.eat(&Token::Dot) {
            Ok(self.ident()?)
        } else {
            Ok(first)
        }
    }

    // ---------------- FROM clause ----------------

    fn table_expr(&mut self) -> Result<TableExpr, SqlError> {
        let mut left = self.table_primary()?;
        loop {
            if self.eat_kw("CROSS") {
                self.expect_kw("JOIN")?;
                let right = self.table_primary()?;
                left = TableExpr::CrossJoin {
                    left: Box::new(left),
                    right: Box::new(right),
                };
            } else if self.eat_kw("NATURAL") {
                self.expect_kw("JOIN")?;
                let right = self.table_primary()?;
                left = TableExpr::NaturalJoin {
                    left: Box::new(left),
                    right: Box::new(right),
                };
            } else if self.eat_kw("INNER") || self.peek_kw("JOIN") {
                self.expect_kw("JOIN")?;
                let right = self.table_primary()?;
                self.expect_kw("ON")?;
                let mut on = Vec::new();
                loop {
                    let l = self.col_ref()?;
                    self.expect(&Token::Eq)?;
                    let r = self.col_ref()?;
                    on.push((l, r));
                    if !self.eat_kw("AND") {
                        break;
                    }
                }
                left = TableExpr::JoinOn {
                    left: Box::new(left),
                    right: Box::new(right),
                    on,
                };
            } else if self.eat(&Token::Comma) {
                // implicit cross join: FROM a, b
                let right = self.table_primary()?;
                left = TableExpr::CrossJoin {
                    left: Box::new(left),
                    right: Box::new(right),
                };
            } else {
                break;
            }
        }
        Ok(left)
    }

    fn table_primary(&mut self) -> Result<TableExpr, SqlError> {
        if self.eat(&Token::LParen) {
            // subquery
            let query = self.select()?;
            self.expect(&Token::RParen)?;
            self.eat_kw("AS");
            let alias = self.ident()?;
            return Ok(TableExpr::Subquery {
                query: Box::new(query),
                alias,
            });
        }
        let name = self.ident()?;
        // RMA call: OP ( texpr BY cols [, texpr BY cols] )
        if let Some(op) = RmaOp::parse(&name) {
            if self.peek() == Some(&Token::LParen) {
                self.next();
                let mut args = Vec::new();
                let table = self.table_expr()?;
                self.expect_kw("BY")?;
                let mut order = vec![self.column_name()?];
                // order attributes separated by commas — but a comma may
                // also start the second RMA argument; disambiguate by
                // checking whether a table expression + BY follows
                while self.eat(&Token::Comma) {
                    if self.starts_rma_arg() {
                        let table2 = self.table_expr()?;
                        self.expect_kw("BY")?;
                        let mut order2 = vec![self.column_name()?];
                        while self.eat(&Token::Comma) {
                            if self.starts_rma_arg() {
                                return Err(SqlError::Parse(
                                    "RMA operations take at most two arguments".to_string(),
                                ));
                            }
                            order2.push(self.column_name()?);
                        }
                        args.push(RmaArg {
                            table: Box::new(table),
                            order,
                        });
                        args.push(RmaArg {
                            table: Box::new(table2),
                            order: order2,
                        });
                        self.expect(&Token::RParen)?;
                        return self.finish_rma(op, args);
                    }
                    order.push(self.column_name()?);
                }
                args.push(RmaArg {
                    table: Box::new(table),
                    order,
                });
                self.expect(&Token::RParen)?;
                return self.finish_rma(op, args);
            }
        }
        let alias = if self.eat_kw("AS") {
            Some(self.ident()?)
        } else if let Some(Token::Ident(s)) = self.peek() {
            // bare alias, unless it is a clause keyword
            const KEYWORDS: [&str; 13] = [
                "WHERE", "GROUP", "ORDER", "LIMIT", "JOIN", "CROSS", "NATURAL", "INNER", "ON",
                "BY", "AND", "AS", "UNION",
            ];
            if KEYWORDS.iter().any(|k| s.eq_ignore_ascii_case(k)) {
                None
            } else {
                Some(self.ident()?)
            }
        } else {
            None
        };
        Ok(TableExpr::Table { name, alias })
    }

    /// Lookahead: does the upcoming input look like `<table primary> ... BY`
    /// (the second argument of a binary RMA call) rather than another order
    /// attribute?
    fn starts_rma_arg(&self) -> bool {
        // a subquery or an identifier followed by BY / ( … ) BY
        match self.peek() {
            Some(Token::LParen) => true,
            Some(Token::Ident(_)) => {
                matches!(self.tokens.get(self.pos + 1), Some(Token::Ident(s)) if s.eq_ignore_ascii_case("BY"))
                    || matches!(self.tokens.get(self.pos + 1), Some(Token::LParen))
            }
            _ => false,
        }
    }

    fn finish_rma(&mut self, op: RmaOp, args: Vec<RmaArg>) -> Result<TableExpr, SqlError> {
        let expected = if op.is_binary() { 2 } else { 1 };
        if args.len() != expected {
            return Err(SqlError::Parse(format!(
                "{} takes {expected} argument(s), found {}",
                op.name().to_uppercase(),
                args.len()
            )));
        }
        let alias = if self.eat_kw("AS") {
            Some(self.ident()?)
        } else {
            None
        };
        Ok(TableExpr::RmaCall { op, args, alias })
    }

    fn col_ref(&mut self) -> Result<ColRef, SqlError> {
        let first = self.ident()?;
        if self.eat(&Token::Dot) {
            let name = self.ident()?;
            Ok(ColRef {
                qualifier: Some(first),
                name,
            })
        } else {
            Ok(ColRef {
                qualifier: None,
                name: first,
            })
        }
    }

    // ---------------- scalar expressions ----------------

    fn expr(&mut self) -> Result<SqlExpr, SqlError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<SqlExpr, SqlError> {
        let mut left = self.and_expr()?;
        while self.eat_kw("OR") {
            let right = self.and_expr()?;
            left = SqlExpr::Bin(Box::new(left), BinOp::Or, Box::new(right));
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<SqlExpr, SqlError> {
        let mut left = self.not_expr()?;
        while self.eat_kw("AND") {
            let right = self.not_expr()?;
            left = SqlExpr::Bin(Box::new(left), BinOp::And, Box::new(right));
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<SqlExpr, SqlError> {
        if self.eat_kw("NOT") {
            Ok(SqlExpr::Not(Box::new(self.not_expr()?)))
        } else {
            self.comparison()
        }
    }

    fn comparison(&mut self) -> Result<SqlExpr, SqlError> {
        let left = self.additive()?;
        let op = match self.peek() {
            Some(Token::Eq) => Some(BinOp::Eq),
            Some(Token::NotEq) => Some(BinOp::NotEq),
            Some(Token::Lt) => Some(BinOp::Lt),
            Some(Token::LtEq) => Some(BinOp::LtEq),
            Some(Token::Gt) => Some(BinOp::Gt),
            Some(Token::GtEq) => Some(BinOp::GtEq),
            _ => None,
        };
        if let Some(op) = op {
            self.next();
            let right = self.additive()?;
            return Ok(SqlExpr::Bin(Box::new(left), op, Box::new(right)));
        }
        // IS [NOT] NULL
        if self.eat_kw("IS") {
            let not = self.eat_kw("NOT");
            self.expect_kw("NULL")?;
            return Ok(if not {
                SqlExpr::IsNotNull(Box::new(left))
            } else {
                SqlExpr::IsNull(Box::new(left))
            });
        }
        Ok(left)
    }

    fn additive(&mut self) -> Result<SqlExpr, SqlError> {
        let mut left = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => BinOp::Add,
                Some(Token::Minus) => BinOp::Sub,
                _ => break,
            };
            self.next();
            let right = self.multiplicative()?;
            left = SqlExpr::Bin(Box::new(left), op, Box::new(right));
        }
        Ok(left)
    }

    fn multiplicative(&mut self) -> Result<SqlExpr, SqlError> {
        let mut left = self.unary()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => BinOp::Mul,
                Some(Token::Slash) => BinOp::Div,
                Some(Token::Percent) => BinOp::Mod,
                _ => break,
            };
            self.next();
            let right = self.unary()?;
            left = SqlExpr::Bin(Box::new(left), op, Box::new(right));
        }
        Ok(left)
    }

    fn unary(&mut self) -> Result<SqlExpr, SqlError> {
        if self.eat(&Token::Minus) {
            return Ok(SqlExpr::Neg(Box::new(self.unary()?)));
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<SqlExpr, SqlError> {
        match self.peek().cloned() {
            Some(Token::LParen) => {
                self.next();
                let e = self.expr()?;
                self.expect(&Token::RParen)?;
                Ok(e)
            }
            Some(Token::Int(v)) => {
                self.next();
                Ok(SqlExpr::Lit(Value::Int(v)))
            }
            Some(Token::Float(v)) => {
                self.next();
                Ok(SqlExpr::Lit(Value::Float(v)))
            }
            Some(Token::Str(s)) => {
                self.next();
                Ok(SqlExpr::Lit(Value::Str(s)))
            }
            Some(Token::Ident(s)) => {
                // scalar function?
                if let Some(func) = scalar_func(&s) {
                    if self.tokens.get(self.pos + 1) == Some(&Token::LParen) {
                        self.next(); // name
                        self.next(); // (
                        let arg = self.expr()?;
                        self.expect(&Token::RParen)?;
                        return Ok(SqlExpr::Func(func, Box::new(arg)));
                    }
                }
                // aggregate?
                if let Some(func) = agg_func(&s) {
                    if self.tokens.get(self.pos + 1) == Some(&Token::LParen) {
                        self.next(); // name
                        self.next(); // (
                        let arg = if self.eat(&Token::Star) {
                            None
                        } else {
                            Some(self.col_ref()?)
                        };
                        self.expect(&Token::RParen)?;
                        let func = if arg.is_none() && func == AggFunc::Count {
                            AggFunc::CountStar
                        } else {
                            func
                        };
                        return Ok(SqlExpr::Agg { func, arg });
                    }
                }
                if s.eq_ignore_ascii_case("NULL") {
                    self.next();
                    return Ok(SqlExpr::Lit(Value::Null));
                }
                if s.eq_ignore_ascii_case("TRUE") {
                    self.next();
                    return Ok(SqlExpr::Lit(Value::Bool(true)));
                }
                if s.eq_ignore_ascii_case("FALSE") {
                    self.next();
                    return Ok(SqlExpr::Lit(Value::Bool(false)));
                }
                Ok(SqlExpr::Col(self.col_ref()?))
            }
            other => Err(SqlError::Parse(format!(
                "expected expression, found `{}`",
                other.map_or("<end>".to_string(), |t| t.to_string())
            ))),
        }
    }
}

fn scalar_func(name: &str) -> Option<rma_relation::ScalarFunc> {
    match name.to_ascii_uppercase().as_str() {
        "SQRT" => Some(rma_relation::ScalarFunc::Sqrt),
        "ABS" => Some(rma_relation::ScalarFunc::Abs),
        _ => None,
    }
}

fn agg_func(name: &str) -> Option<AggFunc> {
    match name.to_ascii_uppercase().as_str() {
        "COUNT" => Some(AggFunc::Count),
        "SUM" => Some(AggFunc::Sum),
        "AVG" => Some(AggFunc::Avg),
        "MIN" => Some(AggFunc::Min),
        "MAX" => Some(AggFunc::Max),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_paper_inv_query() {
        let s = parse("SELECT * FROM INV(rating BY User);").unwrap();
        let Statement::Select(sel) = s else { panic!() };
        assert_eq!(sel.items, vec![SelectItem::Wildcard]);
        let TableExpr::RmaCall { op, args, .. } = sel.from else {
            panic!("expected RMA call")
        };
        assert_eq!(op, RmaOp::Inv);
        assert_eq!(args.len(), 1);
        assert_eq!(args[0].order, vec!["User"]);
    }

    #[test]
    fn parse_binary_rma_call() {
        let s = parse("SELECT * FROM MMU(w4 BY C, w3 BY U) AS w5").unwrap();
        let Statement::Select(sel) = s else { panic!() };
        let TableExpr::RmaCall { op, args, alias } = sel.from else {
            panic!()
        };
        assert_eq!(op, RmaOp::Mmu);
        assert_eq!(args.len(), 2);
        assert_eq!(args[0].order, vec!["C"]);
        assert_eq!(args[1].order, vec!["U"]);
        assert_eq!(alias.as_deref(), Some("w5"));
    }

    #[test]
    fn parse_composite_order_schema() {
        let s = parse("SELECT * FROM QQR(r BY W, T)").unwrap();
        let Statement::Select(sel) = s else { panic!() };
        let TableExpr::RmaCall { args, .. } = sel.from else {
            panic!()
        };
        assert_eq!(args[0].order, vec!["W", "T"]);
    }

    #[test]
    fn parse_binary_with_composite_orders() {
        let s = parse("SELECT * FROM ADD(a BY k1, x1, b BY k2, x2)").unwrap();
        let Statement::Select(sel) = s else { panic!() };
        let TableExpr::RmaCall { args, .. } = sel.from else {
            panic!()
        };
        assert_eq!(args[0].order, vec!["k1", "x1"]);
        assert_eq!(args[1].order, vec!["k2", "x2"]);
    }

    #[test]
    fn parse_paper_folded_query() {
        // the paper's §7.2 example
        let sql = "SELECT C, B/(M-1), H/(M-1), N/(M-1)
                   FROM MMU(w4 BY C, w3 BY U) AS w5
                   CROSS JOIN ( SELECT COUNT(*) AS M FROM w1 ) AS t";
        let s = parse(sql).unwrap();
        let Statement::Select(sel) = s else { panic!() };
        assert_eq!(sel.items.len(), 4);
        let TableExpr::CrossJoin { left, right } = sel.from else {
            panic!()
        };
        assert!(matches!(*left, TableExpr::RmaCall { .. }));
        assert!(matches!(*right, TableExpr::Subquery { .. }));
    }

    #[test]
    fn parse_joins_where_group_order_limit() {
        let sql = "SELECT u, AVG(x) AS a FROM t JOIN s ON t.k = s.k2 \
                   WHERE x > 1 AND u <> 'zz' GROUP BY u ORDER BY a DESC LIMIT 10";
        let Statement::Select(sel) = parse(sql).unwrap() else {
            panic!()
        };
        assert!(sel.where_clause.is_some());
        assert_eq!(sel.group_by, vec!["u"]);
        assert_eq!(sel.order_by, vec![("a".to_string(), false)]);
        assert_eq!(sel.limit, Some(10));
        let TableExpr::JoinOn { on, .. } = sel.from else {
            panic!()
        };
        assert_eq!(on[0].0.qualifier.as_deref(), Some("t"));
        assert_eq!(on[0].1.name, "k2");
    }

    #[test]
    fn parse_nested_rma_calls() {
        let s = parse("SELECT * FROM TRA(TRA(r BY T) BY C)").unwrap();
        let Statement::Select(sel) = s else { panic!() };
        let TableExpr::RmaCall { op, args, .. } = sel.from else {
            panic!()
        };
        assert_eq!(op, RmaOp::Tra);
        assert!(matches!(*args[0].table, TableExpr::RmaCall { .. }));
    }

    #[test]
    fn parse_create_insert_drop() {
        let c = parse("CREATE TABLE t (a INT, b DOUBLE, c VARCHAR(20))").unwrap();
        let Statement::CreateTable {
            name,
            columns,
            or_replace,
        } = c
        else {
            panic!()
        };
        assert_eq!(name, "t");
        assert_eq!(columns.len(), 3);
        assert_eq!(columns[1].1, DataType::Float);
        assert!(!or_replace);
        let i = parse("INSERT INTO t VALUES (1, 2.5, 'x'), (2, NULL, 'y')").unwrap();
        let Statement::Insert { rows, .. } = i else {
            panic!()
        };
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1][1], Value::Null);
        assert!(matches!(
            parse("DROP TABLE t").unwrap(),
            Statement::DropTable {
                if_exists: false,
                ..
            }
        ));
    }

    #[test]
    fn parse_or_replace_ctas_and_if_exists() {
        assert!(matches!(
            parse("CREATE OR REPLACE TABLE t (a INT)").unwrap(),
            Statement::CreateTable {
                or_replace: true,
                ..
            }
        ));
        let ctas = parse("CREATE OR REPLACE TABLE s AS SELECT a FROM t WHERE a > 1").unwrap();
        let Statement::CreateTableAs {
            name,
            query,
            or_replace,
        } = ctas
        else {
            panic!()
        };
        assert_eq!(name, "s");
        assert!(or_replace);
        assert!(query.where_clause.is_some());
        assert!(matches!(
            parse("DROP TABLE IF EXISTS t").unwrap(),
            Statement::DropTable {
                if_exists: true,
                ..
            }
        ));
        // malformed variants
        assert!(parse("CREATE OR TABLE t (a INT)").is_err());
        assert!(parse("CREATE TABLE t AS DROP TABLE u").is_err());
        assert!(parse("DROP TABLE IF t").is_err());
    }

    #[test]
    fn parse_count_star_and_aliases() {
        let Statement::Select(sel) = parse("SELECT COUNT(*) AS M, SUM(d) FROM trips tr").unwrap()
        else {
            panic!()
        };
        let SelectItem::Expr { expr, alias } = &sel.items[0] else {
            panic!()
        };
        assert_eq!(
            *expr,
            SqlExpr::Agg {
                func: AggFunc::CountStar,
                arg: None
            }
        );
        assert_eq!(alias.as_deref(), Some("M"));
        let TableExpr::Table { name, alias } = sel.from else {
            panic!()
        };
        assert_eq!(name, "trips");
        assert_eq!(alias.as_deref(), Some("tr"));
    }

    #[test]
    fn parse_script_multiple_statements() {
        let stmts =
            parse_script("CREATE TABLE t (a INT); INSERT INTO t VALUES (1); SELECT * FROM t;")
                .unwrap();
        assert_eq!(stmts.len(), 3);
    }

    #[test]
    fn parse_errors() {
        assert!(parse("SELECT").is_err());
        assert!(parse("SELECT * FROM").is_err());
        assert!(parse("SELECT * FROM INV(r)").is_err()); // missing BY
        assert!(parse("SELECT * FROM INV(r BY k, s BY j)").is_err()); // unary with 2 args
        assert!(parse("SELECT * FROM MMU(r BY k)").is_err()); // binary with 1 arg
        assert!(parse("SELECT * FROM t WHERE").is_err());
        assert!(parse("SELECT * FROM t extra garbage !").is_err());
    }

    #[test]
    fn expression_precedence() {
        let Statement::Select(sel) = parse("SELECT a + b * c FROM t").unwrap() else {
            panic!()
        };
        let SelectItem::Expr { expr, .. } = &sel.items[0] else {
            panic!()
        };
        // a + (b * c)
        let SqlExpr::Bin(_, BinOp::Add, rhs) = expr else {
            panic!()
        };
        assert!(matches!(**rhs, SqlExpr::Bin(_, BinOp::Mul, _)));
    }
}
