//! Abstract syntax tree for the SQL dialect.
//!
//! The dialect covers the paper's needs: SELECT-FROM-WHERE with joins,
//! grouping and aggregates, plus the RMA extension — relational matrix
//! operations as table expressions with `BY` order schemas (§7.2):
//!
//! ```sql
//! SELECT * FROM INV(r BY U);
//! SELECT * FROM MMU(r BY U, s BY V);
//! ```

use rma_core::RmaOp;
use rma_relation::{AggFunc, BinOp};
use rma_storage::{DataType, Value};

/// A parsed statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    Select(SelectStmt),
    /// `EXPLAIN SELECT ...`: render the optimized logical plan.
    Explain(SelectStmt),
    /// `EXPLAIN ANALYZE SELECT ...`: execute the query and render the plan
    /// annotated with actual rows, wall time, morsel counts, and the
    /// estimator's q-error per node.
    ExplainAnalyze(SelectStmt),
    /// `CREATE [OR REPLACE] TABLE name (col type, ...)`.
    CreateTable {
        name: String,
        columns: Vec<(String, DataType)>,
        /// `OR REPLACE`: overwrite an existing table (a generation bump in
        /// the versioned catalog) instead of erroring.
        or_replace: bool,
    },
    /// `CREATE [OR REPLACE] TABLE name AS SELECT ...`.
    CreateTableAs {
        name: String,
        query: SelectStmt,
        /// `OR REPLACE`: overwrite instead of erroring.
        or_replace: bool,
    },
    Insert {
        table: String,
        rows: Vec<Vec<Value>>,
    },
    /// `DROP TABLE [IF EXISTS] name`.
    DropTable {
        name: String,
        /// `IF EXISTS`: dropping a missing table succeeds silently.
        if_exists: bool,
    },
}

/// A SELECT statement.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    pub distinct: bool,
    pub items: Vec<SelectItem>,
    pub from: TableExpr,
    pub where_clause: Option<SqlExpr>,
    pub group_by: Vec<String>,
    pub order_by: Vec<(String, bool)>,
    pub limit: Option<usize>,
}

/// One item of the select list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// Expression with optional alias.
    Expr {
        expr: SqlExpr,
        alias: Option<String>,
    },
}

/// Table expressions of the FROM clause.
#[derive(Debug, Clone, PartialEq)]
pub enum TableExpr {
    /// Base table reference with optional alias.
    Table { name: String, alias: Option<String> },
    /// Derived table `( SELECT ... ) AS alias`.
    Subquery {
        query: Box<SelectStmt>,
        alias: String,
    },
    /// `left JOIN right ON l = r [AND ...]`.
    JoinOn {
        left: Box<TableExpr>,
        right: Box<TableExpr>,
        on: Vec<(ColRef, ColRef)>,
    },
    /// `left NATURAL JOIN right`.
    NaturalJoin {
        left: Box<TableExpr>,
        right: Box<TableExpr>,
    },
    /// `left CROSS JOIN right`.
    CrossJoin {
        left: Box<TableExpr>,
        right: Box<TableExpr>,
    },
    /// The RMA extension: `OP(t BY a, b [, t2 BY c])`.
    RmaCall {
        op: RmaOp,
        args: Vec<RmaArg>,
        alias: Option<String>,
    },
}

/// One argument of an RMA table expression: a table expression plus its
/// order schema.
#[derive(Debug, Clone, PartialEq)]
pub struct RmaArg {
    pub table: Box<TableExpr>,
    pub order: Vec<String>,
}

/// A possibly-qualified column reference.
#[derive(Debug, Clone, PartialEq)]
pub struct ColRef {
    pub qualifier: Option<String>,
    pub name: String,
}

impl ColRef {
    pub fn plain(name: impl Into<String>) -> Self {
        ColRef {
            qualifier: None,
            name: name.into(),
        }
    }
}

/// Scalar expressions (superset of the executable expressions: aggregates
/// are extracted during planning).
#[derive(Debug, Clone, PartialEq)]
pub enum SqlExpr {
    Col(ColRef),
    Lit(Value),
    Bin(Box<SqlExpr>, BinOp, Box<SqlExpr>),
    Neg(Box<SqlExpr>),
    Not(Box<SqlExpr>),
    IsNull(Box<SqlExpr>),
    IsNotNull(Box<SqlExpr>),
    /// Aggregate call; `arg` is `None` for `COUNT(*)`.
    Agg {
        func: AggFunc,
        arg: Option<ColRef>,
    },
    /// Unary scalar function call (SQRT, ABS).
    Func(rma_relation::ScalarFunc, Box<SqlExpr>),
}

impl SqlExpr {
    /// Does the expression contain an aggregate call?
    pub fn has_aggregate(&self) -> bool {
        match self {
            SqlExpr::Agg { .. } => true,
            SqlExpr::Col(_) | SqlExpr::Lit(_) => false,
            SqlExpr::Bin(l, _, r) => l.has_aggregate() || r.has_aggregate(),
            SqlExpr::Neg(e)
            | SqlExpr::Not(e)
            | SqlExpr::IsNull(e)
            | SqlExpr::IsNotNull(e)
            | SqlExpr::Func(_, e) => e.has_aggregate(),
        }
    }
}
