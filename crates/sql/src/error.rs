//! SQL-layer error type.

use rma_core::RmaError;
use rma_relation::RelationError;
use std::fmt;

/// Errors produced by the SQL frontend.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlError {
    /// Tokenizer error.
    Lex(String),
    /// Parser error.
    Parse(String),
    /// Unknown table.
    UnknownTable(String),
    /// A table with this name already exists.
    TableExists(String),
    /// Semantic error while planning (unknown columns, bad aggregates, …).
    Plan(String),
    /// Relational execution error.
    Relation(RelationError),
    /// Relational matrix operation error.
    Rma(RmaError),
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlError::Lex(m) => write!(f, "lex error: {m}"),
            SqlError::Parse(m) => write!(f, "parse error: {m}"),
            SqlError::UnknownTable(t) => write!(f, "unknown table `{t}`"),
            SqlError::TableExists(t) => write!(f, "table `{t}` already exists"),
            SqlError::Plan(m) => write!(f, "planning error: {m}"),
            SqlError::Relation(e) => write!(f, "{e}"),
            SqlError::Rma(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SqlError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SqlError::Relation(e) => Some(e),
            SqlError::Rma(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RelationError> for SqlError {
    fn from(e: RelationError) -> Self {
        SqlError::Relation(e)
    }
}

impl From<RmaError> for SqlError {
    fn from(e: RmaError) -> Self {
        SqlError::Rma(e)
    }
}

impl From<rma_core::ServeError> for SqlError {
    fn from(e: rma_core::ServeError) -> Self {
        use rma_core::ServeError;
        match e {
            ServeError::TableExists(t) => SqlError::TableExists(t),
            ServeError::NoSuchTable(t) => SqlError::UnknownTable(t),
            // an unresolved write conflict surfaces as a plan-level error;
            // the engine's INSERT loop retries conflicts internally, so
            // this only escapes on logic errors
            e @ ServeError::WriteConflict { .. } => SqlError::Plan(e.to_string()),
            // the bounded retry loop gave up — surface the typed
            // governance error so callers can back off and retry the
            // statement themselves
            ServeError::Contention { retries, .. } => {
                SqlError::Rma(RmaError::WriteContention { retries })
            }
        }
    }
}
