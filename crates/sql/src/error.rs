//! SQL-layer error type.

use rma_core::RmaError;
use rma_relation::RelationError;
use std::fmt;

/// Errors produced by the SQL frontend.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlError {
    /// Tokenizer error.
    Lex(String),
    /// Parser error.
    Parse(String),
    /// Unknown table.
    UnknownTable(String),
    /// A table with this name already exists.
    TableExists(String),
    /// Semantic error while planning (unknown columns, bad aggregates, …).
    Plan(String),
    /// Relational execution error.
    Relation(RelationError),
    /// Relational matrix operation error.
    Rma(RmaError),
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlError::Lex(m) => write!(f, "lex error: {m}"),
            SqlError::Parse(m) => write!(f, "parse error: {m}"),
            SqlError::UnknownTable(t) => write!(f, "unknown table `{t}`"),
            SqlError::TableExists(t) => write!(f, "table `{t}` already exists"),
            SqlError::Plan(m) => write!(f, "planning error: {m}"),
            SqlError::Relation(e) => write!(f, "{e}"),
            SqlError::Rma(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SqlError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SqlError::Relation(e) => Some(e),
            SqlError::Rma(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RelationError> for SqlError {
    fn from(e: RelationError) -> Self {
        SqlError::Relation(e)
    }
}

impl From<RmaError> for SqlError {
    fn from(e: RmaError) -> Self {
        SqlError::Rma(e)
    }
}
