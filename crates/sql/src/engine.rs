//! The SQL engine: parse → plan → optimize → execute.

use crate::ast::Statement;
use crate::catalog::Catalog;
use crate::error::SqlError;
use crate::executor::{execute, execute_analyzed};
use crate::optimizer::optimize;
use crate::parser::{parse, parse_script};
use crate::plan::{explain_with_stats, plan_select, Plan};
use rma_core::plan::explain_analyze;
use rma_core::serve::{Backoff, Server, SessionCounters};
use rma_core::{RmaContext, RmaError, RmaOptions, ServeError};
use rma_relation::{Relation, Schema, SessionTicket};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// Result of executing one statement.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryResult {
    /// A SELECT result.
    Relation(Relation),
    /// DDL/DML acknowledgement with affected-row count.
    Done { rows_affected: usize },
}

impl QueryResult {
    /// Unwrap a SELECT result.
    pub fn relation(self) -> Result<Relation, SqlError> {
        match self {
            QueryResult::Relation(r) => Ok(r),
            QueryResult::Done { .. } => Err(SqlError::Plan(
                "statement did not produce a relation".to_string(),
            )),
        }
    }
}

/// An embedded SQL engine over the RMA-extended dialect.
///
/// A private engine ([`Engine::new`]) owns its catalog; a *session* engine
/// ([`Engine::session`]) attaches to a [`Server`]'s shared versioned
/// catalog, executes on the server's worker pool under its own fair-
/// scheduling ticket, and records statistics into its own forked context —
/// many session engines on different threads serve one database
/// concurrently.
#[derive(Debug)]
pub struct Engine {
    pub catalog: Catalog,
    rma: RmaContext,
    /// The fair-scheduling ticket this engine's queries run under (seat
    /// budget + stride pass; unlimited for private engines).
    ticket: SessionTicket,
    /// Session-engine metrics cell, registered with the server's
    /// [`MetricsRegistry`](rma_core::MetricsRegistry); `None` for private
    /// engines.
    counters: Option<Arc<SessionCounters>>,
    /// Disable the optimizer to measure its effect (ablation benches).
    pub optimize: bool,
    /// Cap on optimistic-commit attempts per `INSERT` before the engine
    /// gives up with [`RmaError::WriteContention`] (default 16; `0`
    /// behaves as 1 — at least one attempt, never infinite).
    pub write_retry_limit: u32,
}

/// Default `INSERT` commit-attempt cap (matches the serve layer's
/// `Session` default).
const DEFAULT_WRITE_RETRIES: u32 = 16;

impl Default for Engine {
    fn default() -> Self {
        Engine::new()
    }
}

impl Engine {
    pub fn new() -> Self {
        Engine::with_options(RmaOptions::default())
    }

    /// Engine with explicit RMA options (backend, sort policy, threads, …).
    pub fn with_options(options: RmaOptions) -> Self {
        Engine {
            catalog: Catalog::new(),
            rma: RmaContext::new(options),
            ticket: SessionTicket::new(0),
            counters: None,
            optimize: true,
            write_retry_limit: DEFAULT_WRITE_RETRIES,
        }
    }

    /// A session engine on a [`Server`]: shares the server's versioned
    /// catalog (statements see other sessions' commits at statement
    /// boundaries; each statement runs against one pinned snapshot),
    /// executes on the server's pool under the default per-session seat
    /// budget, and keeps private [`ExecStats`](rma_core::ExecStats).
    pub fn session(server: &Server) -> Self {
        Engine::session_with_budget(server, server.default_budget())
    }

    /// A session engine with an explicit seat budget (`0` = no limit; `1`
    /// runs every morsel job inline on the issuing thread).
    pub fn session_with_budget(server: &Server, seats: usize) -> Self {
        Engine {
            catalog: Catalog::attached(Arc::clone(server.catalog())),
            rma: server.context().fork(),
            ticket: SessionTicket::new(seats),
            counters: Some(server.metrics().register_session()),
            optimize: true,
            write_retry_limit: DEFAULT_WRITE_RETRIES,
        }
    }

    /// The engine's metrics counter cell — `Some` for session engines
    /// (registered with the server's metrics registry), `None` for private
    /// engines.
    pub fn counters(&self) -> Option<&Arc<SessionCounters>> {
        self.counters.as_ref()
    }

    fn count_query(&self) {
        if let Some(c) = &self.counters {
            c.record_query();
        }
    }

    fn count_rows(&self, n: usize) {
        if let Some(c) = &self.counters {
            c.record_rows(n as u64);
        }
    }

    /// Run one plan execution with the resource-governor contract: an
    /// operator panic is caught *here* — the worker pool and shared
    /// catalog stay clean — and surfaces as the typed
    /// [`RmaError::WorkerPanicked`]; governance errors (cancellation,
    /// deadline kills, budget breaches) are classified into the session's
    /// metrics cell on the way out.
    fn contain<T>(&self, body: impl FnOnce() -> Result<T, SqlError>) -> Result<T, SqlError> {
        // AssertUnwindSafe: on unwind the body's borrows (catalog, context,
        // ticket) are all internally synchronized or append-only; nothing
        // half-mutated survives the catch
        let out = match catch_unwind(AssertUnwindSafe(body)) {
            Ok(r) => r,
            Err(payload) => {
                if let Some(c) = &self.counters {
                    c.record_worker_panic();
                }
                let message = payload
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".to_string());
                return Err(SqlError::Rma(RmaError::WorkerPanicked { message }));
            }
        };
        if let (Some(c), Err(SqlError::Rma(e))) = (&self.counters, &out) {
            match e {
                RmaError::Cancelled => c.record_cancelled(),
                RmaError::DeadlineExceeded => c.record_deadline_kill(),
                RmaError::ResourceExhausted { .. } => c.record_mem_rejection(),
                _ => {}
            }
        }
        out
    }

    /// Engine with an explicit worker-thread count for plan execution
    /// (`1` forces the serial plan interpreter; other options default —
    /// the dense kernels keep their process-wide `RMA_THREADS` budget).
    pub fn with_threads(threads: usize) -> Self {
        Engine::with_options(RmaOptions {
            threads: threads.max(1),
            ..RmaOptions::default()
        })
    }

    /// The RMA execution context (for reading kernel statistics).
    pub fn rma_context(&self) -> &RmaContext {
        &self.rma
    }

    /// Register a Rust-created relation as a table.
    pub fn register(&mut self, name: &str, relation: Relation) -> Result<(), SqlError> {
        self.catalog.register(name, relation)
    }

    /// Execute one SQL statement.
    pub fn execute(&mut self, sql: &str) -> Result<QueryResult, SqlError> {
        let stmt = parse(sql)?;
        self.run_statement(stmt)
    }

    /// Execute a `;`-separated script, returning the last result.
    pub fn execute_script(&mut self, sql: &str) -> Result<QueryResult, SqlError> {
        let stmts = parse_script(sql)?;
        let mut last = QueryResult::Done { rows_affected: 0 };
        for stmt in stmts {
            last = self.run_statement(stmt)?;
        }
        Ok(last)
    }

    /// Convenience: run a SELECT and return the relation.
    pub fn query(&mut self, sql: &str) -> Result<Relation, SqlError> {
        self.execute(sql)?.relation()
    }

    /// EXPLAIN: the (optimized) plan of a SELECT, as text — one node per
    /// line, annotated with estimated output rows (`rows≈`) and
    /// accumulated cost (`cost≈`). Also reachable as the SQL statement
    /// `EXPLAIN SELECT ...`. See the crate-level docs for the format.
    pub fn explain(&self, sql: &str) -> Result<String, SqlError> {
        let stmt = parse(sql)?;
        let sel = match stmt {
            Statement::Select(sel) | Statement::Explain(sel) => sel,
            _ => return Err(SqlError::Plan("EXPLAIN requires a SELECT".to_string())),
        };
        let plan = self.build_plan(&sel)?;
        Ok(explain_with_stats(&plan, &self.catalog))
    }

    /// EXPLAIN ANALYZE: **execute** a SELECT with per-node profiling and
    /// return the plan text annotated with actual output rows, inclusive
    /// wall time, morsel counts, and the estimator's q-error
    /// (`max(est/actual, actual/est)`) per node. Also reachable as the SQL
    /// statement `EXPLAIN ANALYZE SELECT ...`.
    pub fn explain_analyze(&mut self, sql: &str) -> Result<String, SqlError> {
        let stmt = parse(sql)?;
        let sel = match stmt {
            Statement::Select(sel) | Statement::Explain(sel) | Statement::ExplainAnalyze(sel) => {
                sel
            }
            _ => {
                return Err(SqlError::Plan(
                    "EXPLAIN ANALYZE requires a SELECT".to_string(),
                ))
            }
        };
        self.catalog.refresh();
        let plan = self.build_plan(&sel)?;
        let actuals = self.contain(|| {
            let _seat = self.ticket.activate();
            self.count_query();
            let (_, actuals) = execute_analyzed(&plan, &self.catalog, &self.rma)?;
            Ok(actuals)
        })?;
        Ok(explain_analyze(&plan, &self.catalog, &actuals))
    }

    fn build_plan(&self, sel: &crate::ast::SelectStmt) -> Result<Plan, SqlError> {
        let plan = plan_select(sel)?;
        Ok(if self.optimize {
            optimize(plan, &self.catalog, &self.rma)
        } else {
            plan
        })
    }

    fn run_statement(&mut self, stmt: Statement) -> Result<QueryResult, SqlError> {
        // statement boundary: re-pin the catalog so this statement sees the
        // latest committed state (its own prior writes and, for session
        // engines, other sessions' commits); within the statement the pin
        // is frozen — one statement, one snapshot
        self.catalog.refresh();
        match stmt {
            Statement::Select(sel) => {
                let plan = self.build_plan(&sel)?;
                let rel = self.contain(|| {
                    // the session ticket is active for the whole execution,
                    // so every morsel job the plan submits is seat-budgeted
                    // and fairly interleaved with other sessions' jobs
                    let _seat = self.ticket.activate();
                    self.count_query();
                    // the query result is a pipeline sink: compact any
                    // selection-vector view before handing it to the caller
                    Ok(execute(&plan, &self.catalog, &self.rma)?.materialize())
                })?;
                self.count_rows(rel.len());
                Ok(QueryResult::Relation(rel))
            }
            Statement::ExplainAnalyze(sel) => {
                let plan = self.build_plan(&sel)?;
                let lines: Vec<String> = self.contain(|| {
                    let _seat = self.ticket.activate();
                    self.count_query();
                    let (_, actuals) = execute_analyzed(&plan, &self.catalog, &self.rma)?;
                    Ok(explain_analyze(&plan, &self.catalog, &actuals)
                        .lines()
                        .map(str::to_string)
                        .collect())
                })?;
                let rel = rma_relation::RelationBuilder::new()
                    .column("plan", lines)
                    .build()
                    .map_err(SqlError::Relation)?;
                Ok(QueryResult::Relation(rel))
            }
            Statement::Explain(sel) => {
                let plan = self.build_plan(&sel)?;
                let lines: Vec<String> = explain_with_stats(&plan, &self.catalog)
                    .lines()
                    .map(str::to_string)
                    .collect();
                let rel = rma_relation::RelationBuilder::new()
                    .column("plan", lines)
                    .build()
                    .map_err(SqlError::Relation)?;
                Ok(QueryResult::Relation(rel))
            }
            Statement::CreateTable {
                name,
                columns,
                or_replace,
            } => {
                let schema = Schema::new(
                    columns
                        .iter()
                        .map(|(n, t)| rma_relation::Attribute::new(n.clone(), *t))
                        .collect(),
                )
                .map_err(SqlError::Relation)?;
                let empty = Relation::empty(schema);
                if or_replace {
                    self.catalog.put(&name, empty);
                } else {
                    self.catalog.register(&name, empty)?;
                }
                Ok(QueryResult::Done { rows_affected: 0 })
            }
            Statement::CreateTableAs {
                name,
                query,
                or_replace,
            } => {
                let plan = self.build_plan(&query)?;
                let rel = self.contain(|| {
                    let _seat = self.ticket.activate();
                    Ok(execute(&plan, &self.catalog, &self.rma)?.materialize())
                })?;
                let n = rel.len();
                if or_replace {
                    self.catalog.put(&name, rel);
                } else {
                    self.catalog.register(&name, rel)?;
                }
                Ok(QueryResult::Done { rows_affected: n })
            }
            Statement::Insert { table, rows } => {
                // MVCC-lite append: prepare the successor generation from a
                // pinned snapshot and install it first-committer-wins; on
                // conflict re-pin and re-prepare after a decorrelated-
                // jitter backoff. Readers are never blocked — they keep
                // executing against their own pins. Attempts are bounded
                // (write_retry_limit, default 16): a pathologically
                // contended table surfaces `RmaError::WriteContention`
                // instead of looping forever.
                let shared = Arc::clone(self.catalog.shared());
                let n = rows.len();
                let limit = self.write_retry_limit.max(1);
                let mut backoff = Backoff::default();
                let mut committed = false;
                for attempt in 1..=limit {
                    let snap = shared.snapshot();
                    let Some(generation) = snap.get(&table) else {
                        return Err(SqlError::UnknownTable(table));
                    };
                    let base = generation.relation();
                    let incoming = Relation::from_rows(base.schema().clone(), &rows)
                        .map_err(SqlError::Relation)?;
                    let next = base.appended(&incoming).map_err(SqlError::Relation)?;
                    match shared.commit(&table, generation.generation(), next) {
                        Ok(_) => {
                            committed = true;
                            break;
                        }
                        Err(ServeError::WriteConflict { .. }) => {
                            if let Some(c) = &self.counters {
                                c.record_conflict();
                            }
                            if attempt < limit {
                                backoff.sleep();
                            }
                        }
                        Err(e) => return Err(e.into()),
                    }
                }
                if !committed {
                    return Err(ServeError::Contention {
                        table,
                        retries: limit,
                    }
                    .into());
                }
                self.catalog.refresh();
                Ok(QueryResult::Done { rows_affected: n })
            }
            Statement::DropTable { name, if_exists } => {
                if self.catalog.remove(&name).is_none() && !if_exists {
                    return Err(SqlError::UnknownTable(name));
                }
                Ok(QueryResult::Done { rows_affected: 0 })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rma_storage::Value;

    fn engine_with_rating() -> Engine {
        let mut e = Engine::new();
        e.execute("CREATE TABLE rating (u VARCHAR, Balto DOUBLE, Heat DOUBLE, Net DOUBLE)")
            .unwrap();
        e.execute(
            "INSERT INTO rating VALUES ('Ann', 2.0, 1.5, 0.5), ('Tom', 0.0, 0.0, 1.5), ('Jan', 1.0, 4.0, 1.0)",
        )
        .unwrap();
        e
    }

    #[test]
    fn create_insert_select() {
        let mut e = engine_with_rating();
        let r = e.query("SELECT * FROM rating WHERE u = 'Ann'").unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r.cell(0, "Balto").unwrap(), Value::Float(2.0));
    }

    #[test]
    fn paper_intro_query() {
        let mut e = engine_with_rating();
        let inv = e.query("SELECT * FROM INV(rating BY u)").unwrap();
        assert_eq!(inv.len(), 3);
        let names: Vec<_> = inv.schema().names().collect();
        assert_eq!(names, vec!["u", "Balto", "Heat", "Net"]);
        // rows sorted by user: Ann, Jan, Tom
        assert_eq!(inv.cell(0, "u").unwrap(), Value::from("Ann"));
        assert_eq!(inv.cell(1, "u").unwrap(), Value::from("Jan"));
    }

    #[test]
    fn nested_rma_and_relational() {
        let mut e = engine_with_rating();
        let r = e
            .query("SELECT * FROM TRA(TRA(rating BY u) BY C) WHERE C = 'Jan'")
            .unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r.cell(0, "Heat").unwrap(), Value::Float(4.0));
    }

    #[test]
    fn aggregates_and_arithmetic() {
        let mut e = engine_with_rating();
        let r = e
            .query("SELECT COUNT(*) AS n, AVG(Heat) AS h FROM rating")
            .unwrap();
        assert_eq!(r.cell(0, "n").unwrap(), Value::Int(3));
        let Value::Float(h) = r.cell(0, "h").unwrap() else {
            panic!()
        };
        assert!((h - (1.5 + 4.0) / 3.0).abs() < 1e-12);
        let r = e
            .query("SELECT u, Balto + Net AS s FROM rating ORDER BY s DESC LIMIT 1")
            .unwrap();
        assert_eq!(r.cell(0, "u").unwrap(), Value::from("Ann"));
    }

    #[test]
    fn insert_appends() {
        let mut e = engine_with_rating();
        let res = e
            .execute("INSERT INTO rating VALUES ('Zoe', 1.0, 1.0, 1.0)")
            .unwrap();
        assert_eq!(res, QueryResult::Done { rows_affected: 1 });
        assert_eq!(e.query("SELECT * FROM rating").unwrap().len(), 4);
    }

    #[test]
    fn drop_and_unknown_tables() {
        let mut e = engine_with_rating();
        e.execute("DROP TABLE rating").unwrap();
        assert!(matches!(
            e.query("SELECT * FROM rating"),
            Err(SqlError::UnknownTable(_))
        ));
        assert!(e.execute("DROP TABLE rating").is_err());
    }

    #[test]
    fn create_or_replace_swaps_the_table() {
        let mut e = engine_with_rating();
        assert!(matches!(
            e.execute("CREATE TABLE rating (x INT)"),
            Err(SqlError::TableExists(_))
        ));
        e.execute("CREATE OR REPLACE TABLE rating (x INT)").unwrap();
        assert_eq!(e.query("SELECT * FROM rating").unwrap().len(), 0);
    }

    #[test]
    fn create_table_as_select() {
        let mut e = engine_with_rating();
        let res = e
            .execute("CREATE TABLE hot AS SELECT u, Heat FROM rating WHERE Heat > 1")
            .unwrap();
        assert_eq!(res, QueryResult::Done { rows_affected: 2 });
        let r = e.query("SELECT * FROM hot ORDER BY u").unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r.cell(0, "u").unwrap(), Value::from("Ann"));
        // duplicate CTAS errors; OR REPLACE overwrites
        assert!(e
            .execute("CREATE TABLE hot AS SELECT * FROM rating")
            .is_err());
        e.execute("CREATE OR REPLACE TABLE hot AS SELECT u FROM rating")
            .unwrap();
        let names: Vec<_> = e
            .query("SELECT * FROM hot")
            .unwrap()
            .schema()
            .names()
            .map(str::to_string)
            .collect();
        assert_eq!(names, vec!["u"]);
    }

    #[test]
    fn drop_if_exists_is_idempotent() {
        let mut e = Engine::new();
        e.execute("DROP TABLE IF EXISTS ghost").unwrap();
        assert!(e.execute("DROP TABLE ghost").is_err());
    }

    #[test]
    fn session_engines_share_a_server_catalog() {
        let server = Server::new(rma_core::RmaContext::default());
        let mut a = Engine::session(&server);
        let mut b = Engine::session(&server);
        a.execute("CREATE TABLE t (x INT)").unwrap();
        a.execute("INSERT INTO t VALUES (1), (2)").unwrap();
        // b re-pins at its next statement boundary and sees a's commit
        assert_eq!(b.query("SELECT * FROM t").unwrap().len(), 2);
        // concurrent session engines append through the optimistic commit
        // loop: every row lands despite conflicting writers
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let server = &server;
                scope.spawn(move || {
                    let mut e = Engine::session(server);
                    for i in 0..25 {
                        e.execute(&format!("INSERT INTO t VALUES ({i})")).unwrap();
                    }
                });
            }
        });
        let n = b.query("SELECT COUNT(*) AS n FROM t").unwrap();
        assert_eq!(n.cell(0, "n").unwrap(), Value::Int(102));
        // per-session stats: a's matrix ops are not attributed to b
        a.execute("CREATE TABLE m (k VARCHAR, v1 DOUBLE, v2 DOUBLE)")
            .unwrap();
        a.execute("INSERT INTO m VALUES ('a', 2.0, 0.0), ('b', 0.0, 2.0)")
            .unwrap();
        a.query("SELECT * FROM INV(m BY k)").unwrap();
        assert!(a.rma_context().stats().ops_run >= 1);
        assert_eq!(b.rma_context().stats().ops_run, 0);
    }

    #[test]
    fn explain_shows_pushdown() {
        let mut e = engine_with_rating();
        e.execute("CREATE TABLE f (t VARCHAR, d VARCHAR)").unwrap();
        let plan = e
            .explain("SELECT * FROM rating JOIN f ON u = t WHERE d = 'Lee'")
            .unwrap();
        let join = plan.find("JoinOn").unwrap();
        let filt = plan.find("Select").unwrap();
        assert!(filt > join, "expected pushdown:\n{plan}");
        // and without the optimizer the filter stays on top
        e.optimize = false;
        let plan = e
            .explain("SELECT * FROM rating JOIN f ON u = t WHERE d = 'Lee'")
            .unwrap();
        assert!(plan.starts_with("Select"));
    }

    #[test]
    fn execute_script_returns_last() {
        let mut e = Engine::new();
        let r = e
            .execute_script(
                "CREATE TABLE t (a INT); INSERT INTO t VALUES (1),(2); SELECT * FROM t;",
            )
            .unwrap()
            .relation()
            .unwrap();
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn contention_maps_to_the_typed_write_contention_error() {
        let e: SqlError = ServeError::Contention {
            table: "t".to_string(),
            retries: 16,
        }
        .into();
        assert!(
            matches!(e, SqlError::Rma(RmaError::WriteContention { retries: 16 })),
            "got {e:?}"
        );
    }

    #[test]
    fn insert_type_mismatch_rejected() {
        let mut e = Engine::new();
        e.execute("CREATE TABLE t (a INT)").unwrap();
        assert!(e.execute("INSERT INTO t VALUES ('x')").is_err());
    }

    #[test]
    fn rma_error_surfaces() {
        let mut e = engine_with_rating();
        // duplicate order values: Balto is not a key of (Balto-only proj)?
        e.execute("CREATE TABLE dup (k INT, x DOUBLE)").unwrap();
        e.execute("INSERT INTO dup VALUES (1, 1.0), (1, 2.0)")
            .unwrap();
        assert!(matches!(
            e.query("SELECT * FROM QQR(dup BY k)"),
            Err(SqlError::Rma(_))
        ));
    }

    #[test]
    fn explain_statement_returns_plan_relation() {
        let mut e = engine_with_rating();
        let r = e.query("EXPLAIN SELECT * FROM INV(rating BY u)").unwrap();
        let names: Vec<_> = r.schema().names().collect();
        assert_eq!(names, vec!["plan"]);
        let text: Vec<String> = (0..r.len())
            .map(|i| r.cell(i, "plan").unwrap().to_string())
            .collect();
        let joined = text.join("\n");
        assert!(joined.contains("Rma INV"), "unexpected plan:\n{joined}");
        assert!(joined.contains("Scan rating"), "unexpected plan:\n{joined}");
        // EXPLAIN of a non-SELECT is a parse error
        assert!(e.execute("EXPLAIN DROP TABLE rating").is_err());
    }

    #[test]
    fn explain_analyze_reports_actuals_on_a_three_way_join() {
        let mut e = Engine::new();
        e.execute("CREATE TABLE a (k INT, x INT)").unwrap();
        e.execute("CREATE TABLE b (k2 INT, y INT)").unwrap();
        e.execute("CREATE TABLE c (k3 INT, z INT)").unwrap();
        for t in ["a", "b", "c"] {
            let rows: Vec<String> = (0..200).map(|i| format!("({i}, {})", i % 9)).collect();
            e.execute(&format!("INSERT INTO {t} VALUES {}", rows.join(", ")))
                .unwrap();
        }
        let text = e
            .explain_analyze("SELECT * FROM a JOIN b ON k = k2 JOIN c ON k2 = k3 WHERE x < 5")
            .unwrap();
        // every node line carries actuals: rows, wall time, morsels, q-error
        for line in text.lines() {
            assert!(line.contains("actual="), "missing actuals: {line}");
            assert!(line.contains("time="), "missing time: {line}");
            assert!(line.contains("q_err="), "missing q-error: {line}");
        }
        assert_eq!(
            text.matches("JoinOn").count(),
            2,
            "expected a 3-way join:\n{text}"
        );
        // the join keys match row-for-row, so each join outputs 200 rows
        // pre-filter; the root reports the filtered count
        assert!(text.contains("actual="), "no actuals:\n{text}");

        // and the SQL statement form returns the same text as a relation
        let r = e
            .query("EXPLAIN ANALYZE SELECT * FROM a JOIN b ON k = k2 JOIN c ON k2 = k3")
            .unwrap();
        assert_eq!(r.schema().names().collect::<Vec<_>>(), vec!["plan"]);
        let joined: Vec<String> = (0..r.len())
            .map(|i| r.cell(i, "plan").unwrap().to_string())
            .collect();
        assert!(joined.iter().all(|l| l.contains("actual=")), "{joined:?}");
        // EXPLAIN ANALYZE of a non-SELECT is a parse error
        assert!(e.execute("EXPLAIN ANALYZE DROP TABLE a").is_err());
    }

    #[test]
    fn session_engines_report_metrics() {
        let server = Server::new(rma_core::RmaContext::default());
        let mut a = Engine::session(&server);
        let mut b = Engine::session(&server);
        assert!(a.counters().is_some());
        assert!(Engine::new().counters().is_none());
        a.execute("CREATE TABLE t (x INT)").unwrap();
        a.execute("INSERT INTO t VALUES (1), (2), (3)").unwrap();
        a.query("SELECT * FROM t").unwrap();
        a.query("SELECT * FROM t WHERE x > 1").unwrap();
        b.query("SELECT * FROM t").unwrap();
        let snap = server.metrics_snapshot();
        assert_eq!(snap.queries, 3);
        assert_eq!(snap.rows, 3 + 2 + 3);
        assert_eq!(snap.sessions.len(), 2);
        assert_eq!(snap.sessions[0].queries, 2);
        assert_eq!(snap.sessions[1].rows, 3);
        let json = snap.to_json();
        assert!(json.contains("\"queries\":3"), "{json}");
    }

    #[test]
    fn sql_consecutive_rma_ops_share_one_sort() {
        let mut e = engine_with_rating();
        // snapshot: the outer INV's argument is flagged as pre-sorted
        let plan = e
            .explain("SELECT * FROM INV(INV(rating BY u) BY u)")
            .unwrap();
        assert_eq!(
            plan.matches("(sorted: skip sort)").count(),
            1,
            "redundant sort not eliminated:\n{plan}"
        );
        // runtime: exactly one sort is performed for the whole query
        e.rma_context().reset_stats();
        let out = e.query("SELECT * FROM INV(INV(rating BY u) BY u)").unwrap();
        assert_eq!(e.rma_context().stats().sorts, 1);
        // the double inversion returns the original matrix
        let orig = e.query("SELECT * FROM rating").unwrap();
        let sorted = out.sorted_by(&["u"]).unwrap();
        let orig_sorted = orig.sorted_by(&["u"]).unwrap();
        for i in 0..3 {
            for c in ["Balto", "Heat", "Net"] {
                let rma_storage::Value::Float(a) = sorted.cell(i, c).unwrap() else {
                    panic!()
                };
                let rma_storage::Value::Float(b) = orig_sorted.cell(i, c).unwrap() else {
                    panic!()
                };
                assert!((a - b).abs() < 1e-9, "{c}[{i}]: {a} vs {b}");
            }
        }
    }

    #[test]
    fn parallel_engine_matches_serial() {
        // the same script executed at 1 and 4 worker threads produces
        // identical relations (scan→filter pipeline, join, aggregation)
        let build = |threads: usize| {
            let mut e = Engine::with_threads(threads);
            e.execute("CREATE TABLE t (k INT, g INT, x DOUBLE)")
                .unwrap();
            let rows: Vec<String> = (0..500)
                .map(|i| format!("({}, {}, {}.0)", i, i % 7, (i * 3) % 11))
                .collect();
            e.execute(&format!("INSERT INTO t VALUES {}", rows.join(", ")))
                .unwrap();
            e
        };
        let queries = [
            "SELECT k, x FROM t WHERE x > 4 AND k < 400",
            "SELECT g, COUNT(*) AS n, SUM(x) AS s FROM t WHERE k > 10 GROUP BY g",
            "SELECT * FROM t a JOIN (SELECT g AS g2, AVG(x) AS m FROM t GROUP BY g) b ON g = g2 WHERE k < 50",
        ];
        let mut serial = build(1);
        let mut parallel = build(4);
        for q in queries {
            assert_eq!(serial.query(q).unwrap(), parallel.query(q).unwrap(), "{q}");
        }
    }

    #[test]
    fn explain_shows_topk_replacing_sort_limit() {
        let mut e = engine_with_rating();
        let plan = e
            .explain("SELECT u, Heat FROM rating ORDER BY Heat DESC LIMIT 2")
            .unwrap();
        assert!(plan.contains("TopK"), "expected TopK:\n{plan}");
        assert!(!plan.contains("OrderBy"), "sort not fused:\n{plan}");
        assert!(!plan.contains("Limit"), "limit not fused:\n{plan}");
        // without the optimizer the Sort+Limit pair survives
        e.optimize = false;
        let plan = e
            .explain("SELECT u, Heat FROM rating ORDER BY Heat DESC LIMIT 2")
            .unwrap();
        assert!(plan.contains("OrderBy") && plan.contains("Limit"));
        // and the fused plan returns the right rows
        e.optimize = true;
        let r = e
            .query("SELECT u, Heat FROM rating ORDER BY Heat DESC LIMIT 2")
            .unwrap();
        assert_eq!(r.cell(0, "u").unwrap(), Value::from("Jan"));
        assert_eq!(r.cell(1, "u").unwrap(), Value::from("Ann"));
    }

    #[test]
    fn paper_folded_query_runs() {
        // the §7.2 SQL translation, end to end on the Figure 5/7 data
        let mut e = Engine::new();
        e.execute("CREATE TABLE w1 (U VARCHAR, B DOUBLE, H DOUBLE, N DOUBLE)")
            .unwrap();
        e.execute("INSERT INTO w1 VALUES ('Ann', 2.0, 1.5, 0.5), ('Jan', 1.0, 4.0, 1.0)")
            .unwrap();
        e.execute("CREATE TABLE w3 (U VARCHAR, B DOUBLE, H DOUBLE, N DOUBLE)")
            .unwrap();
        e.execute("INSERT INTO w3 VALUES ('Ann', -0.5, -1.25, -0.25), ('Jan', 0.5, 1.25, 0.25)")
            .unwrap();
        // w4 = TRA(w3 BY U) as a subexpression of the folded query
        let r = e
            .query(
                "SELECT C, B/(M-1) AS B, H/(M-1) AS H, N/(M-1) AS N \
                 FROM MMU(TRA(w3 BY U) BY C, w3 BY U) AS w5 \
                 CROSS JOIN ( SELECT COUNT(*) AS M FROM w1 ) AS t",
            )
            .unwrap();
        assert_eq!(r.len(), 3);
        let names: Vec<_> = r.schema().names().collect();
        assert_eq!(names, vec!["C", "B", "H", "N"]);
        // covariance of B with B over the two centred rows: (0.25+0.25)/1
        let sorted = r.sorted_by(&["C"]).unwrap();
        assert_eq!(sorted.cell(0, "C").unwrap(), Value::from("B"));
        assert_eq!(sorted.cell(0, "B").unwrap(), Value::Float(0.5));
    }
}
