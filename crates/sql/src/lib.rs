//! # rma-sql — SQL frontend with the RMA table-expression extension
//!
//! Implements the paper's §7.2 SQL integration: relational matrix
//! operations appear in the FROM clause as table expressions with `BY`
//! order schemas, composable with joins, subqueries, aggregates, and
//! ordinary SQL:
//!
//! ```
//! use rma_sql::Engine;
//!
//! let mut e = Engine::new();
//! e.execute("CREATE TABLE r (t VARCHAR, h DOUBLE, w DOUBLE)").unwrap();
//! e.execute("INSERT INTO r VALUES ('7am', 6.0, 7.0), ('8am', 8.0, 5.0)").unwrap();
//! let inv = e.query("SELECT * FROM INV(r BY t)").unwrap();
//! assert_eq!(inv.len(), 2);
//! ```
//!
//! ## EXPLAIN output format
//!
//! `EXPLAIN SELECT ...` (and [`Engine::explain`]) renders the *optimized*
//! plan as an indented tree, one node per line, children indented two
//! spaces under their parent. The first child of a join is the left
//! (probe) side. Node headers are:
//!
//! | header | node |
//! |---|---|
//! | `Scan t` / `Values r rows=N` | table scan (named / in-memory); `project=[..]` marks optimizer column pruning |
//! | `Select <predicate>` | σ |
//! | `Project [cols]` | π / generalised projection |
//! | `Aggregate group_by=.. aggs=N` | ϑ |
//! | `JoinOn [("l", "r"), ..]` / `NaturalJoin` / `Cross` | joins |
//! | `OrderBy [..]` / `Limit n` / `TopK [..] n=..` | sort, limit, and the fused bounded-heap top-k |
//! | `Rma OP BY [..]` | relational matrix operation; `(sorted: skip sort)` marks an eliminated sort, `backend=..` the plan-level kernel choice |
//! | `Distinct` / `UnionAll` / `AssertKey [..]` | the rest |
//!
//! Every line ends with two *cost annotations* estimated from table
//! statistics (see `rma_core::plan::stats`):
//!
//! - `rows≈N` — estimated output cardinality of the node;
//! - `cost≈C` — accumulated cost of the subtree in rows-touched units.
//!
//! The annotations make the cost-based join order observable: in
//! `EXPLAIN SELECT * FROM fact JOIN big ON .. JOIN small ON .. WHERE
//! small.p = 3`, the optimizer joins the filtered `small` table first
//! however the query was written, and the `rows≈` column shows why (the
//! early join collapses the intermediate cardinality):
//!
//! ```
//! use rma_sql::Engine;
//!
//! let mut e = Engine::new();
//! e.execute("CREATE TABLE fact (fk INT, v DOUBLE)").unwrap();
//! e.execute("CREATE TABLE dim (k INT, p INT)").unwrap();
//! e.execute("INSERT INTO fact VALUES (0, 1.0), (1, 2.0), (0, 3.0)").unwrap();
//! e.execute("INSERT INTO dim VALUES (0, 10), (1, 20)").unwrap();
//! let plan = e.explain("SELECT * FROM fact JOIN dim ON fk = k WHERE p = 10").unwrap();
//! assert!(plan.contains("rows≈") && plan.contains("cost≈"));
//! assert!(plan.contains("JoinOn"));
//! ```

pub mod ast;
pub mod catalog;
pub mod engine;
pub mod error;
pub mod executor;
pub mod lexer;
pub mod optimizer;
pub mod parser;
pub mod plan;

pub use catalog::Catalog;
pub use engine::{Engine, QueryResult};
pub use error::SqlError;
pub use parser::{parse, parse_script};
pub use plan::{explain, explain_with_stats, plan_select, Plan};
