//! # rma-sql — SQL frontend with the RMA table-expression extension
//!
//! Implements the paper's §7.2 SQL integration: relational matrix
//! operations appear in the FROM clause as table expressions with `BY`
//! order schemas, composable with joins, subqueries, aggregates, and
//! ordinary SQL:
//!
//! ```
//! use rma_sql::Engine;
//!
//! let mut e = Engine::new();
//! e.execute("CREATE TABLE r (t VARCHAR, h DOUBLE, w DOUBLE)").unwrap();
//! e.execute("INSERT INTO r VALUES ('7am', 6.0, 7.0), ('8am', 8.0, 5.0)").unwrap();
//! let inv = e.query("SELECT * FROM INV(r BY t)").unwrap();
//! assert_eq!(inv.len(), 2);
//! ```

pub mod ast;
pub mod catalog;
pub mod engine;
pub mod error;
pub mod executor;
pub mod lexer;
pub mod optimizer;
pub mod parser;
pub mod plan;

pub use catalog::Catalog;
pub use engine::{Engine, QueryResult};
pub use error::SqlError;
pub use parser::{parse, parse_script};
pub use plan::{explain, plan_select, Plan};
