//! DBLP-like publication counts and conference rankings (§8.6(3)).
//!
//! The paper pivots DBLP into a wide relation: one row per author, one
//! column per conference holding the author's publication count there, plus
//! a ranking table (conference → rating). Publication counts are sparse
//! (most authors publish at few venues) — we match that with a per-author
//! venue set of geometric size.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rma_relation::{Attribute, Relation, Schema};
use rma_storage::{Column, ColumnData, DataType};

/// Conference name for column `i`.
pub fn conference_name(i: usize) -> String {
    format!("conf{i:04}")
}

/// The pivoted publication relation: (author, conf0000, conf0001, …) with
/// integer publication counts; `author` is the key.
pub fn publications(authors: usize, conferences: usize, seed: u64) -> Relation {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut counts: Vec<Vec<i64>> = vec![vec![0; authors]; conferences];
    #[allow(clippy::needless_range_loop)]
    for a in 0..authors {
        // geometric-ish number of venues, capped
        let mut venues = 1 + (rng.gen_range(0.0f64..1.0).powi(3) * 9.0) as usize;
        venues = venues.min(conferences);
        for _ in 0..venues {
            // favour low-index (big) conferences
            let u: f64 = rng.gen();
            let c = ((u * u * conferences as f64) as usize).min(conferences - 1);
            counts[c][a] += rng.gen_range(1..6);
        }
    }
    let mut attrs = vec![Attribute::new("author", DataType::Str)];
    let mut columns = vec![Column::new(ColumnData::Str(
        (0..authors).map(|i| format!("author{i:06}")).collect(),
    ))];
    for (c, col) in counts.into_iter().enumerate() {
        attrs.push(Attribute::new(conference_name(c), DataType::Int));
        columns.push(Column::new(ColumnData::Int(col)));
    }
    Relation::new(Schema::new(attrs).expect("distinct"), columns)
        .expect("rect")
        .with_name("publication")
}

/// The ranking relation: (conf, rating) with ratings from {A++, A+, A, B, C};
/// roughly 5% of conferences are A++ (the paper joins on those).
pub fn rankings(conferences: usize, seed: u64) -> Relation {
    let mut rng = StdRng::seed_from_u64(seed);
    let names: Vec<String> = (0..conferences).map(conference_name).collect();
    let ratings: Vec<String> = (0..conferences)
        .map(|_| {
            let u: f64 = rng.gen();
            match u {
                x if x < 0.05 => "A++",
                x if x < 0.20 => "A+",
                x if x < 0.45 => "A",
                x if x < 0.75 => "B",
                _ => "C",
            }
            .to_string()
        })
        .collect();
    let mut attrs = vec![
        Attribute::new("conf", DataType::Str),
        Attribute::new("rating", DataType::Str),
    ];
    let columns = vec![
        Column::new(ColumnData::Str(names)),
        Column::new(ColumnData::Str(ratings)),
    ];
    attrs.shrink_to_fit();
    Relation::new(Schema::new(attrs).expect("distinct"), columns)
        .expect("rect")
        .with_name("ranking")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publications_shape() {
        let p = publications(200, 30, 1);
        assert_eq!(p.len(), 200);
        assert_eq!(p.schema().len(), 31);
        assert!(p.attrs_form_key(&["author"]).unwrap());
    }

    #[test]
    fn counts_are_sparse_and_nonnegative() {
        let p = publications(300, 40, 2);
        let mut zeros = 0usize;
        let mut total = 0usize;
        for c in 0..40 {
            let col = p.column(&conference_name(c)).unwrap();
            let rma_storage::ColumnData::Int(v) = col.data() else {
                panic!()
            };
            zeros += v.iter().filter(|&&x| x == 0).count();
            total += v.len();
            assert!(v.iter().all(|&x| x >= 0));
        }
        let share = zeros as f64 / total as f64;
        assert!(share > 0.7, "pivot should be sparse, zero share = {share}");
    }

    #[test]
    fn rankings_join_publications() {
        let r = rankings(30, 3);
        assert_eq!(r.len(), 30);
        assert!(r.attrs_form_key(&["conf"]).unwrap());
        // every rating is one of the five classes
        for v in r.column("rating").unwrap().iter_values() {
            let rma_storage::Value::Str(s) = v else {
                panic!()
            };
            assert!(["A++", "A+", "A", "B", "C"].contains(&s.as_str()));
        }
        // some A++ conferences exist at this size with high probability
        let app = r
            .column("rating")
            .unwrap()
            .iter_values()
            .filter(|v| *v == rma_storage::Value::from("A++"))
            .count();
        assert!(app <= 30);
    }

    #[test]
    fn deterministic() {
        assert!(publications(50, 10, 9).bag_equals(&publications(50, 10, 9)));
        assert!(rankings(50, 9).bag_equals(&rankings(50, 9)));
    }
}
