//! BIXI-like bike-share data: stations, trips, and journeys (§8.6).
//!
//! The real BIXI dataset \[17\] records Montreal bike-share trips 2014–2017.
//! We generate a structurally identical stand-in:
//!
//! * `stations`: code (key), name, latitude, longitude around Montreal;
//! * `trips`: start/end station codes, a start date *string* (the mixed
//!   non-numeric attribute that makes the AIDA/R data-transfer penalty
//!   bite), a membership flag, and a duration that is genuinely linear in
//!   the start–end distance (`duration ≈ β·distance + ε`), so the paper's
//!   OLS workload recovers a meaningful fit;
//! * `journeys`: purely numeric one-trip journeys (start, end, duration)
//!   for the multiple-regression workload, where AIDA's numeric fast path
//!   applies.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rma_relation::{Relation, RelationBuilder};

/// Station relation: (code, name, lat, lon), `code` is the key.
pub fn stations(n: usize, seed: u64) -> Relation {
    let mut rng = StdRng::seed_from_u64(seed);
    let codes: Vec<i64> = (0..n as i64).map(|i| 6000 + i).collect();
    let names: Vec<String> = (0..n).map(|i| format!("Station {i:04}")).collect();
    // Montreal-ish bounding box
    let lats: Vec<f64> = (0..n).map(|_| rng.gen_range(45.40..45.70)).collect();
    let lons: Vec<f64> = (0..n).map(|_| rng.gen_range(-73.75..-73.45)).collect();
    RelationBuilder::new()
        .name("stations")
        .column("code", codes)
        .column("name", names)
        .column("lat", lats)
        .column("lon", lons)
        .build()
        .expect("station schema")
}

/// Planar distance proxy between two stations (degrees scaled to ~km).
pub fn station_distance(lat1: f64, lon1: f64, lat2: f64, lon2: f64) -> f64 {
    let dy = (lat1 - lat2) * 111.0;
    let dx = (lon1 - lon2) * 78.0; // cos(45.5°)·111
    (dx * dx + dy * dy).sqrt()
}

/// Trip relation: (id, start_station, end_station, start_date, member,
/// duration). `id` is the key; `duration = 180·distance + noise` seconds.
///
/// Popular station pairs are Zipf-like so that the paper's "trips performed
/// at least 50 times" filter keeps a meaningful subset.
pub fn trips(n: usize, station_count: usize, seed: u64) -> Relation {
    let st = stations(station_count, seed ^ 0x5a5a);
    let lats = st.column("lat").unwrap().to_f64_vec().unwrap();
    let lons = st.column("lon").unwrap().to_f64_vec().unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ids = Vec::with_capacity(n);
    let mut starts = Vec::with_capacity(n);
    let mut ends = Vec::with_capacity(n);
    let mut dates = Vec::with_capacity(n);
    let mut members = Vec::with_capacity(n);
    let mut durations = Vec::with_capacity(n);
    for i in 0..n {
        ids.push(i as i64);
        // Zipf-ish popularity: square the uniform to skew towards low codes
        let pick = |rng: &mut StdRng| {
            let u: f64 = rng.gen();
            ((u * u * station_count as f64) as usize).min(station_count - 1)
        };
        let s = pick(&mut rng);
        let e = pick(&mut rng);
        starts.push(6000 + s as i64);
        ends.push(6000 + e as i64);
        let year = 2014 + (i * 4 / n.max(1)) as i64;
        let month = rng.gen_range(4..=10);
        let day = rng.gen_range(1..=28);
        dates.push(format!("{year}-{month:02}-{day:02}"));
        members.push(rng.gen_bool(0.8));
        let dist = station_distance(lats[s], lons[s], lats[e], lons[e]);
        let noise: f64 = rng.gen_range(-60.0..60.0);
        durations.push((180.0 * dist + 240.0 + noise).max(30.0));
    }
    RelationBuilder::new()
        .name("trips")
        .column("id", ids)
        .column("start_station", starts)
        .column("end_station", ends)
        .column("start_date", dates)
        .column("member", members)
        .column("duration", durations)
        .build()
        .expect("trip schema")
}

/// Purely numeric one-trip journeys: (jid, start, end, duration) — the §8.6
/// journeys workload starts from these and composes longer journeys by
/// joining on meeting stations.
pub fn journeys(n: usize, station_count: usize, seed: u64) -> Relation {
    let st = stations(station_count, seed ^ 0xa5a5);
    let lats = st.column("lat").unwrap().to_f64_vec().unwrap();
    let lons = st.column("lon").unwrap().to_f64_vec().unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut jids = Vec::with_capacity(n);
    let mut starts = Vec::with_capacity(n);
    let mut ends = Vec::with_capacity(n);
    let mut durations = Vec::with_capacity(n);
    let mut prev_end: Option<usize> = None;
    for i in 0..n {
        jids.push(i as i64);
        // riders frequently continue from where the previous journey ended,
        // so consecutive journeys chain into longer ones (the §8.6(2)
        // composition finds a healthy number of 2–5-trip journeys)
        let s = match prev_end {
            Some(e) if rng.gen_bool(0.6) => e,
            _ => rng.gen_range(0..station_count),
        };
        let e = rng.gen_range(0..station_count);
        prev_end = Some(e);
        starts.push(6000 + s as i64);
        ends.push(6000 + e as i64);
        let dist = station_distance(lats[s], lons[s], lats[e], lons[e]);
        durations.push(170.0 * dist + 200.0 + rng.gen_range(-40.0..40.0));
    }
    RelationBuilder::new()
        .name("journeys")
        .column("jid", jids)
        .column("start", starts)
        .column("end", ends)
        .column("duration", durations)
        .build()
        .expect("journey schema")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stations_keyed_by_code() {
        let s = stations(20, 1);
        assert_eq!(s.len(), 20);
        assert!(s.attrs_form_key(&["code"]).unwrap());
    }

    #[test]
    fn trips_reference_valid_stations() {
        let t = trips(500, 30, 2);
        assert_eq!(t.len(), 500);
        let starts = t.column("start_station").unwrap();
        for v in starts.iter_values() {
            let rma_storage::Value::Int(code) = v else {
                panic!()
            };
            assert!((6000..6030).contains(&code));
        }
        assert!(t.attrs_form_key(&["id"]).unwrap());
    }

    #[test]
    fn duration_is_roughly_linear_in_distance() {
        let t = trips(2000, 25, 3);
        let s = stations(25, 3 ^ 0x5a5a);
        let lats = s.column("lat").unwrap().to_f64_vec().unwrap();
        let lons = s.column("lon").unwrap().to_f64_vec().unwrap();
        // correlation between distance and duration must be strong
        let starts = t.column("start_station").unwrap().to_f64_vec().unwrap();
        let ends = t.column("end_station").unwrap().to_f64_vec().unwrap();
        let dur = t.column("duration").unwrap().to_f64_vec().unwrap();
        let dist: Vec<f64> = starts
            .iter()
            .zip(&ends)
            .map(|(&a, &b)| {
                let (i, j) = ((a as usize) - 6000, (b as usize) - 6000);
                station_distance(lats[i], lons[i], lats[j], lons[j])
            })
            .collect();
        let corr = correlation(&dist, &dur);
        assert!(corr > 0.9, "correlation = {corr}");
    }

    #[test]
    fn journeys_numeric_only() {
        let j = journeys(100, 10, 4);
        assert!(j
            .schema()
            .attributes()
            .iter()
            .all(|a| a.dtype().is_numeric()));
    }

    #[test]
    fn deterministic() {
        assert!(trips(50, 5, 9).bag_equals(&trips(50, 5, 9)));
    }

    fn correlation(x: &[f64], y: &[f64]) -> f64 {
        let n = x.len() as f64;
        let mx = x.iter().sum::<f64>() / n;
        let my = y.iter().sum::<f64>() / n;
        let cov: f64 = x.iter().zip(y).map(|(a, b)| (a - mx) * (b - my)).sum();
        let vx: f64 = x.iter().map(|a| (a - mx) * (a - mx)).sum();
        let vy: f64 = y.iter().map(|b| (b - my) * (b - my)).sum();
        cov / (vx.sqrt() * vy.sqrt())
    }
}
