//! Uniform, wide, and sparse synthetic relations (§8.1, §8.2, Tables 4–6).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rma_relation::{Attribute, Relation, Schema};
use rma_storage::{Column, ColumnData, DataType};

/// A relation with `order_cols` integer key attributes `k0..` (jointly
/// unique, shuffled physical order) and `app_cols` float application
/// attributes `a0..` with uniform values in `[0, 10000)` — the paper's
/// standard synthetic table.
pub fn uniform_relation(rows: usize, order_cols: usize, app_cols: usize, seed: u64) -> Relation {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ids: Vec<i64> = (0..rows as i64).collect();
    ids.shuffle(&mut rng);
    let mut attrs = Vec::with_capacity(order_cols + app_cols);
    let mut columns = Vec::with_capacity(order_cols + app_cols);
    for k in 0..order_cols {
        attrs.push(Attribute::new(format!("k{k}"), DataType::Int));
        if k == 0 {
            columns.push(Column::new(ColumnData::Int(ids.clone())));
        } else {
            // secondary order attributes: arbitrary values; k0 alone keys
            let vals: Vec<i64> = (0..rows).map(|_| rng.gen_range(0..10_000)).collect();
            columns.push(Column::new(ColumnData::Int(vals)));
        }
    }
    for a in 0..app_cols {
        attrs.push(Attribute::new(format!("a{a}"), DataType::Float));
        let vals: Vec<f64> = (0..rows).map(|_| rng.gen_range(0.0..10_000.0)).collect();
        columns.push(Column::new(ColumnData::Float(vals)));
    }
    Relation::new(Schema::new(attrs).expect("distinct names"), columns)
        .expect("rectangular")
        .with_name("synthetic")
}

/// A wide relation: one key attribute and `attrs` application attributes
/// (Table 4's 1K–10K attribute sweep).
pub fn wide_relation(rows: usize, attrs: usize, seed: u64) -> Relation {
    uniform_relation(rows, 1, attrs, seed)
}

/// Two relations of identical shape whose float values are zero with
/// probability `zero_share` and uniform in `[1, 5_000_000)` otherwise
/// (Table 5's sparsity sweep). Returned with disjoint attribute names so
/// they can be `add`ed directly.
pub fn sparse_pair(
    rows: usize,
    app_cols: usize,
    zero_share: f64,
    seed: u64,
) -> (Relation, Relation) {
    let mut rng = StdRng::seed_from_u64(seed);
    let make = |prefix: &str, rng: &mut StdRng, shuffled: bool| {
        let mut ids: Vec<i64> = (0..rows as i64).collect();
        if shuffled {
            ids.shuffle(rng);
        }
        let mut attrs = vec![Attribute::new(format!("{prefix}k"), DataType::Int)];
        let mut columns = vec![Column::new(ColumnData::Int(ids))];
        for a in 0..app_cols {
            attrs.push(Attribute::new(format!("{prefix}{a}"), DataType::Float));
            let vals: Vec<f64> = (0..rows)
                .map(|_| {
                    if rng.gen_bool(zero_share.clamp(0.0, 1.0)) {
                        0.0
                    } else {
                        rng.gen_range(1.0..5_000_000.0)
                    }
                })
                .collect();
            columns.push(Column::new(ColumnData::Float(vals)));
        }
        Relation::new(Schema::new(attrs).expect("distinct"), columns).expect("rect")
    };
    let left = make("l", &mut rng, false);
    let right = make("r", &mut rng, false);
    (left, right)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_shape_and_key() {
        let r = uniform_relation(100, 2, 3, 7);
        assert_eq!(r.len(), 100);
        assert_eq!(r.schema().len(), 5);
        assert!(r.attrs_form_key(&["k0"]).unwrap());
        // values in range
        let a0 = r.column("a0").unwrap().to_f64_vec().unwrap();
        assert!(a0.iter().all(|&x| (0.0..10_000.0).contains(&x)));
    }

    #[test]
    fn deterministic_by_seed() {
        let a = uniform_relation(50, 1, 2, 42);
        let b = uniform_relation(50, 1, 2, 42);
        assert!(a.bag_equals(&b));
        let c = uniform_relation(50, 1, 2, 43);
        assert!(!a.bag_equals(&c));
    }

    #[test]
    fn wide_relation_attrs() {
        let r = wide_relation(10, 50, 1);
        assert_eq!(r.schema().len(), 51);
    }

    #[test]
    fn sparse_share_approximate() {
        let (l, r) = sparse_pair(4000, 2, 0.5, 3);
        assert_eq!(l.len(), r.len());
        let zeros = l
            .column("l0")
            .unwrap()
            .to_f64_vec()
            .unwrap()
            .iter()
            .filter(|&&x| x == 0.0)
            .count();
        let share = zeros as f64 / 4000.0;
        assert!((share - 0.5).abs() < 0.05, "share = {share}");
        // extremes
        let (l, _) = sparse_pair(500, 1, 0.0, 4);
        assert!(l
            .column("l0")
            .unwrap()
            .to_f64_vec()
            .unwrap()
            .iter()
            .all(|&x| x != 0.0));
        let (l, _) = sparse_pair(500, 1, 1.0, 5);
        assert!(l
            .column("l0")
            .unwrap()
            .to_f64_vec()
            .unwrap()
            .iter()
            .all(|&x| x == 0.0));
    }

    #[test]
    fn sparse_pair_addable() {
        let (l, r) = sparse_pair(50, 2, 0.3, 9);
        let sum = rma_core::add(&l, &["lk"], &r, &["rk"]).unwrap();
        assert_eq!(sum.len(), 50);
    }
}
