//! # rma-data — synthetic dataset generators
//!
//! The paper evaluates on BIXI (Montreal bike-share trips) and a DBLP
//! publication-count pivot, plus synthetic uniform/wide/sparse relations.
//! Neither real dataset ships with this reproduction, so this crate
//! generates structurally identical synthetic stand-ins: same schemas, same
//! key properties, and value distributions chosen so the workloads exercise
//! the same operator mix (joins on station codes, aggregation + filtering,
//! OLS regression with a genuinely linear relationship, covariance over a
//! sparse count pivot).
//!
//! All generators are deterministic given a seed.

pub mod bixi;
pub mod dblp;
pub mod synthetic;

pub use bixi::{journeys, stations, trips};
pub use dblp::{publications, rankings};
pub use synthetic::{sparse_pair, uniform_relation, wide_relation};
