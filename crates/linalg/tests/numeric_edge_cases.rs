//! Numerical edge cases across the dense and BAT kernels: conditioning,
//! scale invariance, tiny matrices, and cross-kernel agreement on randomised
//! inputs.
#![allow(clippy::needless_range_loop)]

use proptest::prelude::*;
use rma_linalg::dense::{self, Matrix};
use rma_linalg::{bat, LinalgError};

fn mat_from(cols: &[Vec<f64>]) -> Matrix {
    Matrix::from_columns(cols).unwrap()
}

#[test]
fn one_by_one_matrices() {
    let a = Matrix::from_rows(&[&[4.0]]).unwrap();
    assert!((dense::det(&a).unwrap() - 4.0).abs() < 1e-15);
    assert!((dense::inverse(&a).unwrap().get(0, 0) - 0.25).abs() < 1e-15);
    assert_eq!(dense::rank(&a).unwrap(), 1);
    let e = dense::eigen(&a).unwrap();
    assert!((e.values[0] - 4.0).abs() < 1e-12);
    let qr = dense::qr(&a).unwrap();
    assert!((qr.r.get(0, 0) - 4.0).abs() < 1e-12);
    // BAT kernels agree
    let cols = vec![vec![4.0]];
    assert!((bat::det(&cols).unwrap() - 4.0).abs() < 1e-15);
    assert!((bat::inv(&cols).unwrap()[0][0] - 0.25).abs() < 1e-15);
    assert_eq!(bat::rnk(&cols).unwrap(), 1);
}

#[test]
fn badly_scaled_but_wellconditioned() {
    // entries spanning 8 orders of magnitude, still invertible
    let a = Matrix::from_rows(&[&[1e-4, 0.0], &[0.0, 1e4]]).unwrap();
    let inv = dense::inverse(&a).unwrap();
    assert!((inv.get(0, 0) - 1e4).abs() / 1e4 < 1e-12);
    assert!((inv.get(1, 1) - 1e-4).abs() / 1e-4 < 1e-12);
    let cols = vec![vec![1e-4, 0.0], vec![0.0, 1e4]];
    let binv = bat::inv(&cols).unwrap();
    assert!((binv[0][0] - 1e4).abs() / 1e4 < 1e-10);
    // beyond the relative pivot threshold (condition ≥ 1e12) the kernels
    // report singularity rather than returning garbage
    let extreme = Matrix::from_rows(&[&[1e-6, 0.0], &[0.0, 1e6]]).unwrap();
    assert_eq!(dense::inverse(&extreme), Err(LinalgError::Singular));
}

#[test]
fn nearly_singular_detected_consistently() {
    let eps = 1e-15;
    let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0 + eps]]).unwrap();
    // both kernels treat this as singular under their relative thresholds
    assert_eq!(dense::inverse(&a), Err(LinalgError::Singular));
    let cols = vec![vec![1.0, 1.0], vec![1.0, 1.0 + eps]];
    assert!(matches!(bat::inv(&cols), Err(LinalgError::Singular)));
}

#[test]
fn tall_skinny_qr_and_svd() {
    // 50×2: factors stay orthonormal and reconstruct
    let cols: Vec<Vec<f64>> = vec![
        (0..50).map(|i| (i as f64).sin() + 2.0).collect(),
        (0..50).map(|i| (i as f64 * 0.7).cos()).collect(),
    ];
    let a = mat_from(&cols);
    let qr = dense::qr(&a).unwrap();
    assert!(dense::matmul(&qr.q, &qr.r).unwrap().approx_eq(&a, 1e-9));
    let svd = dense::svd(&a).unwrap();
    assert_eq!(svd.s.len(), 2);
    assert!(svd.s[0] >= svd.s[1]);
    // Gram-Schmidt agrees with Householder on |R|
    let (_, r_gs) = bat::qqr(&cols)
        .map(|q| (q, bat::rqr(&cols).unwrap()))
        .unwrap();
    for i in 0..2 {
        for j in i..2 {
            assert!((r_gs[j][i].abs() - qr.r.get(i, j).abs()).abs() < 1e-8);
        }
    }
}

#[test]
fn eigen_of_near_multiple_eigenvalues() {
    // eigenvalues 2, 2+1e-9: Jacobi must still produce an orthonormal basis
    let a = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 2.0 + 1e-9]]).unwrap();
    let e = dense::eigen(&a).unwrap();
    let dot: f64 = (0..2)
        .map(|i| e.vectors.get(i, 0) * e.vectors.get(i, 1))
        .sum();
    assert!(dot.abs() < 1e-8);
}

#[test]
fn solve_respects_multiple_rhs_columns() {
    let a = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 4.0]]).unwrap();
    let b = Matrix::from_rows(&[&[2.0, 4.0, 6.0], &[4.0, 8.0, 12.0]]).unwrap();
    let x = dense::solve(&a, &b).unwrap();
    assert_eq!(x.cols(), 3);
    assert!(dense::matmul(&a, &x).unwrap().approx_eq(&b, 1e-12));
    // BAT sol on the same system
    let xb = bat::sol(
        &[vec![2.0, 0.0], vec![0.0, 4.0]],
        &[vec![2.0, 4.0], vec![4.0, 8.0], vec![6.0, 12.0]],
    )
    .unwrap();
    for (j, col) in xb.iter().enumerate() {
        for (i, v) in col.iter().enumerate() {
            assert!((v - x.get(i, j)).abs() < 1e-10);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    // det(A·B) = det(A)·det(B), dense and BAT kernels alike
    #[test]
    fn determinant_is_multiplicative(
        a in proptest::collection::vec(-3.0f64..3.0, 9),
        b in proptest::collection::vec(-3.0f64..3.0, 9),
    ) {
        let ma = Matrix::from_col_major(3, 3, a.clone()).unwrap();
        let mb = Matrix::from_col_major(3, 3, b.clone()).unwrap();
        let prod = dense::matmul(&ma, &mb).unwrap();
        let lhs = dense::det(&prod).unwrap();
        let rhs = dense::det(&ma).unwrap() * dense::det(&mb).unwrap();
        let scale = lhs.abs().max(rhs.abs()).max(1.0);
        prop_assert!((lhs - rhs).abs() / scale < 1e-8);
        // BAT det agrees with dense det
        let cols_a: Vec<Vec<f64>> = a.chunks(3).map(<[f64]>::to_vec).collect();
        let bat_det = bat::det(&cols_a).unwrap();
        let dense_det = dense::det(&ma).unwrap();
        prop_assert!((bat_det - dense_det).abs() / dense_det.abs().max(1.0) < 1e-8);
    }

    // rank never exceeds min(m, n) and matches between kernels
    #[test]
    fn rank_bounds(cols in proptest::collection::vec(
        proptest::collection::vec(-5.0f64..5.0, 6), 1..4)
    ) {
        let m = mat_from(&cols);
        let r_dense = dense::rank(&m).unwrap();
        let r_bat = bat::rnk(&cols).unwrap();
        prop_assert!(r_dense <= cols.len().min(6));
        prop_assert_eq!(r_dense, r_bat);
    }

    // ‖Q·x‖ = ‖x‖ for the Q of any full-rank QR (orthogonality preserved)
    #[test]
    fn q_preserves_norms(
        c0 in proptest::collection::vec(0.1f64..5.0, 8),
        c1 in proptest::collection::vec(-5.0f64..-0.1, 8),
    ) {
        let a = mat_from(&[c0, c1]);
        let qr = dense::qr(&a).unwrap();
        let x = Matrix::col_vector(&[0.6, -0.8]);
        let qx = dense::matmul(&qr.q, &x).unwrap();
        prop_assert!((qx.frobenius_norm() - 1.0).abs() < 1e-9);
    }

    // singular values scale linearly: σ(c·A) = c·σ(A)
    #[test]
    fn svd_scales_linearly(
        cols in proptest::collection::vec(
            proptest::collection::vec(-5.0f64..5.0, 5), 2..5),
        c in 0.5f64..4.0,
    ) {
        let a = mat_from(&cols);
        let scaled = a.map(|x| c * x);
        let s1 = dense::svd(&a).unwrap().s;
        let s2 = dense::svd(&scaled).unwrap().s;
        for (x, y) in s1.iter().zip(&s2) {
            prop_assert!((c * x - y).abs() < 1e-7 * (1.0 + y.abs()));
        }
    }
}
