//! Linear-algebra error type.

use std::fmt;

/// Errors produced by the matrix kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinalgError {
    /// Operand shapes are incompatible for the operation.
    DimensionMismatch {
        /// What was being checked (static description).
        context: &'static str,
    },
    /// A square matrix was required.
    NotSquare,
    /// The matrix is singular (or numerically singular) where invertibility
    /// is required.
    Singular,
    /// Cholesky factorisation needs a symmetric positive-definite input.
    NotPositiveDefinite,
    /// The eigen decomposition encountered complex eigenvalues, which cannot
    /// be represented in a real-valued relation.
    ComplexEigenvalues,
    /// An iterative method failed to converge.
    NotConverged,
    /// Empty input where at least one element is required.
    Empty,
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::DimensionMismatch { context } => {
                write!(f, "dimension mismatch: {context}")
            }
            LinalgError::NotSquare => f.write_str("operation requires a square matrix"),
            LinalgError::Singular => f.write_str("matrix is singular"),
            LinalgError::NotPositiveDefinite => {
                f.write_str("matrix is not symmetric positive-definite")
            }
            LinalgError::ComplexEigenvalues => {
                f.write_str("matrix has complex eigenvalues (not representable in a relation)")
            }
            LinalgError::NotConverged => f.write_str("iterative method did not converge"),
            LinalgError::Empty => f.write_str("empty matrix"),
        }
    }
}

impl std::error::Error for LinalgError {}
