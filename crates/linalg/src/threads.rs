//! Worker-thread budget shared by the parallel dense kernels.
//!
//! The count is resolved once per process: the `RMA_THREADS` environment
//! variable wins (the same knob the execution engine's `RmaOptions::threads`
//! defaults from, so one setting steers both layers), otherwise the
//! available hardware parallelism, capped to keep spawn overhead bounded on
//! very wide machines.

use std::sync::OnceLock;

/// Hard cap on the default worker count (explicit `RMA_THREADS` may exceed
/// it — an operator who sets the knob gets what they asked for).
const DEFAULT_THREAD_CAP: usize = 16;

/// Number of worker threads the dense kernels use.
pub fn available_threads() -> usize {
    static CACHED: OnceLock<usize> = OnceLock::new();
    *CACHED.get_or_init(|| {
        if let Some(n) = std::env::var("RMA_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
        {
            return n.max(1);
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(DEFAULT_THREAD_CAP)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn at_least_one_thread() {
        assert!(available_threads() >= 1);
        // cached: a second call agrees
        assert_eq!(available_threads(), available_threads());
    }
}
