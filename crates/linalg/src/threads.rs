//! Worker-thread budget and pluggable parallel executor for the dense
//! kernels.
//!
//! The *budget* ([`available_threads`]) is resolved once per process: the
//! `RMA_THREADS` environment variable wins (the same knob the execution
//! engine's `RmaOptions::threads` defaults from, so one setting steers both
//! layers), otherwise the available hardware parallelism, capped to keep
//! overhead bounded on very wide machines.
//!
//! The *executor* is pluggable so the kernels can share the execution
//! engine's worker pool instead of spawning threads per call: `rma-core`
//! installs an adapter over its session pool via [`install_parallelism`]
//! when that pool comes up; until then (or when `rma-linalg` is used
//! standalone) a scoped-spawn fallback provides the same data parallelism
//! with per-call threads. Kernels never talk to either directly — they go
//! through [`par_chunks_mut`], which splits an output buffer into disjoint
//! chunks that workers claim from a shared counter.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

/// Hard cap on the default worker count (explicit `RMA_THREADS` may exceed
/// it — an operator who sets the knob gets what they asked for).
const DEFAULT_THREAD_CAP: usize = 16;

/// Number of worker threads the dense kernels use.
pub fn available_threads() -> usize {
    static CACHED: OnceLock<usize> = OnceLock::new();
    *CACHED.get_or_init(|| {
        if let Some(n) = std::env::var("RMA_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
        {
            return n.max(1);
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(DEFAULT_THREAD_CAP)
    })
}

/// A parallel executor the dense kernels can run their data-parallel loops
/// on. Implemented by the execution engine's worker pool (installed through
/// [`install_parallelism`]) and by the built-in scoped-spawn fallback.
pub trait Parallelism: Send + Sync {
    /// Total workers `run` invokes the job with (including the caller).
    fn threads(&self) -> usize;
    /// Run `f(worker)` once per worker in `0..threads()`, concurrently, and
    /// return only when every worker has finished. The closure does its own
    /// work distribution (the kernels claim chunks from an atomic counter).
    fn run(&self, f: &(dyn Fn(usize) + Sync));
}

/// Fallback executor: one `std::thread::scope` spawn per call, sized by
/// [`available_threads`]. What every kernel used before the worker pool
/// existed, and what standalone `rma-linalg` users still get.
struct ScopedSpawn;

impl Parallelism for ScopedSpawn {
    fn threads(&self) -> usize {
        available_threads()
    }

    fn run(&self, f: &(dyn Fn(usize) + Sync)) {
        let n = self.threads();
        if n <= 1 {
            f(0);
            return;
        }
        std::thread::scope(|scope| {
            for id in 1..n {
                scope.spawn(move || f(id));
            }
            f(0);
        });
    }
}

static INSTALLED: OnceLock<Arc<dyn Parallelism>> = OnceLock::new();

/// Install the process-wide executor the dense kernels run on (e.g. the
/// execution engine's session worker pool). First install wins and is
/// permanent; returns `false` if an executor was already installed.
pub fn install_parallelism(exec: Arc<dyn Parallelism>) -> bool {
    INSTALLED.set(exec).is_ok()
}

/// The executor the kernels currently run on: the installed one, else the
/// scoped-spawn fallback.
pub(crate) fn parallelism() -> &'static dyn Parallelism {
    static FALLBACK: ScopedSpawn = ScopedSpawn;
    match INSTALLED.get() {
        Some(exec) => exec.as_ref(),
        None => &FALLBACK,
    }
}

/// Split `out` into contiguous chunks of `chunk` elements and run
/// `f(chunk_index, start, chunk_slice)` for each, workers claiming chunks
/// from a shared counter on the current executor. Chunks are disjoint, so
/// workers need no synchronisation; with one worker (or one chunk) the
/// chunks run sequentially on the caller's thread.
pub fn par_chunks_mut<T, F>(out: &mut [T], chunk: usize, f: F)
where
    T: Send,
    F: Fn(usize, usize, &mut [T]) + Sync,
{
    let len = out.len();
    if len == 0 {
        return;
    }
    let chunk = chunk.max(1);
    let nchunks = len.div_ceil(chunk);
    let exec = parallelism();
    if nchunks <= 1 || exec.threads() <= 1 {
        for (i, dst) in out.chunks_mut(chunk).enumerate() {
            f(i, i * chunk, dst);
        }
        return;
    }
    /// The buffer base pointer, shareable across the job's workers.
    struct BasePtr<T>(*mut T);
    // SAFETY: workers derive disjoint in-bounds chunks from the pointer (the
    // claim counter hands each chunk index to exactly one worker) while the
    // caller holds the unique `&mut [T]` borrow for the whole call.
    unsafe impl<T: Send> Sync for BasePtr<T> {}
    let base = BasePtr(out.as_mut_ptr());
    let next = AtomicUsize::new(0);
    let base = &base;
    let next = &next;
    let f = &f;
    exec.run(&|_worker| loop {
        let i = next.fetch_add(1, Ordering::Relaxed);
        if i >= nchunks {
            break;
        }
        let start = i * chunk;
        let end = (start + chunk).min(len);
        // SAFETY: chunk `i` is claimed exactly once and start..end chunks
        // are disjoint and within `len` (see BasePtr).
        let dst = unsafe { std::slice::from_raw_parts_mut(base.0.add(start), end - start) };
        f(i, start, dst);
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn at_least_one_thread() {
        assert!(available_threads() >= 1);
        // cached: a second call agrees
        assert_eq!(available_threads(), available_threads());
    }

    #[test]
    fn par_chunks_cover_the_buffer_exactly() {
        let mut buf = vec![0usize; 10_007];
        par_chunks_mut(&mut buf, 97, |i, start, dst| {
            assert_eq!(start, i * 97);
            for (k, x) in dst.iter_mut().enumerate() {
                *x = start + k + 1;
            }
        });
        assert!(buf.iter().enumerate().all(|(k, &x)| x == k + 1));
        // empty buffer and oversized chunk are fine
        let mut empty: Vec<usize> = Vec::new();
        par_chunks_mut(&mut empty, 8, |_, _, _| unreachable!());
        let mut one = vec![0u8; 3];
        par_chunks_mut(&mut one, 100, |i, start, dst| {
            assert_eq!((i, start, dst.len()), (0, 0, 3));
        });
    }
}
