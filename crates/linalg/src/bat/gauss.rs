//! Gauss-Jordan elimination over columns: INV (the paper's Algorithm 2),
//! DET, SOL, RNK, and a columnwise CHF.
//!
//! Operating on *columns* (not rows) keeps every bulk step a vectorised BAT
//! operation: scaling a column, axpy between columns, and column swaps.
//! Column operations multiply elimination matrices on the right, so reducing
//! `A` to `I` by column ops while applying the same ops to `I` yields
//! `A·E = I` and `I·E = A⁻¹`. We extend Algorithm 2 with column pivoting for
//! numerical robustness (the paper's listing omits it).

use super::{scale_col, sel, shape, sub_scaled_col, Cols};
use crate::error::LinalgError;

const PIVOT_EPS: f64 = 1e-12;

fn max_abs(cols: &Cols) -> f64 {
    cols.iter()
        .flat_map(|c| c.iter())
        .fold(0.0f64, |m, &x| m.max(x.abs()))
        .max(1.0)
}

/// Algorithm 2: matrix inversion by Gauss-Jordan elimination over BATs.
pub fn inv(b: &Cols) -> Result<Vec<Vec<f64>>, LinalgError> {
    let (m, n) = shape(b)?;
    if m != n {
        return Err(LinalgError::NotSquare);
    }
    if n == 0 {
        return Err(LinalgError::Empty);
    }
    let scale = max_abs(b);
    let mut b: Vec<Vec<f64>> = b.to_vec();
    // BR ← IDmatrix(n)
    let mut br: Vec<Vec<f64>> = (0..n)
        .map(|j| {
            let mut c = vec![0.0; n];
            c[j] = 1.0;
            c
        })
        .collect();
    for i in 0..n {
        // column pivot: pick the column j ≥ i with the largest |B_j[i]|
        let p = (i..n)
            .max_by(|&x, &y| sel(&b[x], i).abs().total_cmp(&sel(&b[y], i).abs()))
            .expect("non-empty range");
        if sel(&b[p], i).abs() <= PIVOT_EPS * scale {
            return Err(LinalgError::Singular);
        }
        if p != i {
            b.swap(p, i);
            br.swap(p, i);
        }
        // v1 ← sel(B_i, i);  B_i ← B_i/v1;  BR_i ← BR_i/v1
        let v1 = sel(&b[i], i);
        scale_col(&mut b[i], v1);
        scale_col(&mut br[i], v1);
        // for j ≠ i: v2 ← sel(B_j, i); B_j ← B_j − B_i·v2; BR_j ← BR_j − BR_i·v2
        for j in 0..n {
            if i == j {
                continue;
            }
            let v2 = sel(&b[j], i);
            if v2 == 0.0 {
                continue;
            }
            let (bi, bj) = borrow_two(&mut b, i, j);
            sub_scaled_col(bj, bi, v2);
            let (bri, brj) = borrow_two(&mut br, i, j);
            sub_scaled_col(brj, bri, v2);
        }
    }
    Ok(br)
}

/// Determinant by triangularising with column operations; the product of
/// pivots (sign-adjusted for column swaps) is the determinant.
pub fn det(b: &Cols) -> Result<f64, LinalgError> {
    let (m, n) = shape(b)?;
    if m != n {
        return Err(LinalgError::NotSquare);
    }
    if n == 0 {
        return Err(LinalgError::Empty);
    }
    let scale = max_abs(b);
    let mut b: Vec<Vec<f64>> = b.to_vec();
    let mut d = 1.0f64;
    for i in 0..n {
        let p = (i..n)
            .max_by(|&x, &y| sel(&b[x], i).abs().total_cmp(&sel(&b[y], i).abs()))
            .expect("non-empty range");
        let pivot = sel(&b[p], i);
        if pivot.abs() <= PIVOT_EPS * scale {
            return Ok(0.0);
        }
        if p != i {
            b.swap(p, i);
            d = -d;
        }
        d *= pivot;
        for j in i + 1..n {
            let v2 = sel(&b[j], i) / pivot;
            if v2 == 0.0 {
                continue;
            }
            let (bi, bj) = borrow_two(&mut b, i, j);
            sub_scaled_col(bj, bi, v2);
        }
    }
    Ok(d)
}

/// Solve `A·x = b` over columns. Square systems run Gauss-Jordan on the
/// augmented column list; overdetermined systems use Gram-Schmidt least
/// squares.
pub fn sol(a: &Cols, rhs: &Cols) -> Result<Vec<Vec<f64>>, LinalgError> {
    let (m, n) = shape(a)?;
    let (mr, _nr) = shape(rhs)?;
    if m != mr {
        return Err(LinalgError::DimensionMismatch {
            context: "sol: rhs rows must match matrix rows",
        });
    }
    if m == n {
        // x = A⁻¹·b via the BAT kernels
        let ainv = inv(a)?;
        super::products::mmu(&ainv, rhs)
    } else if m > n {
        super::gram_schmidt::least_squares(a, rhs)
    } else {
        Err(LinalgError::DimensionMismatch {
            context: "sol: underdetermined system (rows < cols)",
        })
    }
}

/// Numerical rank by modified Gram-Schmidt with a relative threshold: the
/// number of columns whose residual after orthogonalisation against the
/// previously accepted columns stays above `ε·‖column‖`.
pub fn rnk(a: &Cols) -> Result<usize, LinalgError> {
    let (m, _n) = shape(a)?;
    if a.is_empty() || m == 0 {
        return Err(LinalgError::Empty);
    }
    let scale = a
        .iter()
        .map(|c| super::dot_col(c, c).sqrt())
        .fold(0.0f64, f64::max);
    if scale == 0.0 {
        return Ok(0);
    }
    let tol = 1e-10 * scale;
    let mut basis: Vec<Vec<f64>> = Vec::new();
    for col in a.iter() {
        let mut w = col.clone();
        for q in &basis {
            let proj = super::dot_col(q, &w);
            sub_scaled_col(&mut w, q, proj);
        }
        let norm = super::dot_col(&w, &w).sqrt();
        if norm > tol {
            scale_col(&mut w, norm);
            basis.push(w);
        }
    }
    Ok(basis.len())
}

/// Columnwise Cholesky (upper factor `R` with `A = Rᵀ·R`), using per-element
/// access within columns — slower than the dense kernel but copy-free.
pub fn chf(a: &Cols) -> Result<Vec<Vec<f64>>, LinalgError> {
    let (m, n) = shape(a)?;
    if m != n {
        return Err(LinalgError::NotSquare);
    }
    if n == 0 {
        return Err(LinalgError::Empty);
    }
    // symmetry check
    let scale = max_abs(a);
    for i in 0..n {
        for j in i + 1..n {
            if (sel(&a[j], i) - sel(&a[i], j)).abs() > 1e-10 * scale {
                return Err(LinalgError::NotPositiveDefinite);
            }
        }
    }
    // r[j][i] = R[i][j]: columns of the result
    let mut r: Vec<Vec<f64>> = (0..n).map(|_| vec![0.0; n]).collect();
    for j in 0..n {
        let mut s = sel(&a[j], j);
        for k in 0..j {
            let rkj = r[j][k];
            s -= rkj * rkj;
        }
        if s <= 0.0 {
            return Err(LinalgError::NotPositiveDefinite);
        }
        let rjj = s.sqrt();
        r[j][j] = rjj;
        for i in j + 1..n {
            let mut s = sel(&a[i], j);
            for k in 0..j {
                s -= r[j][k] * r[i][k];
            }
            r[i][j] = s / rjj;
        }
    }
    Ok(r)
}

/// Borrow two distinct columns mutably.
fn borrow_two(cols: &mut [Vec<f64>], i: usize, j: usize) -> (&[f64], &mut Vec<f64>) {
    debug_assert_ne!(i, j);
    if i < j {
        let (l, r) = cols.split_at_mut(j);
        (&l[i], &mut r[0])
    } else {
        let (l, r) = cols.split_at_mut(i);
        (&r[0], &mut l[j])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense;
    use crate::dense::matrix::Matrix;

    fn to_matrix(cols: &Cols) -> Matrix {
        Matrix::from_columns(cols).unwrap()
    }

    fn paper_n() -> Vec<Vec<f64>> {
        // Figure 3: n = [[6,7],[8,5]] (columns: [6,8], [7,5])
        vec![vec![6.0, 8.0], vec![7.0, 5.0]]
    }

    #[test]
    fn inv_matches_paper_figure3() {
        let h = inv(&paper_n()).unwrap();
        assert!((h[0][0] - -0.1923).abs() < 1e-3);
        assert!((h[1][0] - 0.2692).abs() < 1e-3);
        assert!((h[0][1] - 0.3077).abs() < 1e-3);
        assert!((h[1][1] - -0.2308).abs() < 1e-3);
    }

    #[test]
    fn inv_matches_dense_kernel() {
        let a = vec![
            vec![4.0, 3.0, 2.0],
            vec![-2.0, 6.0, 1.0],
            vec![1.0, -4.0, 8.0],
        ];
        let got = to_matrix(&inv(&a).unwrap());
        let expect = dense::lu::inverse(&to_matrix(&a)).unwrap();
        assert!(got.approx_eq(&expect, 1e-10));
    }

    #[test]
    fn inv_needs_pivoting() {
        // zero leading diagonal entry: plain Algorithm 2 would divide by 0
        let a = vec![vec![0.0, 1.0], vec![1.0, 0.0]];
        let got = inv(&a).unwrap();
        assert_eq!(got, vec![vec![0.0, 1.0], vec![1.0, 0.0]]);
    }

    #[test]
    fn inv_singular_and_shape_errors() {
        let sing = vec![vec![1.0, 2.0], vec![2.0, 4.0]];
        assert!(matches!(inv(&sing), Err(LinalgError::Singular)));
        let rect = vec![vec![1.0, 2.0, 3.0]];
        assert!(matches!(inv(&rect), Err(LinalgError::NotSquare)));
        let empty: Vec<Vec<f64>> = vec![];
        assert!(matches!(inv(&empty), Err(LinalgError::Empty)));
    }

    #[test]
    fn det_matches_dense() {
        let a = vec![
            vec![4.0, 3.0, 2.0],
            vec![-2.0, 6.0, 1.0],
            vec![1.0, -4.0, 8.0],
        ];
        let got = det(&a).unwrap();
        let expect = dense::lu::det(&to_matrix(&a)).unwrap();
        assert!((got - expect).abs() < 1e-9);
        assert!((det(&paper_n()).unwrap() - -26.0).abs() < 1e-9);
    }

    #[test]
    fn det_singular_is_zero_and_swap_flips_sign() {
        assert_eq!(det(&[vec![1.0, 2.0], vec![2.0, 4.0]]).unwrap(), 0.0);
        let p = vec![vec![0.0, 1.0], vec![1.0, 0.0]];
        assert!((det(&p).unwrap() - -1.0).abs() < 1e-12);
    }

    #[test]
    fn sol_square_and_least_squares() {
        let a = vec![vec![2.0, 1.0], vec![1.0, 3.0]];
        let b = vec![vec![3.0, 5.0]];
        let x = sol(&a, &b).unwrap();
        assert!((x[0][0] - 0.8).abs() < 1e-10);
        assert!((x[0][1] - 1.4).abs() < 1e-10);
        // overdetermined: exact line y = 1 + 2x
        let a = vec![vec![1.0, 1.0, 1.0], vec![1.0, 2.0, 3.0]];
        let b = vec![vec![3.0, 5.0, 7.0]];
        let x = sol(&a, &b).unwrap();
        assert!((x[0][0] - 1.0).abs() < 1e-9);
        assert!((x[0][1] - 2.0).abs() < 1e-9);
        // underdetermined rejected
        let wide = vec![vec![1.0], vec![2.0], vec![3.0]];
        assert!(sol(&wide, &[vec![1.0]]).is_err());
    }

    #[test]
    fn rnk_cases() {
        let full = vec![vec![1.0, 0.0, 1.0], vec![0.0, 1.0, 1.0]];
        assert_eq!(rnk(&full).unwrap(), 2);
        let def = vec![vec![1.0, 2.0, 3.0], vec![2.0, 4.0, 6.0]];
        assert_eq!(rnk(&def).unwrap(), 1);
        let zero = vec![vec![0.0, 0.0], vec![0.0, 0.0]];
        assert_eq!(rnk(&zero).unwrap(), 0);
    }

    #[test]
    fn chf_matches_dense() {
        let a = vec![
            vec![4.0, 12.0, -16.0],
            vec![12.0, 37.0, -43.0],
            vec![-16.0, -43.0, 98.0],
        ];
        let got = to_matrix(&chf(&a).unwrap());
        let expect = dense::chol::cholesky(&to_matrix(&a)).unwrap();
        assert!(got.approx_eq(&expect, 1e-10));
    }

    #[test]
    fn chf_rejects_indefinite() {
        let a = vec![vec![1.0, 2.0], vec![2.0, 1.0]];
        assert!(matches!(chf(&a), Err(LinalgError::NotPositiveDefinite)));
    }
}
