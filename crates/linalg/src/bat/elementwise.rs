//! Element-wise BAT kernels: ADD, SUB, EMU.
//!
//! These are single-pass column operations — the case where the paper's
//! RMA+BAT configuration beats RMA+MKL, because the copy into the dense
//! format can never be amortised (Fig. 18b).

use super::{shape, Cols};
use crate::error::LinalgError;

fn binary(a: &Cols, b: &Cols, f: impl Fn(f64, f64) -> f64) -> Result<Vec<Vec<f64>>, LinalgError> {
    let (ra, ca) = shape(a)?;
    let (rb, cb) = shape(b)?;
    if ra != rb || ca != cb {
        return Err(LinalgError::DimensionMismatch {
            context: "element-wise BAT operation shapes",
        });
    }
    Ok(a.iter()
        .zip(b)
        .map(|(ac, bc)| ac.iter().zip(bc).map(|(&x, &y)| f(x, y)).collect())
        .collect())
}

/// Matrix addition, column at a time.
pub fn add(a: &Cols, b: &Cols) -> Result<Vec<Vec<f64>>, LinalgError> {
    binary(a, b, |x, y| x + y)
}

/// Matrix subtraction, column at a time.
pub fn sub(a: &Cols, b: &Cols) -> Result<Vec<Vec<f64>>, LinalgError> {
    binary(a, b, |x, y| x - y)
}

/// Element-wise (Hadamard) multiplication, column at a time.
pub fn emu(a: &Cols, b: &Cols) -> Result<Vec<Vec<f64>>, LinalgError> {
    binary(a, b, |x, y| x * y)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a() -> Vec<Vec<f64>> {
        vec![vec![1.0, 2.0], vec![3.0, 4.0]]
    }
    fn b() -> Vec<Vec<f64>> {
        vec![vec![10.0, 20.0], vec![30.0, 40.0]]
    }

    #[test]
    fn add_sub_emu() {
        assert_eq!(
            add(&a(), &b()).unwrap(),
            vec![vec![11.0, 22.0], vec![33.0, 44.0]]
        );
        assert_eq!(
            sub(&b(), &a()).unwrap(),
            vec![vec![9.0, 18.0], vec![27.0, 36.0]]
        );
        assert_eq!(
            emu(&a(), &b()).unwrap(),
            vec![vec![10.0, 40.0], vec![90.0, 160.0]]
        );
    }

    #[test]
    fn shape_mismatch() {
        let wide = vec![vec![1.0, 2.0]];
        assert!(add(&a(), &wide).is_err());
        let short = vec![vec![1.0], vec![2.0]];
        assert!(add(&a(), &short).is_err());
    }

    #[test]
    fn empty_inputs() {
        let e: Vec<Vec<f64>> = vec![];
        assert_eq!(add(&e, &e).unwrap(), Vec::<Vec<f64>>::new());
    }
}
