//! Column-at-a-time ("no-copy BAT") linear-algebra kernels.
//!
//! This module plays the role of the paper's in-kernel MonetDB
//! implementations (§7.3): every algorithm is expressed over a *list of
//! column vectors* using vectorised column operations (axpy, scale, dot)
//! plus the occasional `sel` single-element access — no conversion to a
//! contiguous matrix ever happens. That is exactly the trade-off the
//! paper's RMA+BAT configuration measures: no transformation cost, but a
//! less cache-friendly algorithm for complex operations.
//!
//! Kernels provided (matching the subset the paper implemented over BATs):
//! element-wise `add`/`sub`/`emu`, products `mmu`/`cpd`/`opd`, `tra`,
//! Gauss-Jordan `inv` (the paper's Algorithm 2, extended with column
//! pivoting), `det`, `sol`, `rnk`, Gram-Schmidt `qqr`/`rqr` (per the
//! paper's Gander reference \[12\]), and a columnwise `chf`. The remaining
//! operations (SVD and eigen decompositions) always delegate to the dense
//! kernel; the policy layer in `rma-core` handles that.

mod elementwise;
mod gauss;
mod gram_schmidt;
mod products;

pub use elementwise::{add, emu, sub};
pub use gauss::{chf, det, inv, rnk, sol};
pub use gram_schmidt::{qqr, rqr};
pub use products::{cpd, mmu, opd, tra};

use crate::error::LinalgError;

/// A matrix as a list of equally long column vectors (borrowed BAT tails).
pub type Cols = [Vec<f64>];

/// Validate that `cols` is rectangular and return `(rows, cols)`.
pub(crate) fn shape(cols: &Cols) -> Result<(usize, usize), LinalgError> {
    let n = cols.len();
    let m = cols.first().map_or(0, Vec::len);
    if cols.iter().any(|c| c.len() != m) {
        return Err(LinalgError::DimensionMismatch {
            context: "ragged column list",
        });
    }
    Ok((m, n))
}

/// `sel(B, i)` — the single-element access primitive of Algorithm 2.
#[inline]
pub(crate) fn sel(col: &[f64], i: usize) -> f64 {
    col[i]
}

/// `B ← B / v` — scale a column by a scalar.
#[inline]
pub(crate) fn scale_col(col: &mut [f64], v: f64) {
    for x in col.iter_mut() {
        *x /= v;
    }
}

/// `B ← B − C·v` — fused axpy, the inner loop of Gauss-Jordan over BATs.
#[inline]
pub(crate) fn sub_scaled_col(col: &mut [f64], other: &[f64], v: f64) {
    for (x, &y) in col.iter_mut().zip(other) {
        *x -= y * v;
    }
}

/// Dot product of two columns.
#[inline]
pub(crate) fn dot_col(a: &[f64], b: &[f64]) -> f64 {
    crate::dense::gemm::dot(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_checks() {
        assert_eq!(shape(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap(), (2, 2));
        assert_eq!(shape(&[]).unwrap(), (0, 0));
        assert!(shape(&[vec![1.0], vec![1.0, 2.0]]).is_err());
    }

    #[test]
    fn primitives() {
        let mut c = vec![2.0, 4.0, 6.0];
        scale_col(&mut c, 2.0);
        assert_eq!(c, vec![1.0, 2.0, 3.0]);
        sub_scaled_col(&mut c, &[1.0, 1.0, 1.0], 1.0);
        assert_eq!(c, vec![0.0, 1.0, 2.0]);
        assert_eq!(sel(&c, 2), 2.0);
        assert_eq!(dot_col(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
    }
}
