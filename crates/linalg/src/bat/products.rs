//! Product BAT kernels: MMU, CPD, OPD, TRA.
//!
//! `mmu` and `cpd` decompose into column axpys and column dot products,
//! which vectorise well; `tra` and `opd` need per-element access — exactly
//! the access pattern the paper identifies as the BAT path's weakness for
//! complex operations (Fig. 17b's 24–70× gap for the cross product).

use super::{sel, shape, sub_scaled_col, Cols};
use crate::error::LinalgError;

/// Matrix multiplication `A·B`: result column `j` is the linear combination
/// of `A`'s columns weighted by `B[:, j]`.
pub fn mmu(a: &Cols, b: &Cols) -> Result<Vec<Vec<f64>>, LinalgError> {
    let (m, ka) = shape(a)?;
    let (kb, n) = shape(b)?;
    if ka != kb {
        return Err(LinalgError::DimensionMismatch {
            context: "mmu: a.cols must equal b.rows",
        });
    }
    let mut out = Vec::with_capacity(n);
    for j in 0..n {
        let mut col = vec![0.0f64; m];
        for (l, al) in a.iter().enumerate() {
            let w = sel(&b[j], l);
            if w != 0.0 {
                // col += al * w  (negated axpy reused as fused op)
                sub_scaled_col(&mut col, al, -w);
            }
        }
        out.push(col);
    }
    Ok(out)
}

/// Cross product `Aᵀ·B`: one column dot product per output cell.
pub fn cpd(a: &Cols, b: &Cols) -> Result<Vec<Vec<f64>>, LinalgError> {
    let (ra, ca) = shape(a)?;
    let (rb, cb) = shape(b)?;
    if ra != rb {
        return Err(LinalgError::DimensionMismatch {
            context: "cpd: row counts must match",
        });
    }
    let mut out = Vec::with_capacity(cb);
    for j in 0..cb {
        let mut col = Vec::with_capacity(ca);
        for ai in a.iter() {
            col.push(super::dot_col(ai, &b[j]));
        }
        out.push(col);
    }
    Ok(out)
}

/// Outer product `A·Bᵀ` for matrices sharing a column count: result column
/// `j` (length = rows of A) accumulates `A[:,k] · B[j,k]` — per-element
/// access into `B`.
pub fn opd(a: &Cols, b: &Cols) -> Result<Vec<Vec<f64>>, LinalgError> {
    let (ma, ka) = shape(a)?;
    let (mb, kb) = shape(b)?;
    if ka != kb {
        return Err(LinalgError::DimensionMismatch {
            context: "opd: column counts must match",
        });
    }
    let mut out = Vec::with_capacity(mb);
    for j in 0..mb {
        let mut col = vec![0.0f64; ma];
        for (k, ak) in a.iter().enumerate() {
            let w = sel(&b[k], j);
            if w != 0.0 {
                sub_scaled_col(&mut col, ak, -w);
            }
        }
        out.push(col);
    }
    Ok(out)
}

/// Transpose: pure element shuffling (the worst case for columnar storage).
pub fn tra(a: &Cols) -> Result<Vec<Vec<f64>>, LinalgError> {
    let (m, n) = shape(a)?;
    let mut out = vec![vec![0.0f64; n]; m];
    for (j, col) in a.iter().enumerate() {
        for (i, &v) in col.iter().enumerate() {
            out[i][j] = v;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::gemm;
    use crate::dense::matrix::Matrix;

    fn to_matrix(cols: &Cols) -> Matrix {
        Matrix::from_columns(cols).unwrap()
    }

    fn a() -> Vec<Vec<f64>> {
        // 3×2
        vec![vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]
    }
    fn b() -> Vec<Vec<f64>> {
        // 2×2
        vec![vec![1.0, 0.5], vec![-1.0, 2.0]]
    }

    #[test]
    fn mmu_matches_dense() {
        let got = to_matrix(&mmu(&a(), &b()).unwrap());
        let expect = gemm::matmul(&to_matrix(&a()), &to_matrix(&b())).unwrap();
        assert!(got.approx_eq(&expect, 1e-12));
    }

    #[test]
    fn cpd_matches_dense() {
        let got = to_matrix(&cpd(&a(), &a()).unwrap());
        let expect = gemm::crossprod(&to_matrix(&a()), &to_matrix(&a())).unwrap();
        assert!(got.approx_eq(&expect, 1e-12));
    }

    #[test]
    fn opd_matches_dense() {
        let c = vec![vec![1.0, 2.0], vec![0.0, 1.0]]; // 2×2
        let got = to_matrix(&opd(&a(), &c).unwrap());
        let expect = gemm::outer(&to_matrix(&a()), &to_matrix(&c)).unwrap();
        assert!(got.approx_eq(&expect, 1e-12));
    }

    #[test]
    fn tra_roundtrip() {
        let t = tra(&a()).unwrap();
        assert_eq!(t.len(), 3); // 3 columns of length 2
        assert_eq!(t[0], vec![1.0, 4.0]);
        let back = tra(&t).unwrap();
        assert_eq!(back, a());
    }

    #[test]
    fn shape_errors() {
        assert!(mmu(&a(), &a()).is_err()); // 3×2 · 3×2
        assert!(cpd(&a(), &b()).is_err()); // 3 rows vs 2 rows
        let three_col = vec![vec![1.0], vec![2.0], vec![3.0]];
        assert!(opd(&a(), &three_col).is_err());
    }

    #[test]
    fn identity_multiplication() {
        let id = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        assert_eq!(mmu(&a(), &id).unwrap(), a());
    }
}
