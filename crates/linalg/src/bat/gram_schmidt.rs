//! Gram-Schmidt QR over columns (QQR/RQR) — the paper's BAT baseline for QR
//! (§8.3 cites Gander's Gram-Schmidt algorithm [12]).
//!
//! Modified Gram-Schmidt is naturally column-at-a-time: it only ever scales
//! columns, takes column dot products, and subtracts scaled columns.

use super::{dot_col, scale_col, shape, sub_scaled_col, Cols};
use crate::error::LinalgError;

/// Thin QR by modified Gram-Schmidt. Returns `(q, r)` with `q: m×n` columns
/// orthonormal and `r: n×n` upper triangular (as columns). Rank-deficient
/// columns yield a zero column in `q` and zero diagonal in `r`.
pub fn qr(a: &Cols) -> Result<(Vec<Vec<f64>>, Vec<Vec<f64>>), LinalgError> {
    let (m, n) = shape(a)?;
    if m == 0 || n == 0 {
        return Err(LinalgError::Empty);
    }
    if m < n {
        return Err(LinalgError::DimensionMismatch {
            context: "QR requires rows >= cols",
        });
    }
    let scale = a
        .iter()
        .map(|c| dot_col(c, c).sqrt())
        .fold(0.0f64, f64::max)
        .max(f64::MIN_POSITIVE);
    let tol = 1e-13 * scale;
    let mut q: Vec<Vec<f64>> = a.to_vec();
    let mut r: Vec<Vec<f64>> = (0..n).map(|_| vec![0.0; n]).collect();
    for k in 0..n {
        for i in 0..k {
            // r[i,k] = qᵢ · qₖ ; qₖ -= qᵢ · r[i,k]
            let (qi, qk) = borrow_two(&mut q, i, k);
            let rik = dot_col(qi, qk);
            r[k][i] = rik;
            sub_scaled_col(qk, qi, rik);
        }
        let norm = dot_col(&q[k], &q[k]).sqrt();
        r[k][k] = norm;
        if norm > tol {
            scale_col(&mut q[k], norm);
        } else {
            // rank-deficient column: zero it out, keep r[k][k] ≈ 0
            for t in q[k].iter_mut() {
                *t = 0.0;
            }
            r[k][k] = 0.0;
        }
    }
    Ok((q, r))
}

/// QQR: the `Q` factor only.
pub fn qqr(a: &Cols) -> Result<Vec<Vec<f64>>, LinalgError> {
    Ok(qr(a)?.0)
}

/// RQR: the `R` factor only.
pub fn rqr(a: &Cols) -> Result<Vec<Vec<f64>>, LinalgError> {
    Ok(qr(a)?.1)
}

/// Least squares via Gram-Schmidt QR: `x = R⁻¹ Qᵀ b` per rhs column.
pub fn least_squares(a: &Cols, rhs: &Cols) -> Result<Vec<Vec<f64>>, LinalgError> {
    let (m, n) = shape(a)?;
    let (mr, _) = shape(rhs)?;
    if m != mr {
        return Err(LinalgError::DimensionMismatch {
            context: "least squares rhs rows",
        });
    }
    let (q, r) = qr(a)?;
    let mut out = Vec::with_capacity(rhs.len());
    for b in rhs.iter() {
        // qtb[i] = qᵢ · b
        let qtb: Vec<f64> = q.iter().map(|qi| dot_col(qi, b)).collect();
        // back substitution on R (stored column-wise: r[j][i] = R[i][j])
        let mut x = qtb;
        for i in (0..n).rev() {
            let mut s = x[i];
            for j in i + 1..n {
                s -= r[j][i] * x[j];
            }
            let d = r[i][i];
            if d.abs() < 1e-12 {
                return Err(LinalgError::Singular);
            }
            x[i] = s / d;
        }
        out.push(x);
    }
    Ok(out)
}

fn borrow_two(cols: &mut [Vec<f64>], i: usize, j: usize) -> (&[f64], &mut Vec<f64>) {
    debug_assert!(i < j);
    let (l, r) = cols.split_at_mut(j);
    (&l[i], &mut r[0])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense;
    use crate::dense::matrix::Matrix;

    fn to_matrix(cols: &Cols) -> Matrix {
        Matrix::from_columns(cols).unwrap()
    }

    fn weather() -> Vec<Vec<f64>> {
        // Figure 8's g as columns
        vec![vec![1.0, 1.0, 6.0, 8.0], vec![3.0, 4.0, 7.0, 5.0]]
    }

    #[test]
    fn qr_reconstructs() {
        let (q, r) = qr(&weather()).unwrap();
        let back = dense::gemm::matmul(&to_matrix(&q), &to_matrix(&r)).unwrap();
        assert!(back.approx_eq(&to_matrix(&weather()), 1e-10));
    }

    #[test]
    fn q_orthonormal_r_triangular() {
        let (q, r) = qr(&weather()).unwrap();
        let qm = to_matrix(&q);
        let qtq = dense::gemm::crossprod(&qm, &qm).unwrap();
        assert!(qtq.approx_eq(&Matrix::identity(2), 1e-10));
        assert_eq!(r[0][1], 0.0); // below-diagonal of R is zero
    }

    #[test]
    fn r_magnitudes_match_householder() {
        let (_, r_gs) = qr(&weather()).unwrap();
        let qr_h = dense::qr::qr(&to_matrix(&weather())).unwrap();
        for i in 0..2 {
            for j in i..2 {
                assert!((r_gs[j][i].abs() - qr_h.r.get(i, j).abs()).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn rank_deficient_handled() {
        let a = vec![vec![1.0, 2.0, 3.0], vec![2.0, 4.0, 6.0]];
        let (q, r) = qr(&a).unwrap();
        assert_eq!(r[1][1], 0.0);
        assert!(q[1].iter().all(|&x| x == 0.0));
    }

    #[test]
    fn least_squares_matches_dense() {
        let a = vec![vec![1.0, 1.0, 1.0, 1.0], vec![0.0, 1.0, 2.0, 3.0]];
        let b = vec![vec![1.1, 2.9, 5.1, 6.9]];
        let x = least_squares(&a, &b).unwrap();
        let xd = dense::qr::least_squares(&to_matrix(&a), &Matrix::col_vector(&b[0])).unwrap();
        assert!((x[0][0] - xd.get(0, 0)).abs() < 1e-10);
        assert!((x[0][1] - xd.get(1, 0)).abs() < 1e-10);
    }

    #[test]
    fn least_squares_singular_detected() {
        let a = vec![vec![1.0, 1.0, 1.0], vec![1.0, 1.0, 1.0]];
        let b = vec![vec![1.0, 2.0, 3.0]];
        assert!(matches!(least_squares(&a, &b), Err(LinalgError::Singular)));
    }

    #[test]
    fn shape_errors() {
        let wide = vec![vec![1.0], vec![2.0], vec![3.0]];
        assert!(qr(&wide).is_err());
        let empty: Vec<Vec<f64>> = vec![];
        assert!(qr(&empty).is_err());
    }
}
