//! # rma-linalg — linear-algebra kernels for the RMA reproduction
//!
//! Two interchangeable kernel families implement the base results of the
//! relational matrix operations:
//!
//! * [`dense`] — contiguous column-major matrices with blocked, threaded
//!   kernels: the role Intel MKL plays in the paper's RMA+MKL configuration.
//!   Using it from BATs requires copying columns into one buffer and back.
//! * [`bat`] — column-at-a-time kernels over lists of column vectors: the
//!   paper's no-copy in-kernel MonetDB implementations (RMA+BAT), including
//!   Algorithm 2 (Gauss-Jordan inversion) and Gram-Schmidt QR.
//!
//! The delegation policy (which kernel runs which operation at which size)
//! lives in `rma-core`.

#![allow(clippy::needless_range_loop)] // index-explicit loops mirror the textbook algorithms
#![allow(clippy::type_complexity)] // (Vec<Vec<f64>>, Vec<Vec<f64>>) factor pairs

pub mod bat;
pub mod dense;
pub mod error;
pub mod threads;

pub use dense::Matrix;
pub use error::LinalgError;
pub use threads::{available_threads, install_parallelism, par_chunks_mut, Parallelism};
