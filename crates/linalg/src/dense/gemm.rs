//! Matrix products: blocked, optionally threaded GEMM plus the derived
//! products the RMA operations need (MMU, CPD, OPD).
//!
//! The kernel is a cache-blocked `C += A·B` over column-major storage with a
//! column-parallel outer loop on the shared executor (the session worker
//! pool once installed — see [`crate::threads`]), standing in for the
//! multi-threaded MKL of the paper.

use super::matrix::Matrix;
use crate::error::LinalgError;

/// Cache block edge (elements). 64×64 f64 blocks ≈ 32 KiB, comfortably
/// within L1+L2 for three operands.
const BLOCK: usize = 64;

/// Parallelise only when the output has at least this many elements;
/// thread spawn overhead dominates below.
const PAR_THRESHOLD: usize = 256 * 256;

/// Flop-count threshold for parallelising dot-product-shaped kernels whose
/// output may be small while the reduction dimension is long.
const PAR_FLOPS: usize = 1 << 20;

/// `A · B` (the base result of `mmu`). Shape `(m×k) · (k×n) → (m×n)`.
pub fn matmul(a: &Matrix, b: &Matrix) -> Result<Matrix, LinalgError> {
    if a.cols() != b.rows() {
        return Err(LinalgError::DimensionMismatch {
            context: "matmul: a.cols must equal b.rows",
        });
    }
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let mut c = Matrix::zeros(m, n);
    let threads = available_threads();
    if m * n >= PAR_THRESHOLD && threads > 1 && n > 1 {
        matmul_parallel(a, b, &mut c, threads);
    } else {
        for j0 in (0..n).step_by(BLOCK) {
            let jmax = (j0 + BLOCK).min(n);
            matmul_block_cols(a, b, &mut c, j0, jmax, m, k);
        }
    }
    Ok(c)
}

pub use crate::threads::available_threads;

fn matmul_parallel(a: &Matrix, b: &Matrix, c: &mut Matrix, threads: usize) {
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    // Split C into contiguous column chunks: in column-major layout a chunk
    // of columns is a contiguous mutable slice, so each worker owns disjoint
    // memory and no synchronisation is needed. Workers come from the shared
    // executor (the session worker pool once installed), not per-call spawns.
    let chunk_cols = n.div_ceil(threads).max(1);
    let buf = c.as_mut_slice();
    crate::threads::par_chunks_mut(buf, chunk_cols * m, |chunk_id, _start, chunk| {
        let j_start = chunk_id * chunk_cols;
        let ncols = chunk.len() / m;
        for l0 in (0..k).step_by(BLOCK) {
            let lmax = (l0 + BLOCK).min(k);
            for jc in 0..ncols {
                let j = j_start + jc;
                let bj = b.col(j);
                let cj = &mut chunk[jc * m..(jc + 1) * m];
                for l in l0..lmax {
                    let blj = bj[l];
                    if blj == 0.0 {
                        continue;
                    }
                    let al = a.col(l);
                    for i in 0..m {
                        cj[i] += al[i] * blj;
                    }
                }
            }
        }
    });
}

#[inline]
fn matmul_block_cols(
    a: &Matrix,
    b: &Matrix,
    c: &mut Matrix,
    j0: usize,
    jmax: usize,
    m: usize,
    k: usize,
) {
    // c[:, j] += a[:, l] * b[l, j], blocked over l and rows for locality
    for l0 in (0..k).step_by(BLOCK) {
        let lmax = (l0 + BLOCK).min(k);
        for j in j0..jmax {
            let bj = b.col(j);
            let cj = c.col_mut(j);
            for l in l0..lmax {
                let blj = bj[l];
                if blj == 0.0 {
                    continue;
                }
                let al = a.col(l);
                // axpy over contiguous column slices: auto-vectorises
                for i in 0..m {
                    cj[i] += al[i] * blj;
                }
            }
        }
    }
}

/// `Aᵀ · B` (the base result of `cpd`, R's `crossprod`). Shape
/// `(k×m)ᵀ · (k×n) → (m×n)`; computed as column dot products without
/// materialising the transpose.
pub fn crossprod(a: &Matrix, b: &Matrix) -> Result<Matrix, LinalgError> {
    if a.rows() != b.rows() {
        return Err(LinalgError::DimensionMismatch {
            context: "crossprod: row counts must match",
        });
    }
    let (m, n, k) = (a.cols(), b.cols(), a.rows());
    let mut c = Matrix::zeros(m, n);
    let threads = available_threads();
    if threads > 1 && n > 1 && m * n * k >= PAR_FLOPS {
        // split C into contiguous column chunks (disjoint in column-major
        // layout); each worker computes the dot products of its columns,
        // claiming chunks on the shared executor
        let chunk_cols = n.div_ceil(threads).max(1);
        let buf = c.as_mut_slice();
        crate::threads::par_chunks_mut(buf, chunk_cols * m, |chunk_id, _start, chunk| {
            let j_start = chunk_id * chunk_cols;
            for (jc, cj) in chunk.chunks_mut(m).enumerate() {
                let bj = b.col(j_start + jc);
                for (i, out) in cj.iter_mut().enumerate() {
                    *out = dot(a.col(i), bj);
                }
            }
        });
    } else {
        for j in 0..n {
            let bj = b.col(j);
            for i in 0..m {
                let ai = a.col(i);
                c.set(i, j, dot(ai, bj));
            }
        }
    }
    Ok(c)
}

/// `A · Bᵀ` (the base result of `opd`, R's outer product for matrices with
/// a common inner column count). Shape `(m×k) · (n×k)ᵀ → (m×n)`.
pub fn outer(a: &Matrix, b: &Matrix) -> Result<Matrix, LinalgError> {
    if a.cols() != b.cols() {
        return Err(LinalgError::DimensionMismatch {
            context: "outer: column counts must match",
        });
    }
    let (m, n, k) = (a.rows(), b.rows(), a.cols());
    let mut c = Matrix::zeros(m, n);
    for j in 0..n {
        let cj = c.col_mut(j);
        for l in 0..k {
            let blj = b.get(j, l);
            if blj == 0.0 {
                continue;
            }
            let al = a.col(l);
            for i in 0..m {
                cj[i] += al[i] * blj;
            }
        }
    }
    Ok(c)
}

#[inline]
pub(crate) fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    // 4-lane unrolled dot product; LLVM vectorises this reliably.
    let mut acc = [0.0f64; 4];
    let chunks = a.len() / 4;
    for c in 0..chunks {
        let i = c * 4;
        acc[0] += a[i] * b[i];
        acc[1] += a[i + 1] * b[i + 1];
        acc[2] += a[i + 2] * b[i + 2];
        acc[3] += a[i + 3] * b[i + 3];
    }
    let mut s = acc[0] + acc[1] + acc[2] + acc[3];
    for i in chunks * 4..a.len() {
        s += a[i] * b[i];
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
        let mut c = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut s = 0.0;
                for l in 0..a.cols() {
                    s += a.get(i, l) * b.get(l, j);
                }
                c.set(i, j, s);
            }
        }
        c
    }

    #[test]
    fn matmul_small() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]).unwrap();
        let c = matmul(&a, &b).unwrap();
        assert_eq!(
            c,
            Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]).unwrap()
        );
    }

    #[test]
    fn matmul_rectangular_matches_naive() {
        let a = Matrix::from_columns(&[
            (0..70).map(|x| x as f64).collect(),
            (0..70).map(|x| (x * 2) as f64).collect(),
            (0..70).map(|x| (x % 7) as f64).collect(),
        ])
        .unwrap();
        let b = Matrix::from_rows(&[&[1.0, 0.5], &[2.0, -1.0], &[0.0, 3.0]]).unwrap();
        let c = matmul(&a, &b).unwrap();
        assert!(c.approx_eq(&naive_matmul(&a, &b), 1e-9));
    }

    #[test]
    fn matmul_shape_error() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matmul(&a, &b).is_err());
    }

    #[test]
    fn matmul_identity() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let c = matmul(&a, &Matrix::identity(2)).unwrap();
        assert!(c.approx_eq(&a, 1e-12));
    }

    #[test]
    fn crossprod_is_at_b() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]).unwrap();
        let b = Matrix::from_rows(&[&[1.0], &[1.0], &[1.0]]).unwrap();
        let c = crossprod(&a, &b).unwrap();
        assert!(c.approx_eq(&matmul(&a.transpose(), &b).unwrap(), 1e-12));
        assert!(crossprod(&a, &Matrix::zeros(2, 1)).is_err());
    }

    #[test]
    fn outer_is_a_bt() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]).unwrap();
        let b = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]).unwrap();
        let c = outer(&a, &b).unwrap();
        assert!(c.approx_eq(&matmul(&a, &b.transpose()).unwrap(), 1e-12));
        assert!(outer(&a, &Matrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn matmul_parallel_path_matches_naive() {
        // 300×300 crosses PAR_THRESHOLD, exercising the threaded kernel
        let n = 300;
        let a = Matrix::from_columns(
            &(0..n)
                .map(|j| (0..n).map(|i| ((i * 7 + j * 3) % 11) as f64).collect())
                .collect::<Vec<_>>(),
        )
        .unwrap();
        let b = Matrix::from_columns(
            &(0..n)
                .map(|j| (0..n).map(|i| ((i + j) % 5) as f64 - 2.0).collect())
                .collect::<Vec<_>>(),
        )
        .unwrap();
        let c = matmul(&a, &b).unwrap();
        // spot-check against the naive definition on a sample of cells
        for &(i, j) in &[(0, 0), (5, 250), (299, 299), (123, 45)] {
            let expected: f64 = (0..n).map(|l| a.get(i, l) * b.get(l, j)).sum();
            assert!((c.get(i, j) - expected).abs() < 1e-9);
        }
    }

    #[test]
    fn dot_unrolled_matches_simple() {
        let a: Vec<f64> = (0..37).map(|x| x as f64 * 0.1).collect();
        let b: Vec<f64> = (0..37).map(|x| (37 - x) as f64).collect();
        let simple: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        assert!((dot(&a, &b) - simple).abs() < 1e-9);
    }
}
