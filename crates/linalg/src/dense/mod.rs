//! Dense contiguous kernels — the "MKL" role of the paper's RMA+MKL
//! configuration: column-major `f64` buffers, blocked/threaded GEMM,
//! LU, Householder QR, one-sided Jacobi SVD, Jacobi/QR-iteration eigen
//! decompositions, and Cholesky.

pub mod chol;
pub mod eig;
pub mod gemm;
pub mod lu;
pub mod matrix;
pub mod qr;
pub mod svd;

pub use chol::cholesky;
pub use eig::{eigen, eigenvalues, is_symmetric, Eigen};
pub use gemm::{crossprod, matmul, outer};
pub use lu::{det, inverse, solve, Lu};
pub use matrix::Matrix;
pub use qr::{least_squares, qr, Qr};
pub use svd::{rank, svd, Svd};
