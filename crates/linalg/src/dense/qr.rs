//! Householder QR decomposition (QQR/RQR) and QR-based least squares.
//!
//! For an `m × n` matrix with `m ≥ n` this computes the *thin* factorisation
//! `A = Q·R` with `Q` of shape `m × n` (orthonormal columns) and `R` of shape
//! `n × n` (upper triangular) — the shapes the paper's Table 1 assigns to
//! QQR (`r1,c1`) and RQR (`c1,c1`). Signs follow the LAPACK convention of
//! non-negative diagonal in `R`.

use super::gemm::dot;
use super::matrix::Matrix;
use crate::error::LinalgError;

/// The thin QR factorisation of a matrix.
#[derive(Debug, Clone)]
pub struct Qr {
    /// `m × n`, orthonormal columns.
    pub q: Matrix,
    /// `n × n`, upper triangular.
    pub r: Matrix,
}

/// Factorise `a` (requires `rows ≥ cols`).
pub fn qr(a: &Matrix) -> Result<Qr, LinalgError> {
    let (m, n) = (a.rows(), a.cols());
    if m == 0 || n == 0 {
        return Err(LinalgError::Empty);
    }
    if m < n {
        return Err(LinalgError::DimensionMismatch {
            context: "QR requires rows >= cols",
        });
    }
    // Householder vectors are accumulated in-place in `work`; `vs[k]` keeps
    // the k-th reflector for the Q reconstruction.
    let mut work = a.clone();
    let mut vs: Vec<Vec<f64>> = Vec::with_capacity(n);
    for k in 0..n {
        // build the reflector from work[k.., k]
        let col = work.col(k);
        let x = &col[k..];
        let alpha = -x[0].signum() * norm2(x);
        let mut v: Vec<f64> = x.to_vec();
        v[0] -= alpha;
        let vnorm = norm2(&v);
        if vnorm > 0.0 {
            for t in v.iter_mut() {
                *t /= vnorm;
            }
            // apply H = I − 2vvᵀ to the trailing columns
            for j in k..n {
                let cj = work.col_mut(j);
                let tail = &mut cj[k..];
                let proj = 2.0 * dot(&v, tail);
                for (t, &vi) in tail.iter_mut().zip(&v) {
                    *t -= proj * vi;
                }
            }
        }
        vs.push(v);
    }
    // R: upper-triangular top of `work`
    let mut r = Matrix::zeros(n, n);
    for j in 0..n {
        for i in 0..=j.min(n - 1) {
            r.set(i, j, work.get(i, j));
        }
    }
    // Q: apply reflectors in reverse to the first n columns of I
    let mut q = Matrix::zeros(m, n);
    for j in 0..n {
        q.set(j, j, 1.0);
    }
    for k in (0..n).rev() {
        let v = &vs[k];
        if norm2(v) == 0.0 {
            continue;
        }
        for j in 0..n {
            let cj = q.col_mut(j);
            let tail = &mut cj[k..];
            let proj = 2.0 * dot(v, tail);
            for (t, &vi) in tail.iter_mut().zip(v) {
                *t -= proj * vi;
            }
        }
    }
    // sign convention: make diag(R) non-negative
    for j in 0..n {
        if r.get(j, j) < 0.0 {
            for jj in j..n {
                let v = r.get(j, jj);
                r.set(j, jj, -v);
            }
            let cj = q.col_mut(j);
            for t in cj.iter_mut() {
                *t = -*t;
            }
        }
    }
    Ok(Qr { q, r })
}

/// Least-squares solve `min ‖A·x − b‖₂` via QR: `x = R⁻¹·Qᵀ·b`.
pub fn least_squares(a: &Matrix, b: &Matrix) -> Result<Matrix, LinalgError> {
    if a.rows() != b.rows() {
        return Err(LinalgError::DimensionMismatch {
            context: "least squares rhs rows",
        });
    }
    let Qr { q, r } = qr(a)?;
    let qtb = super::gemm::crossprod(&q, b)?;
    // back substitution on R for each rhs column
    let n = r.rows();
    let mut cols = Vec::with_capacity(qtb.cols());
    for j in 0..qtb.cols() {
        let mut x = qtb.col(j).to_vec();
        for i in (0..n).rev() {
            let mut s = x[i];
            for jj in i + 1..n {
                s -= r.get(i, jj) * x[jj];
            }
            let d = r.get(i, i);
            if d.abs() < 1e-12 {
                return Err(LinalgError::Singular);
            }
            x[i] = s / d;
        }
        cols.push(x);
    }
    Matrix::from_columns(&cols)
}

fn norm2(v: &[f64]) -> f64 {
    dot(v, v).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::gemm::{crossprod, matmul};

    fn weather_matrix() -> Matrix {
        // Figure 8: g = [[1,3],[1,4],[6,7],[8,5]]
        Matrix::from_rows(&[&[1.0, 3.0], &[1.0, 4.0], &[6.0, 7.0], &[8.0, 5.0]]).unwrap()
    }

    #[test]
    fn qr_reconstructs_input() {
        let a = weather_matrix();
        let Qr { q, r } = qr(&a).unwrap();
        let back = matmul(&q, &r).unwrap();
        assert!(back.approx_eq(&a, 1e-10));
    }

    #[test]
    fn q_has_orthonormal_columns() {
        let Qr { q, .. } = qr(&weather_matrix()).unwrap();
        let qtq = crossprod(&q, &q).unwrap();
        assert!(qtq.approx_eq(&Matrix::identity(2), 1e-10));
    }

    #[test]
    fn r_is_upper_triangular_with_nonnegative_diagonal() {
        let Qr { r, .. } = qr(&weather_matrix()).unwrap();
        assert_eq!(r.get(1, 0), 0.0);
        assert!(r.get(0, 0) >= 0.0 && r.get(1, 1) >= 0.0);
    }

    #[test]
    fn r_matches_paper_figure8_magnitudes() {
        // the paper reports R = [[-10.1, -8.8], [0, -4.6]] (sign convention
        // differs; magnitudes must match)
        let Qr { r, .. } = qr(&weather_matrix()).unwrap();
        assert!((r.get(0, 0).abs() - 10.1).abs() < 0.05);
        assert!((r.get(0, 1).abs() - 8.8).abs() < 0.08);
        assert!((r.get(1, 1).abs() - 4.6).abs() < 0.05);
    }

    #[test]
    fn square_qr() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]).unwrap();
        let Qr { q, r } = qr(&a).unwrap();
        assert!(matmul(&q, &r).unwrap().approx_eq(&a, 1e-10));
    }

    #[test]
    fn wide_matrix_rejected() {
        assert!(qr(&Matrix::zeros(2, 3)).is_err());
        assert!(qr(&Matrix::zeros(0, 0)).is_err());
    }

    #[test]
    fn rank_deficient_column_does_not_panic() {
        // second column is a multiple of the first
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0], &[3.0, 6.0]]).unwrap();
        let Qr { q, r } = qr(&a).unwrap();
        assert!(matmul(&q, &r).unwrap().approx_eq(&a, 1e-10));
        assert!(r.get(1, 1).abs() < 1e-10);
    }

    #[test]
    fn least_squares_recovers_line() {
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0], &[1.0, 2.0], &[1.0, 3.0]]).unwrap();
        let b = Matrix::col_vector(&[1.1, 2.9, 5.1, 6.9]);
        let x = least_squares(&a, &b).unwrap();
        assert!((x.get(0, 0) - 1.02).abs() < 0.1); // intercept ≈ 1
        assert!((x.get(1, 0) - 1.98).abs() < 0.1); // slope ≈ 2
    }

    #[test]
    fn least_squares_singular_detected() {
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0], &[1.0, 1.0]]).unwrap();
        let b = Matrix::col_vector(&[1.0, 2.0, 3.0]);
        assert!(matches!(least_squares(&a, &b), Err(LinalgError::Singular)));
    }
}
