//! Dense column-major matrices — the "MKL format" of the paper.
//!
//! The paper's RMA+MKL path copies BATs into a contiguous array of doubles;
//! since BATs are columns, the natural contiguous layout is column-major:
//! converting a list of BATs is a sequence of `memcpy`s. All dense kernels in
//! this crate work on this layout.

use crate::error::LinalgError;
use std::fmt;

/// An `m × n` dense matrix of `f64` in column-major order.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    data: Vec<f64>,
    rows: usize,
    cols: usize,
}

impl Matrix {
    /// A zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            data: vec![0.0; rows * cols],
            rows,
            cols,
        }
    }

    /// The `n × n` identity.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Build from a column-major buffer.
    pub fn from_col_major(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self, LinalgError> {
        if data.len() != rows * cols {
            return Err(LinalgError::DimensionMismatch {
                context: "from_col_major buffer size",
            });
        }
        Ok(Matrix { data, rows, cols })
    }

    /// Build from column vectors (the BAT→dense copy). All columns must have
    /// equal length.
    pub fn from_columns(columns: &[Vec<f64>]) -> Result<Self, LinalgError> {
        let cols = columns.len();
        let rows = columns.first().map_or(0, Vec::len);
        if columns.iter().any(|c| c.len() != rows) {
            return Err(LinalgError::DimensionMismatch {
                context: "from_columns ragged input",
            });
        }
        let mut data = Vec::with_capacity(rows * cols);
        for c in columns {
            data.extend_from_slice(c);
        }
        Ok(Matrix { data, rows, cols })
    }

    /// Build from row slices (test convenience).
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self, LinalgError> {
        let m = rows.len();
        let n = rows.first().map_or(0, |r| r.len());
        if rows.iter().any(|r| r.len() != n) {
            return Err(LinalgError::DimensionMismatch {
                context: "from_rows ragged input",
            });
        }
        let mut out = Matrix::zeros(m, n);
        for (i, r) in rows.iter().enumerate() {
            for (j, &v) in r.iter().enumerate() {
                out.set(i, j, v);
            }
        }
        Ok(out)
    }

    /// A column vector.
    pub fn col_vector(values: &[f64]) -> Self {
        Matrix {
            data: values.to_vec(),
            rows: values.len(),
            cols: 1,
        }
    }

    /// Number of rows `|m|`.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns `#m`.
    pub fn cols(&self) -> usize {
        self.cols
    }

    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[j * self.rows + i]
    }

    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[j * self.rows + i] = v;
    }

    /// Borrow column `j` as a contiguous slice (free in column-major layout).
    #[inline]
    pub fn col(&self, j: usize) -> &[f64] {
        &self.data[j * self.rows..(j + 1) * self.rows]
    }

    /// Mutable column slice.
    #[inline]
    pub fn col_mut(&mut self, j: usize) -> &mut [f64] {
        &mut self.data[j * self.rows..(j + 1) * self.rows]
    }

    /// Copy row `i` out (strided access).
    pub fn row(&self, i: usize) -> Vec<f64> {
        (0..self.cols).map(|j| self.get(i, j)).collect()
    }

    /// The raw column-major buffer (the "contiguous array of doubles" handed
    /// to the MKL-role kernels).
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw buffer (used by the parallel GEMM to hand disjoint column
    /// chunks to worker threads).
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Decompose into column vectors (the dense→BAT copy back). One linear
    /// pass; each column is copied exactly once.
    pub fn into_columns(self) -> Vec<Vec<f64>> {
        if self.rows == 0 {
            return vec![Vec::new(); self.cols];
        }
        self.data
            .chunks_exact(self.rows)
            .map(<[f64]>::to_vec)
            .collect()
    }

    /// Transpose (out-of-place).
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for j in 0..self.cols {
            let src = self.col(j);
            for (i, &v) in src.iter().enumerate() {
                t.set(j, i, v);
            }
        }
        t
    }

    /// Horizontal concatenation `self ⧺ other` (the paper's `m ‖ n`,
    /// Eq. (3)): both operands must have the same number of rows.
    pub fn concat_h(&self, other: &Matrix) -> Result<Matrix, LinalgError> {
        if self.rows != other.rows {
            return Err(LinalgError::DimensionMismatch {
                context: "horizontal concatenation row counts",
            });
        }
        let mut data = Vec::with_capacity(self.data.len() + other.data.len());
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&other.data);
        Ok(Matrix {
            data,
            rows: self.rows,
            cols: self.cols + other.cols,
        })
    }

    /// Element-wise map.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        Matrix {
            data: self.data.iter().map(|&x| f(x)).collect(),
            rows: self.rows,
            cols: self.cols,
        }
    }

    /// Element-wise combination with another matrix of the same shape.
    pub fn zip_with(
        &self,
        other: &Matrix,
        f: impl Fn(f64, f64) -> f64,
    ) -> Result<Matrix, LinalgError> {
        if self.rows != other.rows || self.cols != other.cols {
            return Err(LinalgError::DimensionMismatch {
                context: "element-wise operation shapes",
            });
        }
        Ok(Matrix {
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&x, &y)| f(x, y))
                .collect(),
            rows: self.rows,
            cols: self.cols,
        })
    }

    /// Element-wise combination, split across worker threads for large
    /// matrices. Bitwise-identical to [`Matrix::zip_with`].
    pub fn zip_with_parallel(
        &self,
        other: &Matrix,
        f: impl Fn(f64, f64) -> f64 + Sync,
    ) -> Result<Matrix, LinalgError> {
        let threads = crate::threads::available_threads();
        if threads <= 1 || self.data.len() < PAR_ELEMWISE_MIN {
            return self.zip_with(other, f);
        }
        if self.rows != other.rows || self.cols != other.cols {
            return Err(LinalgError::DimensionMismatch {
                context: "element-wise operation shapes",
            });
        }
        let mut data = vec![0.0; self.data.len()];
        elementwise_chunks(threads, &mut data, |start, dst| {
            let a = &self.data[start..start + dst.len()];
            let b = &other.data[start..start + dst.len()];
            for ((d, &x), &y) in dst.iter_mut().zip(a).zip(b) {
                *d = f(x, y);
            }
        });
        Ok(Matrix {
            data,
            rows: self.rows,
            cols: self.cols,
        })
    }

    /// Max absolute difference to another matrix (test helper).
    pub fn max_abs_diff(&self, other: &Matrix) -> f64 {
        assert_eq!(self.rows, other.rows);
        assert_eq!(self.cols, other.cols);
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// Approximate equality within `tol` (test helper).
    pub fn approx_eq(&self, other: &Matrix, tol: f64) -> bool {
        self.rows == other.rows && self.cols == other.cols && self.max_abs_diff(other) <= tol
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }
}

/// Element count below which element-wise operations stay serial (thread
/// spawn overhead dominates for small matrices).
const PAR_ELEMWISE_MIN: usize = 1 << 15;

/// Split `out` into `threads` contiguous chunks and run `f(start, chunk)`
/// for each on the shared executor's workers (the session worker pool once
/// installed). Chunks are disjoint, so workers need no synchronisation.
fn elementwise_chunks(threads: usize, out: &mut [f64], f: impl Fn(usize, &mut [f64]) + Sync) {
    let chunk = out.len().div_ceil(threads).max(1);
    crate::threads::par_chunks_mut(out, chunk, |_, start, dst| f(start, dst));
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows.min(12) {
            for j in 0..self.cols.min(12) {
                write!(f, "{:>10.4} ", self.get(i, j))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        assert_eq!(m.get(0, 1), 2.0);
        assert_eq!(m.col(0), &[1.0, 3.0]);
        assert_eq!(m.row(1), vec![3.0, 4.0]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 2);
    }

    #[test]
    fn from_columns_roundtrip() {
        let cols = vec![vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]];
        let m = Matrix::from_columns(&cols).unwrap();
        assert_eq!(m.rows(), 3);
        assert_eq!(m.get(2, 1), 6.0);
        assert_eq!(m.into_columns(), cols);
    }

    #[test]
    fn ragged_inputs_rejected() {
        assert!(Matrix::from_columns(&[vec![1.0], vec![1.0, 2.0]]).is_err());
        assert!(Matrix::from_rows(&[&[1.0], &[1.0, 2.0][..]]).is_err());
        assert!(Matrix::from_col_major(2, 2, vec![0.0; 3]).is_err());
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        let t = m.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.get(2, 1), 6.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn concat_h_matches_paper_eq3() {
        // Fig. 1: d ‖ e
        let d = Matrix::from_rows(&[&[10.0], &[20.0]]).unwrap();
        let e = Matrix::from_rows(&[&[1.0, 3.0], &[2.0, 4.0]]).unwrap();
        let h = d.concat_h(&e).unwrap();
        assert_eq!(h.cols(), 3);
        assert_eq!(h.row(0), vec![10.0, 1.0, 3.0]);
        let bad = Matrix::zeros(3, 1);
        assert!(d.concat_h(&bad).is_err());
    }

    #[test]
    fn identity_and_zeros() {
        let i = Matrix::identity(3);
        assert_eq!(i.get(1, 1), 1.0);
        assert_eq!(i.get(0, 1), 0.0);
        assert!(Matrix::zeros(0, 0).is_empty());
    }

    #[test]
    fn map_and_zip() {
        let m = Matrix::from_rows(&[&[1.0, -2.0]]).unwrap();
        assert_eq!(m.map(f64::abs).row(0), vec![1.0, 2.0]);
        let s = m.zip_with(&m, |a, b| a + b).unwrap();
        assert_eq!(s.row(0), vec![2.0, -4.0]);
        assert!(m.zip_with(&Matrix::zeros(2, 2), |a, _| a).is_err());
    }

    #[test]
    fn parallel_elementwise_matches_serial() {
        // above PAR_ELEMWISE_MIN so the threaded path actually runs
        let n = 260;
        let m = Matrix::from_columns(
            &(0..n)
                .map(|j| (0..n).map(|i| ((i * 3 + j) % 29) as f64 - 14.0).collect())
                .collect::<Vec<_>>(),
        )
        .unwrap();
        assert_eq!(
            m.zip_with_parallel(&m, |a, b| a * b).unwrap(),
            m.zip_with(&m, |a, b| a * b).unwrap()
        );
        assert!(m.zip_with_parallel(&Matrix::zeros(2, 2), |a, _| a).is_err());
    }

    #[test]
    fn norms_and_approx() {
        let m = Matrix::from_rows(&[&[3.0, 4.0]]).unwrap();
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-12);
        let n = Matrix::from_rows(&[&[3.0, 4.0 + 1e-12]]).unwrap();
        assert!(m.approx_eq(&n, 1e-9));
        assert!(!m.approx_eq(&n, 1e-15));
    }

    #[test]
    fn col_vector() {
        let v = Matrix::col_vector(&[1.0, 2.0]);
        assert_eq!(v.rows(), 2);
        assert_eq!(v.cols(), 1);
    }
}
