//! Cholesky factorisation (CHF).
//!
//! For a symmetric positive-definite `A`, computes the upper-triangular `R`
//! with `A = Rᵀ·R` — the convention of R's `chol()`, which the paper's CHF
//! mirrors.

use super::eig::is_symmetric;
use super::matrix::Matrix;
use crate::error::LinalgError;

/// Upper-triangular Cholesky factor `R` with `A = Rᵀ·R`.
pub fn cholesky(a: &Matrix) -> Result<Matrix, LinalgError> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare);
    }
    let n = a.rows();
    if n == 0 {
        return Err(LinalgError::Empty);
    }
    if !is_symmetric(a) {
        return Err(LinalgError::NotPositiveDefinite);
    }
    let mut r = Matrix::zeros(n, n);
    for j in 0..n {
        // diagonal entry
        let mut s = a.get(j, j);
        for k in 0..j {
            let rkj = r.get(k, j);
            s -= rkj * rkj;
        }
        if s <= 0.0 {
            return Err(LinalgError::NotPositiveDefinite);
        }
        let rjj = s.sqrt();
        r.set(j, j, rjj);
        // row j to the right of the diagonal
        for i in j + 1..n {
            let mut s = a.get(j, i);
            for k in 0..j {
                s -= r.get(k, j) * r.get(k, i);
            }
            r.set(j, i, s / rjj);
        }
    }
    Ok(r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::gemm::crossprod;

    #[test]
    fn factor_reconstructs() {
        let a = Matrix::from_rows(&[
            &[4.0, 12.0, -16.0],
            &[12.0, 37.0, -43.0],
            &[-16.0, -43.0, 98.0],
        ])
        .unwrap();
        let r = cholesky(&a).unwrap();
        // classic example: R = [[2,6,-8],[0,1,5],[0,0,3]]
        assert!((r.get(0, 0) - 2.0).abs() < 1e-12);
        assert!((r.get(0, 1) - 6.0).abs() < 1e-12);
        assert!((r.get(1, 2) - 5.0).abs() < 1e-12);
        assert!((r.get(2, 2) - 3.0).abs() < 1e-12);
        assert!(crossprod(&r, &r).unwrap().approx_eq(&a, 1e-10));
    }

    #[test]
    fn lower_triangle_is_zero() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]).unwrap();
        let r = cholesky(&a).unwrap();
        assert_eq!(r.get(1, 0), 0.0);
    }

    #[test]
    fn identity_factor_is_identity() {
        let r = cholesky(&Matrix::identity(4)).unwrap();
        assert!(r.approx_eq(&Matrix::identity(4), 1e-12));
    }

    #[test]
    fn indefinite_rejected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]).unwrap(); // eigenvalues 3, -1
        assert_eq!(cholesky(&a), Err(LinalgError::NotPositiveDefinite));
    }

    #[test]
    fn asymmetric_rejected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[0.0, 1.0]]).unwrap();
        assert_eq!(cholesky(&a), Err(LinalgError::NotPositiveDefinite));
    }

    #[test]
    fn shape_errors() {
        assert_eq!(cholesky(&Matrix::zeros(2, 3)), Err(LinalgError::NotSquare));
        assert_eq!(cholesky(&Matrix::zeros(0, 0)), Err(LinalgError::Empty));
    }
}
