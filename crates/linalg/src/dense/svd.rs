//! Singular value decomposition via one-sided Jacobi (DSV/USV/VSV), and the
//! SVD-based numerical rank (RNK).
//!
//! One-sided Jacobi orthogonalises the columns of `A` by plane rotations.
//! On convergence the rotated matrix is `U·Σ` and the accumulated rotations
//! form `V`, giving `A = U·Σ·Vᵀ` with `U: m×n`, `Σ: n`, `V: n×n`. The method
//! is simple, numerically robust, and accurate for the small-to-medium
//! matrices the paper's workloads produce.

use super::gemm::dot;
use super::matrix::Matrix;
use crate::error::LinalgError;

/// Result of a thin SVD.
#[derive(Debug, Clone)]
pub struct Svd {
    /// Left singular vectors, `m × n`.
    pub u: Matrix,
    /// Singular values, descending.
    pub s: Vec<f64>,
    /// Right singular vectors, `n × n` (columns are vectors).
    pub v: Matrix,
}

const MAX_SWEEPS: usize = 60;
const CONV_EPS: f64 = 1e-14;

/// Compute the thin SVD of `a` (requires `rows ≥ cols`; transpose first for
/// wide matrices — the RMA layer never needs that case because relations
/// have at least as many rows as application attributes in the evaluated
/// workloads; wide inputs return a dimension error).
pub fn svd(a: &Matrix) -> Result<Svd, LinalgError> {
    let (m, n) = (a.rows(), a.cols());
    if m == 0 || n == 0 {
        return Err(LinalgError::Empty);
    }
    if m < n {
        return Err(LinalgError::DimensionMismatch {
            context: "SVD requires rows >= cols",
        });
    }
    let mut u = a.clone();
    let mut v = Matrix::identity(n);
    let scale = a.frobenius_norm().max(f64::MIN_POSITIVE);
    let tol = CONV_EPS * scale * scale;

    for _sweep in 0..MAX_SWEEPS {
        let mut off = 0.0f64;
        for p in 0..n {
            for q in p + 1..n {
                // 2×2 Gram block of columns p, q
                let (app, aqq, apq) = {
                    let cp = u.col(p);
                    let cq = u.col(q);
                    (dot(cp, cp), dot(cq, cq), dot(cp, cq))
                };
                off = off.max(apq.abs());
                if apq.abs() <= tol {
                    continue;
                }
                // Jacobi rotation that zeroes the off-diagonal Gram entry
                let tau = (aqq - app) / (2.0 * apq);
                let t = tau.signum() / (tau.abs() + (1.0 + tau * tau).sqrt());
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = c * t;
                rotate_columns(&mut u, p, q, c, s);
                rotate_columns(&mut v, p, q, c, s);
            }
        }
        if off <= tol {
            break;
        }
    }

    // singular values = column norms of the rotated U; normalise columns
    let mut sv: Vec<(f64, usize)> = (0..n)
        .map(|j| (dot(u.col(j), u.col(j)).sqrt(), j))
        .collect();
    sv.sort_by(|a, b| b.0.total_cmp(&a.0));
    let mut u_sorted = Matrix::zeros(m, n);
    let mut v_sorted = Matrix::zeros(n, n);
    let mut s = Vec::with_capacity(n);
    for (out_j, &(norm, src_j)) in sv.iter().enumerate() {
        s.push(norm);
        let uc = u.col(src_j);
        let vc = v.col(src_j);
        if norm > 0.0 {
            for i in 0..m {
                u_sorted.set(i, out_j, uc[i] / norm);
            }
        }
        for i in 0..n {
            v_sorted.set(i, out_j, vc[i]);
        }
    }
    Ok(Svd {
        u: u_sorted,
        s,
        v: v_sorted,
    })
}

fn rotate_columns(m: &mut Matrix, p: usize, q: usize, c: f64, s: f64) {
    let rows = m.rows();
    for i in 0..rows {
        let xp = m.get(i, p);
        let xq = m.get(i, q);
        m.set(i, p, c * xp - s * xq);
        m.set(i, q, s * xp + c * xq);
    }
}

/// Numerical rank: number of singular values above the standard threshold
/// `max(m,n) · ε · σ_max` (what R's `qr(x)$rank` / MATLAB's `rank` use).
pub fn rank(a: &Matrix) -> Result<usize, LinalgError> {
    let (m, n) = (a.rows(), a.cols());
    if m == 0 || n == 0 {
        return Err(LinalgError::Empty);
    }
    // svd requires m >= n; rank is transpose-invariant
    let s = if m >= n {
        svd(a)?.s
    } else {
        svd(&a.transpose())?.s
    };
    let smax = s.first().copied().unwrap_or(0.0);
    if smax == 0.0 {
        return Ok(0);
    }
    let thresh = m.max(n) as f64 * f64::EPSILON * smax;
    Ok(s.iter().filter(|&&x| x > thresh).count())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::gemm::{crossprod, matmul};

    fn reconstruct(svd: &Svd) -> Matrix {
        let n = svd.s.len();
        let mut us = svd.u.clone();
        for j in 0..n {
            let c = us.col_mut(j);
            for t in c.iter_mut() {
                *t *= svd.s[j];
            }
        }
        matmul(&us, &svd.v.transpose()).unwrap()
    }

    #[test]
    fn svd_reconstructs() {
        let a = Matrix::from_rows(&[&[1.0, 3.0], &[1.0, 4.0], &[6.0, 7.0], &[8.0, 5.0]]).unwrap();
        let d = svd(&a).unwrap();
        assert!(reconstruct(&d).approx_eq(&a, 1e-9));
    }

    #[test]
    fn singular_values_descending_and_positive() {
        let a = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 5.0], &[0.0, 0.0]]).unwrap();
        let d = svd(&a).unwrap();
        assert!((d.s[0] - 5.0).abs() < 1e-12);
        assert!((d.s[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn u_and_v_orthonormal() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]).unwrap();
        let d = svd(&a).unwrap();
        assert!(crossprod(&d.u, &d.u)
            .unwrap()
            .approx_eq(&Matrix::identity(2), 1e-10));
        assert!(crossprod(&d.v, &d.v)
            .unwrap()
            .approx_eq(&Matrix::identity(2), 1e-10));
    }

    #[test]
    fn svd_of_identity() {
        let d = svd(&Matrix::identity(3)).unwrap();
        assert!(d.s.iter().all(|&s| (s - 1.0).abs() < 1e-12));
    }

    #[test]
    fn rank_full_and_deficient() {
        let full = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]).unwrap();
        assert_eq!(rank(&full).unwrap(), 2);
        let def = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0], &[3.0, 6.0]]).unwrap();
        assert_eq!(rank(&def).unwrap(), 1);
        let zero = Matrix::zeros(3, 2);
        assert_eq!(rank(&zero).unwrap(), 0);
    }

    #[test]
    fn rank_of_wide_matrix_via_transpose() {
        let wide = Matrix::from_rows(&[&[1.0, 0.0, 2.0], &[0.0, 1.0, 1.0]]).unwrap();
        assert_eq!(rank(&wide).unwrap(), 2);
    }

    #[test]
    fn wide_svd_rejected_empty_rejected() {
        assert!(svd(&Matrix::zeros(2, 3)).is_err());
        assert!(svd(&Matrix::zeros(0, 0)).is_err());
        assert!(rank(&Matrix::zeros(0, 0)).is_err());
    }

    #[test]
    fn svd_matches_eigen_of_gram_matrix() {
        // σ² of A are eigenvalues of AᵀA; check against a hand-computed case
        let a = Matrix::from_rows(&[&[3.0, 0.0], &[4.0, 5.0]]).unwrap();
        let d = svd(&a).unwrap();
        // det(AᵀA - λI) = λ² - 50λ + 225 → λ = 45, 5 → σ = √45, √5
        assert!((d.s[0] - 45f64.sqrt()).abs() < 1e-10);
        assert!((d.s[1] - 5f64.sqrt()).abs() < 1e-10);
    }
}
