//! Eigen decomposition (EVL/EVC).
//!
//! * Symmetric matrices: cyclic Jacobi rotations — exact, robust, and the
//!   common case for the paper's workloads (covariance/Gram matrices).
//! * General real matrices: Hessenberg reduction followed by the shifted QR
//!   algorithm for eigenvalues, then inverse iteration for eigenvectors.
//!   Matrices with complex eigenvalues yield [`LinalgError::ComplexEigenvalues`]
//!   — a real-valued relation cannot represent them (R returns complex
//!   values here; the paper does not evaluate complex spectra).

use super::gemm::{dot, matmul};
use super::lu::Lu;
use super::matrix::Matrix;
use crate::error::LinalgError;

/// Eigen decomposition result: `values[k]` corresponds to column `k` of
/// `vectors`. Values are sorted by decreasing value (R's convention).
#[derive(Debug, Clone)]
pub struct Eigen {
    pub values: Vec<f64>,
    pub vectors: Matrix,
}

const SYM_EPS: f64 = 1e-10;
const JACOBI_SWEEPS: usize = 100;
const QR_ITERS: usize = 30 * 64;

/// Is the matrix symmetric within a scaled tolerance?
pub fn is_symmetric(a: &Matrix) -> bool {
    if !a.is_square() {
        return false;
    }
    let scale = a.as_slice().iter().fold(1.0f64, |m, &x| m.max(x.abs()));
    for i in 0..a.rows() {
        for j in i + 1..a.cols() {
            if (a.get(i, j) - a.get(j, i)).abs() > SYM_EPS * scale {
                return false;
            }
        }
    }
    true
}

/// Eigenvalues only.
pub fn eigenvalues(a: &Matrix) -> Result<Vec<f64>, LinalgError> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare);
    }
    if a.rows() == 0 {
        return Err(LinalgError::Empty);
    }
    if is_symmetric(a) {
        Ok(jacobi(a)?.values)
    } else {
        let mut vals = qr_eigenvalues(a)?;
        vals.sort_by(|x, y| y.total_cmp(x));
        Ok(vals)
    }
}

/// Full decomposition (values and vectors).
pub fn eigen(a: &Matrix) -> Result<Eigen, LinalgError> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare);
    }
    if a.rows() == 0 {
        return Err(LinalgError::Empty);
    }
    if is_symmetric(a) {
        return jacobi(a);
    }
    let mut values = qr_eigenvalues(a)?;
    values.sort_by(|x, y| y.total_cmp(x));
    // eigenvectors by inverse iteration per eigenvalue
    let n = a.rows();
    let mut vectors = Matrix::zeros(n, n);
    for (k, &lambda) in values.iter().enumerate() {
        let v = inverse_iteration(a, lambda)?;
        for i in 0..n {
            vectors.set(i, k, v[i]);
        }
    }
    Ok(Eigen { values, vectors })
}

/// Cyclic Jacobi for symmetric matrices.
fn jacobi(a: &Matrix) -> Result<Eigen, LinalgError> {
    let n = a.rows();
    let mut d = a.clone();
    let mut v = Matrix::identity(n);
    let scale = a.as_slice().iter().fold(1.0f64, |m, &x| m.max(x.abs()));
    let tol = 1e-15 * scale;
    for _ in 0..JACOBI_SWEEPS {
        let mut off = 0.0f64;
        for p in 0..n {
            for q in p + 1..n {
                off = off.max(d.get(p, q).abs());
            }
        }
        if off <= tol {
            break;
        }
        for p in 0..n {
            for q in p + 1..n {
                let apq = d.get(p, q);
                if apq.abs() <= tol {
                    continue;
                }
                let app = d.get(p, p);
                let aqq = d.get(q, q);
                let tau = (aqq - app) / (2.0 * apq);
                let t = tau.signum() / (tau.abs() + (1.0 + tau * tau).sqrt());
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = c * t;
                // D ← JᵀDJ, applied as row and column rotations
                for i in 0..n {
                    let dip = d.get(i, p);
                    let diq = d.get(i, q);
                    d.set(i, p, c * dip - s * diq);
                    d.set(i, q, s * dip + c * diq);
                }
                for j in 0..n {
                    let dpj = d.get(p, j);
                    let dqj = d.get(q, j);
                    d.set(p, j, c * dpj - s * dqj);
                    d.set(q, j, s * dpj + c * dqj);
                }
                for i in 0..n {
                    let vip = v.get(i, p);
                    let viq = v.get(i, q);
                    v.set(i, p, c * vip - s * viq);
                    v.set(i, q, s * vip + c * viq);
                }
            }
        }
    }
    // sort by decreasing eigenvalue
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&x, &y| d.get(y, y).total_cmp(&d.get(x, x)));
    let mut values = Vec::with_capacity(n);
    let mut vectors = Matrix::zeros(n, n);
    for (out_j, &src_j) in order.iter().enumerate() {
        values.push(d.get(src_j, src_j));
        for i in 0..n {
            vectors.set(i, out_j, v.get(i, src_j));
        }
    }
    Ok(Eigen { values, vectors })
}

/// Reduce to upper Hessenberg form by Householder similarity transforms.
fn hessenberg(a: &Matrix) -> Matrix {
    let n = a.rows();
    let mut h = a.clone();
    for k in 0..n.saturating_sub(2) {
        // reflector on rows k+1..n of column k
        let x: Vec<f64> = (k + 1..n).map(|i| h.get(i, k)).collect();
        let alpha = -x[0].signum() * dot(&x, &x).sqrt();
        if alpha == 0.0 {
            continue;
        }
        let mut v = x;
        v[0] -= alpha;
        let vnorm = dot(&v, &v).sqrt();
        if vnorm == 0.0 {
            continue;
        }
        for t in v.iter_mut() {
            *t /= vnorm;
        }
        // H ← P H P with P = I − 2vvᵀ acting on rows/cols k+1..n
        for j in 0..n {
            let mut proj = 0.0;
            for (idx, &vi) in v.iter().enumerate() {
                proj += vi * h.get(k + 1 + idx, j);
            }
            proj *= 2.0;
            for (idx, &vi) in v.iter().enumerate() {
                let cur = h.get(k + 1 + idx, j);
                h.set(k + 1 + idx, j, cur - proj * vi);
            }
        }
        for i in 0..n {
            let mut proj = 0.0;
            for (idx, &vi) in v.iter().enumerate() {
                proj += vi * h.get(i, k + 1 + idx);
            }
            proj *= 2.0;
            for (idx, &vi) in v.iter().enumerate() {
                let cur = h.get(i, k + 1 + idx);
                h.set(i, k + 1 + idx, cur - proj * vi);
            }
        }
    }
    h
}

/// Shifted QR iteration on the Hessenberg form; real eigenvalues only.
fn qr_eigenvalues(a: &Matrix) -> Result<Vec<f64>, LinalgError> {
    let n = a.rows();
    let mut h = hessenberg(a);
    let mut values = Vec::with_capacity(n);
    let mut hi = n; // active block is 0..hi
    let scale = a.as_slice().iter().fold(1.0f64, |m, &x| m.max(x.abs()));
    let tol = 1e-12 * scale;
    let mut iters = 0;
    while hi > 0 {
        if hi == 1 {
            values.push(h.get(0, 0));
            break;
        }
        // deflate: find the largest k < hi with negligible subdiagonal
        let mut deflated = false;
        for k in (1..hi).rev() {
            if h.get(k, k - 1).abs() <= tol {
                if k == hi - 1 {
                    values.push(h.get(hi - 1, hi - 1));
                    hi -= 1;
                } else if k == hi - 2 {
                    // trailing 2×2 block
                    push_block_eigenvalues(&h, hi - 2, &mut values)?;
                    hi -= 2;
                } else {
                    continue;
                }
                deflated = true;
                break;
            }
        }
        if deflated {
            continue;
        }
        if hi == 2 {
            push_block_eigenvalues(&h, 0, &mut values)?;
            break;
        }
        iters += 1;
        if iters > QR_ITERS {
            // Non-convergence under real shifts indicates a complex pair.
            return Err(LinalgError::ComplexEigenvalues);
        }
        // Wilkinson shift from the trailing 2×2 of the active block
        let (aa, bb, cc, dd) = (
            h.get(hi - 2, hi - 2),
            h.get(hi - 2, hi - 1),
            h.get(hi - 1, hi - 2),
            h.get(hi - 1, hi - 1),
        );
        let tr = aa + dd;
        let det = aa * dd - bb * cc;
        let disc = tr * tr / 4.0 - det;
        let shift = if disc >= 0.0 {
            let r = disc.sqrt();
            let l1 = tr / 2.0 + r;
            let l2 = tr / 2.0 - r;
            if (l1 - dd).abs() < (l2 - dd).abs() {
                l1
            } else {
                l2
            }
        } else {
            dd // complex pair in the corner: use Rayleigh shift, let the
               // iteration counter detect true complex spectra
        };
        // QR step on the active block via the full matrix (simple + correct)
        let active = sub_matrix(&h, hi);
        let shifted = active.zip_with(&shift_identity(hi, shift), |x, y| x - y)?;
        let qr = super::qr::qr(&shifted)?;
        let next = matmul(&qr.r, &qr.q)?.zip_with(&shift_identity(hi, -shift), |x, y| x - y)?;
        for i in 0..hi {
            for j in 0..hi {
                h.set(i, j, next.get(i, j));
            }
        }
    }
    Ok(values)
}

fn push_block_eigenvalues(h: &Matrix, k: usize, values: &mut Vec<f64>) -> Result<(), LinalgError> {
    let (a, b, c, d) = (
        h.get(k, k),
        h.get(k, k + 1),
        h.get(k + 1, k),
        h.get(k + 1, k + 1),
    );
    let tr = a + d;
    let det = a * d - b * c;
    let disc = tr * tr / 4.0 - det;
    if disc < 0.0 {
        return Err(LinalgError::ComplexEigenvalues);
    }
    let r = disc.sqrt();
    values.push(tr / 2.0 + r);
    values.push(tr / 2.0 - r);
    Ok(())
}

fn sub_matrix(h: &Matrix, k: usize) -> Matrix {
    let mut m = Matrix::zeros(k, k);
    for i in 0..k {
        for j in 0..k {
            m.set(i, j, h.get(i, j));
        }
    }
    m
}

fn shift_identity(n: usize, s: f64) -> Matrix {
    let mut m = Matrix::zeros(n, n);
    for i in 0..n {
        m.set(i, i, s);
    }
    m
}

/// Inverse iteration: dominant eigenvector of `(A − λI)⁻¹`.
fn inverse_iteration(a: &Matrix, lambda: f64) -> Result<Vec<f64>, LinalgError> {
    let n = a.rows();
    // perturb the shift slightly so A − λI is invertible
    let scale = a.as_slice().iter().fold(1.0f64, |m, &x| m.max(x.abs()));
    let mut shift = lambda;
    let mut lu = None;
    for attempt in 0..6 {
        let shifted = a.zip_with(&shift_identity(n, shift), |x, y| x - y)?;
        match Lu::factor(&shifted) {
            Ok(f) => {
                lu = Some(f);
                break;
            }
            Err(LinalgError::Singular) => {
                shift = lambda + scale * 1e-10 * 10f64.powi(attempt);
            }
            Err(e) => return Err(e),
        }
    }
    let lu = lu.ok_or(LinalgError::NotConverged)?;
    let mut v = vec![1.0; n];
    normalise(&mut v);
    for _ in 0..64 {
        let next = lu.solve_vec(&v)?;
        let mut next = next;
        normalise(&mut next);
        let delta: f64 = v
            .iter()
            .zip(&next)
            .map(|(x, y)| (x - y).abs().min((x + y).abs()))
            .sum();
        v = next;
        if delta < 1e-13 * n as f64 {
            break;
        }
    }
    // sign convention: largest-magnitude component positive
    let imax = (0..n).fold(
        0,
        |best, i| {
            if v[i].abs() > v[best].abs() {
                i
            } else {
                best
            }
        },
    );
    if v[imax] < 0.0 {
        for t in v.iter_mut() {
            *t = -*t;
        }
    }
    Ok(v)
}

fn normalise(v: &mut [f64]) {
    let norm = dot(v, v).sqrt();
    if norm > 0.0 {
        for t in v.iter_mut() {
            *t /= norm;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symmetric_2x2_known() {
        // [[2,1],[1,2]] → eigenvalues 3, 1
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]).unwrap();
        let e = eigen(&a).unwrap();
        assert!((e.values[0] - 3.0).abs() < 1e-12);
        assert!((e.values[1] - 1.0).abs() < 1e-12);
        // A·v = λ·v
        for k in 0..2 {
            let v: Vec<f64> = (0..2).map(|i| e.vectors.get(i, k)).collect();
            let av = matmul(&a, &Matrix::col_vector(&v)).unwrap();
            for i in 0..2 {
                assert!((av.get(i, 0) - e.values[k] * v[i]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn symmetric_diagonal() {
        let a =
            Matrix::from_rows(&[&[5.0, 0.0, 0.0], &[0.0, -1.0, 0.0], &[0.0, 0.0, 2.0]]).unwrap();
        let vals = eigenvalues(&a).unwrap();
        assert_eq!(vals, vec![5.0, 2.0, -1.0]);
    }

    #[test]
    fn nonsymmetric_real_spectrum() {
        // [[4,1],[2,3]] → eigenvalues 5, 2
        let a = Matrix::from_rows(&[&[4.0, 1.0], &[2.0, 3.0]]).unwrap();
        let e = eigen(&a).unwrap();
        assert!((e.values[0] - 5.0).abs() < 1e-8);
        assert!((e.values[1] - 2.0).abs() < 1e-8);
        for k in 0..2 {
            let v: Vec<f64> = (0..2).map(|i| e.vectors.get(i, k)).collect();
            let av = matmul(&a, &Matrix::col_vector(&v)).unwrap();
            for i in 0..2 {
                assert!((av.get(i, 0) - e.values[k] * v[i]).abs() < 1e-7);
            }
        }
    }

    #[test]
    fn nonsymmetric_3x3_triangular() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[0.0, 4.0, 5.0], &[0.0, 0.0, 6.0]]).unwrap();
        let vals = eigenvalues(&a).unwrap();
        assert!((vals[0] - 6.0).abs() < 1e-8);
        assert!((vals[1] - 4.0).abs() < 1e-8);
        assert!((vals[2] - 1.0).abs() < 1e-8);
    }

    #[test]
    fn rotation_matrix_is_complex() {
        // 90° rotation has eigenvalues ±i
        let a = Matrix::from_rows(&[&[0.0, -1.0], &[1.0, 0.0]]).unwrap();
        assert_eq!(eigenvalues(&a), Err(LinalgError::ComplexEigenvalues));
    }

    #[test]
    fn shape_errors() {
        assert!(matches!(
            eigenvalues(&Matrix::zeros(2, 3)),
            Err(LinalgError::NotSquare)
        ));
        assert!(matches!(
            eigen(&Matrix::zeros(0, 0)),
            Err(LinalgError::Empty)
        ));
    }

    #[test]
    fn covariance_matrix_eigen() {
        // symmetric PSD: eigenvalues non-negative, vectors orthonormal
        let a =
            Matrix::from_rows(&[&[2.5, 1.2, 0.3], &[1.2, 3.0, -0.5], &[0.3, -0.5, 1.8]]).unwrap();
        let e = eigen(&a).unwrap();
        assert!(e.values.iter().all(|&v| v > 0.0));
        let vtv = crate::dense::gemm::crossprod(&e.vectors, &e.vectors).unwrap();
        assert!(vtv.approx_eq(&Matrix::identity(3), 1e-9));
        // trace = sum of eigenvalues
        let trace = 2.5 + 3.0 + 1.8;
        let sum: f64 = e.values.iter().sum();
        assert!((trace - sum).abs() < 1e-9);
    }

    #[test]
    fn larger_symmetric_random() {
        // deterministic pseudo-random symmetric matrix, checks Jacobi at n=8
        let n = 8;
        let mut a = Matrix::zeros(n, n);
        let mut seed = 42u64;
        let mut next = || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((seed >> 33) as f64 / (1u64 << 31) as f64) - 0.5
        };
        for i in 0..n {
            for j in i..n {
                let v = next();
                a.set(i, j, v);
                a.set(j, i, v);
            }
        }
        let e = eigen(&a).unwrap();
        // reconstruct A = V Λ Vᵀ
        let mut vl = e.vectors.clone();
        for j in 0..n {
            for t in vl.col_mut(j) {
                *t *= e.values[j];
            }
        }
        let back = matmul(&vl, &e.vectors.transpose()).unwrap();
        assert!(back.approx_eq(&a, 1e-8));
    }
}
