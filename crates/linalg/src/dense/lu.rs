//! LU factorisation with partial pivoting, and the solvers built on it:
//! inversion (INV), determinant (DET), and linear solve (SOL).

use super::matrix::Matrix;
use crate::error::LinalgError;

/// Relative singularity threshold for pivots.
const PIVOT_EPS: f64 = 1e-12;

/// A packed LU factorisation `P·A = L·U` of a square matrix.
#[derive(Debug, Clone)]
pub struct Lu {
    /// Combined L (below diagonal, unit diagonal implied) and U (upper).
    lu: Matrix,
    /// Row permutation: row `i` of `U` came from row `perm[i]` of `A`.
    perm: Vec<usize>,
    /// Sign of the permutation (+1/-1) for determinants.
    sign: f64,
}

impl Lu {
    /// Factorise a square matrix.
    pub fn factor(a: &Matrix) -> Result<Lu, LinalgError> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare);
        }
        let n = a.rows();
        if n == 0 {
            return Err(LinalgError::Empty);
        }
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut sign = 1.0;
        let scale = a
            .as_slice()
            .iter()
            .fold(0.0f64, |m, &x| m.max(x.abs()))
            .max(1.0);
        for k in 0..n {
            // partial pivot: largest |value| in column k at/below the diagonal
            let mut p = k;
            let mut best = lu.get(k, k).abs();
            for i in k + 1..n {
                let v = lu.get(i, k).abs();
                if v > best {
                    best = v;
                    p = i;
                }
            }
            if best <= PIVOT_EPS * scale {
                return Err(LinalgError::Singular);
            }
            if p != k {
                swap_rows(&mut lu, p, k);
                perm.swap(p, k);
                sign = -sign;
            }
            let pivot = lu.get(k, k);
            for i in k + 1..n {
                let factor = lu.get(i, k) / pivot;
                lu.set(i, k, factor);
                if factor == 0.0 {
                    continue;
                }
                for j in k + 1..n {
                    let v = lu.get(i, j) - factor * lu.get(k, j);
                    lu.set(i, j, v);
                }
            }
        }
        Ok(Lu { lu, perm, sign })
    }

    /// Determinant of the factorised matrix.
    pub fn det(&self) -> f64 {
        let n = self.lu.rows();
        let mut d = self.sign;
        for i in 0..n {
            d *= self.lu.get(i, i);
        }
        d
    }

    /// Solve `A·x = b` for a single right-hand side.
    pub fn solve_vec(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let n = self.lu.rows();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                context: "solve rhs length",
            });
        }
        // apply permutation, forward substitution (unit L)
        let mut y: Vec<f64> = self.perm.iter().map(|&p| b[p]).collect();
        for i in 1..n {
            let mut s = y[i];
            for j in 0..i {
                s -= self.lu.get(i, j) * y[j];
            }
            y[i] = s;
        }
        // back substitution (U)
        for i in (0..n).rev() {
            let mut s = y[i];
            for j in i + 1..n {
                s -= self.lu.get(i, j) * y[j];
            }
            y[i] = s / self.lu.get(i, i);
        }
        Ok(y)
    }

    /// Solve `A·X = B` column by column.
    pub fn solve(&self, b: &Matrix) -> Result<Matrix, LinalgError> {
        if b.rows() != self.lu.rows() {
            return Err(LinalgError::DimensionMismatch {
                context: "solve rhs rows",
            });
        }
        let cols: Result<Vec<Vec<f64>>, _> =
            (0..b.cols()).map(|j| self.solve_vec(b.col(j))).collect();
        Matrix::from_columns(&cols?)
    }
}

fn swap_rows(m: &mut Matrix, a: usize, b: usize) {
    for j in 0..m.cols() {
        let (x, y) = (m.get(a, j), m.get(b, j));
        m.set(a, j, y);
        m.set(b, j, x);
    }
}

/// Matrix inversion via LU (the dense-path INV).
pub fn inverse(a: &Matrix) -> Result<Matrix, LinalgError> {
    let lu = Lu::factor(a)?;
    lu.solve(&Matrix::identity(a.rows()))
}

/// Determinant via LU (the dense-path DET).
pub fn det(a: &Matrix) -> Result<f64, LinalgError> {
    match Lu::factor(a) {
        Ok(lu) => Ok(lu.det()),
        // a singular matrix has determinant zero, not an error
        Err(LinalgError::Singular) => Ok(0.0),
        Err(e) => Err(e),
    }
}

/// SOL: solve `A·x = b`. Square systems use LU; overdetermined systems
/// (more rows than columns) are solved in the least-squares sense via QR,
/// matching how regression workloads use `sol`.
pub fn solve(a: &Matrix, b: &Matrix) -> Result<Matrix, LinalgError> {
    if a.rows() == a.cols() {
        Lu::factor(a)?.solve(b)
    } else if a.rows() > a.cols() {
        super::qr::least_squares(a, b)
    } else {
        Err(LinalgError::DimensionMismatch {
            context: "solve: underdetermined system (rows < cols)",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::gemm::matmul;

    fn paper_matrix() -> Matrix {
        // Figure 3: n = [[6,7],[8,5]]
        Matrix::from_rows(&[&[6.0, 7.0], &[8.0, 5.0]]).unwrap()
    }

    #[test]
    fn inverse_matches_paper_figure3() {
        let inv = inverse(&paper_matrix()).unwrap();
        let expected =
            Matrix::from_rows(&[&[-5.0 / 26.0, 7.0 / 26.0], &[8.0 / 26.0, -6.0 / 26.0]]).unwrap();
        assert!(inv.approx_eq(&expected, 1e-12));
        // paper rounds to -0.19, 0.27 / 0.31, -0.23
        assert!((inv.get(0, 0) - -0.1923).abs() < 1e-3);
        assert!((inv.get(1, 0) - 0.3077).abs() < 1e-3);
    }

    #[test]
    fn inverse_times_original_is_identity() {
        let a =
            Matrix::from_rows(&[&[4.0, -2.0, 1.0], &[3.0, 6.0, -4.0], &[2.0, 1.0, 8.0]]).unwrap();
        let inv = inverse(&a).unwrap();
        let prod = matmul(&a, &inv).unwrap();
        assert!(prod.approx_eq(&Matrix::identity(3), 1e-10));
    }

    #[test]
    fn singular_inverse_fails_det_is_zero() {
        let s = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        assert_eq!(inverse(&s), Err(LinalgError::Singular));
        assert_eq!(det(&s).unwrap(), 0.0);
    }

    #[test]
    fn det_known_values() {
        assert!((det(&paper_matrix()).unwrap() - -26.0).abs() < 1e-12);
        assert!((det(&Matrix::identity(4)).unwrap() - 1.0).abs() < 1e-12);
        // permutation sign: swapping rows flips the sign
        let p = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        assert!((det(&p).unwrap() - -1.0).abs() < 1e-12);
    }

    #[test]
    fn solve_square_system() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]).unwrap();
        let b = Matrix::col_vector(&[3.0, 5.0]);
        let x = solve(&a, &b).unwrap();
        assert!((x.get(0, 0) - 0.8).abs() < 1e-12);
        assert!((x.get(1, 0) - 1.4).abs() < 1e-12);
    }

    #[test]
    fn solve_multiple_rhs() {
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[0.0, 2.0]]).unwrap();
        let b = Matrix::from_rows(&[&[3.0, 1.0], &[4.0, 2.0]]).unwrap();
        let x = solve(&a, &b).unwrap();
        let back = matmul(&a, &x).unwrap();
        assert!(back.approx_eq(&b, 1e-12));
    }

    #[test]
    fn solve_overdetermined_least_squares() {
        // fit y = 2x + 1 through noisy-free points → exact recovery
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 2.0], &[1.0, 3.0]]).unwrap();
        let b = Matrix::col_vector(&[3.0, 5.0, 7.0]);
        let x = solve(&a, &b).unwrap();
        assert!((x.get(0, 0) - 1.0).abs() < 1e-10);
        assert!((x.get(1, 0) - 2.0).abs() < 1e-10);
    }

    #[test]
    fn solve_underdetermined_rejected() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::col_vector(&[1.0, 2.0]);
        assert!(matches!(
            solve(&a, &b),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn non_square_and_empty_rejected() {
        assert!(matches!(
            Lu::factor(&Matrix::zeros(2, 3)),
            Err(LinalgError::NotSquare)
        ));
        assert!(matches!(
            Lu::factor(&Matrix::zeros(0, 0)),
            Err(LinalgError::Empty)
        ));
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let inv = inverse(&a).unwrap();
        assert!(inv.approx_eq(&a, 1e-12));
    }
}
