//! Zero-run compression for float columns.
//!
//! Table 5 of the paper shows that MonetDB's storage makes `add` on sparse
//! relations up to 2× faster than on dense ones. We reproduce the mechanism
//! with an explicit zero-run-length encoding: a compressed column is a list
//! of segments, each either a run of zeros (stored as a length only) or a
//! dense stretch of non-zero values. Element-wise kernels skip zero runs
//! entirely, so runtime falls as sparsity grows.

/// One segment of a compressed column.
#[derive(Debug, Clone, PartialEq)]
pub enum Segment {
    /// `len` consecutive zeros.
    Zeros(usize),
    /// A dense stretch of (mostly non-zero) values.
    Dense(Vec<f64>),
}

impl Segment {
    fn len(&self) -> usize {
        match self {
            Segment::Zeros(n) => *n,
            Segment::Dense(v) => v.len(),
        }
    }
}

/// A zero-run compressed float vector.
#[derive(Debug, Clone, PartialEq)]
pub struct CompressedFloats {
    segments: Vec<Segment>,
    len: usize,
}

/// Minimum zero-run length worth encoding; shorter runs stay dense so that
/// near-dense data does not fragment into tiny segments.
const MIN_RUN: usize = 8;

impl CompressedFloats {
    /// Compress a slice, encoding zero runs of at least `MIN_RUN` values.
    pub fn compress(values: &[f64]) -> Self {
        let mut segments = Vec::new();
        let mut dense: Vec<f64> = Vec::new();
        let mut i = 0;
        while i < values.len() {
            if values[i] == 0.0 {
                let start = i;
                while i < values.len() && values[i] == 0.0 {
                    i += 1;
                }
                let run = i - start;
                if run >= MIN_RUN {
                    if !dense.is_empty() {
                        segments.push(Segment::Dense(std::mem::take(&mut dense)));
                    }
                    segments.push(Segment::Zeros(run));
                } else {
                    dense.extend(std::iter::repeat_n(0.0, run));
                }
            } else {
                dense.push(values[i]);
                i += 1;
            }
        }
        if !dense.is_empty() {
            segments.push(Segment::Dense(dense));
        }
        CompressedFloats {
            segments,
            len: values.len(),
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Number of f64 slots actually materialised (compression metric).
    pub fn stored_values(&self) -> usize {
        self.segments
            .iter()
            .map(|s| match s {
                Segment::Zeros(_) => 0,
                Segment::Dense(v) => v.len(),
            })
            .sum()
    }

    /// Decompress to a plain vector.
    pub fn decompress(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.len);
        for s in &self.segments {
            match s {
                Segment::Zeros(n) => out.extend(std::iter::repeat_n(0.0, *n)),
                Segment::Dense(v) => out.extend_from_slice(v),
            }
        }
        out
    }

    /// Element-wise addition of two compressed columns of equal length.
    ///
    /// Zero runs present in *both* inputs are copied through without touching
    /// any value — the source of the Table 5 speedup.
    pub fn add(&self, other: &CompressedFloats) -> CompressedFloats {
        assert_eq!(self.len, other.len, "compressed add length mismatch");
        let mut out_segments: Vec<Segment> = Vec::new();
        let mut a = SegCursor::new(&self.segments);
        let mut b = SegCursor::new(&other.segments);
        let mut remaining = self.len;
        while remaining > 0 {
            let step = a.run_left().min(b.run_left()).min(remaining);
            match (a.current(), b.current()) {
                (Segment::Zeros(_), Segment::Zeros(_)) => {
                    push_zeros(&mut out_segments, step);
                }
                (Segment::Zeros(_), Segment::Dense(v)) => {
                    push_dense(&mut out_segments, &v[b.offset..b.offset + step]);
                }
                (Segment::Dense(v), Segment::Zeros(_)) => {
                    push_dense(&mut out_segments, &v[a.offset..a.offset + step]);
                }
                (Segment::Dense(va), Segment::Dense(vb)) => {
                    let sa = &va[a.offset..a.offset + step];
                    let sb = &vb[b.offset..b.offset + step];
                    let summed: Vec<f64> = sa.iter().zip(sb).map(|(x, y)| x + y).collect();
                    push_dense(&mut out_segments, &summed);
                }
            }
            a.advance(step);
            b.advance(step);
            remaining -= step;
        }
        CompressedFloats {
            segments: out_segments,
            len: self.len,
        }
    }
}

fn push_zeros(segments: &mut Vec<Segment>, n: usize) {
    if let Some(Segment::Zeros(z)) = segments.last_mut() {
        *z += n;
    } else {
        segments.push(Segment::Zeros(n));
    }
}

fn push_dense(segments: &mut Vec<Segment>, vals: &[f64]) {
    if let Some(Segment::Dense(d)) = segments.last_mut() {
        d.extend_from_slice(vals);
    } else {
        segments.push(Segment::Dense(vals.to_vec()));
    }
}

/// Cursor over a segment list for parallel iteration.
struct SegCursor<'a> {
    segments: &'a [Segment],
    seg: usize,
    offset: usize,
}

impl<'a> SegCursor<'a> {
    fn new(segments: &'a [Segment]) -> Self {
        SegCursor {
            segments,
            seg: 0,
            offset: 0,
        }
    }

    fn current(&self) -> &'a Segment {
        &self.segments[self.seg]
    }

    fn run_left(&self) -> usize {
        self.current().len() - self.offset
    }

    fn advance(&mut self, n: usize) {
        self.offset += n;
        while self.seg < self.segments.len() && self.offset >= self.segments[self.seg].len() {
            self.offset -= self.segments[self.seg].len();
            self.seg += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_dense() {
        let v = vec![1.0, 2.0, 3.0];
        let c = CompressedFloats::compress(&v);
        assert_eq!(c.decompress(), v);
        assert_eq!(c.stored_values(), 3);
    }

    #[test]
    fn roundtrip_sparse() {
        let mut v = vec![0.0; 100];
        v[50] = 7.0;
        let c = CompressedFloats::compress(&v);
        assert_eq!(c.decompress(), v);
        assert_eq!(c.stored_values(), 1);
        assert_eq!(c.len(), 100);
    }

    #[test]
    fn short_zero_runs_stay_dense() {
        let v = vec![1.0, 0.0, 0.0, 2.0];
        let c = CompressedFloats::compress(&v);
        assert_eq!(c.segments().len(), 1);
        assert_eq!(c.decompress(), v);
    }

    #[test]
    fn all_zeros() {
        let v = vec![0.0; 64];
        let c = CompressedFloats::compress(&v);
        assert_eq!(c.stored_values(), 0);
        assert_eq!(c.decompress(), v);
    }

    #[test]
    fn add_matches_dense_add() {
        let mut a = vec![0.0; 200];
        let mut b = vec![0.0; 200];
        for i in (0..200).step_by(3) {
            a[i] = i as f64;
        }
        for i in (0..200).step_by(7) {
            b[i] = 2.0 * i as f64;
        }
        let ca = CompressedFloats::compress(&a);
        let cb = CompressedFloats::compress(&b);
        let sum = ca.add(&cb).decompress();
        let expected: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x + y).collect();
        assert_eq!(sum, expected);
    }

    #[test]
    fn add_skips_common_zero_runs() {
        let mut a = vec![0.0; 1000];
        let mut b = vec![0.0; 1000];
        a[0] = 1.0;
        b[0] = 2.0;
        let c = CompressedFloats::compress(&a).add(&CompressedFloats::compress(&b));
        // result keeps the long zero run compressed
        assert!(c.stored_values() < 20);
        assert_eq!(c.decompress()[0], 3.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn add_length_mismatch_panics() {
        let a = CompressedFloats::compress(&[1.0]);
        let b = CompressedFloats::compress(&[1.0, 2.0]);
        a.add(&b);
    }

    #[test]
    fn empty_column() {
        let c = CompressedFloats::compress(&[]);
        assert!(c.is_empty());
        assert_eq!(c.decompress(), Vec::<f64>::new());
    }
}
