//! Compact validity bitmap used for null tracking.
//!
//! A column with no nulls carries no bitmap at all (the common case), so the
//! bulk operators pay nothing for null support unless nulls are present.

/// A fixed-length bitmap; bit `i` set means row `i` is null.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl Bitmap {
    /// An all-valid (no bits set) bitmap of length `len`.
    pub fn new(len: usize) -> Self {
        Bitmap {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Build from a bool slice (`true` = null).
    pub fn from_bools(bits: &[bool]) -> Self {
        let mut b = Bitmap::new(bits.len());
        for (i, &v) in bits.iter().enumerate() {
            if v {
                b.set(i);
            }
        }
        b
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Set bit `i` (mark row `i` null).
    pub fn set(&mut self, i: usize) {
        assert!(i < self.len, "bitmap index {i} out of range {}", self.len);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Test bit `i`.
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bitmap index {i} out of range {}", self.len);
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Number of set bits (null count).
    pub fn count_set(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True if no bit is set.
    pub fn all_clear(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Bitwise OR of two bitmaps of equal length (null union, as produced by
    /// null-propagating arithmetic).
    pub fn union(&self, other: &Bitmap) -> Bitmap {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        Bitmap {
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(a, b)| a | b)
                .collect(),
            len: self.len,
        }
    }

    /// Gather: `out[k] = self[idx[k]]`.
    pub fn take(&self, idx: &[usize]) -> Bitmap {
        let mut out = Bitmap::new(idx.len());
        for (k, &i) in idx.iter().enumerate() {
            if self.get(i) {
                out.set(k);
            }
        }
        out
    }

    /// The bits of the contiguous row range `start..end`, as a new bitmap
    /// (partitioned scans slice the validity mask along with the data).
    pub fn slice(&self, start: usize, end: usize) -> Bitmap {
        assert!(
            start <= end && end <= self.len,
            "bitmap slice {start}..{end} out of range {}",
            self.len
        );
        let mut out = Bitmap::new(end - start);
        for i in start..end {
            if self.get(i) {
                out.set(i - start);
            }
        }
        out
    }

    /// Extend by `n` clear (valid) bits.
    pub fn grow(&mut self, n: usize) {
        self.len += n;
        self.words.resize(self.len.div_ceil(64), 0);
    }

    /// Append another bitmap.
    pub fn extend(&mut self, other: &Bitmap) {
        let old = self.len;
        self.len += other.len;
        self.words.resize(self.len.div_ceil(64), 0);
        for i in 0..other.len {
            if other.get(i) {
                self.set(old + i);
            }
        }
    }

    /// Iterate the bits as bools.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_count() {
        let mut b = Bitmap::new(130);
        assert!(b.all_clear());
        b.set(0);
        b.set(64);
        b.set(129);
        assert!(b.get(0) && b.get(64) && b.get(129));
        assert!(!b.get(1) && !b.get(128));
        assert_eq!(b.count_set(), 3);
        assert!(!b.all_clear());
    }

    #[test]
    fn union_and_take() {
        let a = Bitmap::from_bools(&[true, false, false, true]);
        let b = Bitmap::from_bools(&[false, false, true, true]);
        let u = a.union(&b);
        assert_eq!(u.iter().collect::<Vec<_>>(), vec![true, false, true, true]);
        let t = u.take(&[3, 1, 1]);
        assert_eq!(t.iter().collect::<Vec<_>>(), vec![true, false, false]);
    }

    #[test]
    fn extend_crosses_word_boundary() {
        let mut a = Bitmap::from_bools(&[true; 63]);
        let b = Bitmap::from_bools(&[false, true, false]);
        a.extend(&b);
        assert_eq!(a.len(), 66);
        assert!(a.get(62) && !a.get(63) && a.get(64) && !a.get(65));
        assert_eq!(a.count_set(), 64);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        Bitmap::new(5).get(5);
    }

    #[test]
    fn empty() {
        let b = Bitmap::new(0);
        assert!(b.is_empty());
        assert_eq!(b.count_set(), 0);
    }
}
