//! Per-column compressed encodings: run-length, dictionary, bit-packing.
//!
//! Table 5 of the paper shows that MonetDB's storage makes `add` on sparse
//! relations up to 2× faster than on dense ones; earlier revisions
//! reproduced that with a one-off zero-run float codec. This module
//! generalises the idea into the storage layer proper: a [`Rle`] column
//! stores *any* repeated value as a run (zeros included), a [`Dict`]
//! column stores low-cardinality strings as `u32` codes into a sorted
//! value table, and a [`Packed`] column stores narrow-range integers
//! frame-of-reference bit-packed. All three plug in beneath
//! `ColumnData` as first-class variants, and the kernel-facing accessor
//! surface (`rma_storage::access`) lets operators run on the encoded form
//! without decompressing.
//!
//! Every encoded payload carries a lazily-filled decode cache: the first
//! caller that needs the plain form (a *sink* — see ARCHITECTURE.md
//! "Storage encodings") pays one decompression, is counted by the global
//! [`decode_sink_events`] counter, and every later caller shares the
//! cached plain vector. Kernels that stay on the encoded form never touch
//! the cache, which is what the zero-sink acceptance tests assert.

use crate::column::ColumnData;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Process-wide count of forced decode sinks: how many encoded payloads
/// have had their plain-form cache filled because some consumer needed
/// the decoded vector. One fill counts once no matter how many readers
/// share the cache afterwards. Observable through `EXPLAIN ANALYZE` and
/// the serve-layer metrics JSON; regressions to eager decompression show
/// up here.
static DECODE_SINKS: AtomicU64 = AtomicU64::new(0);

/// Current value of the global decode-sink counter.
pub fn decode_sink_events() -> u64 {
    DECODE_SINKS.load(Ordering::Relaxed)
}

fn count_decode_sink() {
    DECODE_SINKS.fetch_add(1, Ordering::Relaxed);
}

/// Which physical encoding a column's storage uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Encoding {
    /// A contiguous typed `Vec` (the uncompressed baseline).
    Plain,
    /// Run-length encoding: repeated values stored as (value, length).
    Rle,
    /// Dictionary encoding: `u32` codes into a sorted unique-value table.
    Dict,
    /// Frame-of-reference bit-packing: `value - min` stored in `width` bits.
    Packed,
}

impl Encoding {
    /// Short lower-case name, as rendered by EXPLAIN and the metrics JSON.
    pub fn name(self) -> &'static str {
        match self {
            Encoding::Plain => "plain",
            Encoding::Rle => "rle",
            Encoding::Dict => "dict",
            Encoding::Packed => "packed",
        }
    }
}

/// Minimum run length worth encoding; shorter repeats stay inside dense
/// segments so near-unique data does not fragment into tiny runs.
pub const MIN_RUN: usize = 8;

/// One segment of an RLE column: a run of one repeated value or a dense
/// stretch of mixed values.
#[derive(Debug, Clone, PartialEq)]
pub enum Seg<T> {
    /// `len` consecutive copies of `value`.
    Run {
        /// The repeated value.
        value: T,
        /// Number of consecutive rows holding it.
        len: usize,
    },
    /// A dense stretch with no run of at least [`MIN_RUN`].
    Dense(Vec<T>),
}

impl<T> Seg<T> {
    /// Rows covered by this segment.
    pub fn len(&self) -> usize {
        match self {
            Seg::Run { len, .. } => *len,
            Seg::Dense(v) => v.len(),
        }
    }

    /// Is the segment empty? (Never true for segments built by `encode`.)
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The value types RLE can encode: plain-old-data with equality and a
/// plain `ColumnData` variant to decode into.
pub trait RleValue: Copy + PartialEq + std::fmt::Debug {
    /// Wrap a decoded vector in its plain `ColumnData` variant.
    fn into_column_data(v: Vec<Self>) -> ColumnData;
    /// Bytes one value occupies in plain storage.
    fn plain_width() -> usize {
        std::mem::size_of::<Self>()
    }
}

impl RleValue for i64 {
    fn into_column_data(v: Vec<Self>) -> ColumnData {
        ColumnData::Int(v)
    }
}

impl RleValue for f64 {
    fn into_column_data(v: Vec<Self>) -> ColumnData {
        ColumnData::Float(v)
    }
}

/// A run-length-encoded vector: segments plus prefix offsets for O(log s)
/// point access, plus the lazily-filled plain-form decode cache.
#[derive(Debug, Clone)]
pub struct Rle<T: RleValue> {
    segs: Vec<Seg<T>>,
    /// `starts[k]` is the first row covered by `segs[k]`.
    starts: Vec<usize>,
    len: usize,
    cache: OnceLock<Arc<ColumnData>>,
}

/// Representational equality (same segmentation). Columns compare
/// logically — see `Column`'s `PartialEq` — so two RLE payloads with
/// different segment boundaries still compare equal at the column level.
impl<T: RleValue> PartialEq for Rle<T> {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && self.segs == other.segs
    }
}

impl<T: RleValue> Rle<T> {
    /// Encode a slice, turning every repeat of at least [`MIN_RUN`] equal
    /// values into a run segment.
    pub fn encode(values: &[T]) -> Rle<T> {
        let mut segs: Vec<Seg<T>> = Vec::new();
        let mut dense: Vec<T> = Vec::new();
        let mut i = 0;
        while i < values.len() {
            let start = i;
            let v = values[i];
            while i < values.len() && values[i] == v {
                i += 1;
            }
            let run = i - start;
            if run >= MIN_RUN {
                if !dense.is_empty() {
                    segs.push(Seg::Dense(std::mem::take(&mut dense)));
                }
                segs.push(Seg::Run { value: v, len: run });
            } else {
                dense.extend(std::iter::repeat_n(v, run));
            }
        }
        if !dense.is_empty() {
            segs.push(Seg::Dense(dense));
        }
        Rle::from_segs(segs, values.len())
    }

    /// Rebuild from segments (the spill reader's constructor). Panics if
    /// the segment lengths do not sum to `len`.
    pub fn from_segs(segs: Vec<Seg<T>>, len: usize) -> Rle<T> {
        let mut starts = Vec::with_capacity(segs.len());
        let mut total = 0usize;
        for s in &segs {
            starts.push(total);
            total += s.len();
        }
        assert_eq!(total, len, "RLE segment lengths must sum to len");
        Rle {
            segs,
            starts,
            len,
            cache: OnceLock::new(),
        }
    }

    /// Logical row count.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Is the vector empty?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The segments, in row order.
    pub fn segs(&self) -> &[Seg<T>] {
        &self.segs
    }

    /// Number of values physically stored (runs store one value each —
    /// the compression metric).
    pub fn stored_values(&self) -> usize {
        self.segs
            .iter()
            .map(|s| match s {
                Seg::Run { .. } => 1,
                Seg::Dense(v) => v.len(),
            })
            .sum()
    }

    /// Point access: the value at logical row `i`.
    pub fn get(&self, i: usize) -> T {
        debug_assert!(i < self.len);
        let k = match self.starts.binary_search(&i) {
            Ok(k) => k,
            Err(k) => k - 1,
        };
        match &self.segs[k] {
            Seg::Run { value, .. } => *value,
            Seg::Dense(v) => v[i - self.starts[k]],
        }
    }

    /// Visit every segment as `(start_row, seg)` — the run-aware kernel
    /// entry point; kernels multiply run lengths here instead of looping
    /// rows.
    pub fn for_each_seg(&self, mut f: impl FnMut(usize, &Seg<T>)) {
        for (k, s) in self.segs.iter().enumerate() {
            f(self.starts[k], s);
        }
    }

    /// The subrange `start..end`, still run-length encoded (partitioned
    /// scans slice runs without decoding them).
    pub fn slice(&self, start: usize, end: usize) -> Rle<T> {
        debug_assert!(start <= end && end <= self.len);
        let mut segs: Vec<Seg<T>> = Vec::new();
        self.for_each_seg(|s0, seg| {
            let s1 = s0 + seg.len();
            let lo = s0.max(start);
            let hi = s1.min(end);
            if lo >= hi {
                return;
            }
            match seg {
                Seg::Run { value, .. } => segs.push(Seg::Run {
                    value: *value,
                    len: hi - lo,
                }),
                Seg::Dense(v) => segs.push(Seg::Dense(v[lo - s0..hi - s0].to_vec())),
            }
        });
        Rle::from_segs(segs, end - start)
    }

    /// Decode to a plain vector (does not touch the cache or the sink
    /// counter — callers that keep the result transient use this).
    pub fn to_vec(&self) -> Vec<T> {
        let mut out = Vec::with_capacity(self.len);
        for s in &self.segs {
            match s {
                Seg::Run { value, len } => out.extend(std::iter::repeat_n(*value, *len)),
                Seg::Dense(v) => out.extend_from_slice(v),
            }
        }
        out
    }

    /// The cached plain form; the first call decompresses and counts one
    /// decode sink.
    pub fn decoded(&self) -> &ColumnData {
        self.cache.get_or_init(|| {
            count_decode_sink();
            Arc::new(T::into_column_data(self.to_vec()))
        })
    }

    /// Approximate heap bytes of the encoded form.
    pub fn encoded_bytes(&self) -> usize {
        self.stored_values() * T::plain_width() + self.segs.len() * 16
    }
}

/// Element-wise addition of two RLE float vectors of equal length.
/// Overlapping runs add in O(1) per overlap — zero runs on both sides
/// (the paper's Table 5 sparse case) never touch a value, and any other
/// repeated value is just as cheap.
pub fn rle_add_f64(a: &Rle<f64>, b: &Rle<f64>) -> Rle<f64> {
    assert_eq!(a.len(), b.len(), "rle add length mismatch");
    let mut out: Vec<Seg<f64>> = Vec::new();
    let mut ca = SegCursor::new(&a.segs);
    let mut cb = SegCursor::new(&b.segs);
    let mut remaining = a.len();
    while remaining > 0 {
        let step = ca.run_left().min(cb.run_left()).min(remaining);
        match (ca.current(), cb.current()) {
            (Seg::Run { value: x, .. }, Seg::Run { value: y, .. }) => {
                push_run(&mut out, x + y, step);
            }
            (Seg::Run { value: x, .. }, Seg::Dense(v)) => {
                push_dense_iter(
                    &mut out,
                    v[cb.offset..cb.offset + step].iter().map(|y| x + y),
                );
            }
            (Seg::Dense(v), Seg::Run { value: y, .. }) => {
                push_dense_iter(
                    &mut out,
                    v[ca.offset..ca.offset + step].iter().map(|x| x + y),
                );
            }
            (Seg::Dense(va), Seg::Dense(vb)) => {
                let sa = &va[ca.offset..ca.offset + step];
                let sb = &vb[cb.offset..cb.offset + step];
                push_dense_iter(&mut out, sa.iter().zip(sb).map(|(x, y)| x + y));
            }
        }
        ca.advance(step);
        cb.advance(step);
        remaining -= step;
    }
    Rle::from_segs(out, a.len())
}

fn push_run<T: RleValue>(segs: &mut Vec<Seg<T>>, value: T, n: usize) {
    if let Some(Seg::Run { value: v, len }) = segs.last_mut() {
        if *v == value {
            *len += n;
            return;
        }
    }
    segs.push(Seg::Run { value, len: n });
}

fn push_dense_iter<T: RleValue>(segs: &mut Vec<Seg<T>>, vals: impl Iterator<Item = T>) {
    if let Some(Seg::Dense(d)) = segs.last_mut() {
        d.extend(vals);
        return;
    }
    segs.push(Seg::Dense(vals.collect()));
}

/// Cursor over a segment list for merge-style iteration.
struct SegCursor<'a, T: RleValue> {
    segs: &'a [Seg<T>],
    seg: usize,
    offset: usize,
}

impl<'a, T: RleValue> SegCursor<'a, T> {
    fn new(segs: &'a [Seg<T>]) -> Self {
        SegCursor {
            segs,
            seg: 0,
            offset: 0,
        }
    }

    fn current(&self) -> &'a Seg<T> {
        &self.segs[self.seg]
    }

    fn run_left(&self) -> usize {
        self.current().len() - self.offset
    }

    fn advance(&mut self, n: usize) {
        self.offset += n;
        while self.seg < self.segs.len() && self.offset >= self.segs[self.seg].len() {
            self.offset -= self.segs[self.seg].len();
            self.seg += 1;
        }
    }
}

/// A dictionary-encoded string vector: `u32` codes into a sorted table of
/// unique values. The value table is `Arc`-shared, so gathers and slices
/// reuse it; code order equals value order (the table is sorted), which
/// keeps per-code predicate tables deterministic.
#[derive(Debug, Clone)]
pub struct Dict {
    values: Arc<Vec<String>>,
    codes: Vec<u32>,
    cache: OnceLock<Arc<ColumnData>>,
}

/// Representational equality (same table, same codes); columns compare
/// logically above this.
impl PartialEq for Dict {
    fn eq(&self, other: &Self) -> bool {
        self.codes == other.codes && self.values == other.values
    }
}

impl Dict {
    /// Encode a slice: collect the sorted unique values and map each row
    /// to its code.
    pub fn encode(values: &[String]) -> Dict {
        let mut table: Vec<&String> = values.iter().collect();
        table.sort_unstable();
        table.dedup();
        let uniques: Vec<String> = table.iter().map(|s| (*s).clone()).collect();
        let codes = values
            .iter()
            .map(|v| {
                uniques
                    .binary_search(v)
                    .expect("value present in its own dictionary") as u32
            })
            .collect();
        Dict {
            values: Arc::new(uniques),
            codes,
            cache: OnceLock::new(),
        }
    }

    /// Rebuild from parts (the spill reader's constructor). Panics if any
    /// code is out of range.
    pub fn from_parts(values: Arc<Vec<String>>, codes: Vec<u32>) -> Dict {
        assert!(
            codes.iter().all(|&c| (c as usize) < values.len().max(1)),
            "dictionary code out of range"
        );
        Dict {
            values,
            codes,
            cache: OnceLock::new(),
        }
    }

    /// Logical row count.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// Is the vector empty?
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// The sorted unique-value table.
    pub fn values(&self) -> &Arc<Vec<String>> {
        &self.values
    }

    /// The per-row codes.
    pub fn codes(&self) -> &[u32] {
        &self.codes
    }

    /// The string behind one code.
    pub fn value(&self, code: u32) -> &str {
        &self.values[code as usize]
    }

    /// Point access: the string at logical row `i`.
    pub fn get(&self, i: usize) -> &str {
        self.value(self.codes[i])
    }

    /// The code at logical row `i`.
    #[inline]
    pub fn code(&self, i: usize) -> u32 {
        self.codes[i]
    }

    /// Do two dictionaries share the same value table (`Arc` identity)?
    /// When they do, codes compare and join directly without touching
    /// string bytes.
    pub fn shares_table(&self, other: &Dict) -> bool {
        Arc::ptr_eq(&self.values, &other.values)
    }

    /// The code of `s` in the table, if present (predicates use this for
    /// code-set membership tests without touching row data).
    pub fn code_of(&self, s: &str) -> Option<u32> {
        self.values
            .binary_search_by(|v| v.as_str().cmp(s))
            .ok()
            .map(|i| i as u32)
    }

    /// Gather rows by index — codes move, the value table is shared.
    pub fn take(&self, idx: &[usize]) -> Dict {
        Dict {
            values: Arc::clone(&self.values),
            codes: idx.iter().map(|&i| self.codes[i]).collect(),
            cache: OnceLock::new(),
        }
    }

    /// The subrange `start..end`, still dictionary encoded.
    pub fn slice(&self, start: usize, end: usize) -> Dict {
        Dict {
            values: Arc::clone(&self.values),
            codes: self.codes[start..end].to_vec(),
            cache: OnceLock::new(),
        }
    }

    /// Decode to a plain vector (transient, bypasses the cache).
    pub fn to_vec(&self) -> Vec<String> {
        self.codes
            .iter()
            .map(|&c| self.values[c as usize].clone())
            .collect()
    }

    /// The cached plain form; the first call decompresses and counts one
    /// decode sink.
    pub fn decoded(&self) -> &ColumnData {
        self.cache.get_or_init(|| {
            count_decode_sink();
            Arc::new(ColumnData::Str(self.to_vec()))
        })
    }

    /// Approximate heap bytes of the encoded form (codes + value table).
    pub fn encoded_bytes(&self) -> usize {
        self.codes.len() * 4
            + self
                .values
                .iter()
                .map(|s| s.len() + std::mem::size_of::<String>())
                .sum::<usize>()
    }
}

/// A frame-of-reference bit-packed integer vector: every value is stored
/// as `value - min` in `width` bits, densely packed into `u64` words.
#[derive(Debug, Clone)]
pub struct Packed {
    min: i64,
    width: u32,
    len: usize,
    words: Vec<u64>,
    cache: OnceLock<Arc<ColumnData>>,
}

impl PartialEq for Packed {
    fn eq(&self, other: &Self) -> bool {
        self.min == other.min
            && self.width == other.width
            && self.len == other.len
            && self.words == other.words
    }
}

impl Packed {
    /// Encode a slice. Returns `None` when the value range does not admit
    /// a packing narrower than plain storage (range needs ≥ 64 bits, or
    /// the slice is empty).
    pub fn encode(values: &[i64]) -> Option<Packed> {
        let (&min, &max) = (values.iter().min()?, values.iter().max()?);
        let range = max.checked_sub(min)? as u64;
        let width = 64 - range.leading_zeros();
        if width >= 64 {
            return None;
        }
        let mut words = vec![0u64; ((values.len() as u64 * width as u64).div_ceil(64)) as usize];
        if width > 0 {
            for (i, &v) in values.iter().enumerate() {
                let delta = (v - min) as u64;
                let pos = i as u64 * width as u64;
                let (w, bit) = ((pos / 64) as usize, (pos % 64) as u32);
                words[w] |= delta << bit;
                if bit + width > 64 {
                    words[w + 1] |= delta >> (64 - bit);
                }
            }
        }
        Some(Packed {
            min,
            width,
            len: values.len(),
            words,
            cache: OnceLock::new(),
        })
    }

    /// Rebuild from parts (the spill reader's constructor).
    pub fn from_parts(min: i64, width: u32, len: usize, words: Vec<u64>) -> Packed {
        assert!(width < 64, "packed width must be < 64");
        assert!(
            words.len() as u64 * 64 >= len as u64 * width as u64,
            "packed words too short for len × width"
        );
        Packed {
            min,
            width,
            len,
            words,
            cache: OnceLock::new(),
        }
    }

    /// Logical row count.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Is the vector empty?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The frame-of-reference base (the minimum at encode time).
    pub fn min(&self) -> i64 {
        self.min
    }

    /// Bits per stored value.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// The packed words (the spill writer serialises these directly).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Point access: the value at logical row `i`.
    #[inline]
    pub fn get(&self, i: usize) -> i64 {
        debug_assert!(i < self.len);
        if self.width == 0 {
            return self.min;
        }
        let pos = i as u64 * self.width as u64;
        let (w, bit) = ((pos / 64) as usize, (pos % 64) as u32);
        let mask = (1u64 << self.width) - 1;
        let mut delta = self.words[w] >> bit;
        if bit + self.width > 64 {
            delta |= self.words[w + 1] << (64 - bit);
        }
        self.min + (delta & mask) as i64
    }

    /// Decode to a plain vector (transient, bypasses the cache).
    pub fn to_vec(&self) -> Vec<i64> {
        (0..self.len).map(|i| self.get(i)).collect()
    }

    /// The cached plain form; the first call decompresses and counts one
    /// decode sink.
    pub fn decoded(&self) -> &ColumnData {
        self.cache.get_or_init(|| {
            count_decode_sink();
            Arc::new(ColumnData::Int(self.to_vec()))
        })
    }

    /// Approximate heap bytes of the encoded form.
    pub fn encoded_bytes(&self) -> usize {
        self.words.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rle_roundtrip_and_point_access() {
        let v: Vec<i64> = [vec![7i64; 20], vec![1, 2, 3], vec![0; 100]].concat();
        let r = Rle::encode(&v);
        assert_eq!(r.len(), v.len());
        assert_eq!(r.to_vec(), v);
        assert_eq!(r.stored_values(), 5); // run(7) + dense[1,2,3] + run(0)
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(r.get(i), x);
        }
    }

    #[test]
    fn rle_short_repeats_stay_dense() {
        let v = vec![1.0f64, 1.0, 2.0, 2.0, 3.0];
        let r = Rle::encode(&v);
        assert_eq!(r.segs().len(), 1);
        assert_eq!(r.to_vec(), v);
    }

    #[test]
    fn rle_slice_keeps_runs() {
        let v: Vec<i64> = [vec![5i64; 50], vec![9; 50]].concat();
        let r = Rle::encode(&v);
        let s = r.slice(40, 60);
        assert_eq!(s.len(), 20);
        assert_eq!(s.to_vec(), v[40..60].to_vec());
        assert_eq!(s.segs().len(), 2);
        assert!(r.slice(10, 10).is_empty());
    }

    #[test]
    fn rle_add_matches_dense() {
        let mut a = vec![0.0f64; 300];
        let mut b = vec![0.0f64; 300];
        for i in (0..300).step_by(3) {
            a[i] = i as f64;
        }
        for i in (0..300).step_by(7) {
            b[i] = 2.0 * i as f64;
        }
        let sum = rle_add_f64(&Rle::encode(&a), &Rle::encode(&b)).to_vec();
        let expected: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x + y).collect();
        assert_eq!(sum, expected);
    }

    #[test]
    fn rle_add_skips_common_runs() {
        let mut a = vec![0.0f64; 1000];
        let mut b = vec![0.0f64; 1000];
        a[0] = 1.0;
        b[0] = 2.0;
        let c = rle_add_f64(&Rle::encode(&a), &Rle::encode(&b));
        assert!(c.stored_values() < 20);
        assert_eq!(c.get(0), 3.0);
        assert_eq!(c.get(999), 0.0);
    }

    #[test]
    fn dict_roundtrip_codes_sorted() {
        let vals: Vec<String> = ["CA", "FL", "CA", "NY", "CA"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let d = Dict::encode(&vals);
        assert_eq!(d.values().as_slice(), &["CA", "FL", "NY"]);
        assert_eq!(d.codes(), &[0, 1, 0, 2, 0]);
        assert_eq!(d.to_vec(), vals);
        assert_eq!(d.code_of("NY"), Some(2));
        assert_eq!(d.code_of("TX"), None);
        assert_eq!(d.get(3), "NY");
    }

    #[test]
    fn dict_take_and_slice_share_table() {
        let vals: Vec<String> = ["a", "b", "a", "c"].iter().map(|s| s.to_string()).collect();
        let d = Dict::encode(&vals);
        let t = d.take(&[3, 0]);
        assert!(Arc::ptr_eq(t.values(), d.values()));
        assert_eq!(t.to_vec(), vec!["c", "a"]);
        let s = d.slice(1, 3);
        assert_eq!(s.to_vec(), vec!["b", "a"]);
    }

    #[test]
    fn packed_roundtrip_various_widths() {
        for base in [-1000i64, 0, 1 << 40] {
            let v: Vec<i64> = (0..200).map(|i| base + (i * 37) % 1000).collect();
            let p = Packed::encode(&v).unwrap();
            assert!(p.width() <= 10);
            assert_eq!(p.to_vec(), v);
        }
    }

    #[test]
    fn packed_constant_column_width_zero() {
        let p = Packed::encode(&[42i64; 100]).unwrap();
        assert_eq!(p.width(), 0);
        assert_eq!(p.encoded_bytes(), 0);
        assert_eq!(p.get(99), 42);
    }

    #[test]
    fn packed_rejects_full_range() {
        assert!(Packed::encode(&[i64::MIN, i64::MAX]).is_none());
        assert!(Packed::encode(&[]).is_none());
    }

    #[test]
    fn packed_cross_word_boundaries() {
        // width 13 → values straddle u64 boundaries regularly
        let v: Vec<i64> = (0..500).map(|i| (i * 17) % 8000).collect();
        let p = Packed::encode(&v).unwrap();
        assert_eq!(p.width(), 13);
        assert_eq!(p.to_vec(), v);
    }

    #[test]
    fn decode_sinks_counted_once_per_payload() {
        let before = decode_sink_events();
        let r = Rle::encode(&[1i64; 100]);
        let _ = r.decoded();
        let _ = r.decoded();
        assert_eq!(decode_sink_events() - before, 1);
        let d = Dict::encode(&vec!["x".to_string(); 10]);
        let _ = d.decoded();
        assert_eq!(decode_sink_events() - before, 2);
    }

    #[test]
    fn encoded_bytes_report_compression() {
        let r = Rle::encode(&[0.0f64; 10_000]);
        assert!(r.encoded_bytes() * 2 < 10_000 * 8);
        let d = Dict::encode(&vec!["hello".to_string(); 1000]);
        assert!(d.encoded_bytes() < 1000 * 8);
        let p = Packed::encode(&(0..10_000i64).map(|i| i % 16).collect::<Vec<_>>()).unwrap();
        assert_eq!(p.width(), 4);
        assert!(p.encoded_bytes() * 2 < 10_000 * 8);
    }
}
