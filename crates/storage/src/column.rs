//! Typed column vectors — the tail of a BAT.
//!
//! Each column stores a contiguous `Vec` of one primitive type plus an
//! optional null bitmap. All bulk operators work directly on the typed
//! vectors; [`Value`] is only used at the edges.
//!
//! Both the data vector and the bitmap live behind `Arc`, so cloning a
//! column is O(1) — operators share intermediate results instead of deep
//! copying them, and [`Column::append`] copies-on-write only when a shared
//! column is actually extended. Row selection composes with this through
//! [`Column::gather`], which materialises the rows named by a
//! [`SelVec`].

use crate::bitmap::Bitmap;
use crate::encoding::{Dict, Encoding, Packed, Rle};
use crate::error::StorageError;
use crate::selvec::SelVec;
use crate::stats::ColumnStats;
use crate::value::{DataType, Value};
use std::cmp::Ordering;
use std::sync::Arc;

/// Typed storage for the rows of one attribute.
///
/// The first five variants are plain contiguous vectors — the public
/// construction surface. The remaining variants are compressed physical
/// forms (`#[doc(hidden)]`; see `rma_storage::encoding`): kernels must not
/// match them directly but go through [`Column::accessor`], so future
/// encodings are additive. The enum is `#[non_exhaustive]` for exactly
/// that reason — out-of-crate matches need a wildcard arm.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ColumnData {
    Int(Vec<i64>),
    Float(Vec<f64>),
    Str(Vec<String>),
    Bool(Vec<bool>),
    Date(Vec<i32>),
    /// Run-length-encoded integers (physical form; match via accessors).
    #[doc(hidden)]
    RleInt(Rle<i64>),
    /// Run-length-encoded floats (physical form; match via accessors).
    #[doc(hidden)]
    RleFloat(Rle<f64>),
    /// Dictionary-encoded strings (physical form; match via accessors).
    #[doc(hidden)]
    DictStr(Dict),
    /// Bit-packed integers (physical form; match via accessors).
    #[doc(hidden)]
    PackedInt(Packed),
}

impl ColumnData {
    pub fn len(&self) -> usize {
        match self {
            ColumnData::Int(v) => v.len(),
            ColumnData::Float(v) => v.len(),
            ColumnData::Str(v) => v.len(),
            ColumnData::Bool(v) => v.len(),
            ColumnData::Date(v) => v.len(),
            ColumnData::RleInt(r) => r.len(),
            ColumnData::RleFloat(r) => r.len(),
            ColumnData::DictStr(d) => d.len(),
            ColumnData::PackedInt(p) => p.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn data_type(&self) -> DataType {
        match self {
            ColumnData::Int(_) | ColumnData::RleInt(_) | ColumnData::PackedInt(_) => DataType::Int,
            ColumnData::Float(_) | ColumnData::RleFloat(_) => DataType::Float,
            ColumnData::Str(_) | ColumnData::DictStr(_) => DataType::Str,
            ColumnData::Bool(_) => DataType::Bool,
            ColumnData::Date(_) => DataType::Date,
        }
    }

    /// The physical encoding of this storage.
    pub fn encoding(&self) -> Encoding {
        match self {
            ColumnData::RleInt(_) | ColumnData::RleFloat(_) => Encoding::Rle,
            ColumnData::DictStr(_) => Encoding::Dict,
            ColumnData::PackedInt(_) => Encoding::Packed,
            _ => Encoding::Plain,
        }
    }

    /// Approximate heap bytes of this storage as physically held.
    pub fn encoded_bytes(&self) -> usize {
        match self {
            ColumnData::Int(v) => v.len() * 8,
            ColumnData::Float(v) => v.len() * 8,
            ColumnData::Str(v) => v
                .iter()
                .map(|s| s.len() + std::mem::size_of::<String>())
                .sum(),
            ColumnData::Bool(v) => v.len(),
            ColumnData::Date(v) => v.len() * 4,
            ColumnData::RleInt(r) => r.encoded_bytes(),
            ColumnData::RleFloat(r) => r.encoded_bytes(),
            ColumnData::DictStr(d) => d.encoded_bytes(),
            ColumnData::PackedInt(p) => p.encoded_bytes(),
        }
    }

    /// Approximate heap bytes the *plain* form of this storage would take
    /// (the denominator of a compression ratio).
    pub fn plain_bytes(&self) -> usize {
        match self {
            ColumnData::DictStr(d) => {
                let per_value: usize = d
                    .values()
                    .iter()
                    .map(|s| s.len() + std::mem::size_of::<String>())
                    .sum::<usize>()
                    .checked_div(d.values().len())
                    .unwrap_or(0);
                d.len() * per_value.max(std::mem::size_of::<String>())
            }
            ColumnData::RleInt(r) => r.len() * 8,
            ColumnData::RleFloat(r) => r.len() * 8,
            ColumnData::PackedInt(p) => p.len() * 8,
            plain => plain.encoded_bytes(),
        }
    }

    /// Empty storage of the given type.
    pub fn empty(dt: DataType) -> Self {
        match dt {
            DataType::Int => ColumnData::Int(Vec::new()),
            DataType::Float => ColumnData::Float(Vec::new()),
            DataType::Str => ColumnData::Str(Vec::new()),
            DataType::Bool => ColumnData::Bool(Vec::new()),
            DataType::Date => ColumnData::Date(Vec::new()),
        }
    }

    /// Empty storage of the given type, with reserved capacity.
    pub fn with_capacity(dt: DataType, cap: usize) -> Self {
        match dt {
            DataType::Int => ColumnData::Int(Vec::with_capacity(cap)),
            DataType::Float => ColumnData::Float(Vec::with_capacity(cap)),
            DataType::Str => ColumnData::Str(Vec::with_capacity(cap)),
            DataType::Bool => ColumnData::Bool(Vec::with_capacity(cap)),
            DataType::Date => ColumnData::Date(Vec::with_capacity(cap)),
        }
    }
}

/// A column: typed data plus an optional null bitmap, both `Arc`-shared.
///
/// `nulls == None` means "no nulls anywhere" — the hot path. When a bitmap is
/// present, the underlying slot of a null row holds an arbitrary placeholder
/// (zero / empty string) that must never be observed through the public API.
///
/// Equality is *logical*: two columns are equal when they hold the same
/// typed values and validity, regardless of physical encoding — an RLE
/// column equals its plain twin.
#[derive(Debug, Clone)]
pub struct Column {
    data: Arc<ColumnData>,
    nulls: Option<Arc<Bitmap>>,
}

impl PartialEq for Column {
    fn eq(&self, other: &Self) -> bool {
        if self.len() != other.len() || self.data_type() != other.data_type() {
            return false;
        }
        // identical physical representation (incl. both-plain) — cheap
        if self.data == other.data {
            return self.nulls == other.nulls;
        }
        if !(self.is_encoded() || other.is_encoded()) {
            return false; // both plain and the vectors differ
        }
        // cross-encoding (or differently-segmented) comparison: row scan
        // through point access, nulls included
        (0..self.len()).all(|i| self.get(i) == other.get(i))
    }
}

impl Column {
    /// A column from typed data with no nulls.
    pub fn new(data: ColumnData) -> Self {
        Column {
            data: Arc::new(data),
            nulls: None,
        }
    }

    /// A column from typed data with the given null bitmap. The bitmap is
    /// dropped if it has no set bits.
    pub fn with_nulls(data: ColumnData, nulls: Bitmap) -> Result<Self, StorageError> {
        if nulls.len() != data.len() {
            return Err(StorageError::LengthMismatch {
                left: data.len(),
                right: nulls.len(),
            });
        }
        let nulls = if nulls.all_clear() {
            None
        } else {
            Some(Arc::new(nulls))
        };
        Ok(Column {
            data: Arc::new(data),
            nulls,
        })
    }

    /// Rewrap shared parts into a column (internal zero-copy constructor;
    /// the bitmap is assumed non-empty when present).
    fn from_parts(data: Arc<ColumnData>, nulls: Option<Arc<Bitmap>>) -> Self {
        debug_assert!(nulls.as_ref().is_none_or(|b| b.len() == data.len()));
        Column { data, nulls }
    }

    /// Build a column from scalar values; infers the type from the first
    /// non-null value. An all-null column needs an explicit type, use
    /// [`Column::from_values_typed`].
    pub fn from_values(values: &[Value]) -> Result<Self, StorageError> {
        let dt = values
            .iter()
            .find_map(|v| v.data_type())
            .ok_or(StorageError::UntypedColumn)?;
        Self::from_values_typed(dt, values)
    }

    /// Build a column of the given type from scalar values; `Null` entries
    /// set the bitmap, non-null entries must match `dt`.
    pub fn from_values_typed(dt: DataType, values: &[Value]) -> Result<Self, StorageError> {
        let mut data = ColumnData::with_capacity(dt, values.len());
        let mut nulls = Bitmap::new(values.len());
        let mut any_null = false;
        for (i, v) in values.iter().enumerate() {
            if v.is_null() {
                any_null = true;
                nulls.set(i);
                push_placeholder(&mut data);
                continue;
            }
            match (&mut data, v) {
                (ColumnData::Int(d), Value::Int(x)) => d.push(*x),
                (ColumnData::Float(d), Value::Float(x)) => d.push(*x),
                (ColumnData::Float(d), Value::Int(x)) => d.push(*x as f64),
                (ColumnData::Str(d), Value::Str(x)) => d.push(x.clone()),
                (ColumnData::Bool(d), Value::Bool(x)) => d.push(*x),
                (ColumnData::Date(d), Value::Date(x)) => d.push(*x),
                _ => {
                    return Err(StorageError::TypeMismatch {
                        expected: dt,
                        found: v.data_type(),
                    })
                }
            }
        }
        if any_null {
            Column::with_nulls(data, nulls)
        } else {
            Ok(Column::new(data))
        }
    }

    /// A column holding `len` copies of one scalar. Costs O(len) storage —
    /// expression evaluation avoids calling this until a constant result
    /// must actually become a column (see `rma_relation::Expr`).
    pub fn broadcast(v: &Value, dt: DataType, len: usize) -> Result<Self, StorageError> {
        if v.is_null() {
            let mut nulls = Bitmap::new(len);
            let mut data = ColumnData::with_capacity(dt, len);
            for i in 0..len {
                nulls.set(i);
                push_placeholder(&mut data);
            }
            return Column::with_nulls(data, nulls);
        }
        let data = match (dt, v) {
            (DataType::Int, Value::Int(x)) => ColumnData::Int(vec![*x; len]),
            (DataType::Float, Value::Float(x)) => ColumnData::Float(vec![*x; len]),
            (DataType::Float, Value::Int(x)) => ColumnData::Float(vec![*x as f64; len]),
            (DataType::Str, Value::Str(x)) => ColumnData::Str(vec![x.clone(); len]),
            (DataType::Bool, Value::Bool(x)) => ColumnData::Bool(vec![*x; len]),
            (DataType::Date, Value::Date(x)) => ColumnData::Date(vec![*x; len]),
            _ => {
                return Err(StorageError::TypeMismatch {
                    expected: dt,
                    found: v.data_type(),
                })
            }
        };
        Ok(Column::new(data))
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn data_type(&self) -> DataType {
        self.data.data_type()
    }

    /// The column's values as **plain** typed storage — the explicit
    /// decode escape hatch of the accessor contract. For a plain column
    /// this is a free borrow; for an encoded column the first call
    /// decompresses into a cache shared by all clones of the payload and
    /// counts one decode *sink* (see
    /// [`decode_sink_events`](crate::encoding::decode_sink_events)).
    /// Kernels that can stay encoded should use [`Column::accessor`]
    /// instead.
    pub fn data(&self) -> &ColumnData {
        match &*self.data {
            ColumnData::RleInt(r) => r.decoded(),
            ColumnData::RleFloat(r) => r.decoded(),
            ColumnData::DictStr(d) => d.decoded(),
            ColumnData::PackedInt(p) => p.decoded(),
            plain => plain,
        }
    }

    /// The physical storage as held, encoded variants included. Exposed
    /// for the spill writer and encoding-aware tests; kernels use
    /// [`Column::accessor`].
    #[doc(hidden)]
    pub fn raw(&self) -> &ColumnData {
        &self.data
    }

    /// The physical encoding of this column's storage.
    pub fn encoding(&self) -> Encoding {
        self.data.encoding()
    }

    /// Is the storage in a compressed physical form?
    pub fn is_encoded(&self) -> bool {
        self.encoding() != Encoding::Plain
    }

    /// Approximate heap bytes of the storage as physically held.
    pub fn encoded_bytes(&self) -> usize {
        self.data.encoded_bytes()
    }

    /// Approximate heap bytes the plain form would take.
    pub fn plain_bytes(&self) -> usize {
        self.data.plain_bytes()
    }

    /// Re-encode into the requested physical form, sharing the null
    /// bitmap. Returns `None` when the encoding does not apply to this
    /// column's type (or, for [`Encoding::Packed`], when the value range
    /// needs full width). Encoding reads the plain form; on an
    /// already-encoded column that is a sink.
    pub fn encode_as(&self, enc: Encoding) -> Option<Column> {
        let data = match (enc, self.data()) {
            (Encoding::Plain, plain) => plain.clone(),
            (Encoding::Rle, ColumnData::Int(v)) => ColumnData::RleInt(Rle::encode(v)),
            (Encoding::Rle, ColumnData::Float(v)) => ColumnData::RleFloat(Rle::encode(v)),
            (Encoding::Dict, ColumnData::Str(v)) => ColumnData::DictStr(Dict::encode(v)),
            (Encoding::Packed, ColumnData::Int(v)) => ColumnData::PackedInt(Packed::encode(v)?),
            _ => return None,
        };
        Some(Column::from_parts(Arc::new(data), self.nulls.clone()))
    }

    /// Stats-driven encoding choice: pick the physical form this column's
    /// value distribution rewards, or return a clone if none compresses
    /// to at most half the plain bytes. `stats` (the PR 4 per-column
    /// statistics) gates obviously futile attempts — pass `None` to
    /// measure each candidate directly. Already-encoded columns are
    /// returned as-is.
    pub fn encoded(&self, stats: Option<&ColumnStats>) -> Column {
        if self.is_encoded() {
            return self.clone();
        }
        let rows = self.len();
        if rows < crate::encoding::MIN_RUN {
            return self.clone();
        }
        let wins = |c: &Column| c.encoded_bytes() * 2 <= c.plain_bytes();
        match &*self.data {
            ColumnData::Str(_) => {
                // dictionary: only when the distinct count is small both
                // absolutely (u32 codes, per-code predicate tables) and
                // relative to the row count
                let ndv_ok = stats.is_none_or(|s| {
                    s.distinct <= (u32::MAX as usize) / 2 && s.distinct * 2 <= rows.max(1)
                });
                if ndv_ok {
                    if let Some(c) = self.encode_as(Encoding::Dict) {
                        if wins(&c) {
                            return c;
                        }
                    }
                }
            }
            ColumnData::Int(_) => {
                // prefer RLE (keeps run structure for the kernels); fall
                // back to bit-packing for narrow-range but run-free data
                if let Some(c) = self.encode_as(Encoding::Rle) {
                    if wins(&c) {
                        return c;
                    }
                }
                let range_ok = stats.is_none_or(|s| match (&s.min, &s.max) {
                    (Some(Value::Int(lo)), Some(Value::Int(hi))) => hi
                        .checked_sub(*lo)
                        .is_some_and(|r| 64 - (r as u64).leading_zeros() <= 32),
                    _ => true,
                });
                if range_ok {
                    if let Some(c) = self.encode_as(Encoding::Packed) {
                        if wins(&c) {
                            return c;
                        }
                    }
                }
            }
            ColumnData::Float(_) => {
                if let Some(c) = self.encode_as(Encoding::Rle) {
                    if wins(&c) {
                        return c;
                    }
                }
            }
            _ => {}
        }
        self.clone()
    }

    /// The null bitmap, if any row is null.
    pub fn nulls(&self) -> Option<&Bitmap> {
        self.nulls.as_deref()
    }

    pub fn has_nulls(&self) -> bool {
        self.nulls.is_some()
    }

    pub fn null_count(&self) -> usize {
        self.nulls.as_ref().map_or(0, |b| b.count_set())
    }

    pub fn is_null(&self, i: usize) -> bool {
        self.nulls.as_ref().is_some_and(|b| b.get(i))
    }

    /// Read a single cell as a boxed scalar (point access — never
    /// decodes an encoded column).
    pub fn get(&self, i: usize) -> Value {
        if self.is_null(i) {
            return Value::Null;
        }
        match &*self.data {
            ColumnData::Int(v) => Value::Int(v[i]),
            ColumnData::Float(v) => Value::Float(v[i]),
            ColumnData::Str(v) => Value::Str(v[i].clone()),
            ColumnData::Bool(v) => Value::Bool(v[i]),
            ColumnData::Date(v) => Value::Date(v[i]),
            ColumnData::RleInt(r) => Value::Int(r.get(i)),
            ColumnData::RleFloat(r) => Value::Float(r.get(i)),
            ColumnData::DictStr(d) => Value::Str(d.get(i).to_string()),
            ColumnData::PackedInt(p) => Value::Int(p.get(i)),
        }
    }

    /// Compare two rows of this column with null-first total order.
    pub fn cmp_rows(&self, i: usize, j: usize) -> Ordering {
        match (self.is_null(i), self.is_null(j)) {
            (true, true) => Ordering::Equal,
            (true, false) => Ordering::Less,
            (false, true) => Ordering::Greater,
            (false, false) => match &*self.data {
                ColumnData::Int(v) => v[i].cmp(&v[j]),
                ColumnData::Float(v) => v[i].total_cmp(&v[j]),
                ColumnData::Str(v) => v[i].cmp(&v[j]),
                ColumnData::Bool(v) => v[i].cmp(&v[j]),
                ColumnData::Date(v) => v[i].cmp(&v[j]),
                ColumnData::RleInt(r) => r.get(i).cmp(&r.get(j)),
                ColumnData::RleFloat(r) => r.get(i).total_cmp(&r.get(j)),
                // the dictionary is sorted, so code order is value order
                ColumnData::DictStr(d) => d.codes()[i].cmp(&d.codes()[j]),
                ColumnData::PackedInt(p) => p.get(i).cmp(&p.get(j)),
            },
        }
    }

    /// Compare row `i` of this column with row `j` of another column of the
    /// same type (used by multi-relation alignment).
    pub fn cmp_rows_cross(&self, i: usize, other: &Column, j: usize) -> Ordering {
        self.get(i).total_cmp(&other.get(j))
    }

    /// Gather rows: `out[k] = self[idx[k]]` (MonetDB `leftfetchjoin`).
    /// Dictionary columns gather their codes and keep the shared value
    /// table; other encodings materialise the selected rows plain via
    /// point access (no whole-column decode, no sink).
    pub fn take(&self, idx: &[usize]) -> Column {
        let data = match &*self.data {
            ColumnData::Int(v) => ColumnData::Int(idx.iter().map(|&i| v[i]).collect()),
            ColumnData::Float(v) => ColumnData::Float(idx.iter().map(|&i| v[i]).collect()),
            ColumnData::Str(v) => ColumnData::Str(idx.iter().map(|&i| v[i].clone()).collect()),
            ColumnData::Bool(v) => ColumnData::Bool(idx.iter().map(|&i| v[i]).collect()),
            ColumnData::Date(v) => ColumnData::Date(idx.iter().map(|&i| v[i]).collect()),
            ColumnData::DictStr(d) => ColumnData::DictStr(d.take(idx)),
            ColumnData::RleInt(r) => ColumnData::Int(idx.iter().map(|&i| r.get(i)).collect()),
            ColumnData::RleFloat(r) => ColumnData::Float(idx.iter().map(|&i| r.get(i)).collect()),
            ColumnData::PackedInt(p) => ColumnData::Int(idx.iter().map(|&i| p.get(i)).collect()),
        };
        let nulls = self.nulls.as_ref().map(|b| b.take(idx));
        let nulls = nulls.filter(|b| !b.all_clear()).map(Arc::new);
        Column::from_parts(Arc::new(data), nulls)
    }

    /// Copy out the contiguous row range `start..end` (the unit of a
    /// row-range partitioned scan). Cheaper than [`Column::take`] with a
    /// dense index list: each variant is one bulk subrange copy. A
    /// full-range slice shares the backing storage instead of copying.
    pub fn slice(&self, start: usize, end: usize) -> Column {
        debug_assert!(start <= end && end <= self.len());
        if start == 0 && end == self.len() {
            return self.clone(); // Arc share, no copy
        }
        let data = match &*self.data {
            ColumnData::Int(v) => ColumnData::Int(v[start..end].to_vec()),
            ColumnData::Float(v) => ColumnData::Float(v[start..end].to_vec()),
            ColumnData::Str(v) => ColumnData::Str(v[start..end].to_vec()),
            ColumnData::Bool(v) => ColumnData::Bool(v[start..end].to_vec()),
            ColumnData::Date(v) => ColumnData::Date(v[start..end].to_vec()),
            // runs and codes slice without decoding
            ColumnData::RleInt(r) => ColumnData::RleInt(r.slice(start, end)),
            ColumnData::RleFloat(r) => ColumnData::RleFloat(r.slice(start, end)),
            ColumnData::DictStr(d) => ColumnData::DictStr(d.slice(start, end)),
            ColumnData::PackedInt(p) => ColumnData::Int((start..end).map(|i| p.get(i)).collect()),
        };
        let nulls = self.nulls.as_ref().map(|b| b.slice(start, end));
        let nulls = nulls.filter(|b| !b.all_clear()).map(Arc::new);
        Column::from_parts(Arc::new(data), nulls)
    }

    /// Materialise the rows a selection vector names, in selection order —
    /// the single compaction step of a late-materialized pipeline.
    pub fn gather(&self, sel: &SelVec) -> Column {
        match sel {
            _ if sel.is_identity(self.len()) => self.clone(),
            SelVec::Range(r) => self.slice(r.start, r.end),
            SelVec::Indices(idx) => self.take(idx),
        }
    }

    /// Keep only rows whose flag is set (vectorised σ on a selection vector).
    pub fn filter(&self, keep: &[bool]) -> Column {
        debug_assert_eq!(keep.len(), self.len());
        let idx: Vec<usize> = keep
            .iter()
            .enumerate()
            .filter_map(|(i, &k)| k.then_some(i))
            .collect();
        self.take(&idx)
    }

    /// Concatenate another column of the same type onto this one,
    /// copying-on-write if the underlying storage is shared.
    pub fn append(&mut self, other: &Column) -> Result<(), StorageError> {
        self.append_gather(other, None)
    }

    /// Append the rows of `other` selected by `sel` (all rows when `None`)
    /// without materialising an intermediate column — the gather and the
    /// concatenation are one pass. This is how partition results and view
    /// parts are reassembled.
    pub fn append_gather(
        &mut self,
        other: &Column,
        sel: Option<&SelVec>,
    ) -> Result<(), StorageError> {
        if self.data_type() != other.data_type() {
            return Err(StorageError::TypeMismatch {
                expected: self.data_type(),
                found: Some(other.data_type()),
            });
        }
        let old_len = self.len();
        let added = sel.map_or(other.len(), SelVec::len);
        // appends mutate plain vectors; an encoded destination sinks first
        // (append is a write path — the result is a fresh, growing column)
        self.make_plain();
        {
            let data = Arc::make_mut(&mut self.data);
            match (data, other.data()) {
                (ColumnData::Int(a), ColumnData::Int(b)) => extend_gather(a, b, sel),
                (ColumnData::Float(a), ColumnData::Float(b)) => extend_gather(a, b, sel),
                (ColumnData::Str(a), ColumnData::Str(b)) => extend_gather(a, b, sel),
                (ColumnData::Bool(a), ColumnData::Bool(b)) => extend_gather(a, b, sel),
                (ColumnData::Date(a), ColumnData::Date(b)) => extend_gather(a, b, sel),
                _ => unreachable!("type equality checked above"),
            }
        }
        // merge the validity bitmaps (through the selection, when present)
        let other_nulls = |m: &mut Bitmap| {
            if let Some(b) = other.nulls() {
                match sel {
                    None => m.extend(b),
                    Some(s) => {
                        let start = m.len();
                        m.grow(added);
                        for (k, i) in s.iter().enumerate() {
                            if b.get(i) {
                                m.set(start + k);
                            }
                        }
                    }
                }
            } else {
                m.grow(added);
            }
        };
        match (&mut self.nulls, other.nulls.is_some()) {
            (None, false) => {}
            (Some(a), _) => other_nulls(Arc::make_mut(a)),
            (None, true) => {
                let mut m = Bitmap::new(old_len);
                other_nulls(&mut m);
                if !m.all_clear() {
                    self.nulls = Some(Arc::new(m));
                }
            }
        }
        Ok(())
    }

    /// View the column as `f64` values; integer columns are widened. Errors
    /// on non-numeric types or on nulls — matrices cannot hold either.
    pub fn to_f64_vec(&self) -> Result<Vec<f64>, StorageError> {
        if let Some(b) = self.nulls() {
            if !b.all_clear() {
                return Err(StorageError::NullInNumericContext);
            }
        }
        match self.data() {
            ColumnData::Int(v) => Ok(v.iter().map(|&x| x as f64).collect()),
            ColumnData::Float(v) => Ok(v.clone()),
            other => Err(StorageError::TypeMismatch {
                expected: DataType::Float,
                found: Some(other.data_type()),
            }),
        }
    }

    /// Borrow the float data directly if this is a null-free float column.
    /// An RLE float column serves the borrow from its decode cache — a
    /// sink on first call, free afterwards (the linalg bridges that call
    /// this need the contiguous form by definition).
    pub fn as_f64_slice(&self) -> Option<&[f64]> {
        if self.has_nulls() {
            return None;
        }
        match &*self.data {
            ColumnData::Float(v) => Some(v),
            ColumnData::RleFloat(r) => match r.decoded() {
                ColumnData::Float(v) => Some(v),
                _ => unreachable!("RLE floats decode to floats"),
            },
            _ => None,
        }
    }

    /// Replace encoded storage with its decoded plain form in place (a
    /// sink when the column was encoded; a no-op otherwise).
    fn make_plain(&mut self) {
        if self.is_encoded() {
            let plain = self.data().clone();
            self.data = Arc::new(plain);
        }
    }

    /// Iterate all cells as boxed scalars (edge use only).
    pub fn iter_values(&self) -> impl Iterator<Item = Value> + '_ {
        (0..self.len()).map(move |i| self.get(i))
    }

    /// Do both columns share the same backing storage (`Arc` identity)?
    /// The serving layer's snapshot tests use this to prove that pinning a
    /// catalog snapshot is zero-copy: every reader's view of an unchanged
    /// table is the same `Arc`'d storage the catalog holds, not a copy.
    pub fn shares_data_with(&self, other: &Column) -> bool {
        Arc::ptr_eq(&self.data, &other.data)
    }
}

fn extend_gather<T: Clone>(a: &mut Vec<T>, b: &[T], sel: Option<&SelVec>) {
    match sel {
        None => a.extend_from_slice(b),
        Some(SelVec::Range(r)) => a.extend_from_slice(&b[r.clone()]),
        Some(SelVec::Indices(idx)) => a.extend(idx.iter().map(|&i| b[i].clone())),
    }
}

fn push_placeholder(data: &mut ColumnData) {
    match data {
        ColumnData::Int(d) => d.push(0),
        ColumnData::Float(d) => d.push(0.0),
        ColumnData::Str(d) => d.push(String::new()),
        ColumnData::Bool(d) => d.push(false),
        ColumnData::Date(d) => d.push(0),
        _ => unreachable!("placeholders are only pushed into plain builders"),
    }
}

/// Convenience constructors for tests and generators.
impl From<Vec<i64>> for Column {
    fn from(v: Vec<i64>) -> Self {
        Column::new(ColumnData::Int(v))
    }
}
impl From<Vec<f64>> for Column {
    fn from(v: Vec<f64>) -> Self {
        Column::new(ColumnData::Float(v))
    }
}
impl From<Vec<String>> for Column {
    fn from(v: Vec<String>) -> Self {
        Column::new(ColumnData::Str(v))
    }
}
impl From<Vec<&str>> for Column {
    fn from(v: Vec<&str>) -> Self {
        Column::new(ColumnData::Str(v.into_iter().map(str::to_string).collect()))
    }
}
impl From<Vec<bool>> for Column {
    fn from(v: Vec<bool>) -> Self {
        Column::new(ColumnData::Bool(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_values_infers_type() {
        let c = Column::from_values(&[Value::Null, Value::Int(3), Value::Int(1)]).unwrap();
        assert_eq!(c.data_type(), DataType::Int);
        assert_eq!(c.null_count(), 1);
        assert_eq!(c.get(0), Value::Null);
        assert_eq!(c.get(1), Value::Int(3));
    }

    #[test]
    fn from_values_all_null_fails() {
        assert!(matches!(
            Column::from_values(&[Value::Null]),
            Err(StorageError::UntypedColumn)
        ));
    }

    #[test]
    fn int_widens_into_float_column() {
        let c = Column::from_values_typed(DataType::Float, &[Value::Int(1), Value::Float(2.5)])
            .unwrap();
        assert_eq!(c.to_f64_vec().unwrap(), vec![1.0, 2.5]);
    }

    #[test]
    fn type_mismatch_rejected() {
        let r = Column::from_values_typed(DataType::Int, &[Value::Str("x".into())]);
        assert!(matches!(r, Err(StorageError::TypeMismatch { .. })));
    }

    #[test]
    fn take_and_filter() {
        let c = Column::from(vec![10i64, 20, 30, 40]);
        let t = c.take(&[3, 0, 0]);
        assert_eq!(t.get(0), Value::Int(40));
        assert_eq!(t.get(2), Value::Int(10));
        let f = c.filter(&[false, true, true, false]);
        assert_eq!(f.len(), 2);
        assert_eq!(f.get(0), Value::Int(20));
    }

    #[test]
    fn take_preserves_nulls() {
        let c = Column::from_values(&[Value::Int(1), Value::Null, Value::Int(3)]).unwrap();
        let t = c.take(&[1, 2]);
        assert!(t.is_null(0));
        assert!(!t.is_null(1));
        // all-valid result drops the bitmap entirely
        let t2 = c.take(&[0, 2]);
        assert!(!t2.has_nulls());
    }

    #[test]
    fn clone_shares_storage() {
        let c = Column::from(vec![1i64, 2, 3]);
        let d = c.clone();
        assert!(Arc::ptr_eq(&c.data, &d.data));
        assert_eq!(c, d);
    }

    #[test]
    fn append_copies_on_write() {
        let c = Column::from(vec![1i64, 2]);
        let mut d = c.clone();
        d.append(&Column::from(vec![3i64])).unwrap();
        // the original is untouched, the clone diverged
        assert_eq!(c.len(), 2);
        assert_eq!(d.len(), 3);
        assert_eq!(d.get(2), Value::Int(3));
    }

    #[test]
    fn gather_range_and_indices() {
        let c = Column::from_values(&[Value::Int(1), Value::Null, Value::Int(3), Value::Int(4)])
            .unwrap();
        let r = c.gather(&SelVec::Range(1..3));
        assert_eq!(r.len(), 2);
        assert!(r.is_null(0));
        let i = c.gather(&SelVec::from_indices(vec![3, 1]));
        assert_eq!(i.get(0), Value::Int(4));
        assert!(i.is_null(1));
        // identity gather shares storage
        let all = c.gather(&SelVec::all(4));
        assert!(Arc::ptr_eq(&c.data, &all.data));
    }

    #[test]
    fn append_gather_selected_rows() {
        let mut a = Column::from(vec![1i64]);
        let b = Column::from_values(&[Value::Int(10), Value::Null, Value::Int(30)]).unwrap();
        a.append_gather(&b, Some(&SelVec::from_indices(vec![2, 1])))
            .unwrap();
        assert_eq!(a.len(), 3);
        assert_eq!(a.get(1), Value::Int(30));
        assert!(a.is_null(2));
        let mut c = Column::from(vec![1i64]);
        c.append_gather(&b, Some(&SelVec::Range(0..1))).unwrap();
        assert_eq!(c.len(), 2);
        assert!(!c.has_nulls());
    }

    #[test]
    fn broadcast_scalar_and_null() {
        let c = Column::broadcast(&Value::Int(7), DataType::Int, 3).unwrap();
        assert_eq!(c.len(), 3);
        assert_eq!(c.get(2), Value::Int(7));
        let n = Column::broadcast(&Value::Null, DataType::Float, 2).unwrap();
        assert_eq!(n.null_count(), 2);
        let w = Column::broadcast(&Value::Int(1), DataType::Float, 2).unwrap();
        assert_eq!(w.get(0), Value::Float(1.0));
        assert!(Column::broadcast(&Value::Bool(true), DataType::Int, 1).is_err());
    }

    #[test]
    fn append_merges_null_bitmaps() {
        let mut a = Column::from(vec![1i64, 2]);
        let b = Column::from_values(&[Value::Null, Value::Int(4)]).unwrap();
        a.append(&b).unwrap();
        assert_eq!(a.len(), 4);
        assert!(a.is_null(2));
        assert!(!a.is_null(0));
    }

    #[test]
    fn append_type_mismatch() {
        let mut a = Column::from(vec![1i64]);
        assert!(a.append(&Column::from(vec![1.0f64])).is_err());
    }

    #[test]
    fn to_f64_rejects_nulls_and_strings() {
        let c = Column::from_values(&[Value::Float(1.0), Value::Null]).unwrap();
        assert!(matches!(
            c.to_f64_vec(),
            Err(StorageError::NullInNumericContext)
        ));
        let s = Column::from(vec!["a"]);
        assert!(s.to_f64_vec().is_err());
    }

    #[test]
    fn cmp_rows_null_first() {
        let c = Column::from_values(&[Value::Int(5), Value::Null]).unwrap();
        assert_eq!(c.cmp_rows(1, 0), Ordering::Less);
        assert_eq!(c.cmp_rows(0, 0), Ordering::Equal);
    }

    #[test]
    fn slice_copies_subrange_with_nulls() {
        let c = Column::from_values(&[Value::Int(1), Value::Null, Value::Int(3), Value::Int(4)])
            .unwrap();
        let s = c.slice(1, 3);
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(0), Value::Null);
        assert_eq!(s.get(1), Value::Int(3));
        // a slice without nulls drops the bitmap entirely
        let t = c.slice(2, 4);
        assert!(!t.has_nulls());
        assert!(c.slice(1, 1).is_empty());
    }

    #[test]
    fn as_f64_slice_borrows() {
        let c = Column::from(vec![1.0f64, 2.0]);
        assert_eq!(c.as_f64_slice().unwrap(), &[1.0, 2.0]);
        let i = Column::from(vec![1i64]);
        assert!(i.as_f64_slice().is_none());
    }
}
