//! Typed, encoding-aware column accessors — the kernel-facing read surface.
//!
//! Kernels used to pattern-match the `ColumnData` enum directly, which
//! meant every new encoding multiplied match arms across five crates.
//! They now match a [`ColumnAccessor`] instead: one variant per *logical*
//! type, each wrapping a small ref enum ([`IntsRef`], [`FloatsRef`],
//! [`StrsRef`]) that knows how to read the physical form — plain slice,
//! RLE segments, dictionary codes, packed words — without decoding.
//!
//! The contract (ARCHITECTURE.md "Storage encodings"):
//! - `get(i)` is always cheap and never decodes the whole column.
//! - Run-aware kernels probe [`IntsRef::rle`] / [`FloatsRef::rle`] and
//!   multiply run lengths; code-aware kernels probe [`StrsRef::dict`] and
//!   work per distinct value.
//! - A kernel that genuinely needs the contiguous plain vector calls
//!   `Column::data()` — the explicit decode escape hatch. That is a
//!   *sink*: the first such call per payload decompresses and increments
//!   the global `decode_sink_events` counter.

use crate::column::{Column, ColumnData};
use crate::encoding::{Dict, Packed, Rle};

/// Read access to an integer column in any physical encoding.
#[derive(Debug, Clone, Copy)]
pub enum IntsRef<'a> {
    /// Plain contiguous storage.
    Slice(&'a [i64]),
    /// Run-length encoded storage.
    Rle(&'a Rle<i64>),
    /// Frame-of-reference bit-packed storage.
    Packed(&'a Packed),
}

impl<'a> IntsRef<'a> {
    /// Logical row count.
    pub fn len(&self) -> usize {
        match self {
            IntsRef::Slice(v) => v.len(),
            IntsRef::Rle(r) => r.len(),
            IntsRef::Packed(p) => p.len(),
        }
    }

    /// Is the column empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The value at row `i` (cheap in every encoding; never decodes).
    #[inline]
    pub fn get(&self, i: usize) -> i64 {
        match self {
            IntsRef::Slice(v) => v[i],
            IntsRef::Rle(r) => r.get(i),
            IntsRef::Packed(p) => p.get(i),
        }
    }

    /// The RLE payload, when the storage is run-length encoded — the
    /// entry point for run-aware fast paths.
    pub fn rle(&self) -> Option<&'a Rle<i64>> {
        match self {
            IntsRef::Rle(r) => Some(r),
            _ => None,
        }
    }

    /// The plain slice, when the storage is uncompressed.
    pub fn as_slice(&self) -> Option<&'a [i64]> {
        match self {
            IntsRef::Slice(v) => Some(v),
            _ => None,
        }
    }
}

/// Read access to a float column in any physical encoding.
#[derive(Debug, Clone, Copy)]
pub enum FloatsRef<'a> {
    /// Plain contiguous storage.
    Slice(&'a [f64]),
    /// Run-length encoded storage.
    Rle(&'a Rle<f64>),
}

impl<'a> FloatsRef<'a> {
    /// Logical row count.
    pub fn len(&self) -> usize {
        match self {
            FloatsRef::Slice(v) => v.len(),
            FloatsRef::Rle(r) => r.len(),
        }
    }

    /// Is the column empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The value at row `i` (cheap in every encoding; never decodes).
    #[inline]
    pub fn get(&self, i: usize) -> f64 {
        match self {
            FloatsRef::Slice(v) => v[i],
            FloatsRef::Rle(r) => r.get(i),
        }
    }

    /// The RLE payload, when the storage is run-length encoded.
    pub fn rle(&self) -> Option<&'a Rle<f64>> {
        match self {
            FloatsRef::Rle(r) => Some(r),
            _ => None,
        }
    }

    /// The plain slice, when the storage is uncompressed.
    pub fn as_slice(&self) -> Option<&'a [f64]> {
        match self {
            FloatsRef::Slice(v) => Some(v),
            _ => None,
        }
    }
}

/// Read access to a string column in any physical encoding.
#[derive(Debug, Clone, Copy)]
pub enum StrsRef<'a> {
    /// Plain contiguous storage.
    Slice(&'a [String]),
    /// Dictionary-encoded storage.
    Dict(&'a Dict),
}

impl<'a> StrsRef<'a> {
    /// Logical row count.
    pub fn len(&self) -> usize {
        match self {
            StrsRef::Slice(v) => v.len(),
            StrsRef::Dict(d) => d.len(),
        }
    }

    /// Is the column empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The string at row `i` (a code lookup for dictionaries; never
    /// decodes or clones).
    #[inline]
    pub fn get(&self, i: usize) -> &'a str {
        match self {
            StrsRef::Slice(v) => &v[i],
            StrsRef::Dict(d) => d.get(i),
        }
    }

    /// The dictionary payload, when the storage is dictionary encoded —
    /// the entry point for code-set membership predicates and
    /// code-hashing joins.
    pub fn dict(&self) -> Option<&'a Dict> {
        match self {
            StrsRef::Dict(d) => Some(d),
            _ => None,
        }
    }

    /// The plain slice, when the storage is uncompressed.
    pub fn as_slice(&self) -> Option<&'a [String]> {
        match self {
            StrsRef::Slice(v) => Some(v),
            _ => None,
        }
    }
}

/// Typed read access to a column's values, dispatching on *logical* type.
/// Obtained from [`Column::accessor`]; never decodes. Row validity stays
/// on the column (`Column::is_null`) exactly as for plain storage — a
/// null row's slot holds a placeholder in every encoding.
#[derive(Debug, Clone, Copy)]
pub enum ColumnAccessor<'a> {
    /// 64-bit integers (plain, RLE, or bit-packed).
    Int(IntsRef<'a>),
    /// 64-bit floats (plain or RLE).
    Float(FloatsRef<'a>),
    /// Strings (plain or dictionary).
    Str(StrsRef<'a>),
    /// Booleans (always plain).
    Bool(&'a [bool]),
    /// Dates (always plain).
    Date(&'a [i32]),
}

impl Column {
    /// Typed, encoding-aware read access to this column's values. This is
    /// the blessed kernel surface: it never decodes, and new encodings
    /// appear as new `IntsRef`/`FloatsRef`/`StrsRef` variants instead of
    /// new `ColumnData` match arms in every crate.
    pub fn accessor(&self) -> ColumnAccessor<'_> {
        match self.raw() {
            ColumnData::Int(v) => ColumnAccessor::Int(IntsRef::Slice(v)),
            ColumnData::Float(v) => ColumnAccessor::Float(FloatsRef::Slice(v)),
            ColumnData::Str(v) => ColumnAccessor::Str(StrsRef::Slice(v)),
            ColumnData::Bool(v) => ColumnAccessor::Bool(v),
            ColumnData::Date(v) => ColumnAccessor::Date(v),
            ColumnData::RleInt(r) => ColumnAccessor::Int(IntsRef::Rle(r)),
            ColumnData::RleFloat(r) => ColumnAccessor::Float(FloatsRef::Rle(r)),
            ColumnData::DictStr(d) => ColumnAccessor::Str(StrsRef::Dict(d)),
            ColumnData::PackedInt(p) => ColumnAccessor::Int(IntsRef::Packed(p)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::{decode_sink_events, Encoding};

    #[test]
    fn accessors_read_all_encodings_without_sinking() {
        let before = decode_sink_events();
        let ints = Column::from((0..100i64).map(|i| i % 4).collect::<Vec<_>>());
        let packed = ints.encode_as(Encoding::Packed).unwrap();
        let rle = Column::from(vec![7i64; 100])
            .encode_as(Encoding::Rle)
            .unwrap();
        let dict = Column::from(vec!["a", "b", "a", "c"])
            .encode_as(Encoding::Dict)
            .unwrap();
        match packed.accessor() {
            ColumnAccessor::Int(a) => {
                assert_eq!(a.len(), 100);
                assert_eq!(a.get(5), 1);
                assert!(a.as_slice().is_none());
            }
            _ => panic!("expected int accessor"),
        }
        match rle.accessor() {
            ColumnAccessor::Int(a) => {
                assert_eq!(a.rle().unwrap().stored_values(), 1);
                assert_eq!(a.get(99), 7);
            }
            _ => panic!("expected int accessor"),
        }
        match dict.accessor() {
            ColumnAccessor::Str(s) => {
                assert_eq!(s.get(2), "a");
                assert_eq!(s.dict().unwrap().values().len(), 3);
            }
            _ => panic!("expected str accessor"),
        }
        assert_eq!(decode_sink_events(), before, "accessors must not decode");
    }

    #[test]
    fn plain_columns_expose_slices() {
        let c = Column::from(vec![1.5f64, 2.5]);
        match c.accessor() {
            ColumnAccessor::Float(f) => assert_eq!(f.as_slice().unwrap(), &[1.5, 2.5]),
            _ => panic!("expected float accessor"),
        }
    }
}
