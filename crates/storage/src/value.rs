//! Scalar values and data types stored in BAT tails.
//!
//! MonetDB tails are typed; we mirror that with [`DataType`] describing the
//! tail type of a column and [`Value`] as the boxed scalar used at the edges
//! (literals, single-cell reads, ordering keys). Bulk processing never goes
//! through `Value`; it operates on typed column vectors.

use std::cmp::Ordering;
use std::fmt;

/// The tail type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE float (the matrix element type).
    Float,
    /// UTF-8 string.
    Str,
    /// Boolean.
    Bool,
    /// Date stored as days since 1970-01-01.
    Date,
}

impl DataType {
    /// Whether values of this type can participate in the application part of
    /// a relational matrix operation (i.e., can be placed into a matrix).
    pub fn is_numeric(self) -> bool {
        matches!(self, DataType::Int | DataType::Float)
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Int => "INT",
            DataType::Float => "DOUBLE",
            DataType::Str => "VARCHAR",
            DataType::Bool => "BOOLEAN",
            DataType::Date => "DATE",
        };
        f.write_str(s)
    }
}

/// A single scalar value. `Null` is typeless, as in SQL.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Int(i64),
    Float(f64),
    Str(String),
    Bool(bool),
    Date(i32),
    Null,
}

impl Value {
    /// The data type of the value, or `None` for `Null`.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Str(_) => Some(DataType::Str),
            Value::Bool(_) => Some(DataType::Bool),
            Value::Date(_) => Some(DataType::Date),
            Value::Null => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view of the value as `f64`, if it is numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// Total order used for sorting order parts and for `ORDER BY`.
    ///
    /// Nulls sort first; across types the order is
    /// numeric < string < bool < date, with ints and floats compared
    /// numerically so that mixed numeric columns order naturally. Float NaN
    /// sorts after all other floats (as in MonetDB's nil-last convention).
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        fn rank(v: &Value) -> u8 {
            match v {
                Null => 0,
                Int(_) | Float(_) => 1,
                Str(_) => 2,
                Bool(_) => 3,
                Date(_) => 4,
            }
        }
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Int(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Str(a), Str(b)) => a.cmp(b),
            (Bool(a), Bool(b)) => a.cmp(b),
            (Date(a), Date(b)) => a.cmp(b),
            _ => rank(self).cmp(&rank(other)),
        }
    }
}

impl Eq for Value {}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Str(v) => f.write_str(v),
            Value::Bool(v) => write!(f, "{v}"),
            Value::Date(v) => write!(f, "date#{v}"),
            Value::Null => f.write_str("NULL"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_cross_type_order() {
        assert_eq!(Value::Int(2).total_cmp(&Value::Float(2.5)), Ordering::Less);
        assert_eq!(Value::Float(3.0).total_cmp(&Value::Int(3)), Ordering::Equal);
    }

    #[test]
    fn nulls_sort_first() {
        assert_eq!(Value::Null.total_cmp(&Value::Int(i64::MIN)), Ordering::Less);
        assert_eq!(
            Value::Str("a".into()).total_cmp(&Value::Null),
            Ordering::Greater
        );
    }

    #[test]
    fn nan_sorts_last_among_floats() {
        assert_eq!(
            Value::Float(f64::NAN).total_cmp(&Value::Float(f64::INFINITY)),
            Ordering::Greater
        );
    }

    #[test]
    fn display_and_types() {
        assert_eq!(Value::from(7i64).to_string(), "7");
        assert_eq!(Value::from("x").data_type(), Some(DataType::Str));
        assert!(DataType::Float.is_numeric());
        assert!(!DataType::Str.is_numeric());
        assert_eq!(Value::Null.data_type(), None);
        assert_eq!(Value::Int(4).as_f64(), Some(4.0));
        assert_eq!(Value::Str("4".into()).as_f64(), None);
    }
}
