//! Binary association tables and bulk BAT operations.
//!
//! MonetDB stores every attribute as a BAT: a (head, tail) pair where the
//! head holds dense object identifiers (OIDs) and the tail the attribute
//! values. Since the head is always the dense sequence `0..n`, we store it
//! virtually: a [`Bat`] is a named [`Column`] whose row index *is* the OID.
//!
//! The relational and matrix layers are compiled down to the bulk operators
//! in this module, mirroring the paper's §7.1: `take` is `leftfetchjoin`
//! (`X ↓ Y`), [`sort_permutation`] produces the OID order used to sort a BAT
//! by its own values (`X ↓ X`), and the float kernels (`add`, `scale`, …)
//! are the vectorised operations used by Algorithm 2.

use crate::column::{Column, ColumnData};
use crate::error::StorageError;
use std::cmp::Ordering;

/// A named column with a virtual dense OID head.
#[derive(Debug, Clone, PartialEq)]
pub struct Bat {
    name: String,
    column: Column,
}

impl Bat {
    pub fn new(name: impl Into<String>, column: Column) -> Self {
        Bat {
            name: name.into(),
            column,
        }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    /// Rename without touching the tail (schema-level operation; free).
    pub fn renamed(&self, name: impl Into<String>) -> Bat {
        Bat {
            name: name.into(),
            column: self.column.clone(),
        }
    }

    pub fn column(&self) -> &Column {
        &self.column
    }

    pub fn into_column(self) -> Column {
        self.column
    }

    pub fn len(&self) -> usize {
        self.column.len()
    }

    pub fn is_empty(&self) -> bool {
        self.column.is_empty()
    }

    /// `leftfetchjoin`: gather tail values in the OID order given by `idx`.
    pub fn take(&self, idx: &[usize]) -> Bat {
        Bat {
            name: self.name.clone(),
            column: self.column.take(idx),
        }
    }
}

/// Compute the stable sort permutation of rows ordered lexicographically by
/// the given columns (the paper's ascending order on the order schema `U`).
///
/// Returns `perm` such that `perm[k]` is the OID of the `k`-th row in sorted
/// order — applying `take(&perm)` to every BAT of the relation yields the
/// sorted relation.
///
/// Data that is already sorted is detected in a single O(n) pass (MonetDB
/// tracks a sortedness property on BATs for the same reason) and the
/// identity permutation is returned without sorting.
pub fn sort_permutation(columns: &[&Column]) -> Vec<usize> {
    let n = columns.first().map_or(0, |c| c.len());
    debug_assert!(columns.iter().all(|c| c.len() == n));
    let mut perm: Vec<usize> = (0..n).collect();
    if is_sorted_by(columns) {
        return perm;
    }
    perm.sort_by(|&a, &b| cmp_rows(columns, a, b));
    perm
}

/// Is the relation already in ascending lexicographic order on `columns`?
pub fn is_sorted_by(columns: &[&Column]) -> bool {
    let n = columns.first().map_or(0, |c| c.len());
    (1..n).all(|i| cmp_rows(columns, i - 1, i) != Ordering::Greater)
}

/// Is `perm` the identity permutation?
pub fn is_identity_permutation(perm: &[usize]) -> bool {
    perm.iter().enumerate().all(|(k, &p)| k == p)
}

/// Lexicographic comparison of two rows across a column list.
pub fn cmp_rows(columns: &[&Column], a: usize, b: usize) -> Ordering {
    for c in columns {
        match c.cmp_rows(a, b) {
            Ordering::Equal => continue,
            other => return other,
        }
    }
    Ordering::Equal
}

/// Check whether the given columns form a key (no duplicate row in the
/// projection). Runs in O(n log n) via the sort permutation.
pub fn is_key(columns: &[&Column]) -> bool {
    if columns.is_empty() {
        return columns.iter().all(|c| c.len() <= 1);
    }
    let perm = sort_permutation(columns);
    perm.windows(2)
        .all(|w| cmp_rows(columns, w[0], w[1]) != Ordering::Equal)
}

/// Inverse of a permutation: `inv[perm[k]] = k`.
pub fn invert_permutation(perm: &[usize]) -> Vec<usize> {
    let mut inv = vec![0usize; perm.len()];
    for (k, &p) in perm.iter().enumerate() {
        inv[p] = k;
    }
    inv
}

/// Vectorised float BAT kernels (the operations Algorithm 2 reduces to).
pub mod float_ops {
    use super::*;

    fn binary(a: &Column, b: &Column, f: impl Fn(f64, f64) -> f64) -> Result<Column, StorageError> {
        if a.len() != b.len() {
            return Err(StorageError::LengthMismatch {
                left: a.len(),
                right: b.len(),
            });
        }
        let (av, bv) = (a.to_f64_vec()?, b.to_f64_vec()?);
        let out: Vec<f64> = av.iter().zip(&bv).map(|(&x, &y)| f(x, y)).collect();
        Ok(Column::new(ColumnData::Float(out)))
    }

    /// `B1 + B2`.
    pub fn add(a: &Column, b: &Column) -> Result<Column, StorageError> {
        binary(a, b, |x, y| x + y)
    }

    /// `B1 - B2`.
    pub fn sub(a: &Column, b: &Column) -> Result<Column, StorageError> {
        binary(a, b, |x, y| x - y)
    }

    /// `B1 * B2` (element-wise).
    pub fn mul(a: &Column, b: &Column) -> Result<Column, StorageError> {
        binary(a, b, |x, y| x * y)
    }

    /// `B1 / B2` (element-wise).
    pub fn div(a: &Column, b: &Column) -> Result<Column, StorageError> {
        binary(a, b, |x, y| x / y)
    }

    /// `B / v` — divide every element by a scalar.
    pub fn div_scalar(a: &Column, v: f64) -> Result<Column, StorageError> {
        let av = a.to_f64_vec()?;
        Ok(Column::new(ColumnData::Float(
            av.iter().map(|&x| x / v).collect(),
        )))
    }

    /// `B1 - B2 * v` — fused multiply-subtract against a scalar, the inner
    /// step of Gauss-Jordan elimination over BATs.
    pub fn sub_scaled(a: &Column, b: &Column, v: f64) -> Result<Column, StorageError> {
        binary(a, b, move |x, y| x - y * v)
    }

    /// `sum(B)`.
    pub fn sum(a: &Column) -> Result<f64, StorageError> {
        Ok(a.to_f64_vec()?.iter().sum())
    }

    /// `sel(B, i)`: single-element access (the only point access Algorithm 2
    /// needs).
    pub fn sel(a: &Column, i: usize) -> Result<f64, StorageError> {
        let v = a.to_f64_vec()?;
        Ok(v[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn strcol(vals: &[&str]) -> Column {
        Column::from(vals.to_vec())
    }

    #[test]
    fn sort_permutation_single_column() {
        let c = strcol(&["8am", "7am", "5am", "6am"]);
        let perm = sort_permutation(&[&c]);
        assert_eq!(perm, vec![2, 3, 1, 0]);
        let sorted = c.take(&perm);
        assert_eq!(sorted.get(0), Value::Str("5am".into()));
        assert_eq!(sorted.get(3), Value::Str("8am".into()));
    }

    #[test]
    fn sort_permutation_lexicographic_two_columns() {
        let a = Column::from(vec![2i64, 1, 2, 1]);
        let b = strcol(&["x", "z", "a", "a"]);
        let perm = sort_permutation(&[&a, &b]);
        // rows sorted by (a, b): (1,"a")=3, (1,"z")=1, (2,"a")=2, (2,"x")=0
        assert_eq!(perm, vec![3, 1, 2, 0]);
    }

    #[test]
    fn sort_is_stable_on_ties() {
        let a = Column::from(vec![1i64, 1, 1]);
        assert_eq!(sort_permutation(&[&a]), vec![0, 1, 2]);
    }

    #[test]
    fn key_detection() {
        let unique = Column::from(vec![3i64, 1, 2]);
        assert!(is_key(&[&unique]));
        let dup = Column::from(vec![1i64, 2, 1]);
        assert!(!is_key(&[&dup]));
        // composite key: neither column alone is a key, together they are
        let a = Column::from(vec![1i64, 1, 2]);
        let b = Column::from(vec![1i64, 2, 1]);
        assert!(!is_key(&[&a]));
        assert!(is_key(&[&a, &b]));
    }

    #[test]
    fn permutation_inverse() {
        let perm = vec![2usize, 0, 3, 1];
        let inv = invert_permutation(&perm);
        assert_eq!(inv, vec![1, 3, 0, 2]);
        for (k, &p) in perm.iter().enumerate() {
            assert_eq!(inv[p], k);
        }
    }

    #[test]
    fn bat_take_is_leftfetchjoin() {
        let b = Bat::new("H", Column::from(vec![8.0f64, 6.0]));
        let g = b.take(&[1, 0]);
        assert_eq!(g.name(), "H");
        assert_eq!(g.column().get(0), Value::Float(6.0));
    }

    #[test]
    fn float_kernels() {
        let a = Column::from(vec![1.0f64, 2.0, 3.0]);
        let b = Column::from(vec![10.0f64, 20.0, 30.0]);
        assert_eq!(
            float_ops::add(&a, &b).unwrap().to_f64_vec().unwrap(),
            vec![11.0, 22.0, 33.0]
        );
        assert_eq!(
            float_ops::sub(&b, &a).unwrap().to_f64_vec().unwrap(),
            vec![9.0, 18.0, 27.0]
        );
        assert_eq!(
            float_ops::mul(&a, &b).unwrap().to_f64_vec().unwrap(),
            vec![10.0, 40.0, 90.0]
        );
        assert_eq!(
            float_ops::div(&b, &a).unwrap().to_f64_vec().unwrap(),
            vec![10.0, 10.0, 10.0]
        );
        assert_eq!(
            float_ops::div_scalar(&b, 10.0)
                .unwrap()
                .to_f64_vec()
                .unwrap(),
            vec![1.0, 2.0, 3.0]
        );
        assert_eq!(
            float_ops::sub_scaled(&b, &a, 2.0)
                .unwrap()
                .to_f64_vec()
                .unwrap(),
            vec![8.0, 16.0, 24.0]
        );
        assert_eq!(float_ops::sum(&a).unwrap(), 6.0);
        assert_eq!(float_ops::sel(&a, 2).unwrap(), 3.0);
    }

    #[test]
    fn float_kernel_length_mismatch() {
        let a = Column::from(vec![1.0f64]);
        let b = Column::from(vec![1.0f64, 2.0]);
        assert!(matches!(
            float_ops::add(&a, &b),
            Err(StorageError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn float_kernels_widen_ints() {
        let a = Column::from(vec![1i64, 2]);
        let b = Column::from(vec![0.5f64, 0.5]);
        assert_eq!(
            float_ops::add(&a, &b).unwrap().to_f64_vec().unwrap(),
            vec![1.5, 2.5]
        );
    }

    #[test]
    fn renamed_is_schema_only() {
        let b = Bat::new("a", Column::from(vec![1i64]));
        let r = b.renamed("b");
        assert_eq!(r.name(), "b");
        assert_eq!(r.column(), b.column());
    }
}
