//! Per-column statistics for cost-based query optimization.
//!
//! A [`ColumnStats`] summarises one column: how many rows are null, an
//! estimate of the number of distinct values, and the minimum/maximum
//! value. The plan-level optimizer turns these into predicate
//! selectivities and join cardinality estimates (see
//! `rma_core::plan::stats`), so the quality bar is "right order of
//! magnitude", not exactness — distinct counts over large columns are
//! estimated from an evenly spaced sample rather than a full hash of the
//! column.

use crate::column::{Column, ColumnData};
use crate::encoding::Seg;
use crate::value::Value;
use std::collections::HashSet;
use std::hash::Hash;

/// Columns at or below this row count are hashed exactly; larger columns
/// estimate their distinct count from a [`SAMPLE_SIZE`] sample.
const EXACT_LIMIT: usize = 4096;

/// Number of evenly spaced rows sampled from a large column.
const SAMPLE_SIZE: usize = 1024;

/// Summary statistics of one column, computed by [`ColumnStats::compute`].
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    /// Total rows, including nulls.
    pub row_count: usize,
    /// Number of null rows (exact — read off the validity bitmap).
    pub null_count: usize,
    /// Estimated number of distinct non-null values. Exact for columns of
    /// at most `EXACT_LIMIT` (4096) rows, sample-based above that; always within
    /// `1..=row_count - null_count` for non-empty columns.
    pub distinct: usize,
    /// Smallest non-null value (`None` for all-null or empty columns).
    pub min: Option<Value>,
    /// Largest non-null value (`None` for all-null or empty columns).
    pub max: Option<Value>,
}

impl ColumnStats {
    /// Compute statistics for a column: an O(n) min/max and null scan, plus
    /// either an exact distinct count (small columns) or a sample-based
    /// estimate (large columns).
    pub fn compute(col: &Column) -> ColumnStats {
        let row_count = col.len();
        let null_count = col.null_count();
        let non_null = row_count - null_count;
        if non_null == 0 {
            return ColumnStats {
                row_count,
                null_count,
                distinct: 0,
                min: None,
                max: None,
            };
        }
        // encoded, null-free columns are summarised from their encoded
        // form (dictionary tables and run segments carry the answer
        // almost directly) — no decode, no sink
        if null_count == 0 {
            if let Some(stats) = compute_encoded(col, row_count) {
                return stats;
            }
        }
        let is_null = |i: usize| col.is_null(i);
        let (distinct, min_i, max_i) = match col.data() {
            ColumnData::Int(v) => scan(v, non_null, &is_null, |x| *x),
            ColumnData::Float(v) => scan(v, non_null, &is_null, |x| x.to_bits()),
            ColumnData::Str(v) => scan(v, non_null, &is_null, |x| x.clone()),
            ColumnData::Bool(v) => scan(v, non_null, &is_null, |x| *x),
            ColumnData::Date(v) => scan(v, non_null, &is_null, |x| *x),
            _ => unreachable!("Column::data() returns plain storage"),
        };
        ColumnStats {
            row_count,
            null_count,
            distinct,
            min: min_i.map(|i| col.get(i)),
            max: max_i.map(|i| col.get(i)),
        }
    }

    /// Fraction of rows that are null (0 for an empty column).
    pub fn null_fraction(&self) -> f64 {
        if self.row_count == 0 {
            return 0.0;
        }
        self.null_count as f64 / self.row_count as f64
    }
}

/// Statistics straight off an encoded, null-free column — dictionaries
/// and run segments summarise without decoding. Returns `None` for plain
/// (or unhandled) storage, which takes the full scan below.
fn compute_encoded(col: &Column, row_count: usize) -> Option<ColumnStats> {
    let (distinct, min, max) = match col.raw() {
        ColumnData::DictStr(d) => {
            // the table is sorted, so the smallest/largest *used* codes
            // give exact bounds; counting used codes gives exact ndv
            // (gathers can leave table entries unused)
            let mut used = vec![false; d.values().len()];
            for &c in d.codes() {
                used[c as usize] = true;
            }
            let mut first = None;
            let mut last = None;
            let mut count = 0usize;
            for (c, &u) in used.iter().enumerate() {
                if u {
                    count += 1;
                    first.get_or_insert(c);
                    last = Some(c);
                }
            }
            (
                count,
                first.map(|c| Value::Str(d.values()[c].clone())),
                last.map(|c| Value::Str(d.values()[c].clone())),
            )
        }
        ColumnData::RleInt(r) => {
            let mut seen: HashSet<i64> = HashSet::new();
            let mut lo: Option<i64> = None;
            let mut hi: Option<i64> = None;
            for s in r.segs() {
                let mut visit = |x: i64| {
                    seen.insert(x);
                    lo = Some(lo.map_or(x, |l| l.min(x)));
                    hi = Some(hi.map_or(x, |h| h.max(x)));
                };
                match s {
                    Seg::Run { value, .. } => visit(*value),
                    Seg::Dense(v) => v.iter().for_each(|&x| visit(x)),
                }
            }
            (seen.len(), lo.map(Value::Int), hi.map(Value::Int))
        }
        ColumnData::RleFloat(r) => {
            let mut seen: HashSet<u64> = HashSet::new();
            let mut lo: Option<f64> = None;
            let mut hi: Option<f64> = None;
            for s in r.segs() {
                let mut visit = |x: f64| {
                    seen.insert(x.to_bits());
                    if !x.is_nan() {
                        lo = Some(lo.map_or(x, |l| l.min(x)));
                        hi = Some(hi.map_or(x, |h| h.max(x)));
                    }
                };
                match s {
                    Seg::Run { value, .. } => visit(*value),
                    Seg::Dense(v) => v.iter().for_each(|&x| visit(x)),
                }
            }
            (seen.len(), lo.map(Value::Float), hi.map(Value::Float))
        }
        ColumnData::PackedInt(p) => {
            // point access is O(1): mirror the plain exact/sampled split
            let n = p.len();
            let mut lo = p.get(0);
            let mut hi = lo;
            for i in 1..n {
                let x = p.get(i);
                lo = lo.min(x);
                hi = hi.max(x);
            }
            let distinct = if n <= EXACT_LIMIT {
                let seen: HashSet<i64> = (0..n).map(|i| p.get(i)).collect();
                seen.len()
            } else {
                let stride = n / SAMPLE_SIZE;
                let seen: HashSet<i64> = (0..n).step_by(stride).map(|i| p.get(i)).collect();
                let sampled = n.div_ceil(stride);
                estimate_distinct(seen.len(), sampled, n)
            };
            (distinct, Some(Value::Int(lo)), Some(Value::Int(hi)))
        }
        _ => return None,
    };
    Some(ColumnStats {
        row_count,
        null_count: 0,
        distinct,
        min,
        max,
    })
}

/// One pass over the typed values: min/max row indices (by [`Value`] total
/// order via the native `Ord`/`total_cmp` of each variant) plus the
/// distinct estimate. Returns `(distinct, min_index, max_index)`.
fn scan<T, K: Eq + Hash>(
    vals: &[T],
    non_null: usize,
    is_null: &impl Fn(usize) -> bool,
    key: impl Fn(&T) -> K,
) -> (usize, Option<usize>, Option<usize>)
where
    T: PartialOrd,
{
    // min/max: full scan (cheap, branch-predictable)
    let mut min_i: Option<usize> = None;
    let mut max_i: Option<usize> = None;
    for (i, x) in vals.iter().enumerate() {
        if is_null(i) {
            continue;
        }
        // skip values with no defined order (float NaN): they must never
        // become a bound, and in particular must not poison min/max by
        // arriving first (`less(_, NaN)` is always false)
        if x.partial_cmp(x).is_none() {
            continue;
        }
        match min_i {
            None => {
                min_i = Some(i);
                max_i = Some(i);
            }
            Some(m) => {
                if less(x, &vals[m]) {
                    min_i = Some(i);
                }
                if less(&vals[max_i.unwrap()], x) {
                    max_i = Some(i);
                }
            }
        }
    }
    // distinct: exact hash for small columns, evenly spaced sample above
    let n = vals.len();
    let distinct = if n <= EXACT_LIMIT {
        let mut seen = HashSet::with_capacity(non_null.min(EXACT_LIMIT));
        for (i, x) in vals.iter().enumerate() {
            if !is_null(i) {
                seen.insert(key(x));
            }
        }
        seen.len()
    } else {
        let stride = n / SAMPLE_SIZE;
        let mut seen = HashSet::with_capacity(SAMPLE_SIZE);
        let mut sampled = 0usize;
        let mut i = 0;
        while i < n {
            if !is_null(i) {
                seen.insert(key(&vals[i]));
                sampled += 1;
            }
            i += stride;
        }
        estimate_distinct(seen.len(), sampled, non_null)
    };
    (distinct, min_i, max_i)
}

/// `PartialOrd` comparison treating incomparable pairs (float NaN) as not
/// less — NaN then never replaces an established min/max, matching the
/// "NaN sorts last" convention well enough for estimates.
fn less<T: PartialOrd>(a: &T, b: &T) -> bool {
    matches!(a.partial_cmp(b), Some(std::cmp::Ordering::Less))
}

/// Scale a sample's distinct count `d` (out of `sampled` rows) up to a
/// column of `n > 0` non-null rows.
///
/// Two regimes, switched on how saturated the sample is:
/// - `d ≤ sampled/2`: many duplicates in the sample — the value domain is
///   small and the sample has likely seen most of it; keep `d`.
/// - otherwise: mostly-unique sample — assume the ratio carries over and
///   scale linearly (`d/sampled · n`), which for an all-unique sample
///   estimates a key column (`distinct = n`).
///
/// An empty sample (every strided position was null — possible for
/// periodic null patterns) carries no duplicate evidence; assume all
/// non-null rows distinct rather than returning 0, which would violate
/// the `1..=n` invariant and collapse downstream selectivities.
fn estimate_distinct(d: usize, sampled: usize, n: usize) -> usize {
    if sampled == 0 {
        return n;
    }
    let est = if d * 2 <= sampled {
        d
    } else {
        ((d as f64 / sampled as f64) * n as f64).round() as usize
    };
    est.clamp(1, n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_small_column() {
        let c = Column::from(vec![3i64, 1, 4, 1, 5, 9, 2, 6, 5, 3]);
        let s = ColumnStats::compute(&c);
        assert_eq!(s.row_count, 10);
        assert_eq!(s.null_count, 0);
        assert_eq!(s.distinct, 7);
        assert_eq!(s.min, Some(Value::Int(1)));
        assert_eq!(s.max, Some(Value::Int(9)));
    }

    #[test]
    fn unique_key_detected() {
        let c = Column::from((0..100i64).collect::<Vec<_>>());
        let s = ColumnStats::compute(&c);
        assert_eq!(s.distinct, 100);
    }

    #[test]
    fn nulls_counted_and_excluded_from_bounds() {
        let c = Column::from_values(&[
            Value::Null,
            Value::Int(5),
            Value::Null,
            Value::Int(2),
            Value::Int(5),
        ])
        .unwrap();
        let s = ColumnStats::compute(&c);
        assert_eq!(s.null_count, 2);
        assert_eq!(s.distinct, 2);
        assert_eq!(s.min, Some(Value::Int(2)));
        assert_eq!(s.max, Some(Value::Int(5)));
        assert!((s.null_fraction() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn all_null_column() {
        let c =
            Column::from_values_typed(crate::DataType::Float, &[Value::Null, Value::Null]).unwrap();
        let s = ColumnStats::compute(&c);
        assert_eq!(s.distinct, 0);
        assert_eq!(s.min, None);
        assert_eq!(s.max, None);
    }

    #[test]
    fn sampled_key_column_estimates_full_cardinality() {
        let n = 100_000usize;
        let c = Column::from((0..n as i64).collect::<Vec<_>>());
        let s = ColumnStats::compute(&c);
        // an all-unique sample scales to "everything distinct"
        assert!(s.distinct > n * 9 / 10, "estimated {}", s.distinct);
        assert_eq!(s.min, Some(Value::Int(0)));
        assert_eq!(s.max, Some(Value::Int(n as i64 - 1)));
    }

    #[test]
    fn sampled_low_cardinality_stays_low() {
        let n = 100_000usize;
        let c = Column::from((0..n).map(|i| (i % 10) as i64).collect::<Vec<_>>());
        let s = ColumnStats::compute(&c);
        assert!(s.distinct <= 10, "estimated {}", s.distinct);
    }

    #[test]
    fn float_and_string_bounds() {
        let c = Column::from(vec![2.5f64, -1.0, 7.25]);
        let s = ColumnStats::compute(&c);
        assert_eq!(s.min, Some(Value::Float(-1.0)));
        assert_eq!(s.max, Some(Value::Float(7.25)));
        let c = Column::from(vec!["pear", "apple", "quince"]);
        let s = ColumnStats::compute(&c);
        assert_eq!(s.min, Some(Value::from("apple")));
        assert_eq!(s.max, Some(Value::from("quince")));
        assert_eq!(s.distinct, 3);
    }

    #[test]
    fn nan_never_becomes_a_bound() {
        let c = Column::from(vec![1.0f64, f64::NAN, 3.0]);
        let s = ColumnStats::compute(&c);
        assert_eq!(s.min, Some(Value::Float(1.0)));
        assert_eq!(s.max, Some(Value::Float(3.0)));
        // a leading NaN must not pin min/max either
        let c = Column::from(vec![f64::NAN, 1.0, 3.0]);
        let s = ColumnStats::compute(&c);
        assert_eq!(s.min, Some(Value::Float(1.0)));
        assert_eq!(s.max, Some(Value::Float(3.0)));
        // an all-NaN column has no usable bounds
        let c = Column::from(vec![f64::NAN, f64::NAN]);
        let s = ColumnStats::compute(&c);
        assert_eq!(s.min, None);
        assert_eq!(s.max, None);
    }

    #[test]
    fn periodic_nulls_on_sample_stride_keep_invariant() {
        // 8192 rows, nulls exactly on the stride-8 sample positions: the
        // sample sees only nulls, but distinct must stay within 1..=non_null
        let n = 8192usize;
        let stride = n / 1024; // = SAMPLE_SIZE stride used by `scan`
        let vals: Vec<Value> = (0..n)
            .map(|i| {
                if i % stride == 0 {
                    Value::Null
                } else {
                    Value::Int((i % 100) as i64)
                }
            })
            .collect();
        let c = Column::from_values(&vals).unwrap();
        let s = ColumnStats::compute(&c);
        let non_null = s.row_count - s.null_count;
        assert!(non_null > 0);
        assert!(
            (1..=non_null).contains(&s.distinct),
            "distinct {} out of 1..={}",
            s.distinct,
            non_null
        );
    }

    #[test]
    fn empty_column() {
        let c = Column::new(ColumnData::empty(crate::DataType::Int));
        let s = ColumnStats::compute(&c);
        assert_eq!(s.row_count, 0);
        assert_eq!(s.distinct, 0);
        assert_eq!(s.null_fraction(), 0.0);
    }
}
