//! Selection vectors — the candidate lists of late materialization.
//!
//! A [`SelVec`] names the rows of a base column set that an intermediate
//! result consists of, without copying them: either a contiguous row range
//! (the shape every morsel and every `LIMIT` produces) or an explicit list
//! of row indices (the shape a filter or a sort permutation produces).
//! Index lists are `Arc`-shared so cloning a view is O(1).
//!
//! This is the MonetDB candidate-list idea: operators upstream of a
//! pipeline sink exchange `(shared columns, SelVec)` pairs and only the
//! sink gathers (`Column::gather`) the surviving rows into fresh vectors.

use std::ops::Range;
use std::sync::Arc;

/// A selection over rows of a base column set: a contiguous range or an
/// explicit index list. Filters produce ascending lists; sorts produce
/// permutations — both are valid, and `gather` preserves the given order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SelVec {
    /// The contiguous row range `start..end` of the base.
    Range(Range<usize>),
    /// Explicit base row indices, in output order.
    Indices(Arc<Vec<usize>>),
}

impl SelVec {
    /// The identity selection over `len` base rows.
    pub fn all(len: usize) -> SelVec {
        SelVec::Range(0..len)
    }

    /// A selection from an explicit index list.
    pub fn from_indices(idx: Vec<usize>) -> SelVec {
        SelVec::Indices(Arc::new(idx))
    }

    /// Number of selected rows.
    pub fn len(&self) -> usize {
        match self {
            SelVec::Range(r) => r.end - r.start,
            SelVec::Indices(v) => v.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The base row index of selected position `k`. Panics when `k` is out
    /// of range — a position past the selection must fail fast, not read a
    /// base row outside the view.
    pub fn get(&self, k: usize) -> usize {
        match self {
            SelVec::Range(r) => {
                assert!(
                    k < r.end - r.start,
                    "selection position {k} out of range {}",
                    r.end - r.start
                );
                r.start + k
            }
            SelVec::Indices(v) => v[k],
        }
    }

    /// Iterate the selected base row indices in position order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.len()).map(move |k| self.get(k))
    }

    /// Is this the identity selection over a base of `base_len` rows?
    pub fn is_identity(&self, base_len: usize) -> bool {
        matches!(self, SelVec::Range(r) if r.start == 0 && r.end == base_len)
    }

    /// Restrict to the contiguous *position* window `window` (positions are
    /// indices into this selection, not the base). Range stays range;
    /// index lists copy only the window.
    pub fn slice(&self, window: Range<usize>) -> SelVec {
        debug_assert!(window.start <= window.end && window.end <= self.len());
        match self {
            SelVec::Range(r) => SelVec::Range(r.start + window.start..r.start + window.end),
            SelVec::Indices(v) => SelVec::from_indices(v[window.clone()].to_vec()),
        }
    }

    /// Compose with a list of positions: the selection whose `k`-th row is
    /// `self.get(pos[k])`. This is how lazy `take`/`filter` stack without
    /// ever building chains of views.
    pub fn compose(&self, pos: &[usize]) -> SelVec {
        match self {
            SelVec::Range(r) => SelVec::from_indices(pos.iter().map(|&p| r.start + p).collect()),
            SelVec::Indices(v) => SelVec::from_indices(pos.iter().map(|&p| v[p]).collect()),
        }
    }

    /// Compose with a keep-mask over positions: the selected base indices
    /// whose position has its flag set (the lazy σ).
    pub fn compose_mask(&self, keep: &[bool]) -> SelVec {
        debug_assert_eq!(keep.len(), self.len());
        let idx: Vec<usize> = match self {
            SelVec::Range(r) => keep
                .iter()
                .enumerate()
                .filter_map(|(p, &k)| k.then_some(r.start + p))
                .collect(),
            SelVec::Indices(v) => keep
                .iter()
                .zip(v.iter())
                .filter_map(|(&k, &i)| k.then_some(i))
                .collect(),
        };
        SelVec::from_indices(idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_basics() {
        let s = SelVec::Range(3..7);
        assert_eq!(s.len(), 4);
        assert_eq!(s.get(0), 3);
        assert_eq!(s.get(3), 6);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![3, 4, 5, 6]);
        assert!(!s.is_identity(7));
        assert!(SelVec::all(7).is_identity(7));
    }

    #[test]
    fn indices_basics() {
        let s = SelVec::from_indices(vec![5, 1, 9]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.get(1), 1);
        assert!(!s.is_identity(3));
    }

    #[test]
    fn slice_range_stays_range() {
        let s = SelVec::Range(10..20).slice(2..5);
        assert_eq!(s, SelVec::Range(12..15));
        let s = SelVec::from_indices(vec![4, 8, 15, 16]).slice(1..3);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![8, 15]);
    }

    #[test]
    fn compose_maps_positions() {
        let s = SelVec::Range(100..110);
        assert_eq!(
            s.compose(&[9, 0, 0]).iter().collect::<Vec<_>>(),
            vec![109, 100, 100]
        );
        let s = SelVec::from_indices(vec![7, 3, 5]);
        assert_eq!(s.compose(&[2, 1]).iter().collect::<Vec<_>>(), vec![5, 3]);
    }

    #[test]
    fn compose_mask_filters() {
        let s = SelVec::Range(4..8);
        let f = s.compose_mask(&[true, false, false, true]);
        assert_eq!(f.iter().collect::<Vec<_>>(), vec![4, 7]);
        let f2 = f.compose_mask(&[false, true]);
        assert_eq!(f2.iter().collect::<Vec<_>>(), vec![7]);
    }

    #[test]
    fn empty_selection() {
        let s = SelVec::from_indices(Vec::new());
        assert!(s.is_empty());
        assert_eq!(SelVec::Range(2..2).len(), 0);
    }
}
