//! Storage-layer error type.

use crate::value::DataType;
use std::fmt;

/// Errors produced by the column store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// Two columns/bitmaps that must align have different lengths.
    LengthMismatch { left: usize, right: usize },
    /// A value of the wrong type was pushed into a column.
    TypeMismatch {
        expected: DataType,
        found: Option<DataType>,
    },
    /// A column of only nulls cannot infer its type.
    UntypedColumn,
    /// A null reached a numeric-only context (matrix construction).
    NullInNumericContext,
    /// An operation needed a numeric column but got something else.
    NonNumeric { found: DataType },
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::LengthMismatch { left, right } => {
                write!(f, "column length mismatch: {left} vs {right}")
            }
            StorageError::TypeMismatch { expected, found } => match found {
                Some(found) => write!(f, "type mismatch: expected {expected}, found {found}"),
                None => write!(f, "type mismatch: expected {expected}, found NULL"),
            },
            StorageError::UntypedColumn => {
                f.write_str("cannot infer type of a column containing only NULLs")
            }
            StorageError::NullInNumericContext => {
                f.write_str("NULL value in numeric context (matrix cells cannot be NULL)")
            }
            StorageError::NonNumeric { found } => {
                write!(f, "numeric column required, found {found}")
            }
        }
    }
}

impl std::error::Error for StorageError {}
