//! # rma-storage — BAT column store
//!
//! The storage kernel of the RMA reproduction: typed columns with optional
//! null bitmaps, named BATs with virtual OID heads, sort permutations,
//! gather (`leftfetchjoin`), vectorised float kernels, and per-column
//! compressed encodings (RLE / dictionary / bit-packing) with a typed,
//! encoding-aware accessor surface so kernels run on the encoded form.
//!
//! This crate plays the role MonetDB's kernel plays in the paper: everything
//! above it (relational algebra, relational matrix algebra, SQL) is compiled
//! down to bulk operations on [`Bat`]s.

#![warn(missing_docs)]
#![allow(missing_docs)] // enforced at item granularity below where practical

pub mod access;
pub mod bat;
pub mod bitmap;
pub mod column;
pub mod encoding;
pub mod error;
pub mod selvec;
pub mod stats;
pub mod value;

pub use access::{ColumnAccessor, FloatsRef, IntsRef, StrsRef};
pub use bat::{
    cmp_rows, invert_permutation, is_identity_permutation, is_key, is_sorted_by, sort_permutation,
    Bat,
};
pub use bitmap::Bitmap;
pub use column::{Column, ColumnData};
pub use encoding::{decode_sink_events, Dict, Encoding, Packed, Rle, Seg};
pub use error::StorageError;
pub use selvec::SelVec;
pub use stats::ColumnStats;
pub use value::{DataType, Value};
