//! # rma-storage — BAT column store
//!
//! The storage kernel of the RMA reproduction: typed columns with optional
//! null bitmaps, named BATs with virtual OID heads, sort permutations,
//! gather (`leftfetchjoin`), vectorised float kernels, and zero-run
//! compression.
//!
//! This crate plays the role MonetDB's kernel plays in the paper: everything
//! above it (relational algebra, relational matrix algebra, SQL) is compiled
//! down to bulk operations on [`Bat`]s.

#![warn(missing_docs)]
#![allow(missing_docs)] // enforced at item granularity below where practical

pub mod bat;
pub mod bitmap;
pub mod column;
pub mod compress;
pub mod error;
pub mod selvec;
pub mod stats;
pub mod value;

pub use bat::{
    cmp_rows, invert_permutation, is_identity_permutation, is_key, is_sorted_by, sort_permutation,
    Bat,
};
pub use bitmap::Bitmap;
pub use column::{Column, ColumnData};
pub use compress::CompressedFloats;
pub use error::StorageError;
pub use selvec::SelVec;
pub use stats::ColumnStats;
pub use value::{DataType, Value};
