//! Property tests of the storage kernel: sort permutations, gather,
//! encoding round-trips, and the float BAT kernels.

use proptest::prelude::*;
use rma_storage::{
    bat::float_ops, cmp_rows, encoding::rle_add_f64, invert_permutation, is_key, sort_permutation,
    Column, Dict, Encoding, Packed, Rle,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // sorting by the permutation yields a non-decreasing column
    #[test]
    fn sort_permutation_sorts(vals in proptest::collection::vec(-1000i64..1000, 0..64)) {
        let c = Column::from(vals.clone());
        let perm = sort_permutation(&[&c]);
        prop_assert_eq!(perm.len(), vals.len());
        let sorted = c.take(&perm);
        for i in 1..sorted.len() {
            prop_assert!(sorted.cmp_rows(i - 1, i) != std::cmp::Ordering::Greater);
        }
        // a permutation touches every index exactly once
        let mut seen = vec![false; perm.len()];
        for &p in &perm {
            prop_assert!(!seen[p]);
            seen[p] = true;
        }
    }

    // invert_permutation is a true inverse
    #[test]
    fn permutation_inversion(vals in proptest::collection::vec(0.0f64..1.0, 1..64)) {
        let c = Column::from(vals);
        let perm = sort_permutation(&[&c]);
        let inv = invert_permutation(&perm);
        for (k, &p) in perm.iter().enumerate() {
            prop_assert_eq!(inv[p], k);
        }
    }

    // lexicographic sorting: ties in the first column are broken by the second
    #[test]
    fn lexicographic_two_columns(
        pairs in proptest::collection::vec((0i64..4, -100i64..100), 0..48)
    ) {
        let a = Column::from(pairs.iter().map(|(x, _)| *x).collect::<Vec<i64>>());
        let b = Column::from(pairs.iter().map(|(_, y)| *y).collect::<Vec<i64>>());
        let perm = sort_permutation(&[&a, &b]);
        for w in perm.windows(2) {
            prop_assert!(cmp_rows(&[&a, &b], w[0], w[1]) != std::cmp::Ordering::Greater);
        }
    }

    // is_key agrees with a brute-force duplicate check
    #[test]
    fn key_check_agrees_with_bruteforce(vals in proptest::collection::vec(0i64..12, 0..24)) {
        let c = Column::from(vals.clone());
        let mut dedup = vals.clone();
        dedup.sort_unstable();
        dedup.dedup();
        prop_assert_eq!(is_key(&[&c]), dedup.len() == vals.len());
    }

    // RLE round-trips arbitrary data with interleaved runs
    #[test]
    fn rle_roundtrip(
        segments in proptest::collection::vec((0usize..30, -5.0f64..5.0), 0..12)
    ) {
        let mut vals = Vec::new();
        for (zeros, v) in segments {
            vals.extend(std::iter::repeat_n(0.0, zeros));
            vals.push(v);
        }
        let c = Rle::encode(&vals);
        prop_assert_eq!(c.to_vec(), vals.clone());
        prop_assert!(c.stored_values() <= vals.len().max(1));
        // point access and slices agree with the decoded form
        for (i, &v) in vals.iter().enumerate() {
            prop_assert_eq!(c.get(i), v);
        }
        let mid = vals.len() / 2;
        prop_assert_eq!(c.slice(0, mid).to_vec(), vals[..mid].to_vec());
    }

    // run-aware RLE add equals dense add
    #[test]
    fn rle_add_correct(
        a in proptest::collection::vec(prop_oneof![Just(0.0f64), -10.0..10.0], 0..128),
        b_seed in proptest::collection::vec(prop_oneof![Just(0.0f64), -10.0..10.0], 0..128),
    ) {
        let n = a.len().min(b_seed.len());
        let (a, b) = (&a[..n], &b_seed[..n]);
        let got = rle_add_f64(&Rle::encode(a), &Rle::encode(b)).to_vec();
        let expect: Vec<f64> = a.iter().zip(b).map(|(x, y)| x + y).collect();
        prop_assert_eq!(got, expect);
    }

    // dictionary encoding round-trips and preserves logical column equality
    #[test]
    fn dict_roundtrip(keys in proptest::collection::vec(0usize..6, 0..48)) {
        let vals: Vec<String> = keys.iter().map(|&k| format!("v{k}")).collect();
        let d = Dict::encode(&vals);
        prop_assert_eq!(d.to_vec(), vals.clone());
        let plain = Column::from(vals.clone());
        if let Some(enc) = plain.encode_as(Encoding::Dict) {
            prop_assert_eq!(&enc, &plain);
            // gathers through either form agree
            let idx: Vec<usize> = (0..vals.len()).rev().collect();
            prop_assert_eq!(enc.take(&idx), plain.take(&idx));
        }
    }

    // bit-packing round-trips any narrow-range data
    #[test]
    fn packed_roundtrip(vals in proptest::collection::vec(-5000i64..5000, 1..256)) {
        let p = Packed::encode(&vals).unwrap();
        prop_assert_eq!(p.to_vec(), vals.clone());
        let plain = Column::from(vals);
        let enc = plain.encode_as(Encoding::Packed).unwrap();
        prop_assert_eq!(&enc, &plain);
    }

    // float kernels agree with scalar math
    #[test]
    fn float_kernels_agree(
        a in proptest::collection::vec(-100.0f64..100.0, 1..64),
        scale in 1.0f64..10.0,
    ) {
        let b: Vec<f64> = a.iter().map(|x| x * 0.5 + 1.0).collect();
        let ca = Column::from(a.clone());
        let cb = Column::from(b.clone());
        let sum = float_ops::add(&ca, &cb).unwrap().to_f64_vec().unwrap();
        for (i, s) in sum.iter().enumerate() {
            prop_assert!((s - (a[i] + b[i])).abs() < 1e-12);
        }
        let scaled = float_ops::div_scalar(&ca, scale).unwrap().to_f64_vec().unwrap();
        for (i, s) in scaled.iter().enumerate() {
            prop_assert!((s - a[i] / scale).abs() < 1e-12);
        }
        let fused = float_ops::sub_scaled(&ca, &cb, scale).unwrap().to_f64_vec().unwrap();
        for (i, s) in fused.iter().enumerate() {
            prop_assert!((s - (a[i] - b[i] * scale)).abs() < 1e-9);
        }
        let total: f64 = a.iter().sum();
        prop_assert!((float_ops::sum(&ca).unwrap() - total).abs() < 1e-9);
    }

    // take ∘ take composes
    #[test]
    fn gather_composes(vals in proptest::collection::vec(-100i64..100, 1..32)) {
        let c = Column::from(vals);
        let n = c.len();
        let idx1: Vec<usize> = (0..n).rev().collect();
        let idx2: Vec<usize> = (0..n).step_by(2).collect();
        let two_step = c.take(&idx1).take(&idx2);
        let composed: Vec<usize> = idx2.iter().map(|&i| idx1[i]).collect();
        let one_step = c.take(&composed);
        prop_assert_eq!(two_step, one_step);
    }
}
