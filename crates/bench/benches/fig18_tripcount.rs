//! Fig. 18 — Trip count addition across systems and RMA backends.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rma_bench::{run_trip_count, trip_count_tables, SystemKind};

fn bench(c: &mut Criterion) {
    let (y1, y2) = trip_count_tables(200_000, 10, 18);
    let mut g = c.benchmark_group("fig18_tripcount");
    g.sample_size(10);
    for sys in [
        SystemKind::RmaBat,
        SystemKind::RmaMkl,
        SystemKind::Aida,
        SystemKind::R,
        SystemKind::Madlib,
    ] {
        g.bench_with_input(BenchmarkId::new("add", sys.name()), &sys, |b, &sys| {
            b.iter(|| run_trip_count(sys, &y1, &y2))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
