//! Table 4 — add over wide relations (scaled attribute sweep).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rma_core::RmaContext;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("tab4_wide");
    g.sample_size(10);
    for attrs in [100usize, 400, 1000] {
        let a = rma_data::wide_relation(1000, attrs, 4);
        let b =
            rma_relation::rename(&rma_data::wide_relation(1000, attrs, 5), &[("k0", "k")]).unwrap();
        g.bench_with_input(BenchmarkId::new("add", attrs), &attrs, |bch, _| {
            bch.iter(|| RmaContext::default().add(&a, &["k0"], &b, &["k"]).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
