//! Fig. 15 — Trips OLS across systems.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rma_bench::{run_trips_ols, SystemKind};

fn bench(c: &mut Criterion) {
    let trips = rma_data::trips(40_000, 80, 15);
    let stations = rma_data::stations(80, 15 ^ 0x5a5a);
    let mut g = c.benchmark_group("fig15_trips");
    g.sample_size(10);
    for sys in [
        SystemKind::RmaAuto,
        SystemKind::RmaBat,
        SystemKind::RmaMkl,
        SystemKind::Aida,
        SystemKind::R,
        SystemKind::Madlib,
    ] {
        g.bench_with_input(BenchmarkId::new("ols", sys.name()), &sys, |b, &sys| {
            b.iter(|| run_trips_ols(sys, &trips, &stations, 20))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
