//! Fig. 16 — Journeys multiple regression across systems.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rma_bench::{run_journeys_regression, SystemKind};

fn bench(c: &mut Criterion) {
    let journeys = rma_data::journeys(60_000, 40, 16);
    let stations = rma_data::stations(40, 16 ^ 0xa5a5);
    let mut g = c.benchmark_group("fig16_journeys");
    g.sample_size(10);
    for hops in [1usize, 3] {
        for sys in [
            SystemKind::RmaAuto,
            SystemKind::Aida,
            SystemKind::R,
            SystemKind::Madlib,
        ] {
            let id = format!("{}_{hops}hops", sys.name());
            g.bench_with_input(BenchmarkId::new("regression", id), &sys, |b, &sys| {
                b.iter(|| run_journeys_regression(sys, &journeys, &stations, hops))
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
