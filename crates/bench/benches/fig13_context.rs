//! Fig. 13 — cost of maintaining contextual information: add/qqr with a
//! growing order schema, full sorting vs the optimised policies.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rma_core::{Backend, RmaContext, RmaOptions, SortPolicy};

fn ctx(sort: SortPolicy) -> RmaContext {
    RmaContext::new(RmaOptions {
        backend: Backend::Auto,
        sort_policy: sort,
        ..RmaOptions::default()
    })
}

fn bench(c: &mut Criterion) {
    let rows = 20_000;
    let mut g = c.benchmark_group("fig13_context");
    g.sample_size(10);
    for attrs in [10usize, 40, 80] {
        let r = rma_data::uniform_relation(rows, attrs, 1, 13);
        let order: Vec<String> = (0..attrs).map(|k| format!("k{k}")).collect();
        let order_refs: Vec<&str> = order.iter().map(String::as_str).collect();
        g.bench_with_input(BenchmarkId::new("qqr_full_sort", attrs), &attrs, |b, _| {
            b.iter(|| ctx(SortPolicy::Always).qqr(&r, &order_refs).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("qqr_no_sort", attrs), &attrs, |b, _| {
            b.iter(|| ctx(SortPolicy::Optimized).qqr(&r, &order_refs).unwrap())
        });
        let renames: Vec<(String, String)> = std::iter::once(("a0".to_string(), "b0".to_string()))
            .chain((0..attrs).map(|k| (format!("k{k}"), format!("j{k}"))))
            .collect();
        let refs: Vec<(&str, &str)> = renames
            .iter()
            .map(|(a, b)| (a.as_str(), b.as_str()))
            .collect();
        let s = rma_relation::rename(&r, &refs).unwrap();
        let s_order: Vec<String> = (0..attrs).map(|k| format!("j{k}")).collect();
        let s_refs: Vec<&str> = s_order.iter().map(String::as_str).collect();
        g.bench_with_input(BenchmarkId::new("add_full_sort", attrs), &attrs, |b, _| {
            b.iter(|| {
                ctx(SortPolicy::Always)
                    .add(&r, &order_refs, &s, &s_refs)
                    .unwrap()
            })
        });
        g.bench_with_input(
            BenchmarkId::new("add_relative_sort", attrs),
            &attrs,
            |b, _| {
                b.iter(|| {
                    ctx(SortPolicy::Optimized)
                        .add(&r, &order_refs, &s, &s_refs)
                        .unwrap()
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
