//! Ablation — SQL optimizer on/off for a pushdown-sensitive mixed query.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rma_sql::Engine;

fn setup() -> Engine {
    let mut e = Engine::new();
    let trips = rma_data::trips(20_000, 40, 19);
    let stations = rma_data::stations(40, 19 ^ 0x5a5a);
    e.register("trips", trips).unwrap();
    e.register("stations", stations).unwrap();
    e
}

const QUERY: &str = "SELECT name, duration FROM trips JOIN stations ON start_station = code \
                     WHERE duration > 500 AND lat > 45.5";

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_optimizer");
    g.sample_size(10);
    g.bench_function(BenchmarkId::new("pushdown", "on"), |b| {
        let mut e = setup();
        e.optimize = true;
        b.iter(|| e.query(QUERY).unwrap())
    });
    g.bench_function(BenchmarkId::new("pushdown", "off"), |b| {
        let mut e = setup();
        e.optimize = false;
        b.iter(|| e.query(QUERY).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
