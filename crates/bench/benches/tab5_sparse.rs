//! Table 5 — add over sparse relations: dense vs run-length compressed.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rma_storage::encoding::rle_add_f64;
use rma_storage::Rle;

fn bench(c: &mut Criterion) {
    let rows = 200_000;
    let mut g = c.benchmark_group("tab5_sparse");
    g.sample_size(10);
    for pct in [0u32, 50, 90] {
        let (a, b) = rma_data::sparse_pair(rows, 4, pct as f64 / 100.0, 100 + pct as u64);
        g.bench_with_input(BenchmarkId::new("rma_add", pct), &pct, |bch, _| {
            bch.iter(|| rma_core::add(&a, &["lk"], &b, &["rk"]).unwrap())
        });
        let ca: Vec<Rle<f64>> = (0..4)
            .map(|i| Rle::encode(&a.column(&format!("l{i}")).unwrap().to_f64_vec().unwrap()))
            .collect();
        let cb: Vec<Rle<f64>> = (0..4)
            .map(|i| Rle::encode(&b.column(&format!("r{i}")).unwrap().to_f64_vec().unwrap()))
            .collect();
        g.bench_with_input(BenchmarkId::new("compressed_add", pct), &pct, |bch, _| {
            bch.iter(|| {
                for (x, y) in ca.iter().zip(&cb) {
                    std::hint::black_box(rle_add_f64(x, y));
                }
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
