//! Fig. 14 — data transformation share of the dense (MKL) path per
//! operation; reported as time so Criterion can track both components.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rma_core::{Backend, RmaContext, RmaOp};

fn bench(c: &mut Criterion) {
    let rows = 50_000;
    let r = rma_data::uniform_relation(rows, 1, 50, 14);
    let renames: Vec<(String, String)> = std::iter::once(("k0".to_string(), "k".to_string()))
        .chain((0..50).map(|c| (format!("a{c}"), format!("b{c}"))))
        .collect();
    let refs: Vec<(&str, &str)> = renames
        .iter()
        .map(|(a, b)| (a.as_str(), b.as_str()))
        .collect();
    let s = rma_relation::rename(&r, &refs).unwrap();
    let mut g = c.benchmark_group("fig14_transform");
    g.sample_size(10);
    for op in [RmaOp::Add, RmaOp::Emu, RmaOp::Qqr, RmaOp::Dsv, RmaOp::Vsv] {
        g.bench_with_input(
            BenchmarkId::new("dense_path", op.name()),
            &op,
            |bch, &op| {
                bch.iter(|| {
                    let ctx = RmaContext::with_backend(Backend::Dense);
                    if op.is_binary() {
                        ctx.binary(op, &r, &["k0"], &s, &["k"]).unwrap()
                    } else {
                        ctx.unary(op, &r, &["k0"]).unwrap()
                    }
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
