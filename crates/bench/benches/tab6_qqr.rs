//! Table 6 — qqr: R simulator vs RMA+ (dense and BAT kernels).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rma_bench::{MatEngine, MatFlavor, SimTimes};
use rma_core::{Backend, RmaContext};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("tab6_qqr");
    g.sample_size(10);
    for (tuples, attrs) in [(50_000usize, 10usize), (50_000, 40)] {
        let r = rma_data::uniform_relation(tuples, 1, attrs, 6);
        let cols: Vec<String> = (0..attrs).map(|c| format!("a{c}")).collect();
        let col_refs: Vec<&str> = cols.iter().map(String::as_str).collect();
        let id = format!("{tuples}x{attrs}");
        g.bench_with_input(BenchmarkId::new("r_sim", &id), &id, |b, _| {
            b.iter(|| {
                let eng = MatEngine::new(MatFlavor::RMatrix);
                let mut t = SimTimes::default();
                let m = eng.enter(&r, &col_refs, &mut t);
                let q = rma_linalg::dense::qr(&m).unwrap().q;
                eng.exit(q, &mut t)
            })
        });
        g.bench_with_input(BenchmarkId::new("rma_dense", &id), &id, |b, _| {
            b.iter(|| {
                RmaContext::with_backend(Backend::Dense)
                    .qqr(&r, &["k0"])
                    .unwrap()
            })
        });
        g.bench_with_input(BenchmarkId::new("rma_bat", &id), &id, |b, _| {
            b.iter(|| {
                RmaContext::with_backend(Backend::Bat)
                    .qqr(&r, &["k0"])
                    .unwrap()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
