//! Table 7 — add followed by a selection: RMA+ vs the SciDB simulator.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rma_bench::{run_scidb_comparison, trip_count_tables};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("tab7_scidb");
    g.sample_size(10);
    for tuples in [20_000usize, 100_000] {
        let (a, b) = trip_count_tables(tuples, 10, 7);
        g.bench_with_input(BenchmarkId::new("both", tuples), &tuples, |bch, _| {
            bch.iter(|| run_scidb_comparison(&a, &b, 10_000.0))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
