//! Ablation — GEMM kernels: BAT column axpy vs dense blocked (threaded).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rma_linalg::dense::Matrix;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_gemm");
    g.sample_size(10);
    for n in [64usize, 256] {
        let cols: Vec<Vec<f64>> = (0..n)
            .map(|j| (0..n).map(|i| ((i * 7 + j) % 13) as f64).collect())
            .collect();
        let m = Matrix::from_columns(&cols).unwrap();
        g.bench_with_input(BenchmarkId::new("dense_blocked", n), &n, |b, _| {
            b.iter(|| rma_linalg::dense::matmul(&m, &m).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("bat_columnwise", n), &n, |b, _| {
            b.iter(|| rma_linalg::bat::mmu(&cols, &cols).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
