//! Fig. 17 — Conference covariance across systems and RMA backends.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rma_bench::{run_conferences_covariance, SystemKind};

fn bench(c: &mut Criterion) {
    let pubs = rma_data::publications(4_000, 120, 17);
    let rankings = rma_data::rankings(120, 17);
    let mut g = c.benchmark_group("fig17_conferences");
    g.sample_size(10);
    for sys in [
        SystemKind::RmaAuto,
        SystemKind::RmaBat,
        SystemKind::RmaMkl,
        SystemKind::Aida,
        SystemKind::R,
    ] {
        g.bench_with_input(
            BenchmarkId::new("covariance", sys.name()),
            &sys,
            |b, &sys| b.iter(|| run_conferences_covariance(sys, &pubs, &rankings)),
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
