//! Thread scaling of the morsel-driven parallel engine: the fixed
//! scan→select→aggregate workload at 1/2/4/8 worker threads. On multi-core
//! hardware the 4-thread point should be ≥1.5× faster than 1 thread; on a
//! single core the curve is flat (the engine then only pays morsel
//! bookkeeping).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rma_bench::{run_thread_scaling, thread_scaling_table};

fn bench(c: &mut Criterion) {
    let table = thread_scaling_table(400_000, 42);
    let mut g = c.benchmark_group("scaling_threads");
    g.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        g.bench_function(BenchmarkId::new("scan_select_aggregate", threads), |b| {
            b.iter(|| run_thread_scaling(&table, threads))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
