//! Regenerate every table and figure of the paper's evaluation (§8).
//!
//! ```text
//! reproduce [--scale N] [--check] [fig13|...|fig18|scaling|pipeline|joinorder|sort|concurrency|profile|robustness|spill|compress|all]
//! ```
//!
//! `--scale N` divides the paper's cardinalities by `N` (default 100) so a
//! full run finishes on a laptop. Absolute times differ from the paper (its
//! testbed was a 12-core Xeon with MKL); the *shapes* — who wins, by what
//! factor, where the crossovers are — are the reproduction target and are
//! recorded in EXPERIMENTS.md.
//!
//! `--check` turns the engine benches (`pipeline`, `joinorder`, `sort`)
//! into a regression gate: every emitted speedup is compared against its
//! committed floor (the `FLOOR_*` constants below) and the process exits
//! non-zero if any falls short — so a perf win, once landed, cannot
//! silently regress. Floors that require real hardware parallelism (the
//! parallel-vs-serial sort/top-k ones) are skipped, loudly, below
//! `GATE_MIN_HW` hardware threads; checksum parity is always asserted.

use rma_bench::workloads::{
    run_conferences_covariance, run_journeys_regression, run_scidb_comparison, run_trip_count,
    run_trips_ols, trip_count_tables, SystemKind,
};
use rma_core::{Backend, RmaContext, RmaOptions, SortPolicy};
use std::time::{Duration, Instant};

/// Committed speedup floors for `--check` (per bench record). Parity
/// (1.0×) is the regression line: the engine's lazy pipeline, join
/// reordering, and parallel sort/top-k must never be *slower* than the
/// baseline they replaced; typical measured values are far higher (see the
/// BENCH_*.json artifacts).
const FLOOR_PIPELINE: f64 = 1.0;
/// Reordered vs written join order at the bench's skew: floor at parity.
const FLOOR_JOINORDER: f64 = 1.0;
/// Parallel vs serial full sort (armed at ≥ `GATE_MIN_HW` hardware threads).
const FLOOR_SORT: f64 = 1.0;
/// Parallel vs serial top-k (armed at ≥ `GATE_MIN_HW` hardware threads).
/// Deliberately below parity: the gated top-k run is sub-millisecond at
/// --scale 400, so even best-of-5 minima carry scheduler noise on a shared
/// 4-vCPU runner — the floor catches real regressions (serial fallback,
/// quadratic merge), not timer jitter. The sort floor stays at parity; its
/// ~40 ms runs are stable.
const FLOOR_TOPK: f64 = 0.9;
/// Concurrent sessions vs one serial session on the serving layer (armed
/// at ≥ `GATE_MIN_HW` hardware threads). Six budget-1 session threads on a
/// ≥4-core machine typically land ≥2×; the committed floor is conservative
/// because a shared runner's spare cores are not guaranteed.
const FLOOR_CONCURRENCY: f64 = 1.2;
/// Minimum hardware threads before the parallel-vs-serial floors arm.
/// Below this the pool can be oversubscribed (workers > cores) and
/// sub-parity results are legitimate — e.g. a 2-worker sort on 1 core, or
/// a sub-millisecond top-k on a noisy 2-core shared runner — so gating
/// would only measure the scheduler.
const GATE_MIN_HW: usize = 4;

/// Tracing overhead: traced vs untraced run of the same workload,
/// expressed as a speedup (untraced / traced); the floor is the
/// "profiling overhead ≤ 5%" contract. Armed at ≥ `GATE_MIN_HW`
/// hardware threads like the other parallel floors: the workload runs on
/// the pool, and when workers outnumber cores the run-to-run scheduler
/// jitter of the ~20 ms runs exceeds the 5% band in both directions.
const FLOOR_PROFILE: f64 = 0.95;

/// Resource governance overhead: a governed query (active deadline +
/// memory budget, so every morsel claim polls the guard and every
/// materialization point charges the accountant) vs the identical
/// ungoverned query, expressed as a speedup (ungoverned / governed). The
/// floor is the "governance costs ≤ 5%" contract; the poll is one relaxed
/// atomic load per morsel and the charges are a handful of `fetch_add`s
/// per operator, so typical measured values sit at parity.
const FLOOR_ROBUSTNESS: f64 = 0.95;

/// Out-of-core throughput: a join/sort forced through the spill path by a
/// tiny budget vs the identical unbudgeted in-memory run, expressed as a
/// ratio (in-memory time / spilled time, so smaller = slower spill). Disk
/// runs are legitimately slower — partitioning writes every input row out
/// and reads it back — so this floor only catches a collapse of the spill
/// path, not a slowdown. Checksum parity is asserted unconditionally.
const FLOOR_SPILL: f64 = 0.05;

/// Storage compression on the few-distinct workload: plain bytes over
/// encoded bytes across the catalog after ingest-side encoding. The
/// workload (clustered low-cardinality strings, long integer runs, small
/// value ranges) compresses far better than 2× in practice; the committed
/// floor is the "compression pays" contract.
const FLOOR_COMPRESS_RATIO: f64 = 2.0;

/// Encoded-kernel throughput vs the identical query over plain storage
/// (plain time / encoded time). The encoded kernels — per-code dictionary
/// predicate LUTs, run-at-a-time RLE aggregation — must never be slower
/// than decode-then-run; typical measured values are well above parity.
const FLOOR_COMPRESS_SPEED: f64 = 1.0;

/// The `--check` regression gate: collects floor violations across bench
/// targets and fails the process at the end of the run.
struct Gate {
    check: bool,
    failures: Vec<String>,
    checked: usize,
    /// Floors skipped this run, as `bench — reason` lines (printed in the
    /// final summary and embedded in each bench's JSON record).
    skipped: Vec<String>,
}

impl Gate {
    /// Record one emitted speedup against its committed floor, returning
    /// the gate status for the bench's JSON record: `"checked"`,
    /// `"skipped: <reason>"`, or `"off"` outside `--check`.
    /// `needs_parallelism` marks parallel-vs-serial speedups, which are
    /// meaningless without enough cores and skipped (loudly) there.
    fn record(&mut self, bench: &str, speedup: f64, floor: f64, needs_parallelism: bool) -> String {
        if needs_parallelism && hardware_threads() < GATE_MIN_HW {
            let reason = format!(
                "needs hardware parallelism: {} hardware thread(s), need {GATE_MIN_HW}",
                hardware_threads()
            );
            if self.check {
                println!("(--check: skipping `{bench}` floor — {reason})");
                self.skipped.push(format!("{bench} — {reason}"));
            }
            return format!("skipped: {reason}");
        }
        if !self.check {
            return "off".to_string();
        }
        self.checked += 1;
        if speedup < floor {
            self.failures.push(format!(
                "{bench}: speedup {speedup:.3} below committed floor {floor:.2}"
            ));
        }
        "checked".to_string()
    }
}

fn hardware_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = 100usize;
    let mut check = false;
    let mut targets: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        if a == "--scale" {
            scale = it
                .next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| die("--scale needs a positive integer"));
            if scale == 0 {
                die("--scale must be >= 1")
            }
        } else if a == "--check" {
            check = true;
        } else {
            targets.push(a.to_lowercase());
        }
    }
    if targets.is_empty() || targets.iter().any(|t| t == "all") {
        targets = [
            "fig13",
            "tab4",
            "tab5",
            "tab6",
            "tab7",
            "fig14",
            "fig15",
            "fig16",
            "fig17",
            "fig18",
            "scaling",
            "pipeline",
            "joinorder",
            "sort",
            "concurrency",
            "profile",
            "robustness",
            "spill",
            "compress",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
    }
    let mut gate = Gate {
        check,
        failures: Vec::new(),
        checked: 0,
        skipped: Vec::new(),
    };
    println!("# RMA reproduction — scale 1/{scale} of the paper's sizes\n");
    for t in &targets {
        match t.as_str() {
            "fig13" => fig13(scale),
            "tab4" => tab4(scale),
            "tab5" => tab5(scale),
            "tab6" => tab6(scale),
            "tab7" => tab7(scale),
            "fig14" => fig14(scale),
            "fig15" => fig15(scale),
            "fig16" => fig16(scale),
            "fig17" => fig17(scale),
            "fig18" => fig18(scale),
            "scaling" => scaling(scale),
            "pipeline" => pipeline(scale, &mut gate),
            "joinorder" => joinorder(scale, &mut gate),
            "sort" => sort_bench(scale, &mut gate),
            "concurrency" => concurrency(scale, &mut gate),
            "profile" => profile(scale, &mut gate),
            "robustness" => robustness(scale, &mut gate),
            "spill" => spill_bench(scale, &mut gate),
            "compress" => compress_bench(scale, &mut gate),
            other => eprintln!("unknown target `{other}` (skipped)"),
        }
    }
    if check {
        if !gate.failures.is_empty() {
            for f in &gate.failures {
                eprintln!("--check FAILED: {f}");
            }
            std::process::exit(1);
        } else if gate.checked == 0 {
            // a green gate that verified nothing must say so
            println!(
                "--check: no floors checked ({} skipped; did the run include a gated bench?)",
                gate.skipped.len()
            );
        } else {
            println!(
                "--check: {} floor(s) at or above their committed values ({} skipped)",
                gate.checked,
                gate.skipped.len()
            );
        }
        for s in &gate.skipped {
            println!("--check: skipped {s}");
        }
    }
}

/// Best-of-N timing for gated benches: minima are far more stable than
/// single runs on shared CI machines, which matters because `--check`
/// compares each speedup against a hard floor. Asserts the checksum is
/// identical across repeats.
fn best_of(reps: usize, f: &dyn Fn() -> (Duration, i64)) -> (Duration, i64) {
    let (mut best_t, check) = f();
    for _ in 1..reps {
        let (t, c) = f();
        assert_eq!(c, check, "bench checksum diverged between repeats");
        best_t = best_t.min(t);
    }
    (best_t, check)
}

fn die(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(2)
}

fn secs(d: Duration) -> String {
    format!("{:.4}", d.as_secs_f64())
}

fn ctx(sort: SortPolicy) -> RmaContext {
    RmaContext::new(RmaOptions {
        backend: Backend::Auto,
        sort_policy: sort,
        ..RmaOptions::default()
    })
}

/// Fig. 13: cost of maintaining contextual information — add and qqr over
/// relations with one application column and many order columns, sorted vs
/// optimised.
fn fig13(scale: usize) {
    println!("## Figure 13 — handling contextual information");
    for (rows, attr_points) in [
        (100_000 / scale.max(1), vec![200usize, 400, 600, 800, 1000]),
        (1_000_000 / scale.max(1), vec![20, 40, 60, 80, 100]),
    ] {
        let rows = rows.max(100);
        println!("### {rows} tuples");
        println!(
            "{:>8} {:>12} {:>16} {:>12} {:>16}",
            "#order", "add(s)", "add rel-sort(s)", "qqr(s)", "qqr no-sort(s)"
        );
        for &attrs in &attr_points {
            let r = rma_data::uniform_relation(rows, attrs, 1, 13);
            let s = {
                let renames: Vec<(String, String)> =
                    std::iter::once(("a0".to_string(), "b0".to_string()))
                        .chain((0..attrs).map(|k| (format!("k{k}"), format!("j{k}"))))
                        .collect();
                let refs: Vec<(&str, &str)> = renames
                    .iter()
                    .map(|(a, b)| (a.as_str(), b.as_str()))
                    .collect();
                rma_relation::rename(&r, &refs).expect("rename")
            };
            let order: Vec<String> = (0..attrs).map(|k| format!("k{k}")).collect();
            let order_refs: Vec<&str> = order.iter().map(String::as_str).collect();
            let s_order: Vec<String> = (0..attrs).map(|k| format!("j{k}")).collect();
            let s_order_refs: Vec<&str> = s_order.iter().map(String::as_str).collect();

            let t = Instant::now();
            ctx(SortPolicy::Always)
                .add(&r, &order_refs, &s, &s_order_refs)
                .expect("add");
            let add_full = t.elapsed();
            let t = Instant::now();
            ctx(SortPolicy::Optimized)
                .add(&r, &order_refs, &s, &s_order_refs)
                .expect("add");
            let add_rel = t.elapsed();
            let t = Instant::now();
            ctx(SortPolicy::Always).qqr(&r, &order_refs).expect("qqr");
            let qqr_full = t.elapsed();
            let t = Instant::now();
            ctx(SortPolicy::Optimized)
                .qqr(&r, &order_refs)
                .expect("qqr");
            let qqr_skip = t.elapsed();
            println!(
                "{attrs:>8} {:>12} {:>16} {:>12} {:>16}",
                secs(add_full),
                secs(add_rel),
                secs(qqr_full),
                secs(qqr_skip)
            );
        }
    }
    println!();
}

/// Table 4: add over wide relations (1K–10K application attributes).
fn tab4(scale: usize) {
    println!("## Table 4 — add over wide relations");
    let rows = 1000usize;
    let max_attrs = (10_000 / scale.max(1)).max(100);
    let step = max_attrs / 10;
    println!("{:>8} {:>10}", "#attr", "sec");
    let mut attrs = step;
    while attrs <= max_attrs {
        let (a, b) = wide_pair(rows, attrs);
        let t = Instant::now();
        ctx(SortPolicy::Optimized)
            .add(&a, &["k0"], &b, &["k"])
            .expect("add");
        println!("{attrs:>8} {:>10}", secs(t.elapsed()));
        attrs += step;
    }
    println!();
}

fn wide_pair(rows: usize, attrs: usize) -> (rma_relation::Relation, rma_relation::Relation) {
    let a = rma_data::wide_relation(rows, attrs, 4);
    let b = rma_data::wide_relation(rows, attrs, 5);
    let b = rma_relation::rename(&b, &[("k0", "k")]).expect("rename");
    (a, b)
}

/// Table 5: add over sparse relations, zero share 0%–100%.
fn tab5(scale: usize) {
    println!("## Table 5 — add over sparse relations (zero-run compressed)");
    let rows = (5_000_000 / scale.max(1)).max(10_000);
    println!("{:>6} {:>12} {:>14}", "%zero", "dense(s)", "compressed(s)");
    for pct in (0..=100).step_by(10) {
        let (a, b) = rma_data::sparse_pair(rows, 10, pct as f64 / 100.0, 100 + pct as u64);
        // dense columnar add through RMA
        let t = Instant::now();
        ctx(SortPolicy::Optimized)
            .add(&a, &["lk"], &b, &["rk"])
            .expect("add");
        let dense = t.elapsed();
        // compressed add on the storage layer (MonetDB's compression role)
        let t = Instant::now();
        let mut compressed_total = Duration::ZERO;
        for c in 0..10 {
            let ca = a
                .column(&format!("l{c}"))
                .expect("col")
                .to_f64_vec()
                .expect("num");
            let cb = b
                .column(&format!("r{c}"))
                .expect("col")
                .to_f64_vec()
                .expect("num");
            let ca = rma_storage::Rle::encode(&ca);
            let cb = rma_storage::Rle::encode(&cb);
            let t2 = Instant::now();
            std::hint::black_box(rma_storage::encoding::rle_add_f64(&ca, &cb));
            compressed_total += t2.elapsed();
        }
        let _ = t.elapsed();
        println!(
            "{pct:>6} {:>12} {:>14}",
            secs(dense),
            secs(compressed_total)
        );
    }
    println!();
}

/// Table 6: qqr — R simulator vs RMA+ across sizes.
fn tab6(scale: usize) {
    println!("## Table 6 — qqr runtimes, R vs RMA+");
    println!(
        "{:>10} {:>6} {:>10} {:>10} {:>12}",
        "tuples", "attrs", "R(s)", "RMA+(s)", "RMA+ kernel"
    );
    for tuples in [5_000_000 / scale.max(1), 50_000_000 / scale.max(1)] {
        let tuples = tuples.max(10_000);
        for attrs in [10usize, 40, 70] {
            let r = rma_data::uniform_relation(tuples, 1, attrs, 6);
            // R: copy into row-major matrix, Householder QR, copy back
            let eng = rma_bench::MatEngine::new(rma_bench::MatFlavor::RMatrix);
            let cols: Vec<String> = (0..attrs).map(|c| format!("a{c}")).collect();
            let col_refs: Vec<&str> = cols.iter().map(String::as_str).collect();
            let mut times = rma_bench::SimTimes::default();
            let t = Instant::now();
            let m = eng.enter(&r, &col_refs, &mut times);
            let q = rma_linalg::dense::qr(&m).expect("qr").q;
            eng.exit(q, &mut times);
            let r_time = t.elapsed();
            // RMA+: auto policy decides dense vs BAT by the memory budget
            let c = ctx(SortPolicy::Optimized);
            let t = Instant::now();
            c.qqr(&r, &["k0"]).expect("qqr");
            let rma_time = t.elapsed();
            let kernel = match c.stats().last_kernel {
                Some(rma_core::KernelUsed::Bat) => "BAT",
                _ => "MKL",
            };
            println!(
                "{tuples:>10} {attrs:>6} {:>10} {:>10} {:>12}",
                secs(r_time),
                secs(rma_time),
                kernel
            );
        }
    }
    println!();
}

/// Table 7: add followed by a selection — RMA+ vs the SciDB simulator.
fn tab7(scale: usize) {
    println!("## Table 7 — add + selection, RMA+ vs SciDB");
    println!(
        "{:>10} {:>10} {:>10} {:>8}",
        "tuples", "RMA+(s)", "SciDB(s)", "ratio"
    );
    for tuples in [1_000_000, 5_000_000, 10_000_000, 15_000_000] {
        let tuples = (tuples / scale.max(1)).max(10_000);
        let (a, b) = trip_count_tables(tuples, 10, 7);
        let (rma_t, scidb_t, _, _) = run_scidb_comparison(&a, &b, 10_000.0);
        println!(
            "{tuples:>10} {:>10} {:>10} {:>8.1}",
            secs(rma_t),
            secs(scidb_t),
            scidb_t.as_secs_f64() / rma_t.as_secs_f64()
        );
    }
    println!();
}

/// Fig. 14: share of runtime spent on data transformation.
fn fig14(scale: usize) {
    println!("## Figure 14 — data transformation share (%)");
    let ops: [(&str, rma_core::RmaOp); 6] = [
        ("ADD", rma_core::RmaOp::Add),
        ("EMU", rma_core::RmaOp::Emu),
        ("MMU", rma_core::RmaOp::Mmu),
        ("QQR", rma_core::RmaOp::Qqr),
        ("DSV", rma_core::RmaOp::Dsv),
        ("VSV", rma_core::RmaOp::Vsv),
    ];
    for rows in [
        100_000 / scale.max(1),
        300_000 / scale.max(1),
        500_000 / scale.max(1),
    ] {
        let rows = rows.max(2_000);
        let r = rma_data::uniform_relation(rows, 1, 50, 14);
        let s = {
            let mut renames = vec![("k0".to_string(), "k".to_string())];
            renames.extend((0..50).map(|c| (format!("a{c}"), format!("b{c}"))));
            let refs: Vec<(&str, &str)> = renames
                .iter()
                .map(|(a, b)| (a.as_str(), b.as_str()))
                .collect();
            rma_relation::rename(&r, &refs).expect("rename")
        };
        print!("{rows:>9} rows: ");
        for (name, op) in ops {
            let c = RmaContext::with_backend(Backend::Dense);
            match op {
                rma_core::RmaOp::Add | rma_core::RmaOp::Emu => {
                    c.binary(op, &r, &["k0"], &s, &["k"]).expect("binary");
                }
                rma_core::RmaOp::Mmu => {
                    // square 50×50 second operand: r's app columns (50) must
                    // match s2's tuple count
                    let s2 = rma_data::uniform_relation(50, 1, 50, 15);
                    c.binary(op, &r, &["k0"], &s2, &["k0"]).expect("mmu");
                }
                _ => {
                    c.unary(op, &r, &["k0"]).expect("unary");
                }
            }
            let share = c.stats().transform_share() * 100.0;
            print!("{name}={share:>4.0} ");
        }
        println!();
    }
    println!("(RMA+ dense path; the BAT path has share 0 by construction)\n");
}

fn print_reports(title: &str, reports: &[rma_bench::WorkloadReport]) {
    println!("{title}");
    println!(
        "{:>10} {:>10} {:>12} {:>10} {:>10} {:>14}",
        "system", "prep(s)", "transform(s)", "matrix(s)", "total(s)", "check"
    );
    for r in reports {
        println!(
            "{:>10} {:>10} {:>12} {:>10} {:>10} {:>14.4}",
            r.system.name(),
            secs(r.prep),
            secs(r.transform),
            secs(r.matrix),
            secs(r.total()),
            r.check
        );
    }
    println!();
}

const SYSTEMS: [SystemKind; 4] = [
    SystemKind::RmaAuto,
    SystemKind::Aida,
    SystemKind::R,
    SystemKind::Madlib,
];

/// Fig. 15: trips OLS across systems and RMA backends.
fn fig15(scale: usize) {
    println!("## Figure 15 — Trips (ordinary linear regression)");
    for millions in [3.1f64, 6.5, 10.5, 14.5] {
        let n = ((millions * 1e6) as usize / scale.max(1)).max(20_000);
        let trips = rma_data::trips(n, 120, 15);
        let stations = rma_data::stations(120, 15 ^ 0x5a5a);
        let mut reports: Vec<_> = SYSTEMS
            .iter()
            .map(|&s| run_trips_ols(s, &trips, &stations, 50))
            .collect();
        reports.push(run_trips_ols(SystemKind::RmaBat, &trips, &stations, 50));
        reports.push(run_trips_ols(SystemKind::RmaMkl, &trips, &stations, 50));
        print_reports(&format!("### {n} trips"), &reports);
    }
}

/// Fig. 16: journeys multiple regression.
fn fig16(scale: usize) {
    println!("## Figure 16 — Journeys (multiple linear regression)");
    let n = (15_000_000 / scale.max(1)).max(30_000);
    let journeys = rma_data::journeys(n, 60, 16);
    let stations = rma_data::stations(60, 16 ^ 0xa5a5);
    for hops in 1..=5usize {
        let mut reports: Vec<_> = SYSTEMS
            .iter()
            .map(|&s| run_journeys_regression(s, &journeys, &stations, hops))
            .collect();
        reports.push(run_journeys_regression(
            SystemKind::RmaBat,
            &journeys,
            &stations,
            hops,
        ));
        reports.push(run_journeys_regression(
            SystemKind::RmaMkl,
            &journeys,
            &stations,
            hops,
        ));
        print_reports(&format!("### journeys of {hops} trip(s)"), &reports);
    }
}

/// Fig. 17: conference covariance.
fn fig17(scale: usize) {
    println!("## Figure 17 — Conferences (covariance)");
    let sizes = [
        (337_363usize, 266usize),
        (550_085, 519),
        (722_891, 744),
        (876_559, 882),
    ];
    for (authors, confs) in sizes {
        let authors = (authors / scale.max(1)).max(2_000);
        let confs = (confs / (scale.max(1) / 10).max(1)).clamp(30, 900);
        let pubs = rma_data::publications(authors, confs, 17);
        let rankings = rma_data::rankings(confs, 17);
        let mut reports: Vec<_> = [SystemKind::RmaAuto, SystemKind::Aida, SystemKind::R]
            .iter()
            .map(|&s| run_conferences_covariance(s, &pubs, &rankings))
            .collect();
        reports.push(run_conferences_covariance(
            SystemKind::RmaBat,
            &pubs,
            &rankings,
        ));
        reports.push(run_conferences_covariance(
            SystemKind::RmaMkl,
            &pubs,
            &rankings,
        ));
        print_reports(
            &format!("### {authors} authors × {confs} conferences"),
            &reports,
        );
    }
}

/// Thread scaling (PR 2): the morsel-driven engine's fixed
/// scan→select→aggregate workload at 1/2/4/8 worker threads.
fn scaling(scale: usize) {
    println!("## Thread scaling — morsel-driven scan→select→aggregate");
    let rows = (40_000_000 / scale.max(1)).max(200_000);
    let table = rma_bench::thread_scaling_table(rows, 42);
    println!("### {rows} rows, 64 groups");
    println!("{:>8} {:>12} {:>10}", "threads", "time(s)", "speedup");
    // warm up (page in the table) and establish the serial baseline
    let _ = rma_bench::run_thread_scaling(&table, 1);
    let (base, check1) = rma_bench::run_thread_scaling(&table, 1);
    println!("{:>8} {:>12} {:>10.2}", 1, secs(base), 1.0);
    let mut records = vec![format!(
        "{{\"threads\": 1, \"rows\": {rows}, \"time_s\": {:.6}, \"speedup\": 1.0}}",
        base.as_secs_f64()
    )];
    for threads in [2usize, 4, 8] {
        let (t, check) = rma_bench::run_thread_scaling(&table, threads);
        assert_eq!(
            check, check1,
            "parallel result diverged at {threads} threads"
        );
        let speedup = base.as_secs_f64() / t.as_secs_f64();
        println!("{:>8} {:>12} {:>10.2}", threads, secs(t), speedup);
        records.push(format!(
            "{{\"threads\": {threads}, \"rows\": {rows}, \"time_s\": {:.6}, \"speedup\": {:.3}}}",
            t.as_secs_f64(),
            speedup
        ));
    }
    let json = format!("[\n  {}\n]\n", records.join(",\n  "));
    std::fs::write("BENCH_scaling.json", &json).expect("write BENCH_scaling.json");
    println!("(recorded in BENCH_scaling.json; target: ≥1.5× at 4 threads on a ≥4-core machine)\n");
}

/// Late materialization (PR 3): the Scan→Select→Project→Join chain at
/// 1% / 10% / 90% selectivity, eager copy-per-operator execution vs the
/// selection-vector pipeline. Emits BENCH_pipeline.json.
fn pipeline(scale: usize, gate: &mut Gate) {
    println!("## Pipeline — late materialization (Scan→Select→Project→Join)");
    let rows = (20_000_000 / scale.max(1)).max(100_000);
    let (fact, dim) = rma_bench::pipeline_tables(rows, 1000, 33);
    println!("### {rows} fact rows × 1000 dimension rows");
    println!(
        "{:>6} {:>12} {:>12} {:>8}",
        "%keep", "eager(s)", "lazy(s)", "speedup"
    );
    let mut records = Vec::new();
    for pct in [1usize, 10, 90] {
        let cutoff = (pct * 10) as i64; // f is uniform in 0..1000
                                        // warm-up pass (page in the tables), then best-of-3 per mode
        let _ = rma_bench::run_pipeline(&fact, &dim, cutoff, false);
        let (eager_t, eager_check) =
            best_of(3, &|| rma_bench::run_pipeline(&fact, &dim, cutoff, true));
        let (lazy_t, lazy_check) =
            best_of(3, &|| rma_bench::run_pipeline(&fact, &dim, cutoff, false));
        assert_eq!(
            eager_check, lazy_check,
            "eager and lazy pipelines diverged at {pct}% selectivity"
        );
        let speedup = eager_t.as_secs_f64() / lazy_t.as_secs_f64();
        println!(
            "{pct:>6} {:>12} {:>12} {speedup:>8.2}",
            secs(eager_t),
            secs(lazy_t)
        );
        let gate_status = gate.record(&format!("pipeline@{pct}%"), speedup, FLOOR_PIPELINE, false);
        records.push(format!(
            "{{\"selectivity\": {:.2}, \"rows\": {rows}, \"eager_s\": {:.6}, \"lazy_s\": {:.6}, \"speedup\": {:.3}, \"gate\": \"{gate_status}\"}}",
            pct as f64 / 100.0,
            eager_t.as_secs_f64(),
            lazy_t.as_secs_f64(),
            speedup
        ));
    }
    let json = format!("[\n  {}\n]\n", records.join(",\n  "));
    std::fs::write("BENCH_pipeline.json", &json).expect("write BENCH_pipeline.json");
    println!("(recorded in BENCH_pipeline.json; target: ≥2x at 1% selectivity)\n");
}

/// Cost-based join ordering (PR 4): the star-schema multi-join whose
/// written order joins the largest dimension first, executed with the
/// join-order enumerator off (written order) and on (cost-based order).
/// Emits BENCH_joinorder.json.
fn joinorder(scale: usize, gate: &mut Gate) {
    println!("## Join ordering — cost-based vs written order");
    let rows = (1_000_000 / scale.max(1)).max(20_000);
    let (fact, big, mid, small) = rma_bench::joinorder_tables(rows, 77);
    println!(
        "### {rows} fact rows × ({}, {}, {}) dimension rows, filter keeps ~1%",
        big.len(),
        mid.len(),
        small.len()
    );
    println!(
        "{:>6} {:>14} {:>14} {:>8}",
        "#ways", "written(s)", "reordered(s)", "speedup"
    );
    let mut records = Vec::new();
    for ways in [3usize, 4] {
        // warm-up pass (page in the tables), then best-of-3 per mode
        let _ = rma_bench::run_joinorder(&fact, &big, &mid, &small, ways, true);
        let (written_t, written_check) = best_of(3, &|| {
            rma_bench::run_joinorder(&fact, &big, &mid, &small, ways, false)
        });
        let (reordered_t, reordered_check) = best_of(3, &|| {
            rma_bench::run_joinorder(&fact, &big, &mid, &small, ways, true)
        });
        assert_eq!(
            written_check, reordered_check,
            "join reordering changed the {ways}-way result"
        );
        let speedup = written_t.as_secs_f64() / reordered_t.as_secs_f64();
        println!(
            "{ways:>6} {:>14} {:>14} {speedup:>8.2}",
            secs(written_t),
            secs(reordered_t)
        );
        let gate_status = gate.record(
            &format!("joinorder@{ways}way"),
            speedup,
            FLOOR_JOINORDER,
            false,
        );
        records.push(format!(
            "{{\"ways\": {ways}, \"rows\": {rows}, \"written_s\": {:.6}, \"reordered_s\": {:.6}, \"speedup\": {:.3}, \"gate\": \"{gate_status}\"}}",
            written_t.as_secs_f64(),
            reordered_t.as_secs_f64(),
            speedup
        ));
    }
    let json = format!("[\n  {}\n]\n", records.join(",\n  "));
    std::fs::write("BENCH_joinorder.json", &json).expect("write BENCH_joinorder.json");
    println!("(recorded in BENCH_joinorder.json; target: reordered ≥2x at 1M rows)\n");
}

/// Parallel sort / top-k (PR 5): `ORDER BY` and `ORDER BY .. LIMIT k`
/// through the lazy plan, serial (1 thread) vs the worker pool's parallel
/// sort (per-worker local sorts + k-way merge) and top-k (per-worker
/// bounded heaps merged at the barrier). Asserts checksum parity and emits
/// BENCH_sort.json.
fn sort_bench(scale: usize, gate: &mut Gate) {
    println!("## Sort — pooled parallel sort / top-k vs serial");
    let rows = (80_000_000 / scale.max(1)).max(200_000);
    let threads = rma_core::default_threads().max(2);
    let hw = hardware_threads();
    let table = rma_bench::sort_table(rows, 55);
    println!("### {rows} rows, {threads} worker threads, k = 100");
    println!(
        "{:>6} {:>12} {:>12} {:>8}",
        "op", "serial(s)", "parallel(s)", "speedup"
    );
    // warm-up pass (pages in the table, spins up the pool), then
    // best-of-5 per mode (the runs are cheap; see `best_of`)
    let mut records = Vec::new();
    {
        let _ = rma_bench::run_sort(&table, threads);
        let (serial_t, serial_check) = best_of(5, &|| rma_bench::run_sort(&table, 1));
        let (par_t, par_check) = best_of(5, &|| rma_bench::run_sort(&table, threads));
        assert_eq!(
            serial_check, par_check,
            "parallel sort result diverged from serial"
        );
        let speedup = serial_t.as_secs_f64() / par_t.as_secs_f64();
        println!(
            "{:>6} {:>12} {:>12} {speedup:>8.2}",
            "sort",
            secs(serial_t),
            secs(par_t)
        );
        let gate_status = gate.record("sort", speedup, FLOOR_SORT, true);
        records.push(format!(
            "{{\"op\": \"sort\", \"rows\": {rows}, \"threads\": {threads}, \"hardware_threads\": {hw}, \"serial_s\": {:.6}, \"parallel_s\": {:.6}, \"speedup\": {:.3}, \"checksum_match\": true, \"gate\": \"{gate_status}\"}}",
            serial_t.as_secs_f64(),
            par_t.as_secs_f64(),
            speedup
        ));
    }
    {
        let k = 100usize;
        let _ = rma_bench::run_topk(&table, threads, k);
        let (serial_t, serial_check) = best_of(5, &|| rma_bench::run_topk(&table, 1, k));
        let (par_t, par_check) = best_of(5, &|| rma_bench::run_topk(&table, threads, k));
        assert_eq!(
            serial_check, par_check,
            "parallel top-k result diverged from serial"
        );
        let speedup = serial_t.as_secs_f64() / par_t.as_secs_f64();
        println!(
            "{:>6} {:>12} {:>12} {speedup:>8.2}",
            "topk",
            secs(serial_t),
            secs(par_t)
        );
        let gate_status = gate.record("topk", speedup, FLOOR_TOPK, true);
        records.push(format!(
            "{{\"op\": \"topk\", \"rows\": {rows}, \"k\": {k}, \"threads\": {threads}, \"hardware_threads\": {hw}, \"serial_s\": {:.6}, \"parallel_s\": {:.6}, \"speedup\": {:.3}, \"checksum_match\": true, \"gate\": \"{gate_status}\"}}",
            serial_t.as_secs_f64(),
            par_t.as_secs_f64(),
            speedup
        ));
    }
    let json = format!("[\n  {}\n]\n", records.join(",\n  "));
    std::fs::write("BENCH_sort.json", &json).expect("write BENCH_sort.json");
    println!(
        "(recorded in BENCH_sort.json; target: parallel ≥{FLOOR_SORT}x serial at --scale 400+)\n"
    );
}

/// A relation of `n` rows whose only column is all ones: with it, every
/// consistent snapshot of the bench table satisfies `SUM(x) == COUNT(*)`,
/// so the per-query consistency checksum is a single equality.
fn ones(n: usize) -> rma_relation::Relation {
    rma_relation::RelationBuilder::new()
        .column("x", vec![1i64; n])
        .build()
        .expect("relation")
}

/// `(COUNT(*), SUM(x))` of the bench table through one session, asserting
/// the snapshot-consistency checksum.
fn serve_count_sum(s: &rma_core::Session) -> (i64, i64) {
    use rma_relation::AggSpec;
    let r = s
        .query(
            rma_core::Frame::table("t")
                .aggregate(&[], vec![AggSpec::count_star("n"), AggSpec::sum("x", "s")]),
        )
        .expect("aggregate");
    let n = match r.column("n").expect("n").get(0) {
        rma_storage::Value::Int(v) => v,
        other => panic!("unexpected count {other:?}"),
    };
    let sum = match r.column("s").expect("s").get(0) {
        rma_storage::Value::Int(v) => v,
        rma_storage::Value::Null => 0,
        other => panic!("unexpected sum {other:?}"),
    };
    assert_eq!(
        n, sum,
        "torn read: aggregate matches no committed generation"
    );
    (n, sum)
}

/// Concurrent serving (PR 6): N writer + M reader sessions on one server
/// vs the identical workload issued sequentially through a single session.
/// Sessions run with a budget of one seat, so the speedup isolates what
/// the serving layer adds — snapshot reads that never block on writers and
/// fair scheduling across sessions — rather than intra-query parallelism.
/// Every reader query asserts the consistency checksum (`SUM == COUNT`
/// over an all-ones column) and the final row count is the cross-run
/// checksum. Emits BENCH_concurrency.json.
fn concurrency(scale: usize, gate: &mut Gate) {
    use rma_core::serve::Server;

    const READERS: usize = 4;
    const WRITERS: usize = 2;
    const QUERIES_PER_READER: usize = 60;
    const BATCHES_PER_WRITER: usize = 30;
    const BATCH_ROWS: usize = 128;

    let rows = (8_000_000 / scale.max(1)).max(400_000);
    let inserted = WRITERS * BATCHES_PER_WRITER * BATCH_ROWS;
    let queries = READERS * QUERIES_PER_READER;
    let hw = hardware_threads();
    println!("## Serving — concurrent sessions vs one serial session");
    println!(
        "### {rows} base rows; {WRITERS} writers × {BATCHES_PER_WRITER} batches × {BATCH_ROWS} rows; {READERS} readers × {QUERIES_PER_READER} aggregate queries"
    );

    let serial_run = |rows: usize| -> (Duration, i64) {
        let server = Server::default();
        let s = server.session_with_budget(1);
        s.create_table("t", ones(rows)).expect("create");
        let t = Instant::now();
        for _ in 0..WRITERS * BATCHES_PER_WRITER {
            s.insert("t", &ones(BATCH_ROWS)).expect("insert");
        }
        for _ in 0..queries {
            serve_count_sum(&s);
        }
        let elapsed = t.elapsed();
        (elapsed, serve_count_sum(&s).0)
    };

    let concurrent_run = |rows: usize| -> (Duration, i64) {
        let server = Server::default();
        let admin = server.session_with_budget(1);
        admin.create_table("t", ones(rows)).expect("create");
        let t = Instant::now();
        std::thread::scope(|scope| {
            for _ in 0..WRITERS {
                let s = server.session_with_budget(1);
                scope.spawn(move || {
                    for _ in 0..BATCHES_PER_WRITER {
                        s.insert("t", &ones(BATCH_ROWS)).expect("insert");
                    }
                });
            }
            for _ in 0..READERS {
                let s = server.session_with_budget(1);
                scope.spawn(move || {
                    for _ in 0..QUERIES_PER_READER {
                        serve_count_sum(&s);
                    }
                });
            }
        });
        let elapsed = t.elapsed();
        (elapsed, serve_count_sum(&admin).0)
    };

    // warm-up (pages the allocator, spins up a pool), then best-of-3
    let _ = concurrent_run(rows);
    let (serial_t, serial_check) = best_of(3, &|| serial_run(rows));
    let (conc_t, conc_check) = best_of(3, &|| concurrent_run(rows));
    assert_eq!(
        serial_check, conc_check,
        "serial and concurrent runs committed different tables"
    );
    assert_eq!(serial_check, (rows + inserted) as i64, "rows went missing");
    let speedup = serial_t.as_secs_f64() / conc_t.as_secs_f64();
    println!(
        "{:>10} {:>12} {:>12} {:>8}",
        "sessions", "serial(s)", "concurrent(s)", "speedup"
    );
    println!(
        "{:>10} {:>12} {:>12} {speedup:>8.2}",
        READERS + WRITERS,
        secs(serial_t),
        secs(conc_t)
    );
    let gate_status = gate.record("concurrency", speedup, FLOOR_CONCURRENCY, true);
    let json = format!(
        "[\n  {{\"rows\": {rows}, \"readers\": {READERS}, \"writers\": {WRITERS}, \"queries\": {queries}, \"inserted_rows\": {inserted}, \"hardware_threads\": {hw}, \"serial_s\": {:.6}, \"concurrent_s\": {:.6}, \"speedup\": {:.3}, \"checksum_match\": true, \"gate\": \"{gate_status}\"}}\n]\n",
        serial_t.as_secs_f64(),
        conc_t.as_secs_f64(),
        speedup
    );
    std::fs::write("BENCH_concurrency.json", &json).expect("write BENCH_concurrency.json");
    println!(
        "(recorded in BENCH_concurrency.json; target: ≥2x on a multi-core runner, committed floor {FLOOR_CONCURRENCY}x)\n"
    );
}

/// Query profiling overhead (PR 7): the morsel-driven
/// scan→select→aggregate workload untraced vs under an active
/// [`TraceSession`](rma_core::TraceSession). The untraced run pays one
/// relaxed atomic load per instrumentation point; the traced run records
/// every operator/pool span. The committed contract is overhead ≤ 5%
/// (speedup = untraced/traced ≥ `FLOOR_PROFILE`). Emits
/// BENCH_profile.json plus the last traced run's Chrome-trace JSON
/// (BENCH_profile_trace.json — load it in Perfetto or chrome://tracing).
fn profile(scale: usize, gate: &mut Gate) {
    use std::cell::RefCell;

    println!("## Profile — span-recording overhead (untraced vs traced)");
    let rows = (20_000_000 / scale.max(1)).max(200_000);
    let threads = rma_core::default_threads().max(2);
    let table = rma_bench::thread_scaling_table(rows, 91);
    println!("### {rows} rows, {threads} worker threads, best of 5");

    // warm-up (pages in the table, spins up the pool)
    let _ = rma_bench::run_thread_scaling(&table, threads);
    let (untraced_t, untraced_check) =
        best_of(5, &|| rma_bench::run_thread_scaling(&table, threads));

    let spans: RefCell<Vec<rma_core::Span>> = RefCell::new(Vec::new());
    let (traced_t, traced_check) = best_of(5, &|| {
        let session = rma_core::TraceSession::start();
        let out = rma_bench::run_thread_scaling(&table, threads);
        *spans.borrow_mut() = session.finish();
        out
    });
    assert_eq!(untraced_check, traced_check, "tracing changed the result");
    let spans = spans.into_inner();
    assert!(!spans.is_empty(), "traced run recorded no spans");

    let speedup = untraced_t.as_secs_f64() / traced_t.as_secs_f64();
    let overhead_pct = (traced_t.as_secs_f64() / untraced_t.as_secs_f64() - 1.0) * 100.0;
    println!(
        "{:>12} {:>12} {:>10} {:>10}",
        "untraced(s)", "traced(s)", "overhead", "#spans"
    );
    println!(
        "{:>12} {:>12} {:>9.1}% {:>10}",
        secs(untraced_t),
        secs(traced_t),
        overhead_pct,
        spans.len()
    );
    let gate_status = gate.record("profile", speedup, FLOOR_PROFILE, true);

    let trace_json = rma_core::chrome_trace_json(&spans);
    std::fs::write("BENCH_profile_trace.json", &trace_json)
        .expect("write BENCH_profile_trace.json");
    let json = format!(
        "[\n  {{\"rows\": {rows}, \"threads\": {threads}, \"untraced_s\": {:.6}, \"traced_s\": {:.6}, \"speedup\": {:.3}, \"overhead_pct\": {:.2}, \"spans\": {}, \"checksum_match\": true, \"gate\": \"{gate_status}\"}}\n]\n",
        untraced_t.as_secs_f64(),
        traced_t.as_secs_f64(),
        speedup,
        overhead_pct,
        spans.len()
    );
    std::fs::write("BENCH_profile.json", &json).expect("write BENCH_profile.json");
    println!(
        "(recorded in BENCH_profile.json; traced timeline in BENCH_profile_trace.json; \
         committed floor: overhead ≤ {:.0}%)\n",
        (1.0 - FLOOR_PROFILE) * 100.0
    );
}

/// Resource governor (PR 8): the governed query path — the cooperative-
/// cancellation poll at every morsel claim plus memory accounting at
/// materialization points — against the identical ungoverned query
/// (throughput parity, floor `FLOOR_ROBUSTNESS`), and the latency of
/// cancelling a running scan from another thread (the kill must land
/// within about one morsel's work of the signal). Emits
/// BENCH_robustness.json.
fn robustness(scale: usize, gate: &mut Gate) {
    use rma_core::serve::Server;
    use rma_relation::AggSpec;
    use std::sync::Mutex;

    println!("## Robustness — governed vs ungoverned queries, cancel latency");
    let rows = (10_000_000 / scale.max(1)).max(1_000_000);
    let threads = rma_core::default_threads().max(2);
    let hw = hardware_threads();
    println!(
        "### {rows} rows, {} worker threads, best of 5 interleaved",
        rma_core::default_threads()
    );

    let sum_frame = || rma_core::Frame::table("t").aggregate(&[], vec![AggSpec::sum("x", "s")]);
    let sum_cell = |r: &rma_relation::Relation| -> i64 {
        match r.column("s").expect("s").get(0) {
            rma_storage::Value::Int(v) => v,
            other => panic!("unexpected sum {other:?}"),
        }
    };
    let setup = |governed: bool| -> rma_core::Session {
        let server = Server::default();
        let s = server.session();
        s.create_table("t", ones(rows)).expect("create");
        if governed {
            // limits far from tripping: the run pays the full governance
            // machinery (admission estimate, guard mint, per-morsel
            // polls, charges) but never the kill path
            s.set_mem_budget(u64::MAX / 2);
            s.set_deadline(Some(Duration::from_secs(3600)));
        }
        s
    };
    let run = |s: &rma_core::Session| -> (Duration, i64) {
        let t = Instant::now();
        let r = s.query(sum_frame()).expect("query");
        (t.elapsed(), sum_cell(&r))
    };

    // steady-state parity: one session per mode, the first (untimed) query
    // pages the table in and fills the lazy per-table statistics cache,
    // then best-of-5 with the modes interleaved pairwise so clock drift
    // (frequency scaling, a noisy neighbour) hits both runs equally
    let ungoverned = setup(false);
    let governed = setup(true);
    let _ = run(&ungoverned);
    let _ = run(&governed);
    let (mut ungoverned_t, mut governed_t) = (Duration::MAX, Duration::MAX);
    let (mut check_u, mut check_g) = (0i64, 0i64);
    for _ in 0..5 {
        let (tu, cu) = run(&ungoverned);
        let (tg, cg) = run(&governed);
        ungoverned_t = ungoverned_t.min(tu);
        governed_t = governed_t.min(tg);
        (check_u, check_g) = (cu, cg);
    }
    assert_eq!(check_u, check_g, "the governor changed the query result");
    assert_eq!(check_u, rows as i64, "aggregate lost rows");
    let parity = ungoverned_t.as_secs_f64() / governed_t.as_secs_f64();
    println!(
        "{:>14} {:>14} {:>8}",
        "ungoverned(s)", "governed(s)", "parity"
    );
    println!(
        "{:>14} {:>14} {parity:>8.2}",
        secs(ungoverned_t),
        secs(governed_t)
    );
    // sub-millisecond single-core timings are too noisy to gate honestly;
    // like the profile-overhead floor, parity arms on real hardware
    let parity_gate = gate.record("robustness.governed", parity, FLOOR_ROBUSTNESS, true);

    // cancel latency: kill a governed scan mid-flight from another thread.
    // Workers notice at their next morsel claim, so the bound is about one
    // morsel's work; two plus a scheduling margin keeps the gate honest
    // without measuring the OS scheduler.
    let server = Server::default();
    let s = server.session();
    s.create_table("t", ones(rows)).expect("create");
    s.set_mem_budget(u64::MAX / 2);
    s.set_deadline(Some(Duration::from_secs(3600)));
    let cancel_after = governed_t / 4;
    let cancelled_at: Mutex<Option<Duration>> = Mutex::new(None);
    let t0 = Instant::now();
    let result = std::thread::scope(|scope| {
        scope.spawn(|| {
            std::thread::sleep(cancel_after);
            s.cancel();
            *cancelled_at.lock().expect("cancel clock") = Some(t0.elapsed());
        });
        s.query(sum_frame())
    });
    let elapsed = t0.elapsed();
    let signal_at = cancelled_at
        .lock()
        .expect("cancel clock")
        .unwrap_or(elapsed);
    let morsel_est =
        governed_t.as_secs_f64() / rma_relation::morsel_count(threads, rows).max(1) as f64;
    let (latency_s, bound_s, cancel_gate) = match result {
        Err(rma_core::PlanError::Rma(rma_core::RmaError::Cancelled)) => {
            let latency = elapsed.saturating_sub(signal_at).as_secs_f64();
            let bound = 2.0 * morsel_est + 0.010;
            let status = gate.record(
                "robustness.cancel_latency",
                if latency > 0.0 {
                    bound / latency
                } else {
                    f64::INFINITY
                },
                1.0,
                true,
            );
            println!(
                "cancel: signalled at {:.4}s, query returned {latency:.4}s later (bound {bound:.4}s)",
                signal_at.as_secs_f64()
            );
            (latency, bound, status)
        }
        Ok(_) => {
            // the scan outran the canceller (serial pool or tiny scale):
            // no latency to measure, but say so loudly
            let reason = "query completed before the cancel landed";
            println!("cancel: {reason}");
            if gate.check {
                gate.skipped
                    .push(format!("robustness.cancel_latency — {reason}"));
            }
            (0.0, 0.0, format!("skipped: {reason}"))
        }
        Err(e) => panic!("cancelled query returned an unexpected error: {e:?}"),
    };

    let json = format!(
        "[\n  {{\"bench\": \"governed_parity\", \"rows\": {rows}, \"hardware_threads\": {hw}, \"ungoverned_s\": {:.6}, \"governed_s\": {:.6}, \"speedup\": {:.3}, \"checksum_match\": true, \"gate\": \"{parity_gate}\"}},\n  {{\"bench\": \"cancel_latency\", \"rows\": {rows}, \"hardware_threads\": {hw}, \"latency_s\": {latency_s:.6}, \"bound_s\": {bound_s:.6}, \"gate\": \"{cancel_gate}\"}}\n]\n",
        ungoverned_t.as_secs_f64(),
        governed_t.as_secs_f64(),
        parity,
    );
    std::fs::write("BENCH_robustness.json", &json).expect("write BENCH_robustness.json");
    println!(
        "(recorded in BENCH_robustness.json; committed floor: governed ≥ {FLOOR_ROBUSTNESS}x ungoverned)\n"
    );
}

/// Out-of-core execution (PR 9): a join and a sort forced through the
/// spill path by a tiny memory budget against the identical unbudgeted
/// in-memory runs. Checksum parity is always asserted (the spilled result
/// must be the in-memory result); the throughput ratios gate at
/// `FLOOR_SPILL` — disk is slower, the floor catches a collapse, not a
/// slowdown. Emits BENCH_spill.json.
fn spill_bench(scale: usize, gate: &mut Gate) {
    use rma_core::serve::Server;

    println!("## Spill — budgeted (out-of-core) vs unbudgeted (in-memory) queries");
    let rows = (2_000_000 / scale.max(1)).max(200_000);
    let custs = 997usize;
    let hw = hardware_threads();
    // 16 KiB: under the 48 B × 997 join build and far under the
    // 8 B × rows sort permutation, so both operators must go to disk
    let budget = 16u64 * 1024;
    println!("### {rows} orders × {custs} customers, budget {budget} B, best of 3 interleaved");

    let orders = rma_relation::RelationBuilder::new()
        .name("o")
        .column(
            "cust",
            (0..rows as i64)
                .map(|i| i % custs as i64)
                .collect::<Vec<i64>>(),
        )
        .column(
            "amount",
            (0..rows as i64)
                .map(|i| (i % 8191) as f64)
                .collect::<Vec<f64>>(),
        )
        .column("oid", (0..rows as i64).collect::<Vec<i64>>())
        .build()
        .expect("orders");
    let customers = rma_relation::RelationBuilder::new()
        .name("c")
        .column("cid", (0..custs as i64).collect::<Vec<i64>>())
        .build()
        .expect("customers");
    let server = Server::default();
    let mem = server.session();
    mem.create_table("o", orders).expect("create o");
    mem.create_table("c", customers).expect("create c");
    let spilled = server.session();
    spilled.set_mem_budget(budget);

    // order-free checksum for the join (partition-wise execution permutes
    // rows), order-sensitive for the sort (the order IS the result)
    let sum_oids = |r: &rma_relation::Relation| -> i64 {
        let col = r.column("oid").expect("oid");
        (0..r.len()).fold(0i64, |acc, i| match col.get(i) {
            rma_storage::Value::Int(v) => acc.wrapping_add(v),
            other => panic!("unexpected oid {other:?}"),
        })
    };
    let fnv_oids = |r: &rma_relation::Relation| -> i64 {
        let col = r.column("oid").expect("oid");
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for i in 0..r.len() {
            match col.get(i) {
                rma_storage::Value::Int(v) => h = (h ^ v as u64).wrapping_mul(0x100_0000_01b3),
                other => panic!("unexpected oid {other:?}"),
            }
        }
        h as i64
    };
    type Checksum<'a> = &'a dyn Fn(&rma_relation::Relation) -> i64;
    let cases: [(&str, rma_core::Frame, Checksum); 2] = [
        (
            "join",
            rma_core::Frame::table("o").join(rma_core::Frame::table("c"), &[("cust", "cid")]),
            &sum_oids,
        ),
        (
            "sort",
            rma_core::Frame::table("o").order_by(&["amount", "oid"], &[true, true]),
            &fnv_oids,
        ),
    ];

    println!(
        "{:>6} {:>14} {:>12} {:>8}",
        "query", "in-memory(s)", "spilled(s)", "ratio"
    );
    let mut records = Vec::new();
    for (name, frame, checksum) in &cases {
        let run = |s: &rma_core::Session| -> (Duration, i64) {
            let t = Instant::now();
            let r = s.query(frame.clone()).expect("query");
            (t.elapsed(), checksum(&r))
        };
        // warm both paths (page-in, statistics cache), then interleave so
        // clock drift hits both modes equally
        let _ = run(&mem);
        let _ = run(&spilled);
        let (mut mem_t, mut spill_t) = (Duration::MAX, Duration::MAX);
        let (mut check_m, mut check_s) = (0i64, 0i64);
        for _ in 0..3 {
            let (tm, cm) = run(&mem);
            let (ts, cs) = run(&spilled);
            mem_t = mem_t.min(tm);
            spill_t = spill_t.min(ts);
            (check_m, check_s) = (cm, cs);
        }
        assert_eq!(
            check_m, check_s,
            "spilled {name} diverged from the in-memory result"
        );
        let ratio = mem_t.as_secs_f64() / spill_t.as_secs_f64();
        println!(
            "{name:>6} {:>14} {:>12} {ratio:>8.2}",
            secs(mem_t),
            secs(spill_t)
        );
        let status = gate.record(&format!("spill.{name}"), ratio, FLOOR_SPILL, true);
        records.push(format!(
            "  {{\"bench\": \"spill_{name}\", \"rows\": {rows}, \"hardware_threads\": {hw}, \
             \"budget_bytes\": {budget}, \"in_memory_s\": {:.6}, \"spilled_s\": {:.6}, \
             \"ratio\": {ratio:.3}, \"checksum_match\": true, \"gate\": \"{status}\"}}",
            mem_t.as_secs_f64(),
            spill_t.as_secs_f64(),
        ));
    }

    let snap = server.metrics_snapshot();
    assert!(
        snap.spill_bytes > 0 && snap.spill_partitions > 0,
        "the budgeted session never spilled — the bench measured nothing"
    );
    assert_eq!(
        rma_relation::live_spill_files(),
        0,
        "spill temp files leaked after the bench"
    );
    println!(
        "spilled {} bytes across {} partitions; no temp files left behind",
        snap.spill_bytes, snap.spill_partitions
    );
    let json = format!("[\n{}\n]\n", records.join(",\n"));
    std::fs::write("BENCH_spill.json", &json).expect("write BENCH_spill.json");
    println!(
        "(recorded in BENCH_spill.json; committed floor: spilled ≥ {FLOOR_SPILL}x in-memory)\n"
    );
}

/// Compression: ingest-side encoding footprint plus encoded-kernel
/// execution (dictionary-predicate filter, run-at-a-time RLE aggregate)
/// vs the identical queries over plain storage. Asserts checksum parity,
/// and that the encoded queries never force a `decode()` sink. Emits
/// BENCH_compress.json.
fn compress_bench(scale: usize, gate: &mut Gate) {
    use rma_core::serve::Server;
    use rma_relation::Expr;

    println!("## Compression — encoded storage and encoded-kernel execution");
    let rows = (2_000_000 / scale.max(1)).max(200_000);
    let hw = hardware_threads();
    println!("### {rows} rows, few-distinct workload, best of 5 interleaved");

    // clustered low-cardinality strings (dictionary), long integer runs
    // (RLE), a small value range (bit-packing), and blocked floats (RLE)
    const REGIONS: [&str; 8] = [
        "east", "west", "north", "south", "centre", "coast", "inland", "border",
    ];
    let orders = rma_relation::RelationBuilder::new()
        .name("t")
        .column(
            "region",
            (0..rows)
                .map(|i| REGIONS[(i / 1024) % 8])
                .collect::<Vec<&str>>(),
        )
        .column(
            "status",
            (0..rows as i64)
                .map(|i| (i / 1000) % 5)
                .collect::<Vec<i64>>(),
        )
        .column(
            "qty",
            (0..rows as i64)
                .map(|i| (i * 37) % 251)
                .collect::<Vec<i64>>(),
        )
        .column(
            "amount",
            (0..rows)
                .map(|i| ((i / 512) % 16) as f64)
                .collect::<Vec<f64>>(),
        )
        .build()
        .expect("orders");
    let plain = orders.clone();

    let server = Server::default();
    let session = server.session();
    session.create_table("t", orders).expect("create t");

    // catalog footprint straight from the serve metrics: the table was
    // encoded at ingest, the baseline relation never entered the catalog
    let snap = server.metrics_snapshot();
    let ratio = snap.storage_plain_bytes as f64 / snap.storage_encoded_bytes.max(1) as f64;
    println!(
        "storage: {} B encoded vs {} B plain — {ratio:.2}x compression",
        snap.storage_encoded_bytes, snap.storage_plain_bytes
    );
    let ratio_status = gate.record("compress.ratio", ratio, FLOOR_COMPRESS_RATIO, false);

    let first_value = |r: &rma_relation::Relation, col: &str| -> i64 {
        match r.column(col).expect("agg column").get(0) {
            rma_storage::Value::Int(v) => v,
            rma_storage::Value::Float(f) => f.round() as i64,
            other => panic!("unexpected aggregate value {other:?}"),
        }
    };
    let cases: [(&str, &str, rma_core::Frame, rma_core::Frame); 2] = [
        (
            "dictfilter",
            "n",
            rma_core::Frame::table("t")
                .filter(Expr::col("region").eq(Expr::lit("west")))
                .aggregate(&[], vec![rma_relation::AggSpec::count_star("n")]),
            rma_core::Frame::scan(plain.clone())
                .filter(Expr::col("region").eq(Expr::lit("west")))
                .aggregate(&[], vec![rma_relation::AggSpec::count_star("n")]),
        ),
        (
            "rleagg",
            "s",
            rma_core::Frame::table("t")
                .aggregate(&[], vec![rma_relation::AggSpec::sum("amount", "s")]),
            rma_core::Frame::scan(plain)
                .aggregate(&[], vec![rma_relation::AggSpec::sum("amount", "s")]),
        ),
    ];

    println!(
        "{:>10} {:>12} {:>12} {:>8}",
        "query", "plain(s)", "encoded(s)", "speedup"
    );
    let mut records = vec![format!(
        "  {{\"bench\": \"compress_ratio\", \"rows\": {rows}, \"encoded_bytes\": {}, \
         \"plain_bytes\": {}, \"ratio\": {ratio:.3}, \"gate\": \"{ratio_status}\"}}",
        snap.storage_encoded_bytes, snap.storage_plain_bytes
    )];
    for (name, out_col, enc, pl) in &cases {
        // first encoded run before any warm-up: the decode cache is cold,
        // so a kernel that cannot stay on the encoded form would sink here
        let sinks0 = rma_storage::decode_sink_events();
        let first = session.query(enc.clone()).expect("encoded query");
        let first_sinks = rma_storage::decode_sink_events().saturating_sub(sinks0);
        assert_eq!(
            first_sinks, 0,
            "encoded `{name}` forced {first_sinks} decode sink(s) — a kernel fell off the encoded path"
        );
        let check_first = first_value(&first, out_col);

        let run = |f: &rma_core::Frame| -> (Duration, i64) {
            let t = Instant::now();
            let r = session.query(f.clone()).expect("query");
            (t.elapsed(), first_value(&r, out_col))
        };
        let _ = run(pl); // warm the plain path too
        let (mut plain_t, mut enc_t) = (Duration::MAX, Duration::MAX);
        let (mut check_p, mut check_e) = (0i64, 0i64);
        for _ in 0..5 {
            let (tp, cp) = run(pl);
            let (te, ce) = run(enc);
            plain_t = plain_t.min(tp);
            enc_t = enc_t.min(te);
            (check_p, check_e) = (cp, ce);
        }
        assert_eq!(
            check_e, check_first,
            "encoded checksum unstable across runs"
        );
        assert_eq!(
            check_p, check_e,
            "encoded `{name}` diverged from the plain result"
        );
        let speedup = plain_t.as_secs_f64() / enc_t.as_secs_f64();
        println!(
            "{name:>10} {:>12} {:>12} {speedup:>8.2}",
            secs(plain_t),
            secs(enc_t)
        );
        let status = gate.record(
            &format!("compress.{name}"),
            speedup,
            FLOOR_COMPRESS_SPEED,
            false,
        );
        records.push(format!(
            "  {{\"bench\": \"compress_{name}\", \"rows\": {rows}, \"hardware_threads\": {hw}, \
             \"plain_s\": {:.6}, \"encoded_s\": {:.6}, \"speedup\": {speedup:.3}, \
             \"decode_sinks\": {first_sinks}, \"checksum_match\": true, \"gate\": \"{status}\"}}",
            plain_t.as_secs_f64(),
            enc_t.as_secs_f64(),
        ));
    }

    let snap = server.metrics_snapshot();
    assert_eq!(
        snap.decode_sinks, 0,
        "the bench session forced decode sinks — encoded kernels regressed"
    );
    let json = format!("[\n{}\n]\n", records.join(",\n"));
    std::fs::write("BENCH_compress.json", &json).expect("write BENCH_compress.json");
    println!(
        "(recorded in BENCH_compress.json; committed floors: ratio ≥ {FLOOR_COMPRESS_RATIO}x, \
         encoded ≥ {FLOOR_COMPRESS_SPEED}x plain)\n"
    );
}

/// Fig. 18: trip count addition.
fn fig18(scale: usize) {
    println!("## Figure 18 — Trip count (matrix addition)");
    for millions in [1usize, 5, 10, 15] {
        let n = (millions * 1_000_000 / scale.max(1)).max(20_000);
        let (y1, y2) = trip_count_tables(n, 10, 18);
        let mut reports: Vec<_> = SYSTEMS
            .iter()
            .map(|&s| run_trip_count(s, &y1, &y2))
            .collect();
        reports.push(run_trip_count(SystemKind::RmaBat, &y1, &y2));
        reports.push(run_trip_count(SystemKind::RmaMkl, &y1, &y2));
        print_reports(&format!("### {n} riders"), &reports);
    }
}
