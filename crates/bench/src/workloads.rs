//! The four mixed workloads of §8.6, runnable on RMA+ (any backend) and on
//! every competitor simulator.
//!
//! Each workload reports its relational (data preparation), transformation,
//! and matrix time separately — the split Figures 15–18 plot — plus a
//! numeric checksum so tests can verify that all systems compute the same
//! answer.

use crate::competitors::{scidb, MatEngine, MatFlavor, RelEngine, RelFlavor, SimTimes};
use rma_core::{Backend, RmaContext, RmaOptions};
use rma_relation::{cross_product, project, project_exprs, rename, AggSpec, Expr, Relation};
use rma_storage::Value;
use std::time::{Duration, Instant};

/// The systems compared in §8.6.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SystemKind {
    /// RMA+ with the paper's auto policy (BAT for linear ops, dense
    /// otherwise).
    RmaAuto,
    /// RMA+BAT: no-copy column kernels everywhere.
    RmaBat,
    /// RMA+MKL: dense kernels everywhere.
    RmaMkl,
    /// The R simulator.
    R,
    /// The AIDA simulator.
    Aida,
    /// The MADlib simulator.
    Madlib,
}

impl SystemKind {
    pub fn name(self) -> &'static str {
        match self {
            SystemKind::RmaAuto => "RMA+",
            SystemKind::RmaBat => "RMA+BAT",
            SystemKind::RmaMkl => "RMA+MKL",
            SystemKind::R => "R",
            SystemKind::Aida => "AIDA",
            SystemKind::Madlib => "MADlib",
        }
    }

    fn is_rma(self) -> bool {
        matches!(
            self,
            SystemKind::RmaAuto | SystemKind::RmaBat | SystemKind::RmaMkl
        )
    }

    fn rma_context(self) -> RmaContext {
        let backend = match self {
            SystemKind::RmaAuto => Backend::Auto,
            SystemKind::RmaBat => Backend::Bat,
            SystemKind::RmaMkl => Backend::Dense,
            _ => unreachable!("not an RMA system"),
        };
        RmaContext::new(RmaOptions {
            backend,
            ..RmaOptions::default()
        })
    }

    fn rel_flavor(self) -> RelFlavor {
        match self {
            SystemKind::R => RelFlavor::Single,
            SystemKind::Madlib => RelFlavor::RowAtATime,
            // RMA+ and AIDA both run relational ops in the database engine
            _ => RelFlavor::Native,
        }
    }

    fn mat_flavor(self) -> MatFlavor {
        match self {
            SystemKind::R => MatFlavor::RMatrix,
            SystemKind::Madlib => MatFlavor::MadlibRows,
            _ => MatFlavor::AidaNumpy,
        }
    }
}

/// Timing and checksum of one workload run.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadReport {
    pub system: SystemKind,
    pub prep: Duration,
    pub transform: Duration,
    pub matrix: Duration,
    /// A workload-specific scalar all systems must agree on.
    pub check: f64,
}

impl WorkloadReport {
    pub fn total(&self) -> Duration {
        self.prep + self.transform + self.matrix
    }
}

// ---------------------------------------------------------------------
// (1) Trips — ordinary linear regression (Fig. 15)
// ---------------------------------------------------------------------

/// Shared data preparation: frequent trips joined with station coordinates,
/// producing (id, one, dist, duration, start_date).
fn trips_prep(rel: &RelEngine, trips: &Relation, stations: &Relation, min_count: i64) -> Relation {
    // (a) aggregate and keep frequent (start, end) pairs
    let freq = rel.aggregate(
        trips,
        &["start_station", "end_station"],
        &[AggSpec::count_star("n")],
    );
    let freq = rel.select(&freq, &Expr::col("n").gt_eq(Expr::lit(min_count)));
    let freq = rename(&freq, &[("start_station", "fs"), ("end_station", "fe")]).expect("rename");
    let t = rel.join(
        trips,
        &freq,
        &[("start_station", "fs"), ("end_station", "fe")],
    );
    // (b) join station coordinates for both endpoints
    let s_start = rename(
        stations,
        &[
            ("code", "sc"),
            ("name", "sn"),
            ("lat", "slat"),
            ("lon", "slon"),
        ],
    )
    .expect("rename");
    let s_end = rename(
        stations,
        &[
            ("code", "ec"),
            ("name", "en"),
            ("lat", "elat"),
            ("lon", "elon"),
        ],
    )
    .expect("rename");
    let t = rel.join(&t, &s_start, &[("start_station", "sc")]);
    let t = rel.join(&t, &s_end, &[("end_station", "ec")]);
    // distance in ~km (see rma_data::bixi::station_distance)
    let dist = Expr::col("slat")
        .sub(Expr::col("elat"))
        .mul(Expr::lit(111.0))
        .mul(
            Expr::col("slat")
                .sub(Expr::col("elat"))
                .mul(Expr::lit(111.0)),
        )
        .add(
            Expr::col("slon")
                .sub(Expr::col("elon"))
                .mul(Expr::lit(78.0))
                .mul(
                    Expr::col("slon")
                        .sub(Expr::col("elon"))
                        .mul(Expr::lit(78.0)),
                ),
        )
        .sqrt();
    project_exprs(
        &t,
        &[
            (Expr::col("id"), "id"),
            // design columns are named x0 (intercept), x1 (distance) so that
            // their alphabetical order equals the schema order — mmu pairs
            // r's application columns with s's key-sorted rows positionally
            (Expr::lit(1.0), "x0"),
            (dist, "x1"),
            (Expr::col("duration"), "duration"),
            (Expr::col("start_date"), "start_date"),
        ],
    )
    .expect("projection")
}

/// OLS through RMA: `MMU(INV(CPD(A,A)), CPD(A,V))` over relations.
fn ols_rma(ctx: &RmaContext, prep: &Relation) -> (f64, Duration) {
    let t = Instant::now();
    let a = project(prep, &["id", "x0", "x1"]).expect("A");
    let v = project(prep, &["id", "duration"]).expect("V");
    let ata = ctx.cpd(&a, &["id"], &a, &["id"]).expect("cpd AA");
    let atv = ctx.cpd(&a, &["id"], &v, &["id"]).expect("cpd AV");
    let inv = ctx.inv(&ata, &["C"]).expect("inv");
    let beta = ctx.mmu(&inv, &["C"], &atv, &["C"]).expect("mmu");
    // slope coefficient: row with C = 'dist' — context makes this a lookup,
    // no manual bookkeeping needed
    let sorted = beta.sorted_by(&["C"]).expect("sort");
    let mut slope = f64::NAN;
    for i in 0..sorted.len() {
        if sorted.cell(i, "C").expect("C") == Value::from("x1") {
            slope = sorted
                .cell(i, "duration")
                .expect("beta")
                .as_f64()
                .expect("numeric");
        }
    }
    (slope, t.elapsed())
}

/// OLS through a simulated competitor: manual matrix extraction.
fn ols_sim(mat: &MatEngine, prep: &Relation, times: &mut SimTimes) -> f64 {
    // AIDA pays for moving the non-numeric start_date across the boundary
    mat.transfer_non_numeric(prep, times);
    let a = mat.enter(prep, &["x0", "x1"], times);
    let v = mat.enter(prep, &["duration"], times);
    let ata = mat.cpd(&a, &a, times);
    let atv = mat.cpd(&a, &v, times);
    let inv = mat.inv(&ata, times);
    let beta = mat.mmu(&inv, &atv, times);
    let cols = mat.exit(beta, times);
    // NOTE: competitors lose the context; index 1 is "dist" only by manual
    // bookkeeping (the paper's point about origins)
    cols[0][1]
}

/// Run the Fig. 15 workload on one system.
pub fn run_trips_ols(
    system: SystemKind,
    trips: &Relation,
    stations: &Relation,
    min_count: i64,
) -> WorkloadReport {
    let rel = RelEngine::new(system.rel_flavor());
    let t0 = Instant::now();
    let prep = trips_prep(&rel, trips, stations, min_count);
    let prep_time = t0.elapsed();
    if system.is_rma() {
        let ctx = system.rma_context();
        let (slope, _) = ols_rma(&ctx, &prep);
        let stats = ctx.stats();
        WorkloadReport {
            system,
            prep: prep_time + stats.sort,
            transform: stats.copy_in + stats.copy_out,
            matrix: stats.compute,
            check: slope,
        }
    } else {
        let mat = MatEngine::new(system.mat_flavor());
        let mut times = SimTimes::default();
        let slope = ols_sim(&mat, &prep, &mut times);
        WorkloadReport {
            system,
            prep: prep_time + times.relational,
            transform: times.transform,
            matrix: times.matrix,
            check: slope,
        }
    }
}

// ---------------------------------------------------------------------
// (2) Journeys — multiple linear regression (Fig. 16)
// ---------------------------------------------------------------------

/// Compose journeys of `hops` consecutive trips (numeric-only relational
/// part) and regress total duration on the per-hop distances.
///
/// Simulation note: the paper composes trips that "meet in a station"; with
/// synthetic ids we additionally require consecutive journey ids, keeping
/// the join fan-out bounded without changing the operator mix.
fn journeys_prep(
    rel: &RelEngine,
    journeys: &Relation,
    stations: &Relation,
    hops: usize,
) -> Relation {
    // distance per one-trip journey
    let s_start = rename(
        stations,
        &[
            ("code", "sc"),
            ("name", "sn"),
            ("lat", "slat"),
            ("lon", "slon"),
        ],
    )
    .expect("rename");
    let s_end = rename(
        stations,
        &[
            ("code", "ec"),
            ("name", "en"),
            ("lat", "elat"),
            ("lon", "elon"),
        ],
    )
    .expect("rename");
    let j = rel.join(journeys, &s_start, &[("start", "sc")]);
    let j = rel.join(&j, &s_end, &[("end", "ec")]);
    let dist = Expr::col("slat")
        .sub(Expr::col("elat"))
        .mul(Expr::lit(111.0))
        .mul(
            Expr::col("slat")
                .sub(Expr::col("elat"))
                .mul(Expr::lit(111.0)),
        )
        .add(
            Expr::col("slon")
                .sub(Expr::col("elon"))
                .mul(Expr::lit(78.0))
                .mul(
                    Expr::col("slon")
                        .sub(Expr::col("elon"))
                        .mul(Expr::lit(78.0)),
                ),
        )
        .sqrt();
    let base = project_exprs(
        &j,
        &[
            (Expr::col("jid"), "jid"),
            (Expr::col("start"), "start"),
            (Expr::col("end"), "end"),
            (Expr::col("duration"), "duration"),
            (dist, "dist1"),
        ],
    )
    .expect("base projection");

    let mut cur = base.clone();
    for hop in 2..=hops {
        // next hop: journeys whose start is our current end and whose id
        // continues the chain (jid + hop - 1)
        let next = project_exprs(
            &base,
            &[
                (Expr::col("jid").sub(Expr::lit((hop - 1) as i64)), "pjid"),
                (Expr::col("start"), "nstart"),
                (Expr::col("end"), "nend"),
                (Expr::col("duration"), "ndur"),
                (Expr::col("dist1"), "ndist"),
            ],
        )
        .expect("next projection");
        let joined = rel.join(&cur, &next, &[("jid", "pjid"), ("end", "nstart")]);
        let mut items: Vec<(Expr, String)> = vec![
            (Expr::col("jid"), "jid".to_string()),
            (Expr::col("start"), "start".to_string()),
            (Expr::col("nend"), "end".to_string()),
            (
                Expr::col("duration").add(Expr::col("ndur")),
                "duration".to_string(),
            ),
        ];
        for h in 1..hop {
            items.push((Expr::col(format!("dist{h}")), format!("dist{h}")));
        }
        items.push((Expr::col("ndist"), format!("dist{hop}")));
        let refs: Vec<(Expr, &str)> = items.iter().map(|(e, n)| (e.clone(), n.as_str())).collect();
        cur = project_exprs(&joined, &refs).expect("hop projection");
    }
    // add the intercept column; design columns x0..xk sort alphabetically
    // in schema order (hops <= 9)
    let mut items: Vec<(Expr, String)> = vec![
        (Expr::col("jid"), "jid".to_string()),
        (Expr::lit(1.0), "x0".to_string()),
    ];
    for h in 1..=hops {
        items.push((Expr::col(format!("dist{h}")), format!("x{h}")));
    }
    items.push((Expr::col("duration"), "duration".to_string()));
    let refs: Vec<(Expr, &str)> = items.iter().map(|(e, n)| (e.clone(), n.as_str())).collect();
    project_exprs(&cur, &refs).expect("final projection")
}

/// Run the Fig. 16 workload on one system.
pub fn run_journeys_regression(
    system: SystemKind,
    journeys: &Relation,
    stations: &Relation,
    hops: usize,
) -> WorkloadReport {
    let rel = RelEngine::new(system.rel_flavor());
    let t0 = Instant::now();
    let prep = journeys_prep(&rel, journeys, stations, hops);
    let prep_time = t0.elapsed();
    let mut design_cols: Vec<String> = vec!["x0".to_string()];
    for h in 1..=hops {
        design_cols.push(format!("x{h}"));
    }
    let design_refs: Vec<&str> = design_cols.iter().map(String::as_str).collect();
    if system.is_rma() {
        let ctx = system.rma_context();
        let t = Instant::now();
        let mut a_cols = vec!["jid"];
        a_cols.extend(design_refs.iter().copied());
        let a = project(&prep, &a_cols).expect("A");
        let v = project(&prep, &["jid", "duration"]).expect("V");
        let beta = ctx.sol(&a, &["jid"], &v, &["jid"]).expect("sol");
        let _ = t.elapsed();
        let stats = ctx.stats();
        // checksum: sum of slope coefficients (excludes intercept)
        let sorted = beta.sorted_by(&["C"]).expect("sort");
        let mut check = 0.0;
        for i in 0..sorted.len() {
            if sorted.cell(i, "C").expect("C") != Value::from("x0") {
                check += sorted
                    .cell(i, "duration")
                    .expect("b")
                    .as_f64()
                    .expect("num");
            }
        }
        WorkloadReport {
            system,
            prep: prep_time + stats.sort,
            transform: stats.copy_in + stats.copy_out,
            matrix: stats.compute,
            check,
        }
    } else {
        let mat = MatEngine::new(system.mat_flavor());
        let mut times = SimTimes::default();
        mat.transfer_non_numeric(&prep, &mut times);
        let a = mat.enter(&prep, &design_refs, &mut times);
        let v = mat.enter(&prep, &["duration"], &mut times);
        let ata = mat.cpd(&a, &a, &mut times);
        let atv = mat.cpd(&a, &v, &mut times);
        let inv = mat.inv(&ata, &mut times);
        let beta = mat.mmu(&inv, &atv, &mut times);
        let cols = mat.exit(beta, &mut times);
        let check: f64 = cols[0][1..].iter().sum();
        WorkloadReport {
            system,
            prep: prep_time + times.relational,
            transform: times.transform,
            matrix: times.matrix,
            check,
        }
    }
}

// ---------------------------------------------------------------------
// (3) Conferences — covariance (Fig. 17)
// ---------------------------------------------------------------------

/// Covariance of conference publication counts, then join with rankings to
/// keep A++ conferences. Returns the summed covariance of A++ rows as the
/// checksum.
pub fn run_conferences_covariance(
    system: SystemKind,
    pubs: &Relation,
    rankings: &Relation,
) -> WorkloadReport {
    let rel = RelEngine::new(system.rel_flavor());
    let conf_cols: Vec<String> = pubs
        .schema()
        .names()
        .filter(|n| *n != "author")
        .map(str::to_string)
        .collect();
    let conf_refs: Vec<&str> = conf_cols.iter().map(String::as_str).collect();
    let n = pubs.len() as f64;

    let t0 = Instant::now();
    // column means (one aggregate per conference attribute)
    let aggs: Vec<AggSpec> = conf_refs.iter().map(|c| AggSpec::avg(c, c)).collect();
    let means = rel.aggregate(pubs, &[], &aggs);
    let prep_time = t0.elapsed();

    if system.is_rma() {
        let ctx = system.rma_context();
        // centre: sub over relations (paper's w3), keys author / author2
        let users = rename(
            &project(pubs, &["author"]).expect("authors"),
            &[("author", "author2")],
        )
        .expect("rename");
        let means_rel = cross_product(&users, &means).expect("broadcast");
        let centred = ctx
            .sub(pubs, &["author"], &means_rel, &["author2"])
            .expect("sub");
        let centred = {
            let mut cols = vec!["author"];
            cols.extend(conf_refs.iter().copied());
            project(&centred, &cols).expect("project")
        };
        // covariance numerator via cpd (the paper's dsyrk call)
        let c2 = rename_author(&centred);
        let cov = ctx
            .cpd(&centred, &["author"], &c2, &["author3"])
            .expect("cpd");
        // divide by n-1
        let mut items: Vec<(Expr, String)> = vec![(Expr::col("C"), "C".to_string())];
        for c in &conf_cols {
            // cpd named the result columns after the renamed second operand
            items.push((
                Expr::col(format!("{c}_2")).div(Expr::lit(n - 1.0)),
                c.clone(),
            ));
        }
        let refs: Vec<(Expr, &str)> = items.iter().map(|(e, s)| (e.clone(), s.as_str())).collect();
        let cov = project_exprs(&cov, &refs).expect("scale");
        // join with rankings, keep A++ — context column C makes this a join
        let joined = rel.join(&cov, rankings, &[("C", "conf")]);
        let app = rel.select(&joined, &Expr::col("rating").eq(Expr::lit("A++")));
        let stats = ctx.stats();
        WorkloadReport {
            system,
            prep: prep_time + stats.sort,
            transform: stats.copy_in + stats.copy_out,
            matrix: stats.compute,
            check: diag_sum(&app, &conf_refs),
        }
    } else {
        let mat = MatEngine::new(system.mat_flavor());
        let mut times = SimTimes::default();
        let m = mat.enter(pubs, &conf_refs, &mut times);
        // centre in matrix land
        let t = Instant::now();
        let mut centred = m;
        for (j, c) in conf_refs.iter().enumerate() {
            let mean = means.cell(0, c).expect("mean").as_f64().expect("num");
            for x in centred.col_mut(j) {
                *x -= mean;
            }
        }
        times.matrix += t.elapsed();
        let cov = mat.cpd(&centred, &centred, &mut times);
        let t = Instant::now();
        let cov = cov.map(|x| x / (n - 1.0));
        times.matrix += t.elapsed();
        let cols = mat.exit(cov, &mut times);
        // competitors must manually re-attach the conference names before
        // the ranking join (the paper's §8.6(3) remark)
        let t = Instant::now();
        let mut builder = rma_relation::RelationBuilder::new().column("C", conf_cols.clone());
        for (c, col) in conf_cols.iter().zip(cols) {
            builder = builder.column(c.clone(), col);
        }
        let cov_rel = builder.build().expect("manual context");
        let joined = rel.join(&cov_rel, rankings, &[("C", "conf")]);
        let app = rel.select(&joined, &Expr::col("rating").eq(Expr::lit("A++")));
        times.relational += t.elapsed();
        WorkloadReport {
            system,
            prep: prep_time + times.relational,
            transform: times.transform,
            matrix: times.matrix,
            check: diag_sum(&app, &conf_refs),
        }
    }
}

fn rename_author(r: &Relation) -> Relation {
    let mut mapping: Vec<(String, String)> = vec![("author".to_string(), "author3".to_string())];
    for n in r.schema().names() {
        if n != "author" {
            mapping.push((n.to_string(), format!("{n}_2")));
        }
    }
    let refs: Vec<(&str, &str)> = mapping
        .iter()
        .map(|(a, b)| (a.as_str(), b.as_str()))
        .collect();
    rename(r, &refs).expect("rename")
}

/// Sum of cov(conf, conf) over the A++ rows (checksum).
fn diag_sum(app_rows: &Relation, _conf_cols: &[&str]) -> f64 {
    let mut sum = 0.0;
    for i in 0..app_rows.len() {
        let Value::Str(c) = app_rows.cell(i, "C").expect("C") else {
            continue;
        };
        if let Ok(v) = app_rows.cell(i, &c) {
            sum += v.as_f64().unwrap_or(0.0);
        }
    }
    sum
}

// ---------------------------------------------------------------------
// (4) Trip count — matrix addition (Fig. 18)
// ---------------------------------------------------------------------

/// Generate the two rider×destination tables for the Fig. 18 workload:
/// year 1 keyed by `k0`, year 2 keyed by `k` (order schemas must not
/// overlap for `add`), with identical destination columns `a0..`.
pub fn trip_count_tables(riders: usize, destinations: usize, seed: u64) -> (Relation, Relation) {
    // rider tables are stored in rider order (as the paper's competitors
    // assume when they pass pre-aligned arrays), so RMA's order handling
    // runs on already-sorted keys
    let y1 = rma_data::uniform_relation(riders, 1, destinations, seed)
        .sorted_by(&["k0"])
        .expect("sort");
    let y2 = rma_data::uniform_relation(riders, 1, destinations, seed ^ 0xdead)
        .sorted_by(&["k0"])
        .expect("sort");
    let y2 = rename(&y2, &[("k0", "k")]).expect("rename");
    (y1, y2)
}

/// Add two rider×destination count relations (shape (r∗,c∗)).
pub fn run_trip_count(system: SystemKind, year1: &Relation, year2: &Relation) -> WorkloadReport {
    let dest_cols: Vec<String> = year1
        .schema()
        .names()
        .filter(|n| n.starts_with('a'))
        .map(str::to_string)
        .collect();
    let dest_refs: Vec<&str> = dest_cols.iter().map(String::as_str).collect();
    if system.is_rma() {
        let ctx = system.rma_context();
        let sum = ctx.add(year1, &["k0"], year2, &["k"]).expect("add");
        let stats = ctx.stats();
        WorkloadReport {
            system,
            prep: stats.sort,
            transform: stats.copy_in + stats.copy_out,
            matrix: stats.compute,
            check: column_sum(&sum, dest_refs[0]),
        }
    } else {
        let mat = MatEngine::new(system.mat_flavor());
        let mut times = SimTimes::default();
        let a = mat.enter(year1, &dest_refs, &mut times);
        let b = mat.enter(year2, &dest_refs, &mut times);
        let sum = mat.add(&a, &b, &mut times);
        let cols = mat.exit(sum, &mut times);
        WorkloadReport {
            system,
            prep: times.relational,
            transform: times.transform,
            matrix: times.matrix,
            check: cols[0].iter().sum(),
        }
    }
}

fn column_sum(r: &Relation, col: &str) -> f64 {
    r.column(col)
        .expect("column")
        .to_f64_vec()
        .expect("numeric")
        .iter()
        .sum()
}

/// Table 7: add followed by a selection, RMA+ vs the SciDB simulator.
/// Returns (rma_total, scidb_total, rma_count, scidb_count).
pub fn run_scidb_comparison(
    year1: &Relation,
    year2: &Relation,
    threshold: f64,
) -> (Duration, Duration, usize, usize) {
    let dest_cols: Vec<String> = year1
        .schema()
        .names()
        .filter(|n| n.starts_with('a'))
        .map(str::to_string)
        .collect();
    let dest_refs: Vec<&str> = dest_cols.iter().map(String::as_str).collect();

    // RMA+: relational add, then a selection on the first destination column
    let t = Instant::now();
    let ctx = RmaContext::default();
    let sum = ctx.add(year1, &["k0"], year2, &["k"]).expect("add");
    let selected = rma_relation::select(&sum, &Expr::col(dest_refs[0]).gt(Expr::lit(threshold)))
        .expect("select");
    let rma_time = t.elapsed();
    let rma_count = selected.len();

    // SciDB: coordinate arrays, array join, selection. Arrays are indexed
    // by explicit dimensions, so cells are loaded in key order (rank), the
    // same pairing RMA's add uses.
    let t = Instant::now();
    let y1_sorted = year1.sorted_by(&["k0"]).expect("sort");
    let y2_sorted = year2.sorted_by(&["k"]).expect("sort");
    let ca = scidb::from_relation(&y1_sorted, &dest_refs);
    let cb = scidb::from_relation(&y2_sorted, &dest_refs);
    let csum = scidb::add(&ca, &cb);
    let scidb_count = scidb::select_gt(&csum, 0, threshold);
    let scidb_time = t.elapsed();

    (rma_time, scidb_time, rma_count, scidb_count)
}

// ---------------------------------------------------------------------
// Thread scaling (PR 2): the morsel-driven parallel engine
// ---------------------------------------------------------------------

/// The thread-scaling table: a distinct int key `k`, a 64-value grouping
/// attribute `g`, and three float measures. Sized so the partition-parallel
/// scan+select+aggregate pipeline is compute-bound, not spawn-bound.
pub fn thread_scaling_table(rows: usize, seed: u64) -> Relation {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let k: Vec<i64> = (0..rows as i64).collect();
    let g: Vec<i64> = (0..rows).map(|_| rng.gen_range(0..64)).collect();
    let x: Vec<f64> = (0..rows).map(|_| rng.gen_range(-100.0..100.0)).collect();
    let y: Vec<f64> = (0..rows).map(|_| rng.gen_range(-100.0..100.0)).collect();
    let z: Vec<f64> = (0..rows).map(|_| rng.gen_range(0.0..100.0)).collect();
    rma_relation::RelationBuilder::new()
        .name("scaling")
        .column("k", k)
        .column("g", g)
        .column("x", x)
        .column("y", y)
        .column("z", z)
        .build()
        .expect("valid relation")
}

/// Run the fixed scan→select→aggregate workload through the lazy plan at a
/// given worker-thread count. The filter evaluates a compute-heavy
/// expression per row and the aggregation folds three measures over 64
/// groups, so the morsel pipeline and the parallel aggregation both
/// contribute. Returns (wall time, integer checksum). The checksum digests
/// each group's key and exact counts — values whose parallel merge is
/// bit-exact — so a mis-merged or mis-ordered parallel aggregation changes
/// it, while float-sum association (legitimately order-dependent) does not.
pub fn run_thread_scaling(table: &Relation, threads: usize) -> (Duration, i64) {
    let ctx = RmaContext::new(RmaOptions {
        threads,
        ..RmaOptions::default()
    });
    let predicate = Expr::col("x")
        .mul(Expr::col("y"))
        .add(Expr::col("z").sqrt())
        .abs()
        .gt(Expr::lit(25.0));
    let frame = rma_core::Frame::scan(table.clone())
        .select(predicate)
        .aggregate(
            &["g"],
            vec![
                AggSpec::count_star("n"),
                AggSpec::sum("x", "sx"),
                AggSpec::avg("y", "ay"),
                AggSpec::new(rma_relation::AggFunc::Max, Some("z"), "mz"),
            ],
        );
    let t = Instant::now();
    let out = frame.collect(&ctx).expect("scaling workload");
    let elapsed = t.elapsed();
    let mut checksum = out.len() as i64;
    for i in 0..out.len() {
        let (Value::Int(g), Value::Int(n)) =
            (out.cell(i, "g").expect("g"), out.cell(i, "n").expect("n"))
        else {
            panic!("unexpected aggregate output types");
        };
        // position-sensitive digest: catches wrong counts, wrong group
        // keys, and wrong group order alike
        checksum = checksum
            .wrapping_mul(31)
            .wrapping_add((g + 1).wrapping_mul(n));
    }
    (elapsed, checksum)
}

// ---------------------------------------------------------------------
// Late-materialization pipeline (PR 3)
// ---------------------------------------------------------------------

/// Tables for the Scan→Select→Project→Join pipeline bench: a fact table
/// with a join key `k` into the dimension, an integer filter column `f`
/// uniform in `0..1000` (so a cutoff of `c` keeps c/1000 of the rows), and
/// three float payload columns; a dimension table keyed on `dk` with one
/// weight column.
pub fn pipeline_tables(rows: usize, dim_rows: usize, seed: u64) -> (Relation, Relation) {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let k: Vec<i64> = (0..rows)
        .map(|_| rng.gen_range(0..dim_rows as i64))
        .collect();
    let f: Vec<i64> = (0..rows).map(|_| rng.gen_range(0..1000)).collect();
    let a: Vec<f64> = (0..rows).map(|_| rng.gen_range(-100.0..100.0)).collect();
    let b: Vec<f64> = (0..rows).map(|_| rng.gen_range(-100.0..100.0)).collect();
    let c: Vec<f64> = (0..rows).map(|_| rng.gen_range(0.0..100.0)).collect();
    let fact = rma_relation::RelationBuilder::new()
        .name("fact")
        .column("k", k)
        .column("f", f)
        .column("a", a)
        .column("b", b)
        .column("c", c)
        .build()
        .expect("valid fact table");
    let dk: Vec<i64> = (0..dim_rows as i64).collect();
    let w: Vec<f64> = (0..dim_rows).map(|_| rng.gen_range(0.0..10.0)).collect();
    let dim = rma_relation::RelationBuilder::new()
        .name("dim")
        .column("dk", dk)
        .column("w", w)
        .build()
        .expect("valid dimension table");
    (fact, dim)
}

/// Deep-copy every column's data vector (and bitmap), defeating the Arc
/// sharing — this reproduces what the seed engine paid per operator, when
/// `Relation::clone`/`project` duplicated the backing `Vec`s.
fn deep_copy(r: &Relation) -> Relation {
    let columns: Vec<rma_storage::Column> = r
        .columns()
        .iter()
        .map(|c| match c.nulls() {
            Some(b) => rma_storage::Column::with_nulls(c.data().clone(), b.clone())
                .expect("bitmap length matches"),
            None => rma_storage::Column::new(c.data().clone()),
        })
        .collect();
    let mut out =
        Relation::new(r.schema().clone(), columns).expect("schema unchanged by deep copy");
    if let Some(n) = r.name() {
        out = out.with_name(n);
    }
    out
}

/// One run of the `Scan→σ(f < cutoff)→π(k,a,b)→⋈ dim` pipeline.
///
/// `eager` reproduces the seed's copy-per-operator execution: the scan
/// deep-copies the table, σ materialises the surviving rows, π deep-copies
/// the kept columns. The lazy path is today's engine: the scan is shared,
/// σ and π produce selection-vector views, and the join probes through the
/// SelVec — the only copy is the final gather of matching rows.
///
/// Returns wall time and a position-sensitive checksum of the join result,
/// so the two paths can be asserted identical.
pub fn run_pipeline(fact: &Relation, dim: &Relation, cutoff: i64, eager: bool) -> (Duration, i64) {
    let pred = Expr::col("f").lt(Expr::lit(cutoff));
    let t = Instant::now();
    let out = if eager {
        let scanned = deep_copy(fact);
        let selected = rma_relation::select(&scanned, &pred)
            .expect("σ")
            .materialize();
        let projected = deep_copy(&project(&selected, &["k", "a", "b"]).expect("π"));
        rma_relation::join_on(&projected, dim, &[("k", "dk")]).expect("⋈")
    } else {
        let selected = rma_relation::select(fact, &pred).expect("σ");
        let projected = project(&selected, &["k", "a", "b"]).expect("π");
        rma_relation::join_on(&projected, dim, &[("k", "dk")]).expect("⋈")
    };
    let elapsed = t.elapsed();
    // position-sensitive digest over the key AND the payload columns, so a
    // gather bug that corrupts only non-key data still flips the checksum
    let mut checksum = out.len() as i64;
    let ks = match out.column("k").expect("k").data() {
        rma_storage::ColumnData::Int(v) => v,
        _ => unreachable!("k is an int column"),
    };
    for &k in ks {
        checksum = checksum.wrapping_mul(31).wrapping_add(k + 1);
    }
    for payload in ["a", "b", "w"] {
        let vs = match out.column(payload).expect("payload").data() {
            rma_storage::ColumnData::Float(v) => v,
            _ => unreachable!("payloads are float columns"),
        };
        for &x in vs {
            checksum = checksum.wrapping_mul(31).wrapping_add(x.to_bits() as i64);
        }
    }
    (elapsed, checksum)
}

// ---------------------------------------------------------------------
// Cost-based join ordering (PR 4)
// ---------------------------------------------------------------------

/// Star-schema tables for the join-order bench, sized so the *written*
/// join order is deliberately bad:
///
/// - `fact(f1, f2, f3, v)` — `rows` tuples; `f1`/`f2`/`f3` are foreign
///   keys into the three dimensions;
/// - `big(k1, w1)` — `rows/5` tuples, key `k1`: joining it first keeps the
///   intermediate at `rows` tuples and only adds width;
/// - `mid(k2, w2)` — 10 000 tuples, key `k2`: same, no reduction;
/// - `small(k3, p, w3)` — 2 000 tuples, key `k3`, with `p` uniform in
///   `0..1000`: the bench filters `p < 10`, so joining `small` *first*
///   shrinks the pipeline to ~1% immediately.
///
/// The queries join `fact ⋈ big ⋈ mid ⋈ small` in exactly that written
/// order; a cost-based optimizer should flip it to `small` first.
pub fn joinorder_tables(rows: usize, seed: u64) -> (Relation, Relation, Relation, Relation) {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let big_rows = (rows / 5).max(100);
    let mid_rows = 10_000.min(rows).max(10);
    let small_rows = 2_000.min(rows).max(10);
    let f1: Vec<i64> = (0..rows)
        .map(|_| rng.gen_range(0..big_rows as i64))
        .collect();
    let f2: Vec<i64> = (0..rows)
        .map(|_| rng.gen_range(0..mid_rows as i64))
        .collect();
    let f3: Vec<i64> = (0..rows)
        .map(|_| rng.gen_range(0..small_rows as i64))
        .collect();
    let v: Vec<f64> = (0..rows).map(|_| rng.gen_range(0.0..10.0)).collect();
    let fact = rma_relation::RelationBuilder::new()
        .name("fact")
        .column("f1", f1)
        .column("f2", f2)
        .column("f3", f3)
        .column("v", v)
        .build()
        .expect("valid fact table");
    let dim = |name: &str, key: &str, payload: &str, n: usize, rng: &mut StdRng| {
        let k: Vec<i64> = (0..n as i64).collect();
        let w: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..10.0)).collect();
        rma_relation::RelationBuilder::new()
            .name(name)
            .column(key, k)
            .column(payload, w)
            .build()
            .expect("valid dimension table")
    };
    let big = dim("big", "k1", "w1", big_rows, &mut rng);
    let mid = dim("mid", "k2", "w2", mid_rows, &mut rng);
    let p: Vec<i64> = (0..small_rows).map(|_| rng.gen_range(0..1000)).collect();
    let w3: Vec<f64> = (0..small_rows).map(|_| rng.gen_range(0.0..10.0)).collect();
    let small = rma_relation::RelationBuilder::new()
        .name("small")
        .column("k3", (0..small_rows as i64).collect::<Vec<_>>())
        .column("p", p)
        .column("w3", w3)
        .build()
        .expect("valid small table");
    (fact, big, mid, small)
}

/// One run of the `ways`-way star join (`3` joins big and small, `4` also
/// mid), written worst-first, with the filter `small.p < 10` on top —
/// selection pushdown applies in both modes, so the measured difference is
/// purely the join *order* chosen when `reorder` is on.
///
/// Returns wall time and an order-insensitive checksum (join orders
/// legitimately permute result rows), so reordered and written-order runs
/// can be asserted identical.
pub fn run_joinorder(
    fact: &Relation,
    big: &Relation,
    mid: &Relation,
    small: &Relation,
    ways: usize,
    reorder: bool,
) -> (Duration, i64) {
    let ctx = RmaContext::new(RmaOptions {
        join_reorder: reorder,
        ..RmaOptions::default()
    });
    let mut frame = rma_core::Frame::scan(fact.clone())
        .join(rma_core::Frame::scan(big.clone()), &[("f1", "k1")]);
    if ways >= 4 {
        frame = frame.join(rma_core::Frame::scan(mid.clone()), &[("f2", "k2")]);
    }
    let frame = frame
        .join(rma_core::Frame::scan(small.clone()), &[("f3", "k3")])
        .select(Expr::col("p").lt(Expr::lit(10i64)));
    let t = Instant::now();
    let out = frame.collect(&ctx).expect("join-order workload");
    let elapsed = t.elapsed();
    // commutative digest: per-row product over the integer key columns,
    // wrapping-summed — identical under any row permutation
    let mut checksum = out.len() as i64;
    let int_col = |name: &str| match out.column(name).expect("key column").data() {
        rma_storage::ColumnData::Int(v) => v.clone(),
        _ => unreachable!("keys are int columns"),
    };
    let f1 = int_col("f1");
    let f3 = int_col("f3");
    let p = int_col("p");
    for i in 0..out.len() {
        let d = (f1[i] + 1).wrapping_mul(f3[i] + 3).wrapping_mul(p[i] + 7);
        checksum = checksum.wrapping_add(d);
    }
    (elapsed, checksum)
}

// ---------------------------------------------------------------------
// Parallel sort / top-k (PR 5)
// ---------------------------------------------------------------------

/// Table for the sort bench: a heavily duplicated primary sort key `s`
/// (tie-break coverage), a float secondary key `m`, a distinct `id`, and a
/// float payload — shaped so the sort is comparison-bound, not key-bound.
pub fn sort_table(rows: usize, seed: u64) -> Relation {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let dup = (rows as i64 / 8).max(16);
    let s: Vec<i64> = (0..rows).map(|_| rng.gen_range(0..dup)).collect();
    let m: Vec<f64> = (0..rows).map(|_| rng.gen_range(-1000.0..1000.0)).collect();
    let id: Vec<i64> = (0..rows as i64).collect();
    let w: Vec<f64> = (0..rows).map(|_| rng.gen_range(0.0..10.0)).collect();
    rma_relation::RelationBuilder::new()
        .name("sortbench")
        .column("s", s)
        .column("m", m)
        .column("id", id)
        .column("w", w)
        .build()
        .expect("valid sort table")
}

/// Position-sensitive digest of an ordered result: every row's `s` and
/// `id` fold in at their output position, so a mis-sorted, mis-merged, or
/// mis-tie-broken result changes the value. Parallel sort is
/// result-identical to serial (ties break on the row index), so serial and
/// parallel runs must agree exactly.
fn ordered_checksum(out: &Relation) -> i64 {
    let int_col = |name: &str| match out.column(name).expect("int column").data() {
        rma_storage::ColumnData::Int(v) => v.clone(),
        _ => unreachable!("s/id are int columns"),
    };
    let s = int_col("s");
    let id = int_col("id");
    let mut checksum = out.len() as i64;
    for i in 0..out.len() {
        checksum = checksum
            .wrapping_mul(31)
            .wrapping_add((s[i] + 1).wrapping_mul(id[i] + 7));
    }
    checksum
}

/// One `ORDER BY s ASC, m DESC` over the full table through the lazy plan
/// at a given worker-thread count (`1` = the serial sort; above, the
/// pool's per-worker local sorts + k-way merge). Returns (wall time,
/// position-sensitive checksum).
pub fn run_sort(table: &Relation, threads: usize) -> (Duration, i64) {
    let ctx = RmaContext::new(RmaOptions {
        threads,
        ..RmaOptions::default()
    });
    let frame = rma_core::Frame::scan(table.clone()).order_by(&["s", "m"], &[true, false]);
    let t = Instant::now();
    let out = frame.collect(&ctx).expect("sort workload");
    let elapsed = t.elapsed();
    (elapsed, ordered_checksum(&out))
}

/// One `ORDER BY s ASC, m DESC LIMIT k` (the optimizer rewrites it to a
/// `TopK` node: serial bounded heap at one thread, per-worker bounded
/// heaps merged at the barrier above). Returns (wall time, checksum).
pub fn run_topk(table: &Relation, threads: usize, k: usize) -> (Duration, i64) {
    let ctx = RmaContext::new(RmaOptions {
        threads,
        ..RmaOptions::default()
    });
    let frame = rma_core::Frame::scan(table.clone())
        .order_by(&["s", "m"], &[true, false])
        .limit(k);
    let t = Instant::now();
    let out = frame.collect(&ctx).expect("top-k workload");
    let elapsed = t.elapsed();
    (elapsed, ordered_checksum(&out))
}
