//! Competitor system simulators (§8's R, AIDA, MADlib, SciDB).
//!
//! We cannot ship the real competitor systems, so each simulator implements
//! the *architectural mechanism* that drives its performance in the paper:
//!
//! * [`RelFlavor::Single`] (R / MADlib): single-threaded relational
//!   operators without an optimizer; R's `merge` additionally stringifies
//!   join keys (character coercion of factor keys).
//! * [`RelFlavor::RowAtATime`] (MADlib): tuple-at-a-time evaluation over
//!   boxed values — UDF-style execution in PostgreSQL.
//! * [`MatFlavor`]: where the matrix maths run and what data transformation
//!   is charged on entry/exit — R copies data.table columns into a
//!   row-major `matrix` and back; AIDA passes numeric column pointers for
//!   free but serialises non-numeric columns crossing the DB↔Python
//!   boundary; MADlib accumulates through boxed row iterators.
//! * [`scidb`]: arrays as coordinate–value pairs; element-wise addition
//!   becomes an *array join* on coordinates (Table 7's mechanism).
//!
//! The simulators reuse the same numeric kernels as RMA+ where the paper's
//! competitor also used tuned kernels, so measured gaps come from the
//! architecture (copies, joins, row-at-a-time overhead), not from a
//! strawman implementation.
#![allow(clippy::needless_range_loop)] // index loops mirror the simulated engines

use rma_linalg::dense::{self, Matrix};
use rma_relation::{AggSpec, Expr, Relation};
use rma_storage::Value;
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Relational-operator flavor of a simulated system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RelFlavor {
    /// Our engine (used by RMA+ and AIDA, which both run relational ops in
    /// MonetDB).
    Native,
    /// R: single-threaded merge join over stringified keys.
    Single,
    /// MADlib: row-at-a-time over boxed values.
    RowAtATime,
}

/// Matrix-kernel flavor and its transfer cost model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatFlavor {
    /// R: copy columns into a row-major `matrix`, compute, copy back.
    RMatrix,
    /// AIDA: numeric columns pass by pointer (no copy); the result is
    /// copied back into the database format.
    AidaNumpy,
    /// MADlib: boxed row-at-a-time accumulation.
    MadlibRows,
}

/// Timed relational + matrix phases of a simulated workload step.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimTimes {
    pub relational: Duration,
    pub transform: Duration,
    pub matrix: Duration,
}

impl SimTimes {
    pub fn total(&self) -> Duration {
        self.relational + self.transform + self.matrix
    }
}

/// Simulated relational engine.
pub struct RelEngine {
    pub flavor: RelFlavor,
}

impl RelEngine {
    pub fn new(flavor: RelFlavor) -> Self {
        RelEngine { flavor }
    }

    /// Equi-join dispatching on the flavor.
    pub fn join(&self, a: &Relation, b: &Relation, on: &[(&str, &str)]) -> Relation {
        match self.flavor {
            RelFlavor::Native => rma_relation::join_on(a, b, on).expect("join"),
            RelFlavor::Single => stringified_merge_join(a, b, on),
            RelFlavor::RowAtATime => row_at_a_time_join(a, b, on),
        }
    }

    /// Grouped aggregation; single-threaded flavors reuse the native
    /// operator (it is single-threaded too), row-at-a-time pays boxing.
    pub fn aggregate(&self, r: &Relation, gb: &[&str], aggs: &[AggSpec]) -> Relation {
        match self.flavor {
            RelFlavor::RowAtATime => row_at_a_time_aggregate(r, gb, aggs),
            _ => rma_relation::aggregate(r, gb, aggs).expect("aggregate"),
        }
    }

    pub fn select(&self, r: &Relation, pred: &Expr) -> Relation {
        match self.flavor {
            RelFlavor::RowAtATime => {
                // evaluate the predicate per boxed row
                let keep: Vec<bool> = (0..r.len())
                    .map(|i| {
                        let row = r.take(&[i]);
                        pred.eval_filter(&row).expect("predicate")[0]
                    })
                    .collect();
                r.filter(&keep)
            }
            _ => rma_relation::select(r, pred).expect("select"),
        }
    }
}

/// R-style merge join: coerce keys to character vectors, sort, merge.
fn stringified_merge_join(a: &Relation, b: &Relation, on: &[(&str, &str)]) -> Relation {
    let key_of = |r: &Relation, cols: &[&str], i: usize| -> String {
        let mut s = String::new();
        for c in cols {
            s.push_str(&r.column(c).expect("key column").get(i).to_string());
            s.push('\u{1}');
        }
        s
    };
    let acols: Vec<&str> = on.iter().map(|(l, _)| *l).collect();
    let bcols: Vec<&str> = on.iter().map(|(_, r)| *r).collect();
    let mut akeys: Vec<(String, usize)> = (0..a.len()).map(|i| (key_of(a, &acols, i), i)).collect();
    let mut bkeys: Vec<(String, usize)> = (0..b.len()).map(|i| (key_of(b, &bcols, i), i)).collect();
    akeys.sort();
    bkeys.sort();
    let (mut ia, mut ib) = (0usize, 0usize);
    let mut left_idx = Vec::new();
    let mut right_idx = Vec::new();
    while ia < akeys.len() && ib < bkeys.len() {
        match akeys[ia].0.cmp(&bkeys[ib].0) {
            std::cmp::Ordering::Less => ia += 1,
            std::cmp::Ordering::Greater => ib += 1,
            std::cmp::Ordering::Equal => {
                // emit the full equal-run product
                let key = akeys[ia].0.clone();
                let a_start = ia;
                while ia < akeys.len() && akeys[ia].0 == key {
                    ia += 1;
                }
                let b_start = ib;
                while ib < bkeys.len() && bkeys[ib].0 == key {
                    ib += 1;
                }
                for x in a_start..ia {
                    for y in b_start..ib {
                        left_idx.push(akeys[x].1);
                        right_idx.push(bkeys[y].1);
                    }
                }
            }
        }
    }
    assemble(a, b, &left_idx, &right_idx)
}

/// MADlib-style nested join over boxed rows with a per-row hash probe.
fn row_at_a_time_join(a: &Relation, b: &Relation, on: &[(&str, &str)]) -> Relation {
    let bcols: Vec<&str> = on.iter().map(|(_, r)| *r).collect();
    let mut table: HashMap<String, Vec<usize>> = HashMap::new();
    for j in 0..b.len() {
        let mut key = String::new();
        for c in &bcols {
            key.push_str(&b.column(c).expect("col").get(j).to_string());
            key.push('\u{1}');
        }
        table.entry(key).or_default().push(j);
    }
    let acols: Vec<&str> = on.iter().map(|(l, _)| *l).collect();
    let mut left_idx = Vec::new();
    let mut right_idx = Vec::new();
    for i in 0..a.len() {
        // boxed row materialisation per probe (the UDF overhead)
        let _row: Vec<Value> = a.row(i);
        let mut key = String::new();
        for c in &acols {
            key.push_str(&a.column(c).expect("col").get(i).to_string());
            key.push('\u{1}');
        }
        if let Some(matches) = table.get(&key) {
            for &j in matches {
                left_idx.push(i);
                right_idx.push(j);
            }
        }
    }
    assemble(a, b, &left_idx, &right_idx)
}

fn assemble(a: &Relation, b: &Relation, li: &[usize], ri: &[usize]) -> Relation {
    let left = a.take(li);
    let right = b.take(ri);
    let schema = left
        .schema()
        .concat(right.schema())
        .expect("disjoint join schemas");
    let mut cols = left.columns().to_vec();
    cols.extend(right.columns().iter().cloned());
    Relation::new(schema, cols).expect("rect")
}

fn row_at_a_time_aggregate(r: &Relation, gb: &[&str], aggs: &[AggSpec]) -> Relation {
    // accumulate through boxed rows, then delegate the final assembly
    let mut groups: HashMap<String, Vec<usize>> = HashMap::new();
    for i in 0..r.len() {
        let mut key = String::new();
        for c in gb {
            key.push_str(&r.column(c).expect("col").get(i).to_string());
            key.push('\u{1}');
        }
        groups.entry(key).or_default().push(i);
    }
    // per-group boxed evaluation
    let mut reps: Vec<usize> = Vec::with_capacity(groups.len());
    let mut parts: Vec<Relation> = Vec::new();
    let mut order: Vec<&Vec<usize>> = groups.values().collect();
    order.sort_by_key(|v| v[0]);
    for rows in order {
        reps.push(rows[0]);
        let sub = r.take(rows);
        parts.push(rma_relation::aggregate(&sub, &[], aggs).expect("agg"));
    }
    // group-by columns from representatives, one aggregate row per group
    let mut agg_rel = parts
        .first()
        .cloned()
        .unwrap_or_else(|| rma_relation::aggregate(&r.take(&[]), &[], aggs).expect("agg"));
    for p in parts.iter().skip(1) {
        agg_rel = rma_relation::union_all(&agg_rel, p).expect("union");
    }
    if gb.is_empty() {
        return agg_rel;
    }
    let key_rel = rma_relation::project(&r.take(&reps), gb).expect("project");
    let schema = key_rel.schema().concat(agg_rel.schema()).expect("schemas");
    let mut cols = key_rel.columns().to_vec();
    cols.extend(agg_rel.columns().iter().cloned());
    Relation::new(schema, cols).expect("rect")
}

/// Simulated matrix engine with explicit transfer phases.
pub struct MatEngine {
    pub flavor: MatFlavor,
}

impl MatEngine {
    pub fn new(flavor: MatFlavor) -> Self {
        MatEngine { flavor }
    }

    /// Transfer numeric columns of a relation into the foreign matrix
    /// format, charging the flavor's transformation cost into `times`.
    pub fn enter(&self, r: &Relation, cols: &[&str], times: &mut SimTimes) -> Matrix {
        let t = Instant::now();
        let m = match self.flavor {
            MatFlavor::RMatrix => {
                // data.table → matrix: row-major copy (strided writes)
                let n = r.len();
                let k = cols.len();
                let srcs: Vec<Vec<f64>> = cols
                    .iter()
                    .map(|c| r.column(c).expect("col").to_f64_vec().expect("numeric"))
                    .collect();
                let mut out = Matrix::zeros(n, k);
                for i in 0..n {
                    for (j, s) in srcs.iter().enumerate() {
                        out.set(i, j, s[i]);
                    }
                }
                out
            }
            MatFlavor::AidaNumpy => {
                // numeric columns pass by pointer: a straight columnar copy
                let srcs: Vec<Vec<f64>> = cols
                    .iter()
                    .map(|c| r.column(c).expect("col").to_f64_vec().expect("numeric"))
                    .collect();
                Matrix::from_columns(&srcs).expect("rect")
            }
            MatFlavor::MadlibRows => {
                // boxed row iteration into the matrix
                let n = r.len();
                let k = cols.len();
                let mut out = Matrix::zeros(n, k);
                for i in 0..n {
                    for (j, c) in cols.iter().enumerate() {
                        let v = r.column(c).expect("col").get(i);
                        out.set(i, j, v.as_f64().expect("numeric"));
                    }
                }
                out
            }
        };
        times.transform += t.elapsed();
        m
    }

    /// Charge the cost of moving *non-numeric* columns across the boundary
    /// (AIDA's weakness on mixed data: dates/strings are serialised).
    pub fn transfer_non_numeric(&self, r: &Relation, times: &mut SimTimes) {
        if self.flavor != MatFlavor::AidaNumpy {
            return;
        }
        let t = Instant::now();
        let mut sink = 0usize;
        for (a, c) in r.schema().attributes().iter().zip(r.columns()) {
            if !a.dtype().is_numeric() {
                // serialise + reparse every value
                for v in c.iter_values() {
                    let s = v.to_string();
                    sink += s.len();
                }
            }
        }
        std::hint::black_box(sink);
        times.transform += t.elapsed();
    }

    /// Transfer a matrix result back into columns.
    pub fn exit(&self, m: Matrix, times: &mut SimTimes) -> Vec<Vec<f64>> {
        let t = Instant::now();
        let out = match self.flavor {
            MatFlavor::RMatrix | MatFlavor::MadlibRows => {
                // row-major sources: strided reads per column
                let (n, k) = (m.rows(), m.cols());
                let mut cols = vec![Vec::with_capacity(n); k];
                for i in 0..n {
                    for (j, col) in cols.iter_mut().enumerate() {
                        col.push(m.get(i, j));
                    }
                }
                cols
            }
            MatFlavor::AidaNumpy => m.into_columns(),
        };
        times.copy_back(t.elapsed());
        out
    }

    /// Timed kernel calls. MADlib runs single-threaded boxed loops; R and
    /// AIDA use tuned kernels (both call optimised BLAS in the paper).
    pub fn cpd(&self, a: &Matrix, b: &Matrix, times: &mut SimTimes) -> Matrix {
        let t = Instant::now();
        let out = match self.flavor {
            MatFlavor::MadlibRows => naive_crossprod(a, b),
            _ => dense::crossprod(a, b).expect("cpd"),
        };
        times.matrix += t.elapsed();
        out
    }

    pub fn mmu(&self, a: &Matrix, b: &Matrix, times: &mut SimTimes) -> Matrix {
        let t = Instant::now();
        let out = match self.flavor {
            MatFlavor::MadlibRows => naive_matmul(a, b),
            _ => dense::matmul(a, b).expect("mmu"),
        };
        times.matrix += t.elapsed();
        out
    }

    pub fn inv(&self, a: &Matrix, times: &mut SimTimes) -> Matrix {
        let t = Instant::now();
        let out = dense::inverse(a).expect("inv");
        times.matrix += t.elapsed();
        out
    }

    pub fn add(&self, a: &Matrix, b: &Matrix, times: &mut SimTimes) -> Matrix {
        let t = Instant::now();
        let out = a.zip_with(b, |x, y| x + y).expect("add");
        times.matrix += t.elapsed();
        out
    }
}

impl SimTimes {
    fn copy_back(&mut self, d: Duration) {
        self.transform += d;
    }
}

fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let mut c = Matrix::zeros(a.rows(), b.cols());
    for i in 0..a.rows() {
        for j in 0..b.cols() {
            let mut s = 0.0;
            for l in 0..a.cols() {
                s += a.get(i, l) * b.get(l, j);
            }
            c.set(i, j, s);
        }
    }
    c
}

fn naive_crossprod(a: &Matrix, b: &Matrix) -> Matrix {
    let mut c = Matrix::zeros(a.cols(), b.cols());
    for i in 0..a.cols() {
        for j in 0..b.cols() {
            let mut s = 0.0;
            for l in 0..a.rows() {
                s += a.get(l, i) * b.get(l, j);
            }
            c.set(i, j, s);
        }
    }
    c
}

/// SciDB simulation: matrices as coordinate–value arrays (Table 7).
pub mod scidb {
    use super::*;

    /// A sparse-coordinate array (SciDB chunks elided: one flat array).
    pub struct CoordArray {
        pub cells: Vec<(u32, u32, f64)>,
        pub rows: usize,
        pub cols: usize,
    }

    /// Load a relation's numeric columns into a coordinate array.
    pub fn from_relation(r: &Relation, cols: &[&str]) -> CoordArray {
        let mut cells = Vec::with_capacity(r.len() * cols.len());
        for (j, c) in cols.iter().enumerate() {
            let v = r.column(c).expect("col").to_f64_vec().expect("numeric");
            for (i, &x) in v.iter().enumerate() {
                cells.push((i as u32, j as u32, x));
            }
        }
        CoordArray {
            cells,
            rows: r.len(),
            cols: cols.len(),
        }
    }

    /// Element-wise addition via an array join on coordinates — SciDB must
    /// align the two arrays cell by cell (the paper's explanation of the
    /// >10× gap).
    pub fn add(a: &CoordArray, b: &CoordArray) -> CoordArray {
        let mut table: HashMap<(u32, u32), f64> = HashMap::with_capacity(b.cells.len());
        for &(i, j, v) in &b.cells {
            table.insert((i, j), v);
        }
        let cells: Vec<(u32, u32, f64)> = a
            .cells
            .iter()
            .map(|&(i, j, v)| (i, j, v + table.get(&(i, j)).copied().unwrap_or(0.0)))
            .collect();
        CoordArray {
            cells,
            rows: a.rows,
            cols: a.cols,
        }
    }

    /// A selection over one attribute of the array: count cells in column
    /// `col` with value above a threshold (matches the relational
    /// `σ_{a_col > t}` row count).
    pub fn select_gt(a: &CoordArray, col: u32, threshold: f64) -> usize {
        a.cells
            .iter()
            .filter(|&&(_, j, v)| j == col && v > threshold)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rma_relation::RelationBuilder;

    fn ab() -> (Relation, Relation) {
        let a = RelationBuilder::new()
            .column("k", vec![1i64, 2, 3])
            .column("x", vec![1.0f64, 2.0, 3.0])
            .build()
            .unwrap();
        let b = RelationBuilder::new()
            .column("k2", vec![2i64, 3, 4])
            .column("y", vec![20.0f64, 30.0, 40.0])
            .build()
            .unwrap();
        (a, b)
    }

    #[test]
    fn all_join_flavors_agree() {
        let (a, b) = ab();
        let native = RelEngine::new(RelFlavor::Native).join(&a, &b, &[("k", "k2")]);
        let single = RelEngine::new(RelFlavor::Single).join(&a, &b, &[("k", "k2")]);
        let rowy = RelEngine::new(RelFlavor::RowAtATime).join(&a, &b, &[("k", "k2")]);
        assert_eq!(native.len(), 2);
        assert!(native.bag_equals(&single));
        assert!(native.bag_equals(&rowy));
    }

    #[test]
    fn aggregate_flavors_agree() {
        let r = RelationBuilder::new()
            .column("g", vec!["a", "b", "a"])
            .column("x", vec![1.0f64, 2.0, 3.0])
            .build()
            .unwrap();
        let aggs = [AggSpec::avg("x", "m"), AggSpec::count_star("n")];
        let native = RelEngine::new(RelFlavor::Native).aggregate(&r, &["g"], &aggs);
        let rowy = RelEngine::new(RelFlavor::RowAtATime).aggregate(&r, &["g"], &aggs);
        assert!(native.bag_equals(&rowy));
    }

    #[test]
    fn select_flavors_agree() {
        let (a, _) = ab();
        let pred = Expr::col("x").gt(Expr::lit(1.5));
        let native = RelEngine::new(RelFlavor::Native).select(&a, &pred);
        let rowy = RelEngine::new(RelFlavor::RowAtATime).select(&a, &pred);
        assert!(native.bag_equals(&rowy));
    }

    #[test]
    fn mat_engines_agree_and_charge_transform() {
        let (a, _) = ab();
        for flavor in [
            MatFlavor::RMatrix,
            MatFlavor::AidaNumpy,
            MatFlavor::MadlibRows,
        ] {
            let eng = MatEngine::new(flavor);
            let mut t = SimTimes::default();
            let m = eng.enter(&a, &["x"], &mut t);
            assert_eq!(m.rows(), 3);
            let c = eng.cpd(&m, &m, &mut t);
            assert!((c.get(0, 0) - 14.0).abs() < 1e-12);
            let back = eng.exit(c, &mut t);
            assert!((back[0][0] - 14.0).abs() < 1e-12);
            assert!(t.transform.as_nanos() > 0);
            assert!(t.matrix.as_nanos() > 0);
        }
    }

    #[test]
    fn aida_serialises_non_numeric_only() {
        let r = RelationBuilder::new()
            .column("d", vec!["2014-01-01", "2015-01-01"])
            .column("x", vec![1.0f64, 2.0])
            .build()
            .unwrap();
        let eng = MatEngine::new(MatFlavor::AidaNumpy);
        let mut t = SimTimes::default();
        eng.transfer_non_numeric(&r, &mut t);
        assert!(t.transform.as_nanos() > 0);
        let mut t2 = SimTimes::default();
        MatEngine::new(MatFlavor::RMatrix).transfer_non_numeric(&r, &mut t2);
        assert_eq!(t2.transform, Duration::default());
    }

    #[test]
    fn scidb_add_matches_columnar() {
        let (a, b) = ab();
        let ca = scidb::from_relation(&a, &["x"]);
        let cb = scidb::from_relation(&b, &["y"]);
        let sum = scidb::add(&ca, &cb);
        assert_eq!(sum.cells.len(), 3);
        assert_eq!(sum.cells[0].2, 21.0);
        assert_eq!(scidb::select_gt(&sum, 0, 30.0), 2);
    }

    #[test]
    fn naive_kernels_match_dense() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]).unwrap();
        assert!(naive_crossprod(&m, &m).approx_eq(&dense::crossprod(&m, &m).unwrap(), 1e-12));
        let sq = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        assert!(naive_matmul(&sq, &sq).approx_eq(&dense::matmul(&sq, &sq).unwrap(), 1e-12));
    }
}
