//! # rma-bench — evaluation harness
//!
//! Competitor simulators (R, AIDA, MADlib, SciDB), the four mixed workloads
//! of §8.6, and helpers shared by the Criterion benches and the
//! `reproduce` binary that regenerates every table and figure of the
//! paper's evaluation.

pub mod competitors;
pub mod workloads;

pub use competitors::{MatEngine, MatFlavor, RelEngine, RelFlavor, SimTimes};
pub use workloads::{
    joinorder_tables, pipeline_tables, run_conferences_covariance, run_joinorder,
    run_journeys_regression, run_pipeline, run_scidb_comparison, run_sort, run_thread_scaling,
    run_topk, run_trip_count, run_trips_ols, sort_table, thread_scaling_table, trip_count_tables,
    SystemKind, WorkloadReport,
};
