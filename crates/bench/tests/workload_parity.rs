//! All systems must produce the same analytical answers: the simulators
//! differ in *how* they compute, never in *what*.

use rma_bench::{
    run_conferences_covariance, run_journeys_regression, run_scidb_comparison, run_trip_count,
    run_trips_ols, trip_count_tables, SystemKind,
};

const ALL: [SystemKind; 6] = [
    SystemKind::RmaAuto,
    SystemKind::RmaBat,
    SystemKind::RmaMkl,
    SystemKind::R,
    SystemKind::Aida,
    SystemKind::Madlib,
];

#[test]
fn trips_ols_all_systems_agree() {
    let trips = rma_data::trips(3000, 12, 11);
    let stations = rma_data::stations(12, 11 ^ 0x5a5a);
    let reports: Vec<_> = ALL
        .iter()
        .map(|&s| run_trips_ols(s, &trips, &stations, 5))
        .collect();
    let reference = reports[0].check;
    // the generator builds duration ≈ 180·dist + noise: the fit must see it
    assert!(
        (reference - 180.0).abs() < 20.0,
        "slope {reference} far from planted 180"
    );
    for r in &reports {
        assert!(
            (r.check - reference).abs() < 1e-6 * reference.abs().max(1.0),
            "{} disagrees: {} vs {reference}",
            r.system.name(),
            r.check
        );
        assert!(r.total().as_nanos() > 0);
    }
}

#[test]
fn journeys_regression_all_systems_agree() {
    let journeys = rma_data::journeys(4000, 15, 21);
    let stations = rma_data::stations(15, 21 ^ 0xa5a5);
    for hops in [1, 2, 3] {
        let reports: Vec<_> = ALL
            .iter()
            .map(|&s| run_journeys_regression(s, &journeys, &stations, hops))
            .collect();
        let reference = reports[0].check;
        assert!(reference.is_finite(), "hops={hops}: non-finite checksum");
        // planted slope is 170 per hop
        assert!(
            (reference - 170.0 * hops as f64).abs() < 25.0 * hops as f64,
            "hops={hops}: slope sum {reference}"
        );
        for r in &reports {
            assert!(
                (r.check - reference).abs() < 1e-5 * reference.abs().max(1.0),
                "hops={hops}: {} disagrees: {} vs {reference}",
                r.system.name(),
                r.check
            );
        }
    }
}

#[test]
fn conferences_covariance_all_systems_agree() {
    let pubs = rma_data::publications(400, 40, 31);
    let rankings = rma_data::rankings(40, 31);
    let reports: Vec<_> = ALL
        .iter()
        .map(|&s| run_conferences_covariance(s, &pubs, &rankings))
        .collect();
    let reference = reports[0].check;
    assert!(reference.is_finite());
    for r in &reports {
        assert!(
            (r.check - reference).abs() < 1e-6 * reference.abs().max(1.0),
            "{} disagrees: {} vs {reference}",
            r.system.name(),
            r.check
        );
    }
}

#[test]
fn trip_count_all_systems_agree() {
    let (y1, y2) = trip_count_tables(2000, 10, 41);
    let reports: Vec<_> = ALL.iter().map(|&s| run_trip_count(s, &y1, &y2)).collect();
    let reference = reports[0].check;
    for r in &reports {
        assert!(
            (r.check - reference).abs() < 1e-6 * reference.abs(),
            "{} disagrees",
            r.system.name()
        );
    }
    // RMA+BAT must not pay any transformation cost on add
    let bat = reports
        .iter()
        .find(|r| r.system == SystemKind::RmaBat)
        .unwrap();
    assert_eq!(bat.transform.as_nanos(), 0);
}

#[test]
fn scidb_comparison_counts_agree() {
    let (y1, y2) = trip_count_tables(5000, 10, 51);
    let (rma_t, scidb_t, rma_count, scidb_count) = run_scidb_comparison(&y1, &y2, 10_000.0);
    assert_eq!(rma_count, scidb_count);
    assert!(rma_t.as_nanos() > 0 && scidb_t.as_nanos() > 0);
}
