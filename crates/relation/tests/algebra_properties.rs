//! Property-based tests of classical relational-algebra laws over the
//! column-store engine.

use proptest::prelude::*;
use rma_relation::{
    aggregate, cross_product, distinct, join_on, order_by, project, rename, select, union_all,
    AggSpec, Expr, Relation, RelationBuilder,
};

/// Random small relation (k: Int possibly duplicated, s: Str, x: Float).
fn arb_rel(max_rows: usize) -> impl Strategy<Value = Relation> {
    proptest::collection::vec((0i64..8, 0usize..4, -50.0f64..50.0), 0..max_rows).prop_map(|rows| {
        let ks: Vec<i64> = rows.iter().map(|(k, _, _)| *k).collect();
        let ss: Vec<String> = rows.iter().map(|(_, s, _)| format!("s{s}")).collect();
        let xs: Vec<f64> = rows.iter().map(|(_, _, x)| *x).collect();
        RelationBuilder::new()
            .column("k", ks)
            .column("s", ss)
            .column("x", xs)
            .build()
            .expect("valid")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // σ distributes over ∪: σ(a ∪ b) = σ(a) ∪ σ(b)
    #[test]
    fn selection_distributes_over_union(a in arb_rel(12), b in arb_rel(12)) {
        let p = Expr::col("x").gt(Expr::lit(0.0));
        let lhs = select(&union_all(&a, &b).unwrap(), &p).unwrap();
        let rhs = union_all(&select(&a, &p).unwrap(), &select(&b, &p).unwrap()).unwrap();
        prop_assert!(lhs.bag_equals(&rhs));
    }

    // cascading selections commute: σp(σq(r)) = σq(σp(r)) = σ(p ∧ q)(r)
    #[test]
    fn selections_commute(r in arb_rel(16)) {
        let p = Expr::col("x").gt(Expr::lit(-10.0));
        let q = Expr::col("k").lt(Expr::lit(5i64));
        let pq = select(&select(&r, &q).unwrap(), &p).unwrap();
        let qp = select(&select(&r, &p).unwrap(), &q).unwrap();
        let conj = select(&r, &p.clone().and(q.clone())).unwrap();
        prop_assert!(pq.bag_equals(&qp));
        prop_assert!(pq.bag_equals(&conj));
    }

    // projection then projection = outer projection
    #[test]
    fn projection_composes(r in arb_rel(16)) {
        let once = project(&r, &["k"]).unwrap();
        let twice = project(&project(&r, &["k", "x"]).unwrap(), &["k"]).unwrap();
        prop_assert!(once.bag_equals(&twice));
    }

    // join is commutative up to column order
    #[test]
    fn join_commutes(a in arb_rel(10), b in arb_rel(10)) {
        let b = rename(&b, &[("k", "k2"), ("s", "s2"), ("x", "x2")]).unwrap();
        let ab = join_on(&a, &b, &[("k", "k2")]).unwrap();
        let ba = join_on(&b, &a, &[("k2", "k")]).unwrap();
        prop_assert_eq!(ab.len(), ba.len());
        // reorder columns and compare as bags
        let cols: Vec<&str> = ab.schema().names().collect();
        let ba_reordered = project(&ba, &cols).unwrap();
        prop_assert!(ab.bag_equals(&ba_reordered));
    }

    // |a × b| = |a|·|b| and σ_true × = ×
    #[test]
    fn cross_product_cardinality(a in arb_rel(8), b in arb_rel(8)) {
        let b = rename(&b, &[("k", "k2"), ("s", "s2"), ("x", "x2")]).unwrap();
        let c = cross_product(&a, &b).unwrap();
        prop_assert_eq!(c.len(), a.len() * b.len());
    }

    // distinct is idempotent and never grows
    #[test]
    fn distinct_idempotent(r in arb_rel(20)) {
        let d1 = distinct(&r).unwrap();
        let d2 = distinct(&d1).unwrap();
        prop_assert!(d1.bag_equals(&d2));
        prop_assert!(d1.len() <= r.len());
    }

    // order_by is a permutation: same bag, sorted key column
    #[test]
    fn order_by_permutes(r in arb_rel(20)) {
        let o = order_by(&r, &["x"], &[true]).unwrap();
        prop_assert!(o.bag_equals(&r));
        let xs = o.column("x").unwrap().to_f64_vec().unwrap();
        prop_assert!(xs.windows(2).all(|w| w[0] <= w[1]));
    }

    // COUNT(*) equals the relation size; SUM splits over a partition
    #[test]
    fn aggregates_consistent(r in arb_rel(20)) {
        let g = aggregate(&r, &[], &[AggSpec::count_star("n"), AggSpec::sum("x", "s")]).unwrap();
        let n = g.cell(0, "n").unwrap();
        prop_assert_eq!(n, rma_storage::Value::Int(r.len() as i64));
        // group-by k, then total of group sums == global sum
        let per_k = aggregate(&r, &["k"], &[AggSpec::sum("x", "s")]).unwrap();
        let total: f64 = per_k
            .column("s")
            .unwrap()
            .iter_values()
            .filter_map(|v| v.as_f64())
            .sum();
        let global = g.cell(0, "s").unwrap().as_f64().unwrap_or(0.0);
        prop_assert!((total - global).abs() < 1e-6);
    }

    // join with a distinct key relation never duplicates rows
    #[test]
    fn key_join_preserves_cardinality(a in arb_rel(16)) {
        // build a key table of all distinct k values
        let keys = distinct(&project(&a, &["k"]).unwrap()).unwrap();
        let keys = rename(&keys, &[("k", "k2")]).unwrap();
        let j = join_on(&a, &keys, &[("k", "k2")]).unwrap();
        prop_assert_eq!(j.len(), a.len());
    }
}
