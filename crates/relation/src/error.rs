//! Relational-layer error type.

use rma_storage::StorageError;
use std::fmt;

/// Errors produced by the relational model and algebra.
#[derive(Debug, Clone, PartialEq)]
pub enum RelationError {
    /// Schema construction with a repeated attribute name.
    DuplicateAttribute(String),
    /// Reference to an attribute that is not in the schema.
    UnknownAttribute(String),
    /// Column count does not match schema width, or row width mismatch.
    ArityMismatch { expected: usize, found: usize },
    /// Columns of one relation have differing lengths.
    RaggedColumns,
    /// A column's type does not match its schema attribute.
    SchemaTypeMismatch { attribute: String },
    /// Expression evaluation failed (type errors, unknown names).
    Expression(String),
    /// The given attributes do not form a key of the relation.
    NotAKey(Vec<String>),
    /// Set operation over incompatible schemas.
    NotUnionCompatible,
    /// Underlying storage error.
    Storage(StorageError),
    /// The governing query was cancelled mid-operator
    /// (see [`crate::par::QueryGuard`]).
    Cancelled,
    /// The governing query ran past its deadline.
    DeadlineExceeded,
    /// The governing query's memory budget was exhausted.
    ResourceExhausted {
        /// Bytes the query had charged when the breach was detected.
        needed: u64,
        /// The budget the charges were debited against.
        budget: u64,
    },
    /// An out-of-core operator failed to read or write a spill file
    /// (the message carries the underlying I/O error; `std::io::Error`
    /// itself is neither `Clone` nor `PartialEq`).
    SpillIo(String),
}

impl fmt::Display for RelationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelationError::DuplicateAttribute(n) => write!(f, "duplicate attribute name `{n}`"),
            RelationError::UnknownAttribute(n) => write!(f, "unknown attribute `{n}`"),
            RelationError::ArityMismatch { expected, found } => {
                write!(f, "arity mismatch: expected {expected}, found {found}")
            }
            RelationError::RaggedColumns => f.write_str("columns have differing lengths"),
            RelationError::SchemaTypeMismatch { attribute } => {
                write!(f, "column type does not match schema for `{attribute}`")
            }
            RelationError::Expression(msg) => write!(f, "expression error: {msg}"),
            RelationError::NotAKey(attrs) => {
                write!(f, "attributes {attrs:?} do not form a key")
            }
            RelationError::NotUnionCompatible => f.write_str("relations are not union compatible"),
            RelationError::Storage(e) => write!(f, "storage error: {e}"),
            RelationError::Cancelled => f.write_str("query cancelled"),
            RelationError::DeadlineExceeded => f.write_str("query deadline exceeded"),
            RelationError::ResourceExhausted { needed, budget } => write!(
                f,
                "memory budget exhausted: needed {needed} bytes, budget {budget}"
            ),
            RelationError::SpillIo(msg) => write!(f, "spill I/O error: {msg}"),
        }
    }
}

impl std::error::Error for RelationError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RelationError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StorageError> for RelationError {
    fn from(e: StorageError) -> Self {
        RelationError::Storage(e)
    }
}

impl From<crate::par::GuardError> for RelationError {
    fn from(e: crate::par::GuardError) -> Self {
        use crate::par::GuardError;
        match e {
            GuardError::Cancelled => RelationError::Cancelled,
            GuardError::DeadlineExceeded => RelationError::DeadlineExceeded,
            GuardError::ResourceExhausted { needed, budget } => {
                RelationError::ResourceExhausted { needed, budget }
            }
        }
    }
}
