//! # rma-relation — relational model and algebra over BATs
//!
//! The relational layer of the RMA reproduction: schemas, relations stored
//! column-wise, a vectorised expression evaluator, and the classical algebra
//! (σ, π, ρ, ⋈, ×, ϑ, ∪, distinct, order, limit). The relational matrix
//! algebra in `rma-core` builds directly on this crate.

pub mod algebra;
pub mod error;
pub mod expr;
pub mod par;
pub mod relation;
pub mod schema;
pub mod spill;
pub mod stats;
pub mod trace;

pub use algebra::{
    aggregate, aggregate_external, aggregate_parallel, cross_product, distinct, grace_join_on,
    grace_natural_join, join_on, join_on_parallel, limit, natural_join, natural_join_parallel,
    order_by, order_by_external, order_by_parallel, project, project_exprs, rename, select,
    select_parallel, theta_join, top_k, top_k_parallel, union_all, AggFunc, AggSpec,
};
pub use error::RelationError;
pub use expr::{BinOp, Expr, ScalarFunc};
pub use par::{
    current_guard, guard_checkpoint, morsel_count, partition_ranges, threads_spawned, ActiveGuard,
    ActiveTicket, GuardError, PoolStats, QueryGuard, SessionTicket, WorkerPool,
};
pub use relation::{Relation, RelationBuilder};
pub use schema::{Attribute, Schema};
pub use spill::{live_spill_files, SpillFile, SpillReader};
pub use stats::Statistics;
