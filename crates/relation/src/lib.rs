//! # rma-relation — relational model and algebra over BATs
//!
//! The relational layer of the RMA reproduction: schemas, relations stored
//! column-wise, a vectorised expression evaluator, and the classical algebra
//! (σ, π, ρ, ⋈, ×, ϑ, ∪, distinct, order, limit). The relational matrix
//! algebra in `rma-core` builds directly on this crate.

pub mod algebra;
pub mod error;
pub mod expr;
pub mod relation;
pub mod schema;

pub use algebra::{
    aggregate, cross_product, distinct, join_on, limit, natural_join, order_by, project,
    project_exprs, rename, select, theta_join, union_all, AggFunc, AggSpec,
};
pub use error::RelationError;
pub use expr::{BinOp, Expr, ScalarFunc};
pub use relation::{Relation, RelationBuilder};
pub use schema::{Attribute, Schema};
