//! Scalar expressions with vectorised evaluation.
//!
//! Expressions appear in selections (σ predicate), projections with
//! arithmetic (e.g. the paper's `π_{C, B/(M−1), …}`), and join conditions.
//! Evaluation is column-at-a-time: an expression over a relation produces a
//! whole [`Column`] in one pass per operator, the same execution style the
//! engine uses everywhere else.
//!
//! Null semantics follow SQL: arithmetic and comparisons with NULL yield
//! NULL; `AND`/`OR` use three-valued logic; filters keep only rows whose
//! predicate is true (NULL is not true).

use crate::error::RelationError;
use crate::relation::Relation;
use rma_storage::{Bitmap, Column, ColumnData, DataType, Value};
use std::fmt;

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    And,
    Or,
}

impl BinOp {
    fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::NotEq | BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq
        )
    }

    fn is_logical(self) -> bool {
        matches!(self, BinOp::And | BinOp::Or)
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Eq => "=",
            BinOp::NotEq => "<>",
            BinOp::Lt => "<",
            BinOp::LtEq => "<=",
            BinOp::Gt => ">",
            BinOp::GtEq => ">=",
            BinOp::And => "AND",
            BinOp::Or => "OR",
        };
        f.write_str(s)
    }
}

/// A scalar expression tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Attribute reference.
    Col(String),
    /// Literal value.
    Lit(Value),
    /// Binary operation.
    Bin(Box<Expr>, BinOp, Box<Expr>),
    /// Arithmetic negation.
    Neg(Box<Expr>),
    /// Logical negation.
    Not(Box<Expr>),
    /// `IS NULL` test.
    IsNull(Box<Expr>),
    /// Unary scalar function (sqrt, abs) — always evaluates to Float.
    Func(ScalarFunc, Box<Expr>),
}

/// Built-in unary scalar functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScalarFunc {
    Sqrt,
    Abs,
}

impl Expr {
    pub fn col(name: impl Into<String>) -> Expr {
        Expr::Col(name.into())
    }

    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Lit(v.into())
    }

    pub fn bin(self, op: BinOp, rhs: Expr) -> Expr {
        Expr::Bin(Box::new(self), op, Box::new(rhs))
    }

    #[allow(clippy::should_implement_trait)]
    pub fn add(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Add, rhs)
    }
    #[allow(clippy::should_implement_trait)]
    pub fn sub(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Sub, rhs)
    }
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Mul, rhs)
    }
    #[allow(clippy::should_implement_trait)]
    pub fn div(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Div, rhs)
    }
    pub fn eq(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Eq, rhs)
    }
    pub fn not_eq(self, rhs: Expr) -> Expr {
        self.bin(BinOp::NotEq, rhs)
    }
    pub fn lt(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Lt, rhs)
    }
    pub fn lt_eq(self, rhs: Expr) -> Expr {
        self.bin(BinOp::LtEq, rhs)
    }
    pub fn gt(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Gt, rhs)
    }
    pub fn gt_eq(self, rhs: Expr) -> Expr {
        self.bin(BinOp::GtEq, rhs)
    }
    pub fn and(self, rhs: Expr) -> Expr {
        self.bin(BinOp::And, rhs)
    }
    pub fn or(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Or, rhs)
    }
    /// `SQRT(self)`.
    pub fn sqrt(self) -> Expr {
        Expr::Func(ScalarFunc::Sqrt, Box::new(self))
    }
    /// `ABS(self)`.
    pub fn abs(self) -> Expr {
        Expr::Func(ScalarFunc::Abs, Box::new(self))
    }

    /// All attribute names referenced by this expression.
    pub fn referenced_columns(&self, out: &mut Vec<String>) {
        match self {
            Expr::Col(n) => {
                if !out.contains(n) {
                    out.push(n.clone());
                }
            }
            Expr::Lit(_) => {}
            Expr::Bin(l, _, r) => {
                l.referenced_columns(out);
                r.referenced_columns(out);
            }
            Expr::Neg(e) | Expr::Not(e) | Expr::IsNull(e) | Expr::Func(_, e) => {
                e.referenced_columns(out)
            }
        }
    }

    /// Evaluate over a relation, producing one value per tuple.
    pub fn eval(&self, r: &Relation) -> Result<Column, RelationError> {
        match self {
            Expr::Col(name) => Ok(r.column(name)?.clone()),
            Expr::Lit(v) => broadcast_literal(v, r.len()),
            Expr::Neg(e) => {
                let c = e.eval(r)?;
                numeric_unary(&c, |x| -x)
            }
            Expr::Not(e) => {
                let c = e.eval(r)?;
                bool_unary(&c, |x| !x)
            }
            Expr::IsNull(e) => {
                let c = e.eval(r)?;
                let bits: Vec<bool> = (0..c.len()).map(|i| c.is_null(i)).collect();
                Ok(Column::new(ColumnData::Bool(bits)))
            }
            Expr::Func(f, e) => {
                let c = e.eval(r)?;
                let vals = as_f64_lossy(&c)?;
                let out: Vec<f64> = match f {
                    ScalarFunc::Sqrt => vals.iter().map(|&x| x.sqrt()).collect(),
                    ScalarFunc::Abs => vals.iter().map(|&x| x.abs()).collect(),
                };
                rebuild(ColumnData::Float(out), c.nulls())
            }
            Expr::Bin(l, op, rhs) => {
                let a = l.eval(r)?;
                let b = rhs.eval(r)?;
                if a.len() != b.len() {
                    return Err(RelationError::Expression(format!(
                        "operand length mismatch: {} vs {}",
                        a.len(),
                        b.len()
                    )));
                }
                if op.is_logical() {
                    logical(&a, *op, &b)
                } else if op.is_comparison() {
                    comparison(&a, *op, &b)
                } else {
                    arithmetic(&a, *op, &b)
                }
            }
        }
    }

    /// Evaluate as a filter predicate: `true` per row iff the expression is
    /// boolean true (NULL counts as false, per SQL).
    pub fn eval_filter(&self, r: &Relation) -> Result<Vec<bool>, RelationError> {
        let c = self.eval(r)?;
        match c.data() {
            ColumnData::Bool(v) => Ok(v
                .iter()
                .enumerate()
                .map(|(i, &b)| b && !c.is_null(i))
                .collect()),
            other => Err(RelationError::Expression(format!(
                "filter predicate must be boolean, found {}",
                other.data_type()
            ))),
        }
    }

    /// Result data type over the given relation (probes with an empty eval).
    pub fn result_type(&self, r: &Relation) -> Result<DataType, RelationError> {
        // Evaluating on the full relation would work but is wasteful for
        // planning; evaluate on a zero-row slice instead.
        let probe = r.take(&[]);
        Ok(self.eval(&probe)?.data_type())
    }
}

fn broadcast_literal(v: &Value, n: usize) -> Result<Column, RelationError> {
    let vals = vec![v.clone(); n.max(1)];
    let col = Column::from_values(&vals)
        .map_err(|_| RelationError::Expression("NULL literal needs a typed context".to_string()))?;
    if n == 0 {
        return Ok(col.take(&[]));
    }
    Ok(col)
}

fn numeric_unary(c: &Column, f: impl Fn(f64) -> f64) -> Result<Column, RelationError> {
    match c.data() {
        ColumnData::Int(v) => {
            let out: Vec<i64> = v.iter().map(|&x| f(x as f64) as i64).collect();
            rebuild(ColumnData::Int(out), c.nulls())
        }
        ColumnData::Float(v) => {
            let out: Vec<f64> = v.iter().map(|&x| f(x)).collect();
            rebuild(ColumnData::Float(out), c.nulls())
        }
        other => Err(RelationError::Expression(format!(
            "numeric operator on {}",
            other.data_type()
        ))),
    }
}

fn bool_unary(c: &Column, f: impl Fn(bool) -> bool) -> Result<Column, RelationError> {
    match c.data() {
        ColumnData::Bool(v) => {
            let out: Vec<bool> = v.iter().map(|&x| f(x)).collect();
            rebuild(ColumnData::Bool(out), c.nulls())
        }
        other => Err(RelationError::Expression(format!(
            "boolean operator on {}",
            other.data_type()
        ))),
    }
}

fn rebuild(data: ColumnData, nulls: Option<&Bitmap>) -> Result<Column, RelationError> {
    match nulls {
        Some(b) => Ok(Column::with_nulls(data, b.clone())?),
        None => Ok(Column::new(data)),
    }
}

fn union_nulls(a: &Column, b: &Column) -> Option<Bitmap> {
    match (a.nulls(), b.nulls()) {
        (None, None) => None,
        (Some(x), None) => Some(x.clone()),
        (None, Some(y)) => Some(y.clone()),
        (Some(x), Some(y)) => Some(x.union(y)),
    }
}

fn arithmetic(a: &Column, op: BinOp, b: &Column) -> Result<Column, RelationError> {
    let nulls = union_nulls(a, b);
    // Int ⊕ Int stays Int except division, which is exact (float).
    if let (ColumnData::Int(x), ColumnData::Int(y)) = (a.data(), b.data()) {
        if op != BinOp::Div {
            let out: Vec<i64> = x
                .iter()
                .zip(y)
                .map(|(&p, &q)| match op {
                    BinOp::Add => p.wrapping_add(q),
                    BinOp::Sub => p.wrapping_sub(q),
                    BinOp::Mul => p.wrapping_mul(q),
                    BinOp::Mod => {
                        if q == 0 {
                            0
                        } else {
                            p % q
                        }
                    }
                    _ => unreachable!(),
                })
                .collect();
            // integer x % 0 produced a placeholder; mark those rows null
            let mut nulls = nulls;
            if op == BinOp::Mod && y.contains(&0) {
                let mut bm = nulls.unwrap_or_else(|| Bitmap::new(x.len()));
                for (i, &q) in y.iter().enumerate() {
                    if q == 0 {
                        bm.set(i);
                    }
                }
                nulls = Some(bm);
            }
            return rebuild_opt(ColumnData::Int(out), nulls);
        }
    }
    let x = as_f64_lossy(a)?;
    let y = as_f64_lossy(b)?;
    let out: Vec<f64> = x
        .iter()
        .zip(&y)
        .map(|(&p, &q)| match op {
            BinOp::Add => p + q,
            BinOp::Sub => p - q,
            BinOp::Mul => p * q,
            BinOp::Div => p / q,
            BinOp::Mod => p % q,
            _ => unreachable!(),
        })
        .collect();
    rebuild_opt(ColumnData::Float(out), nulls)
}

fn rebuild_opt(data: ColumnData, nulls: Option<Bitmap>) -> Result<Column, RelationError> {
    match nulls {
        Some(b) => Ok(Column::with_nulls(data, b)?),
        None => Ok(Column::new(data)),
    }
}

/// Numeric view that tolerates nulls (placeholder slots pass through; the
/// caller re-applies the null bitmap).
fn as_f64_lossy(c: &Column) -> Result<Vec<f64>, RelationError> {
    match c.data() {
        ColumnData::Int(v) => Ok(v.iter().map(|&x| x as f64).collect()),
        ColumnData::Float(v) => Ok(v.clone()),
        other => Err(RelationError::Expression(format!(
            "arithmetic on {}",
            other.data_type()
        ))),
    }
}

fn comparison(a: &Column, op: BinOp, b: &Column) -> Result<Column, RelationError> {
    use std::cmp::Ordering;
    let nulls = union_nulls(a, b);
    let n = a.len();
    let apply = |ord: Ordering| match op {
        BinOp::Eq => ord == Ordering::Equal,
        BinOp::NotEq => ord != Ordering::Equal,
        BinOp::Lt => ord == Ordering::Less,
        BinOp::LtEq => ord != Ordering::Greater,
        BinOp::Gt => ord == Ordering::Greater,
        BinOp::GtEq => ord != Ordering::Less,
        _ => unreachable!(),
    };
    // Typed fast paths avoid per-row boxing on the hot σ path.
    let out: Vec<bool> = match (a.data(), b.data()) {
        (ColumnData::Int(x), ColumnData::Int(y)) => {
            x.iter().zip(y).map(|(p, q)| apply(p.cmp(q))).collect()
        }
        (ColumnData::Float(x), ColumnData::Float(y)) => x
            .iter()
            .zip(y)
            .map(|(p, q)| apply(p.total_cmp(q)))
            .collect(),
        (ColumnData::Int(x), ColumnData::Float(y)) => x
            .iter()
            .zip(y)
            .map(|(&p, q)| apply((p as f64).total_cmp(q)))
            .collect(),
        (ColumnData::Float(x), ColumnData::Int(y)) => x
            .iter()
            .zip(y)
            .map(|(p, &q)| apply(p.total_cmp(&(q as f64))))
            .collect(),
        (ColumnData::Str(x), ColumnData::Str(y)) => {
            x.iter().zip(y).map(|(p, q)| apply(p.cmp(q))).collect()
        }
        (ColumnData::Date(x), ColumnData::Date(y)) => {
            x.iter().zip(y).map(|(p, q)| apply(p.cmp(q))).collect()
        }
        _ => (0..n).map(|i| apply(a.cmp_rows_cross(i, b, i))).collect(),
    };
    rebuild_opt(ColumnData::Bool(out), nulls)
}

fn logical(a: &Column, op: BinOp, b: &Column) -> Result<Column, RelationError> {
    let (ColumnData::Bool(x), ColumnData::Bool(y)) = (a.data(), b.data()) else {
        return Err(RelationError::Expression(
            "AND/OR over non-boolean operands".to_string(),
        ));
    };
    let n = x.len();
    let mut out = Vec::with_capacity(n);
    let mut nulls = Bitmap::new(n);
    let mut any_null = false;
    for i in 0..n {
        let l = (!a.is_null(i)).then_some(x[i]);
        let r = (!b.is_null(i)).then_some(y[i]);
        // Kleene three-valued logic.
        let v = match op {
            BinOp::And => match (l, r) {
                (Some(false), _) | (_, Some(false)) => Some(false),
                (Some(true), Some(true)) => Some(true),
                _ => None,
            },
            BinOp::Or => match (l, r) {
                (Some(true), _) | (_, Some(true)) => Some(true),
                (Some(false), Some(false)) => Some(false),
                _ => None,
            },
            _ => unreachable!(),
        };
        match v {
            Some(b) => out.push(b),
            None => {
                out.push(false);
                nulls.set(i);
                any_null = true;
            }
        }
    }
    rebuild_opt(ColumnData::Bool(out), any_null.then_some(nulls))
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Col(n) => f.write_str(n),
            Expr::Lit(v) => write!(f, "{v}"),
            Expr::Bin(l, op, r) => write!(f, "({l} {op} {r})"),
            Expr::Neg(e) => write!(f, "(-{e})"),
            Expr::Func(func, e) => {
                let name = match func {
                    ScalarFunc::Sqrt => "SQRT",
                    ScalarFunc::Abs => "ABS",
                };
                write!(f, "{name}({e})")
            }
            Expr::Not(e) => write!(f, "(NOT {e})"),
            Expr::IsNull(e) => write!(f, "({e} IS NULL)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::RelationBuilder;

    fn rel() -> Relation {
        RelationBuilder::new()
            .column("a", vec![1i64, 2, 3])
            .column("b", vec![10.0f64, 20.0, 30.0])
            .column("s", vec!["x", "y", "z"])
            .build()
            .unwrap()
    }

    #[test]
    fn arithmetic_int_preserved() {
        let c = Expr::col("a").add(Expr::lit(1i64)).eval(&rel()).unwrap();
        assert_eq!(c.data_type(), DataType::Int);
        assert_eq!(c.get(2), Value::Int(4));
    }

    #[test]
    fn division_is_float() {
        let c = Expr::col("a").div(Expr::lit(2i64)).eval(&rel()).unwrap();
        assert_eq!(c.data_type(), DataType::Float);
        assert_eq!(c.get(0), Value::Float(0.5));
    }

    #[test]
    fn mixed_int_float_widens() {
        let c = Expr::col("a").mul(Expr::col("b")).eval(&rel()).unwrap();
        assert_eq!(c.data_type(), DataType::Float);
        assert_eq!(c.get(1), Value::Float(40.0));
    }

    #[test]
    fn comparisons_and_filter() {
        let keep = Expr::col("a")
            .gt(Expr::lit(1i64))
            .eval_filter(&rel())
            .unwrap();
        assert_eq!(keep, vec![false, true, true]);
        let keep = Expr::col("s")
            .eq(Expr::lit("y"))
            .eval_filter(&rel())
            .unwrap();
        assert_eq!(keep, vec![false, true, false]);
    }

    #[test]
    fn logic_three_valued() {
        let r = RelationBuilder::new()
            .column("p", vec![true, true, false])
            .build()
            .unwrap();
        let e = Expr::col("p").and(Expr::Not(Box::new(Expr::col("p"))));
        assert_eq!(e.eval_filter(&r).unwrap(), vec![false, false, false]);
        let e = Expr::col("p").or(Expr::Not(Box::new(Expr::col("p"))));
        assert_eq!(e.eval_filter(&r).unwrap(), vec![true, true, true]);
    }

    #[test]
    fn null_propagation() {
        let col = Column::from_values(&[Value::Int(1), Value::Null]).unwrap();
        let r = Relation::new(
            crate::schema::Schema::from_pairs(&[("a", DataType::Int)]).unwrap(),
            vec![col],
        )
        .unwrap();
        let c = Expr::col("a").add(Expr::lit(5i64)).eval(&r).unwrap();
        assert_eq!(c.get(0), Value::Int(6));
        assert!(c.is_null(1));
        // comparisons with null are null, so the filter drops the row
        let keep = Expr::col("a")
            .gt_eq(Expr::lit(0i64))
            .eval_filter(&r)
            .unwrap();
        assert_eq!(keep, vec![true, false]);
        // IS NULL sees it
        let keep = Expr::IsNull(Box::new(Expr::col("a")))
            .eval_filter(&r)
            .unwrap();
        assert_eq!(keep, vec![false, true]);
    }

    #[test]
    fn mod_by_zero_is_null() {
        let r = RelationBuilder::new()
            .column("a", vec![7i64, 9])
            .column("d", vec![2i64, 0])
            .build()
            .unwrap();
        let c = Expr::col("a")
            .bin(BinOp::Mod, Expr::col("d"))
            .eval(&r)
            .unwrap();
        assert_eq!(c.get(0), Value::Int(1));
        assert!(c.is_null(1));
    }

    #[test]
    fn type_errors_reported() {
        assert!(Expr::col("s").add(Expr::lit(1i64)).eval(&rel()).is_err());
        assert!(Expr::col("a").and(Expr::col("a")).eval(&rel()).is_err());
        assert!(Expr::col("a").eval_filter(&rel()).is_err());
        assert!(Expr::col("missing").eval(&rel()).is_err());
    }

    #[test]
    fn referenced_columns_dedup() {
        let e = Expr::col("a").add(Expr::col("b")).mul(Expr::col("a"));
        let mut cols = Vec::new();
        e.referenced_columns(&mut cols);
        assert_eq!(cols, vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn result_type_probe_is_cheap() {
        let e = Expr::col("a").div(Expr::lit(2i64));
        assert_eq!(e.result_type(&rel()).unwrap(), DataType::Float);
    }

    #[test]
    fn display() {
        let e = Expr::col("a").add(Expr::lit(1i64)).lt(Expr::col("b"));
        assert_eq!(e.to_string(), "((a + 1) < b)");
    }

    #[test]
    fn literal_broadcast_on_empty_relation() {
        let empty = rel().take(&[]);
        let c = Expr::lit(3i64).eval(&empty).unwrap();
        assert_eq!(c.len(), 0);
        assert_eq!(c.data_type(), DataType::Int);
    }
}
