//! Scalar expressions with vectorised evaluation.
//!
//! Expressions appear in selections (σ predicate), projections with
//! arithmetic (e.g. the paper's `π_{C, B/(M−1), …}`), and join conditions.
//! Evaluation is column-at-a-time: an expression over a relation produces a
//! whole [`Column`] in one pass per operator, the same execution style the
//! engine uses everywhere else.
//!
//! Null semantics follow SQL: arithmetic and comparisons with NULL yield
//! NULL; `AND`/`OR` use three-valued logic; filters keep only rows whose
//! predicate is true (NULL is not true).

use crate::error::RelationError;
use crate::relation::Relation;
use rma_storage::{Bitmap, Column, ColumnAccessor, ColumnData, DataType, Value};
use std::fmt;

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    And,
    Or,
}

impl BinOp {
    fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::NotEq | BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq
        )
    }

    fn is_logical(self) -> bool {
        matches!(self, BinOp::And | BinOp::Or)
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Eq => "=",
            BinOp::NotEq => "<>",
            BinOp::Lt => "<",
            BinOp::LtEq => "<=",
            BinOp::Gt => ">",
            BinOp::GtEq => ">=",
            BinOp::And => "AND",
            BinOp::Or => "OR",
        };
        f.write_str(s)
    }
}

/// A scalar expression tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Attribute reference.
    Col(String),
    /// Literal value.
    Lit(Value),
    /// Binary operation.
    Bin(Box<Expr>, BinOp, Box<Expr>),
    /// Arithmetic negation.
    Neg(Box<Expr>),
    /// Logical negation.
    Not(Box<Expr>),
    /// `IS NULL` test.
    IsNull(Box<Expr>),
    /// Unary scalar function (sqrt, abs) — always evaluates to Float.
    Func(ScalarFunc, Box<Expr>),
}

/// Built-in unary scalar functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScalarFunc {
    Sqrt,
    Abs,
}

impl Expr {
    pub fn col(name: impl Into<String>) -> Expr {
        Expr::Col(name.into())
    }

    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Lit(v.into())
    }

    pub fn bin(self, op: BinOp, rhs: Expr) -> Expr {
        Expr::Bin(Box::new(self), op, Box::new(rhs))
    }

    #[allow(clippy::should_implement_trait)]
    pub fn add(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Add, rhs)
    }
    #[allow(clippy::should_implement_trait)]
    pub fn sub(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Sub, rhs)
    }
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Mul, rhs)
    }
    #[allow(clippy::should_implement_trait)]
    pub fn div(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Div, rhs)
    }
    pub fn eq(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Eq, rhs)
    }
    pub fn not_eq(self, rhs: Expr) -> Expr {
        self.bin(BinOp::NotEq, rhs)
    }
    pub fn lt(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Lt, rhs)
    }
    pub fn lt_eq(self, rhs: Expr) -> Expr {
        self.bin(BinOp::LtEq, rhs)
    }
    pub fn gt(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Gt, rhs)
    }
    pub fn gt_eq(self, rhs: Expr) -> Expr {
        self.bin(BinOp::GtEq, rhs)
    }
    pub fn and(self, rhs: Expr) -> Expr {
        self.bin(BinOp::And, rhs)
    }
    pub fn or(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Or, rhs)
    }
    /// `SQRT(self)`.
    pub fn sqrt(self) -> Expr {
        Expr::Func(ScalarFunc::Sqrt, Box::new(self))
    }
    /// `ABS(self)`.
    pub fn abs(self) -> Expr {
        Expr::Func(ScalarFunc::Abs, Box::new(self))
    }

    /// All attribute names referenced by this expression.
    pub fn referenced_columns(&self, out: &mut Vec<String>) {
        match self {
            Expr::Col(n) => {
                if !out.contains(n) {
                    out.push(n.clone());
                }
            }
            Expr::Lit(_) => {}
            Expr::Bin(l, _, r) => {
                l.referenced_columns(out);
                r.referenced_columns(out);
            }
            Expr::Neg(e) | Expr::Not(e) | Expr::IsNull(e) | Expr::Func(_, e) => {
                e.referenced_columns(out)
            }
        }
    }

    /// Evaluate over a relation, producing one value per tuple.
    ///
    /// Internally evaluation is *scalar-lazy*: literal subtrees stay
    /// scalars for the whole walk (`Ev::Scalar`), combine with columns
    /// through constant-operand kernels, and only an expression whose
    /// entire result is constant is broadcast — once, here, at the top.
    /// `Expr::Lit` therefore costs O(1) regardless of relation size. On a
    /// view, only the referenced columns are gathered, and only their
    /// selected rows are evaluated.
    pub fn eval(&self, r: &Relation) -> Result<Column, RelationError> {
        match self.eval_ev(r)? {
            Ev::Col(c) => Ok(c),
            Ev::Scalar(v) => broadcast_scalar(&v, r.len()),
        }
    }

    /// Evaluate without forcing constant results into columns.
    fn eval_ev(&self, r: &Relation) -> Result<Ev, RelationError> {
        match self {
            Expr::Col(name) => Ok(Ev::Col(r.column_shared(name)?)),
            Expr::Lit(v) => Ok(Ev::Scalar(v.clone())),
            Expr::Neg(e) => match e.eval_ev(r)? {
                Ev::Col(c) => numeric_unary(&c, |x| -x).map(Ev::Col),
                Ev::Scalar(v) => fold_scalar(&v, |c| numeric_unary(c, |x| -x)),
            },
            Expr::Not(e) => match e.eval_ev(r)? {
                Ev::Col(c) => bool_unary(&c, |x| !x).map(Ev::Col),
                Ev::Scalar(v) => fold_scalar(&v, |c| bool_unary(c, |x| !x)),
            },
            Expr::IsNull(e) => match e.eval_ev(r)? {
                Ev::Col(c) => {
                    let bits: Vec<bool> = (0..c.len()).map(|i| c.is_null(i)).collect();
                    Ok(Ev::Col(Column::new(ColumnData::Bool(bits))))
                }
                Ev::Scalar(v) => Ok(Ev::Scalar(Value::Bool(v.is_null()))),
            },
            Expr::Func(f, e) => {
                let apply = |c: &Column| {
                    let vals = as_f64_lossy(c)?;
                    let out: Vec<f64> = match f {
                        ScalarFunc::Sqrt => vals.iter().map(|&x| x.sqrt()).collect(),
                        ScalarFunc::Abs => vals.iter().map(|&x| x.abs()).collect(),
                    };
                    rebuild(ColumnData::Float(out), c.nulls())
                };
                match e.eval_ev(r)? {
                    Ev::Col(c) => apply(&c).map(Ev::Col),
                    Ev::Scalar(v) => fold_scalar(&v, apply),
                }
            }
            Expr::Bin(l, op, rhs) => {
                let a = l.eval_ev(r)?;
                let b = rhs.eval_ev(r)?;
                match (a, b) {
                    (Ev::Col(a), Ev::Col(b)) => {
                        if a.len() != b.len() {
                            return Err(RelationError::Expression(format!(
                                "operand length mismatch: {} vs {}",
                                a.len(),
                                b.len()
                            )));
                        }
                        let out = if op.is_logical() {
                            logical(&a, *op, &b)?
                        } else if op.is_comparison() {
                            comparison(&a, *op, &b)?
                        } else {
                            arithmetic(&a, *op, &b)?
                        };
                        Ok(Ev::Col(out))
                    }
                    (Ev::Col(c), Ev::Scalar(v)) => col_scalar(&c, *op, &v, true).map(Ev::Col),
                    (Ev::Scalar(v), Ev::Col(c)) => col_scalar(&c, *op, &v, false).map(Ev::Col),
                    (Ev::Scalar(x), Ev::Scalar(y)) => {
                        // constant folding via one-row columns, reusing the
                        // vector kernels' type/null rules verbatim
                        let a = scalar_as_column(&x)?;
                        let b = scalar_as_column(&y)?;
                        let out = if op.is_logical() {
                            logical(&a, *op, &b)?
                        } else if op.is_comparison() {
                            comparison(&a, *op, &b)?
                        } else {
                            arithmetic(&a, *op, &b)?
                        };
                        Ok(Ev::Scalar(out.get(0)))
                    }
                }
            }
        }
    }

    /// Evaluate as a filter predicate: `true` per row iff the expression is
    /// boolean true (NULL counts as false, per SQL). A constant predicate
    /// never materialises a column.
    pub fn eval_filter(&self, r: &Relation) -> Result<Vec<bool>, RelationError> {
        match self.eval_ev(r)? {
            Ev::Scalar(Value::Bool(b)) => Ok(vec![b; r.len()]),
            Ev::Scalar(Value::Null) => Err(RelationError::Expression(
                "NULL literal needs a typed context".to_string(),
            )),
            Ev::Scalar(v) => Err(RelationError::Expression(format!(
                "filter predicate must be boolean, found {}",
                v.data_type()
                    .map_or_else(|| "NULL".to_string(), |d| d.to_string())
            ))),
            Ev::Col(c) => match c.data() {
                ColumnData::Bool(v) => Ok(v
                    .iter()
                    .enumerate()
                    .map(|(i, &b)| b && !c.is_null(i))
                    .collect()),
                other => Err(RelationError::Expression(format!(
                    "filter predicate must be boolean, found {}",
                    other.data_type()
                ))),
            },
        }
    }

    /// Result data type over the given relation's schema.
    pub fn result_type(&self, r: &Relation) -> Result<DataType, RelationError> {
        self.result_type_of(r.schema())
    }

    /// Result data type against a schema — pure type inference, mirroring
    /// the evaluator's rules; no relation (not even a zero-row probe) is
    /// constructed.
    pub fn result_type_of(
        &self,
        schema: &crate::schema::Schema,
    ) -> Result<DataType, RelationError> {
        match self {
            Expr::Col(name) => Ok(schema.attribute(name)?.dtype()),
            Expr::Lit(v) => v.data_type().ok_or_else(|| {
                RelationError::Expression("NULL literal needs a typed context".to_string())
            }),
            Expr::Neg(e) => {
                let dt = e.result_type_of(schema)?;
                if dt.is_numeric() {
                    Ok(dt)
                } else {
                    Err(RelationError::Expression(format!(
                        "numeric operator on {dt}"
                    )))
                }
            }
            Expr::Not(e) => {
                let dt = e.result_type_of(schema)?;
                if dt == DataType::Bool {
                    Ok(DataType::Bool)
                } else {
                    Err(RelationError::Expression(format!(
                        "boolean operator on {dt}"
                    )))
                }
            }
            // IS NULL is defined for every operand, including an untyped
            // NULL literal
            Expr::IsNull(e) => {
                if !matches!(e.as_ref(), Expr::Lit(Value::Null)) {
                    e.result_type_of(schema)?;
                }
                Ok(DataType::Bool)
            }
            Expr::Func(_, e) => {
                let dt = e.result_type_of(schema)?;
                if dt.is_numeric() {
                    Ok(DataType::Float)
                } else {
                    Err(RelationError::Expression(format!("arithmetic on {dt}")))
                }
            }
            Expr::Bin(l, op, r) => {
                let a = l.result_type_of(schema)?;
                let b = r.result_type_of(schema)?;
                if op.is_logical() {
                    if a == DataType::Bool && b == DataType::Bool {
                        Ok(DataType::Bool)
                    } else {
                        Err(RelationError::Expression(
                            "AND/OR over non-boolean operands".to_string(),
                        ))
                    }
                } else if op.is_comparison() {
                    Ok(DataType::Bool)
                } else {
                    let non_numeric = [a, b].into_iter().find(|d| !d.is_numeric());
                    if let Some(dt) = non_numeric {
                        return Err(RelationError::Expression(format!("arithmetic on {dt}")));
                    }
                    if a == DataType::Int && b == DataType::Int && *op != BinOp::Div {
                        Ok(DataType::Int)
                    } else {
                        Ok(DataType::Float)
                    }
                }
            }
        }
    }
}

/// A lazily-broadcast evaluation result: a column of `r.len()` values, or a
/// scalar standing for a constant column of any length.
enum Ev {
    Col(Column),
    Scalar(Value),
}

/// Force a scalar into an n-row column (the only broadcast left; reached
/// when a whole expression is constant, e.g. a literal projection).
fn broadcast_scalar(v: &Value, n: usize) -> Result<Column, RelationError> {
    let dt = v.data_type().ok_or_else(|| {
        RelationError::Expression("NULL literal needs a typed context".to_string())
    })?;
    Ok(Column::broadcast(v, dt, n)?)
}

/// A scalar as a one-row column, so unary/binary column kernels can be
/// reused for constant folding.
fn scalar_as_column(v: &Value) -> Result<Column, RelationError> {
    broadcast_scalar(v, 1)
}

/// Apply a column kernel to a scalar via a one-row column and unwrap the
/// scalar result.
fn fold_scalar(
    v: &Value,
    f: impl FnOnce(&Column) -> Result<Column, RelationError>,
) -> Result<Ev, RelationError> {
    let c = scalar_as_column(v)?;
    Ok(Ev::Scalar(f(&c)?.get(0)))
}

/// Binary operation between a column and a constant. `scalar_right` tells
/// which side the scalar came from (matters for `-`, `/`, `%`, `<`…).
fn col_scalar(
    c: &Column,
    op: BinOp,
    v: &Value,
    scalar_right: bool,
) -> Result<Column, RelationError> {
    if v.is_null() {
        return Err(RelationError::Expression(
            "NULL literal needs a typed context".to_string(),
        ));
    }
    if op.is_logical() {
        return logical_scalar(c, op, v);
    }
    if op.is_comparison() {
        return comparison_scalar(c, op, v, scalar_right);
    }
    arithmetic_scalar(c, op, v, scalar_right)
}

/// AND/OR against a constant: the identity cases return the column itself
/// (O(1), Arc share); the absorbing cases return a constant column.
/// Three-valued logic holds: NULL AND TRUE is NULL (nulls survive the
/// share), NULL AND FALSE is FALSE, and dually for OR.
fn logical_scalar(c: &Column, op: BinOp, v: &Value) -> Result<Column, RelationError> {
    let (ColumnData::Bool(_), Value::Bool(q)) = (c.data(), v) else {
        return Err(RelationError::Expression(
            "AND/OR over non-boolean operands".to_string(),
        ));
    };
    match (op, q) {
        (BinOp::And, true) | (BinOp::Or, false) => Ok(c.clone()),
        (BinOp::And, false) => Ok(Column::new(ColumnData::Bool(vec![false; c.len()]))),
        (BinOp::Or, true) => Ok(Column::new(ColumnData::Bool(vec![true; c.len()]))),
        _ => unreachable!("caller dispatched a logical op"),
    }
}

/// Comparison against a constant, with typed fast paths (the hot σ shape
/// `col ⋚ literal`): the scalar stays in a register, no broadcast vector.
fn comparison_scalar(
    c: &Column,
    op: BinOp,
    v: &Value,
    scalar_right: bool,
) -> Result<Column, RelationError> {
    // normalise to column-vs-scalar by flipping the order relation
    let op = if scalar_right {
        op
    } else {
        match op {
            BinOp::Lt => BinOp::Gt,
            BinOp::LtEq => BinOp::GtEq,
            BinOp::Gt => BinOp::Lt,
            BinOp::GtEq => BinOp::LtEq,
            other => other,
        }
    };
    let apply = ord_to_bool(op);
    // Encoded fast paths run the predicate on the compressed form — no
    // decode sink. A dictionary column evaluates the predicate once per
    // *distinct value* (the code LUT), then maps codes through it; an RLE
    // column evaluates once per run; a packed column extracts in place.
    match (c.accessor(), v) {
        (ColumnAccessor::Str(s), Value::Str(q)) => {
            if let Some(d) = s.dict() {
                let lut: Vec<bool> = d
                    .values()
                    .iter()
                    .map(|p| apply(p.as_str().cmp(q.as_str())))
                    .collect();
                let out: Vec<bool> = d.codes().iter().map(|&code| lut[code as usize]).collect();
                return rebuild(ColumnData::Bool(out), c.nulls());
            }
        }
        (ColumnAccessor::Int(ints), Value::Int(q)) => {
            if let Some(r) = ints.rle() {
                return rebuild(
                    ColumnData::Bool(rle_compare(r, |x| apply(x.cmp(q)))),
                    c.nulls(),
                );
            }
            if ints.as_slice().is_none() {
                let out: Vec<bool> = (0..ints.len()).map(|i| apply(ints.get(i).cmp(q))).collect();
                return rebuild(ColumnData::Bool(out), c.nulls());
            }
        }
        (ColumnAccessor::Float(fs), Value::Float(q)) => {
            if let Some(r) = fs.rle() {
                return rebuild(
                    ColumnData::Bool(rle_compare(r, |x| apply(x.total_cmp(q)))),
                    c.nulls(),
                );
            }
        }
        (ColumnAccessor::Float(fs), Value::Int(q)) => {
            if let Some(r) = fs.rle() {
                let q = *q as f64;
                return rebuild(
                    ColumnData::Bool(rle_compare(r, |x| apply(x.total_cmp(&q)))),
                    c.nulls(),
                );
            }
        }
        (ColumnAccessor::Int(ints), Value::Float(q)) if ints.as_slice().is_none() => {
            let out: Vec<bool> = (0..ints.len())
                .map(|i| apply((ints.get(i) as f64).total_cmp(q)))
                .collect();
            return rebuild(ColumnData::Bool(out), c.nulls());
        }
        _ => {}
    }
    let out: Vec<bool> = match (c.data(), v) {
        (ColumnData::Int(x), Value::Int(q)) => x.iter().map(|p| apply(p.cmp(q))).collect(),
        (ColumnData::Int(x), Value::Float(q)) => {
            x.iter().map(|&p| apply((p as f64).total_cmp(q))).collect()
        }
        (ColumnData::Float(x), Value::Float(q)) => {
            x.iter().map(|p| apply(p.total_cmp(q))).collect()
        }
        (ColumnData::Float(x), Value::Int(q)) => {
            x.iter().map(|p| apply(p.total_cmp(&(*q as f64)))).collect()
        }
        (ColumnData::Str(x), Value::Str(q)) => x
            .iter()
            .map(|p| apply(p.as_str().cmp(q.as_str())))
            .collect(),
        (ColumnData::Date(x), Value::Date(q)) => x.iter().map(|p| apply(p.cmp(q))).collect(),
        (ColumnData::Bool(x), Value::Bool(q)) => x.iter().map(|p| apply(p.cmp(q))).collect(),
        _ => (0..c.len()).map(|i| apply(c.get(i).total_cmp(v))).collect(),
    };
    rebuild(ColumnData::Bool(out), c.nulls())
}

/// Arithmetic against a constant. Int ⊕ Int stays Int except division;
/// everything else runs on the f64 path with the scalar widened once.
fn arithmetic_scalar(
    c: &Column,
    op: BinOp,
    v: &Value,
    scalar_right: bool,
) -> Result<Column, RelationError> {
    if let (ColumnData::Int(x), Value::Int(q)) = (c.data(), v) {
        if op != BinOp::Div {
            let q = *q;
            let out: Vec<i64> = x
                .iter()
                .map(|&p| {
                    let (l, r) = if scalar_right { (p, q) } else { (q, p) };
                    match op {
                        BinOp::Add => l.wrapping_add(r),
                        BinOp::Sub => l.wrapping_sub(r),
                        BinOp::Mul => l.wrapping_mul(r),
                        BinOp::Mod => {
                            if r == 0 {
                                0
                            } else {
                                l % r
                            }
                        }
                        _ => unreachable!(),
                    }
                })
                .collect();
            let nulls = if op == BinOp::Mod {
                let nulls = c.nulls().cloned();
                if scalar_right {
                    // constant divisor: zero nulls every row, anything
                    // else adds no null at all
                    if q == 0 {
                        null_zero_divisors(nulls, x.len(), (0..x.len()).map(|i| (i, q)))
                    } else {
                        nulls
                    }
                } else {
                    null_zero_divisors(nulls, x.len(), x.iter().copied().enumerate())
                }
            } else {
                c.nulls().cloned()
            };
            return rebuild_opt(ColumnData::Int(out), nulls);
        }
    }
    let xs = as_f64_lossy(c)?;
    let q = match v {
        Value::Int(i) => *i as f64,
        Value::Float(f) => *f,
        other => {
            return Err(RelationError::Expression(format!(
                "arithmetic on {}",
                other
                    .data_type()
                    .map_or_else(|| "NULL".to_string(), |d| d.to_string())
            )))
        }
    };
    let out: Vec<f64> = xs
        .iter()
        .map(|&p| {
            let (l, r) = if scalar_right { (p, q) } else { (q, p) };
            match op {
                BinOp::Add => l + r,
                BinOp::Sub => l - r,
                BinOp::Mul => l * r,
                BinOp::Div => l / r,
                BinOp::Mod => l % r,
                _ => unreachable!(),
            }
        })
        .collect();
    rebuild_opt(ColumnData::Float(out), c.nulls().cloned())
}

fn numeric_unary(c: &Column, f: impl Fn(f64) -> f64) -> Result<Column, RelationError> {
    match c.data() {
        ColumnData::Int(v) => {
            let out: Vec<i64> = v.iter().map(|&x| f(x as f64) as i64).collect();
            rebuild(ColumnData::Int(out), c.nulls())
        }
        ColumnData::Float(v) => {
            let out: Vec<f64> = v.iter().map(|&x| f(x)).collect();
            rebuild(ColumnData::Float(out), c.nulls())
        }
        other => Err(RelationError::Expression(format!(
            "numeric operator on {}",
            other.data_type()
        ))),
    }
}

fn bool_unary(c: &Column, f: impl Fn(bool) -> bool) -> Result<Column, RelationError> {
    match c.data() {
        ColumnData::Bool(v) => {
            let out: Vec<bool> = v.iter().map(|&x| f(x)).collect();
            rebuild(ColumnData::Bool(out), c.nulls())
        }
        other => Err(RelationError::Expression(format!(
            "boolean operator on {}",
            other.data_type()
        ))),
    }
}

fn rebuild(data: ColumnData, nulls: Option<&Bitmap>) -> Result<Column, RelationError> {
    match nulls {
        Some(b) => Ok(Column::with_nulls(data, b.clone())?),
        None => Ok(Column::new(data)),
    }
}

fn union_nulls(a: &Column, b: &Column) -> Option<Bitmap> {
    match (a.nulls(), b.nulls()) {
        (None, None) => None,
        (Some(x), None) => Some(x.clone()),
        (None, Some(y)) => Some(y.clone()),
        (Some(x), Some(y)) => Some(x.union(y)),
    }
}

fn arithmetic(a: &Column, op: BinOp, b: &Column) -> Result<Column, RelationError> {
    let nulls = union_nulls(a, b);
    // Int ⊕ Int stays Int except division, which is exact (float).
    if let (ColumnData::Int(x), ColumnData::Int(y)) = (a.data(), b.data()) {
        if op != BinOp::Div {
            let out: Vec<i64> = x
                .iter()
                .zip(y)
                .map(|(&p, &q)| match op {
                    BinOp::Add => p.wrapping_add(q),
                    BinOp::Sub => p.wrapping_sub(q),
                    BinOp::Mul => p.wrapping_mul(q),
                    BinOp::Mod => {
                        if q == 0 {
                            0
                        } else {
                            p % q
                        }
                    }
                    _ => unreachable!(),
                })
                .collect();
            let nulls = if op == BinOp::Mod {
                null_zero_divisors(nulls, x.len(), y.iter().copied().enumerate())
            } else {
                nulls
            };
            return rebuild_opt(ColumnData::Int(out), nulls);
        }
    }
    let x = as_f64_lossy(a)?;
    let y = as_f64_lossy(b)?;
    let out: Vec<f64> = x
        .iter()
        .zip(&y)
        .map(|(&p, &q)| match op {
            BinOp::Add => p + q,
            BinOp::Sub => p - q,
            BinOp::Mul => p * q,
            BinOp::Div => p / q,
            BinOp::Mod => p % q,
            _ => unreachable!(),
        })
        .collect();
    rebuild_opt(ColumnData::Float(out), nulls)
}

fn rebuild_opt(data: ColumnData, nulls: Option<Bitmap>) -> Result<Column, RelationError> {
    match nulls {
        Some(b) => Ok(Column::with_nulls(data, b)?),
        None => Ok(Column::new(data)),
    }
}

/// Evaluate a per-value predicate over an RLE column run-at-a-time: one
/// evaluation per run, replicated across the run's length.
fn rle_compare<T: rma_storage::encoding::RleValue>(
    r: &rma_storage::Rle<T>,
    pred: impl Fn(&T) -> bool,
) -> Vec<bool> {
    let mut out = Vec::with_capacity(r.len());
    for seg in r.segs() {
        match seg {
            rma_storage::Seg::Run { value, len } => {
                out.extend(std::iter::repeat_n(pred(value), *len))
            }
            rma_storage::Seg::Dense(v) => out.extend(v.iter().map(&pred)),
        }
    }
    out
}

/// The comparison operators' `Ordering → bool` table, shared by the
/// column-column and column-scalar kernels so their semantics cannot
/// diverge.
fn ord_to_bool(op: BinOp) -> impl Fn(std::cmp::Ordering) -> bool + Copy {
    use std::cmp::Ordering;
    move |ord: Ordering| match op {
        BinOp::Eq => ord == Ordering::Equal,
        BinOp::NotEq => ord != Ordering::Equal,
        BinOp::Lt => ord == Ordering::Less,
        BinOp::LtEq => ord != Ordering::Greater,
        BinOp::Gt => ord == Ordering::Greater,
        BinOp::GtEq => ord != Ordering::Less,
        _ => unreachable!("not a comparison operator"),
    }
}

/// Null-mark every row whose integer `%` divisor is zero (the kernel wrote
/// a placeholder there), on top of any existing null union. Shared by the
/// column-column and column-scalar Mod kernels.
fn null_zero_divisors(
    nulls: Option<Bitmap>,
    n: usize,
    divisors: impl Iterator<Item = (usize, i64)>,
) -> Option<Bitmap> {
    let mut nulls = nulls;
    for (i, q) in divisors {
        if q == 0 {
            nulls.get_or_insert_with(|| Bitmap::new(n)).set(i);
        }
    }
    nulls
}

/// Numeric view that tolerates nulls (placeholder slots pass through; the
/// caller re-applies the null bitmap).
fn as_f64_lossy(c: &Column) -> Result<Vec<f64>, RelationError> {
    match c.data() {
        ColumnData::Int(v) => Ok(v.iter().map(|&x| x as f64).collect()),
        ColumnData::Float(v) => Ok(v.clone()),
        other => Err(RelationError::Expression(format!(
            "arithmetic on {}",
            other.data_type()
        ))),
    }
}

fn comparison(a: &Column, op: BinOp, b: &Column) -> Result<Column, RelationError> {
    let nulls = union_nulls(a, b);
    let n = a.len();
    let apply = ord_to_bool(op);
    // Typed fast paths avoid per-row boxing on the hot σ path.
    let out: Vec<bool> = match (a.data(), b.data()) {
        (ColumnData::Int(x), ColumnData::Int(y)) => {
            x.iter().zip(y).map(|(p, q)| apply(p.cmp(q))).collect()
        }
        (ColumnData::Float(x), ColumnData::Float(y)) => x
            .iter()
            .zip(y)
            .map(|(p, q)| apply(p.total_cmp(q)))
            .collect(),
        (ColumnData::Int(x), ColumnData::Float(y)) => x
            .iter()
            .zip(y)
            .map(|(&p, q)| apply((p as f64).total_cmp(q)))
            .collect(),
        (ColumnData::Float(x), ColumnData::Int(y)) => x
            .iter()
            .zip(y)
            .map(|(p, &q)| apply(p.total_cmp(&(q as f64))))
            .collect(),
        (ColumnData::Str(x), ColumnData::Str(y)) => {
            x.iter().zip(y).map(|(p, q)| apply(p.cmp(q))).collect()
        }
        (ColumnData::Date(x), ColumnData::Date(y)) => {
            x.iter().zip(y).map(|(p, q)| apply(p.cmp(q))).collect()
        }
        _ => (0..n).map(|i| apply(a.cmp_rows_cross(i, b, i))).collect(),
    };
    rebuild_opt(ColumnData::Bool(out), nulls)
}

fn logical(a: &Column, op: BinOp, b: &Column) -> Result<Column, RelationError> {
    let (ColumnData::Bool(x), ColumnData::Bool(y)) = (a.data(), b.data()) else {
        return Err(RelationError::Expression(
            "AND/OR over non-boolean operands".to_string(),
        ));
    };
    let n = x.len();
    let mut out = Vec::with_capacity(n);
    let mut nulls = Bitmap::new(n);
    let mut any_null = false;
    for i in 0..n {
        let l = (!a.is_null(i)).then_some(x[i]);
        let r = (!b.is_null(i)).then_some(y[i]);
        // Kleene three-valued logic.
        let v = match op {
            BinOp::And => match (l, r) {
                (Some(false), _) | (_, Some(false)) => Some(false),
                (Some(true), Some(true)) => Some(true),
                _ => None,
            },
            BinOp::Or => match (l, r) {
                (Some(true), _) | (_, Some(true)) => Some(true),
                (Some(false), Some(false)) => Some(false),
                _ => None,
            },
            _ => unreachable!(),
        };
        match v {
            Some(b) => out.push(b),
            None => {
                out.push(false);
                nulls.set(i);
                any_null = true;
            }
        }
    }
    rebuild_opt(ColumnData::Bool(out), any_null.then_some(nulls))
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Col(n) => f.write_str(n),
            Expr::Lit(v) => write!(f, "{v}"),
            Expr::Bin(l, op, r) => write!(f, "({l} {op} {r})"),
            Expr::Neg(e) => write!(f, "(-{e})"),
            Expr::Func(func, e) => {
                let name = match func {
                    ScalarFunc::Sqrt => "SQRT",
                    ScalarFunc::Abs => "ABS",
                };
                write!(f, "{name}({e})")
            }
            Expr::Not(e) => write!(f, "(NOT {e})"),
            Expr::IsNull(e) => write!(f, "({e} IS NULL)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::RelationBuilder;

    fn rel() -> Relation {
        RelationBuilder::new()
            .column("a", vec![1i64, 2, 3])
            .column("b", vec![10.0f64, 20.0, 30.0])
            .column("s", vec!["x", "y", "z"])
            .build()
            .unwrap()
    }

    #[test]
    fn arithmetic_int_preserved() {
        let c = Expr::col("a").add(Expr::lit(1i64)).eval(&rel()).unwrap();
        assert_eq!(c.data_type(), DataType::Int);
        assert_eq!(c.get(2), Value::Int(4));
    }

    #[test]
    fn division_is_float() {
        let c = Expr::col("a").div(Expr::lit(2i64)).eval(&rel()).unwrap();
        assert_eq!(c.data_type(), DataType::Float);
        assert_eq!(c.get(0), Value::Float(0.5));
    }

    #[test]
    fn mixed_int_float_widens() {
        let c = Expr::col("a").mul(Expr::col("b")).eval(&rel()).unwrap();
        assert_eq!(c.data_type(), DataType::Float);
        assert_eq!(c.get(1), Value::Float(40.0));
    }

    #[test]
    fn comparisons_and_filter() {
        let keep = Expr::col("a")
            .gt(Expr::lit(1i64))
            .eval_filter(&rel())
            .unwrap();
        assert_eq!(keep, vec![false, true, true]);
        let keep = Expr::col("s")
            .eq(Expr::lit("y"))
            .eval_filter(&rel())
            .unwrap();
        assert_eq!(keep, vec![false, true, false]);
    }

    #[test]
    fn logic_three_valued() {
        let r = RelationBuilder::new()
            .column("p", vec![true, true, false])
            .build()
            .unwrap();
        let e = Expr::col("p").and(Expr::Not(Box::new(Expr::col("p"))));
        assert_eq!(e.eval_filter(&r).unwrap(), vec![false, false, false]);
        let e = Expr::col("p").or(Expr::Not(Box::new(Expr::col("p"))));
        assert_eq!(e.eval_filter(&r).unwrap(), vec![true, true, true]);
    }

    #[test]
    fn null_propagation() {
        let col = Column::from_values(&[Value::Int(1), Value::Null]).unwrap();
        let r = Relation::new(
            crate::schema::Schema::from_pairs(&[("a", DataType::Int)]).unwrap(),
            vec![col],
        )
        .unwrap();
        let c = Expr::col("a").add(Expr::lit(5i64)).eval(&r).unwrap();
        assert_eq!(c.get(0), Value::Int(6));
        assert!(c.is_null(1));
        // comparisons with null are null, so the filter drops the row
        let keep = Expr::col("a")
            .gt_eq(Expr::lit(0i64))
            .eval_filter(&r)
            .unwrap();
        assert_eq!(keep, vec![true, false]);
        // IS NULL sees it
        let keep = Expr::IsNull(Box::new(Expr::col("a")))
            .eval_filter(&r)
            .unwrap();
        assert_eq!(keep, vec![false, true]);
    }

    #[test]
    fn mod_by_zero_is_null() {
        let r = RelationBuilder::new()
            .column("a", vec![7i64, 9])
            .column("d", vec![2i64, 0])
            .build()
            .unwrap();
        let c = Expr::col("a")
            .bin(BinOp::Mod, Expr::col("d"))
            .eval(&r)
            .unwrap();
        assert_eq!(c.get(0), Value::Int(1));
        assert!(c.is_null(1));
    }

    #[test]
    fn type_errors_reported() {
        assert!(Expr::col("s").add(Expr::lit(1i64)).eval(&rel()).is_err());
        assert!(Expr::col("a").and(Expr::col("a")).eval(&rel()).is_err());
        assert!(Expr::col("a").eval_filter(&rel()).is_err());
        assert!(Expr::col("missing").eval(&rel()).is_err());
    }

    #[test]
    fn referenced_columns_dedup() {
        let e = Expr::col("a").add(Expr::col("b")).mul(Expr::col("a"));
        let mut cols = Vec::new();
        e.referenced_columns(&mut cols);
        assert_eq!(cols, vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn result_type_probe_is_cheap() {
        let e = Expr::col("a").div(Expr::lit(2i64));
        assert_eq!(e.result_type(&rel()).unwrap(), DataType::Float);
    }

    #[test]
    fn display() {
        let e = Expr::col("a").add(Expr::lit(1i64)).lt(Expr::col("b"));
        assert_eq!(e.to_string(), "((a + 1) < b)");
    }

    #[test]
    fn literal_broadcast_on_empty_relation() {
        let empty = rel().take(&[]);
        let c = Expr::lit(3i64).eval(&empty).unwrap();
        assert_eq!(c.len(), 0);
        assert_eq!(c.data_type(), DataType::Int);
    }

    #[test]
    fn scalar_on_the_left_flips_correctly() {
        // 2 < a  (a = 1, 2, 3)
        let keep = Expr::lit(2i64)
            .lt(Expr::col("a"))
            .eval_filter(&rel())
            .unwrap();
        assert_eq!(keep, vec![false, false, true]);
        // 10 - a
        let c = Expr::lit(10i64).sub(Expr::col("a")).eval(&rel()).unwrap();
        assert_eq!(c.get(2), Value::Int(7));
        // 10 / a is float division with the scalar as dividend
        let c = Expr::lit(3.0).div(Expr::col("b")).eval(&rel()).unwrap();
        assert_eq!(c.get(0), Value::Float(0.3));
    }

    #[test]
    fn constant_subexpressions_fold_to_scalars() {
        // (1 + 2) * 3 over a relation: one broadcast at the top, value 9
        let e = Expr::lit(1i64).add(Expr::lit(2i64)).mul(Expr::lit(3i64));
        let c = e.eval(&rel()).unwrap();
        assert_eq!(c.len(), 3);
        assert_eq!(c.get(1), Value::Int(9));
        // constant comparison folds too; a constant filter never broadcasts
        let keep = Expr::lit(1i64)
            .eq(Expr::lit(1i64))
            .eval_filter(&rel())
            .unwrap();
        assert_eq!(keep, vec![true, true, true]);
    }

    #[test]
    fn logical_with_constant_short_circuits() {
        let r = RelationBuilder::new()
            .column("p", vec![true, false])
            .build()
            .unwrap();
        let keep = Expr::col("p").and(Expr::lit(true)).eval_filter(&r).unwrap();
        assert_eq!(keep, vec![true, false]);
        let keep = Expr::col("p").or(Expr::lit(true)).eval_filter(&r).unwrap();
        assert_eq!(keep, vec![true, true]);
        let keep = Expr::col("p")
            .and(Expr::lit(false))
            .eval_filter(&r)
            .unwrap();
        assert_eq!(keep, vec![false, false]);
    }

    #[test]
    fn eval_over_view_touches_only_selected_rows() {
        let r = rel();
        let v = r.filter(&[false, true, true]);
        let c = Expr::col("a").add(Expr::lit(1i64)).eval(&v).unwrap();
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(0), Value::Int(3));
        let keep = Expr::col("s").eq(Expr::lit("z")).eval_filter(&v).unwrap();
        assert_eq!(keep, vec![false, true]);
    }

    #[test]
    fn scalar_mod_by_zero_is_null() {
        let r = RelationBuilder::new()
            .column("a", vec![7i64, 9])
            .build()
            .unwrap();
        let c = Expr::col("a")
            .bin(BinOp::Mod, Expr::lit(0i64))
            .eval(&r)
            .unwrap();
        assert!(c.is_null(0) && c.is_null(1));
        // scalar dividend: per-row zero divisors go null
        let r2 = RelationBuilder::new()
            .column("d", vec![2i64, 0])
            .build()
            .unwrap();
        let c = Expr::lit(9i64)
            .bin(BinOp::Mod, Expr::col("d"))
            .eval(&r2)
            .unwrap();
        assert_eq!(c.get(0), Value::Int(1));
        assert!(c.is_null(1));
    }

    #[test]
    fn result_type_of_matches_eval() {
        let schema = rel().schema().clone();
        for (e, want) in [
            (Expr::col("a").add(Expr::lit(1i64)), DataType::Int),
            (Expr::col("a").div(Expr::lit(2i64)), DataType::Float),
            (Expr::col("a").mul(Expr::col("b")), DataType::Float),
            (Expr::col("a").gt(Expr::lit(0i64)), DataType::Bool),
            (Expr::col("s").eq(Expr::lit("x")), DataType::Bool),
            (Expr::IsNull(Box::new(Expr::col("a"))), DataType::Bool),
            (Expr::col("a").sqrt(), DataType::Float),
            (Expr::Neg(Box::new(Expr::col("a"))), DataType::Int),
        ] {
            assert_eq!(e.result_type_of(&schema).unwrap(), want, "{e}");
            assert_eq!(e.eval(&rel()).unwrap().data_type(), want, "{e}");
        }
        assert!(Expr::col("s")
            .add(Expr::lit(1i64))
            .result_type_of(&schema)
            .is_err());
        assert!(Expr::col("missing").result_type_of(&schema).is_err());
        assert!(Expr::col("a")
            .and(Expr::col("a"))
            .result_type_of(&schema)
            .is_err());
    }
}
