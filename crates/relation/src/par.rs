//! Morsel-driven parallelism primitives: the row-range partitioner and a
//! session-lifetime [`WorkerPool`].
//!
//! A *morsel* is a contiguous row range of a relation. Parallel operators
//! split their input into morsels and let a fixed set of worker threads
//! claim them from a shared atomic counter — faster workers simply claim
//! more morsels, which gives work-stealing-like load balancing without
//! per-task queues or external dependencies. Results are reassembled in
//! morsel order, so parallel execution is deterministic and produces the
//! same row order as the serial operator.
//!
//! ## The worker pool
//!
//! Before the pool, every parallel operator spawned (and joined) its own
//! `std::thread::scope` worker set, so a multi-operator plan paid thread
//! startup per pipeline stage. A [`WorkerPool`] spawns its workers once and
//! parks them on a condvar between jobs; a *job* is one closure every
//! worker runs concurrently (the closure does its own morsel claiming from
//! an atomic counter — see [`WorkerPool::for_each`]). The submitting thread
//! participates as worker `0`, so a pool of `n` threads spawns `n - 1` OS
//! threads and `threads = 1` degenerates to inline serial execution with no
//! spawned workers at all.
//!
//! **Job contract** (what an operator must guarantee to enlist):
//!
//! - the job closure is `Fn(usize) + Sync`: it is called once per worker,
//!   concurrently, with the worker index in `0..threads()`;
//! - all sharing goes through `&`-captured state (atomics, `Mutex`, or
//!   disjoint writes); the pool adds no synchronisation of its own beyond
//!   the completion barrier;
//! - [`WorkerPool::broadcast`] does not return until every worker has
//!   finished the job, so the closure may freely borrow from the caller's
//!   stack (this is also what makes the internal lifetime erasure sound);
//! - jobs should run leaf computations (plan recursion happens between
//!   jobs, on the submitting thread); if code inside a job does submit
//!   another job — to any pool — the nested job is detected and runs
//!   inline on the current thread instead of deadlocking on the
//!   submission lock.
//!
//! Panics inside a job are caught at the worker, the barrier still
//! completes, and the submitting call re-panics — the pool itself stays
//! usable.

use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Morsels per worker thread: enough slack that an uneven morsel (e.g. a
/// selective filter hitting one range) rebalances onto idle workers.
const MORSELS_PER_THREAD: usize = 4;

/// Inputs below this many rows run the serial operator even when threads
/// are available: handing a job to parked workers costs microseconds, which
/// dwarfs the operator itself on small relations (the relational analogue
/// of the dense kernels' element thresholds).
pub const MIN_PARALLEL_ROWS: usize = 1024;

/// Split `0..len` into at most `parts` contiguous, non-empty ranges of
/// near-equal size (sizes differ by at most one; longer ranges first).
/// Deterministic: the same `(len, parts)` always yields the same split.
/// An empty input yields no ranges.
pub fn partition_ranges(len: usize, parts: usize) -> Vec<Range<usize>> {
    if len == 0 {
        return Vec::new();
    }
    let parts = parts.clamp(1, len);
    let base = len / parts;
    let rem = len % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for k in 0..parts {
        let size = base + usize::from(k < rem);
        out.push(start..start + size);
        start += size;
    }
    debug_assert_eq!(start, len);
    out
}

/// The morsel count for an operator over `len` rows with `threads` workers.
pub fn morsel_count(threads: usize, len: usize) -> usize {
    (threads.max(1) * MORSELS_PER_THREAD).min(len).max(1)
}

/// Total worker threads ever spawned by pools in this process. The
/// pool-reuse tests watch this: consecutive jobs on one pool must not move
/// it.
static THREADS_SPAWNED: AtomicUsize = AtomicUsize::new(0);

/// How many pool worker threads this process has spawned so far (across all
/// pools; workers park between jobs and are only ever spawned at pool
/// construction, so a stable value across queries proves thread reuse).
pub fn threads_spawned() -> usize {
    THREADS_SPAWNED.load(Ordering::SeqCst)
}

/// The current job, type-erased. The pointee lives on the submitting
/// thread's stack; [`WorkerPool::broadcast`] blocks until every worker is
/// done with it, which is what makes sending the raw pointer sound.
struct JobSlot(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointer is only dereferenced while `broadcast` — which owns
// the pointee — is blocked on the completion barrier.
unsafe impl Send for JobSlot {}

/// Shared state between the pool handle and its workers.
struct PoolState {
    /// Valid exactly while `epoch` is ahead of a worker's last-seen epoch.
    job: Option<JobSlot>,
    /// Bumped once per job; how parked workers detect new work.
    epoch: u64,
    /// Workers still running the current job.
    active: usize,
    /// A worker caught a panic in the current job.
    panicked: bool,
    /// Set by `Drop`: workers exit instead of waiting for the next epoch.
    shutdown: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    /// Workers park here between jobs.
    work: Condvar,
    /// The submitter parks here until `active` returns to zero.
    done: Condvar,
}

/// Mutex helper: pool state is only ever mutated under the lock by pool
/// code (never by job closures), so a poisoned lock can only mean a panic
/// in the pool itself — propagate it.
fn lock(shared: &PoolShared) -> MutexGuard<'_, PoolState> {
    shared.state.lock().expect("worker pool state poisoned")
}

thread_local! {
    /// Is the current thread inside a pool job? Guards against nested
    /// submission deadlocking on the (non-reentrant) submission lock —
    /// nested jobs degrade to inline execution instead.
    static IN_POOL_JOB: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Run `f` with the current thread marked as executing a pool job (restored
/// on unwind via the drop guard).
fn run_marked_in_job<R>(f: impl FnOnce() -> R) -> R {
    struct Reset(bool);
    impl Drop for Reset {
        fn drop(&mut self) {
            IN_POOL_JOB.set(self.0);
        }
    }
    let _reset = Reset(IN_POOL_JOB.replace(true));
    f()
}

/// A fixed set of worker threads parked between jobs — the one execution
/// substrate every parallel operator runs on.
///
/// Create one per session (`rma-core`'s `RmaContext` owns one, sized from
/// `RmaOptions::threads` / the `RMA_THREADS` env knob) and submit jobs with
/// [`WorkerPool::broadcast`] or the morsel-claiming
/// [`WorkerPool::for_each`]. Dropping the pool wakes and joins the workers.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    handles: Vec<std::thread::JoinHandle<()>>,
    /// Serialises job submission: one job runs at a time.
    submit: Mutex<()>,
    /// Jobs completed (tests use this to prove an operator enlisted).
    jobs_run: AtomicU64,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.threads())
            .field("jobs_run", &self.jobs_run())
            .finish()
    }
}

impl WorkerPool {
    /// A pool of `threads` workers (`threads - 1` spawned OS threads; the
    /// submitting thread is worker `0`). `threads <= 1` spawns nothing and
    /// runs every job inline.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                job: None,
                epoch: 0,
                active: 0,
                panicked: false,
                shutdown: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
        });
        let handles = (1..threads)
            .map(|id| {
                let shared = Arc::clone(&shared);
                THREADS_SPAWNED.fetch_add(1, Ordering::SeqCst);
                std::thread::Builder::new()
                    .name(format!("rma-pool-{id}"))
                    .spawn(move || worker_loop(&shared, id))
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool {
            shared,
            handles,
            submit: Mutex::new(()),
            jobs_run: AtomicU64::new(0),
        }
    }

    /// Total workers, including the submitting thread (always ≥ 1).
    pub fn threads(&self) -> usize {
        self.handles.len() + 1
    }

    /// Jobs this pool has completed since construction.
    pub fn jobs_run(&self) -> u64 {
        self.jobs_run.load(Ordering::SeqCst)
    }

    /// Run `f(worker)` once per worker, concurrently, and return when every
    /// worker is done. See the module docs for the job contract. With no
    /// spawned workers the job runs inline as worker `0`.
    ///
    /// Nested submission — `broadcast` called from inside a running job
    /// (e.g. a kernel that parallelises through a pool reached from an
    /// operator already on one) — would deadlock on the submission lock, so
    /// it is detected and degraded to inline execution: the nested job runs
    /// serially as worker `0` on the current thread, which is correct for
    /// claim-loop jobs (one worker claims everything).
    pub fn broadcast(&self, f: &(dyn Fn(usize) + Sync)) {
        if self.handles.is_empty() || IN_POOL_JOB.get() {
            f(0);
            self.jobs_run.fetch_add(1, Ordering::SeqCst);
            return;
        }
        // the guard only serialises submission; a propagated job panic
        // poisons it without leaving any state behind — recover and go on
        let _submit = self
            .submit
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        {
            let mut st = lock(&self.shared);
            // SAFETY (lifetime erasure): we block below until `active == 0`,
            // i.e. until no worker can touch the pointer again, and clear the
            // slot before returning — the pointee outlives every dereference.
            let raw = unsafe {
                std::mem::transmute::<*const (dyn Fn(usize) + Sync), *const (dyn Fn(usize) + Sync)>(
                    f as *const (dyn Fn(usize) + Sync),
                )
            };
            st.job = Some(JobSlot(raw));
            st.epoch += 1;
            st.active = self.handles.len();
            st.panicked = false;
            self.shared.work.notify_all();
        }
        // the submitter is worker 0; catch a panic so the barrier below
        // still runs and the job pointer stays valid until workers finish
        let caller = catch_unwind(AssertUnwindSafe(|| run_marked_in_job(|| f(0))));
        let mut st = lock(&self.shared);
        while st.active > 0 {
            st = self
                .shared
                .done
                .wait(st)
                .expect("worker pool state poisoned");
        }
        st.job = None;
        let worker_panicked = st.panicked;
        drop(st);
        self.jobs_run.fetch_add(1, Ordering::SeqCst);
        match caller {
            Err(payload) => resume_unwind(payload),
            Ok(()) if worker_panicked => panic!("worker pool job panicked on a worker thread"),
            Ok(()) => {}
        }
    }

    /// Run `f` over every item, workers claiming items from a shared
    /// counter (morsel-driven dispatch), and return the results in item
    /// order. With one worker or at most one item the work runs inline on
    /// the caller's thread.
    pub fn for_each<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        if self.handles.is_empty() || items.len() <= 1 {
            return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
        }
        let next = AtomicUsize::new(0);
        let collected: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(items.len()));
        self.broadcast(&|_worker| {
            let mut local = Vec::new();
            loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                local.push((i, f(i, item)));
            }
            if !local.is_empty() {
                collected
                    .lock()
                    .expect("for_each result sink poisoned")
                    .extend(local);
            }
        });
        let mut collected = collected
            .into_inner()
            .expect("for_each result sink poisoned");
        collected.sort_unstable_by_key(|(i, _)| *i);
        collected.into_iter().map(|(_, r)| r).collect()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = lock(&self.shared);
            st.shutdown = true;
            self.shared.work.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &PoolShared, id: usize) {
    let mut seen = 0u64;
    loop {
        let raw = {
            let mut st = lock(shared);
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != seen {
                    seen = st.epoch;
                    break st.job.as_ref().expect("job set with epoch").0;
                }
                st = shared.work.wait(st).expect("worker pool state poisoned");
            }
        };
        // SAFETY: `broadcast` keeps the pointee alive until `active == 0`,
        // and we only decrement `active` after the last use of `raw`.
        let f = unsafe { &*raw };
        let ok = catch_unwind(AssertUnwindSafe(|| run_marked_in_job(|| f(id)))).is_ok();
        let mut st = lock(shared);
        if !ok {
            st.panicked = true;
        }
        st.active -= 1;
        if st.active == 0 {
            shared.done.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partitioner_empty_table() {
        assert!(partition_ranges(0, 4).is_empty());
        assert!(partition_ranges(0, 0).is_empty());
    }

    #[test]
    fn partitioner_fewer_rows_than_partitions() {
        let r = partition_ranges(3, 8);
        assert_eq!(r, vec![0..1, 1..2, 2..3]);
    }

    #[test]
    fn partitioner_uneven_split() {
        let r = partition_ranges(10, 4);
        assert_eq!(r, vec![0..3, 3..6, 6..8, 8..10]);
        // ranges cover the input exactly, sizes differ by at most one
        let sizes: Vec<usize> = r.iter().map(|x| x.end - x.start).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 10);
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
    }

    #[test]
    fn partitioner_even_split_and_single_part() {
        assert_eq!(partition_ranges(8, 4), vec![0..2, 2..4, 4..6, 6..8]);
        assert_eq!(partition_ranges(5, 1), vec![0..5]);
        // parts = 0 is clamped to one range
        assert_eq!(partition_ranges(5, 0), vec![0..5]);
    }

    #[test]
    fn partitioner_is_deterministic() {
        assert_eq!(partition_ranges(1234, 7), partition_ranges(1234, 7));
    }

    #[test]
    fn pool_for_each_preserves_item_order() {
        let pool = WorkerPool::new(4);
        let items: Vec<usize> = (0..100).collect();
        let out = pool.for_each(&items, |i, &x| {
            assert_eq!(i, x);
            x * 2
        });
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn pool_runs_inline_when_serial() {
        let pool = WorkerPool::new(1);
        assert_eq!(pool.threads(), 1);
        let items = vec![1, 2, 3];
        assert_eq!(pool.for_each(&items, |_, &x| x + 1), vec![2, 3, 4]);
        let pool0 = WorkerPool::new(0);
        assert_eq!(pool0.threads(), 1);
        assert_eq!(pool0.for_each(&items, |_, &x| x + 1), vec![2, 3, 4]);
        let one = vec![9];
        assert_eq!(WorkerPool::new(8).for_each(&one, |_, &x| x), vec![9]);
        let none: Vec<i32> = Vec::new();
        assert!(WorkerPool::new(8).for_each(&none, |_, &x| x).is_empty());
    }

    #[test]
    fn pool_reuses_threads_across_jobs() {
        // observe the thread identities jobs run on: across many jobs the
        // pool must only ever use its fixed worker set (+ the submitter) —
        // respawning would grow the set. (The process-wide threads_spawned
        // counter is asserted in the isolated pool_reuse integration test;
        // here sibling unit tests create pools concurrently, so per-pool
        // thread identity is the race-free observation.)
        let pool = WorkerPool::new(4);
        let seen: Mutex<std::collections::HashSet<std::thread::ThreadId>> =
            Mutex::new(std::collections::HashSet::new());
        for round in 0..50u64 {
            let items: Vec<usize> = (0..64).collect();
            let out = pool.for_each(&items, |_, &x| {
                seen.lock().unwrap().insert(std::thread::current().id());
                x + round as usize
            });
            assert_eq!(out[0], round as usize);
        }
        let distinct = seen.lock().unwrap().len();
        assert!(
            distinct <= pool.threads(),
            "50 jobs touched {distinct} distinct threads — more than the \
             pool's {} fixed workers, so threads were respawned",
            pool.threads()
        );
        assert!(pool.jobs_run() >= 50);
    }

    #[test]
    fn pool_broadcast_runs_every_worker() {
        let pool = WorkerPool::new(4);
        let hits = Mutex::new(vec![0usize; pool.threads()]);
        pool.broadcast(&|w| {
            hits.lock().unwrap()[w] += 1;
        });
        assert_eq!(*hits.lock().unwrap(), vec![1; 4]);
    }

    #[test]
    fn pool_survives_job_panic() {
        let pool = WorkerPool::new(4);
        let boom = catch_unwind(AssertUnwindSafe(|| {
            let items: Vec<usize> = (0..32).collect();
            pool.for_each(&items, |_, &x| {
                if x == 17 {
                    panic!("morsel 17 exploded");
                }
                x
            });
        }));
        assert!(boom.is_err(), "the panic must propagate to the submitter");
        // the pool is still functional afterwards
        let items: Vec<usize> = (0..32).collect();
        assert_eq!(pool.for_each(&items, |_, &x| x), items);
    }

    #[test]
    fn nested_submission_runs_inline_instead_of_deadlocking() {
        let pool = WorkerPool::new(4);
        let items: Vec<usize> = (0..16).collect();
        let out = pool.for_each(&items, |_, &x| {
            // a nested job from inside a worker: must complete (inline,
            // single worker), not deadlock on the submission lock
            let inner: Vec<usize> = (0..8).collect();
            let nested = pool.for_each(&inner, |_, &y| y * 10);
            assert_eq!(nested, (0..8).map(|y| y * 10).collect::<Vec<_>>());
            x + 1
        });
        assert_eq!(out, (1..=16).collect::<Vec<_>>());
    }

    #[test]
    fn pool_serialises_concurrent_submitters() {
        let pool = WorkerPool::new(3);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    let items: Vec<usize> = (0..200).collect();
                    let out = pool.for_each(&items, |_, &x| x * 3);
                    assert_eq!(out, (0..200).map(|x| x * 3).collect::<Vec<_>>());
                });
            }
        });
    }
}
