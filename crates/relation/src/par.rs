//! Morsel-driven parallelism primitives: the row-range partitioner and a
//! session-lifetime [`WorkerPool`] with a fair multi-query scheduler.
//!
//! A *morsel* is a contiguous row range of a relation. Parallel operators
//! split their input into morsels and let a fixed set of worker threads
//! claim them from a shared atomic counter — faster workers simply claim
//! more morsels, which gives work-stealing-like load balancing without
//! per-task queues or external dependencies. Results are reassembled in
//! morsel order, so parallel execution is deterministic and produces the
//! same row order as the serial operator.
//!
//! ## The worker pool
//!
//! Before the pool, every parallel operator spawned (and joined) its own
//! `std::thread::scope` worker set, so a multi-operator plan paid thread
//! startup per pipeline stage. A [`WorkerPool`] spawns its workers once and
//! parks them on a condvar between jobs; a *job* is one closure workers run
//! concurrently (the closure does its own morsel claiming from an atomic
//! counter — see [`WorkerPool::for_each`]). The submitting thread always
//! participates as worker `0`, so a pool of `n` threads spawns `n - 1` OS
//! threads and `threads = 1` degenerates to inline serial execution with no
//! spawned workers at all.
//!
//! ## The scheduler: concurrent jobs, seats, and fair passes
//!
//! The pool runs **many jobs at once** (PR 6 — the concurrent serving
//! layer): each job is an entry in a shared queue, and idle workers pick
//! the runnable entry with the lowest *(pass, sequence)* pair. Two job
//! modes exist:
//!
//! - **Full jobs** (plain [`WorkerPool::broadcast`] with no active
//!   ticket): every worker must run the closure exactly once before the
//!   submitter returns — the historical contract, still required by
//!   callers that hand worker `w` a fixed share of the work.
//! - **Scheduled jobs** (submitted while a [`SessionTicket`] is
//!   [activated](SessionTicket::activate) on the submitting thread): any
//!   *subset* of workers may serve the job, capped by the ticket's **seat
//!   budget** (total concurrent runners, submitter included). The closure
//!   must therefore distribute work by claiming (which every operator in
//!   this workspace already does); a seat budget of 1 runs inline on the
//!   submitter. A scheduled job *closes* as soon as any runner returns —
//!   at that point the shared claim counter is exhausted and late joiners
//!   would find nothing.
//!
//! Fairness is stride scheduling: every ticket carries a virtual-time
//! `pass` that advances by its stride on each submission (clamped up to
//! the pool's completed-pass floor, so an idle session cannot hoard
//! credit), and workers serve the lowest pass first. Active sessions
//! therefore interleave their morsel jobs round-robin instead of queueing
//! behind whoever submitted first, and a session's seat budget bounds how
//! many workers a single heavy query can occupy — the rest keep serving
//! other sessions concurrently.
//!
//! **Job contract** (what an operator must guarantee to enlist):
//!
//! - the job closure is `Fn(usize) + Sync`: it is called concurrently
//!   with distinct worker indices in `0..threads()`;
//! - a scheduled job may be run by any subset of workers (including the
//!   submitter alone), so work distribution must be claim-based — never
//!   "worker `w` owns share `w`" (full jobs may still assume every index
//!   runs);
//! - all sharing goes through `&`-captured state (atomics, `Mutex`, or
//!   disjoint writes); the pool adds no synchronisation of its own beyond
//!   the completion barrier;
//! - [`WorkerPool::broadcast`] does not return until every runner has
//!   finished the job, so the closure may freely borrow from the caller's
//!   stack (this is also what makes the internal lifetime erasure sound);
//! - jobs should run leaf computations (plan recursion happens between
//!   jobs, on the submitting thread); if code inside a job does submit
//!   another job — to any pool — the nested job is detected and runs
//!   inline on the current thread instead of deadlocking.
//!
//! Panics inside a job are caught at the worker, the barrier still
//! completes, and the submitting call re-panics — the pool itself stays
//! usable.
//!
//! ## Resource governance
//!
//! A [`QueryGuard`] is a per-query bundle of a cancel flag, an optional
//! deadline, and a memory budget — all atomics, shared by `Arc`. Like a
//! [`SessionTicket`] it is installed thread-locally
//! ([`QueryGuard::activate`]) on the submitting thread, and the pool
//! re-installs it on every worker that runs one of the query's jobs, so
//! [`current_guard`] works anywhere inside a job closure. The morsel-claim
//! loop of [`WorkerPool::for_each`] polls the active guard before each
//! claim: once the guard trips (cancelled, past deadline, or budget
//! breached) workers stop claiming within one morsel's work, and the
//! operator surfaces the trip as a typed error through
//! [`guard_checkpoint`]. The [`fault`] module piggybacks on the same
//! per-morsel poll to deterministically inject panics, delays, and
//! spurious budget breaches for robustness tests.

use crate::trace;
use std::cell::RefCell;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Morsels per worker thread: enough slack that an uneven morsel (e.g. a
/// selective filter hitting one range) rebalances onto idle workers.
const MORSELS_PER_THREAD: usize = 4;

/// Inputs below this many rows run the serial operator even when threads
/// are available: handing a job to parked workers costs microseconds, which
/// dwarfs the operator itself on small relations (the relational analogue
/// of the dense kernels' element thresholds).
pub const MIN_PARALLEL_ROWS: usize = 1024;

/// Split `0..len` into at most `parts` contiguous, non-empty ranges of
/// near-equal size (sizes differ by at most one; longer ranges first).
/// Deterministic: the same `(len, parts)` always yields the same split.
/// An empty input yields no ranges.
pub fn partition_ranges(len: usize, parts: usize) -> Vec<Range<usize>> {
    if len == 0 {
        return Vec::new();
    }
    let parts = parts.clamp(1, len);
    let base = len / parts;
    let rem = len % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for k in 0..parts {
        let size = base + usize::from(k < rem);
        out.push(start..start + size);
        start += size;
    }
    debug_assert_eq!(start, len);
    out
}

/// The morsel count for an operator over `len` rows with `threads` workers.
pub fn morsel_count(threads: usize, len: usize) -> usize {
    (threads.max(1) * MORSELS_PER_THREAD).min(len).max(1)
}

/// Total worker threads ever spawned by pools in this process. The
/// pool-reuse tests watch this: consecutive jobs on one pool must not move
/// it.
static THREADS_SPAWNED: AtomicUsize = AtomicUsize::new(0);

/// How many pool worker threads this process has spawned so far (across all
/// pools; workers park between jobs and are only ever spawned at pool
/// construction, so a stable value across queries proves thread reuse).
pub fn threads_spawned() -> usize {
    THREADS_SPAWNED.load(Ordering::SeqCst)
}

/// Stride unit of the fair scheduler: a ticket of weight `w` advances its
/// pass by `STRIDE_UNIT / w` per job, so heavier-weighted sessions get
/// proportionally more turns.
const STRIDE_UNIT: u64 = 1 << 16;

/// A session's admission-control handle onto a [`WorkerPool`]: a **seat
/// budget** (how many workers, submitter included, may serve one of the
/// session's jobs concurrently; `0` = no limit) plus the stride-scheduling
/// virtual-time state that makes job pickup fair across sessions.
///
/// Tickets are pool-agnostic and cheap to clone (shared state behind an
/// `Arc`). [`SessionTicket::activate`] marks the current thread so that
/// every job the thread submits — through `broadcast`, `for_each`, or any
/// operator built on them — is scheduled under this ticket:
///
/// ```
/// use rma_relation::{SessionTicket, WorkerPool};
///
/// let pool = WorkerPool::new(4);
/// let ticket = SessionTicket::new(2); // at most 2 workers per job
/// let _guard = ticket.activate();
/// let items: Vec<usize> = (0..100).collect();
/// let out = pool.for_each(&items, |_, &x| x * 2); // scheduled + budgeted
/// assert_eq!(out[99], 198);
/// ```
#[derive(Clone, Debug)]
pub struct SessionTicket(Arc<TicketInner>);

#[derive(Debug)]
struct TicketInner {
    /// Max concurrent runners per job (incl. the submitter); 0 = no limit.
    seats: usize,
    /// Pass increment per submitted job (inverse of the session's weight).
    stride: u64,
    /// The session's stride-scheduling virtual time.
    pass: AtomicU64,
    /// Total time this session's queued jobs waited for a worker pickup
    /// (summed over runners; the submitter runs immediately and adds 0).
    queue_wait_ns: AtomicU64,
    /// Total worker time spent inside this session's job closures.
    run_ns: AtomicU64,
}

impl SessionTicket {
    /// A ticket with the given seat budget and weight 1. `seats == 0`
    /// means no limit; `seats == 1` runs every job inline on the
    /// submitting thread (a pure-serial session that still gets fair
    /// accounting).
    pub fn new(seats: usize) -> Self {
        SessionTicket::with_weight(seats, 1)
    }

    /// A ticket with an explicit scheduling weight: a weight-2 session's
    /// jobs advance its pass half as fast, so workers serve it twice as
    /// often as a weight-1 session under contention.
    pub fn with_weight(seats: usize, weight: u32) -> Self {
        SessionTicket(Arc::new(TicketInner {
            seats,
            stride: (STRIDE_UNIT / u64::from(weight.max(1))).max(1),
            pass: AtomicU64::new(0),
            queue_wait_ns: AtomicU64::new(0),
            run_ns: AtomicU64::new(0),
        }))
    }

    /// The ticket's seat budget (0 = no limit).
    pub fn seats(&self) -> usize {
        self.0.seats
    }

    /// Cumulative time this session's jobs sat queued before a worker
    /// picked them up (summed over worker pickups — a gauge of scheduler
    /// pressure on the session, not wall-clock latency).
    pub fn queue_wait(&self) -> Duration {
        Duration::from_nanos(self.0.queue_wait_ns.load(Ordering::Relaxed))
    }

    /// Cumulative worker time spent running this session's job closures
    /// (summed over runners, so it can exceed wall-clock time).
    pub fn busy(&self) -> Duration {
        Duration::from_nanos(self.0.run_ns.load(Ordering::Relaxed))
    }

    /// The session's current stride-scheduling pass (monotone; advances by
    /// the stride per submitted job). Exposed for tests and introspection.
    pub fn pass(&self) -> u64 {
        self.0.pass.load(Ordering::Relaxed)
    }

    /// Mark the current thread as submitting on behalf of this session
    /// until the returned guard drops. Nested activations stack (the
    /// innermost wins); the guard restores the previous ticket on drop.
    pub fn activate(&self) -> ActiveTicket {
        let prev = ACTIVE_TICKET.with(|c| c.replace(Some(self.clone())));
        ActiveTicket { prev }
    }
}

thread_local! {
    /// The ticket jobs submitted from this thread are scheduled under.
    static ACTIVE_TICKET: RefCell<Option<SessionTicket>> = const { RefCell::new(None) };
}

/// Guard of [`SessionTicket::activate`]: restores the previously active
/// ticket (if any) when dropped.
#[must_use = "the ticket is only active while the guard lives"]
pub struct ActiveTicket {
    prev: Option<SessionTicket>,
}

impl Drop for ActiveTicket {
    fn drop(&mut self) {
        ACTIVE_TICKET.with(|c| c.replace(self.prev.take()));
    }
}

/// The ticket active on the current thread, if any.
fn current_ticket() -> Option<SessionTicket> {
    ACTIVE_TICKET.with(|c| c.borrow().clone())
}

/// Why a [`QueryGuard`] refused to let execution continue.
///
/// The relation layer maps these onto `RelationError` (and `rma-core` maps
/// them further onto its `RmaError` taxonomy), so a tripped guard always
/// surfaces as a typed error, never a panic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GuardError {
    /// The query was cancelled ([`QueryGuard::cancel`]).
    Cancelled,
    /// The query ran past its deadline.
    DeadlineExceeded,
    /// A memory charge pushed the query past its budget.
    ResourceExhausted {
        /// Bytes the query had charged when the breach was detected.
        needed: u64,
        /// The budget it was charged against.
        budget: u64,
    },
}

impl std::fmt::Display for GuardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GuardError::Cancelled => f.write_str("query cancelled"),
            GuardError::DeadlineExceeded => f.write_str("query deadline exceeded"),
            GuardError::ResourceExhausted { needed, budget } => write!(
                f,
                "memory budget exhausted: needed {needed} bytes, budget {budget}"
            ),
        }
    }
}

impl std::error::Error for GuardError {}

#[derive(Debug)]
struct GuardInner {
    /// Set by [`QueryGuard::cancel`]; checked at every morsel claim.
    cancelled: AtomicBool,
    /// When the guard was minted (deadlines are relative to this).
    started: Instant,
    /// Deadline in nanoseconds after `started`; 0 = no deadline.
    deadline_ns: AtomicU64,
    /// Memory budget in bytes; 0 = unlimited.
    mem_budget: AtomicU64,
    /// Bytes charged so far ([`QueryGuard::try_charge`]).
    mem_used: AtomicU64,
    /// Sticky breach record: the `needed` of the first failed charge
    /// (0 = none). Keeps the guard tripped after a breach so workers that
    /// stopped claiming mid-job always surface the typed error.
    breach_needed: AtomicU64,
    /// Bytes written to spill files by out-of-core operators.
    spill_bytes: AtomicU64,
    /// Spill partitions / sorted runs written by out-of-core operators.
    spill_partitions: AtomicU64,
    /// Optional deterministic fault plan ([`fault`]).
    fault: Option<fault::FaultPlan>,
}

/// A per-query resource governor: cancel flag + optional deadline + memory
/// budget, all atomics behind an `Arc` (cheap to clone, `Sync`).
///
/// A guard is minted per query (by `rma-core`'s session layer, or from
/// `RmaOptions` at plan execution) and [activated](QueryGuard::activate)
/// on the submitting thread; the pool re-installs it on every worker
/// running one of the query's jobs. Cooperative check points:
///
/// - the [`WorkerPool::for_each`] claim loop polls the guard before every
///   morsel claim, so a trip stops a running query within one morsel's
///   work;
/// - operators call [`guard_checkpoint`] at their boundaries to turn the
///   (sticky) trip state into a typed error.
///
/// ```
/// use rma_relation::{QueryGuard, WorkerPool};
///
/// let pool = WorkerPool::new(4);
/// let guard = QueryGuard::new();
/// guard.cancel();
/// let _g = guard.activate();
/// let items: Vec<usize> = (0..10_000).collect();
/// pool.for_each(&items, |_, &x| x); // stops claiming immediately
/// assert!(rma_relation::guard_checkpoint().is_err());
/// ```
#[derive(Clone, Debug)]
pub struct QueryGuard(Arc<GuardInner>);

impl Default for QueryGuard {
    fn default() -> Self {
        QueryGuard::new()
    }
}

impl QueryGuard {
    /// An unlimited guard: no deadline, no budget, cancellable.
    pub fn new() -> Self {
        QueryGuard::with_limits(None, 0)
    }

    /// A guard with an optional deadline (measured from now) and a memory
    /// budget in bytes (`0` = unlimited). Picks up a fault plan from the
    /// `RMA_FAULT` environment knob when one is set ([`fault::from_env`]).
    pub fn with_limits(deadline: Option<Duration>, mem_budget: u64) -> Self {
        QueryGuard(Arc::new(GuardInner {
            cancelled: AtomicBool::new(false),
            started: Instant::now(),
            deadline_ns: AtomicU64::new(deadline.map_or(0, |d| (d.as_nanos() as u64).max(1))),
            mem_budget: AtomicU64::new(mem_budget),
            mem_used: AtomicU64::new(0),
            breach_needed: AtomicU64::new(0),
            spill_bytes: AtomicU64::new(0),
            spill_partitions: AtomicU64::new(0),
            fault: fault::from_env(),
        }))
    }

    /// A guard with an explicit fault-injection plan (tests; see [`fault`]).
    pub fn with_fault(deadline: Option<Duration>, mem_budget: u64, plan: fault::FaultPlan) -> Self {
        QueryGuard(Arc::new(GuardInner {
            cancelled: AtomicBool::new(false),
            started: Instant::now(),
            deadline_ns: AtomicU64::new(deadline.map_or(0, |d| (d.as_nanos() as u64).max(1))),
            mem_budget: AtomicU64::new(mem_budget),
            mem_used: AtomicU64::new(0),
            breach_needed: AtomicU64::new(0),
            spill_bytes: AtomicU64::new(0),
            spill_partitions: AtomicU64::new(0),
            fault: Some(plan),
        }))
    }

    /// Request cancellation: the next morsel claim (or operator boundary)
    /// of any thread executing under this guard returns
    /// [`GuardError::Cancelled`]. Idempotent, callable from any thread.
    pub fn cancel(&self) {
        self.0.cancelled.store(true, Ordering::SeqCst);
    }

    /// Has [`QueryGuard::cancel`] been called?
    pub fn is_cancelled(&self) -> bool {
        self.0.cancelled.load(Ordering::SeqCst)
    }

    /// The guard's memory budget in bytes (0 = unlimited).
    pub fn mem_budget(&self) -> u64 {
        self.0.mem_budget.load(Ordering::Relaxed)
    }

    /// Bytes charged against the budget so far.
    pub fn mem_used(&self) -> u64 {
        self.0.mem_used.load(Ordering::Relaxed)
    }

    /// Check the guard: `Err` if cancelled, past deadline, or past a
    /// (sticky) budget breach. Cheap — two relaxed loads on the happy
    /// path plus one `Instant::now()` when a deadline is set.
    pub fn check(&self) -> Result<(), GuardError> {
        if self.is_cancelled() {
            return Err(GuardError::Cancelled);
        }
        let needed = self.0.breach_needed.load(Ordering::Relaxed);
        if needed != 0 {
            return Err(GuardError::ResourceExhausted {
                needed,
                budget: self.mem_budget(),
            });
        }
        let deadline = self.0.deadline_ns.load(Ordering::Relaxed);
        if deadline != 0 && self.0.started.elapsed().as_nanos() as u64 >= deadline {
            return Err(GuardError::DeadlineExceeded);
        }
        Ok(())
    }

    /// Is the guard in a tripped state ([`QueryGuard::check`] would fail)?
    pub fn tripped(&self) -> bool {
        self.check().is_err()
    }

    /// Charge `bytes` of allocation weight against the budget. On breach
    /// the guard trips stickily and returns
    /// [`GuardError::ResourceExhausted`]; with budget 0 every charge
    /// succeeds (the usage counter still accumulates, for observability).
    pub fn try_charge(&self, bytes: u64) -> Result<(), GuardError> {
        let used = self.0.mem_used.fetch_add(bytes, Ordering::Relaxed) + bytes;
        let budget = self.mem_budget();
        if budget != 0 && used > budget {
            self.0.breach_needed.store(used.max(1), Ordering::Relaxed);
            return Err(GuardError::ResourceExhausted {
                needed: used,
                budget,
            });
        }
        Ok(())
    }

    /// Release `bytes` previously charged with [`QueryGuard::try_charge`]:
    /// an operator's working memory (hash tables, permutation buffers) is
    /// freed when the operator completes, so its charge must not keep
    /// counting against later operators of the same query. Saturates at 0.
    /// Does **not** clear a sticky breach — a query that tripped stays
    /// tripped.
    pub fn release(&self, bytes: u64) {
        let _ = self
            .0
            .mem_used
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |u| {
                Some(u.saturating_sub(bytes))
            });
    }

    /// Would charging `bytes` more fit the budget? Always `true` with
    /// budget 0 (unlimited). This is the *headroom probe* out-of-core
    /// operators use to decide between the in-memory and spill paths — it
    /// never trips the guard, unlike [`QueryGuard::try_charge`].
    pub fn fits(&self, bytes: u64) -> bool {
        let budget = self.mem_budget();
        budget == 0 || self.mem_used().saturating_add(bytes) <= budget
    }

    /// Bytes written to spill files so far ([`QueryGuard::record_spill`]).
    pub fn spill_bytes(&self) -> u64 {
        self.0.spill_bytes.load(Ordering::Relaxed)
    }

    /// Spill partitions / sorted runs written so far.
    pub fn spill_partitions(&self) -> u64 {
        self.0.spill_partitions.load(Ordering::Relaxed)
    }

    /// Account `bytes` written to disk across `partitions` new spill
    /// partitions (or sorted runs). Spilled bytes are *disk* footprint and
    /// are never charged against the memory budget.
    pub fn record_spill(&self, bytes: u64, partitions: u64) {
        self.0.spill_bytes.fetch_add(bytes, Ordering::Relaxed);
        self.0
            .spill_partitions
            .fetch_add(partitions, Ordering::Relaxed);
    }

    /// The per-morsel poll: run the fault plan (may panic, sleep, or force
    /// a spurious breach), then [`QueryGuard::check`]. Called by the
    /// [`WorkerPool::for_each`] claim loop before every claim.
    pub fn poll_morsel(&self) -> Result<(), GuardError> {
        if let Some(plan) = &self.0.fault {
            plan.poll(self);
        }
        self.check()
    }

    /// The per-spill-write poll: `true` when an armed spill-I/O fault
    /// ([`fault::FaultKind::SpillIo`], `RMA_FAULT=io@N`) fires at this
    /// write. Spill writes keep their own counter, separate from morsel
    /// polls, so `io@N` deterministically targets the `N`-th spill write
    /// regardless of how many morsels ran first.
    pub fn fault_spill_write(&self) -> bool {
        match &self.0.fault {
            Some(plan) => plan.poll_spill(),
            None => false,
        }
    }

    /// Force a (spurious) budget breach — the fault injector's hook.
    fn force_breach(&self) {
        self.0
            .breach_needed
            .store(self.mem_used().max(1), Ordering::Relaxed);
    }

    /// Mark the current thread as executing under this guard until the
    /// returned RAII guard drops. Nested activations stack (innermost
    /// wins), mirroring [`SessionTicket::activate`].
    pub fn activate(&self) -> ActiveGuard {
        let prev = ACTIVE_GUARD.with(|c| c.replace(Some(self.clone())));
        ActiveGuard { prev }
    }
}

thread_local! {
    /// The query guard governing work submitted from this thread.
    static ACTIVE_GUARD: RefCell<Option<QueryGuard>> = const { RefCell::new(None) };
}

/// RAII guard of [`QueryGuard::activate`]: restores the previously active
/// query guard (if any) when dropped.
#[must_use = "the query guard is only active while this value lives"]
pub struct ActiveGuard {
    prev: Option<QueryGuard>,
}

impl Drop for ActiveGuard {
    fn drop(&mut self) {
        ACTIVE_GUARD.with(|c| c.replace(self.prev.take()));
    }
}

/// The [`QueryGuard`] active on the current thread, if any.
pub fn current_guard() -> Option<QueryGuard> {
    ACTIVE_GUARD.with(|c| c.borrow().clone())
}

/// Operator-boundary check point: `Err` when the thread's active guard has
/// tripped, `Ok` when there is no guard or it is clean. Operators call
/// this after every pool job (and the plan interpreter before every node)
/// so a trip that stopped morsel claiming mid-job surfaces as a typed
/// error instead of a silently truncated result.
pub fn guard_checkpoint() -> Result<(), GuardError> {
    match current_guard() {
        Some(g) => g.check(),
        None => Ok(()),
    }
}

/// Deterministic fault injection for robustness tests.
///
/// A [`FaultPlan`](fault::FaultPlan) attaches to one [`QueryGuard`] and
/// fires exactly once,
/// at a chosen morsel poll: every guard poll ([`QueryGuard::poll_morsel`],
/// i.e. every morsel claim of every job the query runs) increments the
/// plan's counter, and the poll whose index matches the plan's trigger
/// injects the fault — a panic, a delay, or a spurious budget breach.
/// Attaching the plan to the guard (not to global state) keeps injections
/// scoped to one query, so concurrent tests never contaminate each other
/// and the injection point is deterministic for a fixed plan and thread
/// count (the counter is a shared atomic: exactly one poll matches).
///
/// The `RMA_FAULT` environment knob arms every guard minted while it is
/// set — `RMA_FAULT=panic@5`, `RMA_FAULT=delay_ms:20@3`,
/// `RMA_FAULT=breach@0`, or `RMA_FAULT=io@2` — for ad-hoc experiments
/// outside tests. The `io` kind counts **spill writes** instead of morsel
/// polls: it fails the `N`-th write the spill manager attempts, which
/// exercises the out-of-core error path.
pub mod fault {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::Duration;

    /// What to inject when the plan fires.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum FaultKind {
        /// Panic on the matching poll (exercises worker-panic recovery).
        Panic,
        /// Sleep on the matching poll (exercises deadlines and latency).
        Delay(Duration),
        /// Force a spurious budget breach on the guard.
        BudgetBreach,
        /// Fail the matching **spill write** (not morsel poll): the spill
        /// manager surfaces it as a typed spill-I/O error. Spill writes
        /// count on their own counter, so morsel polls never consume the
        /// trigger.
        SpillIo,
    }

    /// A one-shot fault armed at a specific morsel poll of one query.
    #[derive(Debug)]
    pub struct FaultPlan {
        kind: FaultKind,
        at: u64,
        polls: AtomicU64,
        spill_polls: AtomicU64,
    }

    impl FaultPlan {
        /// Inject `kind` at the `at`-th guard poll (0-based).
        pub fn new(kind: FaultKind, at: u64) -> Self {
            FaultPlan {
                kind,
                at,
                polls: AtomicU64::new(0),
                spill_polls: AtomicU64::new(0),
            }
        }

        /// Count one poll; inject if this is the chosen one.
        pub(super) fn poll(&self, guard: &super::QueryGuard) {
            if self.kind == FaultKind::SpillIo {
                return; // spill faults fire from `poll_spill`, not here
            }
            let n = self.polls.fetch_add(1, Ordering::Relaxed);
            if n != self.at {
                return;
            }
            match self.kind {
                FaultKind::Panic => panic!("injected fault: panic at morsel poll {n}"),
                FaultKind::Delay(d) => std::thread::sleep(d),
                FaultKind::BudgetBreach => guard.force_breach(),
                FaultKind::SpillIo => unreachable!(),
            }
        }

        /// Count one spill write; `true` when a [`FaultKind::SpillIo`]
        /// plan fires at this write.
        pub(super) fn poll_spill(&self) -> bool {
            if self.kind != FaultKind::SpillIo {
                return false;
            }
            self.spill_polls.fetch_add(1, Ordering::Relaxed) == self.at
        }
    }

    /// Parse the `RMA_FAULT` environment knob into a plan, if set
    /// (see [`parse`] for the grammar).
    pub fn from_env() -> Option<FaultPlan> {
        parse(&std::env::var("RMA_FAULT").ok()?)
    }

    /// Parse a fault spec: `panic@N`, `delay_ms:M@N`, `breach@N`, or
    /// `io@N` (N = 0-based poll index; for `io` the index counts spill
    /// writes). Malformed specs yield `None` rather than panicking — a
    /// typo in the knob must not take a server down.
    pub fn parse(spec: &str) -> Option<FaultPlan> {
        let (kind, at) = spec.split_once('@')?;
        let at: u64 = at.trim().parse().ok()?;
        let kind = match kind.trim() {
            "panic" => FaultKind::Panic,
            "breach" => FaultKind::BudgetBreach,
            "io" => FaultKind::SpillIo,
            other => {
                let ms: u64 = other.strip_prefix("delay_ms:")?.parse().ok()?;
                FaultKind::Delay(Duration::from_millis(ms))
            }
        };
        Some(FaultPlan::new(kind, at))
    }
}

/// A queued job's closure, type-erased. The pointee lives on the
/// submitting thread's stack; the submitting call blocks until its queue
/// entry is removable (no runner left, none can join), which is what makes
/// sending the raw pointer sound.
struct JobSlot(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointer is only dereferenced by workers that registered as
// runners (under the queue lock) of a live entry; the submitting call —
// which owns the pointee — removes the entry only after every runner has
// finished and no new runner can join.
unsafe impl Send for JobSlot {}

/// How a queued job admits workers.
enum JobMode {
    /// Every worker must run the closure exactly once (legacy broadcast).
    Full {
        /// Per-worker "has run" flags, index 0 = the submitter.
        joined: Vec<bool>,
    },
    /// Claim-based job: any subset of workers may serve it, up to the seat
    /// budget; closes when the first runner returns.
    Scheduled {
        /// Seats left for pool workers (the submitter's seat is implicit).
        seats: usize,
        /// Set when a runner returned: the claim counter is exhausted, no
        /// new worker should join.
        closed: bool,
    },
}

/// One entry of the job queue.
struct JobEntry {
    id: u64,
    raw: JobSlot,
    /// Stride-scheduling priority: workers serve the lowest (pass, seq).
    pass: u64,
    seq: u64,
    /// Workers (incl. the submitter) currently inside the closure.
    running: usize,
    /// A runner caught a panic in this job.
    panicked: bool,
    mode: JobMode,
    /// When the entry was queued — worker pickups subtract this to charge
    /// queue-wait time to the submitting ticket and the pool.
    submitted_at: Instant,
    /// The submitting session's ticket (None for full jobs), so runners
    /// can attribute wait and run time to the right session.
    ticket: Option<SessionTicket>,
    /// The query guard active on the submitting thread, re-installed on
    /// every worker running this job so `current_guard()` (and therefore
    /// [`guard_checkpoint`] and memory charges) work inside job closures.
    guard: Option<QueryGuard>,
}

impl JobEntry {
    /// May `worker` start running this entry now?
    fn admits(&self, worker: usize) -> bool {
        match &self.mode {
            JobMode::Full { joined } => !joined[worker],
            JobMode::Scheduled { seats, closed } => !closed && *seats > 0,
        }
    }

    /// Register `worker` as a runner (caller checked [`JobEntry::admits`]).
    fn join(&mut self, worker: usize) {
        match &mut self.mode {
            JobMode::Full { joined } => joined[worker] = true,
            JobMode::Scheduled { seats, .. } => *seats -= 1,
        }
        self.running += 1;
    }

    /// Is the entry complete (submitter may remove it)? The submitter has
    /// already returned from its own run when it evaluates this.
    fn complete(&self) -> bool {
        self.running == 0
            && match &self.mode {
                JobMode::Full { joined } => joined.iter().all(|&j| j),
                JobMode::Scheduled { .. } => true,
            }
    }
}

/// Shared state between the pool handle and its workers.
struct PoolState {
    /// The job queue. Small (one entry per in-flight submission), so
    /// linear scans beat a priority queue.
    jobs: Vec<JobEntry>,
    next_id: u64,
    next_seq: u64,
    /// Highest pass of any completed job: new/idle tickets clamp up to it
    /// so they compete from "now" instead of hoarding old virtual time.
    pass_floor: u64,
    /// Set by `Drop`: workers exit instead of waiting for more work.
    shutdown: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    /// Workers park here while no entry admits them.
    work: Condvar,
    /// Submitters park here until their entry completes.
    done: Condvar,
    /// Total queue-wait time across all jobs (see [`PoolStats`]).
    queue_wait_ns: AtomicU64,
    /// Total time workers (submitters included) spent inside job closures.
    busy_ns: AtomicU64,
}

/// Mutex helper: pool state is only ever mutated under the lock by pool
/// code (never by job closures), so a poisoned lock can only mean a panic
/// in the pool itself — propagate it.
fn lock(shared: &PoolShared) -> MutexGuard<'_, PoolState> {
    shared.state.lock().expect("worker pool state poisoned")
}

thread_local! {
    /// Is the current thread inside a pool job? Guards against nested
    /// submission deadlocking (a nested barrier could wait on workers that
    /// are waiting on us) — nested jobs degrade to inline execution.
    static IN_POOL_JOB: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Run `f` with the current thread marked as executing a pool job (restored
/// on unwind via the drop guard).
fn run_marked_in_job<R>(f: impl FnOnce() -> R) -> R {
    struct Reset(bool);
    impl Drop for Reset {
        fn drop(&mut self) {
            IN_POOL_JOB.set(self.0);
        }
    }
    let _reset = Reset(IN_POOL_JOB.replace(true));
    f()
}

/// A point-in-time snapshot of a [`WorkerPool`]'s counters, the public
/// face of the pool's internals for metrics and tests
/// ([`WorkerPool::stats`]; `rma-core` re-surfaces it as
/// `RmaContext::pool_stats`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Total workers, including the submitting thread (always ≥ 1).
    pub threads: usize,
    /// Worker threads spawned **process-wide** (see [`threads_spawned`]);
    /// stable across queries on a reused pool.
    pub threads_spawned: usize,
    /// Jobs this pool has completed since construction.
    pub jobs_run: u64,
    /// Jobs in which at least one runner panicked (injected or organic).
    /// The pool survives these — the count proves recovery, not damage.
    pub jobs_panicked: u64,
    /// Queue entries in flight at snapshot time (a gauge: jobs submitted
    /// but not yet retired).
    pub queue_depth: usize,
    /// Cumulative time jobs sat queued before worker pickups (summed over
    /// pickups across all sessions).
    pub queue_wait: Duration,
    /// Cumulative time workers (submitters included) spent inside job
    /// closures — divide by `threads ×` wall time for pool utilization.
    pub busy: Duration,
}

/// A fixed set of worker threads parked between jobs — the one execution
/// substrate every parallel operator runs on — with a fair multi-job
/// scheduler (see the module docs).
///
/// Create one per process or server (`rma-core`'s `RmaContext` owns one,
/// sized from `RmaOptions::threads` / the `RMA_THREADS` env knob) and
/// submit jobs with [`WorkerPool::broadcast`] or the morsel-claiming
/// [`WorkerPool::for_each`]; activate a [`SessionTicket`] to submit under
/// a session's fair-scheduling pass and seat budget. Dropping the pool
/// wakes and joins the workers.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    handles: Vec<std::thread::JoinHandle<()>>,
    /// Jobs completed (tests use this to prove an operator enlisted).
    jobs_run: AtomicU64,
    /// Jobs that saw at least one runner panic (and were survived).
    jobs_panicked: AtomicU64,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.threads())
            .field("jobs_run", &self.jobs_run())
            .finish()
    }
}

impl WorkerPool {
    /// A pool of `threads` workers (`threads - 1` spawned OS threads; the
    /// submitting thread is worker `0`). `threads <= 1` spawns nothing and
    /// runs every job inline.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                jobs: Vec::new(),
                next_id: 0,
                next_seq: 0,
                pass_floor: 0,
                shutdown: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
            queue_wait_ns: AtomicU64::new(0),
            busy_ns: AtomicU64::new(0),
        });
        let handles = (1..threads)
            .map(|id| {
                let shared = Arc::clone(&shared);
                THREADS_SPAWNED.fetch_add(1, Ordering::SeqCst);
                std::thread::Builder::new()
                    .name(format!("rma-pool-{id}"))
                    .spawn(move || worker_loop(&shared, id))
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool {
            shared,
            handles,
            jobs_run: AtomicU64::new(0),
            jobs_panicked: AtomicU64::new(0),
        }
    }

    /// Total workers, including the submitting thread (always ≥ 1).
    pub fn threads(&self) -> usize {
        self.handles.len() + 1
    }

    /// Jobs this pool has completed since construction.
    pub fn jobs_run(&self) -> u64 {
        self.jobs_run.load(Ordering::SeqCst)
    }

    /// Jobs in which at least one runner panicked. The pool recovered
    /// from every one of them (workers are never respawned, state is
    /// never poisoned); the counter exists so metrics and the
    /// fault-injection tests can see the recovery happen.
    pub fn jobs_panicked(&self) -> u64 {
        self.jobs_panicked.load(Ordering::SeqCst)
    }

    /// Jobs currently in the queue (submitted, not yet retired).
    pub fn queue_depth(&self) -> usize {
        lock(&self.shared).jobs.len()
    }

    /// Snapshot the pool's counters (cheap: one short lock for the queue
    /// depth, relaxed loads for the rest).
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            threads: self.threads(),
            threads_spawned: threads_spawned(),
            jobs_run: self.jobs_run(),
            jobs_panicked: self.jobs_panicked(),
            queue_depth: self.queue_depth(),
            queue_wait: Duration::from_nanos(self.shared.queue_wait_ns.load(Ordering::Relaxed)),
            busy: Duration::from_nanos(self.shared.busy_ns.load(Ordering::Relaxed)),
        }
    }

    /// Run `f(worker)` concurrently on the pool and return when the job is
    /// done. With no ticket active on the calling thread this is a **full**
    /// job: every worker runs `f` exactly once (the legacy contract; see
    /// the module docs). With an active [`SessionTicket`] the job is
    /// **scheduled**: served by up to `seats` workers picked fairly across
    /// sessions, so the closure must be claim-based.
    ///
    /// Nested submission — `broadcast` called from inside a running job
    /// (e.g. a kernel that parallelises through a pool reached from an
    /// operator already on one) — is detected and degraded to inline
    /// execution: the nested job runs serially as worker `0` on the
    /// current thread, which is correct for claim-loop jobs (one worker
    /// claims everything).
    pub fn broadcast(&self, f: &(dyn Fn(usize) + Sync)) {
        let ticket = current_ticket();
        let guard = current_guard();
        let seat_limit = ticket.as_ref().map_or(0, |t| t.seats());
        if self.handles.is_empty() || IN_POOL_JOB.get() || seat_limit == 1 {
            let t0 = Instant::now();
            let span = trace::clock();
            let caller = catch_unwind(AssertUnwindSafe(|| f(0)));
            trace::record("pool.job", "pool", 0, span, 0, 0, 0);
            charge_run(&self.shared, ticket.as_ref(), t0.elapsed());
            self.jobs_run.fetch_add(1, Ordering::SeqCst);
            if let Err(payload) = caller {
                self.jobs_panicked.fetch_add(1, Ordering::SeqCst);
                resume_unwind(payload);
            }
            return;
        }
        let id;
        {
            let mut st = lock(&self.shared);
            // SAFETY (lifetime erasure): this call blocks below until the
            // entry is complete (no runner left, none can join) and removes
            // it before returning — the pointee outlives every dereference.
            let raw = JobSlot(unsafe {
                std::mem::transmute::<
                    *const (dyn Fn(usize) + Sync + '_),
                    *const (dyn Fn(usize) + Sync + 'static),
                >(f)
            });
            id = st.next_id;
            st.next_id += 1;
            let seq = st.next_seq;
            st.next_seq += 1;
            let (pass, mode) = match &ticket {
                None => {
                    // full job: schedule at the floor (FIFO among peers)
                    let mut joined = vec![false; self.threads()];
                    joined[0] = true; // the submitter is worker 0
                    (st.pass_floor, JobMode::Full { joined })
                }
                Some(t) => {
                    let pass = t.0.pass.load(Ordering::Relaxed).max(st.pass_floor);
                    t.0.pass.store(pass + t.0.stride, Ordering::Relaxed);
                    let seats = if t.seats() == 0 {
                        self.handles.len()
                    } else {
                        (t.seats() - 1).min(self.handles.len())
                    };
                    (
                        pass,
                        JobMode::Scheduled {
                            seats,
                            closed: false,
                        },
                    )
                }
            };
            st.jobs.push(JobEntry {
                id,
                raw,
                pass,
                seq,
                running: 1, // the submitter, below
                panicked: false,
                mode,
                submitted_at: Instant::now(),
                ticket: ticket.clone(),
                guard,
            });
            self.shared.work.notify_all();
        }
        // the submitter is worker 0; catch a panic so the completion wait
        // below still runs and the job pointer stays valid until every
        // runner has finished
        let t0 = Instant::now();
        let span = trace::clock();
        let caller = catch_unwind(AssertUnwindSafe(|| run_marked_in_job(|| f(0))));
        trace::record("pool.job", "pool", 0, span, 0, 0, 0);
        charge_run(&self.shared, ticket.as_ref(), t0.elapsed());
        let mut st = lock(&self.shared);
        let idx = st
            .jobs
            .iter()
            .position(|e| e.id == id)
            .expect("submitted job entry vanished");
        st.jobs[idx].running -= 1;
        if let JobMode::Scheduled { closed, .. } = &mut st.jobs[idx].mode {
            *closed = true;
        }
        while !st.jobs.iter().find(|e| e.id == id).expect("job").complete() {
            st = self
                .shared
                .done
                .wait(st)
                .expect("worker pool state poisoned");
        }
        let idx = st.jobs.iter().position(|e| e.id == id).expect("job");
        let entry = st.jobs.swap_remove(idx);
        st.pass_floor = st.pass_floor.max(entry.pass);
        drop(st);
        self.jobs_run.fetch_add(1, Ordering::SeqCst);
        if caller.is_err() || entry.panicked {
            self.jobs_panicked.fetch_add(1, Ordering::SeqCst);
        }
        match caller {
            Err(payload) => resume_unwind(payload),
            Ok(()) if entry.panicked => panic!("worker pool job panicked on a worker thread"),
            Ok(()) => {}
        }
    }

    /// Run `f` over every item, workers claiming items from a shared
    /// counter (morsel-driven dispatch), and return the results in item
    /// order. Inherits the calling thread's active [`SessionTicket`], if
    /// any — the job is then seat-budgeted and fairly interleaved with
    /// other sessions' jobs. With one worker or at most one item the work
    /// runs inline on the caller's thread.
    /// When a [`QueryGuard`] is active on the submitting thread, the
    /// claim loop polls it before every claim ([`QueryGuard::poll_morsel`])
    /// and stops claiming on a trip — a cancelled or over-budget query
    /// therefore stops within one item's work. A tripped guard can leave
    /// the returned vector **short**; callers running governed must call
    /// [`guard_checkpoint`] afterwards to turn the truncation into a typed
    /// error (operators in this crate all do).
    pub fn for_each<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let guard = current_guard();
        let tripped = |g: &Option<QueryGuard>| g.as_ref().is_some_and(|g| g.poll_morsel().is_err());
        if self.handles.is_empty() || items.len() <= 1 {
            let mut out = Vec::with_capacity(items.len());
            for (i, item) in items.iter().enumerate() {
                if tripped(&guard) {
                    break;
                }
                out.push(f(i, item));
            }
            return out;
        }
        let next = AtomicUsize::new(0);
        let collected: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(items.len()));
        self.broadcast(&|_worker| {
            let mut local = Vec::new();
            loop {
                if tripped(&guard) {
                    break;
                }
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                local.push((i, f(i, item)));
            }
            if !local.is_empty() {
                collected
                    .lock()
                    .expect("for_each result sink poisoned")
                    .extend(local);
            }
        });
        let mut collected = collected
            .into_inner()
            .expect("for_each result sink poisoned");
        collected.sort_unstable_by_key(|(i, _)| *i);
        collected.into_iter().map(|(_, r)| r).collect()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = lock(&self.shared);
            st.shutdown = true;
            self.shared.work.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Charge `ran` closure time to the pool's busy counter and — when the
/// job ran under a session ticket — to that session.
fn charge_run(shared: &PoolShared, ticket: Option<&SessionTicket>, ran: Duration) {
    let ns = ran.as_nanos() as u64;
    shared.busy_ns.fetch_add(ns, Ordering::Relaxed);
    if let Some(t) = ticket {
        t.0.run_ns.fetch_add(ns, Ordering::Relaxed);
    }
}

/// Pick the queue entry worker `id` should serve next: the admitting entry
/// with the lowest (pass, seq). Returns the closure pointer, entry id,
/// submission time, and submitting ticket after registering the worker as
/// a runner.
#[allow(clippy::type_complexity)]
fn pick_job(
    st: &mut PoolState,
    id: usize,
) -> Option<(
    *const (dyn Fn(usize) + Sync),
    u64,
    Instant,
    Option<SessionTicket>,
    Option<QueryGuard>,
)> {
    let best = st
        .jobs
        .iter_mut()
        .filter(|e| e.admits(id))
        .min_by_key(|e| (e.pass, e.seq))?;
    best.join(id);
    Some((
        best.raw.0,
        best.id,
        best.submitted_at,
        best.ticket.clone(),
        best.guard.clone(),
    ))
}

fn worker_loop(shared: &PoolShared, id: usize) {
    loop {
        let (raw, job_id, submitted_at, ticket, guard) = {
            let mut st = lock(shared);
            loop {
                if st.shutdown {
                    return;
                }
                if let Some(picked) = pick_job(&mut st, id) {
                    break picked;
                }
                st = shared.work.wait(st).expect("worker pool state poisoned");
            }
        };
        // queue wait: submission → this pickup, charged to pool + session
        let waited_ns = submitted_at.elapsed().as_nanos() as u64;
        shared.queue_wait_ns.fetch_add(waited_ns, Ordering::Relaxed);
        if let Some(t) = &ticket {
            t.0.queue_wait_ns.fetch_add(waited_ns, Ordering::Relaxed);
        }
        // SAFETY: this worker registered as a runner of a live entry under
        // the lock; the submitter keeps the pointee alive (and the entry
        // queued) until `running` returns to zero, which happens only after
        // the last use of `raw` below.
        let f = unsafe { &*raw };
        let t0 = Instant::now();
        let span = trace::clock();
        // install the submitting query's guard for the closure's duration
        // (the RAII guard drops — restoring the TLS slot — even on unwind)
        let ok = catch_unwind(AssertUnwindSafe(|| {
            let _active = guard.as_ref().map(QueryGuard::activate);
            run_marked_in_job(|| f(id))
        }))
        .is_ok();
        trace::record("pool.job", "pool", id, span, 0, 0, 0);
        charge_run(shared, ticket.as_ref(), t0.elapsed());
        let mut st = lock(shared);
        let entry = st
            .jobs
            .iter_mut()
            .find(|e| e.id == job_id)
            .expect("running job entry vanished");
        if !ok {
            entry.panicked = true;
        }
        entry.running -= 1;
        if let JobMode::Scheduled { closed, .. } = &mut entry.mode {
            *closed = true;
        }
        if entry.running == 0 {
            shared.done.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn partitioner_empty_table() {
        assert!(partition_ranges(0, 4).is_empty());
        assert!(partition_ranges(0, 0).is_empty());
    }

    #[test]
    fn partitioner_fewer_rows_than_partitions() {
        let r = partition_ranges(3, 8);
        assert_eq!(r, vec![0..1, 1..2, 2..3]);
    }

    #[test]
    fn partitioner_uneven_split() {
        let r = partition_ranges(10, 4);
        assert_eq!(r, vec![0..3, 3..6, 6..8, 8..10]);
        // ranges cover the input exactly, sizes differ by at most one
        let sizes: Vec<usize> = r.iter().map(|x| x.end - x.start).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 10);
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
    }

    #[test]
    fn partitioner_even_split_and_single_part() {
        assert_eq!(partition_ranges(8, 4), vec![0..2, 2..4, 4..6, 6..8]);
        assert_eq!(partition_ranges(5, 1), vec![0..5]);
        // parts = 0 is clamped to one range
        assert_eq!(partition_ranges(5, 0), vec![0..5]);
    }

    #[test]
    fn partitioner_is_deterministic() {
        assert_eq!(partition_ranges(1234, 7), partition_ranges(1234, 7));
    }

    #[test]
    fn pool_for_each_preserves_item_order() {
        let pool = WorkerPool::new(4);
        let items: Vec<usize> = (0..100).collect();
        let out = pool.for_each(&items, |i, &x| {
            assert_eq!(i, x);
            x * 2
        });
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn pool_runs_inline_when_serial() {
        let pool = WorkerPool::new(1);
        assert_eq!(pool.threads(), 1);
        let items = vec![1, 2, 3];
        assert_eq!(pool.for_each(&items, |_, &x| x + 1), vec![2, 3, 4]);
        let pool0 = WorkerPool::new(0);
        assert_eq!(pool0.threads(), 1);
        assert_eq!(pool0.for_each(&items, |_, &x| x + 1), vec![2, 3, 4]);
        let one = vec![9];
        assert_eq!(WorkerPool::new(8).for_each(&one, |_, &x| x), vec![9]);
        let none: Vec<i32> = Vec::new();
        assert!(WorkerPool::new(8).for_each(&none, |_, &x| x).is_empty());
    }

    #[test]
    fn pool_reuses_threads_across_jobs() {
        // observe the thread identities jobs run on: across many jobs the
        // pool must only ever use its fixed worker set (+ the submitter) —
        // respawning would grow the set. (The process-wide threads_spawned
        // counter is asserted in the isolated pool_reuse integration test;
        // here sibling unit tests create pools concurrently, so per-pool
        // thread identity is the race-free observation.)
        let pool = WorkerPool::new(4);
        let seen: Mutex<std::collections::HashSet<std::thread::ThreadId>> =
            Mutex::new(std::collections::HashSet::new());
        for round in 0..50u64 {
            let items: Vec<usize> = (0..64).collect();
            let out = pool.for_each(&items, |_, &x| {
                seen.lock().unwrap().insert(std::thread::current().id());
                x + round as usize
            });
            assert_eq!(out[0], round as usize);
        }
        let distinct = seen.lock().unwrap().len();
        assert!(
            distinct <= pool.threads(),
            "50 jobs touched {distinct} distinct threads — more than the \
             pool's {} fixed workers, so threads were respawned",
            pool.threads()
        );
        assert!(pool.jobs_run() >= 50);
    }

    #[test]
    fn pool_broadcast_runs_every_worker() {
        // no active ticket → full job: every worker runs exactly once
        let pool = WorkerPool::new(4);
        let hits = Mutex::new(vec![0usize; pool.threads()]);
        pool.broadcast(&|w| {
            hits.lock().unwrap()[w] += 1;
        });
        assert_eq!(*hits.lock().unwrap(), vec![1; 4]);
    }

    #[test]
    fn pool_survives_job_panic() {
        let pool = WorkerPool::new(4);
        let boom = catch_unwind(AssertUnwindSafe(|| {
            let items: Vec<usize> = (0..32).collect();
            pool.for_each(&items, |_, &x| {
                if x == 17 {
                    panic!("morsel 17 exploded");
                }
                x
            });
        }));
        assert!(boom.is_err(), "the panic must propagate to the submitter");
        // the pool is still functional afterwards
        let items: Vec<usize> = (0..32).collect();
        assert_eq!(pool.for_each(&items, |_, &x| x), items);
    }

    #[test]
    fn nested_submission_runs_inline_instead_of_deadlocking() {
        let pool = WorkerPool::new(4);
        let items: Vec<usize> = (0..16).collect();
        let out = pool.for_each(&items, |_, &x| {
            // a nested job from inside a worker: must complete (inline,
            // single worker), not deadlock
            let inner: Vec<usize> = (0..8).collect();
            let nested = pool.for_each(&inner, |_, &y| y * 10);
            assert_eq!(nested, (0..8).map(|y| y * 10).collect::<Vec<_>>());
            x + 1
        });
        assert_eq!(out, (1..=16).collect::<Vec<_>>());
    }

    #[test]
    fn pool_serialises_concurrent_submitters() {
        let pool = WorkerPool::new(3);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    let items: Vec<usize> = (0..200).collect();
                    let out = pool.for_each(&items, |_, &x| x * 3);
                    assert_eq!(out, (0..200).map(|x| x * 3).collect::<Vec<_>>());
                });
            }
        });
    }

    #[test]
    fn ticketed_jobs_run_concurrently() {
        // Two sessions' jobs must be in flight at once: session A's job
        // blocks until session B's job releases it — impossible on the old
        // one-job-at-a-time pool, routine under the scheduler.
        let pool = WorkerPool::new(4);
        let a = SessionTicket::new(2);
        let b = SessionTicket::new(2);
        let a_started = AtomicBool::new(false);
        let release = AtomicBool::new(false);
        std::thread::scope(|scope| {
            scope.spawn(|| {
                let _g = a.activate();
                pool.broadcast(&|_w| {
                    a_started.store(true, Ordering::SeqCst);
                    while !release.load(Ordering::SeqCst) {
                        std::thread::yield_now();
                    }
                });
            });
            scope.spawn(|| {
                // wait until A's job is genuinely in flight
                while !a_started.load(Ordering::SeqCst) {
                    std::thread::yield_now();
                }
                let _g = b.activate();
                pool.broadcast(&|_w| {
                    release.store(true, Ordering::SeqCst);
                });
            });
        });
        assert!(release.load(Ordering::SeqCst));
    }

    #[test]
    fn seat_budget_bounds_worker_participation() {
        let pool = WorkerPool::new(8);
        let ticket = SessionTicket::new(2);
        let _g = ticket.activate();
        let threads_seen: Mutex<std::collections::HashSet<std::thread::ThreadId>> =
            Mutex::new(std::collections::HashSet::new());
        // many items so that, were the budget ignored, more workers would
        // almost surely claim some
        let items: Vec<usize> = (0..4096).collect();
        let out = pool.for_each(&items, |_, &x| {
            threads_seen
                .lock()
                .unwrap()
                .insert(std::thread::current().id());
            // tiny spin so claims spread across the admitted workers
            std::hint::black_box((0..50).sum::<usize>());
            x
        });
        assert_eq!(out.len(), 4096);
        let distinct = threads_seen.lock().unwrap().len();
        assert!(
            distinct <= 2,
            "seat budget 2 but {distinct} distinct threads ran the job"
        );
    }

    #[test]
    fn budget_one_runs_inline() {
        let pool = WorkerPool::new(4);
        let ticket = SessionTicket::new(1);
        let _g = ticket.activate();
        let submitter = std::thread::current().id();
        let items: Vec<usize> = (0..256).collect();
        let out = pool.for_each(&items, |_, &x| {
            assert_eq!(std::thread::current().id(), submitter);
            x + 1
        });
        assert_eq!(out.len(), 256);
    }

    #[test]
    fn ticket_pass_advances_per_job() {
        let pool = WorkerPool::new(2);
        let t = SessionTicket::new(0);
        let start = t.pass();
        let _g = t.activate();
        for _ in 0..3 {
            let items: Vec<usize> = (0..64).collect();
            pool.for_each(&items, |_, &x| x);
        }
        assert!(
            t.pass() >= start + 3 * (STRIDE_UNIT / 2),
            "pass did not advance: {} -> {}",
            start,
            t.pass()
        );
    }

    #[test]
    fn fair_scheduler_serves_lowest_pass_first() {
        // One spawned worker (pool of 2). Occupy it with a blocker job,
        // queue one job from a high-pass session (B) and one from a
        // fresh low-pass session (C); when the blocker releases, the
        // worker must serve C before B.
        let pool = WorkerPool::new(2);
        let blocker = SessionTicket::new(2);
        let b = SessionTicket::new(2);
        // advance B's pass well beyond the floor
        {
            let _g = b.activate();
            for _ in 0..3 {
                let items: Vec<usize> = (0..8).collect();
                pool.for_each(&items, |_, &x| x);
            }
        }
        let c = SessionTicket::new(2);
        let release = AtomicBool::new(false);
        let blocker_running = AtomicBool::new(false);
        let queued = AtomicUsize::new(0);
        let join_order: Mutex<Vec<char>> = Mutex::new(Vec::new());
        let b_joined = AtomicBool::new(false);
        let c_joined = AtomicBool::new(false);
        std::thread::scope(|scope| {
            scope.spawn(|| {
                let _g = blocker.activate();
                pool.broadcast(&|w| {
                    if w == 0 {
                        // hold the job open (a scheduled job closes when
                        // its first runner returns) until the worker joins
                        while !blocker_running.load(Ordering::SeqCst) {
                            std::thread::yield_now();
                        }
                    } else {
                        blocker_running.store(true, Ordering::SeqCst);
                        while !release.load(Ordering::SeqCst) {
                            std::thread::yield_now();
                        }
                    }
                });
            });
            while !blocker_running.load(Ordering::SeqCst) {
                std::thread::yield_now();
            }
            scope.spawn(|| {
                let _g = b.activate();
                pool.broadcast(&|w| {
                    if w == 0 {
                        queued.fetch_add(1, Ordering::SeqCst);
                        // hold the job open until the worker joins it
                        while !b_joined.load(Ordering::SeqCst) {
                            std::thread::yield_now();
                        }
                    } else {
                        join_order.lock().unwrap().push('b');
                        b_joined.store(true, Ordering::SeqCst);
                    }
                });
            });
            scope.spawn(|| {
                let _g = c.activate();
                pool.broadcast(&|w| {
                    if w == 0 {
                        queued.fetch_add(1, Ordering::SeqCst);
                        while !c_joined.load(Ordering::SeqCst) {
                            std::thread::yield_now();
                        }
                    } else {
                        join_order.lock().unwrap().push('c');
                        c_joined.store(true, Ordering::SeqCst);
                    }
                });
            });
            // both jobs queued and held open → free the worker
            while queued.load(Ordering::SeqCst) < 2 {
                std::thread::yield_now();
            }
            release.store(true, Ordering::SeqCst);
        });
        assert_eq!(
            *join_order.lock().unwrap(),
            vec!['c', 'b'],
            "worker served the higher-pass session first"
        );
    }

    #[test]
    fn activate_guard_restores_previous_ticket() {
        let outer = SessionTicket::new(4);
        let inner = SessionTicket::new(2);
        let _a = outer.activate();
        assert_eq!(current_ticket().unwrap().seats(), 4);
        {
            let _b = inner.activate();
            assert_eq!(current_ticket().unwrap().seats(), 2);
        }
        assert_eq!(current_ticket().unwrap().seats(), 4);
    }

    #[test]
    fn guard_cancel_stops_for_each_and_checkpoint_reports() {
        let pool = WorkerPool::new(4);
        let guard = QueryGuard::new();
        guard.cancel();
        let _g = guard.activate();
        let items: Vec<usize> = (0..100_000).collect();
        let out = pool.for_each(&items, |_, &x| x * 2);
        assert!(
            out.len() < items.len(),
            "a pre-cancelled guard must stop morsel claiming early"
        );
        assert_eq!(guard_checkpoint(), Err(GuardError::Cancelled));
    }

    #[test]
    fn guard_deadline_trips_and_is_sticky() {
        let guard = QueryGuard::with_limits(Some(Duration::from_nanos(1)), 0);
        std::thread::sleep(Duration::from_millis(1));
        assert_eq!(guard.check(), Err(GuardError::DeadlineExceeded));
        // sticky: stays tripped on re-check
        assert!(guard.tripped());
    }

    #[test]
    fn guard_memory_budget_breach_is_sticky() {
        let guard = QueryGuard::with_limits(None, 1000);
        assert!(guard.try_charge(600).is_ok());
        assert!(matches!(
            guard.try_charge(600),
            Err(GuardError::ResourceExhausted {
                needed: 1200,
                budget: 1000
            })
        ));
        // later checks keep failing even without further charges
        assert!(matches!(
            guard.check(),
            Err(GuardError::ResourceExhausted { .. })
        ));
        assert_eq!(guard.mem_used(), 1200);
    }

    #[test]
    fn guard_zero_budget_means_unlimited() {
        let guard = QueryGuard::with_limits(None, 0);
        assert!(guard.try_charge(u64::MAX / 4).is_ok());
        assert!(guard.try_charge(u64::MAX / 4).is_ok());
        assert!(guard.check().is_ok());
    }

    #[test]
    fn guard_propagates_to_pool_workers() {
        let pool = WorkerPool::new(4);
        let guard = QueryGuard::new();
        let _g = guard.activate();
        let seen = AtomicUsize::new(0);
        let items: Vec<usize> = (0..50_000).collect();
        pool.for_each(&items, |_, &x| {
            // every claim runs with the guard installed, wherever it runs
            if current_guard().is_some() {
                seen.fetch_add(1, Ordering::Relaxed);
            }
            x
        });
        assert_eq!(
            seen.load(Ordering::Relaxed),
            items.len(),
            "current_guard() must resolve inside job closures on all workers"
        );
    }

    #[test]
    fn guard_activate_restores_previous_guard() {
        let outer = QueryGuard::with_limits(None, 111);
        let inner = QueryGuard::with_limits(None, 222);
        let _a = outer.activate();
        assert_eq!(current_guard().unwrap().mem_budget(), 111);
        {
            let _b = inner.activate();
            assert_eq!(current_guard().unwrap().mem_budget(), 222);
        }
        assert_eq!(current_guard().unwrap().mem_budget(), 111);
        drop(_a);
        assert!(current_guard().is_none());
    }

    #[test]
    fn fault_panic_injection_fires_once_and_pool_survives() {
        let pool = WorkerPool::new(2);
        let guard =
            QueryGuard::with_fault(None, 0, fault::FaultPlan::new(fault::FaultKind::Panic, 3));
        let items: Vec<usize> = (0..10_000).collect();
        let caught = catch_unwind(AssertUnwindSafe(|| {
            let _g = guard.activate();
            pool.for_each(&items, |_, &x| x)
        }));
        assert!(caught.is_err(), "the injected panic must propagate");
        // no respawn: the pool's worker set is fixed at construction (the
        // process-wide threads_spawned counter is asserted in the isolated
        // pool_reuse integration test; sibling unit tests racing pool
        // creation make it unusable here)
        assert_eq!(pool.stats().threads, 2);
        assert!(pool.jobs_panicked() >= 1);
        // the pool is still fully usable afterwards
        let ok: Vec<usize> = pool.for_each(&items, |_, &x| x + 1);
        assert_eq!(ok.len(), items.len());
        assert_eq!(ok[10], 11);
    }

    #[test]
    fn fault_breach_injection_trips_the_guard() {
        let pool = WorkerPool::new(2);
        let guard = QueryGuard::with_fault(
            None,
            0,
            fault::FaultPlan::new(fault::FaultKind::BudgetBreach, 0),
        );
        let _g = guard.activate();
        let items: Vec<usize> = (0..10_000).collect();
        let _ = pool.for_each(&items, |_, &x| x);
        assert!(matches!(
            guard_checkpoint(),
            Err(GuardError::ResourceExhausted { .. })
        ));
    }

    #[test]
    fn fault_spec_parser() {
        assert!(matches!(
            fault::parse("panic@5"),
            Some(p) if format!("{p:?}").contains("Panic")
        ));
        assert!(fault::parse("breach@0").is_some());
        assert!(fault::parse("delay_ms:20@3").is_some());
        assert!(fault::parse("panic").is_none(), "missing @N");
        assert!(fault::parse("delay_ms:x@3").is_none(), "bad millis");
        assert!(fault::parse("frobnicate@1").is_none(), "unknown kind");
        assert!(fault::parse("panic@banana").is_none(), "bad index");
    }

    #[test]
    fn ungoverned_for_each_is_unchanged() {
        let pool = WorkerPool::new(4);
        assert!(current_guard().is_none());
        let items: Vec<usize> = (0..10_000).collect();
        let out = pool.for_each(&items, |_, &x| x * 3);
        assert_eq!(out.len(), items.len());
        assert_eq!(out[7], 21);
        assert!(guard_checkpoint().is_ok());
    }
}
