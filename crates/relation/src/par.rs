//! Morsel-driven parallelism primitives: the row-range partitioner and a
//! small work-claiming scheduler on `std::thread`.
//!
//! A *morsel* is a contiguous row range of a relation. Parallel operators
//! split their input into morsels and let a fixed set of worker threads
//! claim them from a shared atomic counter — faster workers simply claim
//! more morsels, which gives work-stealing-like load balancing without
//! per-task queues or external dependencies. Results are reassembled in
//! morsel order, so parallel execution is deterministic and produces the
//! same row order as the serial operator.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Morsels per worker thread: enough slack that an uneven morsel (e.g. a
/// selective filter hitting one range) rebalances onto idle workers.
const MORSELS_PER_THREAD: usize = 4;

/// Inputs below this many rows run the serial operator even when threads
/// are available: thread spawn/join costs tens of microseconds, which
/// dwarfs the operator itself on small relations (the relational analogue
/// of the dense kernels' element thresholds).
pub const MIN_PARALLEL_ROWS: usize = 1024;

/// Split `0..len` into at most `parts` contiguous, non-empty ranges of
/// near-equal size (sizes differ by at most one; longer ranges first).
/// Deterministic: the same `(len, parts)` always yields the same split.
/// An empty input yields no ranges.
pub fn partition_ranges(len: usize, parts: usize) -> Vec<Range<usize>> {
    if len == 0 {
        return Vec::new();
    }
    let parts = parts.clamp(1, len);
    let base = len / parts;
    let rem = len % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for k in 0..parts {
        let size = base + usize::from(k < rem);
        out.push(start..start + size);
        start += size;
    }
    debug_assert_eq!(start, len);
    out
}

/// The morsel count for an operator over `len` rows with `threads` workers.
pub fn morsel_count(threads: usize, len: usize) -> usize {
    (threads.max(1) * MORSELS_PER_THREAD).min(len).max(1)
}

/// Run `f` over every item on up to `threads` scoped worker threads and
/// return the results in item order. Workers claim items from a shared
/// counter (morsel-driven dispatch); with `threads <= 1` or a single item
/// the work runs inline on the caller's thread.
pub fn for_each_partition<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    if threads <= 1 || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let workers = threads.min(items.len());
    let next = AtomicUsize::new(0);
    let f = &f;
    let next = &next;
    let mut collected: Vec<(usize, R)> = Vec::with_capacity(items.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(move || {
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(i) else { break };
                        out.push((i, f(i, item)));
                    }
                    out
                })
            })
            .collect();
        for h in handles {
            collected.extend(h.join().expect("morsel worker panicked"));
        }
    });
    collected.sort_unstable_by_key(|(i, _)| *i);
    collected.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partitioner_empty_table() {
        assert!(partition_ranges(0, 4).is_empty());
        assert!(partition_ranges(0, 0).is_empty());
    }

    #[test]
    fn partitioner_fewer_rows_than_partitions() {
        let r = partition_ranges(3, 8);
        assert_eq!(r, vec![0..1, 1..2, 2..3]);
    }

    #[test]
    fn partitioner_uneven_split() {
        let r = partition_ranges(10, 4);
        assert_eq!(r, vec![0..3, 3..6, 6..8, 8..10]);
        // ranges cover the input exactly, sizes differ by at most one
        let sizes: Vec<usize> = r.iter().map(|x| x.end - x.start).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 10);
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
    }

    #[test]
    fn partitioner_even_split_and_single_part() {
        assert_eq!(partition_ranges(8, 4), vec![0..2, 2..4, 4..6, 6..8]);
        assert_eq!(partition_ranges(5, 1), vec![0..5]);
        // parts = 0 is clamped to one range
        assert_eq!(partition_ranges(5, 0), vec![0..5]);
    }

    #[test]
    fn partitioner_is_deterministic() {
        assert_eq!(partition_ranges(1234, 7), partition_ranges(1234, 7));
    }

    #[test]
    fn scheduler_preserves_item_order() {
        let items: Vec<usize> = (0..100).collect();
        let out = for_each_partition(4, &items, |i, &x| {
            assert_eq!(i, x);
            x * 2
        });
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn scheduler_runs_inline_when_serial() {
        let items = vec![1, 2, 3];
        assert_eq!(for_each_partition(1, &items, |_, &x| x + 1), vec![2, 3, 4]);
        assert_eq!(for_each_partition(0, &items, |_, &x| x + 1), vec![2, 3, 4]);
        let one = vec![9];
        assert_eq!(for_each_partition(8, &one, |_, &x| x), vec![9]);
        let none: Vec<i32> = Vec::new();
        assert!(for_each_partition(8, &none, |_, &x| x).is_empty());
    }
}
