//! Out-of-core operators: grace hash join, external merge sort, and the
//! partition-wise spilling aggregate.
//!
//! These are the spill-path twins of the in-memory parallel operators,
//! taken when the planner's headroom probe
//! ([`QueryGuard::fits`](crate::par::QueryGuard::fits)) says the operator's
//! working set will not fit the memory budget:
//!
//! - **Grace hash join**: both inputs are hash-partitioned on the join key
//!   into [`SpillFile`]s (null-key rows are dropped up front — inner-join
//!   semantics), then each partition pair is joined independently with the
//!   ordinary pool-parallel hash join, so every spilled partition re-enters
//!   the worker pool as its own morsel source. A partition whose build
//!   side still exceeds the budget is recursively repartitioned (different
//!   hash bits per level) up to [`MAX_GRACE_DEPTH`]; past that depth it is
//!   joined in memory regardless — the budget becomes best-effort rather
//!   than looping forever on pathological key skew.
//! - **External sort**: the input is cut into budget-sized consecutive
//!   ranges; workers sort each range and spill it as a sorted run; the
//!   runs are streamed back chunk-at-a-time and k-way merged. The merge
//!   breaks key ties by run index, which (runs being consecutive ranges)
//!   reproduces the serial sort's global-row-index tie-break exactly.
//! - **Spilling aggregate**: rows are hash-partitioned on the group key
//!   (null keys *are* group keys here, unlike joins), each partition is
//!   aggregated independently — group keys never span partitions — and
//!   the partial results are concatenated.
//!
//! Results are value-identical to the in-memory operators; the **row
//! order** of the grace join and the spilling aggregate is partition-major
//! rather than probe-major, which SQL semantics leave unspecified.

use super::sort::SortKeys;
use super::{hash_row, row_key};
use crate::error::RelationError;
use crate::par::{current_guard, guard_checkpoint, WorkerPool};
use crate::relation::Relation;
use crate::schema::Schema;
use crate::spill::{SpillFile, SpillReader, SPILL_CHUNK_ROWS};
use crate::trace;
use rma_storage::{Bitmap, Column, ColumnData, DataType};
use std::cmp::Ordering;
use std::hash::{Hash, Hasher};

/// Maximum grace-join repartition depth. Each level consumes 16 fresh bits
/// of the 64-bit key hash, so two levels of fanout ≤ 32 already separate
/// everything except genuinely duplicate keys — which no partitioning can
/// split further.
pub const MAX_GRACE_DEPTH: u32 = 2;

/// Grace fanout bounds: at least a real split, at most a file-descriptor
/// count that stays polite at two levels of recursion.
const MIN_FANOUT: usize = 2;
const MAX_FANOUT: usize = 32;

/// Minimum rows per external-sort run — below this, file overhead dwarfs
/// the sort.
const MIN_RUN_ROWS: usize = 1024;

/// The partition fanout for an operator whose working set is estimated at
/// `est_bytes`, aiming each partition at half the budget's headroom.
fn fanout(est_bytes: u64) -> usize {
    let budget = current_guard().map_or(0, |g| g.mem_budget());
    if budget == 0 {
        return 8; // forced spill without a budget (tests): any real split
    }
    let target = (budget / 2).max(1);
    usize::try_from(est_bytes / target + 1)
        .unwrap_or(MAX_FANOUT)
        .clamp(MIN_FANOUT, MAX_FANOUT)
}

/// ~bytes the relation occupies once materialized (the planner's uniform
/// 8-bytes-per-cell estimate).
fn rel_bytes_est(r: &Relation) -> u64 {
    (r.len() as u64) * (r.schema().len().max(1) as u64) * 8
}

fn key_cols<'a>(r: &'a Relation, keys: &[&str]) -> Result<Vec<&'a Column>, RelationError> {
    keys.iter().map(|n| r.base_column(n)).collect()
}

/// Partition bucket of base row `base`: key hash, shifted by 16 bits per
/// recursion level so each level splits on fresh bits. Null-containing
/// keys take the boxed-key hash (only the aggregate path sees them).
fn part_bucket(cols: &[&Column], base: usize, parts: usize, depth: u32) -> usize {
    let h = if cols.iter().any(|c| c.is_null(base)) {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        row_key(cols, base).hash(&mut hasher);
        hasher.finish()
    } else {
        hash_row(cols, base)
    };
    ((h >> (16 * depth.min(3))) % parts as u64) as usize
}

fn create_files(parts: usize) -> Result<Vec<SpillFile>, RelationError> {
    (0..parts).map(|_| SpillFile::create()).collect()
}

/// Hash-partition the visible rows of `r` by `keys` into `files`,
/// appending chunk-wise so no partition is ever materialized whole.
/// `skip_null_keys` drops rows with a null in any key column (inner-join
/// semantics); aggregation keeps them (null group keys form groups).
fn partition_into(
    r: &Relation,
    keys: &[&str],
    parts: usize,
    depth: u32,
    skip_null_keys: bool,
    files: &mut [SpillFile],
) -> Result<(), RelationError> {
    let cols = key_cols(r, keys)?;
    let mut idx: Vec<Vec<usize>> = vec![Vec::new(); parts];
    for pos in 0..r.len() {
        let base = r.base_index(pos);
        if skip_null_keys && cols.iter().any(|c| c.is_null(base)) {
            continue;
        }
        idx[part_bucket(&cols, base, parts, depth)].push(pos);
    }
    for (p, rows) in idx.iter().enumerate() {
        for chunk in rows.chunks(SPILL_CHUNK_ROWS) {
            files[p].append(&r.take(chunk))?;
        }
    }
    Ok(())
}

fn partition_side(
    r: &Relation,
    keys: &[&str],
    parts: usize,
) -> Result<Vec<SpillFile>, RelationError> {
    let mut files = create_files(parts)?;
    partition_into(r, keys, parts, 0, true, &mut files)?;
    for f in &mut files {
        f.finish()?;
    }
    Ok(files)
}

/// Stream a spilled partition back and re-partition it on fresh hash bits
/// (grace recursion for skewed partitions).
fn repartition(
    f: &SpillFile,
    schema: &Schema,
    keys: &[&str],
    parts: usize,
    depth: u32,
) -> Result<Vec<SpillFile>, RelationError> {
    let mut files = create_files(parts)?;
    let mut rd = f.reader(schema)?;
    while let Some(chunk) = rd.next_chunk()? {
        partition_into(&chunk, keys, parts, depth, true, &mut files)?;
    }
    for f in &mut files {
        f.finish()?;
    }
    Ok(files)
}

/// Grace hash equi-join (spill path of [`super::join_on`] /
/// [`super::parallel::join_on_parallel`]). Result rows are partition-major.
pub fn grace_join_on(
    a: &Relation,
    b: &Relation,
    on: &[(&str, &str)],
    pool: &WorkerPool,
) -> Result<Relation, RelationError> {
    if on.is_empty() {
        return Err(RelationError::Expression(
            "equi-join requires at least one key pair".to_string(),
        ));
    }
    grace_join(a, b, on, false, pool)
}

/// Grace natural join (spill path of [`super::natural_join`] /
/// [`super::parallel::natural_join_parallel`]). Falls back to the cross
/// product when no attributes are shared, exactly like the in-memory
/// operator (a cross product has no key to partition on).
pub fn grace_natural_join(
    a: &Relation,
    b: &Relation,
    pool: &WorkerPool,
) -> Result<Relation, RelationError> {
    let common = super::join::common_attributes(a, b);
    if common.is_empty() {
        return super::cross_product(a, b);
    }
    let pairs: Vec<(&str, &str)> = common.iter().map(|&n| (n, n)).collect();
    grace_join(a, b, &pairs, true, pool)
}

fn grace_join(
    a: &Relation,
    b: &Relation,
    on: &[(&str, &str)],
    natural: bool,
    pool: &WorkerPool,
) -> Result<Relation, RelationError> {
    let left_keys: Vec<&str> = on.iter().map(|(l, _)| *l).collect();
    let right_keys: Vec<&str> = on.iter().map(|(_, r)| *r).collect();
    let parts = fanout(rel_bytes_est(b));
    let span = trace::clock();
    let a_files = partition_side(a, &left_keys, parts)?;
    let b_files = partition_side(b, &right_keys, parts)?;
    trace::record(
        "join.partition",
        "join",
        0,
        span,
        (a.len() + b.len()) as u64,
        0,
        parts as u64,
    );
    let mut results = Vec::with_capacity(parts);
    for (af, bf) in a_files.iter().zip(&b_files) {
        results.push(join_partition(
            af,
            a.schema(),
            bf,
            b.schema(),
            on,
            natural,
            1,
            pool,
        )?);
    }
    guard_checkpoint()?;
    Relation::concat(&results)
}

/// Join one spilled partition pair: recurse when the build side still
/// exceeds the budget (up to [`MAX_GRACE_DEPTH`]), otherwise read both
/// sides back and run the pool-parallel in-memory join.
#[allow(clippy::too_many_arguments)]
fn join_partition(
    af: &SpillFile,
    a_schema: &Schema,
    bf: &SpillFile,
    b_schema: &Schema,
    on: &[(&str, &str)],
    natural: bool,
    depth: u32,
    pool: &WorkerPool,
) -> Result<Relation, RelationError> {
    let over_budget = current_guard().is_some_and(|g| !g.fits(bf.bytes()));
    if depth <= MAX_GRACE_DEPTH && over_budget && bf.rows() > 1 {
        let parts = fanout(bf.bytes());
        let left_keys: Vec<&str> = on.iter().map(|(l, _)| *l).collect();
        let right_keys: Vec<&str> = on.iter().map(|(_, r)| *r).collect();
        let a_sub = repartition(af, a_schema, &left_keys, parts, depth)?;
        let b_sub = repartition(bf, b_schema, &right_keys, parts, depth)?;
        let mut results = Vec::with_capacity(parts);
        for (asf, bsf) in a_sub.iter().zip(&b_sub) {
            results.push(join_partition(
                asf,
                a_schema,
                bsf,
                b_schema,
                on,
                natural,
                depth + 1,
                pool,
            )?);
        }
        return Relation::concat(&results);
    }
    let a_rel = af.read_all(a_schema)?;
    let b_rel = bf.read_all(b_schema)?;
    let span = trace::clock();
    let joined = if natural {
        super::parallel::natural_join_parallel(&a_rel, &b_rel, pool)?
    } else {
        super::parallel::join_on_parallel(&a_rel, &b_rel, on, pool)?
    };
    trace::record(
        "join.grace_part",
        "join",
        0,
        span,
        (a_rel.len() + b_rel.len()) as u64,
        joined.len() as u64,
        1,
    );
    Ok(joined)
}

/// External merge sort (spill path of [`super::order_by_parallel`]):
/// budget-sized sorted runs spilled by the workers, then a streaming k-way
/// merge from disk. Row order is identical to the serial
/// [`super::order_by`] (and therefore to [`super::order_by_parallel`]).
pub fn order_by_external(
    r: &Relation,
    attrs: &[&str],
    ascending: &[bool],
    pool: &WorkerPool,
) -> Result<Relation, RelationError> {
    if attrs.is_empty() || r.len() <= 1 {
        return super::setops::order_by(r, attrs, ascending);
    }
    let keys = SortKeys::new(r, attrs, ascending)?;
    let dirs: Vec<bool> = (0..attrs.len())
        .map(|k| ascending.get(k).copied().unwrap_or(true))
        .collect();
    let key_idx: Vec<usize> = attrs
        .iter()
        .map(|n| {
            r.schema()
                .index_of(n)
                .ok_or_else(|| RelationError::UnknownAttribute(n.to_string()))
        })
        .collect::<Result<_, _>>()?;
    // run size: aim a materialized run at half the budget's headroom,
    // bounded below (file overhead) and so the run count stays a sane
    // merge width
    let row_bytes = (r.schema().len().max(1) * 8) as u64;
    let budget = current_guard().map_or(0, |g| g.mem_budget());
    let target_rows = if budget == 0 {
        MIN_RUN_ROWS // forced spill without a budget (tests)
    } else {
        usize::try_from((budget / 2).max(1) / row_bytes).unwrap_or(usize::MAX)
    };
    let run_rows = target_rows.max(MIN_RUN_ROWS).max(r.len() / MAX_FANOUT + 1);
    let ranges: Vec<std::ops::Range<usize>> = (0..r.len())
        .step_by(run_rows)
        .map(|s| s..(s + run_rows).min(r.len()))
        .collect();
    // run phase: workers sort consecutive ranges and spill them
    let runs: Vec<Result<SpillFile, RelationError>> = pool.for_each(&ranges, |lane, range| {
        let span = trace::clock();
        let mut idx: Vec<usize> = (range.start..range.end).collect();
        idx.sort_unstable_by(|&x, &y| keys.cmp(x, y));
        let out = (|| {
            let mut f = SpillFile::create()?;
            for chunk in idx.chunks(SPILL_CHUNK_ROWS) {
                f.append(&r.take(chunk))?;
            }
            f.finish()?;
            Ok(f)
        })();
        trace::record(
            "sort.spill_run",
            "sort",
            lane,
            span,
            idx.len() as u64,
            idx.len() as u64,
            1,
        );
        out
    });
    guard_checkpoint()?;
    let mut files = Vec::with_capacity(runs.len());
    for f in runs {
        files.push(f?);
    }
    let span = trace::clock();
    let merged = merge_spilled(r.schema(), &files, &key_idx, &dirs, r.len())?;
    trace::record(
        "sort.disk_merge",
        "sort",
        0,
        span,
        merged.len() as u64,
        merged.len() as u64,
        files.len() as u64,
    );
    // the serial sort preserves the input's name; match it so the external
    // path is a drop-in replacement
    Ok(match r.name() {
        Some(n) => merged.with_name(n),
        None => merged,
    })
}

/// One run's read-back state during the merge: the current chunk and a
/// position within it. `chunk == None` means the run is exhausted.
struct RunCursor {
    reader: SpillReader,
    chunk: Option<Relation>,
    pos: usize,
}

impl RunCursor {
    fn open(f: &SpillFile, schema: &Schema) -> Result<Self, RelationError> {
        let mut reader = f.reader(schema)?;
        let chunk = reader.next_chunk()?;
        Ok(RunCursor {
            reader,
            chunk,
            pos: 0,
        })
    }

    fn advance(&mut self) -> Result<(), RelationError> {
        self.pos += 1;
        if self.chunk.as_ref().is_some_and(|c| self.pos >= c.len()) {
            self.chunk = self.reader.next_chunk()?;
            self.pos = 0;
        }
        Ok(())
    }
}

/// Key comparison of two cursors' current rows (`Equal` leaves the
/// tie-break — run index — to the caller).
fn cmp_cursors(x: &RunCursor, y: &RunCursor, key_idx: &[usize], dirs: &[bool]) -> Ordering {
    let (cx, cy) = (
        x.chunk.as_ref().expect("live cursor"),
        y.chunk.as_ref().expect("live cursor"),
    );
    for (&k, &asc) in key_idx.iter().zip(dirs) {
        let ord = cx.base_columns()[k].cmp_rows_cross(x.pos, &cy.base_columns()[k], y.pos);
        let ord = if asc { ord } else { ord.reverse() };
        if ord != Ordering::Equal {
            return ord;
        }
    }
    Ordering::Equal
}

/// Streaming k-way merge of sorted runs read back from disk. Ties keep
/// the lowest run index — runs hold consecutive row ranges, so this is
/// exactly the serial sort's global-row-index tie-break.
fn merge_spilled(
    schema: &Schema,
    files: &[SpillFile],
    key_idx: &[usize],
    dirs: &[bool],
    total_rows: usize,
) -> Result<Relation, RelationError> {
    let mut cursors: Vec<RunCursor> = files
        .iter()
        .map(|f| RunCursor::open(f, schema))
        .collect::<Result<_, _>>()?;
    let mut builders: Vec<ColBuilder> = schema
        .attributes()
        .iter()
        .map(|a| ColBuilder::new(a.dtype(), total_rows))
        .collect();
    loop {
        let mut best: Option<usize> = None;
        for (i, c) in cursors.iter().enumerate() {
            if c.chunk.is_none() {
                continue;
            }
            best = match best {
                None => Some(i),
                Some(b) => {
                    if cmp_cursors(c, &cursors[b], key_idx, dirs) == Ordering::Less {
                        Some(i)
                    } else {
                        Some(b)
                    }
                }
            };
        }
        let Some(b) = best else { break };
        {
            let cur = &cursors[b];
            let chunk = cur.chunk.as_ref().expect("live cursor");
            for (bld, col) in builders.iter_mut().zip(chunk.base_columns()) {
                bld.push_from(col, cur.pos)?;
            }
        }
        cursors[b].advance()?;
    }
    let cols = builders
        .into_iter()
        .map(ColBuilder::finish)
        .collect::<Result<Vec<_>, _>>()?;
    Relation::new(schema.clone(), cols)
}

/// Column assembly for the merge output: typed pushes from source chunks,
/// null bitmap built on the side.
struct ColBuilder {
    data: ColumnData,
    nulls: Vec<bool>,
    any_null: bool,
}

impl ColBuilder {
    fn new(dt: DataType, cap: usize) -> Self {
        ColBuilder {
            data: ColumnData::with_capacity(dt, cap),
            nulls: Vec::with_capacity(cap),
            any_null: false,
        }
    }

    fn push_from(&mut self, col: &Column, i: usize) -> Result<(), RelationError> {
        let null = col.is_null(i);
        self.nulls.push(null);
        self.any_null |= null;
        match (&mut self.data, col.data()) {
            (ColumnData::Int(v), ColumnData::Int(s)) => v.push(if null { 0 } else { s[i] }),
            (ColumnData::Float(v), ColumnData::Float(s)) => v.push(if null { 0.0 } else { s[i] }),
            (ColumnData::Str(v), ColumnData::Str(s)) => {
                v.push(if null { String::new() } else { s[i].clone() })
            }
            (ColumnData::Bool(v), ColumnData::Bool(s)) => v.push(!null && s[i]),
            (ColumnData::Date(v), ColumnData::Date(s)) => v.push(if null { 0 } else { s[i] }),
            _ => {
                return Err(RelationError::SpillIo(
                    "spill chunk column type does not match schema".to_string(),
                ))
            }
        }
        Ok(())
    }

    fn finish(self) -> Result<Column, RelationError> {
        if self.any_null {
            Ok(Column::with_nulls(
                self.data,
                Bitmap::from_bools(&self.nulls),
            )?)
        } else {
            Ok(Column::new(self.data))
        }
    }
}

/// Partition-wise spilling aggregate (spill path of
/// [`super::parallel::aggregate_parallel`] for keyed aggregation): rows
/// are hash-partitioned on the group key — a group never spans partitions
/// — so each partition aggregates independently and the results
/// concatenate. Ungrouped aggregation never needs this (its state is one
/// accumulator row) and delegates straight to the in-memory operator.
pub fn aggregate_external(
    r: &Relation,
    group_by: &[&str],
    aggs: &[super::AggSpec],
    pool: &WorkerPool,
) -> Result<Relation, RelationError> {
    if group_by.is_empty() {
        return super::parallel::aggregate_parallel(r, group_by, aggs, pool);
    }
    let parts = fanout(32 * r.len() as u64);
    let mut files = create_files(parts)?;
    partition_into(r, group_by, parts, 0, false, &mut files)?;
    for f in &mut files {
        f.finish()?;
    }
    let mut results = Vec::with_capacity(parts);
    for f in &files {
        let part = f.read_all(r.schema())?;
        results.push(super::parallel::aggregate_parallel(
            &part, group_by, aggs, pool,
        )?);
    }
    guard_checkpoint()?;
    Relation::concat(&results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::{aggregate, join_on, natural_join, order_by, AggFunc, AggSpec};
    use crate::relation::RelationBuilder;
    use crate::spill::live_spill_files;

    fn orders(n: usize) -> Relation {
        RelationBuilder::new()
            .name("orders")
            .column("cust", (0..n).map(|i| (i % 97) as i64).collect::<Vec<_>>())
            .column(
                "amount",
                (0..n).map(|i| (i % 13) as f64).collect::<Vec<_>>(),
            )
            .column("oid", (0..n as i64).collect::<Vec<_>>())
            .build()
            .unwrap()
    }

    fn customers() -> Relation {
        RelationBuilder::new()
            .name("customers")
            .column("cust", (0..97i64).collect::<Vec<_>>())
            .column(
                "tier",
                (0..97).map(|i| format!("t{}", i % 3)).collect::<Vec<_>>(),
            )
            .build()
            .unwrap()
    }

    /// Canonical row dump for order-insensitive comparison.
    fn sorted_rows(r: &Relation) -> Vec<String> {
        let mut rows: Vec<String> = r.rows().map(|row| format!("{row:?}")).collect();
        rows.sort();
        rows
    }

    #[test]
    fn grace_join_matches_in_memory() {
        let baseline = live_spill_files();
        let pool = WorkerPool::new(2);
        let o = orders(5000);
        let c = customers();
        let grace = grace_join_on(&o, &c, &[("cust", "cust")], &pool);
        // schema collision on `cust` fails identically on both paths
        assert!(grace.is_err() == join_on(&o, &c, &[("cust", "cust")]).is_err());
        let c2 = crate::algebra::rename(&c, &[("cust", "cust2")]).unwrap();
        let grace = grace_join_on(&o, &c2, &[("cust", "cust2")], &pool).unwrap();
        let mem = join_on(&o, &c2, &[("cust", "cust2")]).unwrap();
        assert_eq!(grace.len(), mem.len());
        assert_eq!(sorted_rows(&grace), sorted_rows(&mem));
        let nat_grace = grace_natural_join(&o, &c, &pool).unwrap();
        let nat_mem = natural_join(&o, &c).unwrap();
        assert_eq!(sorted_rows(&nat_grace), sorted_rows(&nat_mem));
        assert_eq!(live_spill_files(), baseline, "no orphan spill files");
    }

    #[test]
    fn external_sort_matches_serial_exactly() {
        let baseline = live_spill_files();
        let pool = WorkerPool::new(2);
        let r = orders(7000);
        let ext = order_by_external(&r, &["cust", "amount"], &[true, false], &pool).unwrap();
        let ser = order_by(&r, &["cust", "amount"], &[true, false]).unwrap();
        // identical row order, not just identical multiset
        assert_eq!(ext.materialize(), ser.materialize());
        assert_eq!(live_spill_files(), baseline);
    }

    #[test]
    fn spilling_aggregate_matches_in_memory() {
        let baseline = live_spill_files();
        let pool = WorkerPool::new(2);
        let r = orders(6000);
        let aggs = [
            AggSpec::new(AggFunc::Sum, Some("amount"), "total"),
            AggSpec::new(AggFunc::CountStar, None, "n"),
        ];
        let ext = aggregate_external(&r, &["cust"], &aggs, &pool).unwrap();
        let mem = aggregate(&r, &["cust"], &aggs).unwrap();
        assert_eq!(sorted_rows(&ext), sorted_rows(&mem));
        assert_eq!(live_spill_files(), baseline);
    }
}
