//! Pool-parallel ordering: parallel sort and top-k merge.
//!
//! `ORDER BY` is the one blocking operator every ordered query funnels
//! through, so it gets its own parallel strategy on the shared
//! [`WorkerPool`]:
//!
//! - **Parallel sort** ([`order_by_parallel`]): the visible rows are split
//!   into one contiguous range per worker; each worker sorts its range's
//!   row indices locally (no data movement), and the sorted runs are
//!   k-way-merged into one permutation. The result is `r.take(&perm)` — an
//!   *index-SelVec view* over the shared base columns, so the sort itself
//!   copies nothing and the sink pays the usual single gather (the PR 3
//!   view/sink contract).
//! - **Parallel top-k** ([`top_k_parallel`]): each worker runs a bounded
//!   max-heap of the k best rows over its range; the per-worker candidate
//!   sets are merged at the barrier (at most `k·workers` rows) and cut to
//!   the global k.
//!
//! Both are *exactly* result-equivalent to their serial counterparts in
//! `setops` — including row order — because every comparison falls back to
//! the global row index on ties, which is precisely the serial stable-sort
//! order. With a single-worker pool or small inputs they delegate to the
//! serial operators.

use super::setops::{order_by, top_k};
use crate::error::RelationError;
use crate::par::{partition_ranges, WorkerPool, MIN_PARALLEL_ROWS};
use crate::relation::Relation;
use crate::trace;
use rma_storage::Column;
use std::cmp::Ordering;
use std::ops::Range;

/// The sort-key columns and directions of one ORDER BY, with the
/// index-tie-break total order shared by the serial top-k, the parallel
/// sort, and the parallel top-k.
pub(super) struct SortKeys {
    cols: Vec<Column>,
    ascending: Vec<bool>,
}

impl SortKeys {
    /// Gather (via the compacting accessors — sorting is a key-column sink,
    /// same as the serial operator) and validate the key columns.
    pub(super) fn new(
        r: &Relation,
        attrs: &[&str],
        ascending: &[bool],
    ) -> Result<Self, RelationError> {
        if !ascending.is_empty() && ascending.len() != attrs.len() {
            return Err(RelationError::ArityMismatch {
                expected: attrs.len(),
                found: ascending.len(),
            });
        }
        let cols: Vec<Column> = r.columns_of(attrs)?.into_iter().cloned().collect();
        let ascending = (0..attrs.len())
            .map(|k| ascending.get(k).copied().unwrap_or(true))
            .collect();
        Ok(SortKeys { cols, ascending })
    }

    /// Strict total order over visible row indices: column comparison in
    /// key order, direction applied per key, ties broken by row index —
    /// i.e. exactly the serial stable sort's output order.
    #[inline]
    pub(super) fn cmp(&self, x: usize, y: usize) -> Ordering {
        for (c, &asc) in self.cols.iter().zip(&self.ascending) {
            let ord = c.cmp_rows(x, y);
            let ord = if asc { ord } else { ord.reverse() };
            if ord != Ordering::Equal {
                return ord;
            }
        }
        x.cmp(&y)
    }
}

/// Parallel `ORDER BY`: per-worker local sorts of contiguous index ranges,
/// then a k-way merge of the sorted runs. The result is a view (index
/// selection vector over the shared base columns) in the same row order the
/// serial [`order_by`] produces. Delegates to the serial operator for
/// single-worker pools and small inputs.
pub fn order_by_parallel(
    r: &Relation,
    attrs: &[&str],
    ascending: &[bool],
    pool: &WorkerPool,
) -> Result<Relation, RelationError> {
    if pool.threads() <= 1 || r.len() < MIN_PARALLEL_ROWS || attrs.is_empty() {
        return order_by(r, attrs, ascending);
    }
    let keys = SortKeys::new(r, attrs, ascending)?;
    let ranges = partition_ranges(r.len(), pool.threads());
    if ranges.len() <= 1 {
        return order_by(r, attrs, ascending);
    }
    let runs: Vec<Vec<usize>> = pool.for_each(&ranges, |lane, range| {
        let span = trace::clock();
        let mut idx: Vec<usize> = (range.start..range.end).collect();
        // unstable sort under a strict total order (index tie-break) equals
        // the serial stable sort's output
        idx.sort_unstable_by(|&x, &y| keys.cmp(x, y));
        trace::record(
            "sort.run",
            "sort",
            lane,
            span,
            idx.len() as u64,
            idx.len() as u64,
            1,
        );
        idx
    });
    // a tripped guard truncates the run set; surface it as a typed error
    crate::par::guard_checkpoint()?;
    let span = trace::clock();
    let perm = merge_runs(&runs, &keys);
    trace::record(
        "sort.merge",
        "sort",
        0,
        span,
        perm.len() as u64,
        perm.len() as u64,
        runs.len() as u64,
    );
    Ok(r.take(&perm))
}

/// Parallel top-k (the Limit-into-Sort rewrite's execution): per-worker
/// bounded heaps over contiguous ranges, candidate sets merged at the
/// barrier and cut to `n`. Result-identical to the serial [`top_k`]
/// (which is itself identical to `limit(order_by(..), n, 0)`).
pub fn top_k_parallel(
    r: &Relation,
    attrs: &[&str],
    ascending: &[bool],
    n: usize,
    pool: &WorkerPool,
) -> Result<Relation, RelationError> {
    // With k within a factor of the input size the bounded heaps approach a
    // full sort per worker while still paying the merge — serial wins.
    if pool.threads() <= 1 || r.len() < MIN_PARALLEL_ROWS || n == 0 || n * 4 >= r.len() {
        return top_k(r, attrs, ascending, n);
    }
    let keys = SortKeys::new(r, attrs, ascending)?;
    let ranges = partition_ranges(r.len(), pool.threads());
    if ranges.len() <= 1 {
        return top_k(r, attrs, ascending, n);
    }
    let locals: Vec<Vec<usize>> = pool.for_each(&ranges, |lane, range| {
        let span = trace::clock();
        let heap = bounded_top_k(range.clone(), n, &keys);
        trace::record(
            "topk.heap",
            "sort",
            lane,
            span,
            (range.end - range.start) as u64,
            heap.len() as u64,
            1,
        );
        heap
    });
    crate::par::guard_checkpoint()?;
    let span = trace::clock();
    let mut cand: Vec<usize> = locals.concat();
    let merged_in = cand.len() as u64;
    cand.sort_unstable_by(|&x, &y| keys.cmp(x, y));
    cand.truncate(n);
    trace::record(
        "topk.merge",
        "sort",
        0,
        span,
        merged_in,
        cand.len() as u64,
        locals.len() as u64,
    );
    Ok(r.take(&cand))
}

/// K-way merge of sorted index runs into one permutation, via a binary
/// min-heap of run heads. Runs are few (one per worker), so the heap is
/// tiny; the comparator's index tie-break keeps the merge deterministic.
fn merge_runs(runs: &[Vec<usize>], keys: &SortKeys) -> Vec<usize> {
    let total: usize = runs.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    // heap entries: (row, run); `pos[run]` is the next unconsumed position
    let mut heap: Vec<(usize, usize)> = Vec::with_capacity(runs.len());
    let mut pos: Vec<usize> = vec![1; runs.len()];
    for (run, idxs) in runs.iter().enumerate() {
        if let Some(&row) = idxs.first() {
            heap_push(&mut heap, (row, run), keys);
        }
    }
    while let Some((row, run)) = heap_pop(&mut heap, keys) {
        out.push(row);
        if let Some(&next) = runs[run].get(pos[run]) {
            pos[run] += 1;
            heap_push(&mut heap, (next, run), keys);
        }
    }
    out
}

/// Min-heap ordering for merge entries: by row under `keys` (strict, so the
/// run index never matters).
#[inline]
fn entry_lt(a: (usize, usize), b: (usize, usize), keys: &SortKeys) -> bool {
    keys.cmp(a.0, b.0) == Ordering::Less
}

fn heap_push(heap: &mut Vec<(usize, usize)>, entry: (usize, usize), keys: &SortKeys) {
    heap.push(entry);
    let mut i = heap.len() - 1;
    while i > 0 {
        let parent = (i - 1) / 2;
        if entry_lt(heap[i], heap[parent], keys) {
            heap.swap(i, parent);
            i = parent;
        } else {
            break;
        }
    }
}

fn heap_pop(heap: &mut Vec<(usize, usize)>, keys: &SortKeys) -> Option<(usize, usize)> {
    if heap.is_empty() {
        return None;
    }
    let last = heap.len() - 1;
    heap.swap(0, last);
    let top = heap.pop();
    let len = heap.len();
    let mut i = 0;
    loop {
        let (l, r) = (2 * i + 1, 2 * i + 2);
        let mut smallest = i;
        if l < len && entry_lt(heap[l], heap[smallest], keys) {
            smallest = l;
        }
        if r < len && entry_lt(heap[r], heap[smallest], keys) {
            smallest = r;
        }
        if smallest == i {
            break;
        }
        heap.swap(i, smallest);
        i = smallest;
    }
    top
}

/// Bounded max-heap of the k best rows in `range`: `heap[0]` is the worst
/// of the current k best; every other row either displaces it or is
/// dropped. O(range · log k). The returned candidates are unsorted —
/// callers sort (serial top-k) or merge-then-sort (parallel barrier) once.
/// Shared by the serial [`top_k`] and each parallel worker, so the two
/// paths cannot drift apart.
pub(super) fn bounded_top_k(range: Range<usize>, k: usize, keys: &SortKeys) -> Vec<usize> {
    let mut heap: Vec<usize> = Vec::with_capacity(k.min(range.len()));
    for i in range {
        if heap.len() < k {
            heap.push(i);
            let mut j = heap.len() - 1;
            while j > 0 {
                let parent = (j - 1) / 2;
                if keys.cmp(heap[j], heap[parent]) == Ordering::Greater {
                    heap.swap(j, parent);
                    j = parent;
                } else {
                    break;
                }
            }
        } else if keys.cmp(i, heap[0]) == Ordering::Less {
            heap[0] = i;
            let len = heap.len();
            let mut j = 0;
            loop {
                let (l, r) = (2 * j + 1, 2 * j + 2);
                let mut largest = j;
                if l < len && keys.cmp(heap[l], heap[largest]) == Ordering::Greater {
                    largest = l;
                }
                if r < len && keys.cmp(heap[r], heap[largest]) == Ordering::Greater {
                    largest = r;
                }
                if largest == j {
                    break;
                }
                heap.swap(j, largest);
                j = largest;
            }
        }
    }
    heap
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::limit;
    use crate::expr::Expr;
    use crate::relation::RelationBuilder;
    use rma_storage::{Bitmap, ColumnData, DataType};

    /// Rows large enough to clear `MIN_PARALLEL_ROWS`, with heavy key
    /// duplication (tie-break coverage), a float secondary key, and a
    /// nullable column.
    fn sample(n: usize) -> Relation {
        let s: Vec<i64> = (0..n).map(|i| ((i * 7919) % 97) as i64).collect();
        let m: Vec<f64> = (0..n).map(|i| ((i * 31) % 13) as f64 - 6.0).collect();
        let id: Vec<i64> = (0..n as i64).collect();
        let nullable: Vec<i64> = (0..n).map(|i| (i % 11) as i64).collect();
        let mask: Vec<bool> = (0..n).map(|i| i % 3 != 0).collect();
        let nullable = Column::with_nulls(ColumnData::Int(nullable), Bitmap::from_bools(&mask))
            .expect("bitmap length matches");
        let base = RelationBuilder::new()
            .name("sortable")
            .column("s", s)
            .column("m", m)
            .column("id", id)
            .build()
            .unwrap();
        // append the prebuilt nullable column
        let mut schema: Vec<crate::schema::Attribute> = base.schema().attributes().to_vec();
        schema.push(crate::schema::Attribute::new("v", DataType::Int));
        let mut cols = base.columns().to_vec();
        cols.push(nullable);
        Relation::new(crate::schema::Schema::new(schema).unwrap(), cols)
            .unwrap()
            .with_name("sortable")
    }

    #[test]
    fn parallel_sort_matches_serial() {
        let r = sample(3001);
        for threads in [2, 4, 8] {
            let pool = WorkerPool::new(threads);
            for (attrs, dirs) in [
                (vec!["s"], vec![true]),
                (vec!["s"], vec![false]),
                (vec!["s", "m"], vec![true, false]),
                (vec!["v", "s"], vec![true, true]), // null-heavy leading key
                (vec!["m", "s", "id"], vec![false, true, false]),
            ] {
                let par = order_by_parallel(&r, &attrs, &dirs, &pool).unwrap();
                let ser = order_by(&r, &attrs, &dirs).unwrap();
                assert_eq!(par, ser, "threads={threads} attrs={attrs:?}");
                assert!(par.is_view(), "parallel sort must produce a view");
            }
        }
    }

    #[test]
    fn parallel_sort_of_presorted_input() {
        let n = 2048usize;
        let sorted: Vec<i64> = (0..n as i64).collect();
        let reversed: Vec<i64> = (0..n as i64).rev().collect();
        let r = RelationBuilder::new()
            .column("a", sorted)
            .column("b", reversed)
            .build()
            .unwrap();
        let pool = WorkerPool::new(4);
        for attrs in [["a"], ["b"]] {
            let par = order_by_parallel(&r, &attrs, &[true], &pool).unwrap();
            let ser = order_by(&r, &attrs, &[true]).unwrap();
            assert_eq!(par, ser, "presorted by {attrs:?}");
        }
    }

    #[test]
    fn parallel_sort_all_ties_is_stable_order() {
        let n = 2000usize;
        let r = RelationBuilder::new()
            .column("c", vec![5i64; n])
            .column("id", (0..n as i64).collect::<Vec<_>>())
            .build()
            .unwrap();
        let pool = WorkerPool::new(4);
        let par = order_by_parallel(&r, &["c"], &[true], &pool).unwrap();
        // all-equal keys: output must be the original row order
        let ids = match par.column("id").unwrap().data() {
            ColumnData::Int(v) => v.clone(),
            _ => unreachable!(),
        };
        assert_eq!(ids, (0..n as i64).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_sort_small_input_and_bad_args_delegate() {
        let r = sample(64); // below MIN_PARALLEL_ROWS
        let pool = WorkerPool::new(4);
        assert_eq!(
            order_by_parallel(&r, &["s"], &[true], &pool).unwrap(),
            order_by(&r, &["s"], &[true]).unwrap()
        );
        assert!(order_by_parallel(&r, &["s"], &[true, false], &pool).is_err());
        assert!(top_k_parallel(&r, &["s"], &[true, false], 3, &pool).is_err());
    }

    #[test]
    fn parallel_sort_over_a_view() {
        let r = sample(4000);
        let filtered = crate::algebra::select(&r, &Expr::col("s").lt(Expr::lit(50i64))).unwrap();
        assert!(filtered.is_view());
        let pool = WorkerPool::new(4);
        let par = order_by_parallel(&filtered, &["m", "s"], &[true, true], &pool).unwrap();
        let ser = order_by(&filtered, &["m", "s"], &[true, true]).unwrap();
        assert_eq!(par, ser);
    }

    #[test]
    fn parallel_top_k_matches_serial() {
        let r = sample(2777);
        for threads in [2, 4] {
            let pool = WorkerPool::new(threads);
            for n in [1usize, 7, 100, 650] {
                for dirs in [vec![true, false], vec![false, true]] {
                    let par = top_k_parallel(&r, &["s", "m"], &dirs, n, &pool).unwrap();
                    let ser = top_k(&r, &["s", "m"], &dirs, n).unwrap();
                    assert_eq!(par, ser, "threads={threads} n={n} dirs={dirs:?}");
                    // and both equal the full-sort definition
                    let full = limit(&order_by(&r, &["s", "m"], &dirs).unwrap(), n, 0);
                    assert_eq!(par, full, "n={n}");
                }
            }
        }
    }

    #[test]
    fn parallel_top_k_edge_sizes() {
        let r = sample(1500);
        let pool = WorkerPool::new(4);
        // n = 0, n >= len, and n just under the serial-delegation cutoff
        for n in [0usize, 1500, 2000, 370] {
            assert_eq!(
                top_k_parallel(&r, &["s"], &[true], n, &pool).unwrap(),
                top_k(&r, &["s"], &[true], n).unwrap(),
                "n={n}"
            );
        }
    }

    #[test]
    fn parallel_top_k_null_keys() {
        let r = sample(2048);
        let pool = WorkerPool::new(4);
        let par = top_k_parallel(&r, &["v"], &[true], 50, &pool).unwrap();
        let ser = top_k(&r, &["v"], &[true], 50).unwrap();
        assert_eq!(par, ser);
    }
}
