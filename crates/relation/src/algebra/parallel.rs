//! Partition-parallel relational operators: σ, ϑ, and hash joins over
//! row-range morsels, executed on a shared [`WorkerPool`] (`crate::par`).
//!
//! Every operator here is *exactly* result-equivalent to its serial
//! counterpart, including row order: morsels are contiguous row ranges and
//! their results are reassembled in range order, so the only difference is
//! which thread touched which rows. (For `SUM`/`AVG` the floating-point
//! accumulation order does change — partial sums per morsel are merged at
//! the barrier — which is the usual contract of parallel aggregation.)
//!
//! With a single-worker pool each function delegates to the serial
//! operator, which is also the fallback rule the plan executor applies to
//! operators without a parallel implementation. Operators never spawn
//! threads themselves: every job runs on the pool's parked workers.

use super::aggregate::{accumulate, finalize, resolve_agg_cols, validate_aggs, Partial};
use super::join::{
    assemble_join, build_side_range, common_attributes, join_key_sides, probe_range,
};
use super::{AggSpec, KeyPart};
use crate::error::RelationError;
use crate::expr::Expr;
use crate::par::{morsel_count, partition_ranges, WorkerPool, MIN_PARALLEL_ROWS};
use crate::relation::Relation;
use crate::trace;
use std::collections::HashMap;

/// Parallel σ: evaluate the predicate over row-range morsels on worker
/// threads, then combine the per-morsel keep masks into one lazy selection
/// vector. Each morsel is a range *view* of the (projected) input — no
/// column is sliced up front, only the rows an expression actually reads
/// are gathered, and the result itself is a view: the payload columns are
/// never copied here at all.
pub fn select_parallel(
    r: &Relation,
    predicate: &Expr,
    pool: &WorkerPool,
) -> Result<Relation, RelationError> {
    let threads = pool.threads();
    let mut refs: Vec<String> = Vec::new();
    predicate.referenced_columns(&mut refs);
    refs.sort();
    refs.dedup();
    if threads <= 1 || r.len() < MIN_PARALLEL_ROWS || refs.is_empty() {
        return super::select(r, predicate);
    }
    let ref_names: Vec<&str> = refs.iter().map(String::as_str).collect();
    // a zero-copy view of just the referenced attributes
    let pred_view = super::project(r, &ref_names)?;
    let ranges = partition_ranges(r.len(), morsel_count(threads, r.len()));
    let keeps = pool.for_each(&ranges, |_, range| {
        predicate.eval_filter(&pred_view.slice(range.clone()))
    });
    // governed queries stop claiming morsels when their guard trips; the
    // checkpoint turns that truncation into the typed error
    crate::par::guard_checkpoint()?;
    let mut keep = Vec::with_capacity(r.len());
    for k in keeps {
        keep.extend(k?);
    }
    Ok(r.filter(&keep))
}

/// Parallel ϑ: each worker accumulates per-group partial states over its
/// morsels; partials are merged in morsel order at the barrier, which
/// reproduces the serial first-seen group order, then finalized once.
pub fn aggregate_parallel(
    r: &Relation,
    group_by: &[&str],
    aggs: &[AggSpec],
    pool: &WorkerPool,
) -> Result<Relation, RelationError> {
    let threads = pool.threads();
    if threads <= 1 || r.len() < MIN_PARALLEL_ROWS {
        return super::aggregate(r, group_by, aggs);
    }
    validate_aggs(r, aggs)?;
    let group_cols = r.columns_of(group_by)?;
    let agg_cols = resolve_agg_cols(r, aggs)?;
    let ranges = partition_ranges(r.len(), morsel_count(threads, r.len()));
    let partials = pool.for_each(&ranges, |_, range| {
        accumulate(&group_cols, &agg_cols, aggs, range.clone(), false)
    });
    crate::par::guard_checkpoint()?;

    // merge at the barrier, in morsel order
    let mut merged = Partial::default();
    let mut group_ids: HashMap<Vec<KeyPart>, usize> = HashMap::new();
    if group_by.is_empty() {
        // global aggregation: one group even over empty input
        group_ids.insert(Vec::new(), 0);
        merged.keys.push(Vec::new());
        merged.rep.push(0);
        merged.accs.push(vec![Default::default(); aggs.len()]);
    }
    for partial in partials {
        for (k, key) in partial.keys.into_iter().enumerate() {
            let gid = match group_ids.get(&key) {
                Some(&g) => g,
                None => {
                    let g = group_ids.len();
                    merged.keys.push(key.clone());
                    merged.rep.push(partial.rep[k]);
                    merged.accs.push(vec![Default::default(); aggs.len()]);
                    group_ids.insert(key, g);
                    g
                }
            };
            for (j, acc) in partial.accs[k].iter().enumerate() {
                merged.accs[gid][j].merge(acc);
            }
        }
    }
    finalize(r, group_by, aggs, &merged.rep, &merged.accs)
}

/// Parallel hash equi-join: partitioned build (per-morsel hash tables over
/// the right side, merged in morsel order so match lists stay ascending)
/// followed by a partitioned probe of the left side.
pub fn join_on_parallel(
    a: &Relation,
    b: &Relation,
    on: &[(&str, &str)],
    pool: &WorkerPool,
) -> Result<Relation, RelationError> {
    if on.is_empty() {
        return Err(RelationError::Expression(
            "equi-join requires at least one key pair".to_string(),
        ));
    }
    if pool.threads() <= 1 || (a.len() < MIN_PARALLEL_ROWS && b.len() < MIN_PARALLEL_ROWS) {
        return super::join_on(a, b, on);
    }
    let (left_idx, right_idx) = parallel_join_indices(a, b, on, pool)?;
    assemble_join(a, b, left_idx, right_idx, &[])
}

/// Parallel natural join: the equi-join machinery over all common attribute
/// names, dropping the duplicated key columns.
pub fn natural_join_parallel(
    a: &Relation,
    b: &Relation,
    pool: &WorkerPool,
) -> Result<Relation, RelationError> {
    if pool.threads() <= 1 || (a.len() < MIN_PARALLEL_ROWS && b.len() < MIN_PARALLEL_ROWS) {
        return super::natural_join(a, b);
    }
    let common = common_attributes(a, b);
    if common.is_empty() {
        return super::cross_product(a, b);
    }
    let pairs: Vec<(&str, &str)> = common.iter().map(|&n| (n, n)).collect();
    let (left_idx, right_idx) = parallel_join_indices(a, b, &pairs, pool)?;
    assemble_join(a, b, left_idx, right_idx, &common)
}

fn parallel_join_indices(
    a: &Relation,
    b: &Relation,
    on: &[(&str, &str)],
    pool: &WorkerPool,
) -> Result<(Vec<usize>, Vec<usize>), RelationError> {
    let threads = pool.threads();
    let (probe, build) = join_key_sides(a, b, on)?;

    // build: per-morsel tables over the right side, merged in morsel order.
    // Positions within a morsel are ascending and morsels are disjoint
    // ascending ranges, so each bucket's merged match list is exactly the
    // serial one.
    let build_ranges = partition_ranges(b.len(), morsel_count(threads, b.len()));
    let n_build = build_ranges.len() as u64;
    let build_span = trace::clock();
    let tables = pool.for_each(&build_ranges, |lane, range| {
        let span = trace::clock();
        let t = build_side_range(&build, range.clone());
        trace::record(
            "join.build",
            "join",
            lane,
            span,
            (range.end - range.start) as u64,
            t.len() as u64,
            1,
        );
        t
    });
    crate::par::guard_checkpoint()?;
    let mut table: HashMap<u64, Vec<usize>> = HashMap::with_capacity(b.len());
    for part in tables {
        for (key, mut rows) in part {
            table.entry(key).or_default().append(&mut rows);
        }
    }
    trace::record(
        "join.build_merge",
        "join",
        0,
        build_span,
        b.len() as u64,
        table.len() as u64,
        n_build,
    );

    // probe: morsels of the left side, results concatenated in morsel order
    let probe_ranges = partition_ranges(a.len(), morsel_count(threads, a.len()));
    let pairs = pool.for_each(&probe_ranges, |lane, range| {
        let span = trace::clock();
        let out = probe_range(&table, &build, &probe, range.clone());
        trace::record(
            "join.probe",
            "join",
            lane,
            span,
            (range.end - range.start) as u64,
            out.0.len() as u64,
            1,
        );
        out
    });
    crate::par::guard_checkpoint()?;
    let mut left_idx = Vec::new();
    let mut right_idx = Vec::new();
    for (mut l, mut r) in pairs {
        left_idx.append(&mut l);
        right_idx.append(&mut r);
    }
    Ok((left_idx, right_idx))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::{aggregate, join_on, natural_join, select, AggFunc};
    use crate::relation::RelationBuilder;

    /// A relation large enough that every morsel is non-trivial, with
    /// duplicate join/group keys.
    fn sample(n: usize) -> Relation {
        let key: Vec<i64> = (0..n as i64).map(|i| i % 17).collect();
        let x: Vec<f64> = (0..n).map(|i| ((i * 7) % 23) as f64).collect();
        let tag: Vec<String> = (0..n).map(|i| format!("t{}", i % 5)).collect();
        RelationBuilder::new()
            .name("sample")
            .column("k", key)
            .column("x", x)
            .column("tag", tag)
            .build()
            .unwrap()
    }

    #[test]
    fn parallel_select_matches_serial() {
        let r = sample(2497);
        let p = Expr::col("x")
            .gt(Expr::lit(5.0))
            .and(Expr::col("k").lt(Expr::lit(11i64)));
        for threads in [2, 4, 8] {
            let pool = WorkerPool::new(threads);
            let par = select_parallel(&r, &p, &pool).unwrap();
            let ser = select(&r, &p).unwrap();
            assert_eq!(par, ser, "threads={threads}");
            assert_eq!(par.name(), Some("sample"));
        }
    }

    #[test]
    fn parallel_select_literal_predicate_falls_back() {
        let r = sample(50);
        let p = Expr::lit(1i64).eq(Expr::lit(1i64));
        let pool = WorkerPool::new(4);
        assert_eq!(
            select_parallel(&r, &p, &pool).unwrap(),
            select(&r, &p).unwrap()
        );
    }

    #[test]
    fn parallel_aggregate_matches_serial() {
        let r = sample(2113);
        let aggs = [
            AggSpec::count_star("n"),
            AggSpec::sum("x", "s"),
            AggSpec::avg("x", "a"),
            AggSpec::new(AggFunc::Min, Some("x"), "lo"),
            AggSpec::new(AggFunc::Max, Some("tag"), "hi"),
        ];
        for threads in [2, 4] {
            let pool = WorkerPool::new(threads);
            let par = aggregate_parallel(&r, &["k"], &aggs, &pool).unwrap();
            let ser = aggregate(&r, &["k"], &aggs).unwrap();
            // x is integer-valued, so partial-sum merge order is exact
            assert_eq!(par, ser, "threads={threads}");
        }
    }

    #[test]
    fn parallel_global_aggregate_and_empty_input() {
        let r = sample(2400);
        let aggs = [AggSpec::count_star("n"), AggSpec::sum("x", "s")];
        let pool = WorkerPool::new(4);
        assert_eq!(
            aggregate_parallel(&r, &[], &aggs, &pool).unwrap(),
            aggregate(&r, &[], &aggs).unwrap()
        );
        let empty = r.take(&[]);
        assert_eq!(
            aggregate_parallel(&empty, &[], &aggs, &pool).unwrap(),
            aggregate(&empty, &[], &aggs).unwrap()
        );
        assert_eq!(
            aggregate_parallel(&empty, &["k"], &aggs, &pool).unwrap(),
            aggregate(&empty, &["k"], &aggs).unwrap()
        );
    }

    #[test]
    fn parallel_join_matches_serial() {
        let a = sample(611);
        let b = {
            let key: Vec<i64> = (0..300i64).map(|i| i % 19).collect();
            let y: Vec<f64> = (0..300).map(|i| i as f64).collect();
            RelationBuilder::new()
                .column("j", key)
                .column("y", y)
                .build()
                .unwrap()
        };
        for threads in [2, 4] {
            let pool = WorkerPool::new(threads);
            let par = join_on_parallel(&a, &b, &[("k", "j")], &pool).unwrap();
            let ser = join_on(&a, &b, &[("k", "j")]).unwrap();
            assert_eq!(par, ser, "threads={threads}");
        }
    }

    #[test]
    fn parallel_natural_join_matches_serial() {
        let a = sample(2201);
        let b = {
            let k: Vec<i64> = (0..17).collect();
            let w: Vec<f64> = (0..17).map(|i| (i * i) as f64).collect();
            RelationBuilder::new()
                .column("k", k)
                .column("w", w)
                .build()
                .unwrap()
        };
        let pool = WorkerPool::new(4);
        let par = natural_join_parallel(&a, &b, &pool).unwrap();
        let ser = natural_join(&a, &b).unwrap();
        assert_eq!(par, ser);
        // no common attributes → cross product, same as serial
        let c = RelationBuilder::new()
            .column("z", vec![1i64, 2])
            .build()
            .unwrap();
        assert_eq!(
            natural_join_parallel(&b, &c, &pool).unwrap(),
            natural_join(&b, &c).unwrap()
        );
    }

    #[test]
    fn parallel_join_empty_on_rejected() {
        let r = sample(10);
        assert!(join_on_parallel(&r, &r, &[], &WorkerPool::new(4)).is_err());
    }
}
