//! The relational algebra operators: σ, π, ρ, ⋈, ×, ϑ, ∪, distinct, sort.
//!
//! All operators are column-at-a-time: they construct output columns in bulk
//! from input columns (selection vectors, gather indices, hash tables over
//! key columns), never materialising boxed tuples on hot paths.

mod aggregate;
mod external;
mod join;
mod parallel;
mod project;
mod select;
mod setops;
mod sort;

pub use aggregate::{aggregate, AggFunc, AggSpec};
pub use external::{
    aggregate_external, grace_join_on, grace_natural_join, order_by_external, MAX_GRACE_DEPTH,
};
pub use join::{cross_product, join_on, natural_join, theta_join};
pub use parallel::{aggregate_parallel, join_on_parallel, natural_join_parallel, select_parallel};
pub use project::{project, project_exprs, rename};
pub use select::select;
pub use setops::{distinct, limit, order_by, top_k, union_all};
pub use sort::{order_by_parallel, top_k_parallel};

use rma_storage::{Column, ColumnData};
use std::hash::{Hash, Hasher};

/// A hashable, equatable key extracted from one row of a set of columns.
/// Used by grouping and duplicate elimination (joins hash the typed column
/// data directly — see [`hash_row`] / [`rows_eq`] — and never box keys).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) enum KeyPart {
    Int(i64),
    /// Float keyed by its bit pattern (exact equality; NaNs all equal).
    Float(u64),
    Str(String),
    Bool(bool),
    Date(i32),
    Null,
}

/// Normalise a float for keying: NaN payloads collapse, `-0.0 == 0.0`.
#[inline]
pub(crate) fn float_key_bits(x: f64) -> u64 {
    if x.is_nan() {
        f64::NAN.to_bits()
    } else if x == 0.0 {
        0u64
    } else {
        x.to_bits()
    }
}

/// Extract the grouping/join key of row `i` over `cols`.
pub(crate) fn row_key(cols: &[&Column], i: usize) -> Vec<KeyPart> {
    cols.iter()
        .map(|c| {
            if c.is_null(i) {
                return KeyPart::Null;
            }
            match c.data() {
                ColumnData::Int(v) => KeyPart::Int(v[i]),
                ColumnData::Float(v) => KeyPart::Float(float_key_bits(v[i])),
                ColumnData::Str(v) => KeyPart::Str(v[i].clone()),
                ColumnData::Bool(v) => KeyPart::Bool(v[i]),
                ColumnData::Date(v) => KeyPart::Date(v[i]),
            }
        })
        .collect()
}

/// Composite hash of row `i` over typed column slices — no per-row key
/// allocation, no `Value` boxing. Must only be called on null-free rows
/// (callers skip null keys first). Hash-equal rows are confirmed with
/// [`rows_eq`], so cross-type hash discipline only affects bucket quality,
/// not correctness; a type discriminant is mixed in to keep e.g. `Int(0)`
/// and `Bool(false)` apart.
#[inline]
pub(crate) fn hash_row(cols: &[&Column], i: usize) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    for c in cols {
        match c.data() {
            ColumnData::Int(v) => {
                0u8.hash(&mut h);
                v[i].hash(&mut h);
            }
            ColumnData::Float(v) => {
                1u8.hash(&mut h);
                float_key_bits(v[i]).hash(&mut h);
            }
            ColumnData::Str(v) => {
                2u8.hash(&mut h);
                v[i].hash(&mut h);
            }
            ColumnData::Bool(v) => {
                3u8.hash(&mut h);
                v[i].hash(&mut h);
            }
            ColumnData::Date(v) => {
                4u8.hash(&mut h);
                v[i].hash(&mut h);
            }
        }
    }
    h.finish()
}

/// Do row `i` of `a` and row `j` of `b` hold equal (column-wise) key
/// values? Equality matches [`KeyPart`] semantics exactly: same-type
/// comparison only (an `Int 5` never equals a `Float 5.0` key), floats by
/// normalised bits. Rows must be null-free (callers skip null keys).
#[inline]
pub(crate) fn rows_eq(a: &[&Column], i: usize, b: &[&Column], j: usize) -> bool {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .all(|(ca, cb)| match (ca.data(), cb.data()) {
            (ColumnData::Int(x), ColumnData::Int(y)) => x[i] == y[j],
            (ColumnData::Float(x), ColumnData::Float(y)) => {
                float_key_bits(x[i]) == float_key_bits(y[j])
            }
            (ColumnData::Str(x), ColumnData::Str(y)) => x[i] == y[j],
            (ColumnData::Bool(x), ColumnData::Bool(y)) => x[i] == y[j],
            (ColumnData::Date(x), ColumnData::Date(y)) => x[i] == y[j],
            _ => false,
        })
}

/// Hash-based key check: do the columns contain no duplicate row? O(n)
/// instead of the O(n log n) sort-based [`rma_storage::is_key`] — used by
/// the RMA layer's sort-avoidance optimisation, where validating the order
/// schema must not itself cost a sort.
pub fn is_key_hash(cols: &[&rma_storage::Column]) -> bool {
    let n = cols.first().map_or(0, |c| c.len());
    if cols.is_empty() {
        return n <= 1;
    }
    // single-column fast paths avoid per-row key-vector allocation
    if cols.len() == 1 && !cols[0].has_nulls() {
        match cols[0].data() {
            ColumnData::Int(v) => {
                let mut seen = std::collections::HashSet::with_capacity(v.len());
                return v.iter().all(|x| seen.insert(*x));
            }
            ColumnData::Str(v) => {
                let mut seen = std::collections::HashSet::with_capacity(v.len());
                return v.iter().all(|x| seen.insert(x.as_str()));
            }
            _ => {}
        }
    }
    let mut seen = std::collections::HashSet::with_capacity(n);
    (0..n).all(|i| seen.insert(row_key(cols, i)))
}
