//! The relational algebra operators: σ, π, ρ, ⋈, ×, ϑ, ∪, distinct, sort.
//!
//! All operators are column-at-a-time: they construct output columns in bulk
//! from input columns (selection vectors, gather indices, hash tables over
//! key columns), never materialising boxed tuples on hot paths.

mod aggregate;
mod external;
mod join;
mod parallel;
mod project;
mod select;
mod setops;
mod sort;

pub use aggregate::{aggregate, AggFunc, AggSpec};
pub use external::{
    aggregate_external, grace_join_on, grace_natural_join, order_by_external, MAX_GRACE_DEPTH,
};
pub use join::{cross_product, join_on, natural_join, theta_join};
pub use parallel::{aggregate_parallel, join_on_parallel, natural_join_parallel, select_parallel};
pub use project::{project, project_exprs, rename};
pub use select::select;
pub use setops::{distinct, limit, order_by, top_k, union_all};
pub use sort::{order_by_parallel, top_k_parallel};

use rma_storage::{Column, ColumnAccessor};
use std::hash::{Hash, Hasher};

/// A hashable, equatable key extracted from one row of a set of columns.
/// Used by grouping and duplicate elimination (joins hash the typed column
/// data directly — see [`hash_row`] / [`rows_eq`] — and never box keys).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) enum KeyPart {
    Int(i64),
    /// Float keyed by its bit pattern (exact equality; NaNs all equal).
    Float(u64),
    Str(String),
    Bool(bool),
    Date(i32),
    Null,
}

/// Normalise a float for keying: NaN payloads collapse, `-0.0 == 0.0`.
#[inline]
pub(crate) fn float_key_bits(x: f64) -> u64 {
    if x.is_nan() {
        f64::NAN.to_bits()
    } else if x == 0.0 {
        0u64
    } else {
        x.to_bits()
    }
}

/// Extract the grouping/join key of row `i` over `cols`. Reads through
/// the encoding-aware accessors — a dictionary or RLE key column is keyed
/// without decoding it.
pub(crate) fn row_key(cols: &[&Column], i: usize) -> Vec<KeyPart> {
    cols.iter()
        .map(|c| {
            if c.is_null(i) {
                return KeyPart::Null;
            }
            match c.accessor() {
                ColumnAccessor::Int(v) => KeyPart::Int(v.get(i)),
                ColumnAccessor::Float(v) => KeyPart::Float(float_key_bits(v.get(i))),
                ColumnAccessor::Str(v) => KeyPart::Str(v.get(i).to_owned()),
                ColumnAccessor::Bool(v) => KeyPart::Bool(v[i]),
                ColumnAccessor::Date(v) => KeyPart::Date(v[i]),
            }
        })
        .collect()
}

/// Composite hash of row `i` over typed column slices — no per-row key
/// allocation, no `Value` boxing. Must only be called on null-free rows
/// (callers skip null keys first). Hash-equal rows are confirmed with
/// [`rows_eq`], so cross-type hash discipline only affects bucket quality,
/// not correctness; a type discriminant is mixed in to keep e.g. `Int(0)`
/// and `Bool(false)` apart.
#[inline]
pub(crate) fn hash_row(cols: &[&Column], i: usize) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    for c in cols {
        match c.accessor() {
            ColumnAccessor::Int(v) => {
                0u8.hash(&mut h);
                v.get(i).hash(&mut h);
            }
            ColumnAccessor::Float(v) => {
                1u8.hash(&mut h);
                float_key_bits(v.get(i)).hash(&mut h);
            }
            // dictionary strings hash their *value* (not the code), so a
            // dict-encoded build side and a plain probe side still meet in
            // the same bucket
            ColumnAccessor::Str(v) => {
                2u8.hash(&mut h);
                v.get(i).hash(&mut h);
            }
            ColumnAccessor::Bool(v) => {
                3u8.hash(&mut h);
                v[i].hash(&mut h);
            }
            ColumnAccessor::Date(v) => {
                4u8.hash(&mut h);
                v[i].hash(&mut h);
            }
        }
    }
    h.finish()
}

/// Do row `i` of `a` and row `j` of `b` hold equal (column-wise) key
/// values? Equality matches [`KeyPart`] semantics exactly: same-type
/// comparison only (an `Int 5` never equals a `Float 5.0` key), floats by
/// normalised bits. Rows must be null-free (callers skip null keys).
#[inline]
pub(crate) fn rows_eq(a: &[&Column], i: usize, b: &[&Column], j: usize) -> bool {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .all(|(ca, cb)| match (ca.accessor(), cb.accessor()) {
            (ColumnAccessor::Int(x), ColumnAccessor::Int(y)) => x.get(i) == y.get(j),
            (ColumnAccessor::Float(x), ColumnAccessor::Float(y)) => {
                float_key_bits(x.get(i)) == float_key_bits(y.get(j))
            }
            (ColumnAccessor::Str(x), ColumnAccessor::Str(y)) => {
                // same shared dictionary ⇒ compare codes, not bytes
                if let (Some(dx), Some(dy)) = (x.dict(), y.dict()) {
                    if dx.shares_table(dy) {
                        return dx.code(i) == dy.code(j);
                    }
                }
                x.get(i) == y.get(j)
            }
            (ColumnAccessor::Bool(x), ColumnAccessor::Bool(y)) => x[i] == y[j],
            (ColumnAccessor::Date(x), ColumnAccessor::Date(y)) => x[i] == y[j],
            _ => false,
        })
}

/// Hash-based key check: do the columns contain no duplicate row? O(n)
/// instead of the O(n log n) sort-based [`rma_storage::is_key`] — used by
/// the RMA layer's sort-avoidance optimisation, where validating the order
/// schema must not itself cost a sort.
pub fn is_key_hash(cols: &[&rma_storage::Column]) -> bool {
    let n = cols.first().map_or(0, |c| c.len());
    if cols.is_empty() {
        return n <= 1;
    }
    // single-column fast paths avoid per-row key-vector allocation
    if cols.len() == 1 && !cols[0].has_nulls() {
        match cols[0].accessor() {
            ColumnAccessor::Int(v) => {
                let mut seen = std::collections::HashSet::with_capacity(v.len());
                return (0..v.len()).all(|i| seen.insert(v.get(i)));
            }
            ColumnAccessor::Str(v) => {
                // a dictionary column is a key iff its codes are — value
                // tables are deduplicated, so codes biject onto values
                if let Some(d) = v.dict() {
                    let mut seen = std::collections::HashSet::with_capacity(d.len());
                    return d.codes().iter().all(|c| seen.insert(*c));
                }
                let mut seen = std::collections::HashSet::with_capacity(v.len());
                return (0..v.len()).all(|i| seen.insert(v.get(i)));
            }
            _ => {}
        }
    }
    let mut seen = std::collections::HashSet::with_capacity(n);
    (0..n).all(|i| seen.insert(row_key(cols, i)))
}
