//! The relational algebra operators: σ, π, ρ, ⋈, ×, ϑ, ∪, distinct, sort.
//!
//! All operators are column-at-a-time: they construct output columns in bulk
//! from input columns (selection vectors, gather indices, hash tables over
//! key columns), never materialising boxed tuples on hot paths.

mod aggregate;
mod join;
mod parallel;
mod project;
mod select;
mod setops;

pub use aggregate::{aggregate, AggFunc, AggSpec};
pub use join::{cross_product, join_on, natural_join, theta_join};
pub use parallel::{aggregate_parallel, join_on_parallel, natural_join_parallel, select_parallel};
pub use project::{project, project_exprs, rename};
pub use select::select;
pub use setops::{distinct, limit, order_by, top_k, union_all};

use rma_storage::{Column, ColumnData};

/// A hashable, equatable key extracted from one row of a set of columns.
/// Used by joins, grouping, and duplicate elimination.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) enum KeyPart {
    Int(i64),
    /// Float keyed by its bit pattern (exact equality; NaNs all equal).
    Float(u64),
    Str(String),
    Bool(bool),
    Date(i32),
    Null,
}

/// Extract the grouping/join key of row `i` over `cols`.
pub(crate) fn row_key(cols: &[&Column], i: usize) -> Vec<KeyPart> {
    cols.iter()
        .map(|c| {
            if c.is_null(i) {
                return KeyPart::Null;
            }
            match c.data() {
                ColumnData::Int(v) => KeyPart::Int(v[i]),
                ColumnData::Float(v) => {
                    // normalise NaN payloads and -0.0 so equal floats hash equal
                    let x = v[i];
                    let bits = if x.is_nan() {
                        f64::NAN.to_bits()
                    } else if x == 0.0 {
                        0u64
                    } else {
                        x.to_bits()
                    };
                    KeyPart::Float(bits)
                }
                ColumnData::Str(v) => KeyPart::Str(v[i].clone()),
                ColumnData::Bool(v) => KeyPart::Bool(v[i]),
                ColumnData::Date(v) => KeyPart::Date(v[i]),
            }
        })
        .collect()
}

/// Does the key contain a null (SQL: `NULL = NULL` is not true, so such rows
/// never match in equi-joins)?
pub(crate) fn key_has_null(key: &[KeyPart]) -> bool {
    key.iter().any(|k| matches!(k, KeyPart::Null))
}

/// Hash-based key check: do the columns contain no duplicate row? O(n)
/// instead of the O(n log n) sort-based [`rma_storage::is_key`] — used by
/// the RMA layer's sort-avoidance optimisation, where validating the order
/// schema must not itself cost a sort.
pub fn is_key_hash(cols: &[&rma_storage::Column]) -> bool {
    let n = cols.first().map_or(0, |c| c.len());
    if cols.is_empty() {
        return n <= 1;
    }
    // single-column fast paths avoid per-row key-vector allocation
    if cols.len() == 1 && !cols[0].has_nulls() {
        match cols[0].data() {
            ColumnData::Int(v) => {
                let mut seen = std::collections::HashSet::with_capacity(v.len());
                return v.iter().all(|x| seen.insert(*x));
            }
            ColumnData::Str(v) => {
                let mut seen = std::collections::HashSet::with_capacity(v.len());
                return v.iter().all(|x| seen.insert(x.as_str()));
            }
            _ => {}
        }
    }
    let mut seen = std::collections::HashSet::with_capacity(n);
    (0..n).all(|i| seen.insert(row_key(cols, i)))
}
