//! Selection σ.

use crate::error::RelationError;
use crate::expr::Expr;
use crate::relation::Relation;

/// σ_predicate(r): keep the tuples for which the predicate is true.
pub fn select(r: &Relation, predicate: &Expr) -> Result<Relation, RelationError> {
    let keep = predicate.eval_filter(r)?;
    Ok(r.filter(&keep))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::RelationBuilder;
    use rma_storage::Value;

    fn users() -> Relation {
        RelationBuilder::new()
            .column("User", vec!["Ann", "Tom", "Jan"])
            .column("State", vec!["CA", "FL", "CA"])
            .column("YoB", vec![1980i64, 1965, 1970])
            .build()
            .unwrap()
    }

    #[test]
    fn select_by_string_equality() {
        // the paper's σ_{S='CA'}(u)
        let r = select(&users(), &Expr::col("State").eq(Expr::lit("CA"))).unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r.cell(0, "User").unwrap(), Value::from("Ann"));
        assert_eq!(r.cell(1, "User").unwrap(), Value::from("Jan"));
    }

    #[test]
    fn select_compound_predicate() {
        let p = Expr::col("State")
            .eq(Expr::lit("CA"))
            .and(Expr::col("YoB").lt(Expr::lit(1975i64)));
        let r = select(&users(), &p).unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r.cell(0, "User").unwrap(), Value::from("Jan"));
    }

    #[test]
    fn select_none_and_all() {
        let none = select(&users(), &Expr::lit(1i64).eq(Expr::lit(2i64))).unwrap();
        assert_eq!(none.len(), 0);
        assert_eq!(none.schema(), users().schema());
        let all = select(&users(), &Expr::lit(1i64).eq(Expr::lit(1i64))).unwrap();
        assert_eq!(all.len(), 3);
    }

    #[test]
    fn select_propagates_expression_errors() {
        assert!(select(&users(), &Expr::col("nope").eq(Expr::lit(1i64))).is_err());
        assert!(select(&users(), &Expr::col("YoB")).is_err()); // non-boolean
    }
}
