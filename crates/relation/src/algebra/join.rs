//! Joins: hash equi-join, natural join, theta join, cross product.

use super::{key_has_null, row_key};
use crate::error::RelationError;
use crate::expr::Expr;
use crate::relation::Relation;
use std::collections::HashMap;

/// Inner equi-join `a ⋈_{a.x = b.y} b` via a hash table on the smaller
/// side's key columns. The output schema is the concatenation of both full
/// schemas; attribute name collisions are an error (rename first).
pub fn join_on(a: &Relation, b: &Relation, on: &[(&str, &str)]) -> Result<Relation, RelationError> {
    if on.is_empty() {
        return Err(RelationError::Expression(
            "equi-join requires at least one key pair".to_string(),
        ));
    }
    let (left_idx, right_idx) = hash_join_indices(a, b, on)?;
    assemble_join(a, b, &left_idx, &right_idx, &[])
}

/// Natural join: equi-join on all common attribute names, keeping a single
/// copy of each join attribute (the paper's `u ⋈ r` on `User`).
pub fn natural_join(a: &Relation, b: &Relation) -> Result<Relation, RelationError> {
    let common = common_attributes(a, b);
    if common.is_empty() {
        return cross_product(a, b);
    }
    let pairs: Vec<(&str, &str)> = common.iter().map(|&n| (n, n)).collect();
    let (left_idx, right_idx) = hash_join_indices(a, b, &pairs)?;
    assemble_join(a, b, &left_idx, &right_idx, &common)
}

/// General theta join: nested-loop join with an arbitrary predicate over the
/// concatenated schema. Quadratic — used only when no equi-key exists.
pub fn theta_join(a: &Relation, b: &Relation, predicate: &Expr) -> Result<Relation, RelationError> {
    let product = cross_product(a, b)?;
    super::select(&product, predicate)
}

/// Cross product ×. Collisions between attribute names are an error.
pub fn cross_product(a: &Relation, b: &Relation) -> Result<Relation, RelationError> {
    let schema = a.schema().concat(b.schema())?;
    let (n, m) = (a.len(), b.len());
    // left index: 0,0,...,0,1,1,... ; right index: 0,1,...,m-1,0,1,...
    let mut left_idx = Vec::with_capacity(n * m);
    let mut right_idx = Vec::with_capacity(n * m);
    for i in 0..n {
        for j in 0..m {
            left_idx.push(i);
            right_idx.push(j);
        }
    }
    let mut columns = Vec::with_capacity(schema.len());
    for c in a.columns() {
        columns.push(c.take(&left_idx));
    }
    for c in b.columns() {
        columns.push(c.take(&right_idx));
    }
    Relation::new(schema, columns)
}

/// Build-side hash table over rows `range` of `cols` (row indices are
/// global, so per-partition tables can be merged in partition order).
pub(super) fn build_side_range(
    cols: &[&rma_storage::Column],
    range: std::ops::Range<usize>,
) -> HashMap<Vec<super::KeyPart>, Vec<usize>> {
    let mut table: HashMap<Vec<super::KeyPart>, Vec<usize>> =
        HashMap::with_capacity(range.end - range.start);
    for j in range {
        let key = row_key(cols, j);
        if key_has_null(&key) {
            continue; // NULL keys never match
        }
        table.entry(key).or_default().push(j);
    }
    table
}

/// Probe rows `range` of `cols` against a build table, emitting matching
/// (left, right) global row-index pairs in probe order.
pub(super) fn probe_range(
    table: &HashMap<Vec<super::KeyPart>, Vec<usize>>,
    cols: &[&rma_storage::Column],
    range: std::ops::Range<usize>,
) -> (Vec<usize>, Vec<usize>) {
    let mut left_idx = Vec::new();
    let mut right_idx = Vec::new();
    for i in range {
        let key = row_key(cols, i);
        if key_has_null(&key) {
            continue;
        }
        if let Some(matches) = table.get(&key) {
            for &j in matches {
                left_idx.push(i);
                right_idx.push(j);
            }
        }
    }
    (left_idx, right_idx)
}

/// Resolve the key columns of both join sides.
pub(super) fn join_key_columns<'a>(
    a: &'a Relation,
    b: &'a Relation,
    on: &[(&str, &str)],
) -> Result<(Vec<&'a rma_storage::Column>, Vec<&'a rma_storage::Column>), RelationError> {
    let left_keys: Vec<&str> = on.iter().map(|(l, _)| *l).collect();
    let right_keys: Vec<&str> = on.iter().map(|(_, r)| *r).collect();
    Ok((a.columns_of(&left_keys)?, b.columns_of(&right_keys)?))
}

/// Common attribute names of two relations (the natural-join key set).
pub(super) fn common_attributes<'a>(a: &'a Relation, b: &Relation) -> Vec<&'a str> {
    a.schema()
        .names()
        .filter(|n| b.schema().contains(n))
        .collect()
}

/// Compute matching row-index pairs with a hash table built on the right
/// input (build side), probed by the left.
fn hash_join_indices(
    a: &Relation,
    b: &Relation,
    on: &[(&str, &str)],
) -> Result<(Vec<usize>, Vec<usize>), RelationError> {
    let (left_cols, right_cols) = join_key_columns(a, b, on)?;
    let table = build_side_range(&right_cols, 0..b.len());
    Ok(probe_range(&table, &left_cols, 0..a.len()))
}

/// Gather both sides through the match indices; `drop_right` lists right
/// attributes omitted from the output (used by natural join).
pub(super) fn assemble_join(
    a: &Relation,
    b: &Relation,
    left_idx: &[usize],
    right_idx: &[usize],
    drop_right: &[&str],
) -> Result<Relation, RelationError> {
    let kept_right: Vec<&str> = b
        .schema()
        .names()
        .filter(|n| !drop_right.contains(n))
        .collect();
    let right_schema = b.schema().subset(&kept_right)?;
    let schema = a.schema().concat(&right_schema)?;
    let mut columns = Vec::with_capacity(schema.len());
    for c in a.columns() {
        columns.push(c.take(left_idx));
    }
    for n in &kept_right {
        columns.push(b.column(n)?.take(right_idx));
    }
    Relation::new(schema, columns)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::RelationBuilder;
    use rma_storage::Value;

    fn users() -> Relation {
        RelationBuilder::new()
            .column("User", vec!["Ann", "Tom", "Jan"])
            .column("State", vec!["CA", "FL", "CA"])
            .build()
            .unwrap()
    }

    fn ratings() -> Relation {
        RelationBuilder::new()
            .column("User", vec!["Ann", "Tom", "Jan"])
            .column("Balto", vec![2.0f64, 0.0, 1.0])
            .column("Heat", vec![1.5f64, 0.0, 4.0])
            .build()
            .unwrap()
    }

    #[test]
    fn natural_join_on_user() {
        let j = natural_join(&users(), &ratings()).unwrap();
        assert_eq!(j.len(), 3);
        let names: Vec<_> = j.schema().names().collect();
        assert_eq!(names, vec!["User", "State", "Balto", "Heat"]);
    }

    #[test]
    fn natural_join_without_common_attrs_is_cross() {
        let a = RelationBuilder::new()
            .column("x", vec![1i64, 2])
            .build()
            .unwrap();
        let b = RelationBuilder::new()
            .column("y", vec![10i64])
            .build()
            .unwrap();
        let j = natural_join(&a, &b).unwrap();
        assert_eq!(j.len(), 2);
    }

    #[test]
    fn join_on_different_names_keeps_both() {
        let films = RelationBuilder::new()
            .column("Title", vec!["Heat", "Balto"])
            .column("Director", vec!["Lee", "Lee"])
            .build()
            .unwrap();
        let w7 = RelationBuilder::new()
            .column("C", vec!["Balto", "Heat", "Net"])
            .column("cov", vec![1.56f64, -0.62, -2.5])
            .build()
            .unwrap();
        // the paper's w8 = σ_{D='Lee'}(w7 ⋈_{C=T} f)
        let j = join_on(&w7, &films, &[("C", "Title")]).unwrap();
        assert_eq!(j.len(), 2);
        assert!(j.schema().contains("C"));
        assert!(j.schema().contains("Title"));
    }

    #[test]
    fn join_duplicates_multiply() {
        let a = RelationBuilder::new()
            .column("k", vec![1i64, 1])
            .build()
            .unwrap();
        let b = RelationBuilder::new()
            .column("k2", vec![1i64, 1, 1])
            .build()
            .unwrap();
        let j = join_on(&a, &b, &[("k", "k2")]).unwrap();
        assert_eq!(j.len(), 6);
    }

    #[test]
    fn null_keys_never_match() {
        let a = Relation::from_rows(
            crate::schema::Schema::from_pairs(&[("k", rma_storage::DataType::Int)]).unwrap(),
            &[vec![Value::Null], vec![Value::Int(1)]],
        )
        .unwrap();
        let j = join_on(&a, &a.clone(), &[("k", "k")]);
        // schema collision: k appears twice → rename first
        assert!(j.is_err());
        let b = rename_k(&a);
        let j = join_on(&a, &b, &[("k", "k2")]).unwrap();
        assert_eq!(j.len(), 1); // only the 1=1 match; NULL=NULL is not true
    }

    fn rename_k(r: &Relation) -> Relation {
        super::super::rename(r, &[("k", "k2")]).unwrap()
    }

    #[test]
    fn cross_product_sizes_and_collisions() {
        let a = RelationBuilder::new()
            .column("x", vec![1i64, 2])
            .build()
            .unwrap();
        let b = RelationBuilder::new()
            .column("y", vec![10i64, 20, 30])
            .build()
            .unwrap();
        let c = cross_product(&a, &b).unwrap();
        assert_eq!(c.len(), 6);
        assert_eq!(c.cell(5, "x").unwrap(), Value::Int(2));
        assert_eq!(c.cell(5, "y").unwrap(), Value::Int(30));
        assert!(cross_product(&a, &a.clone()).is_err());
    }

    #[test]
    fn theta_join_inequality() {
        let a = RelationBuilder::new()
            .column("x", vec![1i64, 5])
            .build()
            .unwrap();
        let b = RelationBuilder::new()
            .column("y", vec![3i64, 4])
            .build()
            .unwrap();
        let j = theta_join(&a, &b, &Expr::col("x").lt(Expr::col("y"))).unwrap();
        assert_eq!(j.len(), 2); // (1,3), (1,4)
    }

    #[test]
    fn empty_inputs() {
        let a = users().take(&[]);
        let j = natural_join(&a, &ratings()).unwrap();
        assert_eq!(j.len(), 0);
        assert_eq!(j.schema().len(), 4);
    }

    #[test]
    fn join_requires_key_pairs() {
        assert!(join_on(&users(), &ratings(), &[]).is_err());
    }
}
