//! Joins: hash equi-join, natural join, theta join, cross product.
//!
//! Late materialization: both join inputs may be selection-vector views.
//! The build and probe sides read key cells straight through their
//! selection vectors ([`JoinSide`]) — neither side is compacted — and the
//! hash table hashes typed column slices ([`super::hash_row`]) instead of
//! boxing a `Value` key per row. The single gather happens in
//! [`assemble_join`], which composes the match indices with each side's
//! selection vector and materialises only the surviving rows.

use super::{float_key_bits, rows_eq};
use crate::error::RelationError;
use crate::expr::Expr;
use crate::relation::Relation;
use rma_storage::{ColumnAccessor, Dict, SelVec};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

/// Inner equi-join `a ⋈_{a.x = b.y} b` via a hash table on the smaller
/// side's key columns. The output schema is the concatenation of both full
/// schemas; attribute name collisions are an error (rename first).
pub fn join_on(a: &Relation, b: &Relation, on: &[(&str, &str)]) -> Result<Relation, RelationError> {
    if on.is_empty() {
        return Err(RelationError::Expression(
            "equi-join requires at least one key pair".to_string(),
        ));
    }
    let (left_idx, right_idx) = hash_join_indices(a, b, on)?;
    assemble_join(a, b, left_idx, right_idx, &[])
}

/// Natural join: equi-join on all common attribute names, keeping a single
/// copy of each join attribute (the paper's `u ⋈ r` on `User`).
pub fn natural_join(a: &Relation, b: &Relation) -> Result<Relation, RelationError> {
    let common = common_attributes(a, b);
    if common.is_empty() {
        return cross_product(a, b);
    }
    let pairs: Vec<(&str, &str)> = common.iter().map(|&n| (n, n)).collect();
    let (left_idx, right_idx) = hash_join_indices(a, b, &pairs)?;
    assemble_join(a, b, left_idx, right_idx, &common)
}

/// General theta join: nested-loop join with an arbitrary predicate over the
/// concatenated schema. Quadratic — used only when no equi-key exists.
pub fn theta_join(a: &Relation, b: &Relation, predicate: &Expr) -> Result<Relation, RelationError> {
    let product = cross_product(a, b)?;
    super::select(&product, predicate)
}

/// Cross product ×. Collisions between attribute names are an error.
pub fn cross_product(a: &Relation, b: &Relation) -> Result<Relation, RelationError> {
    let schema = a.schema().concat(b.schema())?;
    let (n, m) = (a.len(), b.len());
    // left index: 0,0,...,0,1,1,... ; right index: 0,1,...,m-1,0,1,...
    let mut left_idx = Vec::with_capacity(n * m);
    let mut right_idx = Vec::with_capacity(n * m);
    for i in 0..n {
        for j in 0..m {
            left_idx.push(i);
            right_idx.push(j);
        }
    }
    let left_sel = a.compose_owned(left_idx);
    let right_sel = b.compose_owned(right_idx);
    let mut columns = Vec::with_capacity(schema.len());
    for c in a.base_columns() {
        columns.push(c.gather(&left_sel));
    }
    for c in b.base_columns() {
        columns.push(c.gather(&right_sel));
    }
    Relation::new(schema, columns)
}

/// One side of a hash join: the key's *base* columns plus the relation's
/// selection vector. Positions (0..relation.len()) are resolved to base
/// rows on the fly — probing and building run through the SelVec without
/// compacting either input.
pub(super) struct JoinSide<'a> {
    cols: Vec<&'a rma_storage::Column>,
    sel: Option<&'a SelVec>,
    /// Per key column: when dictionary encoded, the dictionary plus a
    /// code → value-hash LUT computed once per join (one string hash per
    /// *distinct* value); per-row hashing becomes a code lookup.
    dict_luts: Vec<Option<(&'a Dict, Vec<u64>)>>,
}

impl<'a> JoinSide<'a> {
    pub(super) fn new(r: &'a Relation, keys: &[&str]) -> Result<Self, RelationError> {
        let cols: Vec<&rma_storage::Column> = keys
            .iter()
            .map(|n| r.base_column(n))
            .collect::<Result<_, _>>()?;
        let dict_luts = cols
            .iter()
            .map(|c| match c.accessor() {
                ColumnAccessor::Str(s) => s.dict().map(|d| {
                    let lut = d.values().iter().map(|v| str_value_hash(v)).collect();
                    (d, lut)
                }),
                _ => None,
            })
            .collect();
        Ok(JoinSide {
            cols,
            sel: r.sel(),
            dict_luts,
        })
    }

    /// Base row behind visible position `pos`.
    #[inline]
    fn base(&self, pos: usize) -> usize {
        match self.sel {
            Some(s) => s.get(pos),
            None => pos,
        }
    }

    #[inline]
    fn key_has_null(&self, base: usize) -> bool {
        self.cols.iter().any(|c| c.is_null(base))
    }

    /// Composite key hash of base row `base`: per-column value hashes
    /// (dictionary columns via the code LUT) folded into one digest. Both
    /// sides of a join hash through this, so a dict-encoded build side and
    /// a plain probe side still land in the same bucket.
    #[inline]
    fn hash_key(&self, base: usize) -> u64 {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        for (c, lut) in self.cols.iter().zip(&self.dict_luts) {
            let col_hash = match lut {
                Some((d, lut)) => lut[d.code(base) as usize],
                None => column_value_hash(c, base),
            };
            col_hash.hash(&mut h);
        }
        h.finish()
    }
}

/// Hash one string the way [`column_value_hash`] hashes a string cell, so
/// dictionary LUT entries and plain-column hashes agree.
fn str_value_hash(s: &str) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    2u8.hash(&mut h);
    s.hash(&mut h);
    h.finish()
}

/// Hash of one non-null cell, with the same type-discriminant discipline as
/// [`super::hash_row`]; reads through the encoding-aware accessors.
fn column_value_hash(c: &rma_storage::Column, i: usize) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    match c.accessor() {
        ColumnAccessor::Int(v) => {
            0u8.hash(&mut h);
            v.get(i).hash(&mut h);
        }
        ColumnAccessor::Float(v) => {
            1u8.hash(&mut h);
            float_key_bits(v.get(i)).hash(&mut h);
        }
        ColumnAccessor::Str(v) => {
            2u8.hash(&mut h);
            v.get(i).hash(&mut h);
        }
        ColumnAccessor::Bool(v) => {
            3u8.hash(&mut h);
            v[i].hash(&mut h);
        }
        ColumnAccessor::Date(v) => {
            4u8.hash(&mut h);
            v[i].hash(&mut h);
        }
    }
    h.finish()
}

/// Build-side hash table over visible positions `range` (positions within a
/// morsel are ascending and morsels are disjoint ascending ranges, so
/// per-partition tables merge in partition order). Buckets are keyed by the
/// composite row hash; equal-hash rows of *different* keys are separated at
/// probe time by [`rows_eq`].
pub(super) fn build_side_range(
    side: &JoinSide,
    range: std::ops::Range<usize>,
) -> HashMap<u64, Vec<usize>> {
    let mut table: HashMap<u64, Vec<usize>> = HashMap::with_capacity(range.end - range.start);
    for pos in range {
        let base = side.base(pos);
        if side.key_has_null(base) {
            continue; // NULL keys never match
        }
        table.entry(side.hash_key(base)).or_default().push(pos);
    }
    table
}

/// Probe visible positions `range` of the probe side against a build
/// table, emitting matching (probe, build) position pairs in probe order.
pub(super) fn probe_range(
    table: &HashMap<u64, Vec<usize>>,
    build: &JoinSide,
    probe: &JoinSide,
    range: std::ops::Range<usize>,
) -> (Vec<usize>, Vec<usize>) {
    let mut left_idx = Vec::new();
    let mut right_idx = Vec::new();
    for pos in range {
        let pb = probe.base(pos);
        if probe.key_has_null(pb) {
            continue;
        }
        if let Some(bucket) = table.get(&probe.hash_key(pb)) {
            for &j in bucket {
                if rows_eq(&probe.cols, pb, &build.cols, build.base(j)) {
                    left_idx.push(pos);
                    right_idx.push(j);
                }
            }
        }
    }
    (left_idx, right_idx)
}

/// Resolve the key sides of a join.
pub(super) fn join_key_sides<'a>(
    a: &'a Relation,
    b: &'a Relation,
    on: &[(&str, &str)],
) -> Result<(JoinSide<'a>, JoinSide<'a>), RelationError> {
    let left_keys: Vec<&str> = on.iter().map(|(l, _)| *l).collect();
    let right_keys: Vec<&str> = on.iter().map(|(_, r)| *r).collect();
    Ok((
        JoinSide::new(a, &left_keys)?,
        JoinSide::new(b, &right_keys)?,
    ))
}

/// Common attribute names of two relations (the natural-join key set).
pub(super) fn common_attributes<'a>(a: &'a Relation, b: &Relation) -> Vec<&'a str> {
    a.schema()
        .names()
        .filter(|n| b.schema().contains(n))
        .collect()
}

/// Compute matching row-index pairs with a hash table built on the right
/// input (build side), probed by the left.
fn hash_join_indices(
    a: &Relation,
    b: &Relation,
    on: &[(&str, &str)],
) -> Result<(Vec<usize>, Vec<usize>), RelationError> {
    let (probe, build) = join_key_sides(a, b, on)?;
    let table = build_side_range(&build, 0..b.len());
    Ok(probe_range(&table, &build, &probe, 0..a.len()))
}

/// Gather both sides through the match indices — the join's one
/// materialization point; `drop_right` lists right attributes omitted from
/// the output (used by natural join).
pub(super) fn assemble_join(
    a: &Relation,
    b: &Relation,
    left_idx: Vec<usize>,
    right_idx: Vec<usize>,
    drop_right: &[&str],
) -> Result<Relation, RelationError> {
    let kept_right: Vec<&str> = b
        .schema()
        .names()
        .filter(|n| !drop_right.contains(n))
        .collect();
    let right_schema = b.schema().subset(&kept_right)?;
    let schema = a.schema().concat(&right_schema)?;
    let left_sel = a.compose_owned(left_idx);
    let right_sel = b.compose_owned(right_idx);
    let mut columns = Vec::with_capacity(schema.len());
    for c in a.base_columns() {
        columns.push(c.gather(&left_sel));
    }
    for n in &kept_right {
        columns.push(b.base_column(n)?.gather(&right_sel));
    }
    Relation::new(schema, columns)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::RelationBuilder;
    use rma_storage::Value;

    fn users() -> Relation {
        RelationBuilder::new()
            .column("User", vec!["Ann", "Tom", "Jan"])
            .column("State", vec!["CA", "FL", "CA"])
            .build()
            .unwrap()
    }

    fn ratings() -> Relation {
        RelationBuilder::new()
            .column("User", vec!["Ann", "Tom", "Jan"])
            .column("Balto", vec![2.0f64, 0.0, 1.0])
            .column("Heat", vec![1.5f64, 0.0, 4.0])
            .build()
            .unwrap()
    }

    #[test]
    fn natural_join_on_user() {
        let j = natural_join(&users(), &ratings()).unwrap();
        assert_eq!(j.len(), 3);
        let names: Vec<_> = j.schema().names().collect();
        assert_eq!(names, vec!["User", "State", "Balto", "Heat"]);
    }

    #[test]
    fn natural_join_without_common_attrs_is_cross() {
        let a = RelationBuilder::new()
            .column("x", vec![1i64, 2])
            .build()
            .unwrap();
        let b = RelationBuilder::new()
            .column("y", vec![10i64])
            .build()
            .unwrap();
        let j = natural_join(&a, &b).unwrap();
        assert_eq!(j.len(), 2);
    }

    #[test]
    fn join_on_different_names_keeps_both() {
        let films = RelationBuilder::new()
            .column("Title", vec!["Heat", "Balto"])
            .column("Director", vec!["Lee", "Lee"])
            .build()
            .unwrap();
        let w7 = RelationBuilder::new()
            .column("C", vec!["Balto", "Heat", "Net"])
            .column("cov", vec![1.56f64, -0.62, -2.5])
            .build()
            .unwrap();
        // the paper's w8 = σ_{D='Lee'}(w7 ⋈_{C=T} f)
        let j = join_on(&w7, &films, &[("C", "Title")]).unwrap();
        assert_eq!(j.len(), 2);
        assert!(j.schema().contains("C"));
        assert!(j.schema().contains("Title"));
    }

    #[test]
    fn join_duplicates_multiply() {
        let a = RelationBuilder::new()
            .column("k", vec![1i64, 1])
            .build()
            .unwrap();
        let b = RelationBuilder::new()
            .column("k2", vec![1i64, 1, 1])
            .build()
            .unwrap();
        let j = join_on(&a, &b, &[("k", "k2")]).unwrap();
        assert_eq!(j.len(), 6);
    }

    #[test]
    fn null_keys_never_match() {
        let a = Relation::from_rows(
            crate::schema::Schema::from_pairs(&[("k", rma_storage::DataType::Int)]).unwrap(),
            &[vec![Value::Null], vec![Value::Int(1)]],
        )
        .unwrap();
        let j = join_on(&a, &a.clone(), &[("k", "k")]);
        // schema collision: k appears twice → rename first
        assert!(j.is_err());
        let b = rename_k(&a);
        let j = join_on(&a, &b, &[("k", "k2")]).unwrap();
        assert_eq!(j.len(), 1); // only the 1=1 match; NULL=NULL is not true
    }

    fn rename_k(r: &Relation) -> Relation {
        super::super::rename(r, &[("k", "k2")]).unwrap()
    }

    #[test]
    fn cross_product_sizes_and_collisions() {
        let a = RelationBuilder::new()
            .column("x", vec![1i64, 2])
            .build()
            .unwrap();
        let b = RelationBuilder::new()
            .column("y", vec![10i64, 20, 30])
            .build()
            .unwrap();
        let c = cross_product(&a, &b).unwrap();
        assert_eq!(c.len(), 6);
        assert_eq!(c.cell(5, "x").unwrap(), Value::Int(2));
        assert_eq!(c.cell(5, "y").unwrap(), Value::Int(30));
        assert!(cross_product(&a, &a.clone()).is_err());
    }

    #[test]
    fn theta_join_inequality() {
        let a = RelationBuilder::new()
            .column("x", vec![1i64, 5])
            .build()
            .unwrap();
        let b = RelationBuilder::new()
            .column("y", vec![3i64, 4])
            .build()
            .unwrap();
        let j = theta_join(&a, &b, &Expr::col("x").lt(Expr::col("y"))).unwrap();
        assert_eq!(j.len(), 2); // (1,3), (1,4)
    }

    #[test]
    fn empty_inputs() {
        let a = users().take(&[]);
        let j = natural_join(&a, &ratings()).unwrap();
        assert_eq!(j.len(), 0);
        assert_eq!(j.schema().len(), 4);
    }

    #[test]
    fn join_requires_key_pairs() {
        assert!(join_on(&users(), &ratings(), &[]).is_err());
    }
}
