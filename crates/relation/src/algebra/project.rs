//! Projection π and rename ρ.

use crate::error::RelationError;
use crate::expr::Expr;
use crate::relation::Relation;
use crate::schema::{Attribute, Schema};

/// π_names(r): keep the named attributes, in the given order. Duplicate
/// elimination is *not* performed (bag semantics, as in SQL). Zero-copy:
/// the output shares the input's base columns (O(1) Arc clones) and keeps
/// its selection vector, so projecting a view stays a view.
pub fn project(r: &Relation, names: &[&str]) -> Result<Relation, RelationError> {
    let schema = r.schema().subset(names)?;
    let columns = names
        .iter()
        .map(|n| r.base_column(n).cloned())
        .collect::<Result<Vec<_>, _>>()?;
    Ok(Relation::from_view_parts(
        r.name().map(str::to_string),
        schema,
        columns,
        r.sel().cloned(),
    ))
}

/// Generalised projection: each output attribute is an expression, e.g. the
/// paper's `π_{C, B/(M−1), H/(M−1), N/(M−1)}(w6)`.
///
/// A projection of plain attribute references (including repeated or
/// renamed ones) shares the base columns and keeps the selection vector —
/// zero copy; computed items evaluate over only the selected rows and
/// materialise their output. Either way the result is unnamed, as before.
pub fn project_exprs(r: &Relation, items: &[(Expr, &str)]) -> Result<Relation, RelationError> {
    if items.iter().all(|(e, _)| matches!(e, Expr::Col(_))) {
        let mut attrs = Vec::with_capacity(items.len());
        let mut columns = Vec::with_capacity(items.len());
        for (e, out) in items {
            let Expr::Col(n) = e else {
                unreachable!("checked above")
            };
            attrs.push(Attribute::new(*out, r.schema().attribute(n)?.dtype()));
            columns.push(r.base_column(n)?.clone());
        }
        // duplicate *output* names error here, exactly as Relation::new
        // does on the eval path
        let schema = Schema::new(attrs)?;
        return Ok(Relation::from_view_parts(
            None,
            schema,
            columns,
            r.sel().cloned(),
        ));
    }
    let mut attrs = Vec::with_capacity(items.len());
    let mut columns = Vec::with_capacity(items.len());
    for (expr, name) in items {
        let col = expr.eval(r)?;
        attrs.push(Attribute::new(*name, col.data_type()));
        columns.push(col);
    }
    Relation::new(Schema::new(attrs)?, columns)
}

/// ρ: rename attributes according to `(old, new)` pairs; unlisted attributes
/// keep their names. Renaming is a schema-level operation — no data moves.
pub fn rename(r: &Relation, mapping: &[(&str, &str)]) -> Result<Relation, RelationError> {
    for (old, _) in mapping {
        if !r.schema().contains(old) {
            return Err(RelationError::UnknownAttribute(old.to_string()));
        }
    }
    let attrs = r
        .schema()
        .attributes()
        .iter()
        .map(|a| {
            let new = mapping
                .iter()
                .find(|(old, _)| *old == a.name())
                .map(|(_, new)| *new)
                .unwrap_or_else(|| a.name());
            Attribute::new(new, a.dtype())
        })
        .collect();
    let schema = Schema::new(attrs)?;
    Ok(r.clone().with_schema_unchecked(schema))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::RelationBuilder;
    use rma_storage::{DataType, Value};

    fn rel() -> Relation {
        RelationBuilder::new()
            .name("w")
            .column("C", vec!["B", "H"])
            .column("B", vec![1.56f64, -0.62])
            .column("M", vec![2i64, 2])
            .build()
            .unwrap()
    }

    #[test]
    fn project_reorders() {
        let p = project(&rel(), &["B", "C"]).unwrap();
        let names: Vec<_> = p.schema().names().collect();
        assert_eq!(names, vec!["B", "C"]);
        assert_eq!(p.name(), Some("w"));
    }

    #[test]
    fn project_unknown_errors() {
        assert!(project(&rel(), &["Z"]).is_err());
    }

    #[test]
    fn project_exprs_computes() {
        let items = [
            (Expr::col("C"), "C"),
            (
                Expr::col("B").div(Expr::col("M").sub(Expr::lit(1i64))),
                "Bn",
            ),
        ];
        let p = project_exprs(&rel(), &items).unwrap();
        assert_eq!(p.schema().attribute("Bn").unwrap().dtype(), DataType::Float);
        assert_eq!(p.cell(0, "Bn").unwrap(), Value::Float(1.56));
    }

    #[test]
    fn project_exprs_rejects_duplicate_output_names() {
        let items = [(Expr::col("B"), "x"), (Expr::col("C"), "x")];
        assert!(project_exprs(&rel(), &items).is_err());
    }

    #[test]
    fn rename_is_schema_only() {
        let n = rename(&rel(), &[("B", "Balto")]).unwrap();
        assert!(n.schema().contains("Balto"));
        assert!(!n.schema().contains("B"));
        assert_eq!(n.column("Balto").unwrap(), rel().column("B").unwrap());
    }

    #[test]
    fn rename_unknown_and_collision() {
        assert!(rename(&rel(), &[("zz", "y")]).is_err());
        assert!(rename(&rel(), &[("B", "C")]).is_err()); // collides with existing C
    }
}
