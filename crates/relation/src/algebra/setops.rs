//! Bag union, duplicate elimination, ordering, limit.

use super::row_key;
use crate::error::RelationError;
use crate::relation::Relation;
use rma_storage::Column;
use std::collections::HashSet;

/// `UNION ALL`: bag union of two union-compatible relations. The output
/// keeps the left schema's attribute names.
pub fn union_all(a: &Relation, b: &Relation) -> Result<Relation, RelationError> {
    if !a.schema().union_compatible(b.schema()) {
        return Err(RelationError::NotUnionCompatible);
    }
    let mut columns: Vec<Column> = a.columns().to_vec();
    for (c, other) in columns.iter_mut().zip(b.columns()) {
        c.append(other)?;
    }
    Relation::new(a.schema().clone(), columns)
}

/// Duplicate elimination (SQL `DISTINCT`), keeping first occurrences in
/// input order.
pub fn distinct(r: &Relation) -> Result<Relation, RelationError> {
    let names: Vec<&str> = r.schema().names().collect();
    let cols = r.columns_of(&names)?;
    let mut seen = HashSet::with_capacity(r.len());
    let mut keep_idx = Vec::new();
    for i in 0..r.len() {
        if seen.insert(row_key(&cols, i)) {
            keep_idx.push(i);
        }
    }
    Ok(r.take(&keep_idx))
}

/// `ORDER BY` over the given attributes; `ascending[k]` gives the direction
/// of the k-th attribute (must match `attrs` length; all-ascending if empty).
pub fn order_by(
    r: &Relation,
    attrs: &[&str],
    ascending: &[bool],
) -> Result<Relation, RelationError> {
    if !ascending.is_empty() && ascending.len() != attrs.len() {
        return Err(RelationError::ArityMismatch {
            expected: attrs.len(),
            found: ascending.len(),
        });
    }
    let cols = r.columns_of(attrs)?;
    let mut perm: Vec<usize> = (0..r.len()).collect();
    perm.sort_by(|&x, &y| {
        for (k, c) in cols.iter().enumerate() {
            let asc = ascending.get(k).copied().unwrap_or(true);
            let ord = c.cmp_rows(x, y);
            let ord = if asc { ord } else { ord.reverse() };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    Ok(r.take(&perm))
}

/// Top-k: the first `n` rows of `ORDER BY attrs` without materialising the
/// full sort. A bounded binary max-heap of row indices (the same
/// `bounded_top_k` helper each parallel worker runs — see
/// `algebra::sort`) keeps the current k best rows; each remaining row
/// either displaces the heap root or is dropped, so the cost is
/// O(|r| log n) instead of O(|r| log |r|).
///
/// Ties are broken by row index, which makes the result identical to
/// `limit(order_by(r, ...), n, 0)` (the stable serial sort).
pub fn top_k(
    r: &Relation,
    attrs: &[&str],
    ascending: &[bool],
    n: usize,
) -> Result<Relation, RelationError> {
    let keys = super::sort::SortKeys::new(r, attrs, ascending)?;
    if n == 0 {
        return Ok(r.take(&[]));
    }
    let mut best = super::sort::bounded_top_k(0..r.len(), n, &keys);
    best.sort_unstable_by(|&x, &y| keys.cmp(x, y));
    Ok(r.take(&best))
}

/// `LIMIT n` (with optional `OFFSET`).
pub fn limit(r: &Relation, n: usize, offset: usize) -> Relation {
    let end = (offset + n).min(r.len());
    let start = offset.min(r.len());
    let idx: Vec<usize> = (start..end).collect();
    r.take(&idx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::RelationBuilder;
    use rma_storage::Value;

    fn rel() -> Relation {
        RelationBuilder::new()
            .column("x", vec![3i64, 1, 3, 2])
            .column("y", vec!["c", "a", "c", "b"])
            .build()
            .unwrap()
    }

    #[test]
    fn union_all_appends() {
        let u = union_all(&rel(), &rel()).unwrap();
        assert_eq!(u.len(), 8);
        assert_eq!(u.cell(4, "x").unwrap(), Value::Int(3));
    }

    #[test]
    fn union_all_requires_compatibility() {
        let other = RelationBuilder::new()
            .column("x", vec![1.0f64])
            .column("y", vec!["a"])
            .build()
            .unwrap();
        assert!(matches!(
            union_all(&rel(), &other),
            Err(RelationError::NotUnionCompatible)
        ));
    }

    #[test]
    fn union_all_keeps_left_names() {
        let renamed = crate::algebra::rename(&rel(), &[("x", "p"), ("y", "q")]).unwrap();
        let u = union_all(&rel(), &renamed).unwrap();
        assert!(u.schema().contains("x"));
        assert!(!u.schema().contains("p"));
    }

    #[test]
    fn distinct_keeps_first() {
        let d = distinct(&rel()).unwrap();
        assert_eq!(d.len(), 3);
        assert_eq!(d.cell(0, "x").unwrap(), Value::Int(3));
        assert_eq!(d.cell(1, "x").unwrap(), Value::Int(1));
    }

    #[test]
    fn order_by_desc() {
        let o = order_by(&rel(), &["x"], &[false]).unwrap();
        let xs: Vec<Value> = o.column("x").unwrap().iter_values().collect();
        assert_eq!(
            xs,
            vec![Value::Int(3), Value::Int(3), Value::Int(2), Value::Int(1)]
        );
    }

    #[test]
    fn order_by_mixed_directions() {
        let r = RelationBuilder::new()
            .column("a", vec![1i64, 1, 2])
            .column("b", vec![10i64, 20, 5])
            .build()
            .unwrap();
        let o = order_by(&r, &["a", "b"], &[true, false]).unwrap();
        assert_eq!(o.cell(0, "b").unwrap(), Value::Int(20));
        assert_eq!(o.cell(1, "b").unwrap(), Value::Int(10));
    }

    #[test]
    fn order_by_direction_arity_checked() {
        assert!(order_by(&rel(), &["x"], &[true, false]).is_err());
    }

    #[test]
    fn top_k_matches_sort_plus_limit() {
        let r = RelationBuilder::new()
            .column("a", vec![5i64, 1, 4, 1, 3, 2, 5, 0])
            .column("b", vec!["e", "b", "d", "a", "c", "x", "y", "z"])
            .build()
            .unwrap();
        for n in 0..=9 {
            for dirs in [vec![true], vec![false]] {
                let tk = top_k(&r, &["a"], &dirs, n).unwrap();
                let full = limit(&order_by(&r, &["a"], &dirs).unwrap(), n, 0);
                assert_eq!(tk, full, "n={n} dirs={dirs:?}");
            }
        }
    }

    #[test]
    fn top_k_breaks_ties_like_stable_sort() {
        let r = RelationBuilder::new()
            .column("a", vec![1i64, 1, 1, 1])
            .column("i", vec![0i64, 1, 2, 3])
            .build()
            .unwrap();
        let tk = top_k(&r, &["a"], &[], 2).unwrap();
        assert_eq!(tk.cell(0, "i").unwrap(), Value::Int(0));
        assert_eq!(tk.cell(1, "i").unwrap(), Value::Int(1));
    }

    #[test]
    fn top_k_checks_direction_arity() {
        assert!(top_k(&rel(), &["x"], &[true, false], 1).is_err());
    }

    #[test]
    fn limit_and_offset() {
        let l = limit(&rel(), 2, 1);
        assert_eq!(l.len(), 2);
        assert_eq!(l.cell(0, "x").unwrap(), Value::Int(1));
        assert_eq!(limit(&rel(), 10, 3).len(), 1);
        assert_eq!(limit(&rel(), 10, 99).len(), 0);
    }
}
