//! Grouped aggregation ϑ.

use super::{row_key, KeyPart};
use crate::error::RelationError;
use crate::relation::Relation;
use crate::schema::{Attribute, Schema};
use rma_storage::encoding::RleValue;
use rma_storage::{Column, ColumnAccessor, DataType, Rle, Seg, Value};
use std::collections::HashMap;

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// `COUNT(*)` — counts tuples, including those with nulls.
    CountStar,
    /// `COUNT(a)` — counts non-null values.
    Count,
    Sum,
    Avg,
    Min,
    Max,
}

/// One aggregate to compute: function, input attribute (ignored for
/// `COUNT(*)`), output attribute name.
#[derive(Debug, Clone, PartialEq)]
pub struct AggSpec {
    pub func: AggFunc,
    pub input: Option<String>,
    pub output: String,
}

impl AggSpec {
    pub fn new(func: AggFunc, input: Option<&str>, output: &str) -> Self {
        AggSpec {
            func,
            input: input.map(str::to_string),
            output: output.to_string(),
        }
    }

    /// `COUNT(*) AS name`.
    pub fn count_star(output: &str) -> Self {
        Self::new(AggFunc::CountStar, None, output)
    }

    /// `AVG(input) AS output`.
    pub fn avg(input: &str, output: &str) -> Self {
        Self::new(AggFunc::Avg, Some(input), output)
    }

    /// `SUM(input) AS output`.
    pub fn sum(input: &str, output: &str) -> Self {
        Self::new(AggFunc::Sum, Some(input), output)
    }
}

/// Per-group accumulator. Accumulators are *mergeable*: the parallel
/// aggregation path computes one per group per worker and combines them at
/// the barrier ([`Acc::merge`]).
#[derive(Debug, Clone, Default)]
pub(super) struct Acc {
    count: u64,
    count_nonnull: u64,
    sum: f64,
    min: Option<Value>,
    max: Option<Value>,
}

impl Acc {
    /// Fold another partial accumulator for the same group into this one.
    pub(super) fn merge(&mut self, other: &Acc) {
        self.count += other.count;
        self.count_nonnull += other.count_nonnull;
        self.sum += other.sum;
        if let Some(v) = &other.min {
            if self.min.as_ref().is_none_or(|m| v.total_cmp(m).is_lt()) {
                self.min = Some(v.clone());
            }
        }
        if let Some(v) = &other.max {
            if self.max.as_ref().is_none_or(|m| v.total_cmp(m).is_gt()) {
                self.max = Some(v.clone());
            }
        }
    }
}

/// Partial aggregation state over one row range: group keys and
/// representative rows in first-seen order, plus one accumulator row per
/// aggregate. Merging partials in range order reproduces the serial
/// first-seen group order exactly.
#[derive(Debug, Default)]
pub(super) struct Partial {
    pub(super) keys: Vec<Vec<KeyPart>>,
    pub(super) rep: Vec<usize>,
    pub(super) accs: Vec<Vec<Acc>>,
}

/// Check aggregate specs against the input schema (shared by the serial and
/// parallel paths).
pub(super) fn validate_aggs(r: &Relation, aggs: &[AggSpec]) -> Result<(), RelationError> {
    for spec in aggs {
        if let Some(input) = &spec.input {
            let dt = r.schema().attribute(input)?.dtype();
            if matches!(spec.func, AggFunc::Sum | AggFunc::Avg) && !dt.is_numeric() {
                return Err(RelationError::Expression(format!(
                    "{:?} over non-numeric attribute `{input}`",
                    spec.func
                )));
            }
        } else if spec.func != AggFunc::CountStar {
            return Err(RelationError::Expression(format!(
                "{:?} requires an input attribute",
                spec.func
            )));
        }
    }
    Ok(())
}

/// Accumulate rows `range` of the input into per-group partial states.
/// `seed_global` inserts the single empty-key group up front (global
/// aggregation semantics: one output row even for empty input).
pub(super) fn accumulate(
    group_cols: &[&Column],
    agg_cols: &[Option<&Column>],
    aggs: &[AggSpec],
    range: std::ops::Range<usize>,
    seed_global: bool,
) -> Partial {
    let mut group_ids: HashMap<Vec<KeyPart>, usize> = HashMap::new();
    let mut out = Partial::default();
    if seed_global {
        group_ids.insert(Vec::new(), 0);
        out.keys.push(Vec::new());
        out.rep.push(0);
        out.accs.push(vec![Acc::default(); aggs.len()]);
    }
    // Global (ungrouped) aggregation is column-at-a-time: each aggregate
    // folds its own input column, and an RLE input folds run-at-a-time —
    // one multiply per run for SUM, one comparison per run for MIN/MAX —
    // without decoding.
    if group_cols.is_empty() {
        if !seed_global {
            // parallel partial: materialise the single group only if this
            // worker saw any rows, mirroring the per-row path exactly
            if range.is_empty() {
                return out;
            }
            out.keys.push(Vec::new());
            out.rep.push(range.start);
            out.accs.push(vec![Acc::default(); aggs.len()]);
        }
        for (k, spec) in aggs.iter().enumerate() {
            accumulate_global(&mut out.accs[0][k], spec, agg_cols[k], range.clone());
        }
        return out;
    }
    for i in range {
        let key = row_key(group_cols, i);
        let gid = match group_ids.get(&key) {
            Some(&g) => g,
            None => {
                let g = group_ids.len();
                out.keys.push(key.clone());
                out.rep.push(i);
                out.accs.push(vec![Acc::default(); aggs.len()]);
                group_ids.insert(key, g);
                g
            }
        };
        for (k, spec) in aggs.iter().enumerate() {
            let acc = &mut out.accs[gid][k];
            acc.count += 1;
            if let Some(col) = agg_cols[k] {
                if col.is_null(i) {
                    continue;
                }
                acc.count_nonnull += 1;
                match spec.func {
                    AggFunc::Sum | AggFunc::Avg => {
                        // numeric-only checked by validate_aggs
                        acc.sum += value_f64(col, i);
                    }
                    AggFunc::Min => {
                        let v = col.get(i);
                        if acc.min.as_ref().is_none_or(|m| v.total_cmp(m).is_lt()) {
                            acc.min = Some(v);
                        }
                    }
                    AggFunc::Max => {
                        let v = col.get(i);
                        if acc.max.as_ref().is_none_or(|m| v.total_cmp(m).is_gt()) {
                            acc.max = Some(v);
                        }
                    }
                    AggFunc::Count | AggFunc::CountStar => {}
                }
            }
        }
    }
    out
}

/// Build the output relation from finished group states. `rep` holds one
/// representative row index (into `r`) per group.
pub(super) fn finalize(
    r: &Relation,
    group_by: &[&str],
    aggs: &[AggSpec],
    rep: &[usize],
    accs: &[Vec<Acc>],
) -> Result<Relation, RelationError> {
    // output schema: group-by attrs followed by aggregate outputs
    let mut attrs: Vec<Attribute> = Vec::with_capacity(group_by.len() + aggs.len());
    for n in group_by {
        attrs.push(r.schema().attribute(n)?.clone());
    }
    for spec in aggs {
        let dt = output_type(spec, r)?;
        attrs.push(Attribute::new(spec.output.clone(), dt));
    }
    let schema = Schema::new(attrs)?;

    // group-by columns: gather representative rows
    let group_cols = r.columns_of(group_by)?;
    let mut columns: Vec<Column> = group_cols.iter().map(|c| c.take(rep)).collect();
    // aggregate columns
    for (k, spec) in aggs.iter().enumerate() {
        let dt = output_type(spec, r)?;
        let vals: Vec<Value> = accs
            .iter()
            .map(|group| finish(&group[k], spec, dt))
            .collect();
        columns.push(Column::from_values_typed(dt, &vals)?);
    }
    Relation::new(schema, columns)
}

/// Resolve the aggregate input columns of `r` (None for `COUNT(*)`).
pub(super) fn resolve_agg_cols<'a>(
    r: &'a Relation,
    aggs: &[AggSpec],
) -> Result<Vec<Option<&'a Column>>, RelationError> {
    aggs.iter()
        .map(|s| s.input.as_deref().map(|n| r.column(n)).transpose())
        .collect()
}

/// ϑ: group `r` by `group_by` and compute the aggregates. With an empty
/// `group_by` the whole relation is one group (one output row, even when the
/// input is empty — SQL semantics).
pub fn aggregate(
    r: &Relation,
    group_by: &[&str],
    aggs: &[AggSpec],
) -> Result<Relation, RelationError> {
    validate_aggs(r, aggs)?;
    let group_cols = r.columns_of(group_by)?;
    let agg_cols = resolve_agg_cols(r, aggs)?;
    let partial = accumulate(
        &group_cols,
        &agg_cols,
        aggs,
        0..r.len(),
        group_by.is_empty(),
    );
    finalize(r, group_by, aggs, &partial.rep, &partial.accs)
}

fn value_f64(col: &Column, i: usize) -> f64 {
    match col.accessor() {
        ColumnAccessor::Int(v) => v.get(i) as f64,
        ColumnAccessor::Float(v) => v.get(i),
        _ => unreachable!("checked numeric"),
    }
}

/// Visit the values of `r` restricted to `range` with their multiplicity:
/// a run overlapping the range is reported once with its overlap length.
fn for_runs_in<T: RleValue>(
    r: &Rle<T>,
    range: std::ops::Range<usize>,
    mut f: impl FnMut(T, usize),
) {
    let mut pos = 0usize;
    for seg in r.segs() {
        let seg_len = match seg {
            Seg::Run { len, .. } => *len,
            Seg::Dense(v) => v.len(),
        };
        let (s, e) = (pos.max(range.start), (pos + seg_len).min(range.end));
        if e > s {
            match seg {
                Seg::Run { value, .. } => f(*value, e - s),
                Seg::Dense(v) => {
                    for i in s..e {
                        f(v[i - pos], 1);
                    }
                }
            }
        }
        pos += seg_len;
        if pos >= range.end {
            break;
        }
    }
}

/// Fold one aggregate over `range` of its input column for the single
/// global group. Null-free RLE inputs fold run-at-a-time; everything else
/// reads through the accessors row-at-a-time.
fn accumulate_global(
    acc: &mut Acc,
    spec: &AggSpec,
    col: Option<&Column>,
    range: std::ops::Range<usize>,
) {
    acc.count += range.len() as u64;
    let Some(col) = col else { return };
    let needs_minmax = matches!(spec.func, AggFunc::Min | AggFunc::Max);
    let needs_sum = matches!(spec.func, AggFunc::Sum | AggFunc::Avg);
    if !col.has_nulls() {
        match col.accessor() {
            ColumnAccessor::Int(v) if v.rle().is_some() => {
                let r = v.rle().expect("probed");
                acc.count_nonnull += range.len() as u64;
                for_runs_in(r, range, |x, mult| {
                    if needs_sum {
                        acc.sum += x as f64 * mult as f64;
                    }
                    if needs_minmax {
                        observe_minmax(acc, Value::Int(x));
                    }
                });
                return;
            }
            ColumnAccessor::Float(v) if v.rle().is_some() => {
                let r = v.rle().expect("probed");
                acc.count_nonnull += range.len() as u64;
                for_runs_in(r, range, |x, mult| {
                    if needs_sum {
                        acc.sum += x * mult as f64;
                    }
                    if needs_minmax {
                        observe_minmax(acc, Value::Float(x));
                    }
                });
                return;
            }
            _ => {}
        }
    }
    for i in range {
        if col.is_null(i) {
            continue;
        }
        acc.count_nonnull += 1;
        if needs_sum {
            acc.sum += value_f64(col, i);
        }
        if needs_minmax {
            observe_minmax(acc, col.get(i));
        }
    }
}

/// Fold one observed value into the accumulator's min/max slots.
fn observe_minmax(acc: &mut Acc, v: Value) {
    if acc.min.as_ref().is_none_or(|m| v.total_cmp(m).is_lt()) {
        acc.min = Some(v.clone());
    }
    if acc.max.as_ref().is_none_or(|m| v.total_cmp(m).is_gt()) {
        acc.max = Some(v);
    }
}

fn output_type(spec: &AggSpec, r: &Relation) -> Result<DataType, RelationError> {
    Ok(match spec.func {
        AggFunc::Count | AggFunc::CountStar => DataType::Int,
        AggFunc::Avg => DataType::Float,
        AggFunc::Sum => {
            let input = spec.input.as_deref().expect("checked");
            match r.schema().attribute(input)?.dtype() {
                DataType::Int => DataType::Int,
                _ => DataType::Float,
            }
        }
        AggFunc::Min | AggFunc::Max => {
            let input = spec
                .input
                .as_deref()
                .ok_or_else(|| RelationError::Expression("MIN/MAX require an input".to_string()))?;
            r.schema().attribute(input)?.dtype()
        }
    })
}

fn finish(acc: &Acc, spec: &AggSpec, dt: DataType) -> Value {
    match spec.func {
        AggFunc::CountStar => Value::Int(acc.count as i64),
        AggFunc::Count => Value::Int(acc.count_nonnull as i64),
        AggFunc::Sum => {
            if acc.count_nonnull == 0 {
                Value::Null
            } else if dt == DataType::Int {
                Value::Int(acc.sum as i64)
            } else {
                Value::Float(acc.sum)
            }
        }
        AggFunc::Avg => {
            if acc.count_nonnull == 0 {
                Value::Null
            } else {
                Value::Float(acc.sum / acc.count_nonnull as f64)
            }
        }
        AggFunc::Min => acc.min.clone().unwrap_or(Value::Null),
        AggFunc::Max => acc.max.clone().unwrap_or(Value::Null),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::RelationBuilder;

    fn trips() -> Relation {
        RelationBuilder::new()
            .column("station", vec!["a", "a", "b", "b", "b"])
            .column("dur", vec![10.0f64, 20.0, 5.0, 7.0, 9.0])
            .build()
            .unwrap()
    }

    #[test]
    fn grouped_avg_count() {
        let out = aggregate(
            &trips(),
            &["station"],
            &[AggSpec::avg("dur", "avg_dur"), AggSpec::count_star("n")],
        )
        .unwrap();
        assert_eq!(out.len(), 2);
        // first-seen group order: a then b
        assert_eq!(out.cell(0, "station").unwrap(), Value::from("a"));
        assert_eq!(out.cell(0, "avg_dur").unwrap(), Value::Float(15.0));
        assert_eq!(out.cell(1, "n").unwrap(), Value::Int(3));
    }

    #[test]
    fn global_aggregate_single_row() {
        let out = aggregate(&trips(), &[], &[AggSpec::count_star("M")]).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.cell(0, "M").unwrap(), Value::Int(5));
    }

    #[test]
    fn global_aggregate_on_empty_relation() {
        let empty = trips().take(&[]);
        let out = aggregate(
            &empty,
            &[],
            &[AggSpec::count_star("M"), AggSpec::sum("dur", "s")],
        )
        .unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.cell(0, "M").unwrap(), Value::Int(0));
        assert_eq!(out.cell(0, "s").unwrap(), Value::Null);
    }

    #[test]
    fn grouped_on_empty_relation_is_empty() {
        let empty = trips().take(&[]);
        let out = aggregate(&empty, &["station"], &[AggSpec::count_star("n")]).unwrap();
        assert_eq!(out.len(), 0);
    }

    #[test]
    fn min_max_on_strings() {
        let out = aggregate(
            &trips(),
            &[],
            &[
                AggSpec::new(AggFunc::Min, Some("station"), "lo"),
                AggSpec::new(AggFunc::Max, Some("station"), "hi"),
            ],
        )
        .unwrap();
        assert_eq!(out.cell(0, "lo").unwrap(), Value::from("a"));
        assert_eq!(out.cell(0, "hi").unwrap(), Value::from("b"));
    }

    #[test]
    fn count_skips_nulls_count_star_does_not() {
        let r = Relation::from_rows(
            Schema::from_pairs(&[("x", DataType::Int)]).unwrap(),
            &[vec![Value::Int(1)], vec![Value::Null], vec![Value::Int(3)]],
        )
        .unwrap();
        let out = aggregate(
            &r,
            &[],
            &[
                AggSpec::new(AggFunc::Count, Some("x"), "c"),
                AggSpec::count_star("cs"),
                AggSpec::avg("x", "a"),
            ],
        )
        .unwrap();
        assert_eq!(out.cell(0, "c").unwrap(), Value::Int(2));
        assert_eq!(out.cell(0, "cs").unwrap(), Value::Int(3));
        assert_eq!(out.cell(0, "a").unwrap(), Value::Float(2.0));
    }

    #[test]
    fn sum_of_ints_stays_int() {
        let r = RelationBuilder::new()
            .column("x", vec![1i64, 2, 3])
            .build()
            .unwrap();
        let out = aggregate(&r, &[], &[AggSpec::sum("x", "s")]).unwrap();
        assert_eq!(out.cell(0, "s").unwrap(), Value::Int(6));
    }

    #[test]
    fn avg_over_strings_rejected() {
        assert!(aggregate(&trips(), &[], &[AggSpec::avg("station", "a")]).is_err());
    }

    #[test]
    fn int_sum_finish_widens_back() {
        // regression: Acc accumulates f64; int SUM output must be Int typed
        let r = RelationBuilder::new()
            .column("x", vec![1i64, 2])
            .build()
            .unwrap();
        let out = aggregate(&r, &[], &[AggSpec::sum("x", "s")]).unwrap();
        assert_eq!(out.schema().attribute("s").unwrap().dtype(), DataType::Int);
    }
}
