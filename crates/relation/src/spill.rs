//! Out-of-core spill manager: temp-file lifecycle plus a chunked columnar
//! serialization of relations, used by the grace hash join, the external
//! sort, and the spilling aggregate (see [`crate::algebra`]'s external
//! operators).
//!
//! ## File format
//!
//! A spill file is a sequence of self-describing **chunks**. Each chunk is
//! one materialized slice of a relation:
//!
//! ```text
//! chunk := rows:u64  cols:u64  column*
//! column := tag:u8  has_nulls:u8  payload  [null-bitmap]
//! ```
//!
//! Payloads are little-endian fixed-width vectors for `Int`/`Float`
//! (8 bytes), `Date` (4 bytes) and `Bool` (1 byte); strings are
//! length-prefixed (`u32` + UTF-8 bytes). The null bitmap, when present,
//! is `ceil(rows/8)` packed bytes. Column order and attribute names come
//! from the schema the reader supplies — the file stores only typed data,
//! which keeps partitions of one relation byte-compatible with each other.
//!
//! ## Lifecycle and governance
//!
//! Files live in the system temp directory and are **removed on `Drop`**,
//! including every error path — a query that trips mid-spill releases its
//! disk as the operator's `SpillFile`s unwind. [`live_spill_files`] counts
//! files currently on disk so tests can assert no orphans remain.
//!
//! Every chunk write polls the active [`QueryGuard`](crate::par::QueryGuard)
//! (so cancellation and deadlines stop a spilling query within one chunk's
//! work), runs the spill-I/O fault hook (`RMA_FAULT=io@N`), and records the
//! bytes written through [`QueryGuard::record_spill`](crate::par::QueryGuard::record_spill).
//! Spilled bytes are *disk* footprint: they are never charged against the
//! memory budget — that is the whole point of spilling.

use crate::error::RelationError;
use crate::par::current_guard;
use crate::relation::Relation;
use crate::schema::Schema;
use rma_storage::{Bitmap, Column, ColumnData, Dict, Packed, Rle, Seg};
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Rows per serialized chunk: large enough to amortize the per-chunk
/// header and syscalls, small enough that one chunk's materialization stays
/// a fraction of any realistic budget.
pub const SPILL_CHUNK_ROWS: usize = 16 * 1024;

/// Live spill files on disk (created minus removed). The fault-injection
/// and governor tests assert this returns to its baseline after every
/// query — spilling must never leak temp files, even on error paths.
static LIVE_FILES: AtomicUsize = AtomicUsize::new(0);

/// Monotonic id so concurrent spill files never collide.
static NEXT_ID: AtomicU64 = AtomicU64::new(0);

/// Spill files currently on disk, process-wide.
pub fn live_spill_files() -> usize {
    LIVE_FILES.load(Ordering::SeqCst)
}

fn io_err(e: std::io::Error) -> RelationError {
    RelationError::SpillIo(e.to_string())
}

/// One temp file of chunked columnar rows. Created empty, appended to
/// chunk-by-chunk, then read back either wholesale ([`SpillFile::read_all`])
/// or streamed ([`SpillFile::reader`]). Removed from disk on `Drop`.
#[derive(Debug)]
pub struct SpillFile {
    path: PathBuf,
    writer: Option<BufWriter<File>>,
    rows: usize,
    bytes: u64,
    chunks: u64,
}

impl SpillFile {
    /// Create an empty spill file in the system temp directory.
    pub fn create() -> Result<Self, RelationError> {
        let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!("rma-spill-{}-{id}.col", std::process::id()));
        let file = File::create(&path).map_err(io_err)?;
        LIVE_FILES.fetch_add(1, Ordering::SeqCst);
        Ok(SpillFile {
            path,
            writer: Some(BufWriter::new(file)),
            rows: 0,
            bytes: 0,
            chunks: 0,
        })
    }

    /// Rows appended so far.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Serialized bytes written so far — the partition's disk footprint,
    /// also the operator's estimate of its in-memory size when read back.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Append one chunk (a view is materialized first). Polls the active
    /// guard — a cancelled or expired query stops here, and the armed
    /// spill-I/O fault (`RMA_FAULT=io@N`) fails the matching write with
    /// [`RelationError::SpillIo`]. Records bytes (and, on the first chunk,
    /// one partition) on the guard's spill counters.
    pub fn append(&mut self, chunk: &Relation) -> Result<(), RelationError> {
        let guard = current_guard();
        if let Some(g) = &guard {
            g.check()?;
            if g.fault_spill_write() {
                return Err(RelationError::SpillIo(
                    "injected spill I/O fault".to_string(),
                ));
            }
        }
        let m = chunk.materialize();
        let buf = encode_chunk(&m);
        let w = self
            .writer
            .as_mut()
            .ok_or_else(|| RelationError::SpillIo("spill file already finished".to_string()))?;
        w.write_all(&buf).map_err(io_err)?;
        // flush per chunk so readers never see a short file — chunks are
        // large, so the buffered tail is noise
        w.flush().map_err(io_err)?;
        if let Some(g) = &guard {
            g.record_spill(buf.len() as u64, u64::from(self.chunks == 0));
        }
        self.bytes += buf.len() as u64;
        self.rows += m.len();
        self.chunks += 1;
        Ok(())
    }

    /// Flush and close the write handle. Idempotent; reading does not
    /// require it, but operators call it at the end of their write phase
    /// so buffered bytes hit the disk before the merge/probe phase.
    pub fn finish(&mut self) -> Result<(), RelationError> {
        if let Some(mut w) = self.writer.take() {
            w.flush().map_err(io_err)?;
        }
        Ok(())
    }

    /// Stream the chunks back. The supplied schema names and types the
    /// columns (it must be the schema of the relation the chunks came
    /// from).
    pub fn reader(&self, schema: &Schema) -> Result<SpillReader, RelationError> {
        let file = File::open(&self.path).map_err(io_err)?;
        Ok(SpillReader {
            inner: BufReader::new(file),
            schema: schema.clone(),
            chunks_left: self.chunks,
        })
    }

    /// Read the whole file back as one relation (grace-join partitions are
    /// consumed wholesale; runs of the external sort stream instead).
    pub fn read_all(&self, schema: &Schema) -> Result<Relation, RelationError> {
        let mut r = self.reader(schema)?;
        let mut parts = Vec::new();
        while let Some(chunk) = r.next_chunk()? {
            parts.push(chunk);
        }
        if parts.is_empty() {
            return empty_relation(schema);
        }
        Relation::concat(&parts)
    }
}

impl Drop for SpillFile {
    fn drop(&mut self) {
        self.writer = None; // close before unlink (Windows-style hygiene)
        let _ = std::fs::remove_file(&self.path);
        LIVE_FILES.fetch_sub(1, Ordering::SeqCst);
    }
}

/// An empty relation with the given schema.
fn empty_relation(schema: &Schema) -> Result<Relation, RelationError> {
    let cols = schema
        .attributes()
        .iter()
        .map(|a| Column::new(ColumnData::empty(a.dtype())))
        .collect();
    Relation::new(schema.clone(), cols)
}

/// Chunk-at-a-time reader over one spill file.
#[derive(Debug)]
pub struct SpillReader {
    inner: BufReader<File>,
    schema: Schema,
    chunks_left: u64,
}

impl SpillReader {
    /// The next chunk, or `None` after the last. Polls the active guard so
    /// cancellation during the read-back (merge/probe) phase surfaces
    /// within one chunk's work.
    pub fn next_chunk(&mut self) -> Result<Option<Relation>, RelationError> {
        if self.chunks_left == 0 {
            return Ok(None);
        }
        if let Some(g) = current_guard() {
            g.check()?;
        }
        self.chunks_left -= 1;
        let chunk = decode_chunk(&mut self.inner, &self.schema)?;
        Ok(Some(chunk))
    }
}

// ---------------------------------------------------------------------
// chunk encoding
// ---------------------------------------------------------------------

const TAG_INT: u8 = 0;
const TAG_FLOAT: u8 = 1;
const TAG_STR: u8 = 2;
const TAG_BOOL: u8 = 3;
const TAG_DATE: u8 = 4;
// encoded forms spill as-is: compressed on disk, compressed when read back
const TAG_RLE_INT: u8 = 5;
const TAG_RLE_FLOAT: u8 = 6;
const TAG_DICT_STR: u8 = 7;
const TAG_PACKED_INT: u8 = 8;

fn encode_chunk(r: &Relation) -> Vec<u8> {
    let rows = r.len();
    let cols = r.base_columns();
    // rough pre-size: fixed-width cells + headers
    let mut buf = Vec::with_capacity(16 + cols.len() * (2 + rows * 8));
    buf.extend_from_slice(&(rows as u64).to_le_bytes());
    buf.extend_from_slice(&(cols.len() as u64).to_le_bytes());
    for c in cols {
        encode_column(&mut buf, c, rows);
    }
    buf
}

fn push_str(buf: &mut Vec<u8>, s: &str) {
    buf.extend_from_slice(&(s.len() as u32).to_le_bytes());
    buf.extend_from_slice(s.as_bytes());
}

fn encode_rle<T: Copy>(buf: &mut Vec<u8>, segs: &[Seg<T>], cell: impl Fn(&mut Vec<u8>, T)) {
    buf.extend_from_slice(&(segs.len() as u64).to_le_bytes());
    for s in segs {
        match s {
            Seg::Run { value, len } => {
                buf.push(0);
                cell(buf, *value);
                buf.extend_from_slice(&(*len as u64).to_le_bytes());
            }
            Seg::Dense(v) => {
                buf.push(1);
                buf.extend_from_slice(&(v.len() as u64).to_le_bytes());
                for &x in v {
                    cell(buf, x);
                }
            }
        }
    }
}

fn encode_column(buf: &mut Vec<u8>, c: &Column, rows: usize) {
    let has_nulls = c.has_nulls();
    match c.raw() {
        // encoded columns spill in their physical form — no decode sink,
        // and the compression carries through to disk
        ColumnData::RleInt(r) => {
            buf.push(TAG_RLE_INT);
            buf.push(u8::from(has_nulls));
            encode_rle(buf, r.segs(), |b, x: i64| {
                b.extend_from_slice(&x.to_le_bytes())
            });
        }
        ColumnData::RleFloat(r) => {
            buf.push(TAG_RLE_FLOAT);
            buf.push(u8::from(has_nulls));
            encode_rle(buf, r.segs(), |b, x: f64| {
                b.extend_from_slice(&x.to_le_bytes())
            });
        }
        ColumnData::DictStr(d) => {
            buf.push(TAG_DICT_STR);
            buf.push(u8::from(has_nulls));
            buf.extend_from_slice(&(d.values().len() as u64).to_le_bytes());
            for s in d.values().iter() {
                push_str(buf, s);
            }
            for &code in d.codes() {
                buf.extend_from_slice(&code.to_le_bytes());
            }
        }
        ColumnData::PackedInt(p) => {
            buf.push(TAG_PACKED_INT);
            buf.push(u8::from(has_nulls));
            buf.extend_from_slice(&p.min().to_le_bytes());
            buf.extend_from_slice(&p.width().to_le_bytes());
            buf.extend_from_slice(&(p.words().len() as u64).to_le_bytes());
            for w in p.words() {
                buf.extend_from_slice(&w.to_le_bytes());
            }
        }
        ColumnData::Int(v) => {
            buf.push(TAG_INT);
            buf.push(u8::from(has_nulls));
            for x in v {
                buf.extend_from_slice(&x.to_le_bytes());
            }
        }
        ColumnData::Float(v) => {
            buf.push(TAG_FLOAT);
            buf.push(u8::from(has_nulls));
            for x in v {
                buf.extend_from_slice(&x.to_le_bytes());
            }
        }
        ColumnData::Str(v) => {
            buf.push(TAG_STR);
            buf.push(u8::from(has_nulls));
            for s in v {
                push_str(buf, s);
            }
        }
        ColumnData::Bool(v) => {
            buf.push(TAG_BOOL);
            buf.push(u8::from(has_nulls));
            for &x in v {
                buf.push(u8::from(x));
            }
        }
        ColumnData::Date(v) => {
            buf.push(TAG_DATE);
            buf.push(u8::from(has_nulls));
            for x in v {
                buf.extend_from_slice(&x.to_le_bytes());
            }
        }
        // an encoding this writer doesn't know: fall back to the decoded
        // plain form (an explicit sink) rather than corrupt the file
        _ => {
            let plain = match c.nulls() {
                Some(b) => Column::with_nulls(c.data().clone(), b.clone())
                    .expect("decoded data matches bitmap length"),
                None => Column::new(c.data().clone()),
            };
            return encode_column(buf, &plain, rows);
        }
    }
    if has_nulls {
        // pack the bitmap LSB-first, 8 rows per byte
        let mut byte = 0u8;
        let mut filled = 0u8;
        for i in 0..rows {
            if c.is_null(i) {
                byte |= 1 << filled;
            }
            filled += 1;
            if filled == 8 {
                buf.push(byte);
                byte = 0;
                filled = 0;
            }
        }
        if filled > 0 {
            buf.push(byte);
        }
    }
}

fn read_exact(r: &mut impl Read, n: usize) -> Result<Vec<u8>, RelationError> {
    let mut buf = vec![0u8; n];
    r.read_exact(&mut buf).map_err(io_err)?;
    Ok(buf)
}

fn read_u64(r: &mut impl Read) -> Result<u64, RelationError> {
    let b = read_exact(r, 8)?;
    Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
}

fn read_str(r: &mut impl Read) -> Result<String, RelationError> {
    let len = u32::from_le_bytes(read_exact(r, 4)?.try_into().expect("4 bytes")) as usize;
    let bytes = read_exact(r, len)?;
    String::from_utf8(bytes)
        .map_err(|e| RelationError::SpillIo(format!("corrupt spill string: {e}")))
}

fn decode_rle<T: rma_storage::encoding::RleValue>(
    r: &mut impl Read,
    rows: usize,
    cell: impl Fn(Vec<u8>) -> T,
) -> Result<Rle<T>, RelationError> {
    let nsegs = read_u64(r)? as usize;
    let mut segs = Vec::with_capacity(nsegs);
    let mut total = 0usize;
    for _ in 0..nsegs {
        let kind = read_exact(r, 1)?[0];
        match kind {
            0 => {
                let value = cell(read_exact(r, 8)?);
                let len = read_u64(r)? as usize;
                total += len;
                segs.push(Seg::Run { value, len });
            }
            1 => {
                let n = read_u64(r)? as usize;
                if n > rows {
                    return Err(RelationError::SpillIo(
                        "corrupt spill chunk: RLE dense segment too long".to_string(),
                    ));
                }
                let mut v = Vec::with_capacity(n);
                for _ in 0..n {
                    v.push(cell(read_exact(r, 8)?));
                }
                total += n;
                segs.push(Seg::Dense(v));
            }
            other => {
                return Err(RelationError::SpillIo(format!(
                    "corrupt spill chunk: unknown RLE segment kind {other}"
                )))
            }
        }
    }
    if total != rows {
        return Err(RelationError::SpillIo(format!(
            "corrupt spill chunk: RLE rows {total}, chunk has {rows}"
        )));
    }
    Ok(Rle::from_segs(segs, rows))
}

fn decode_chunk(r: &mut impl Read, schema: &Schema) -> Result<Relation, RelationError> {
    let rows = read_u64(r)? as usize;
    let ncols = read_u64(r)? as usize;
    if ncols != schema.len() {
        return Err(RelationError::SpillIo(format!(
            "corrupt spill chunk: {ncols} columns, schema has {}",
            schema.len()
        )));
    }
    let mut cols = Vec::with_capacity(ncols);
    for _ in 0..ncols {
        cols.push(decode_column(r, rows)?);
    }
    Relation::new(schema.clone(), cols)
}

fn decode_column(r: &mut impl Read, rows: usize) -> Result<Column, RelationError> {
    let head = read_exact(r, 2)?;
    let (tag, has_nulls) = (head[0], head[1] != 0);
    let data =
        match tag {
            TAG_INT => {
                let raw = read_exact(r, rows * 8)?;
                ColumnData::Int(
                    raw.chunks_exact(8)
                        .map(|b| i64::from_le_bytes(b.try_into().expect("8 bytes")))
                        .collect(),
                )
            }
            TAG_FLOAT => {
                let raw = read_exact(r, rows * 8)?;
                ColumnData::Float(
                    raw.chunks_exact(8)
                        .map(|b| f64::from_le_bytes(b.try_into().expect("8 bytes")))
                        .collect(),
                )
            }
            TAG_STR => {
                let mut v = Vec::with_capacity(rows);
                for _ in 0..rows {
                    let len =
                        u32::from_le_bytes(read_exact(r, 4)?.try_into().expect("4 bytes")) as usize;
                    let bytes = read_exact(r, len)?;
                    v.push(String::from_utf8(bytes).map_err(|e| {
                        RelationError::SpillIo(format!("corrupt spill string: {e}"))
                    })?);
                }
                ColumnData::Str(v)
            }
            TAG_BOOL => {
                let raw = read_exact(r, rows)?;
                ColumnData::Bool(raw.into_iter().map(|b| b != 0).collect())
            }
            TAG_DATE => {
                let raw = read_exact(r, rows * 4)?;
                ColumnData::Date(
                    raw.chunks_exact(4)
                        .map(|b| i32::from_le_bytes(b.try_into().expect("4 bytes")))
                        .collect(),
                )
            }
            TAG_RLE_INT => ColumnData::RleInt(decode_rle(r, rows, |b| {
                i64::from_le_bytes(b.try_into().expect("8 bytes"))
            })?),
            TAG_RLE_FLOAT => ColumnData::RleFloat(decode_rle(r, rows, |b| {
                f64::from_le_bytes(b.try_into().expect("8 bytes"))
            })?),
            TAG_DICT_STR => {
                let ntable = read_u64(r)? as usize;
                let mut table = Vec::with_capacity(ntable);
                for _ in 0..ntable {
                    table.push(read_str(r)?);
                }
                let raw = read_exact(r, rows * 4)?;
                let codes: Vec<u32> = raw
                    .chunks_exact(4)
                    .map(|b| u32::from_le_bytes(b.try_into().expect("4 bytes")))
                    .collect();
                if codes.iter().any(|&c| (c as usize) >= ntable.max(1)) {
                    return Err(RelationError::SpillIo(
                        "corrupt spill chunk: dictionary code out of range".to_string(),
                    ));
                }
                ColumnData::DictStr(Dict::from_parts(std::sync::Arc::new(table), codes))
            }
            TAG_PACKED_INT => {
                let min = i64::from_le_bytes(read_exact(r, 8)?.try_into().expect("8 bytes"));
                let width = u32::from_le_bytes(read_exact(r, 4)?.try_into().expect("4 bytes"));
                let nwords = read_u64(r)? as usize;
                if width >= 64 || (nwords as u64) * 64 < rows as u64 * u64::from(width) {
                    return Err(RelationError::SpillIo(
                        "corrupt spill chunk: bad packed geometry".to_string(),
                    ));
                }
                let raw = read_exact(r, nwords * 8)?;
                let words: Vec<u64> = raw
                    .chunks_exact(8)
                    .map(|b| u64::from_le_bytes(b.try_into().expect("8 bytes")))
                    .collect();
                ColumnData::PackedInt(Packed::from_parts(min, width, rows, words))
            }
            other => {
                return Err(RelationError::SpillIo(format!(
                    "corrupt spill chunk: unknown column tag {other}"
                )))
            }
        };
    if !has_nulls {
        return Ok(Column::new(data));
    }
    let raw = read_exact(r, rows.div_ceil(8))?;
    let mut bitmap = Bitmap::new(rows);
    for i in 0..rows {
        if raw[i / 8] & (1 << (i % 8)) != 0 {
            bitmap.set(i);
        }
    }
    Ok(Column::with_nulls(data, bitmap)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::RelationBuilder;
    use rma_storage::DataType;

    fn mixed(n: usize) -> Relation {
        let ints: Vec<i64> = (0..n as i64).collect();
        let floats: Vec<f64> = (0..n).map(|i| i as f64 / 3.0).collect();
        let strs: Vec<String> = (0..n).map(|i| format!("s{i}")).collect();
        let base = RelationBuilder::new()
            .name("mixed")
            .column("i", ints)
            .column("f", floats)
            .column("s", strs)
            .build()
            .unwrap();
        // add a nullable column
        let vals: Vec<i64> = (0..n as i64).collect();
        let mask: Vec<bool> = (0..n).map(|i| i % 3 == 0).collect();
        let nullable =
            Column::with_nulls(ColumnData::Int(vals), Bitmap::from_bools(&mask)).unwrap();
        let mut attrs = base.schema().attributes().to_vec();
        attrs.push(crate::schema::Attribute::new("v", DataType::Int));
        let mut cols = base.columns().to_vec();
        cols.push(nullable);
        Relation::new(Schema::new(attrs).unwrap(), cols).unwrap()
    }

    #[test]
    fn roundtrip_whole_and_chunked() {
        let r = mixed(1000);
        let baseline = live_spill_files();
        {
            let mut f = SpillFile::create().unwrap();
            f.append(&r.slice(0..400)).unwrap();
            f.append(&r.slice(400..1000)).unwrap();
            f.finish().unwrap();
            assert_eq!(f.rows(), 1000);
            assert!(f.bytes() > 0);
            let back = f.read_all(r.schema()).unwrap();
            assert_eq!(back, r.materialize());
            // chunked read sees the same rows in order
            let mut rd = f.reader(r.schema()).unwrap();
            let c1 = rd.next_chunk().unwrap().unwrap();
            assert_eq!(c1.len(), 400);
            let c2 = rd.next_chunk().unwrap().unwrap();
            assert_eq!(c2.len(), 600);
            assert!(rd.next_chunk().unwrap().is_none());
            assert_eq!(live_spill_files(), baseline + 1);
        }
        assert_eq!(live_spill_files(), baseline, "Drop must unlink the file");
    }

    #[test]
    fn roundtrip_of_a_view_materializes() {
        let r = mixed(100);
        let view = r.take(&[5, 3, 99, 0]);
        let mut f = SpillFile::create().unwrap();
        f.append(&view).unwrap();
        let back = f.read_all(view.schema()).unwrap();
        assert_eq!(back, view.materialize());
    }

    /// Encoded columns spill in their physical form and come back encoded:
    /// no decode sink on the write side, and the reader reconstructs the
    /// same runs/codes/packing rather than plain vectors.
    #[test]
    fn roundtrip_preserves_encodings_without_sinking() {
        use rma_storage::Encoding;
        let n = 4096usize;
        let r = RelationBuilder::new()
            .column(
                "region",
                (0..n)
                    .map(|i| ["aa", "bb", "cc"][(i / 512) % 3])
                    .collect::<Vec<&str>>(),
            )
            .column(
                "status",
                (0..n as i64).map(|i| i / 256).collect::<Vec<i64>>(),
            )
            .column("qty", (0..n as i64).map(|i| i % 100).collect::<Vec<i64>>())
            .column(
                "amount",
                (0..n).map(|i| ((i / 128) % 7) as f64).collect::<Vec<f64>>(),
            )
            .build()
            .unwrap()
            .encoded();
        let expect: Vec<Encoding> = r.columns().iter().map(|c| c.encoding()).collect();
        assert!(
            expect.iter().any(|e| *e != Encoding::Plain),
            "workload failed to encode: {expect:?}"
        );
        let sinks0 = rma_storage::decode_sink_events();
        let mut f = SpillFile::create().unwrap();
        // a compact chunk spills every physical form as-is; a sliced view
        // exercises the run/code slicing path on the way in
        f.append(&r).unwrap();
        f.append(&r.slice(0..300)).unwrap();
        f.finish().unwrap();
        let mut rd = f.reader(r.schema()).unwrap();
        let mut chunks = Vec::new();
        while let Some(c) = rd.next_chunk().unwrap() {
            chunks.push(c);
        }
        assert_eq!(
            rma_storage::decode_sink_events(),
            sinks0,
            "spilling encoded chunks must not force a decode"
        );
        assert_eq!(chunks.len(), 2);
        assert_eq!(chunks[0], r);
        assert_eq!(chunks[1], r.slice(0..300));
        let got: Vec<Encoding> = chunks[0].columns().iter().map(|c| c.encoding()).collect();
        assert_eq!(got, expect, "encodings must survive the disk round-trip");
    }

    #[test]
    fn empty_file_reads_empty_relation() {
        let r = mixed(4);
        let f = SpillFile::create().unwrap();
        let back = f.read_all(r.schema()).unwrap();
        assert_eq!(back.len(), 0);
        assert_eq!(back.schema(), r.schema());
    }
}
