//! Relation schemas: finite, ordered lists of named, typed attributes.

use crate::error::RelationError;
use rma_storage::DataType;
use std::fmt;

/// One attribute of a schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute {
    name: String,
    dtype: DataType,
}

impl Attribute {
    pub fn new(name: impl Into<String>, dtype: DataType) -> Self {
        Attribute {
            name: name.into(),
            dtype,
        }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn dtype(&self) -> DataType {
        self.dtype
    }
}

/// A finite, ordered set of attribute names with types (the paper's `R`).
///
/// Attribute names are unique within a schema; order is significant (the
/// paper's schema casts and concatenations rely on it).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    attributes: Vec<Attribute>,
}

impl Schema {
    /// Build a schema, rejecting duplicate attribute names.
    pub fn new(attributes: Vec<Attribute>) -> Result<Self, RelationError> {
        for (i, a) in attributes.iter().enumerate() {
            if attributes[..i].iter().any(|b| b.name == a.name) {
                return Err(RelationError::DuplicateAttribute(a.name.clone()));
            }
        }
        Ok(Schema { attributes })
    }

    /// Convenience constructor from `(name, type)` pairs.
    pub fn from_pairs(pairs: &[(&str, DataType)]) -> Result<Self, RelationError> {
        Self::new(pairs.iter().map(|(n, t)| Attribute::new(*n, *t)).collect())
    }

    pub fn len(&self) -> usize {
        self.attributes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.attributes.is_empty()
    }

    pub fn attributes(&self) -> &[Attribute] {
        &self.attributes
    }

    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.attributes.iter().map(|a| a.name.as_str())
    }

    /// Position of an attribute by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.attributes.iter().position(|a| a.name == name)
    }

    pub fn contains(&self, name: &str) -> bool {
        self.index_of(name).is_some()
    }

    pub fn attribute(&self, name: &str) -> Result<&Attribute, RelationError> {
        self.attributes
            .iter()
            .find(|a| a.name == name)
            .ok_or_else(|| RelationError::UnknownAttribute(name.to_string()))
    }

    /// The ordered subset of this schema with the given names (order taken
    /// from `names`, as in the paper's `U ⊆ R`).
    pub fn subset(&self, names: &[&str]) -> Result<Schema, RelationError> {
        let mut attrs = Vec::with_capacity(names.len());
        for n in names {
            attrs.push(self.attribute(n)?.clone());
        }
        Schema::new(attrs)
    }

    /// The complement `U̅ = R − U`, preserving this schema's order.
    pub fn complement(&self, names: &[&str]) -> Schema {
        Schema {
            attributes: self
                .attributes
                .iter()
                .filter(|a| !names.contains(&a.name.as_str()))
                .cloned()
                .collect(),
        }
    }

    /// Concatenate two schemas (`U ◦ V`), rejecting name collisions.
    pub fn concat(&self, other: &Schema) -> Result<Schema, RelationError> {
        let mut attrs = self.attributes.clone();
        attrs.extend(other.attributes.iter().cloned());
        Schema::new(attrs)
    }

    /// Union compatibility: same length, pairwise same types (names may
    /// differ — needed by `add`/`sub`/`emu` whose application schemas must be
    /// union compatible).
    pub fn union_compatible(&self, other: &Schema) -> bool {
        self.len() == other.len()
            && self
                .attributes
                .iter()
                .zip(&other.attributes)
                .all(|(a, b)| a.dtype == b.dtype)
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, a) in self.attributes.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} {}", a.name, a.dtype)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::from_pairs(&[
            ("T", DataType::Str),
            ("H", DataType::Float),
            ("W", DataType::Float),
        ])
        .unwrap()
    }

    #[test]
    fn duplicate_names_rejected() {
        assert!(matches!(
            Schema::from_pairs(&[("a", DataType::Int), ("a", DataType::Int)]),
            Err(RelationError::DuplicateAttribute(_))
        ));
    }

    #[test]
    fn subset_preserves_requested_order() {
        let s = schema().subset(&["W", "T"]).unwrap();
        let names: Vec<_> = s.names().collect();
        assert_eq!(names, vec!["W", "T"]);
    }

    #[test]
    fn subset_unknown_attribute() {
        assert!(schema().subset(&["X"]).is_err());
    }

    #[test]
    fn complement_preserves_schema_order() {
        let c = schema().complement(&["T"]);
        let names: Vec<_> = c.names().collect();
        assert_eq!(names, vec!["H", "W"]);
    }

    #[test]
    fn concat_rejects_collision() {
        let a = Schema::from_pairs(&[("x", DataType::Int)]).unwrap();
        let b = Schema::from_pairs(&[("x", DataType::Float)]).unwrap();
        assert!(a.concat(&b).is_err());
        let c = Schema::from_pairs(&[("y", DataType::Float)]).unwrap();
        assert_eq!(a.concat(&c).unwrap().len(), 2);
    }

    #[test]
    fn union_compatibility_ignores_names() {
        let a = Schema::from_pairs(&[("x", DataType::Float), ("y", DataType::Float)]).unwrap();
        let b = Schema::from_pairs(&[("p", DataType::Float), ("q", DataType::Float)]).unwrap();
        let c = Schema::from_pairs(&[("p", DataType::Float), ("q", DataType::Str)]).unwrap();
        assert!(a.union_compatible(&b));
        assert!(!a.union_compatible(&c));
    }

    #[test]
    fn display() {
        let s = Schema::from_pairs(&[("a", DataType::Int)]).unwrap();
        assert_eq!(s.to_string(), "(a INT)");
    }
}
