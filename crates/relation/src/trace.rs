//! Low-level span recording for the profiler: a process-global, opt-in
//! collector that operators and the worker pool write completed spans into.
//!
//! The design keeps the *disabled* hot path to a single relaxed atomic
//! load ([`enabled`]) and the *enabled* hot path allocation-free in the
//! steady state: a [`Span`] is `Copy` (operator names are `&'static str`),
//! and each recording thread appends to one of a fixed set of mutex-guarded
//! buffers selected by worker index, so concurrent workers rarely contend.
//!
//! Higher layers (`rma_core::trace`) own the user-facing API: they install
//! a [`TraceCollector`] for the duration of a profiled query, drain it, and
//! export the spans (e.g. as a Chrome-trace JSON for Perfetto). This module
//! deliberately knows nothing about queries or plans — only spans.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::Instant;

/// One completed, timed unit of work: an operator's morsel batch, a sort
/// run, a hash-join build, a pool job execution. All fields are plain data
/// so recording never allocates (buffer growth is amortised and bounded by
/// the number of spans).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Span {
    /// Operator or phase name (static so spans stay `Copy`).
    pub name: &'static str,
    /// Coarse category, e.g. `"exec"`, `"sort"`, `"join"`, `"pool"`.
    pub cat: &'static str,
    /// Worker index the span ran on (`0` = the submitting thread).
    pub worker: usize,
    /// Start time in nanoseconds since the collector's epoch.
    pub start_ns: u64,
    /// Wall-clock duration in nanoseconds.
    pub dur_ns: u64,
    /// Rows the unit consumed (0 when not meaningful).
    pub rows_in: u64,
    /// Rows the unit produced (0 when not meaningful).
    pub rows_out: u64,
    /// Morsels processed inside the span (0 when not meaningful).
    pub morsels: u64,
}

/// How many independent span buffers a collector keeps. Workers hash into
/// buffers by index, so any pool size up to this records contention-free.
const BUFFERS: usize = 32;

/// A sink for spans recorded while it is [installed](install). One
/// collector corresponds to one profiled region (typically one query).
#[derive(Debug)]
pub struct TraceCollector {
    epoch: Instant,
    buffers: Vec<Mutex<Vec<Span>>>,
}

impl Default for TraceCollector {
    fn default() -> Self {
        TraceCollector::new()
    }
}

impl TraceCollector {
    /// A fresh collector whose epoch is "now".
    pub fn new() -> Self {
        TraceCollector {
            epoch: Instant::now(),
            buffers: (0..BUFFERS).map(|_| Mutex::new(Vec::new())).collect(),
        }
    }

    /// The collector's time origin ([`Span::start_ns`] is relative to it).
    pub fn epoch(&self) -> Instant {
        self.epoch
    }

    fn push(&self, worker: usize, span: Span) {
        let buf = &self.buffers[worker % BUFFERS];
        buf.lock().expect("trace buffer poisoned").push(span);
    }

    /// Remove and return every recorded span, ordered by start time.
    pub fn drain(&self) -> Vec<Span> {
        let mut out = Vec::new();
        for buf in &self.buffers {
            out.append(&mut buf.lock().expect("trace buffer poisoned"));
        }
        out.sort_by_key(|s| (s.start_ns, s.worker));
        out
    }
}

/// Fast-path flag mirroring "a collector is installed". Checked before
/// taking the `RwLock`, so untraced execution pays one relaxed load.
static ENABLED: AtomicBool = AtomicBool::new(false);

fn slot() -> &'static RwLock<Option<Arc<TraceCollector>>> {
    static SLOT: OnceLock<RwLock<Option<Arc<TraceCollector>>>> = OnceLock::new();
    SLOT.get_or_init(|| RwLock::new(None))
}

/// Is a collector installed? One relaxed atomic load — operators call this
/// (via [`clock`]) on every batch, traced or not.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Install `collector` as the process-global span sink (replacing any
/// previous one). Spans recorded from any thread land in it until
/// [`uninstall`].
pub fn install(collector: Arc<TraceCollector>) {
    *slot().write().expect("trace slot poisoned") = Some(collector);
    ENABLED.store(true, Ordering::SeqCst);
}

/// Remove the installed collector if it is `collector` (identity compare),
/// re-disabling the fast path. A different installed collector — another
/// profiled query started meanwhile — is left in place.
pub fn uninstall(collector: &Arc<TraceCollector>) {
    let mut slot = slot().write().expect("trace slot poisoned");
    if slot.as_ref().is_some_and(|cur| Arc::ptr_eq(cur, collector)) {
        *slot = None;
        ENABLED.store(false, Ordering::SeqCst);
    }
}

/// Start a span clock iff tracing is enabled. Returns `None` (one relaxed
/// load, no syscall) when disabled — thread the result into [`record`],
/// which is then a no-op.
#[inline]
pub fn clock() -> Option<Instant> {
    if enabled() {
        Some(Instant::now())
    } else {
        None
    }
}

/// Record a span started at `started` (from [`clock`]). No-op when
/// `started` is `None` or the collector was uninstalled meanwhile.
pub fn record(
    name: &'static str,
    cat: &'static str,
    worker: usize,
    started: Option<Instant>,
    rows_in: u64,
    rows_out: u64,
    morsels: u64,
) {
    let Some(started) = started else { return };
    let end = Instant::now();
    let guard = slot().read().expect("trace slot poisoned");
    let Some(collector) = guard.as_ref() else {
        return;
    };
    let start_ns = started
        .saturating_duration_since(collector.epoch)
        .as_nanos() as u64;
    let dur_ns = end.saturating_duration_since(started).as_nanos() as u64;
    collector.push(
        worker,
        Span {
            name,
            cat,
            worker,
            start_ns,
            dur_ns,
            rows_in,
            rows_out,
            morsels,
        },
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The collector slot is process-global, so tests that install and
    /// uninstall must not interleave.
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_recording_is_a_no_op() {
        let _s = serial();
        assert!(!enabled());
        assert!(clock().is_none());
        record("x", "test", 0, None, 1, 1, 1);
        // nothing to assert beyond "did not panic / did not need a sink"
    }

    #[test]
    fn spans_round_trip_through_the_collector() {
        let _s = serial();
        let c = Arc::new(TraceCollector::new());
        install(Arc::clone(&c));
        let t = clock();
        assert!(t.is_some());
        record("op.a", "test", 0, t, 10, 5, 2);
        record("op.b", "test", 3, clock(), 7, 7, 1);
        uninstall(&c);
        assert!(!enabled());
        let spans = c.drain();
        assert_eq!(spans.len(), 2);
        let a = spans.iter().find(|s| s.name == "op.a").unwrap();
        assert_eq!((a.rows_in, a.rows_out, a.morsels, a.worker), (10, 5, 2, 0));
        assert!(spans.iter().all(|s| s.cat == "test"));
        // drained: a second drain is empty
        assert!(c.drain().is_empty());
    }

    #[test]
    fn uninstall_ignores_a_superseded_collector() {
        let _s = serial();
        let first = Arc::new(TraceCollector::new());
        let second = Arc::new(TraceCollector::new());
        install(Arc::clone(&first));
        install(Arc::clone(&second));
        uninstall(&first); // stale handle: must not evict `second`
        assert!(enabled());
        record("still.on", "test", 1, clock(), 0, 0, 0);
        uninstall(&second);
        assert!(!enabled());
        assert_eq!(second.drain().len(), 1);
        assert!(first.drain().is_empty());
    }
}
