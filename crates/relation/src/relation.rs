//! Relations: a schema plus one BAT per attribute.
//!
//! Following MonetDB, a relation is stored column-wise; all attribute
//! columns have equal length and row `i` across the columns is tuple `i`.
//! Relations carry an optional *name* which the RMA layer uses as the row
//! origin of shape-(1,1) operations (`det`, `rnk` — see Fig. 9 of the
//! paper).
//!
//! ## Late materialization
//!
//! A relation is either *compact* (each column holds exactly the visible
//! rows) or a *view*: `Arc`-shared base columns plus a [`SelVec`] naming
//! the visible rows. Row-local operators — [`Relation::filter`],
//! [`Relation::take`], [`Relation::slice`], projection — produce views in
//! O(result) index work with **zero column copying**; the copy happens once,
//! at a pipeline sink, via [`Relation::materialize`] (or transparently on
//! first use of the compacting [`Relation::columns`] accessor, which caches
//! the gathered columns). Code that is not view-aware therefore stays
//! correct: it simply pays the one gather a sink would pay anyway.

use crate::error::RelationError;
use crate::schema::{Attribute, Schema};
use crate::stats::Statistics;
use rma_storage::{is_key, sort_permutation, Column, SelVec, Value};
use std::fmt;
use std::sync::OnceLock;

/// A relation instance: compact columns, or a selection-vector view over
/// shared base columns.
#[derive(Debug)]
pub struct Relation {
    name: Option<String>,
    schema: Schema,
    /// Base columns. Compact relations: exactly the visible rows. Views:
    /// the (shared) base the selection vector indexes into.
    columns: Vec<Column>,
    /// `Some` marks a view; `None` marks a compact relation.
    sel: Option<SelVec>,
    /// Per-column lazily gathered visible columns of a view: the
    /// compacting accessors pay each column's gather once, and only for
    /// the columns actually read (a grouped aggregate over a wide view
    /// never touches the payload it ignores).
    compacted: Box<[OnceLock<Column>]>,
    /// The full compacted column vector, assembled (from the per-column
    /// cache, O(width) Arc clones) on first use of [`Relation::columns`].
    compacted_all: OnceLock<Vec<Column>>,
    /// Lazily computed table statistics ([`Relation::statistics`]); shared
    /// by clones once computed.
    stats: OnceLock<Statistics>,
}

/// One empty per-column cache slot per attribute.
fn fresh_cache(width: usize) -> Box<[OnceLock<Column>]> {
    (0..width).map(|_| OnceLock::new()).collect()
}

impl Clone for Relation {
    fn clone(&self) -> Self {
        let compacted = fresh_cache(self.columns.len());
        for (slot, src) in compacted.iter().zip(self.compacted.iter()) {
            if let Some(c) = src.get() {
                let _ = slot.set(c.clone());
            }
        }
        let compacted_all = OnceLock::new();
        if let Some(c) = self.compacted_all.get() {
            let _ = compacted_all.set(c.clone());
        }
        let stats = OnceLock::new();
        if let Some(s) = self.stats.get() {
            let _ = stats.set(s.clone());
        }
        Relation {
            name: self.name.clone(),
            schema: self.schema.clone(),
            columns: self.columns.clone(),
            sel: self.sel.clone(),
            compacted,
            compacted_all,
            stats,
        }
    }
}

/// Logical equality: same name, schema, and visible rows — a view and its
/// materialization compare equal.
impl PartialEq for Relation {
    fn eq(&self, other: &Relation) -> bool {
        self.name == other.name
            && self.schema == other.schema
            && self.len() == other.len()
            && self.columns() == other.columns()
    }
}

impl Relation {
    /// Build a relation from a schema and matching columns.
    pub fn new(schema: Schema, columns: Vec<Column>) -> Result<Self, RelationError> {
        if schema.len() != columns.len() {
            return Err(RelationError::ArityMismatch {
                expected: schema.len(),
                found: columns.len(),
            });
        }
        if let Some(first) = columns.first() {
            if columns.iter().any(|c| c.len() != first.len()) {
                return Err(RelationError::RaggedColumns);
            }
        }
        for (a, c) in schema.attributes().iter().zip(&columns) {
            if a.dtype() != c.data_type() {
                return Err(RelationError::SchemaTypeMismatch {
                    attribute: a.name().to_string(),
                });
            }
        }
        let compacted = fresh_cache(columns.len());
        Ok(Relation {
            name: None,
            schema,
            columns,
            sel: None,
            compacted,
            compacted_all: OnceLock::new(),
            stats: OnceLock::new(),
        })
    }

    /// An empty relation with the given schema.
    pub fn empty(schema: Schema) -> Self {
        let columns: Vec<Column> = schema
            .attributes()
            .iter()
            .map(|a| Column::new(rma_storage::ColumnData::empty(a.dtype())))
            .collect();
        let compacted = fresh_cache(columns.len());
        Relation {
            name: None,
            schema,
            columns,
            sel: None,
            compacted,
            compacted_all: OnceLock::new(),
            stats: OnceLock::new(),
        }
    }

    /// Internal view constructor: shared base columns + selection vector.
    /// Invariants (unchecked): `schema` matches `columns`, every index in
    /// `sel` is within the base length.
    pub(crate) fn from_view_parts(
        name: Option<String>,
        schema: Schema,
        columns: Vec<Column>,
        sel: Option<SelVec>,
    ) -> Relation {
        // an identity selection is just a compact relation
        let base_len = columns.first().map_or(0, Column::len);
        let sel = sel.filter(|s| !s.is_identity(base_len));
        let compacted = fresh_cache(columns.len());
        Relation {
            name,
            schema,
            columns,
            sel,
            compacted,
            compacted_all: OnceLock::new(),
            stats: OnceLock::new(),
        }
    }

    /// A view over this relation's base selecting `sel` (positions are
    /// composed when `self` is already a view).
    fn view(&self, sel: SelVec) -> Relation {
        Relation::from_view_parts(
            self.name.clone(),
            self.schema.clone(),
            self.columns.clone(),
            Some(sel),
        )
    }

    /// Build from rows of boxed values (test/edge convenience; bulk paths
    /// construct columns directly).
    pub fn from_rows(schema: Schema, rows: &[Vec<Value>]) -> Result<Self, RelationError> {
        let width = schema.len();
        for r in rows {
            if r.len() != width {
                return Err(RelationError::ArityMismatch {
                    expected: width,
                    found: r.len(),
                });
            }
        }
        let mut columns = Vec::with_capacity(width);
        for (j, attr) in schema.attributes().iter().enumerate() {
            let vals: Vec<Value> = rows.iter().map(|r| r[j].clone()).collect();
            columns.push(Column::from_values_typed(attr.dtype(), &vals)?);
        }
        Relation::new(schema, columns)
    }

    /// Set the relation name (used as the row origin of `det`/`rnk`).
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = Some(name.into());
        self
    }

    pub fn name(&self) -> Option<&str> {
        self.name.as_deref()
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of visible tuples `|r|`.
    pub fn len(&self) -> usize {
        if self.columns.is_empty() {
            return 0;
        }
        match &self.sel {
            Some(sel) => sel.len(),
            None => self.columns[0].len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Is this relation a selection-vector view (visible rows ≠ base rows)?
    pub fn is_view(&self) -> bool {
        self.sel.is_some()
    }

    /// The selection vector, when this relation is a view.
    pub fn sel(&self) -> Option<&SelVec> {
        self.sel.as_ref()
    }

    /// The shared base columns a view indexes into (equal to
    /// [`Relation::columns`] for compact relations). Base columns may be
    /// longer than [`Relation::len`]; index them through [`Relation::sel`].
    pub fn base_columns(&self) -> &[Column] {
        &self.columns
    }

    /// Number of rows in the base columns.
    pub fn base_len(&self) -> usize {
        self.columns.first().map_or(0, Column::len)
    }

    /// Base column of an attribute by name (not compacted — index it
    /// through [`Relation::sel`] / [`Relation::base_index`]).
    pub fn base_column(&self, name: &str) -> Result<&Column, RelationError> {
        let idx = self
            .schema
            .index_of(name)
            .ok_or_else(|| RelationError::UnknownAttribute(name.to_string()))?;
        Ok(&self.columns[idx])
    }

    /// The base row index behind visible position `i`.
    #[inline]
    pub fn base_index(&self, i: usize) -> usize {
        match &self.sel {
            Some(sel) => sel.get(i),
            None => i,
        }
    }

    /// Map visible positions to base indices as a selection vector —
    /// composing with this view's own selection, if any. `pos` must hold
    /// valid visible positions.
    pub fn compose_positions(&self, pos: &[usize]) -> SelVec {
        match &self.sel {
            Some(sel) => sel.compose(pos),
            None => SelVec::from_indices(pos.to_vec()),
        }
    }

    /// [`Relation::compose_positions`], consuming the position vector: a
    /// compact relation wraps it as-is, with no copy (the shape joins use
    /// — match lists are owned and huge).
    pub fn compose_owned(&self, pos: Vec<usize>) -> SelVec {
        match &self.sel {
            Some(sel) => sel.compose(&pos),
            None => SelVec::from_indices(pos),
        }
    }

    /// Compacted column `idx` of a view, gathered (and cached) on first
    /// use. Must only be called when `self.sel` is `Some`.
    fn compacted_col(&self, idx: usize) -> &Column {
        self.compacted[idx].get_or_init(|| {
            let sel = self
                .sel
                .as_ref()
                .expect("compacted_col called on a non-view");
            self.columns[idx].gather(sel)
        })
    }

    /// The visible columns, compacted. Compact relations return their
    /// columns directly; a view gathers (and caches) the selected rows of
    /// every column on first use — this is the implicit whole-width sink
    /// for code that is not view-aware.
    pub fn columns(&self) -> &[Column] {
        match &self.sel {
            None => &self.columns,
            Some(_) => self.compacted_all.get_or_init(|| {
                (0..self.columns.len())
                    .map(|j| self.compacted_col(j).clone())
                    .collect()
            }),
        }
    }

    /// Visible column of an attribute by name. On a view, only this
    /// column is gathered (then cached) — the other base columns are left
    /// untouched, so single-attribute consumers of a wide view never pay
    /// for the payload they ignore.
    pub fn column(&self, name: &str) -> Result<&Column, RelationError> {
        let idx = self
            .schema
            .index_of(name)
            .ok_or_else(|| RelationError::UnknownAttribute(name.to_string()))?;
        Ok(match &self.sel {
            None => &self.columns[idx],
            Some(_) => self.compacted_col(idx),
        })
    }

    /// An owned handle to one visible column: O(1) Arc clone on compact
    /// relations, a cached single-column gather on views — this is what
    /// expression evaluation uses to touch only referenced attributes.
    pub fn column_shared(&self, name: &str) -> Result<Column, RelationError> {
        self.column(name).cloned()
    }

    /// Columns of several attributes, in the requested order (compacted).
    pub fn columns_of(&self, names: &[&str]) -> Result<Vec<&Column>, RelationError> {
        names.iter().map(|n| self.column(n)).collect()
    }

    /// One cell. Reads through the selection vector — no compaction.
    pub fn cell(&self, row: usize, attr: &str) -> Result<Value, RelationError> {
        let idx = self
            .schema
            .index_of(attr)
            .ok_or_else(|| RelationError::UnknownAttribute(attr.to_string()))?;
        Ok(self.columns[idx].get(self.base_index(row)))
    }

    /// One tuple as boxed values.
    pub fn row(&self, i: usize) -> Vec<Value> {
        let b = self.base_index(i);
        self.columns.iter().map(|c| c.get(b)).collect()
    }

    /// Iterate tuples as boxed values (edge use; bulk code works on columns).
    pub fn rows(&self) -> impl Iterator<Item = Vec<Value>> + '_ {
        (0..self.len()).map(move |i| self.row(i))
    }

    /// Gather rows by (visible) index, preserving schema and name. Lazy:
    /// the result is a view sharing this relation's base columns; indices
    /// compose, so stacking `take`s never builds chains.
    pub fn take(&self, idx: &[usize]) -> Relation {
        self.view(self.compose_positions(idx))
    }

    /// The contiguous visible row range `range` (one morsel of a row-range
    /// partitioned scan), preserving schema and name. Lazy: a range over a
    /// compact relation or a range view stays a range — a morsel is two
    /// words, not a copy.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Relation {
        let sel = match &self.sel {
            None => SelVec::Range(range),
            Some(sel) => sel.slice(range),
        };
        self.view(sel)
    }

    /// Keep rows whose flag is set. Lazy: builds a selection vector, not
    /// new columns.
    pub fn filter(&self, keep: &[bool]) -> Relation {
        debug_assert_eq!(keep.len(), self.len());
        let sel = match &self.sel {
            Some(sel) => sel.compose_mask(keep),
            None => SelVec::all(self.len()).compose_mask(keep),
        };
        self.view(sel)
    }

    /// Compact this relation: gather the visible rows of every column into
    /// fresh (well, possibly shared — a compact relation just recounts its
    /// Arcs) columns and drop the selection vector. Pipeline sinks call
    /// this once; everything upstream stays zero-copy.
    pub fn materialize(&self) -> Relation {
        match &self.sel {
            None => self.clone(),
            Some(_) => {
                let columns = self.columns().to_vec();
                let compacted = fresh_cache(columns.len());
                Relation {
                    name: self.name.clone(),
                    schema: self.schema.clone(),
                    columns,
                    sel: None,
                    compacted,
                    compacted_all: OnceLock::new(),
                    stats: OnceLock::new(),
                }
            }
        }
    }

    /// Re-encode every column for storage: each column picks its best
    /// encoding (RLE / dictionary / bit-packing) from its statistics and
    /// keeps plain storage where compression does not pay
    /// ([`Column::encoded`]). Views are compacted first. This is the
    /// ingest-side encoding point — the serving catalog runs it when
    /// installing a table generation, so scans downstream read the
    /// compressed form.
    pub fn encoded(&self) -> Relation {
        let m = self.materialize();
        let stats = m.statistics();
        let columns: Vec<Column> = m
            .schema
            .names()
            .zip(m.columns.iter())
            .map(|(n, c)| c.encoded(stats.column(n)))
            .collect();
        let compacted = fresh_cache(columns.len());
        // encoding preserves content, so the statistics just computed stay
        // valid — carrying them over also spares the optimizer a recompute
        // over the encoded forms
        let stats_cell = OnceLock::new();
        let _ = stats_cell.set(stats.clone());
        Relation {
            name: m.name.clone(),
            schema: m.schema.clone(),
            columns,
            sel: None,
            compacted,
            compacted_all: OnceLock::new(),
            stats: stats_cell,
        }
    }

    /// Concatenate partition results back into one relation. All parts
    /// must share the first part's schema exactly; the first part's
    /// name is kept (parallel operators split a named relation and
    /// reassemble it).
    ///
    /// When every part is a view over the **same** `Arc`-shared base
    /// columns — the shape morsel-parallel filters produce — the
    /// concatenation is pure selection-vector surgery: the result is one
    /// view over the shared base, late materialization survives the
    /// reassembly, and encoded base columns stay encoded instead of
    /// being force-decoded into plain vectors. Parts over distinct bases
    /// are gathered directly into a compact output — the gather and the
    /// concatenation are one pass.
    pub fn concat(parts: &[Relation]) -> Result<Relation, RelationError> {
        let Some((first, rest)) = parts.split_first() else {
            return Err(RelationError::Expression(
                "concat of zero partitions".to_string(),
            ));
        };
        for part in rest {
            if part.schema != first.schema {
                return Err(RelationError::NotUnionCompatible);
            }
        }
        let total: usize = parts.iter().map(Relation::len).sum();
        if !first.columns.is_empty() && rest.iter().all(|p| p.shares_columns_with(first)) {
            let mut idx = Vec::with_capacity(total);
            for part in parts {
                match &part.sel {
                    None => idx.extend(0..part.len()),
                    Some(s) => idx.extend(s.iter()),
                }
            }
            return Ok(first.view(SelVec::from_indices(idx)));
        }
        let mut columns: Vec<Column> = Vec::with_capacity(first.schema.len());
        for j in 0..first.schema.len() {
            let dt = first.schema.attributes()[j].dtype();
            let mut col = Column::new(rma_storage::ColumnData::with_capacity(dt, total));
            for part in parts {
                col.append_gather(&part.columns[j], part.sel.as_ref())?;
            }
            columns.push(col);
        }
        let compacted = fresh_cache(columns.len());
        Ok(Relation {
            name: first.name.clone(),
            schema: first.schema.clone(),
            columns,
            sel: None,
            compacted,
            compacted_all: OnceLock::new(),
            stats: OnceLock::new(),
        })
    }

    /// A new compact relation holding this relation's rows followed by
    /// `other`'s — the **next table generation** an INSERT prepares in the
    /// serving layer. The receiver is untouched (readers pinned to it keep
    /// their snapshot); the appended copy is built column-at-a-time via
    /// copy-on-write, and views on either side are gathered in the same
    /// pass. Schemas must match exactly.
    pub fn appended(&self, other: &Relation) -> Result<Relation, RelationError> {
        if other.schema != self.schema {
            return Err(RelationError::NotUnionCompatible);
        }
        let mut columns = Vec::with_capacity(self.schema.len());
        for j in 0..self.schema.len() {
            // zero-copy Arc share for a compact base, gather for a view
            let mut col = match &self.sel {
                None => self.columns[j].clone(),
                Some(sel) => self.columns[j].gather(sel),
            };
            col.append_gather(&other.columns[j], other.sel.as_ref())?;
            columns.push(col);
        }
        let compacted = fresh_cache(columns.len());
        Ok(Relation {
            name: self.name.clone(),
            schema: self.schema.clone(),
            columns,
            sel: None,
            compacted,
            compacted_all: OnceLock::new(),
            stats: OnceLock::new(),
        })
    }

    /// Do both relations share all base-column storage (`Arc` identity,
    /// pairwise)? True for clones and pinned snapshots of one generation;
    /// the serving-layer tests use this to prove snapshot pinning never
    /// copies data. Trivially true for zero-column relations.
    pub fn shares_columns_with(&self, other: &Relation) -> bool {
        self.columns.len() == other.columns.len()
            && self
                .columns
                .iter()
                .zip(&other.columns)
                .all(|(a, b)| a.shares_data_with(b))
    }

    /// The sort permutation of this relation under the given attributes
    /// (ascending, nulls first), i.e. the OID order of `r^{U,k}`.
    pub fn sort_permutation_by(&self, attrs: &[&str]) -> Result<Vec<usize>, RelationError> {
        let cols = self.columns_of(attrs)?;
        Ok(sort_permutation(&cols))
    }

    /// Materialise the relation sorted by the given attributes.
    pub fn sorted_by(&self, attrs: &[&str]) -> Result<Relation, RelationError> {
        let perm = self.sort_permutation_by(attrs)?;
        Ok(self.take(&perm))
    }

    /// Do the given attributes form a key?
    pub fn attrs_form_key(&self, attrs: &[&str]) -> Result<bool, RelationError> {
        if attrs.is_empty() {
            // the empty attribute set is a key only of relations with ≤1 row
            return Ok(self.len() <= 1);
        }
        let cols = self.columns_of(attrs)?;
        Ok(is_key(&cols))
    }

    /// Verify the key property, erroring if it does not hold (relational
    /// matrix operations require their order schema to be a key).
    pub fn require_key(&self, attrs: &[&str]) -> Result<(), RelationError> {
        if self.attrs_form_key(attrs)? {
            Ok(())
        } else {
            Err(RelationError::NotAKey(
                attrs.iter().map(|s| s.to_string()).collect(),
            ))
        }
    }

    /// Bag equality up to row order (two relations are equal as bags iff
    /// sorting all columns the same way yields identical columns). Intended
    /// for tests and assertions, not hot paths.
    pub fn bag_equals(&self, other: &Relation) -> bool {
        if self.schema != other.schema || self.len() != other.len() {
            return false;
        }
        let all: Vec<&str> = self.schema.names().collect();
        let a = match self.sorted_by(&all) {
            Ok(r) => r,
            Err(_) => return false,
        };
        let b = match other.sorted_by(&all) {
            Ok(r) => r,
            Err(_) => return false,
        };
        a.columns() == b.columns()
    }

    /// Replace the schema names wholesale (the rename operator ρ uses this).
    pub(crate) fn with_schema_unchecked(mut self, schema: Schema) -> Relation {
        debug_assert_eq!(schema.len(), self.schema.len());
        self.schema = schema;
        self
    }

    /// Attribute helper: the attributes of this relation as (name, type).
    pub fn attribute(&self, name: &str) -> Result<&Attribute, RelationError> {
        self.schema.attribute(name)
    }

    /// Table statistics of this relation (row count, per-column null count,
    /// distinct estimate, min/max), computed on first use and cached — a
    /// provider that keeps relations around serves repeated optimizer
    /// requests for free. Clones share the computed value.
    pub fn statistics(&self) -> &Statistics {
        self.stats.get_or_init(|| Statistics::compute(self))
    }
}

/// Rows shown before a rendered relation is truncated.
const DISPLAY_ROWS: usize = 20;

impl fmt::Display for Relation {
    /// Render an aligned ASCII table: header, separator, and up to
    /// `DISPLAY_ROWS` rows. Numeric columns are right-aligned, others
    /// left-aligned; longer relations end with a truncation note. Reads
    /// through the selection vector, so displaying a huge view stays cheap.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let shown = self.len().min(DISPLAY_ROWS);
        // materialise the displayed cells once to compute column widths
        let mut cells: Vec<Vec<String>> = Vec::with_capacity(self.schema.len());
        let mut widths: Vec<usize> = Vec::with_capacity(self.schema.len());
        for (attr, col) in self.schema.attributes().iter().zip(&self.columns) {
            let vals: Vec<String> = (0..shown)
                .map(|i| col.get(self.base_index(i)).to_string())
                .collect();
            let width = vals
                .iter()
                .map(String::len)
                .chain(std::iter::once(attr.name().len()))
                .max()
                .unwrap_or(0);
            widths.push(width);
            cells.push(vals);
        }
        let right_align: Vec<bool> = self
            .schema
            .attributes()
            .iter()
            .map(|a| a.dtype().is_numeric())
            .collect();
        let write_row =
            |f: &mut fmt::Formatter<'_>, fields: &mut dyn Iterator<Item = String>| -> fmt::Result {
                let mut first = true;
                for (j, field) in fields.enumerate() {
                    if !first {
                        write!(f, " | ")?;
                    }
                    first = false;
                    if right_align[j] {
                        write!(f, "{field:>width$}", width = widths[j])?;
                    } else {
                        write!(f, "{field:<width$}", width = widths[j])?;
                    }
                }
                writeln!(f)
            };
        write_row(f, &mut self.schema.names().map(str::to_string))?;
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        writeln!(f, "{}", sep.join("-+-"))?;
        for i in 0..shown {
            write_row(f, &mut cells.iter().map(|c| c[i].clone()))?;
        }
        if self.len() > shown {
            writeln!(
                f,
                "… {} more rows ({} total)",
                self.len() - shown,
                self.len()
            )?;
        }
        Ok(())
    }
}

/// Builder for constructing relations column by column.
#[derive(Debug, Default)]
pub struct RelationBuilder {
    name: Option<String>,
    attrs: Vec<Attribute>,
    columns: Vec<Column>,
}

impl RelationBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.name = Some(name.into());
        self
    }

    /// Add a named column; its data type is taken from the column.
    pub fn column(mut self, name: impl Into<String>, column: impl Into<Column>) -> Self {
        let column = column.into();
        self.attrs.push(Attribute::new(name, column.data_type()));
        self.columns.push(column);
        self
    }

    pub fn build(self) -> Result<Relation, RelationError> {
        let schema = Schema::new(self.attrs)?;
        let mut r = Relation::new(schema, self.columns)?;
        if let Some(n) = self.name {
            r = r.with_name(n);
        }
        Ok(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rma_storage::DataType;

    /// The weather relation of the paper's Figure 2.
    pub(crate) fn weather() -> Relation {
        RelationBuilder::new()
            .name("r")
            .column("T", vec!["5am", "8am", "7am", "6am"])
            .column("H", vec![1.0f64, 8.0, 6.0, 1.0])
            .column("W", vec![3.0f64, 5.0, 7.0, 4.0])
            .build()
            .unwrap()
    }

    #[test]
    fn build_and_access() {
        let r = weather();
        assert_eq!(r.len(), 4);
        assert_eq!(r.schema().len(), 3);
        assert_eq!(r.cell(1, "H").unwrap(), Value::Float(8.0));
        assert_eq!(r.name(), Some("r"));
    }

    #[test]
    fn arity_and_type_checks() {
        let s = Schema::from_pairs(&[("a", DataType::Int)]).unwrap();
        assert!(matches!(
            Relation::new(s.clone(), vec![]),
            Err(RelationError::ArityMismatch { .. })
        ));
        assert!(matches!(
            Relation::new(s, vec![Column::from(vec![1.0f64])]),
            Err(RelationError::SchemaTypeMismatch { .. })
        ));
    }

    #[test]
    fn ragged_columns_rejected() {
        let s = Schema::from_pairs(&[("a", DataType::Int), ("b", DataType::Int)]).unwrap();
        let r = Relation::new(
            s,
            vec![Column::from(vec![1i64]), Column::from(vec![1i64, 2])],
        );
        assert!(matches!(r, Err(RelationError::RaggedColumns)));
    }

    #[test]
    fn from_rows_roundtrip() {
        let s = Schema::from_pairs(&[("u", DataType::Str), ("x", DataType::Float)]).unwrap();
        let r = Relation::from_rows(
            s,
            &[
                vec![Value::from("Ann"), Value::from(2.0)],
                vec![Value::from("Tom"), Value::from(0.0)],
            ],
        )
        .unwrap();
        assert_eq!(r.row(1), vec![Value::from("Tom"), Value::from(0.0)]);
    }

    #[test]
    fn sorted_by_matches_paper_example() {
        // Example 3.1: third tuple of r sorted by V... here: sort by T
        let r = weather();
        let s = r.sorted_by(&["T"]).unwrap();
        let ts: Vec<Value> = s.column("T").unwrap().iter_values().collect();
        assert_eq!(
            ts,
            vec![
                Value::from("5am"),
                Value::from("6am"),
                Value::from("7am"),
                Value::from("8am")
            ]
        );
    }

    #[test]
    fn key_checks() {
        let r = weather();
        assert!(r.attrs_form_key(&["T"]).unwrap());
        assert!(!r.attrs_form_key(&["H"]).unwrap()); // H has duplicate 1.0
        r.require_key(&["T"]).unwrap();
        assert!(matches!(
            r.require_key(&["H"]),
            Err(RelationError::NotAKey(_))
        ));
    }

    #[test]
    fn empty_attr_key_only_for_tiny_relations() {
        let r = weather();
        assert!(!r.attrs_form_key(&[]).unwrap());
        let one = r.take(&[0]);
        assert!(one.attrs_form_key(&[]).unwrap());
    }

    #[test]
    fn bag_equality_ignores_row_order() {
        let r = weather();
        let shuffled = r.take(&[2, 0, 3, 1]);
        assert!(r.bag_equals(&shuffled));
        let truncated = r.take(&[0, 1]);
        assert!(!r.bag_equals(&truncated));
    }

    #[test]
    fn take_and_filter_preserve_name() {
        let r = weather();
        assert_eq!(r.take(&[0]).name(), Some("r"));
        assert_eq!(r.filter(&[true, false, false, false]).name(), Some("r"));
    }

    #[test]
    fn take_and_filter_are_views() {
        let r = weather();
        let t = r.take(&[2, 0]);
        assert!(t.is_view());
        assert_eq!(t.len(), 2);
        assert_eq!(t.cell(0, "T").unwrap(), Value::from("7am"));
        let f = r.filter(&[true, false, true, false]);
        assert!(f.is_view());
        assert_eq!(f.len(), 2);
        assert_eq!(f.cell(1, "T").unwrap(), Value::from("7am"));
        // a view equals its materialization
        assert_eq!(f, f.materialize());
        assert!(!f.materialize().is_view());
    }

    #[test]
    fn views_compose_without_chaining() {
        let r = weather();
        let v = r
            .filter(&[true, true, true, false]) // rows 0,1,2
            .take(&[2, 1]) // rows 2,1
            .filter(&[true, false]); // row 2
        assert_eq!(v.len(), 1);
        assert_eq!(v.cell(0, "T").unwrap(), Value::from("7am"));
        // composed eagerly: the view indexes the original base directly
        assert_eq!(v.sel().unwrap().get(0), 2);
        assert_eq!(v.base_len(), 4);
    }

    #[test]
    fn slice_stays_a_range_view() {
        let r = weather();
        let s = r.slice(1..3);
        assert!(matches!(s.sel(), Some(SelVec::Range(rng)) if rng == &(1..3)));
        let s2 = s.slice(1..2);
        assert!(matches!(s2.sel(), Some(SelVec::Range(rng)) if rng == &(2..3)));
        assert_eq!(s2.cell(0, "T").unwrap(), Value::from("7am"));
        // full-range slice of a compact relation stays compact
        assert!(!r.slice(0..4).is_view());
    }

    #[test]
    fn compacting_accessor_matches_view() {
        let r = weather();
        let v = r.take(&[3, 1]);
        let cols = v.columns();
        assert_eq!(cols[0].len(), 2);
        assert_eq!(cols[0].get(0), Value::from("6am"));
        // cached: second call returns the same gathered columns
        assert_eq!(v.columns()[0].get(1), Value::from("8am"));
        assert_eq!(v.column("T").unwrap().get(0), Value::from("6am"));
        assert_eq!(v.column_shared("H").unwrap().get(1), Value::Float(8.0));
    }

    #[test]
    fn concat_of_same_base_views_is_selvec_surgery() {
        let r = weather();
        let a = r.filter(&[true, false, true, false]);
        let b = r.slice(3..4);
        let c = Relation::concat(&[a, b]).unwrap();
        // morsel reassembly: one view over the shared base, no gather
        assert!(c.is_view());
        assert!(c.shares_columns_with(&r));
        assert_eq!(c.len(), 3);
        let ts: Vec<Value> = c.column("T").unwrap().iter_values().collect();
        assert_eq!(
            ts,
            vec![Value::from("5am"), Value::from("7am"), Value::from("6am")]
        );
        assert_eq!(c.name(), Some("r"));
    }

    #[test]
    fn concat_of_distinct_bases_gathers_compact() {
        let a = weather().filter(&[true, false, true, false]);
        let b = weather().slice(3..4);
        let c = Relation::concat(&[a, b]).unwrap();
        assert!(!c.is_view());
        assert_eq!(c.len(), 3);
        let ts: Vec<Value> = c.column("T").unwrap().iter_values().collect();
        assert_eq!(
            ts,
            vec![Value::from("5am"), Value::from("7am"), Value::from("6am")]
        );
    }

    #[test]
    fn appended_builds_next_generation_without_mutating_base() {
        let base = weather();
        let delta = RelationBuilder::new()
            .column("T", vec!["9am"])
            .column("H", vec![2.0f64])
            .column("W", vec![9.0f64])
            .build()
            .unwrap();
        let next = base.appended(&delta).unwrap();
        assert_eq!(base.len(), 4, "the base generation is untouched");
        assert_eq!(next.len(), 5);
        assert_eq!(next.name(), base.name());
        assert_eq!(next.column("T").unwrap().get(4), Value::from("9am"));
        // a view on either side is gathered in the same pass
        let view = base.filter(&[true, false, false, true]);
        let from_view = view.appended(&delta).unwrap();
        assert_eq!(from_view.len(), 3);
        assert!(!from_view.is_view());
        // schema mismatch is rejected
        let wrong = RelationBuilder::new()
            .column("T", vec!["9am"])
            .build()
            .unwrap();
        assert!(base.appended(&wrong).is_err());
    }

    #[test]
    fn clones_share_column_storage() {
        let r = weather();
        let snap = r.clone();
        assert!(r.shares_columns_with(&snap), "pinning must be zero-copy");
        let copied = r.appended(&weather().slice(0..0)).unwrap();
        // appending even zero rows copies-on-write the touched columns
        assert_eq!(copied.len(), 4);
    }

    #[test]
    fn display_renders_aligned_table() {
        let out = weather().to_string();
        let lines: Vec<&str> = out.lines().collect();
        // header padded to the widest cell of each column
        assert_eq!(lines[0], "T   | H | W");
        assert!(lines[1].chars().all(|c| c == '-' || c == '+'));
        // string column left-aligned, numeric columns right-aligned
        assert_eq!(lines[2], "5am | 1 | 3");
        // all rows shown: no truncation note
        assert_eq!(lines.len(), 2 + 4);
    }

    #[test]
    fn display_truncates_long_relations() {
        let n = 24usize;
        let r = RelationBuilder::new()
            .column("i", (0..n as i64).collect::<Vec<_>>())
            .column("x", (0..n).map(|i| i as f64).collect::<Vec<_>>())
            .build()
            .unwrap();
        let out = r.to_string();
        assert_eq!(out.lines().count(), 2 + 20 + 1);
        assert!(out.ends_with("… 4 more rows (24 total)\n"), "{out}");
    }
}
