//! Relations: a schema plus one BAT per attribute.
//!
//! Following MonetDB, a relation is stored column-wise; all attribute
//! columns have equal length and row `i` across the columns is tuple `i`.
//! Relations carry an optional *name* which the RMA layer uses as the row
//! origin of shape-(1,1) operations (`det`, `rnk` — see Fig. 9 of the
//! paper).

use crate::error::RelationError;
use crate::schema::{Attribute, Schema};
use rma_storage::{is_key, sort_permutation, Column, Value};
use std::fmt;

/// A relation instance.
#[derive(Debug, Clone, PartialEq)]
pub struct Relation {
    name: Option<String>,
    schema: Schema,
    columns: Vec<Column>,
}

impl Relation {
    /// Build a relation from a schema and matching columns.
    pub fn new(schema: Schema, columns: Vec<Column>) -> Result<Self, RelationError> {
        if schema.len() != columns.len() {
            return Err(RelationError::ArityMismatch {
                expected: schema.len(),
                found: columns.len(),
            });
        }
        if let Some(first) = columns.first() {
            if columns.iter().any(|c| c.len() != first.len()) {
                return Err(RelationError::RaggedColumns);
            }
        }
        for (a, c) in schema.attributes().iter().zip(&columns) {
            if a.dtype() != c.data_type() {
                return Err(RelationError::SchemaTypeMismatch {
                    attribute: a.name().to_string(),
                });
            }
        }
        Ok(Relation {
            name: None,
            schema,
            columns,
        })
    }

    /// An empty relation with the given schema.
    pub fn empty(schema: Schema) -> Self {
        let columns = schema
            .attributes()
            .iter()
            .map(|a| Column::new(rma_storage::ColumnData::empty(a.dtype())))
            .collect();
        Relation {
            name: None,
            schema,
            columns,
        }
    }

    /// Build from rows of boxed values (test/edge convenience; bulk paths
    /// construct columns directly).
    pub fn from_rows(schema: Schema, rows: &[Vec<Value>]) -> Result<Self, RelationError> {
        let width = schema.len();
        for r in rows {
            if r.len() != width {
                return Err(RelationError::ArityMismatch {
                    expected: width,
                    found: r.len(),
                });
            }
        }
        let mut columns = Vec::with_capacity(width);
        for (j, attr) in schema.attributes().iter().enumerate() {
            let vals: Vec<Value> = rows.iter().map(|r| r[j].clone()).collect();
            columns.push(Column::from_values_typed(attr.dtype(), &vals)?);
        }
        Relation::new(schema, columns)
    }

    /// Set the relation name (used as the row origin of `det`/`rnk`).
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = Some(name.into());
        self
    }

    pub fn name(&self) -> Option<&str> {
        self.name.as_deref()
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of tuples `|r|`.
    pub fn len(&self) -> usize {
        self.columns.first().map_or(0, Column::len)
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Column of an attribute by name.
    pub fn column(&self, name: &str) -> Result<&Column, RelationError> {
        let idx = self
            .schema
            .index_of(name)
            .ok_or_else(|| RelationError::UnknownAttribute(name.to_string()))?;
        Ok(&self.columns[idx])
    }

    /// Columns of several attributes, in the requested order.
    pub fn columns_of(&self, names: &[&str]) -> Result<Vec<&Column>, RelationError> {
        names.iter().map(|n| self.column(n)).collect()
    }

    /// One cell.
    pub fn cell(&self, row: usize, attr: &str) -> Result<Value, RelationError> {
        Ok(self.column(attr)?.get(row))
    }

    /// One tuple as boxed values.
    pub fn row(&self, i: usize) -> Vec<Value> {
        self.columns.iter().map(|c| c.get(i)).collect()
    }

    /// Iterate tuples as boxed values (edge use; bulk code works on columns).
    pub fn rows(&self) -> impl Iterator<Item = Vec<Value>> + '_ {
        (0..self.len()).map(move |i| self.row(i))
    }

    /// Gather rows by index, preserving schema and name.
    pub fn take(&self, idx: &[usize]) -> Relation {
        Relation {
            name: self.name.clone(),
            schema: self.schema.clone(),
            columns: self.columns.iter().map(|c| c.take(idx)).collect(),
        }
    }

    /// Copy out the contiguous row range `range` (one partition of a
    /// row-range partitioned scan), preserving schema and name.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Relation {
        Relation {
            name: self.name.clone(),
            schema: self.schema.clone(),
            columns: self
                .columns
                .iter()
                .map(|c| c.slice(range.start, range.end))
                .collect(),
        }
    }

    /// Concatenate partition results back into one relation. All parts must
    /// share the first part's schema exactly; the first part's name is kept
    /// (parallel operators split a named relation and reassemble it).
    pub fn concat(parts: &[Relation]) -> Result<Relation, RelationError> {
        let Some((first, rest)) = parts.split_first() else {
            return Err(RelationError::Expression(
                "concat of zero partitions".to_string(),
            ));
        };
        let mut columns = first.columns.clone();
        for part in rest {
            if part.schema != first.schema {
                return Err(RelationError::NotUnionCompatible);
            }
            for (c, other) in columns.iter_mut().zip(&part.columns) {
                c.append(other)?;
            }
        }
        Ok(Relation {
            name: first.name.clone(),
            schema: first.schema.clone(),
            columns,
        })
    }

    /// Keep rows whose flag is set.
    pub fn filter(&self, keep: &[bool]) -> Relation {
        Relation {
            name: self.name.clone(),
            schema: self.schema.clone(),
            columns: self.columns.iter().map(|c| c.filter(keep)).collect(),
        }
    }

    /// The sort permutation of this relation under the given attributes
    /// (ascending, nulls first), i.e. the OID order of `r^{U,k}`.
    pub fn sort_permutation_by(&self, attrs: &[&str]) -> Result<Vec<usize>, RelationError> {
        let cols = self.columns_of(attrs)?;
        Ok(sort_permutation(&cols))
    }

    /// Materialise the relation sorted by the given attributes.
    pub fn sorted_by(&self, attrs: &[&str]) -> Result<Relation, RelationError> {
        let perm = self.sort_permutation_by(attrs)?;
        Ok(self.take(&perm))
    }

    /// Do the given attributes form a key?
    pub fn attrs_form_key(&self, attrs: &[&str]) -> Result<bool, RelationError> {
        if attrs.is_empty() {
            // the empty attribute set is a key only of relations with ≤1 row
            return Ok(self.len() <= 1);
        }
        let cols = self.columns_of(attrs)?;
        Ok(is_key(&cols))
    }

    /// Verify the key property, erroring if it does not hold (relational
    /// matrix operations require their order schema to be a key).
    pub fn require_key(&self, attrs: &[&str]) -> Result<(), RelationError> {
        if self.attrs_form_key(attrs)? {
            Ok(())
        } else {
            Err(RelationError::NotAKey(
                attrs.iter().map(|s| s.to_string()).collect(),
            ))
        }
    }

    /// Bag equality up to row order (two relations are equal as bags iff
    /// sorting all columns the same way yields identical columns). Intended
    /// for tests and assertions, not hot paths.
    pub fn bag_equals(&self, other: &Relation) -> bool {
        if self.schema != other.schema || self.len() != other.len() {
            return false;
        }
        let all: Vec<&str> = self.schema.names().collect();
        let a = match self.sorted_by(&all) {
            Ok(r) => r,
            Err(_) => return false,
        };
        let b = match other.sorted_by(&all) {
            Ok(r) => r,
            Err(_) => return false,
        };
        a.columns == b.columns
    }

    /// Replace the schema names wholesale (the rename operator ρ uses this).
    pub(crate) fn with_schema_unchecked(mut self, schema: Schema) -> Relation {
        debug_assert_eq!(schema.len(), self.schema.len());
        self.schema = schema;
        self
    }

    /// Attribute helper: the attributes of this relation as (name, type).
    pub fn attribute(&self, name: &str) -> Result<&Attribute, RelationError> {
        self.schema.attribute(name)
    }
}

/// Rows shown before a rendered relation is truncated.
const DISPLAY_ROWS: usize = 20;

impl fmt::Display for Relation {
    /// Render an aligned ASCII table: header, separator, and up to
    /// [`DISPLAY_ROWS`] rows. Numeric columns are right-aligned, others
    /// left-aligned; longer relations end with a truncation note.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let shown = self.len().min(DISPLAY_ROWS);
        // materialise the displayed cells once to compute column widths
        let mut cells: Vec<Vec<String>> = Vec::with_capacity(self.schema.len());
        let mut widths: Vec<usize> = Vec::with_capacity(self.schema.len());
        for (attr, col) in self.schema.attributes().iter().zip(&self.columns) {
            let vals: Vec<String> = (0..shown).map(|i| col.get(i).to_string()).collect();
            let width = vals
                .iter()
                .map(String::len)
                .chain(std::iter::once(attr.name().len()))
                .max()
                .unwrap_or(0);
            widths.push(width);
            cells.push(vals);
        }
        let right_align: Vec<bool> = self
            .schema
            .attributes()
            .iter()
            .map(|a| a.dtype().is_numeric())
            .collect();
        let write_row =
            |f: &mut fmt::Formatter<'_>, fields: &mut dyn Iterator<Item = String>| -> fmt::Result {
                let mut first = true;
                for (j, field) in fields.enumerate() {
                    if !first {
                        write!(f, " | ")?;
                    }
                    first = false;
                    if right_align[j] {
                        write!(f, "{field:>width$}", width = widths[j])?;
                    } else {
                        write!(f, "{field:<width$}", width = widths[j])?;
                    }
                }
                writeln!(f)
            };
        write_row(f, &mut self.schema.names().map(str::to_string))?;
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        writeln!(f, "{}", sep.join("-+-"))?;
        for i in 0..shown {
            write_row(f, &mut cells.iter().map(|c| c[i].clone()))?;
        }
        if self.len() > shown {
            writeln!(
                f,
                "… {} more rows ({} total)",
                self.len() - shown,
                self.len()
            )?;
        }
        Ok(())
    }
}

/// Builder for constructing relations column by column.
#[derive(Debug, Default)]
pub struct RelationBuilder {
    name: Option<String>,
    attrs: Vec<Attribute>,
    columns: Vec<Column>,
}

impl RelationBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.name = Some(name.into());
        self
    }

    /// Add a named column; its data type is taken from the column.
    pub fn column(mut self, name: impl Into<String>, column: impl Into<Column>) -> Self {
        let column = column.into();
        self.attrs.push(Attribute::new(name, column.data_type()));
        self.columns.push(column);
        self
    }

    pub fn build(self) -> Result<Relation, RelationError> {
        let schema = Schema::new(self.attrs)?;
        let mut r = Relation::new(schema, self.columns)?;
        if let Some(n) = self.name {
            r = r.with_name(n);
        }
        Ok(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rma_storage::DataType;

    /// The weather relation of the paper's Figure 2.
    pub(crate) fn weather() -> Relation {
        RelationBuilder::new()
            .name("r")
            .column("T", vec!["5am", "8am", "7am", "6am"])
            .column("H", vec![1.0f64, 8.0, 6.0, 1.0])
            .column("W", vec![3.0f64, 5.0, 7.0, 4.0])
            .build()
            .unwrap()
    }

    #[test]
    fn build_and_access() {
        let r = weather();
        assert_eq!(r.len(), 4);
        assert_eq!(r.schema().len(), 3);
        assert_eq!(r.cell(1, "H").unwrap(), Value::Float(8.0));
        assert_eq!(r.name(), Some("r"));
    }

    #[test]
    fn arity_and_type_checks() {
        let s = Schema::from_pairs(&[("a", DataType::Int)]).unwrap();
        assert!(matches!(
            Relation::new(s.clone(), vec![]),
            Err(RelationError::ArityMismatch { .. })
        ));
        assert!(matches!(
            Relation::new(s, vec![Column::from(vec![1.0f64])]),
            Err(RelationError::SchemaTypeMismatch { .. })
        ));
    }

    #[test]
    fn ragged_columns_rejected() {
        let s = Schema::from_pairs(&[("a", DataType::Int), ("b", DataType::Int)]).unwrap();
        let r = Relation::new(
            s,
            vec![Column::from(vec![1i64]), Column::from(vec![1i64, 2])],
        );
        assert!(matches!(r, Err(RelationError::RaggedColumns)));
    }

    #[test]
    fn from_rows_roundtrip() {
        let s = Schema::from_pairs(&[("u", DataType::Str), ("x", DataType::Float)]).unwrap();
        let r = Relation::from_rows(
            s,
            &[
                vec![Value::from("Ann"), Value::from(2.0)],
                vec![Value::from("Tom"), Value::from(0.0)],
            ],
        )
        .unwrap();
        assert_eq!(r.row(1), vec![Value::from("Tom"), Value::from(0.0)]);
    }

    #[test]
    fn sorted_by_matches_paper_example() {
        // Example 3.1: third tuple of r sorted by V... here: sort by T
        let r = weather();
        let s = r.sorted_by(&["T"]).unwrap();
        let ts: Vec<Value> = s.column("T").unwrap().iter_values().collect();
        assert_eq!(
            ts,
            vec![
                Value::from("5am"),
                Value::from("6am"),
                Value::from("7am"),
                Value::from("8am")
            ]
        );
    }

    #[test]
    fn key_checks() {
        let r = weather();
        assert!(r.attrs_form_key(&["T"]).unwrap());
        assert!(!r.attrs_form_key(&["H"]).unwrap()); // H has duplicate 1.0
        r.require_key(&["T"]).unwrap();
        assert!(matches!(
            r.require_key(&["H"]),
            Err(RelationError::NotAKey(_))
        ));
    }

    #[test]
    fn empty_attr_key_only_for_tiny_relations() {
        let r = weather();
        assert!(!r.attrs_form_key(&[]).unwrap());
        let one = r.take(&[0]);
        assert!(one.attrs_form_key(&[]).unwrap());
    }

    #[test]
    fn bag_equality_ignores_row_order() {
        let r = weather();
        let shuffled = r.take(&[2, 0, 3, 1]);
        assert!(r.bag_equals(&shuffled));
        let truncated = r.take(&[0, 1]);
        assert!(!r.bag_equals(&truncated));
    }

    #[test]
    fn take_and_filter_preserve_name() {
        let r = weather();
        assert_eq!(r.take(&[0]).name(), Some("r"));
        assert_eq!(r.filter(&[true, false, false, false]).name(), Some("r"));
    }

    #[test]
    fn display_renders_aligned_table() {
        let out = weather().to_string();
        let lines: Vec<&str> = out.lines().collect();
        // header padded to the widest cell of each column
        assert_eq!(lines[0], "T   | H | W");
        assert!(lines[1].chars().all(|c| c == '-' || c == '+'));
        // string column left-aligned, numeric columns right-aligned
        assert_eq!(lines[2], "5am | 1 | 3");
        // all rows shown: no truncation note
        assert_eq!(lines.len(), 2 + 4);
    }

    #[test]
    fn display_truncates_long_relations() {
        let n = 24usize;
        let r = RelationBuilder::new()
            .column("i", (0..n as i64).collect::<Vec<_>>())
            .column("x", (0..n).map(|i| i as f64).collect::<Vec<_>>())
            .build()
            .unwrap();
        let out = r.to_string();
        assert_eq!(out.lines().count(), 2 + 20 + 1);
        assert!(out.ends_with("… 4 more rows (24 total)\n"), "{out}");
    }
}
