//! Table-level statistics: one [`ColumnStats`] per attribute plus the row
//! count.
//!
//! Statistics are computed lazily — the first call to
//! [`Relation::statistics`](crate::Relation::statistics) pays one scan per
//! column and caches the result on the relation, so a table provider that
//! keeps relations around (the SQL catalog, `Values` plan nodes) serves
//! every later request for free. The plan-level optimizer
//! (`rma_core::plan::stats`) consumes these to estimate predicate
//! selectivities and join cardinalities.

use crate::relation::Relation;
use rma_storage::ColumnStats;

/// Summary statistics of one relation: the row count and per-attribute
/// [`ColumnStats`], in schema order.
#[derive(Debug, Clone, PartialEq)]
pub struct Statistics {
    /// Number of visible tuples at computation time.
    pub row_count: usize,
    /// Per-attribute statistics, aligned with the schema: `columns[i]`
    /// describes attribute `i`.
    columns: Vec<(String, ColumnStats)>,
}

impl Statistics {
    /// Compute statistics for every attribute of a relation. Views are read
    /// through their compacting accessors, so the statistics describe the
    /// *visible* rows.
    pub fn compute(rel: &Relation) -> Statistics {
        let columns = rel
            .schema()
            .names()
            .zip(rel.columns())
            .map(|(name, col)| (name.to_string(), ColumnStats::compute(col)))
            .collect();
        Statistics {
            row_count: rel.len(),
            columns,
        }
    }

    /// Statistics of one attribute, by name.
    pub fn column(&self, name: &str) -> Option<&ColumnStats> {
        self.columns.iter().find(|(n, _)| n == name).map(|(_, s)| s)
    }

    /// Iterate `(attribute name, stats)` pairs in schema order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &ColumnStats)> {
        self.columns.iter().map(|(n, s)| (n.as_str(), s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RelationBuilder;
    use rma_storage::Value;

    fn rel() -> Relation {
        RelationBuilder::new()
            .column("k", vec![1i64, 2, 3, 4])
            .column("g", vec![7i64, 7, 8, 8])
            .column("x", vec![0.5f64, 1.5, 2.5, 3.5])
            .build()
            .unwrap()
    }

    #[test]
    fn compute_covers_all_attributes() {
        let s = Statistics::compute(&rel());
        assert_eq!(s.row_count, 4);
        assert_eq!(s.iter().count(), 3);
        assert_eq!(s.column("k").unwrap().distinct, 4);
        assert_eq!(s.column("g").unwrap().distinct, 2);
        assert_eq!(s.column("x").unwrap().min, Some(Value::Float(0.5)));
        assert!(s.column("missing").is_none());
    }

    #[test]
    fn statistics_describe_visible_rows_of_views() {
        let v = rel().filter(&[true, true, false, false]);
        let s = Statistics::compute(&v);
        assert_eq!(s.row_count, 2);
        assert_eq!(s.column("g").unwrap().distinct, 1);
        assert_eq!(s.column("k").unwrap().max, Some(Value::Int(2)));
    }

    #[test]
    fn cached_on_the_relation() {
        let r = rel();
        let a = r.statistics() as *const Statistics;
        let b = r.statistics() as *const Statistics;
        assert_eq!(a, b, "second call must hit the cache");
        // clones share the computed statistics
        let c = r.clone();
        assert_eq!(c.statistics().row_count, 4);
    }
}
