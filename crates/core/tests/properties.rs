//! Property-based tests of the RMA invariants: matrix consistency
//! (Definition 6.3), origins (Definition 6.6), closure, backend agreement,
//! and sort-policy equivalence.
#![allow(clippy::needless_range_loop)]

use proptest::prelude::*;
use rma_core::{Backend, RmaContext, RmaOp, RmaOptions, SortPolicy};
use rma_relation::{Relation, RelationBuilder};

/// A random relation with a unique string key `k` and `cols` float
/// application attributes `a0..`, plus a random physical row permutation.
fn arb_relation(rows: usize, cols: usize) -> impl Strategy<Value = Relation> {
    (
        proptest::collection::vec(proptest::collection::vec(-100.0f64..100.0, cols), rows),
        Just(rows),
    )
        .prop_perturb(move |(data, rows), mut rng| {
            let mut order: Vec<usize> = (0..rows).collect();
            // Fisher-Yates with proptest's rng for a random physical order
            for i in (1..rows).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                order.swap(i, j);
            }
            let keys: Vec<String> = order.iter().map(|i| format!("k{i:03}")).collect();
            let mut b = RelationBuilder::new().name("t").column("k", keys);
            for c in 0..cols {
                let col: Vec<f64> = order.iter().map(|&i| data[i][c]).collect();
                b = b.column(format!("a{c}"), col);
            }
            b.build().expect("valid relation")
        })
}

fn ctx_with(backend: Backend, sort: SortPolicy) -> RmaContext {
    RmaContext::new(RmaOptions {
        backend,
        sort_policy: sort,
        ..RmaOptions::default()
    })
}

// Matrix consistency for qqr: the result relation, sorted by its order
// schema, is reducible to QQR of the sorted input matrix.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn qqr_matrix_consistent(r in arb_relation(6, 3)) {
        let ctx = RmaContext::default();
        let out = ctx.qqr(&r, &["k"]).unwrap();
        // reduce both sides to matrices sorted by k
        let sorted_out = out.sorted_by(&["k"]).unwrap();
        let sorted_in = r.sorted_by(&["k"]).unwrap();
        let app: Vec<Vec<f64>> = (0..3)
            .map(|c| sorted_in.column(&format!("a{c}")).unwrap().to_f64_vec().unwrap())
            .collect();
        let (q_expect, _) = rma_linalg::bat::qqr(&app)
            .map(|q| (q, ()))
            .unwrap();
        for c in 0..3 {
            let got = sorted_out.column(&format!("a{c}")).unwrap().to_f64_vec().unwrap();
            for (g, e) in got.iter().zip(&q_expect[c]) {
                prop_assert!((g - e).abs() < 1e-8, "qqr cell mismatch: {g} vs {e}");
            }
        }
    }

    // Sort-avoidance produces the same relation as full sorting, up to row
    // order and floating-point noise (the base results are computed on a
    // permuted matrix, so last-ulp differences are expected).
    #[test]
    fn sort_policies_agree(r in arb_relation(7, 2)) {
        let fast = ctx_with(Backend::Auto, SortPolicy::Optimized);
        let slow = ctx_with(Backend::Auto, SortPolicy::Always);
        for op in [RmaOp::Qqr, RmaOp::Rqr, RmaOp::Dsv, RmaOp::Rnk] {
            let a = fast.unary(op, &r, &["k"]).unwrap();
            let b = slow.unary(op, &r, &["k"]).unwrap();
            prop_assert_eq!(a.schema(), b.schema());
            prop_assert_eq!(a.len(), b.len());
            let key = a.schema().names().next().unwrap().to_string();
            let a_s = a.sorted_by(&[&key]).unwrap();
            let b_s = b.sorted_by(&[&key]).unwrap();
            for (ca, cb) in a_s.columns().iter().zip(b_s.columns()) {
                if ca.data_type() == rma_storage::DataType::Float {
                    let (x, y) = (ca.to_f64_vec().unwrap(), cb.to_f64_vec().unwrap());
                    for (p, q) in x.iter().zip(&y) {
                        prop_assert!((p - q).abs() < 1e-8, "{op:?}: {p} vs {q}");
                    }
                } else {
                    prop_assert_eq!(ca, cb, "{:?} context differs", op);
                }
            }
        }
    }

    // BAT and dense kernels agree on every op both implement.
    #[test]
    fn backends_agree(r in arb_relation(5, 5)) {
        let bat = ctx_with(Backend::Bat, SortPolicy::Always);
        let dense = ctx_with(Backend::Dense, SortPolicy::Always);
        for op in [RmaOp::Qqr, RmaOp::Rqr, RmaOp::Tra, RmaOp::Rnk] {
            let a = bat.unary(op, &r, &["k"]).unwrap();
            let b = dense.unary(op, &r, &["k"]).unwrap();
            prop_assert_eq!(a.schema(), b.schema());
            for (ca, cb) in a.columns().iter().zip(b.columns()) {
                if ca.data_type() == rma_storage::DataType::Float {
                    let (va, vb) = (ca.to_f64_vec().unwrap(), cb.to_f64_vec().unwrap());
                    for (x, y) in va.iter().zip(&vb) {
                        prop_assert!((x - y).abs() < 1e-8, "{op:?}: {x} vs {y}");
                    }
                } else {
                    prop_assert_eq!(ca, cb);
                }
            }
        }
    }

    // inv round-trip: mmu(r, inv(r)) over RMA returns the identity matrix
    /// (on well-conditioned random square relations).
    #[test]
    fn inv_roundtrip(r in arb_relation(4, 4)) {
        // diagonal dominance => invertible
        let mut cols: Vec<Vec<f64>> = (0..4)
            .map(|c| r.column(&format!("a{c}")).unwrap().to_f64_vec().unwrap())
            .collect();
        let keys: Vec<rma_storage::Value> = r.column("k").unwrap().iter_values().collect();
        let sorted_keys = {
            let mut s: Vec<String> = keys.iter().map(|v| v.to_string()).collect();
            s.sort();
            s
        };
        for (j, col) in cols.iter_mut().enumerate() {
            // strengthen the diagonal of the *sorted* matrix: row index of
            // key k is its rank; add 500 where rank == j
            for (i, key) in keys.iter().enumerate() {
                let rank = sorted_keys.iter().position(|s| *s == key.to_string()).unwrap();
                if rank == j {
                    col[i] += 500.0;
                }
            }
        }
        let mut b = RelationBuilder::new().name("t").column(
            "k",
            keys.iter().map(|v| v.to_string()).collect::<Vec<_>>(),
        );
        for (c, col) in cols.iter().enumerate() {
            b = b.column(format!("a{c}"), col.clone());
        }
        let r = b.build().unwrap();

        let ctx = RmaContext::default();
        let inv = ctx.inv(&r, &["k"]).unwrap();
        prop_assert_eq!(inv.schema(), r.schema());
        let prod = ctx.mmu(&r, &["k"], &inv, &["k"]).unwrap();
        let sorted = prod.sorted_by(&["k"]).unwrap();
        for (j, _) in cols.iter().enumerate() {
            let col = sorted.column(&format!("a{j}")).unwrap().to_f64_vec().unwrap();
            for (i, v) in col.iter().enumerate() {
                let expect = if i == j { 1.0 } else { 0.0 };
                prop_assert!((v - expect).abs() < 1e-6, "identity cell ({i},{j}) = {v}");
            }
        }
    }

    // add is commutative up to column naming and row order.
    #[test]
    fn add_commutes(r in arb_relation(6, 2)) {
        let s = {
            // second relation with disjoint attribute names, same keys shifted
            let keys: Vec<String> = r
                .column("k").unwrap().iter_values().map(|v| v.to_string()).collect();
            let mut b = RelationBuilder::new().column("k2", keys);
            for c in 0..2 {
                let col = r.column(&format!("a{c}")).unwrap().to_f64_vec().unwrap();
                let shifted: Vec<f64> = col.iter().map(|x| x * 0.5 + 1.0).collect();
                b = b.column(format!("b{c}"), shifted);
            }
            b.build().unwrap()
        };
        let ctx = RmaContext::default();
        let ab = ctx.add(&r, &["k"], &s, &["k2"]).unwrap();
        let ba = ctx.add(&s, &["k2"], &r, &["k"]).unwrap();
        // compare cell multisets via sorted key order
        let ab_s = ab.sorted_by(&["k"]).unwrap();
        let ba_s = ba.sorted_by(&["k"]).unwrap();
        for c in 0..2 {
            let x = ab_s.column(&format!("a{c}")).unwrap().to_f64_vec().unwrap();
            let y = ba_s.column(&format!("b{c}")).unwrap().to_f64_vec().unwrap();
            for (p, q) in x.iter().zip(&y) {
                prop_assert!((p - q).abs() < 1e-10);
            }
        }
    }

    // Origins: every result of a unary op has the predicted schema
    /// (row-origin attributes followed by column origins).
    #[test]
    fn origin_schemas(r in arb_relation(5, 2)) {
        let ctx = RmaContext::default();
        // (r1,c1): U ◦ U̅
        let q = ctx.qqr(&r, &["k"]).unwrap();
        let names: Vec<String> = q.schema().names().map(str::to_string).collect();
        prop_assert_eq!(&names, &["k".to_string(), "a0".to_string(), "a1".to_string()]);
        // (c1,c1): (C) ◦ U̅
        let rq = ctx.rqr(&r, &["k"]).unwrap();
        let names: Vec<String> = rq.schema().names().map(str::to_string).collect();
        prop_assert_eq!(&names, &["C".to_string(), "a0".to_string(), "a1".to_string()]);
        // (c1,r1): (C) ◦ ▽U — columns are the sorted key values
        let t = ctx.tra(&r, &["k"]).unwrap();
        let names: Vec<String> = t.schema().names().map(str::to_string).collect();
        let mut expect = vec!["C".to_string()];
        let mut keys: Vec<String> = r.column("k").unwrap().iter_values().map(|v| v.to_string()).collect();
        keys.sort();
        expect.extend(keys);
        prop_assert_eq!(&names, &expect);
        // (1,1): (C, op)
        let d = ctx.rnk(&r, &["k"]).unwrap();
        let names: Vec<String> = d.schema().names().map(str::to_string).collect();
        prop_assert_eq!(&names, &["C".to_string(), "rnk".to_string()]);
    }

    // Double transpose returns the original application values with the
    /// order column renamed to C (Figure 10 generalised).
    #[test]
    fn double_transpose_roundtrip(r in arb_relation(5, 3)) {
        let ctx = RmaContext::default();
        let t1 = ctx.tra(&r, &["k"]).unwrap();
        let t2 = ctx.tra(&t1, &["C"]).unwrap();
        let orig = r.sorted_by(&["k"]).unwrap();
        let back = t2.sorted_by(&["C"]).unwrap();
        for c in 0..3 {
            let a = orig.column(&format!("a{c}")).unwrap().to_f64_vec().unwrap();
            let b = back.column(&format!("a{c}")).unwrap().to_f64_vec().unwrap();
            prop_assert_eq!(a, b);
        }
    }
}
