//! End-to-end checks against the worked examples in the paper: Figures 3,
//! 4, 7, 8, 9, and 10.

use rma_core::{RmaContext, RmaError};
use rma_relation::{select, Expr, Relation, RelationBuilder};
use rma_storage::Value;

/// The weather relation of Figure 2.
fn weather() -> Relation {
    RelationBuilder::new()
        .name("r")
        .column("T", vec!["5am", "8am", "7am", "6am"])
        .column("H", vec![1.0f64, 8.0, 6.0, 1.0])
        .column("W", vec![3.0f64, 5.0, 7.0, 4.0])
        .build()
        .unwrap()
}

fn f(v: Value) -> f64 {
    v.as_f64().expect("numeric cell")
}

/// Figure 3: v = inv_T(σ_{T>6am}(r)).
#[test]
fn figure3_inversion_pipeline() {
    let ctx = RmaContext::default();
    let r_prime = select(&weather(), &Expr::col("T").gt(Expr::lit("6am"))).unwrap();
    assert_eq!(r_prime.len(), 2);
    let v = ctx.inv(&r_prime, &["T"]).unwrap();
    // schema preserved: (T, H, W)
    let names: Vec<_> = v.schema().names().collect();
    assert_eq!(names, vec!["T", "H", "W"]);
    // rows sorted by T: 7am then 8am
    assert_eq!(v.cell(0, "T").unwrap(), Value::from("7am"));
    assert_eq!(v.cell(1, "T").unwrap(), Value::from("8am"));
    // values from the paper (rounded): [[-0.19, 0.27], [0.31, -0.23]]
    assert!((f(v.cell(0, "H").unwrap()) - -0.1923).abs() < 1e-3);
    assert!((f(v.cell(0, "W").unwrap()) - 0.2692).abs() < 1e-3);
    assert!((f(v.cell(1, "H").unwrap()) - 0.3077).abs() < 1e-3);
    assert!((f(v.cell(1, "W").unwrap()) - -0.2308).abs() < 1e-3);
}

/// Figure 4a: qqr_T(r) keeps schema (T, H, W) and the T values order rows.
#[test]
fn figure4a_qqr() {
    let ctx = RmaContext::default();
    let q = ctx.qqr(&weather(), &["T"]).unwrap();
    let names: Vec<_> = q.schema().names().collect();
    assert_eq!(names, vec!["T", "H", "W"]);
    assert_eq!(q.len(), 4);
    // Q has orthonormal columns
    let h: Vec<f64> = q.column("H").unwrap().to_f64_vec().unwrap();
    let w: Vec<f64> = q.column("W").unwrap().to_f64_vec().unwrap();
    let dot: f64 = h.iter().zip(&w).map(|(a, b)| a * b).sum();
    assert!(dot.abs() < 1e-10);
    let norm_h: f64 = h.iter().map(|x| x * x).sum::<f64>().sqrt();
    assert!((norm_h - 1.0).abs() < 1e-10);
}

/// Figure 4b: tra_T(r) — transpose with attribute C and ▽T column names.
#[test]
fn figure4b_transpose() {
    let ctx = RmaContext::default();
    let t = ctx.tra(&weather(), &["T"]).unwrap();
    let names: Vec<_> = t.schema().names().collect();
    assert_eq!(names, vec!["C", "5am", "6am", "7am", "8am"]);
    assert_eq!(t.len(), 2);
    // row for H: 1 1 6 8 ; row for W: 3 4 7 5
    assert_eq!(t.cell(0, "C").unwrap(), Value::from("H"));
    assert_eq!(f(t.cell(0, "5am").unwrap()), 1.0);
    assert_eq!(f(t.cell(0, "6am").unwrap()), 1.0);
    assert_eq!(f(t.cell(0, "7am").unwrap()), 6.0);
    assert_eq!(f(t.cell(0, "8am").unwrap()), 8.0);
    assert_eq!(t.cell(1, "C").unwrap(), Value::from("W"));
    assert_eq!(f(t.cell(1, "8am").unwrap()), 5.0);
}

/// Figure 8: rqr_T(r) is reducible to RQR(g) — |R| values match the paper.
#[test]
fn figure8_rqr_matrix_consistency() {
    let ctx = RmaContext::default();
    let r = ctx.rqr(&weather(), &["T"]).unwrap();
    let names: Vec<_> = r.schema().names().collect();
    assert_eq!(names, vec!["C", "H", "W"]);
    // paper: [[-10.1, -8.8], [0.0, -4.6]] (signs are convention)
    assert!((f(r.cell(0, "H").unwrap()).abs() - 10.1).abs() < 0.05);
    assert!((f(r.cell(0, "W").unwrap()).abs() - 8.8).abs() < 0.08);
    assert!(f(r.cell(1, "H").unwrap()).abs() < 1e-10);
    assert!((f(r.cell(1, "W").unwrap()).abs() - 4.6).abs() < 0.05);
    assert_eq!(r.cell(0, "C").unwrap(), Value::from("H"));
    assert_eq!(r.cell(1, "C").unwrap(), Value::from("W"));
}

/// Figure 9 p1: rnk_H(π_{H,W}(r)) has shape (1,1) with origins.
#[test]
fn figure9_rank_origins() {
    let ctx = RmaContext::default();
    let projected = rma_relation::project(&weather(), &["H", "W"]).unwrap();
    // H is not a key of the projection (duplicate 1.0) — take distinct rows
    // per the paper's instance where H happens to be a key after projection?
    // In Figure 9 the order schema is H over (H, W): H = {1, 8, 6, 1} has a
    // duplicate, but the application part is only W. The paper's example
    // relation has H values 1,8,6,1 — H alone is NOT a key, so we mirror
    // the paper's p1 with the first three rows where H is unique.
    let sub = projected.take(&[0, 1, 2]);
    let p1 = ctx.rnk(&sub, &["H"]).unwrap();
    assert_eq!(p1.len(), 1);
    let names: Vec<_> = p1.schema().names().collect();
    assert_eq!(names, vec!["C", "rnk"]);
    assert_eq!(p1.cell(0, "C").unwrap(), Value::from("r"));
    assert_eq!(p1.cell(0, "rnk").unwrap(), Value::Int(1));
}

/// Figure 9 p2: usv_T(r) is 4×4 with ▽T column names.
#[test]
fn figure9_usv_origins() {
    let ctx = RmaContext::default();
    let p2 = ctx.usv(&weather(), &["T"]).unwrap();
    let names: Vec<_> = p2.schema().names().collect();
    assert_eq!(names, vec!["T", "5am", "6am", "7am", "8am"]);
    assert_eq!(p2.len(), 4);
    // columns orthonormal (full U)
    for a in &["5am", "6am", "7am", "8am"] {
        let col = p2.column(a).unwrap().to_f64_vec().unwrap();
        let norm: f64 = col.iter().map(|x| x * x).sum::<f64>();
        assert!((norm - 1.0).abs() < 1e-8);
    }
}

/// Figure 9 p3: qqr over a composite order schema (W, T).
#[test]
fn figure9_composite_order_schema() {
    let ctx = RmaContext::default();
    let p3 = ctx.qqr(&weather(), &["W", "T"]).unwrap();
    let names: Vec<_> = p3.schema().names().collect();
    assert_eq!(names, vec!["W", "T", "H"]);
    assert_eq!(p3.len(), 4);
    // sorted by (W, T): 3,4,5,7 — but qqr skips sorting by default, so only
    // the *pairing* of (W,T) with H values matters; check via a sorted copy
    let sorted = p3.sorted_by(&["W"]).unwrap();
    let w: Vec<f64> = sorted.column("W").unwrap().to_f64_vec().unwrap();
    assert_eq!(w, vec![3.0, 4.0, 5.0, 7.0]);
}

/// Figure 10: tra ∘ tra round-trips both values and context.
#[test]
fn figure10_double_transpose() {
    let ctx = RmaContext::default();
    let r1 = ctx.tra(&weather(), &["T"]).unwrap();
    let r2 = ctx.tra(&r1, &["C"]).unwrap();
    // r2 has schema (C, H, W) with C = T values sorted
    let names: Vec<_> = r2.schema().names().collect();
    assert_eq!(names, vec!["C", "H", "W"]);
    assert_eq!(r2.len(), 4);
    assert_eq!(r2.cell(0, "C").unwrap(), Value::from("5am"));
    assert_eq!(f(r2.cell(0, "H").unwrap()), 1.0);
    assert_eq!(f(r2.cell(0, "W").unwrap()), 3.0);
    assert_eq!(r2.cell(3, "C").unwrap(), Value::from("8am"));
    assert_eq!(f(r2.cell(3, "H").unwrap()), 8.0);
    assert_eq!(f(r2.cell(3, "W").unwrap()), 5.0);
}

/// det over the 2×2 sub-relation used in Figure 3.
#[test]
fn det_of_figure3_matrix() {
    let ctx = RmaContext::default();
    let r_prime = select(&weather(), &Expr::col("T").gt(Expr::lit("6am"))).unwrap();
    let d = ctx.det(&r_prime, &["T"]).unwrap();
    let names: Vec<_> = d.schema().names().collect();
    assert_eq!(names, vec!["C", "det"]);
    assert!((f(d.cell(0, "det").unwrap()) - -26.0).abs() < 1e-9);
}

/// Order schema that is not a key must be rejected.
#[test]
fn non_key_order_schema_rejected() {
    let ctx = RmaContext::default();
    // H has duplicate value 1.0 → (H) is no key of π_{H,W}(r)
    let hw = rma_relation::project(&weather(), &["H", "W"]).unwrap();
    let err = ctx.qqr(&hw, &["H"]).unwrap_err();
    assert!(matches!(err, RmaError::OrderSchemaNotKey(_)));
    // and a non-numeric application attribute is its own error
    let err = ctx.qqr(&weather(), &["H"]).unwrap_err();
    assert!(matches!(err, RmaError::NonNumericApplication { .. }));
}

/// tra and usv require |U| = 1.
#[test]
fn cardinality_restrictions() {
    let ctx = RmaContext::default();
    assert!(matches!(
        ctx.tra(&weather(), &["T", "W"]),
        Err(RmaError::OrderSchemaCardinality { op: "tra", .. })
    ));
    assert!(matches!(
        ctx.usv(&weather(), &["T", "W"]),
        Err(RmaError::OrderSchemaCardinality { op: "usv", .. })
    ));
}

/// evl/vsv produce a single column named after the operation.
#[test]
fn op_named_columns() {
    let ctx = RmaContext::default();
    let sq = select(&weather(), &Expr::col("T").gt(Expr::lit("6am"))).unwrap();
    let e = ctx.evl(&sq, &["T"]).unwrap();
    let names: Vec<_> = e.schema().names().collect();
    assert_eq!(names, vec!["T", "evl"]);
    let v = ctx.vsv(&weather(), &["T"]).unwrap();
    let names: Vec<_> = v.schema().names().collect();
    assert_eq!(names, vec!["T", "vsv"]);
    assert_eq!(v.len(), 4);
    // singular values descending, padded with zeros beyond min(m, n)
    let s: Vec<f64> = v.column("vsv").unwrap().to_f64_vec().unwrap();
    assert!(s[0] >= s[1] && s[1] >= s[2]);
    assert_eq!(s[2], 0.0);
    assert_eq!(s[3], 0.0);
}

/// Binary ops: the paper's w3/w4/w5 covariance steps (Figure 7).
#[test]
fn figure7_covariance_steps() {
    let ctx = RmaContext::default();
    // w3: centred ratings for CA users
    let w3 = RelationBuilder::new()
        .column("U", vec!["Ann", "Jan"])
        .column("B", vec![-1.25f64, 1.25])
        .column("H", vec![0.5f64, -0.5])
        .column("N", vec![0.25f64, 0.25])
        .build()
        .unwrap();
    // w4 = tra_U(w3)
    let w4 = ctx.tra(&w3, &["U"]).unwrap();
    let names: Vec<_> = w4.schema().names().collect();
    assert_eq!(names, vec!["C", "Ann", "Jan"]);
    assert_eq!(f(w4.cell(0, "Ann").unwrap()), -1.25);
    // w5 = mmu_{C;U}(w4, w3): 3×3 covariance numerator
    let w5 = ctx.mmu(&w4, &["C"], &w3, &["U"]).unwrap();
    let names: Vec<_> = w5.schema().names().collect();
    assert_eq!(names, vec!["C", "B", "H", "N"]);
    assert_eq!(w5.len(), 3);
    // first row: B·B = 3.125, B·H = -1.25, B·N = 0
    let row_b = w5.sorted_by(&["C"]).unwrap();
    assert_eq!(row_b.cell(0, "C").unwrap(), Value::from("B"));
    assert!((f(row_b.cell(0, "B").unwrap()) - 3.125).abs() < 1e-12);
    assert!((f(row_b.cell(0, "H").unwrap()) - -1.25).abs() < 1e-12);
    assert!(f(row_b.cell(0, "N").unwrap()).abs() < 1e-12);
}

/// add with non-overlapping order schemas keeps both order parts (r∗,c∗).
#[test]
fn add_keeps_both_order_parts() {
    let ctx = RmaContext::default();
    let a = RelationBuilder::new()
        .column("k1", vec![1i64, 2])
        .column("x", vec![10.0f64, 20.0])
        .build()
        .unwrap();
    let b = RelationBuilder::new()
        .column("k2", vec![2i64, 1])
        .column("x2", vec![1.0f64, 2.0])
        .build()
        .unwrap();
    let sum = ctx.add(&a, &["k1"], &b, &["k2"]).unwrap();
    let names: Vec<_> = sum.schema().names().collect();
    assert_eq!(names, vec!["k1", "k2", "x"]);
    // alignment by rank: k1=1 ↔ k2=1, k1=2 ↔ k2=2
    let sorted = sum.sorted_by(&["k1"]).unwrap();
    assert_eq!(sorted.cell(0, "k2").unwrap(), Value::Int(1));
    assert_eq!(f(sorted.cell(0, "x").unwrap()), 12.0); // 10 + 2
    assert_eq!(f(sorted.cell(1, "x").unwrap()), 21.0); // 20 + 1
}

/// add rejects overlapping order schemas and mismatched tuple counts.
#[test]
fn add_validation() {
    let ctx = RmaContext::default();
    let a = RelationBuilder::new()
        .column("k", vec![1i64, 2])
        .column("x", vec![1.0f64, 2.0])
        .build()
        .unwrap();
    assert!(matches!(
        ctx.add(&a, &["k"], &a, &["k"]),
        Err(RmaError::OverlappingOrderSchemas(_))
    ));
    let b = RelationBuilder::new()
        .column("k2", vec![1i64])
        .column("x2", vec![1.0f64])
        .build()
        .unwrap();
    assert!(matches!(
        ctx.add(&a, &["k"], &b, &["k2"]),
        Err(RmaError::TupleCountMismatch { .. })
    ));
}

/// opd: result columns named by the second relation's order values.
#[test]
fn opd_column_origins() {
    let ctx = RmaContext::default();
    let a = RelationBuilder::new()
        .column("i", vec!["r1", "r2"])
        .column("x", vec![1.0f64, 2.0])
        .build()
        .unwrap();
    let b = RelationBuilder::new()
        .column("j", vec!["c2", "c1"])
        .column("y", vec![10.0f64, 100.0])
        .build()
        .unwrap();
    let o = ctx.opd(&a, &["i"], &b, &["j"]).unwrap();
    let names: Vec<_> = o.schema().names().collect();
    assert_eq!(names, vec!["i", "c1", "c2"]);
    // sorted s: c1→100, c2→10 ; row r1 (x=1): c1=100, c2=10
    let sorted = o.sorted_by(&["i"]).unwrap();
    assert_eq!(f(sorted.cell(0, "c1").unwrap()), 100.0);
    assert_eq!(f(sorted.cell(0, "c2").unwrap()), 10.0);
    assert_eq!(f(sorted.cell(1, "c1").unwrap()), 200.0);
}

/// sol: least-squares regression through the RMA interface.
#[test]
fn sol_linear_regression() {
    let ctx = RmaContext::default();
    // design matrix (intercept, x) with key t; y = 1 + 2x exactly
    let a = RelationBuilder::new()
        .column("t", vec![1i64, 2, 3])
        .column("one", vec![1.0f64, 1.0, 1.0])
        .column("x", vec![1.0f64, 2.0, 3.0])
        .build()
        .unwrap();
    let y = RelationBuilder::new()
        .column("t2", vec![1i64, 2, 3])
        .column("y", vec![3.0f64, 5.0, 7.0])
        .build()
        .unwrap();
    let x = ctx.sol(&a, &["t"], &y, &["t2"]).unwrap();
    let names: Vec<_> = x.schema().names().collect();
    assert_eq!(names, vec!["C", "y"]);
    assert_eq!(x.len(), 2);
    let sorted = x.sorted_by(&["C"]).unwrap();
    // C = 'one' → 1.0 (intercept), C = 'x' → 2.0 (slope)
    assert_eq!(sorted.cell(0, "C").unwrap(), Value::from("one"));
    assert!((f(sorted.cell(0, "y").unwrap()) - 1.0).abs() < 1e-9);
    assert!((f(sorted.cell(1, "y").unwrap()) - 2.0).abs() < 1e-9);
}

/// cpd through RMA: covariance-style AᵀA with C column context.
#[test]
fn cpd_context() {
    let ctx = RmaContext::default();
    let a = RelationBuilder::new()
        .column("k", vec![1i64, 2, 3])
        .column("p", vec![1.0f64, 2.0, 3.0])
        .column("q", vec![1.0f64, 0.0, -1.0])
        .build()
        .unwrap();
    let b = rma_relation::rename(&a, &[("k", "k2"), ("p", "p2"), ("q", "q2")]).unwrap();
    let c = ctx.cpd(&a, &["k"], &b, &["k2"]).unwrap();
    let names: Vec<_> = c.schema().names().collect();
    assert_eq!(names, vec!["C", "p2", "q2"]);
    let sorted = c.sorted_by(&["C"]).unwrap();
    // row p: p·p = 14, p·q = -2
    assert!((f(sorted.cell(0, "p2").unwrap()) - 14.0).abs() < 1e-12);
    assert!((f(sorted.cell(0, "q2").unwrap()) - -2.0).abs() < 1e-12);
}

/// Results of RMA ops are plain relations: they compose with σ/π/⋈.
#[test]
fn closure_composability() {
    let ctx = RmaContext::default();
    let t = ctx.tra(&weather(), &["T"]).unwrap();
    let filtered = select(&t, &Expr::col("C").eq(Expr::lit("H"))).unwrap();
    assert_eq!(filtered.len(), 1);
    let projected = rma_relation::project(&filtered, &["C", "5am"]).unwrap();
    assert_eq!(projected.schema().len(), 2);
    // and feed an RMA result into another RMA op (nesting)
    let nested = ctx.rnk(&t, &["C"]).unwrap();
    assert_eq!(nested.cell(0, "rnk").unwrap(), Value::Int(2));
}
